// protection demonstrates CDNA's DMA memory protection (§3.3) against a
// buggy or malicious guest driver, using two guests sharing one CDNA
// NIC:
//
//  1. the attacker asks the hypervisor to enqueue a DMA descriptor
//     pointing at the victim's memory — rejected at validation;
//  2. the attacker forges its mailbox producer index to replay a stale
//     descriptor — the NIC's sequence-number check fires a protection
//     fault and the hypervisor revokes the context, while the victim's
//     traffic keeps flowing;
//  3. the same replay with protection disabled goes entirely
//     undetected — the NIC transmits whatever the stale descriptor
//     points at, which is why Table 4's "disabled" row is only an upper
//     bound, not a deployable configuration.
package main

import (
	"fmt"
	"log"

	"cdna/internal/bench"
	"cdna/internal/core"
	"cdna/internal/sim"
)

func main() {
	fmt.Println("--- protection enabled (hypercall validation + sequence numbers) ---")
	protected()
	fmt.Println()
	fmt.Println("--- protection disabled (Table 4 upper bound) ---")
	unprotected()
}

func build(prot core.Mode) (*bench.Machine, bench.Config) {
	cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	cfg.Guests = 2
	cfg.NICs = 1
	cfg.ConnsPerGuestPerNIC = 4
	cfg.Protection = prot
	m, err := bench.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range m.Conns.Conns {
		c.Start()
	}
	return m, cfg
}

func protected() {
	m, _ := build(core.ModeHypercall)
	attacker := m.Drivers[0] // guest1's driver
	victimDom := m.Hyp.Domains()[2]
	m.Eng.Run(100 * sim.Millisecond)

	// Attack 1: enqueue a descriptor referencing the victim's memory.
	victimPage := m.Mem.AllocOne(victimDom.ID)
	attacker.AttackForeignEnqueue(victimPage.Base(), func(err error) {
		fmt.Printf("attack 1 (cross-domain DMA descriptor): hypervisor says %q\n", err)
	})
	m.Eng.Run(110 * sim.Millisecond)

	// Attack 2: forge the mailbox producer index past the valid
	// descriptors, exposing a stale ring entry.
	fmt.Println("attack 2 (stale-descriptor replay via forged producer index):")
	attacker.AttackStaleProducer(4)
	m.Eng.Run(150 * sim.Millisecond)
	fmt.Printf("  NIC protection faults reported: %d\n", m.RiceNICs[0].E.Faults.Total())
	fmt.Printf("  hypervisor faults handled:      %d\n", m.Hyp.Faults.Total())
	fmt.Printf("  attacker context revoked:       %v (active contexts left: %d)\n",
		attacker.Ctx.Faulted, m.CtxMgrs[0].Assigned())

	// The victim's traffic keeps flowing after the revocation.
	m.Conns.StartWindow()
	m.Eng.Run(350 * sim.Millisecond)
	var attackerBytes, victimBytes uint64
	for i, c := range m.Conns.Conns {
		if i < 4 {
			attackerBytes += c.Delivered.Window()
		} else {
			victimBytes += c.Delivered.Window()
		}
	}
	fmt.Printf("  post-revocation delivery: attacker %d bytes, victim %d bytes\n",
		attackerBytes, victimBytes)
}

func unprotected() {
	m, _ := build(core.ModeOff)
	attacker := m.Drivers[0]
	m.Eng.Run(100 * sim.Millisecond)

	sent := m.RiceNICs[0].E.TxPackets.Total()
	fmt.Println("stale-descriptor replay with no sequence checking:")
	attacker.AttackStaleProducer(4)
	m.Eng.Run(150 * sim.Millisecond)
	fmt.Printf("  NIC protection faults: %d (nothing detects the replay)\n", m.RiceNICs[0].E.Faults.Total())
	fmt.Printf("  frames transmitted from stale descriptors: %d\n",
		m.RiceNICs[0].E.TxPackets.Total()-sent)
	fmt.Println("  the NIC happily DMA-read memory the guest no longer validly owns —")
	fmt.Println("  with protection enabled this raised a fault and revoked the context.")
}
