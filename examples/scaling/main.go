// scaling regenerates the paper's Figures 3 and 4: aggregate transmit
// and receive throughput for Xen and CDNA as the number of guest
// domains grows from 1 to 24, with CDNA's idle time annotated — the
// paper's scalability argument in one run.
package main

import (
	"flag"
	"fmt"
	"log"

	"cdna/internal/bench"
)

func main() {
	quick := flag.Bool("quick", true, "short measurement windows")
	flag.Parse()
	opts := bench.Full()
	if *quick {
		opts = bench.Quick()
	}
	for _, fig := range []struct {
		name string
		run  func(bench.Opts, []int) (t interface{ String() string }, pts []bench.FigurePoint, err error)
	}{
		{"Figure 3 (transmit)", func(o bench.Opts, g []int) (interface{ String() string }, []bench.FigurePoint, error) {
			return bench.Figure3(o, g)
		}},
		{"Figure 4 (receive)", func(o bench.Opts, g []int) (interface{ String() string }, []bench.FigurePoint, error) {
			return bench.Figure4(o, g)
		}},
	} {
		table, pts, err := fig.run(opts, bench.FigureGuests)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n%s", fig.name, table.String())
		last := pts[len(pts)-1]
		fmt.Printf("at %d guests CDNA sustains %.2fx Xen's bandwidth (paper: 2.1x tx, 3.3x rx)\n\n",
			last.Guests, last.CDNA.Mbps/last.Xen.Mbps)
	}
}
