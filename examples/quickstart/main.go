// Quickstart: build the paper's standard single-guest CDNA machine (one
// guest, two CDNA NICs), transmit for one simulated second, and print
// the measured throughput, execution profile, and interrupt rate —
// the CDNA row of the paper's Table 2.
package main

import (
	"fmt"
	"log"

	"cdna/internal/bench"
)

func main() {
	cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	res, err := bench.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Single guest transmitting over two CDNA NICs:")
	fmt.Printf("  throughput: %.0f Mb/s  (paper: 1867 Mb/s)\n", res.Mbps)
	fmt.Printf("  profile:    %s\n", res.Profile)
	fmt.Printf("  guest interrupts: %.0f/s  (paper: 13,659/s)\n", res.GuestIntrPerSec)
	fmt.Printf("  driver-domain interrupts: %.0f/s  (paper: 0/s)\n", res.DriverIntrPerSec)
	fmt.Printf("  connection fairness (Jain): %.3f\n", res.Fairness)
}
