// xenvscdna runs the paper's central comparison head to head: a single
// guest doing network I/O through Xen's software-virtualized path versus
// the same guest with concurrent direct network access, in both
// directions, and prints where the CPU time went (Tables 2 and 3).
package main

import (
	"fmt"
	"log"

	"cdna/internal/bench"
)

func main() {
	opts := bench.Opts{Warmup: bench.Full().Warmup, Duration: bench.Full().Duration}
	for _, dir := range []bench.Direction{bench.Tx, bench.Rx} {
		xen, err := bench.Run(withOpts(bench.DefaultConfig(bench.ModeXen, bench.NICIntel, dir), opts))
		if err != nil {
			log.Fatal(err)
		}
		cdna, err := bench.Run(withOpts(bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, dir), opts))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %v ===\n", dir)
		fmt.Printf("  Xen  : %5.0f Mb/s  %s\n", xen.Mbps, xen.Profile)
		fmt.Printf("  CDNA : %5.0f Mb/s  %s\n", cdna.Mbps, cdna.Profile)
		fmt.Printf("  CDNA wins by %.2fx while leaving %.0f%% of the CPU idle;\n",
			cdna.Mbps/xen.Mbps, 100*cdna.Profile.Idle)
		fmt.Printf("  the eliminated driver-domain time was %.1f%% of the machine.\n\n",
			100*(xen.Profile.DriverOS+xen.Profile.DriverUser))
	}
}

func withOpts(cfg bench.Config, o bench.Opts) bench.Config {
	cfg.Warmup = o.Warmup
	cfg.Duration = o.Duration
	return cfg
}
