// genericnic demonstrates the paper's §3.4 generality argument with the
// two mechanisms that make CDNA portable beyond the RiceNIC and Xen:
//
//  1. generic descriptor-format negotiation — a hypothetical vendor NIC
//     declares its own descriptor layout (different size and field
//     offsets) and the hypervisor validates, pins, and
//     sequence-stamps descriptors without ever interpreting the
//     vendor's flags;
//
//  2. the guest-side virtual-address translation library — for VMMs
//     whose guests never see physical addresses, a driver hands the
//     library virtually addressed buffers and it emits the physical
//     descriptors for the enqueue hypercall, splitting buffers at
//     physical discontiguities.
package main

import (
	"fmt"
	"log"

	"cdna/internal/core"
	"cdna/internal/guest"
	"cdna/internal/mem"
	"cdna/internal/ring"
)

func main() {
	m := mem.New()
	const dom = mem.Dom0 + 1

	// 1. The vendor NIC announces its descriptor format: 24 bytes,
	// flags first, address in the middle, sequence number at the tail.
	vendor := ring.Layout{Size: 24, FlagsOff: 0, LenOff: 2, AddrOff: 8, SeqOff: 20}
	if err := vendor.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vendor layout: %d-byte descriptors, addr@%d len@%d flags@%d seq@%d\n",
		vendor.Size, vendor.AddrOff, vendor.LenOff, vendor.FlagsOff, vendor.SeqOff)

	tx, err := ring.New("vendor.tx", vendor, m.AllocOne(dom).Base(), 128)
	if err != nil {
		log.Fatal(err)
	}
	prot := core.NewProtection(m, core.ModeHypercall)
	if err := prot.RegisterRing(dom, tx, 256); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hypervisor registered the ring: exclusive write access taken,")
	fmt.Printf("sequence space %d (>= 2x ring size %d, the §3.3 rule)\n\n", 256, tx.Entries)

	// 2. The guest driver works in virtual addresses.
	as := guest.NewAddrSpace(m, dom)
	va := as.Alloc(4) // four pages, virtually contiguous
	fmt.Printf("guest mapped a 16 KB virtually contiguous buffer at va %#x\n", uint64(va))

	// A 3 KB packet straddling a page boundary: the library splits it
	// only if the physical pages are discontiguous.
	vdescs := []guest.VDesc{{VAddr: va + 3000, Len: 3000, Flags: 0x0a50}}
	descs, err := as.TranslateDescs(vdescs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("translation produced %d physical descriptor(s):\n", len(descs))
	for _, d := range descs {
		fmt.Printf("  pa=%#x len=%d flags=%#x\n", uint64(d.Addr), d.Len, d.Flags)
	}

	// The hypervisor validates and enqueues through the vendor layout.
	n, err := prot.Enqueue(dom, tx, descs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhypervisor validated + enqueued %d descriptor(s)\n", n)

	// Read the ring back the way the vendor NIC's DMA engine would.
	checker := core.NewSeqChecker(256)
	for i := 0; i < n; i++ {
		d, err := tx.ReadDesc(m, uint32(i))
		if err != nil {
			log.Fatal(err)
		}
		ok := checker.Check(d.Seq)
		fmt.Printf("  NIC read slot %d: pa=%#x len=%d vendor-flags=%#x seq=%d (seq check: %v)\n",
			i, uint64(d.Addr), d.Len, d.Flags&^ring.FlagValid, d.Seq, ok)
	}

	// And the attack still fails, layout notwithstanding.
	victim := m.AllocOne(mem.Dom0 + 2)
	if _, err := prot.Enqueue(dom, tx, []ring.Desc{{Addr: victim.Base(), Len: 1514}}); err != nil {
		fmt.Printf("\ncross-domain descriptor through the vendor layout: %q\n", err)
	}
}
