// Command cdnasweep runs a whole experiment campaign — a grid of
// configurations — in parallel across a worker pool and emits the full
// machine-readable result set as JSON (and optionally CSV). One
// invocation with -preset paper reproduces every table and figure of
// the evaluation; EXPERIMENTS.md documents the output schema.
//
// Examples:
//
//	cdnasweep -preset tables -workers 8 -json results.json
//	cdnasweep -preset paper -quick -csv results.csv
//	cdnasweep -modes xen,cdna -dirs tx,rx -guests 1,2,4,8
//	cdnasweep -modes cdna -dirs tx -protections hypercall,iommu,off
//	cdnasweep -preset workloads -csv workloads.csv
//	cdnasweep -modes xen,cdna -workloads rr,churn,burst
//	cdnasweep -preset topology -json topo.json
//	cdnasweep -hosts 8 -preset topology
//	cdnasweep -modes xen,cdna -hosts 2,4,8 -patterns incast,all2all
//	cdnasweep -preset faults -json faults.json
//	cdnasweep -modes cdna -hosts 3 -patterns incast -faults none,linkflap,blackout -warmfork
//	cdnasweep -preset fabrics -json fabrics.json
//	cdnasweep -preset openloop -quick -csv openloop.csv
//	cdnasweep -modes xen,cdna -hosts 4 -patterns incast -fabrics tor,leafspine,fattree
//	cdnasweep -spec grid.json -workers 4
//	cdnasweep -store .cdna-store -preset faults     # local run, durable result cache
//	cdnasweep -daemon -socket d.sock -store st      # serve sweeps as a daemon
//	cdnasweep -remote -socket d.sock -preset faults # submit to the daemon
//	cdnasweep -remote -socket d.sock -drain         # graceful daemon shutdown
//
// The -modes/-nics/-dirs/... axis flags define one cross-product grid;
// -spec reads one or more grids from a JSON file (the same schema
// campaign.Grid marshals to); -preset selects a canned campaign. A
// failing grid point is reported in its record and on stderr but never
// aborts the sweep; the exit status is 1 if any point failed.
//
// -store caches results in a content-addressed durable store, so
// repeated and overlapping sweeps only simulate the delta. -daemon
// serves the same store behind a unix-socket HTTP API (crash-safe:
// accepted sweeps are journaled and resume after a kill); -remote
// submits the grid there instead of running locally, with retries and
// backoff riding out a busy or restarting daemon. Remote JSON output
// is byte-identical to a local run's. DESIGN.md ("Campaign service")
// documents the protocol.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cdna/internal/bench"
	"cdna/internal/campaign"
	"cdna/internal/core"
	"cdna/internal/daemon"
	"cdna/internal/sim"
	"cdna/internal/store"
	"cdna/internal/topo"
	"cdna/internal/workload"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cdnasweep: "+format+"\n", args...)
	os.Exit(2)
}

// splitList parses a comma-separated axis flag with a per-item parser.
func splitList[T any](name, s string, parse func(string) (T, error)) []T {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var vals []T
	for _, tok := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(tok))
		if err != nil {
			fatal("-%s: %v", name, err)
		}
		vals = append(vals, v)
	}
	return vals
}

func presetGrids(name string) []campaign.Grid {
	switch name {
	case "table1":
		return campaign.Table1Grids()
	case "tables":
		return campaign.Tables234Grids()
	case "figures":
		return campaign.FigureGrids()
	case "ablations":
		return campaign.AblationGrids()
	case "workloads":
		return campaign.WorkloadGrids()
	case "topology":
		return campaign.TopologyGrids()
	case "faults":
		return campaign.FaultGrids()
	case "fabrics":
		return campaign.FabricGrids()
	case "openloop":
		return campaign.OpenLoopGrids()
	case "paper":
		return campaign.PaperGrids()
	}
	fatal("unknown preset %q (want table1 | tables | figures | ablations | workloads | topology | faults | fabrics | openloop | paper)", name)
	return nil
}

func main() {
	preset := flag.String("preset", "", "canned campaign: table1 | tables | figures | ablations | workloads | topology | paper")
	spec := flag.String("spec", "", "JSON grid spec file (a campaign.Grid object or array)")

	modes := flag.String("modes", "", "comma list: native | xen | cdna")
	nics := flag.String("nics", "", "comma list: intel | ricenic (Xen only; native/CDNA fix their NIC)")
	dirs := flag.String("dirs", "", "comma list: tx | rx | both")
	guests := flag.String("guests", "", "comma list of guest counts")
	nicCounts := flag.String("niccounts", "", "comma list of physical NIC counts")
	protections := flag.String("protections", "", "comma list: hypercall | iommu | off")
	batches := flag.String("batches", "", "comma list of max descriptors per enqueue (A2; 0 = unlimited)")
	irqs := flag.String("irqs", "", "comma list of bools: direct per-context IRQ delivery (A1)")
	coalesce := flag.String("coalesce", "", "comma list of tx coalescing thresholds (A5; 0 = default)")
	workloads := flag.String("workloads", "", "comma list: bulk | rr | churn | burst (per-kind defaults; use -spec for knobs)")
	hosts := flag.String("hosts", "", "comma list of fabric host counts (1 = classic host+peer; also overrides a preset's host axis)")
	patterns := flag.String("patterns", "", "comma list: pairs | incast | all2all (cross-host scenarios, hosts > 1)")
	fabrics := flag.String("fabrics", "", "comma list: tor | leafspine | fattree (switching topologies, hosts > 1; defaults per kind, use -spec for knobs)")
	shards := flag.String("shards", "", "comma list of engine shard counts for multi-host points (wall-clock only; results are byte-identical at any value)")
	faults := flag.String("faults", "", "comma list: none | linkflap | portfail | blackout (default quarter-window schedule; use -spec for exact timing)")
	conns := flag.Int("conns", 0, "connections per guest per NIC (0 = balanced default)")
	window := flag.Int("window", 0, "transport window in segments (0 = default)")

	quick := flag.Bool("quick", false, "short measurement windows")
	duration := flag.Float64("duration", 0, "measurement window in simulated seconds (overrides -quick)")
	warmup := flag.Float64("warmup", 0, "warmup in simulated seconds (overrides -quick)")
	workers := flag.Int("workers", 0, "concurrent experiments (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "-", "JSON output path (- = stdout, empty = none)")
	csvPath := flag.String("csv", "", "CSV output path (- = stdout)")
	warmfork := flag.Bool("warmfork", false, "share one simulated warmup among grid points that differ only in fault (checkpoint/restore forking; results stay byte-identical to cold runs)")
	progress := flag.Bool("progress", true, "report per-experiment completion on stderr")

	daemonMode := flag.Bool("daemon", false, "serve sweeps as a long-running daemon on -socket (requires -store); SIGINT/SIGTERM drain gracefully")
	remote := flag.Bool("remote", false, "submit the sweep to the daemon at -socket instead of running locally")
	socket := flag.String("socket", "", "unix socket path of the sweep daemon (with -daemon / -remote)")
	storeDir := flag.String("store", "", "durable result-store directory: the daemon's storage with -daemon, a local result cache otherwise")
	queueDepth := flag.Int("queue", 0, "daemon work-queue depth (0 = 8); submissions beyond it are shed with a retryable 429")
	expTimeout := flag.Duration("exp-timeout", 0, "per-experiment watchdog wall-clock deadline (0 = none; local and -daemon runs)")
	drain := flag.Bool("drain", false, "with -remote: ask the daemon to drain gracefully, then exit")
	requireHitRate := flag.Float64("require-hit-rate", -1, "with -remote or -store: exit 1 unless the sweep's cache hit rate reaches this fraction (0..1)")
	flag.Parse()
	if flag.NArg() > 0 {
		fatal("unexpected arguments %q", flag.Args())
	}

	switch {
	case *daemonMode && *remote:
		fatal("-daemon and -remote are mutually exclusive")
	case *daemonMode && *socket == "":
		fatal("-daemon requires -socket")
	case *daemonMode && *storeDir == "":
		fatal("-daemon requires -store (the durable result store)")
	case *remote && *socket == "":
		fatal("-remote requires -socket")
	case *remote && *storeDir != "":
		fatal("-store is the daemon's side of a -remote run; set it on the -daemon process")
	case *warmfork && (*daemonMode || *remote || *storeDir != ""):
		// Warm-forked runs bypass the per-experiment executor, so they
		// cannot flow through the result store or the daemon.
		fatal("-warmfork cannot be combined with -daemon/-remote/-store")
	case *drain && !*remote:
		fatal("-drain requires -remote")
	case *requireHitRate >= 0 && !*remote && *storeDir == "":
		fatal("-require-hit-rate needs a cache: combine with -remote or -store")
	case *requireHitRate > 1:
		fatal("-require-hit-rate is a fraction in [0, 1]")
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cdnasweep: "+format+"\n", args...)
	}

	if *daemonMode {
		// The daemon defines no grid of its own — clients submit grids,
		// windows, and outputs. Reject anything sweep-shaped.
		allowed := map[string]bool{
			"daemon": true, "socket": true, "store": true, "queue": true,
			"exp-timeout": true, "workers": true, "progress": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if !allowed[f.Name] {
				fatal("-%s does not apply to -daemon (clients define sweeps and outputs)", f.Name)
			}
		})
		d, err := daemon.New(daemon.Config{
			Socket:     *socket,
			StoreDir:   *storeDir,
			QueueDepth: *queueDepth,
			Workers:    *workers,
			ExpTimeout: *expTimeout,
			Logf:       logf,
		})
		if err != nil {
			fatal("%v", err)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			logf("signal received; draining")
			d.Drain()
		}()
		if err := d.Serve(); err != nil {
			fatal("%v", err)
		}
		return
	}

	if *drain {
		c := daemon.NewClient(*socket)
		c.Logf = logf
		if err := c.Drain(); err != nil {
			fatal("%v", err)
		}
		return
	}

	// Axis flags define an ad-hoc grid; they cannot constrain a canned
	// preset or a spec file, so reject the combination instead of
	// silently ignoring them. -hosts and -shards are the exceptions:
	// they override the matching axis of a preset/spec grid too (so
	// `-hosts 8 -preset topology` re-scales the whole canned campaign to
	// one rack size, and `-shards 4` re-shards it).
	axisFlags := map[string]bool{
		"modes": true, "nics": true, "dirs": true, "guests": true,
		"niccounts": true, "protections": true, "batches": true,
		"irqs": true, "coalesce": true, "conns": true, "window": true,
		"workloads": true, "patterns": true, "faults": true, "fabrics": true,
	}
	if *preset != "" || *spec != "" {
		flag.Visit(func(f *flag.Flag) {
			if axisFlags[f.Name] {
				fatal("-%s cannot be combined with -preset/-spec (axis flags define their own grid)", f.Name)
			}
		})
	}

	var grids []campaign.Grid
	switch {
	case *preset != "" && *spec != "":
		fatal("-preset and -spec are mutually exclusive")
	case *preset != "":
		grids = presetGrids(*preset)
	case *spec != "":
		f, err := os.Open(*spec)
		if err != nil {
			fatal("%v", err)
		}
		grids, err = campaign.ReadGrids(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
	default:
		g := campaign.Grid{
			Modes:             splitList("modes", *modes, bench.ParseMode),
			NICs:              splitList("nics", *nics, bench.ParseNICKind),
			Dirs:              splitList("dirs", *dirs, bench.ParseDirection),
			Guests:            splitList("guests", *guests, strconv.Atoi),
			NICCounts:         splitList("niccounts", *nicCounts, strconv.Atoi),
			Protections:       splitList("protections", *protections, core.ParseMode),
			MaxEnqueueBatches: splitList("batches", *batches, strconv.Atoi),
			IRQDeliveries:     splitList("irqs", *irqs, strconv.ParseBool),
			TxCoalesce:        splitList("coalesce", *coalesce, strconv.Atoi),
			Workloads: splitList("workloads", *workloads, func(s string) (workload.Spec, error) {
				k, err := workload.ParseKind(s)
				return workload.Spec{Kind: k}, err
			}),
			Hosts:    splitList("hosts", *hosts, strconv.Atoi),
			Patterns: splitList("patterns", *patterns, bench.ParsePattern),
			Fabrics: splitList("fabrics", *fabrics, func(s string) (topo.FabricSpec, error) {
				k, err := topo.ParseFabricKind(s)
				return topo.FabricSpec{Kind: k}, err
			}),
			Shards: splitList("shards", *shards, strconv.Atoi),
			Faults: splitList("faults", *faults, func(s string) (bench.FaultSpec, error) {
				k, err := bench.ParseFaultKind(s)
				return bench.FaultSpec{Kind: k}, err
			}),
			Conns:  *conns,
			Window: *window,
		}
		if len(g.Dirs) == 0 {
			g.Dirs = []bench.Direction{bench.Tx}
		}
		// A pattern axis without a host axis would be silently collapsed
		// by the single-host default — reject it like any other
		// constraint the grid cannot honor.
		if len(g.Patterns) > 0 && len(g.Hosts) == 0 {
			fatal("-patterns requires -hosts (cross-host scenarios need a multi-host fabric)")
		}
		if len(g.Fabrics) > 0 && len(g.Hosts) == 0 {
			fatal("-fabrics requires -hosts (a multi-tier fabric needs a rack to connect)")
		}
		grids = []campaign.Grid{g}
	}
	if *hosts != "" && (*preset != "" || *spec != "") {
		hs := splitList("hosts", *hosts, strconv.Atoi)
		for i := range grids {
			grids[i].Hosts = hs
		}
	}
	// -shards, like -hosts, composes with a preset/spec: sharding is a
	// wall-clock knob with no effect on results, so re-sharding a canned
	// campaign is always sound.
	if *shards != "" {
		ss := splitList("shards", *shards, strconv.Atoi)
		for i := range grids {
			grids[i].Shards = ss
		}
	}

	cfgs := campaign.Expand(grids...)
	if len(cfgs) == 0 {
		fatal("grid expands to zero experiments")
	}
	wu, du := sim.Time(0), sim.Time(0)
	if *quick {
		o := bench.Quick()
		wu, du = o.Warmup, o.Duration
	}
	if *warmup > 0 {
		wu = sim.Time(*warmup * float64(sim.Second))
	}
	if *duration > 0 {
		du = sim.Time(*duration * float64(sim.Second))
	}
	campaign.Apply(cfgs, wu, du)

	emit := func(path string, write func(f *os.File) error) {
		if path == "" {
			return
		}
		f := os.Stdout
		if path != "-" {
			var err error
			f, err = os.Create(path)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
		}
		if err := write(f); err != nil {
			fatal("%v", err)
		}
	}

	if *remote {
		c := daemon.NewClient(*socket)
		c.Logf = logf
		req := daemon.SweepRequest{Grids: grids, Warmup: wu, Duration: du, Workers: *workers}
		var onEvent func(daemon.ProgressEvent)
		if *progress {
			onEvent = func(ev daemon.ProgressEvent) {
				if ev.State != "" || ev.Name == "" {
					return // terminal marker, not an experiment
				}
				status := fmt.Sprintf("%7.0f Mb/s", ev.Mbps)
				if ev.Error != "" {
					status = "FAILED: " + ev.Error
				}
				fmt.Fprintf(os.Stderr, "[%3d/%3d] %-32s %s\n", ev.Done, ev.Total, ev.Name, status)
			}
		}
		start := time.Now()
		// RunSweep rides out queue-full and draining rejections with
		// backoff, re-attaches across daemon restarts (submission is
		// idempotent by content), and returns the daemon's result bytes
		// verbatim — byte-identical to a local run's JSON.
		raw, err := c.RunSweep(req, onEvent)
		if err != nil {
			fatal("%v", err)
		}
		recs, err := campaign.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			fatal("decoding daemon results: %v", err)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "%d experiments in %.1fs wall clock (remote)\n", len(recs), time.Since(start).Seconds())
		}
		id, err := req.ID()
		if err != nil {
			fatal("%v", err)
		}
		st, err := c.Status(id)
		if err != nil {
			fatal("fetching sweep status: %v", err)
		}
		logf("cache: %d hits / %d misses (hit rate %.0f%%)",
			st.Cache.Hits, st.Cache.Misses, st.Cache.HitRate()*100)
		emit(*jsonPath, func(f *os.File) error { _, err := f.Write(raw); return err })
		emit(*csvPath, func(f *os.File) error { return campaign.WriteCSVRecords(f, recs) })
		if *requireHitRate >= 0 && st.Cache.HitRate() < *requireHitRate {
			fmt.Fprintf(os.Stderr, "cdnasweep: cache hit rate %.2f below required %.2f\n",
				st.Cache.HitRate(), *requireHitRate)
			os.Exit(1)
		}
		for _, rec := range recs {
			if rec.Failed() {
				fmt.Fprintf(os.Stderr, "cdnasweep: %s failed: %s\n", rec.Name, rec.Error)
				os.Exit(1)
			}
		}
		return
	}

	opt := campaign.Options{Workers: *workers, Timeout: *expTimeout}
	var cacheStats campaign.CacheStats
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			fatal("%v", err)
		}
		opt.Exec = campaign.CachedExec(s, &cacheStats)
	}
	if *progress {
		opt.Progress = func(done, total int, out bench.Outcome) {
			status := fmt.Sprintf("%7.0f Mb/s", out.Result.Mbps)
			if out.Err != nil {
				status = "FAILED: " + out.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-32s %s\n", done, total, out.Config.Name(), status)
		}
	}
	start := time.Now()
	var outs []bench.Outcome
	if *warmfork {
		// Warm-start forking runs groups sequentially (each group shares
		// one snapshot image); the per-point progress callback still
		// fires, via the stats line below instead of the worker pool.
		var ws bench.WarmStats
		var err error
		outs, ws, err = bench.RunWarmForked(cfgs)
		if err != nil {
			fatal("%v", err)
		}
		if *progress {
			for i, out := range outs {
				opt.Progress(i+1, len(outs), out)
			}
			fmt.Fprintf(os.Stderr, "warm-start: %d runs forked from %d shared warmups (%d warmup events simulated, %d saved, %d snapshot bytes)\n",
				ws.Runs, ws.Groups, ws.WarmupEvents, ws.EventsSaved, ws.SnapshotBytes)
		}
	} else {
		outs = campaign.Run(cfgs, opt)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "%d experiments in %.1fs wall clock\n", len(outs), time.Since(start).Seconds())
	}
	if *storeDir != "" {
		c := cacheStats.Counts()
		logf("cache: %d hits / %d misses (hit rate %.0f%%)", c.Hits, c.Misses, c.HitRate()*100)
	}

	emit(*jsonPath, func(f *os.File) error { return campaign.WriteJSON(f, outs) })
	emit(*csvPath, func(f *os.File) error { return campaign.WriteCSV(f, outs) })

	if *requireHitRate >= 0 {
		if hr := cacheStats.Counts().HitRate(); hr < *requireHitRate {
			fmt.Fprintf(os.Stderr, "cdnasweep: cache hit rate %.2f below required %.2f\n", hr, *requireHitRate)
			os.Exit(1)
		}
	}
	if err := campaign.Check(outs); err != nil {
		fmt.Fprintf(os.Stderr, "cdnasweep: %v\n", err)
		os.Exit(1)
	}
}
