// Command cdnasweep runs a whole experiment campaign — a grid of
// configurations — in parallel across a worker pool and emits the full
// machine-readable result set as JSON (and optionally CSV). One
// invocation with -preset paper reproduces every table and figure of
// the evaluation; EXPERIMENTS.md documents the output schema.
//
// Examples:
//
//	cdnasweep -preset tables -workers 8 -json results.json
//	cdnasweep -preset paper -quick -csv results.csv
//	cdnasweep -modes xen,cdna -dirs tx,rx -guests 1,2,4,8
//	cdnasweep -modes cdna -dirs tx -protections hypercall,iommu,off
//	cdnasweep -preset workloads -csv workloads.csv
//	cdnasweep -modes xen,cdna -workloads rr,churn,burst
//	cdnasweep -preset topology -json topo.json
//	cdnasweep -hosts 8 -preset topology
//	cdnasweep -modes xen,cdna -hosts 2,4,8 -patterns incast,all2all
//	cdnasweep -preset faults -json faults.json
//	cdnasweep -modes cdna -hosts 3 -patterns incast -faults none,linkflap,blackout -warmfork
//	cdnasweep -spec grid.json -workers 4
//
// The -modes/-nics/-dirs/... axis flags define one cross-product grid;
// -spec reads one or more grids from a JSON file (the same schema
// campaign.Grid marshals to); -preset selects a canned campaign. A
// failing grid point is reported in its record and on stderr but never
// aborts the sweep; the exit status is 1 if any point failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cdna/internal/bench"
	"cdna/internal/campaign"
	"cdna/internal/core"
	"cdna/internal/sim"
	"cdna/internal/workload"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cdnasweep: "+format+"\n", args...)
	os.Exit(2)
}

// splitList parses a comma-separated axis flag with a per-item parser.
func splitList[T any](name, s string, parse func(string) (T, error)) []T {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var vals []T
	for _, tok := range strings.Split(s, ",") {
		v, err := parse(strings.TrimSpace(tok))
		if err != nil {
			fatal("-%s: %v", name, err)
		}
		vals = append(vals, v)
	}
	return vals
}

func presetGrids(name string) []campaign.Grid {
	switch name {
	case "table1":
		return campaign.Table1Grids()
	case "tables":
		return campaign.Tables234Grids()
	case "figures":
		return campaign.FigureGrids()
	case "ablations":
		return campaign.AblationGrids()
	case "workloads":
		return campaign.WorkloadGrids()
	case "topology":
		return campaign.TopologyGrids()
	case "faults":
		return campaign.FaultGrids()
	case "paper":
		return campaign.PaperGrids()
	}
	fatal("unknown preset %q (want table1 | tables | figures | ablations | workloads | topology | faults | paper)", name)
	return nil
}

func main() {
	preset := flag.String("preset", "", "canned campaign: table1 | tables | figures | ablations | workloads | topology | paper")
	spec := flag.String("spec", "", "JSON grid spec file (a campaign.Grid object or array)")

	modes := flag.String("modes", "", "comma list: native | xen | cdna")
	nics := flag.String("nics", "", "comma list: intel | ricenic (Xen only; native/CDNA fix their NIC)")
	dirs := flag.String("dirs", "", "comma list: tx | rx | both")
	guests := flag.String("guests", "", "comma list of guest counts")
	nicCounts := flag.String("niccounts", "", "comma list of physical NIC counts")
	protections := flag.String("protections", "", "comma list: hypercall | iommu | off")
	batches := flag.String("batches", "", "comma list of max descriptors per enqueue (A2; 0 = unlimited)")
	irqs := flag.String("irqs", "", "comma list of bools: direct per-context IRQ delivery (A1)")
	coalesce := flag.String("coalesce", "", "comma list of tx coalescing thresholds (A5; 0 = default)")
	workloads := flag.String("workloads", "", "comma list: bulk | rr | churn | burst (per-kind defaults; use -spec for knobs)")
	hosts := flag.String("hosts", "", "comma list of fabric host counts (1 = classic host+peer; also overrides a preset's host axis)")
	patterns := flag.String("patterns", "", "comma list: pairs | incast | all2all (cross-host scenarios, hosts > 1)")
	shards := flag.String("shards", "", "comma list of engine shard counts for multi-host points (wall-clock only; results are byte-identical at any value)")
	faults := flag.String("faults", "", "comma list: none | linkflap | portfail | blackout (default quarter-window schedule; use -spec for exact timing)")
	conns := flag.Int("conns", 0, "connections per guest per NIC (0 = balanced default)")
	window := flag.Int("window", 0, "transport window in segments (0 = default)")

	quick := flag.Bool("quick", false, "short measurement windows")
	duration := flag.Float64("duration", 0, "measurement window in simulated seconds (overrides -quick)")
	warmup := flag.Float64("warmup", 0, "warmup in simulated seconds (overrides -quick)")
	workers := flag.Int("workers", 0, "concurrent experiments (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "-", "JSON output path (- = stdout, empty = none)")
	csvPath := flag.String("csv", "", "CSV output path (- = stdout)")
	warmfork := flag.Bool("warmfork", false, "share one simulated warmup among grid points that differ only in fault (checkpoint/restore forking; results stay byte-identical to cold runs)")
	progress := flag.Bool("progress", true, "report per-experiment completion on stderr")
	flag.Parse()
	if flag.NArg() > 0 {
		fatal("unexpected arguments %q", flag.Args())
	}

	// Axis flags define an ad-hoc grid; they cannot constrain a canned
	// preset or a spec file, so reject the combination instead of
	// silently ignoring them. -hosts and -shards are the exceptions:
	// they override the matching axis of a preset/spec grid too (so
	// `-hosts 8 -preset topology` re-scales the whole canned campaign to
	// one rack size, and `-shards 4` re-shards it).
	axisFlags := map[string]bool{
		"modes": true, "nics": true, "dirs": true, "guests": true,
		"niccounts": true, "protections": true, "batches": true,
		"irqs": true, "coalesce": true, "conns": true, "window": true,
		"workloads": true, "patterns": true, "faults": true,
	}
	if *preset != "" || *spec != "" {
		flag.Visit(func(f *flag.Flag) {
			if axisFlags[f.Name] {
				fatal("-%s cannot be combined with -preset/-spec (axis flags define their own grid)", f.Name)
			}
		})
	}

	var grids []campaign.Grid
	switch {
	case *preset != "" && *spec != "":
		fatal("-preset and -spec are mutually exclusive")
	case *preset != "":
		grids = presetGrids(*preset)
	case *spec != "":
		f, err := os.Open(*spec)
		if err != nil {
			fatal("%v", err)
		}
		grids, err = campaign.ReadGrids(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
	default:
		g := campaign.Grid{
			Modes:             splitList("modes", *modes, bench.ParseMode),
			NICs:              splitList("nics", *nics, bench.ParseNICKind),
			Dirs:              splitList("dirs", *dirs, bench.ParseDirection),
			Guests:            splitList("guests", *guests, strconv.Atoi),
			NICCounts:         splitList("niccounts", *nicCounts, strconv.Atoi),
			Protections:       splitList("protections", *protections, core.ParseMode),
			MaxEnqueueBatches: splitList("batches", *batches, strconv.Atoi),
			IRQDeliveries:     splitList("irqs", *irqs, strconv.ParseBool),
			TxCoalesce:        splitList("coalesce", *coalesce, strconv.Atoi),
			Workloads: splitList("workloads", *workloads, func(s string) (workload.Spec, error) {
				k, err := workload.ParseKind(s)
				return workload.Spec{Kind: k}, err
			}),
			Hosts:    splitList("hosts", *hosts, strconv.Atoi),
			Patterns: splitList("patterns", *patterns, bench.ParsePattern),
			Shards:   splitList("shards", *shards, strconv.Atoi),
			Faults: splitList("faults", *faults, func(s string) (bench.FaultSpec, error) {
				k, err := bench.ParseFaultKind(s)
				return bench.FaultSpec{Kind: k}, err
			}),
			Conns:  *conns,
			Window: *window,
		}
		if len(g.Dirs) == 0 {
			g.Dirs = []bench.Direction{bench.Tx}
		}
		// A pattern axis without a host axis would be silently collapsed
		// by the single-host default — reject it like any other
		// constraint the grid cannot honor.
		if len(g.Patterns) > 0 && len(g.Hosts) == 0 {
			fatal("-patterns requires -hosts (cross-host scenarios need a multi-host fabric)")
		}
		grids = []campaign.Grid{g}
	}
	if *hosts != "" && (*preset != "" || *spec != "") {
		hs := splitList("hosts", *hosts, strconv.Atoi)
		for i := range grids {
			grids[i].Hosts = hs
		}
	}
	// -shards, like -hosts, composes with a preset/spec: sharding is a
	// wall-clock knob with no effect on results, so re-sharding a canned
	// campaign is always sound.
	if *shards != "" {
		ss := splitList("shards", *shards, strconv.Atoi)
		for i := range grids {
			grids[i].Shards = ss
		}
	}

	cfgs := campaign.Expand(grids...)
	if len(cfgs) == 0 {
		fatal("grid expands to zero experiments")
	}
	wu, du := sim.Time(0), sim.Time(0)
	if *quick {
		o := bench.Quick()
		wu, du = o.Warmup, o.Duration
	}
	if *warmup > 0 {
		wu = sim.Time(*warmup * float64(sim.Second))
	}
	if *duration > 0 {
		du = sim.Time(*duration * float64(sim.Second))
	}
	campaign.Apply(cfgs, wu, du)

	opt := campaign.Options{Workers: *workers}
	if *progress {
		opt.Progress = func(done, total int, out bench.Outcome) {
			status := fmt.Sprintf("%7.0f Mb/s", out.Result.Mbps)
			if out.Err != nil {
				status = "FAILED: " + out.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-32s %s\n", done, total, out.Config.Name(), status)
		}
	}
	start := time.Now()
	var outs []bench.Outcome
	if *warmfork {
		// Warm-start forking runs groups sequentially (each group shares
		// one snapshot image); the per-point progress callback still
		// fires, via the stats line below instead of the worker pool.
		var ws bench.WarmStats
		var err error
		outs, ws, err = bench.RunWarmForked(cfgs)
		if err != nil {
			fatal("%v", err)
		}
		if *progress {
			for i, out := range outs {
				opt.Progress(i+1, len(outs), out)
			}
			fmt.Fprintf(os.Stderr, "warm-start: %d runs forked from %d shared warmups (%d warmup events simulated, %d saved, %d snapshot bytes)\n",
				ws.Runs, ws.Groups, ws.WarmupEvents, ws.EventsSaved, ws.SnapshotBytes)
		}
	} else {
		outs = campaign.Run(cfgs, opt)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "%d experiments in %.1fs wall clock\n", len(outs), time.Since(start).Seconds())
	}

	emit := func(path string, write func(f *os.File) error) {
		if path == "" {
			return
		}
		f := os.Stdout
		if path != "-" {
			var err error
			f, err = os.Create(path)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
		}
		if err := write(f); err != nil {
			fatal("%v", err)
		}
	}
	emit(*jsonPath, func(f *os.File) error { return campaign.WriteJSON(f, outs) })
	emit(*csvPath, func(f *os.File) error { return campaign.WriteCSV(f, outs) })

	if err := campaign.Check(outs); err != nil {
		fmt.Fprintf(os.Stderr, "cdnasweep: %v\n", err)
		os.Exit(1)
	}
}
