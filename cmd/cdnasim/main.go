// Command cdnasim runs a single CDNA/Xen/native experiment and prints
// the measured row: throughput, the six-column execution profile, and
// interrupt rates — the same columns as the paper's Tables 2–4.
//
// Examples:
//
//	cdnasim -mode cdna -dir tx
//	cdnasim -mode xen -nic intel -dir rx -guests 8
//	cdnasim -mode native -nics 6 -dir tx
//	cdnasim -mode cdna -protection off -dir tx
//	cdnasim -mode cdna -workload rr -v
//	cdnasim -mode xen -workload churn -v
//	cdnasim -mode cdna -hosts 4 -pattern incast -v
//	cdnasim -mode xen -hosts 8 -pattern all2all
//	cdnasim -mode cdna -hosts 3 -pattern incast -fault linkflap
//	cdnasim -mode cdna -hosts 3 -fault portfail -fault-at 0.2 -fault-outage 0.1 -fault-target 2
//	cdnasim -mode cdna -hosts 4 -pattern incast -fabric leafspine -spines 2
//	cdnasim -mode cdna -hosts 4 -pattern pairs -fabric leafspine -hostsperleaf 1 -oversub 4
//	cdnasim -mode cdna -hosts 4 -pattern incast -fabric leafspine -workload poisson -flowrate 2000 -sizedist websearch
//	cdnasim -mode cdna -hosts 4 -workload trace -tracefile flows.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"cdna/internal/bench"
	"cdna/internal/core"
	"cdna/internal/sim"
	"cdna/internal/topo"
	"cdna/internal/workload"
)

func main() {
	mode := flag.String("mode", "cdna", "I/O architecture: native | xen | cdna")
	nic := flag.String("nic", "", "NIC model: intel | ricenic (default: intel for xen/native, ricenic for cdna)")
	dir := flag.String("dir", "tx", "traffic direction: tx | rx | both")
	guests := flag.Int("guests", 1, "number of guest domains")
	nics := flag.Int("nics", 2, "number of physical NICs")
	conns := flag.Int("conns", 0, "connections per guest per NIC (0 = balanced default)")
	window := flag.Int("window", 48, "transport window in segments")
	protection := flag.String("protection", "hypercall", "CDNA protection: hypercall | iommu | off")
	wl := flag.String("workload", "bulk", "traffic shape: bulk | rr | churn | burst")
	hosts := flag.Int("hosts", 1, "machines on the switched fabric (1 = classic host+peer topology)")
	pattern := flag.String("pattern", "pairs", "cross-host scenario (hosts > 1): pairs | incast | all2all")
	fabric := flag.String("fabric", "tor", "switching topology (hosts > 1): tor | leafspine | fattree")
	spines := flag.Int("spines", 0, "spine (leafspine) or per-pod aggregation (fattree) switches (0 = default 2)")
	hostsPerLeaf := flag.Int("hostsperleaf", 0, "hosts attached to each leaf/edge switch (0 = default 2)")
	oversub := flag.Float64("oversub", 0, "trunk oversubscription ratio (0 = non-blocking 1:1)")
	fabricSeed := flag.Uint64("fabricseed", 0, "ECMP hash seed for multi-tier fabrics")
	flowRate := flag.Float64("flowrate", 0, "open-loop workloads: mean flow arrivals/s per modeled client (0 = default)")
	clients := flag.Int("clients", 0, "open-loop workloads: modeled clients per endpoint (0 = default 1)")
	sizeDist := flag.String("sizedist", "", "open-loop flow sizes: fixed | pareto | websearch | datamining")
	traceFile := flag.String("tracefile", "", "trace workload: CSV flow trace (arrival,src,dst,bytes)")
	fault := flag.String("fault", "none", "fault scenario: none | linkflap | portfail | blackout")
	faultAt := flag.Float64("fault-at", 0, "fault injection offset from window open, simulated seconds (0 = a quarter into the window)")
	faultOutage := flag.Float64("fault-outage", 0, "fault duration before healing, simulated seconds (0 = a quarter window)")
	faultTarget := flag.Int("fault-target", 0, "victim link (linkflap) or switch port (portfail)")
	duration := flag.Float64("duration", 1.0, "measurement window, simulated seconds")
	warmup := flag.Float64("warmup", 0.3, "warmup, simulated seconds")
	shards := flag.Int("shards", 0, "engine shards for a multi-host run (0/1 = single engine; results are byte-identical at any value)")
	verbose := flag.Bool("v", false, "print extra diagnostics")
	trace := flag.Int("trace", 0, "print the last N simulator events")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	m, err := bench.ParseMode(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	k := bench.NICIntel
	if m == bench.ModeCDNA {
		k = bench.NICRice
	}
	if *nic != "" {
		if k, err = bench.ParseNICKind(*nic); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}
	d, err := bench.ParseDirection(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	p, err := core.ParseMode(*protection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	wk, err := workload.ParseKind(*wl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}

	pat, err := bench.ParsePattern(*pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	fk, err := bench.ParseFaultKind(*fault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	if *hosts <= 1 && pat != bench.PatternPairs {
		fmt.Fprintf(os.Stderr, "-pattern %v requires -hosts > 1 (the classic topology has no fabric)\n", pat)
		os.Exit(2)
	}
	fbKind, err := topo.ParseFabricKind(*fabric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	if *hosts <= 1 && fbKind != topo.KindToR {
		fmt.Fprintf(os.Stderr, "-fabric %v requires -hosts > 1 (a multi-tier fabric needs a rack to connect)\n", fbKind)
		os.Exit(2)
	}
	var sd workload.SizeDist
	if *sizeDist != "" {
		if sd, err = workload.ParseSizeDist(*sizeDist); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}

	cfg := bench.DefaultConfig(m, k, d)
	cfg.Workload = workload.Spec{
		Kind:      wk,
		FlowRate:  *flowRate,
		Clients:   *clients,
		SizeDist:  sd,
		TracePath: *traceFile,
	}
	cfg.Guests = *guests
	cfg.NICs = *nics
	cfg.Window = *window
	cfg.Protection = p
	if *hosts > 1 {
		cfg.Hosts = *hosts
		cfg.Pattern = pat
		cfg.Shards = *shards
		if fbKind != topo.KindToR {
			cfg.Fabric = topo.FabricSpec{
				Kind:         fbKind,
				HostsPerLeaf: *hostsPerLeaf,
				Spines:       *spines,
				Oversub:      *oversub,
				Seed:         *fabricSeed,
			}
		}
	} else if *shards > 1 {
		fmt.Fprintf(os.Stderr, "-shards requires -hosts > 1 (a single host runs on a single engine)\n")
		os.Exit(2)
	}
	if *conns > 0 {
		cfg.ConnsPerGuestPerNIC = *conns
	} else {
		cfg.ConnsPerGuestPerNIC = 0 // balanced default chosen by Run
	}
	cfg.Duration = sim.Time(*duration * float64(sim.Second))
	cfg.Warmup = sim.Time(*warmup * float64(sim.Second))
	if fk != bench.FaultNone {
		// A zero outage selects the default quarter-window schedule.
		cfg.Fault = bench.FaultSpec{
			Kind:   fk,
			After:  sim.Time(*faultAt * float64(sim.Second)),
			Outage: sim.Time(*faultOutage * float64(sim.Second)),
			Target: *faultTarget,
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	var res bench.Result
	if *trace > 0 {
		var machine *bench.Machine
		machine, res, err = bench.RunTraced(cfg, *trace)
		if err == nil {
			for _, e := range machine.Tracer.Last(*trace) {
				fmt.Printf("%12v  %s\n", e.At, e.Name)
			}
		}
	} else {
		res, err = bench.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res)
	if *verbose {
		fmt.Printf("packets/s: %.0f  phys-irq/s: %.0f  drops: %d  retransmits: %d  fairness: %.3f  faults: %d  events: %d\n",
			res.PktPerSec, res.PhysIRQPerSec, res.Drops, res.Retransmits, res.Fairness, res.Faults, res.Events)
	}
	if wk != workload.Bulk {
		fmt.Printf("workload %v: rpc/s: %.0f  flows/s: %.0f  msg p50: %.0f us  p99: %.0f us\n",
			wk, res.RPCPerSec, res.FlowsPerSec, res.MsgLatP50us, res.MsgLatP99us)
	}
	if res.ArrivalsPerSec > 0 {
		fmt.Printf("open loop: arrivals/s: %.0f  completions/s: %.0f (arrivals outrunning completions = backlog growth)\n",
			res.ArrivalsPerSec, res.FlowsPerSec)
	}
	if res.TraceSkipped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d trace events matched no connection (src/dst hosts vs -pattern %v wiring) and were skipped\n",
			res.TraceSkipped, cfg.Pattern)
	}
	if cfg.Hosts > 1 {
		fmt.Printf("fabric %v/%v over %d hosts: switch drops: %d  max egress depth: %d frames\n",
			res.Config.Fabric.Kind, cfg.Pattern, cfg.Hosts, res.FabricDrops, res.FabricMaxDepth)
	}
	if fk != bench.FaultNone {
		// The effective schedule comes from the result's config: Prepare
		// fills the default quarter-window timing.
		f := res.Config.Fault
		fmt.Printf("fault %v at +%v for %v: link drops: %d  floods: %d  retransmits: %d\n",
			f.Kind, f.After, f.Outage, res.LinkDrops, res.FabricFlooded, res.Retransmits)
	}
}
