// Command cdnatables regenerates every table and figure of the paper's
// evaluation (§5) plus the ablations DESIGN.md calls out, printing each
// as an aligned text table.
//
// Usage:
//
//	cdnatables              # everything, full-length runs
//	cdnatables -quick       # shorter measurement windows
//	cdnatables -table 2     # only Table 2
//	cdnatables -figure 3    # only Figure 3
//	cdnatables -ablations   # only the ablation studies
//	cdnatables -topology    # only the cross-host fabric scenarios
//	cdnatables -fabrics     # only the multi-tier fabric + open-loop scenarios
//	cdnatables -workers 1   # sequential (default: all cores)
//	cdnatables -csvdir out  # also write each table as out/<slug>.csv
//	cdnatables -store dir   # serve repeated rows from a durable result cache
//
// Each table's experiments run in parallel through the campaign worker
// pool; results are deterministic regardless of worker count. With
// -store, every row is looked up in (and persisted to) the same
// content-addressed result store cdnasweep and the sweep daemon use,
// so regenerating tables after a sweep — or re-running them at all —
// only simulates the delta; the printed tables are identical either
// way.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cdna/internal/bench"
	"cdna/internal/campaign"
	"cdna/internal/stats"
	"cdna/internal/store"
)

func main() {
	quick := flag.Bool("quick", false, "short measurement windows")
	table := flag.Int("table", 0, "run only this table (1-4)")
	figure := flag.Int("figure", 0, "run only this figure (3-4)")
	ablations := flag.Bool("ablations", false, "run only the ablation studies")
	topology := flag.Bool("topology", false, "run only the cross-host fabric scenarios (incast, all-to-all)")
	fabrics := flag.Bool("fabrics", false, "run only the multi-tier fabric scenarios (cross-rack incast, oversubscription, open-loop load)")
	workers := flag.Int("workers", 0, "concurrent experiments per table (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "engine shards per multi-host experiment (wall-clock only; tables are byte-identical at any value)")
	csvDir := flag.String("csvdir", "", "also write each table as CSV into this directory")
	storeDir := flag.String("store", "", "durable result-store directory (shared with cdnasweep/the daemon); rows already stored are not re-simulated")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
	}

	opts := bench.Full()
	if *quick {
		opts = bench.Quick()
	}
	opts.Runner = campaign.Runner(*workers)
	opts.Shards = *shards
	var cacheStats campaign.CacheStats
	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		opts.Runner = campaign.CachedRunner(*workers, s, &cacheStats)
	}

	type job struct {
		title string
		run   func() (*stats.Table, error)
	}
	var jobs []job
	add := func(title string, fn func() (*stats.Table, error)) {
		jobs = append(jobs, job{title, fn})
	}

	// The fabric scenarios are opt-in (beyond the paper's single-host
	// evaluation), so the default output stays exactly the paper set.
	wantTables := *table == 0 && *figure == 0 && !*ablations && !*topology && !*fabrics
	if wantTables || *table == 1 {
		add("Table 1: native Linux vs Xen guest (paper: native 5126/3629, Xen 1602/1112 Mb/s)", func() (*stats.Table, error) {
			t, _, err := bench.Table1(opts)
			return t, err
		})
	}
	if wantTables || *table == 2 {
		add("Table 2: single-guest transmit, 2 NICs (paper: 1602 / 1674 / 1867 Mb/s)", func() (*stats.Table, error) {
			t, _, err := bench.Table2(opts)
			return t, err
		})
	}
	if wantTables || *table == 3 {
		add("Table 3: single-guest receive, 2 NICs (paper: 1112 / 1075 / 1874 Mb/s)", func() (*stats.Table, error) {
			t, _, err := bench.Table3(opts)
			return t, err
		})
	}
	if wantTables || *table == 4 {
		add("Table 4: CDNA with and without DMA memory protection (paper: hyp 10.2->1.9%, idle +9.6)", func() (*stats.Table, error) {
			t, _, err := bench.Table4(opts)
			return t, err
		})
	}
	if wantTables || *figure == 3 {
		add("Figure 3: transmit throughput vs guests (paper: Xen 1602->891, CDNA ~1867 flat)", func() (*stats.Table, error) {
			t, _, err := bench.Figure3(opts, bench.FigureGuests)
			return t, err
		})
	}
	if wantTables || *figure == 4 {
		add("Figure 4: receive throughput vs guests (paper: Xen 1112->558, CDNA ~1874 flat)", func() (*stats.Table, error) {
			t, _, err := bench.Figure4(opts, bench.FigureGuests)
			return t, err
		})
	}
	if wantTables || *ablations {
		add("Ablation A1 (§3.2): interrupt bit vectors vs per-context interrupts, 8 guests", func() (*stats.Table, error) {
			t, _, err := bench.AblationInterrupts(opts, 8)
			return t, err
		})
		add("Ablation A2 (§3.3): descriptors per enqueue hypercall", func() (*stats.Table, error) {
			t, _, err := bench.AblationBatching(opts, []int{1, 2, 4, 8, 16, 0})
			return t, err
		})
		add("Ablation A4 (§5.3): protection via hypercall vs IOMMU vs disabled", func() (*stats.Table, error) {
			t, _, err := bench.AblationIOMMU(opts)
			return t, err
		})
		add("Ablation A5 (§5.1): transmit interrupt coalescing threshold", func() (*stats.Table, error) {
			t, _, err := bench.AblationCoalescing(opts, []int{2, 4, 8, 12, 24, 48})
			return t, err
		})
		add("Extension: full-duplex traffic (beyond the paper's unidirectional runs)", func() (*stats.Table, error) {
			t, _, err := bench.ExtensionDuplex(opts)
			return t, err
		})
		add("Extension (§5.4 conjecture): CDNA with four NICs vs guest count", func() (*stats.Table, error) {
			t, _, err := bench.ExtensionMoreNICs(opts, []int{1, 2, 4, 8, 16, 24})
			return t, err
		})
	}
	if *topology {
		add("Topology: N-to-1 incast over the switched fabric (Xen vs CDNA)", func() (*stats.Table, error) {
			t, _, err := bench.TopologyIncast(opts, []int{2, 4, 8})
			return t, err
		})
		add("Topology: all-to-all shuffle over the switched fabric", func() (*stats.Table, error) {
			t, _, err := bench.TopologyAllToAll(opts, []int{4, 8})
			return t, err
		})
	}
	if *fabrics {
		add("Fabric: cross-rack incast collapse (ToR vs leaf-spine vs fat-tree)", func() (*stats.Table, error) {
			t, _, err := bench.FabricIncast(opts, 4)
			return t, err
		})
		add("Fabric: core-link saturation vs oversubscription ratio (leaf-spine)", func() (*stats.Table, error) {
			t, _, err := bench.FabricOversub(opts, []float64{1, 2, 4})
			return t, err
		})
		add("Fabric: Xen vs CDNA under open-loop Poisson load (response-time collapse)", func() (*stats.Table, error) {
			t, _, err := bench.ScenarioOpenLoop(opts, []float64{50, 500, 4000})
			return t, err
		})
	}

	for _, j := range jobs {
		start := time.Now()
		fmt.Printf("=== %s ===\n", j.title)
		t, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(completed in %.1fs wall clock)\n\n", time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, j.title, t); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *storeDir != "" {
		c := cacheStats.Counts()
		fmt.Fprintf(os.Stderr, "result store: %d hits / %d misses (hit rate %.0f%%)\n",
			c.Hits, c.Misses, c.HitRate()*100)
	}
}

// writeCSV stores a table as <dir>/<slug>.csv, slugging the part of
// the title before the colon ("Table 2: ..." -> table-2.csv).
func writeCSV(dir, title string, t *stats.Table) error {
	slug, _, _ := strings.Cut(title, ":")
	slug = strings.ToLower(strings.TrimSpace(slug))
	slug = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r == ' ':
			return '-'
		}
		return -1
	}, slug)
	f, err := os.Create(filepath.Join(dir, slug+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
