// Command cdnabench measures the simulator's own performance — the
// foundation-layer event core, one end-to-end experiment, and the
// checkpoint/restore layer (snapshot_roundtrip and warmstart_fork) — and
// writes the result as JSON, so the repository's perf trajectory is a
// committed artifact rather than folklore. `make bench` runs it (for
// both queue implementations) and emits BENCH_sim.json; `make
// bench-check` replays a short run and fails on regression.
//
// Usage:
//
//	cdnabench                     # print JSON to stdout
//	cdnabench -out BENCH_sim.json # write to a file
//	cdnabench -benchtime 2s       # longer micro-benchmark windows
//	cdnabench -short              # quick windows (CI's bench-check)
//	cdnabench -ref heap.json      # embed another run's rows as the
//	                              # reference block (wheel vs heap)
//	cdnabench -compare old.json   # diff this run against a committed
//	                              # BENCH_sim.json; exit 1 when any
//	                              # ns/event metric regressed >15%
//	cdnabench -compare old.json -with new.json
//	                              # pure file diff, no measurement
//	cdnabench -tol 10             # tighten the regression tolerance (%)
//	cdnabench -run 'model\.'      # measure only matching rows (local
//	                              # iteration; skipped rows report zero)
//
// The binary reports which event queue it was compiled with
// ("scheduler": wheel by default, heap under -tags simheap); the
// committed artifact carries the heap build's rows in "reference" so
// the wheel-vs-heap comparison travels with the repo.
//
// The seed_baseline block records the pre-refactor engine (heap
// allocation per event through container/heap) measured on the same
// class of machine when the zero-allocation core landed; the headline
// acceptance bars are engine.schedule_fire events/sec at ≥2× that
// baseline with zero allocs/op, and (since the timing-wheel PR)
// end-to-end events/sec at ≥1.5× the PR 2 heap engine's committed run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"cdna/internal/bench"
	"cdna/internal/core"
	"cdna/internal/core/corebench"
	"cdna/internal/ether/etherbench"
	"cdna/internal/nic/nicbench"
	"cdna/internal/sim"
	"cdna/internal/sim/simbench"
	"cdna/internal/topo"
	"cdna/internal/topo/topobench"
	"cdna/internal/transport/transportbench"
	"cdna/internal/workload"
)

// Row is one micro-benchmark's distilled result. The timing is the
// median of five measurement windows; SpreadPct records the window
// scatter ((max-min)/median) so a noisy measuring machine is visible
// in the artifact instead of silently widening the regression gate.
type Row struct {
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SpreadPct    float64 `json:"spread_pct,omitempty"`
}

// timingRuns is how many times each wall-clock row is measured; the
// reported figure is the median. A median of five tolerates two
// outlier windows where best-of-three tolerated none slow-side — the
// difference between a flaky -compare gate and a stable one on shared
// builders.
const timingRuns = 5

// medianIdx returns the index of the median sample (lower middle) and
// the spread percentage (max-min relative to the median).
func medianIdx(samples []float64) (int, float64) {
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return samples[idx[a]] < samples[idx[b]] })
	mid := idx[(len(idx)-1)/2]
	spread := 0.0
	if m := samples[mid]; m > 0 {
		spread = (samples[idx[len(idx)-1]] - samples[idx[0]]) / m * 100
	}
	return mid, spread
}

func row(r testing.BenchmarkResult) Row {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out := Row{NsPerEvent: ns, AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
	if ns > 0 {
		out.EventsPerSec = 1e9 / ns
	}
	return out
}

// EngineRows are the event-core micro-benchmarks (one simulated event
// per op), in simbench.
type EngineRows struct {
	ScheduleFire        Row `json:"schedule_fire"`         // pooled event, bound callback
	ScheduleFireClosure Row `json:"schedule_fire_closure"` // fresh capturing closure per event
	ScheduleFireDepth64 Row `json:"schedule_fire_depth64"` // under a standing queue population
	TimerRearm          Row `json:"timer_rearm"`           // persistent timer re-armed in place
	Cancel              Row `json:"cancel"`                // schedule→cancel→recycle
	CancelHeavy         Row `json:"cancel_heavy"`          // cancel under standing load
	RTOChurn            Row `json:"rto_churn"`             // far-future timer re-arm churn
}

// ModelRows are the model-layer micro-benchmarks — the paths between
// the event core and a whole experiment, each holding the same zero
// allocs/op contract the engine rows do. One op is one model-level
// unit of work (a packet, a descriptor, a segment, a frame lifecycle);
// the benchmark bodies live next to the packages they measure
// (internal/nic/nicbench, internal/core/corebench,
// internal/transport/transportbench, internal/ether/etherbench).
type ModelRows struct {
	NicTxPipeline    Row `json:"nic_tx_pipeline"`   // doorbell→fetch→process→DMA→wire→reap
	GuestDMA         Row `json:"guest_dma"`         // hypercall validate+pin+stamp+publish
	TransportSegment Row `json:"transport_segment"` // pooled segment send→deliver→ack round trip
	FrameArena       Row `json:"frame_arena"`       // arena Get→pipe traversal→Release
}

// Report is the BENCH_sim.json schema.
type Report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`

	// GOMAXPROCS records the core count of the measuring machine. The
	// sharded multi-host rows depend on it directly (shards execute in
	// parallel), so -compare skips their regression gate when the two
	// reports were measured at different core counts.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`

	// Scheduler is the compiled-in event queue: "wheel" (default) or
	// "heap" (-tags simheap).
	Scheduler string `json:"scheduler"`

	Engine EngineRows `json:"engine"`

	// Model holds the model-layer rows (see ModelRows).
	Model ModelRows `json:"model"`

	// Fabric is the multi-host switch's hot path (internal/topo): one
	// store-and-forward traversal per op — ingress, forwarding decision,
	// bounded egress FIFO, line-rate serialization, delivery. The
	// allocs/op gate holds here exactly as for the engine rows.
	Fabric Row `json:"fabric_forward"`

	// One full experiment (CDNA transmit, quick windows) timed end to
	// end: the whole-machine events/sec the engine work buys. Median of
	// five runs, so a background scheduling hiccup on the measuring
	// machine does not masquerade as a simulator regression (or a
	// lucky fast window as a speedup).
	EndToEnd EndToEnd `json:"end_to_end"`

	// MultiHost is the same end-to-end timing for a 4-host CDNA incast
	// on the switched fabric — the cluster-scale row: four machines'
	// worth of model per simulated second through one engine.
	MultiHost EndToEnd `json:"multi_host_end_to_end"`

	// MultiHostShards{2,4} rerun the multi-host row with the machine
	// partitioned over 2 and 4 engine shards (Config.Shards). Results
	// are byte-identical to the single-engine row by contract; the wall
	// clock measures what the sharded executor costs or buys. On a
	// single-core machine the shards execute sequentially, so these rows
	// carry the barrier/seam overhead, not a parallel speedup — see
	// EXPERIMENTS.md.
	MultiHostShards2 EndToEnd `json:"multi_host_end_to_end_shards2"`
	MultiHostShards4 EndToEnd `json:"multi_host_end_to_end_shards4"`

	// FabricLeafSpine reruns the multi-host incast over a two-tier
	// leaf-spine fabric (internal/topo multi-switch path: ECMP hashing,
	// trunk pipes, valley-free forwarding on every cross-leaf frame).
	FabricLeafSpine EndToEnd `json:"fabric_leafspine_end_to_end"`

	// OpenLoop is the open-loop workload row: Poisson flow arrivals
	// (web-search sizes) incast across the leaf-spine fabric — the
	// arrival timer, backlog FIFO and per-flow bookkeeping on top of the
	// fabric row above.
	OpenLoop EndToEnd `json:"open_loop_end_to_end"`

	// SnapRoundTrip times the checkpoint/restore layer on the same
	// machine: one Snapshot of a mid-window run (live queues, armed
	// timers, open windows) and one Restore of that image into a freshly
	// built machine. Median of five, like every wall-clock row.
	SnapRoundTrip SnapRoundTrip `json:"snapshot_roundtrip"`

	// WarmstartFork times warm-start forking against cold execution: a
	// three-point fault grid (baseline, link flap, blackout) run cold
	// and then forked from one shared warmup snapshot. The forked
	// results are byte-identical to the cold ones; only the redundant
	// warmup simulation is saved.
	WarmstartFork WarmstartFork `json:"warmstart_fork"`

	// Reference carries another build's rows for side-by-side reading —
	// `make bench` embeds the heap build's measurement here, so the
	// committed artifact always shows wheel vs. heap.
	Reference *Reference `json:"reference,omitempty"`

	// The seed engine measured immediately before the zero-allocation
	// refactor (BenchmarkBaselineScheduleFire on the reference builder:
	// Xeon @2.70GHz, go1.24): 81.5 ns/event, 1 alloc/64 B per event.
	SeedBaseline struct {
		NsPerEvent  float64 `json:"ns_per_event"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"seed_baseline"`

	// SpeedupVsSeed is schedule_fire events/sec over the seed baseline,
	// valid when run on comparable hardware.
	SpeedupVsSeed float64 `json:"speedup_vs_seed"`
}

// EndToEnd is one wall-clock-timed whole-machine run: the median of
// five runs, with the run-to-run wall-clock scatter recorded.
type EndToEnd struct {
	Config        string  `json:"config"`
	Events        uint64  `json:"events"`
	WallSeconds   float64 `json:"wall_seconds"`
	EventsPerSec  float64 `json:"events_per_sec"`
	Mbps          float64 `json:"mbps"`
	WallSpreadPct float64 `json:"wall_spread_pct,omitempty"`
}

// SnapRoundTrip is the checkpoint/restore timing row.
type SnapRoundTrip struct {
	Config           string  `json:"config"`
	Bytes            int     `json:"bytes"`
	SnapshotSeconds  float64 `json:"snapshot_seconds"`
	RestoreSeconds   float64 `json:"restore_seconds"`
	RoundTripsPerSec float64 `json:"round_trips_per_sec"`
}

// WarmstartFork is the warm-start forking row: one fault grid run cold
// and forked, with the shared-warmup savings.
type WarmstartFork struct {
	Config        string  `json:"config"`
	Runs          int     `json:"runs"`
	Groups        int     `json:"groups"`
	WarmupEvents  uint64  `json:"warmup_events"`
	EventsSaved   uint64  `json:"events_saved"`
	ColdSeconds   float64 `json:"cold_wall_seconds"`
	ForkedSeconds float64 `json:"forked_wall_seconds"`
	Speedup       float64 `json:"speedup"`
}

// Reference is an embedded secondary measurement (see Report.Reference).
type Reference struct {
	Scheduler        string     `json:"scheduler"`
	Engine           EngineRows `json:"engine"`
	Model            ModelRows  `json:"model"`
	Fabric           Row        `json:"fabric_forward"`
	EndToEnd         EndToEnd   `json:"end_to_end"`
	MultiHost        EndToEnd   `json:"multi_host_end_to_end"`
	MultiHostShards2 EndToEnd   `json:"multi_host_end_to_end_shards2"`
	MultiHostShards4 EndToEnd   `json:"multi_host_end_to_end_shards4"`
	FabricLeafSpine  EndToEnd   `json:"fabric_leafspine_end_to_end"`
	OpenLoop         EndToEnd   `json:"open_loop_end_to_end"`
}

func measure(benchtime time.Duration, match func(string) bool) (*Report, error) {
	if f := flag.Lookup("test.benchtime"); f != nil {
		if err := f.Value.Set(benchtime.String()); err != nil {
			return nil, err
		}
	}
	var rep Report
	rep.GoVersion = runtime.Version()
	rep.GOARCH = runtime.GOARCH
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Scheduler = sim.SchedulerName

	// Micro rows are the median of five windows, like the end-to-end
	// rows below: on a shared or frequency-scaled machine a single
	// measurement window can land in a slow phase and masquerade as a
	// hot-path regression, and a best-of selection is biased fast by the
	// same noise. The allocs/op figures are identical across runs
	// (allocation is deterministic); only the timing varies. Rows whose
	// name does not match the -run filter are skipped and report as zero.
	best := func(name string, out *Row, fn func(*testing.B)) {
		if !match(name) {
			return
		}
		rows := make([]Row, timingRuns)
		ns := make([]float64, timingRuns)
		for i := range rows {
			rows[i] = row(testing.Benchmark(fn))
			ns[i] = rows[i].NsPerEvent
		}
		mid, spread := medianIdx(ns)
		*out = rows[mid]
		out.AllocsPerOp, out.BytesPerOp = rows[0].AllocsPerOp, rows[0].BytesPerOp
		out.SpreadPct = spread
	}
	best("engine.schedule_fire", &rep.Engine.ScheduleFire, simbench.ScheduleFire)
	best("engine.schedule_fire_closure", &rep.Engine.ScheduleFireClosure, simbench.ScheduleFireClosure)
	best("engine.schedule_fire_depth64", &rep.Engine.ScheduleFireDepth64, simbench.ScheduleFireDepth64)
	best("engine.timer_rearm", &rep.Engine.TimerRearm, simbench.TimerRearm)
	best("engine.cancel", &rep.Engine.Cancel, simbench.Cancel)
	best("engine.cancel_heavy", &rep.Engine.CancelHeavy, simbench.CancelHeavy)
	best("engine.rto_churn", &rep.Engine.RTOChurn, simbench.RTOChurn)
	best("fabric.forward", &rep.Fabric, topobench.Forward)
	best("model.nic_tx_pipeline", &rep.Model.NicTxPipeline, nicbench.TxPipeline)
	best("model.guest_dma", &rep.Model.GuestDMA, corebench.GuestDMA)
	best("model.transport_segment", &rep.Model.TransportSegment, transportbench.Segment)
	best("model.frame_arena", &rep.Model.FrameArena, etherbench.FrameArena)

	endToEnd := func(name string, cfg bench.Config, out *EndToEnd) error {
		if !match(name) {
			return nil
		}
		cfg.Protection = core.ModeHypercall
		cfg.Warmup = bench.Quick().Warmup
		cfg.Duration = bench.Quick().Duration
		walls := make([]float64, timingRuns)
		var events uint64
		var mbps float64
		for i := range walls {
			start := time.Now()
			res, err := bench.Run(cfg)
			walls[i] = time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("end-to-end run failed: %w", err)
			}
			// The simulation is deterministic: events and Mbps are
			// identical across runs; only the wall clock varies.
			events, mbps = res.Events, res.Mbps
		}
		mid, spread := medianIdx(walls)
		out.Config = cfg.Name()
		out.Events = events
		out.WallSeconds = walls[mid]
		out.Mbps = mbps
		out.WallSpreadPct = spread
		if out.WallSeconds > 0 {
			out.EventsPerSec = float64(out.Events) / out.WallSeconds
		}
		return nil
	}
	if err := endToEnd("end_to_end", bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx), &rep.EndToEnd); err != nil {
		return nil, err
	}
	mh := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	mh.Hosts = 4
	mh.Pattern = bench.PatternIncast
	if err := endToEnd("multi_host", mh, &rep.MultiHost); err != nil {
		return nil, err
	}
	for _, s := range []struct {
		name string
		n    int
		out  *EndToEnd
	}{{"multi_host_shards2", 2, &rep.MultiHostShards2}, {"multi_host_shards4", 4, &rep.MultiHostShards4}} {
		cfg := mh
		cfg.Shards = s.n
		if err := endToEnd(s.name, cfg, s.out); err != nil {
			return nil, err
		}
	}
	ls := mh
	ls.Fabric = topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	if err := endToEnd("fabric_leafspine", ls, &rep.FabricLeafSpine); err != nil {
		return nil, err
	}
	ol := ls
	ol.Workload = workload.Spec{Kind: workload.Poisson, FlowRate: 2000, SizeDist: workload.SizeWebSearch}
	if err := endToEnd("open_loop", ol, &rep.OpenLoop); err != nil {
		return nil, err
	}
	if match("snapshot_roundtrip") {
		if err := snapRoundTrip(&rep.SnapRoundTrip); err != nil {
			return nil, err
		}
	}
	if match("warmstart_fork") {
		if err := warmstartFork(&rep.WarmstartFork); err != nil {
			return nil, err
		}
	}

	rep.SeedBaseline.NsPerEvent = 81.5
	rep.SeedBaseline.AllocsPerOp = 1
	if rep.Engine.ScheduleFire.NsPerEvent > 0 {
		rep.SpeedupVsSeed = rep.SeedBaseline.NsPerEvent / rep.Engine.ScheduleFire.NsPerEvent
	}
	return &rep, nil
}

// quickConfig is the end-to-end benchmark machine: CDNA transmit with
// quick measurement windows.
func quickConfig() bench.Config {
	cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	cfg.Protection = core.ModeHypercall
	cfg.Warmup = bench.Quick().Warmup
	cfg.Duration = bench.Quick().Duration
	return cfg
}

// snapRoundTrip measures one Snapshot plus one Restore of a mid-window
// machine, median of five (the image bytes are identical across runs).
func snapRoundTrip(out *SnapRoundTrip) error {
	cfg := quickConfig()
	m, err := bench.Prepare(cfg)
	if err != nil {
		return err
	}
	m.Launch()
	m.RunTo(cfg.Warmup)
	m.OpenWindow()
	// Mid-window: in-flight frames, armed timers, half-filled histograms
	// — the state walk at its busiest.
	m.RunTo(cfg.Warmup + cfg.Duration/2)
	type trip struct{ snap, rest float64 }
	trips := make([]trip, timingRuns)
	totals := make([]float64, timingRuns)
	for i := range trips {
		start := time.Now()
		img, err := m.Snapshot()
		snapWall := time.Since(start).Seconds()
		if err != nil {
			return err
		}
		m2, err := bench.Prepare(cfg)
		if err != nil {
			return err
		}
		start = time.Now()
		if err := m2.Restore(img); err != nil {
			return err
		}
		trips[i] = trip{snap: snapWall, rest: time.Since(start).Seconds()}
		totals[i] = trips[i].snap + trips[i].rest
		out.Config = cfg.Name()
		out.Bytes = len(img)
	}
	mid, _ := medianIdx(totals)
	out.SnapshotSeconds, out.RestoreSeconds = trips[mid].snap, trips[mid].rest
	if s := out.SnapshotSeconds + out.RestoreSeconds; s > 0 {
		out.RoundTripsPerSec = 1 / s
	}
	return nil
}

// warmstartFork times a three-point fault grid cold and warm-forked;
// cold and forked walls are each the median of five.
func warmstartFork(out *WarmstartFork) error {
	base := quickConfig()
	cfgs := []bench.Config{base, base, base}
	cfgs[1].Fault = bench.FaultSpec{Kind: bench.FaultLinkFlap}
	cfgs[2].Fault = bench.FaultSpec{Kind: bench.FaultBlackout}
	colds := make([]float64, timingRuns)
	forkeds := make([]float64, timingRuns)
	for i := range colds {
		start := time.Now()
		for _, cfg := range cfgs {
			if _, err := bench.Run(cfg); err != nil {
				return err
			}
		}
		colds[i] = time.Since(start).Seconds()
		start = time.Now()
		outs, ws, err := bench.RunWarmForked(cfgs)
		if err != nil {
			return err
		}
		forkeds[i] = time.Since(start).Seconds()
		for _, o := range outs {
			if o.Err != nil {
				return o.Err
			}
		}
		out.Config = base.Name()
		out.Runs, out.Groups = ws.Runs, ws.Groups
		out.WarmupEvents, out.EventsSaved = ws.WarmupEvents, ws.EventsSaved
	}
	coldMid, _ := medianIdx(colds)
	forkedMid, _ := medianIdx(forkeds)
	out.ColdSeconds, out.ForkedSeconds = colds[coldMid], forkeds[forkedMid]
	if out.ForkedSeconds > 0 {
		out.Speedup = out.ColdSeconds / out.ForkedSeconds
	}
	return nil
}

func load(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// metric is one comparable ns/event figure extracted from a report.
// procs is nonzero only for rows whose timing depends on the measuring
// machine's core count (the sharded multi-host rows); compare() skips
// the regression gate on those when the two reports disagree. spread is
// the row's recorded measurement scatter (SpreadPct / WallSpreadPct),
// which widens the per-row regression gate.
type metric struct {
	name   string
	ns     float64
	allocs int64
	procs  int
	spread float64
}

func metrics(r *Report) []metric {
	e2eNs := 0.0
	if r.EndToEnd.EventsPerSec > 0 {
		e2eNs = 1e9 / r.EndToEnd.EventsPerSec
	}
	mhNs := 0.0
	if r.MultiHost.EventsPerSec > 0 {
		mhNs = 1e9 / r.MultiHost.EventsPerSec
	}
	snapNs := (r.SnapRoundTrip.SnapshotSeconds + r.SnapRoundTrip.RestoreSeconds) * 1e9
	forkNs := 0.0
	if r.WarmstartFork.Runs > 0 {
		forkNs = r.WarmstartFork.ForkedSeconds / float64(r.WarmstartFork.Runs) * 1e9
	}
	mh2Ns, mh4Ns := 0.0, 0.0
	if r.MultiHostShards2.EventsPerSec > 0 {
		mh2Ns = 1e9 / r.MultiHostShards2.EventsPerSec
	}
	if r.MultiHostShards4.EventsPerSec > 0 {
		mh4Ns = 1e9 / r.MultiHostShards4.EventsPerSec
	}
	flsNs, olNs := 0.0, 0.0
	if r.FabricLeafSpine.EventsPerSec > 0 {
		flsNs = 1e9 / r.FabricLeafSpine.EventsPerSec
	}
	if r.OpenLoop.EventsPerSec > 0 {
		olNs = 1e9 / r.OpenLoop.EventsPerSec
	}
	return []metric{
		{"engine.schedule_fire", r.Engine.ScheduleFire.NsPerEvent, r.Engine.ScheduleFire.AllocsPerOp, 0, r.Engine.ScheduleFire.SpreadPct},
		{"engine.schedule_fire_closure", r.Engine.ScheduleFireClosure.NsPerEvent, r.Engine.ScheduleFireClosure.AllocsPerOp, 0, r.Engine.ScheduleFireClosure.SpreadPct},
		{"engine.schedule_fire_depth64", r.Engine.ScheduleFireDepth64.NsPerEvent, r.Engine.ScheduleFireDepth64.AllocsPerOp, 0, r.Engine.ScheduleFireDepth64.SpreadPct},
		{"engine.timer_rearm", r.Engine.TimerRearm.NsPerEvent, r.Engine.TimerRearm.AllocsPerOp, 0, r.Engine.TimerRearm.SpreadPct},
		{"engine.cancel", r.Engine.Cancel.NsPerEvent, r.Engine.Cancel.AllocsPerOp, 0, r.Engine.Cancel.SpreadPct},
		{"engine.cancel_heavy", r.Engine.CancelHeavy.NsPerEvent, r.Engine.CancelHeavy.AllocsPerOp, 0, r.Engine.CancelHeavy.SpreadPct},
		{"engine.rto_churn", r.Engine.RTOChurn.NsPerEvent, r.Engine.RTOChurn.AllocsPerOp, 0, r.Engine.RTOChurn.SpreadPct},
		{"fabric.forward", r.Fabric.NsPerEvent, r.Fabric.AllocsPerOp, 0, r.Fabric.SpreadPct},
		{"end_to_end.ns_per_event", e2eNs, 0, 0, r.EndToEnd.WallSpreadPct},
		{"multi_host.ns_per_event", mhNs, 0, 0, r.MultiHost.WallSpreadPct},
		// Snapshot+restore round trip and per-run forked wall: absent
		// (zero) in pre-checkpoint artifacts, where they report as n/a.
		{"snapshot_roundtrip.ns", snapNs, 0, 0, 0},
		{"warmstart_fork.ns_per_run", forkNs, 0, 0, 0},
		// compare() walks the OLD report's metric list by index, so new
		// metrics must only ever be added at the end to stay comparable
		// with committed artifacts. The sharded rows carry the report's
		// GOMAXPROCS: their wall clock depends on how many shards actually
		// run in parallel, so cross-machine comparisons skip their gate.
		{"multi_host_shards2.ns_per_event", mh2Ns, 0, r.GOMAXPROCS, r.MultiHostShards2.WallSpreadPct},
		{"multi_host_shards4.ns_per_event", mh4Ns, 0, r.GOMAXPROCS, r.MultiHostShards4.WallSpreadPct},
		// Model-layer rows (added at the end per the rule above).
		{"model.nic_tx_pipeline", r.Model.NicTxPipeline.NsPerEvent, r.Model.NicTxPipeline.AllocsPerOp, 0, r.Model.NicTxPipeline.SpreadPct},
		{"model.guest_dma", r.Model.GuestDMA.NsPerEvent, r.Model.GuestDMA.AllocsPerOp, 0, r.Model.GuestDMA.SpreadPct},
		{"model.transport_segment", r.Model.TransportSegment.NsPerEvent, r.Model.TransportSegment.AllocsPerOp, 0, r.Model.TransportSegment.SpreadPct},
		{"model.frame_arena", r.Model.FrameArena.NsPerEvent, r.Model.FrameArena.AllocsPerOp, 0, r.Model.FrameArena.SpreadPct},
		// Multi-tier fabric and open-loop workload rows (this PR's
		// additions, at the end per the rule above).
		{"fabric_leafspine.ns_per_event", flsNs, 0, 0, r.FabricLeafSpine.WallSpreadPct},
		{"open_loop.ns_per_event", olNs, 0, 0, r.OpenLoop.WallSpreadPct},
	}
}

// spreadTolFactor scales a row's recorded measurement scatter into its
// regression gate: a row whose five windows spread S% apart can show a
// median-to-median delta of order S between two healthy runs, so the
// effective tolerance is max(tol, spreadTolFactor*S). The committed
// baseline's spread and the current run's both widen the gate — noise
// on either side of the comparison produces the same false regression.
const spreadTolFactor = 1.5

// effectiveTol is the per-row regression tolerance: the -tol floor,
// widened by the larger recorded spread of the two rows being compared.
func effectiveTol(tol float64, old, cur metric) float64 {
	s := old.spread
	if cur.spread > s {
		s = cur.spread
	}
	if w := spreadTolFactor * s; w > tol {
		return w
	}
	return tol
}

// compare prints per-metric deltas of cur vs old and reports whether
// any ns/event metric regressed by more than its per-row tolerance
// (the -tol floor widened by the row's recorded measurement spread —
// see effectiveTol), or any engine benchmark started allocating.
func compare(old, cur *Report, tol float64) (failed bool) {
	fmt.Printf("comparing against committed baseline (%s scheduler, %s):\n",
		old.Scheduler, old.GoVersion)
	fmt.Printf("  %-30s %12s %12s %9s\n", "metric", "old ns/ev", "new ns/ev", "delta")
	om, cm := metrics(old), metrics(cur)
	for i, o := range om {
		c := cm[i]
		// The alloc gate holds regardless of timing comparability.
		if c.allocs > o.allocs {
			fmt.Printf("  %-30s allocs/op %d -> %d  << REGRESSION\n", o.name, o.allocs, c.allocs)
			failed = true
		}
		switch {
		case o.ns <= 0:
			// Metric absent from an older artifact: reported, not gated.
			fmt.Printf("  %-30s %12.2f %12.2f %9s\n", o.name, o.ns, c.ns, "n/a")
		case c.ns <= 0:
			// The current run failed to measure a metric the baseline
			// has — a silently broken benchmark, not a speedup.
			fmt.Printf("  %-30s %12.2f %12.2f %9s  << MISSING\n", o.name, o.ns, c.ns, "n/a")
			failed = true
		case o.procs != 0 && c.procs != 0 && o.procs != c.procs:
			// Core-count-sensitive row measured on machines with different
			// parallelism: the delta is hardware, not a code regression.
			delta := (c.ns - o.ns) / o.ns * 100
			fmt.Printf("  %-30s %12.2f %12.2f %+8.1f%%  (skipped: %d vs %d cores)\n",
				o.name, o.ns, c.ns, delta, o.procs, c.procs)
		default:
			delta := (c.ns - o.ns) / o.ns * 100
			rowTol := effectiveTol(tol, o, c)
			mark := ""
			switch {
			case delta > rowTol:
				mark = "  << REGRESSION"
				failed = true
			case delta > tol:
				// Inside the spread-widened gate but over the floor: note
				// the widening so a quiet machine's run still reads clean.
				mark = fmt.Sprintf("  (within spread-widened gate %.0f%%)", rowTol)
			}
			fmt.Printf("  %-30s %12.2f %12.2f %+8.1f%%%s\n", o.name, o.ns, c.ns, delta, mark)
		}
	}
	if failed {
		fmt.Printf("FAIL: a metric regressed beyond its tolerance (floor %.0f%%, widened per row by recorded spread)\n", tol)
	} else {
		fmt.Printf("ok: all metrics within tolerance (floor %.0f%%, widened per row by recorded spread)\n", tol)
	}
	return failed
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cdnabench: %v\n", err)
	os.Exit(1)
}

func main() {
	testing.Init() // registers test.benchtime, which testing.Benchmark honours
	out := flag.String("out", "", "write JSON here (default stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "per-micro-benchmark measurement time")
	short := flag.Bool("short", false, "quick measurement windows (CI bench-check)")
	refPath := flag.String("ref", "", "embed this report's rows as the reference block")
	comparePath := flag.String("compare", "", "diff against this BENCH_sim.json; exit 1 on regression")
	withPath := flag.String("with", "", "with -compare: diff this file instead of measuring")
	tol := flag.Float64("tol", 15, "regression tolerance on ns/event metrics, percent")
	runFilter := flag.String("run", "", "measure only rows whose name matches this regexp (skipped rows report zero); for local iteration, not -compare")
	flag.Parse()

	match := func(string) bool { return true }
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fatal(fmt.Errorf("-run: %w", err))
		}
		match = re.MatchString
	}

	bt := *benchtime
	if *short && bt > 250*time.Millisecond {
		bt = 250 * time.Millisecond
	}

	var rep *Report
	var err error
	if *withPath != "" {
		if *comparePath == "" {
			fatal(fmt.Errorf("-with requires -compare"))
		}
		if rep, err = load(*withPath); err != nil {
			fatal(err)
		}
	} else if rep, err = measure(bt, match); err != nil {
		fatal(err)
	}

	if *refPath != "" {
		other, err := load(*refPath)
		if err != nil {
			fatal(err)
		}
		rep.Reference = &Reference{Scheduler: other.Scheduler, Engine: other.Engine, Model: other.Model, Fabric: other.Fabric}
		rep.Reference.EndToEnd = other.EndToEnd
		rep.Reference.MultiHost = other.MultiHost
		rep.Reference.MultiHostShards2 = other.MultiHostShards2
		rep.Reference.MultiHostShards4 = other.MultiHostShards4
		rep.Reference.FabricLeafSpine = other.FabricLeafSpine
		rep.Reference.OpenLoop = other.OpenLoop
	}

	if *out != "" || *comparePath == "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *out == "" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Printf("wrote %s (%s engine %.1f ns/event, %.0f events/s end-to-end, %.1fx vs seed)\n",
				*out, rep.Scheduler, rep.Engine.ScheduleFire.NsPerEvent,
				rep.EndToEnd.EventsPerSec, rep.SpeedupVsSeed)
		}
	}

	if *comparePath != "" {
		old, err := load(*comparePath)
		if err != nil {
			fatal(err)
		}
		if compare(old, rep, *tol) {
			os.Exit(1)
		}
	}
}
