// Command cdnabench measures the simulator's own performance — the
// foundation-layer event core and one end-to-end experiment — and
// writes the result as JSON, so the repository's perf trajectory is a
// committed artifact rather than folklore. `make bench` runs it and
// emits BENCH_sim.json.
//
// Usage:
//
//	cdnabench                     # print JSON to stdout
//	cdnabench -out BENCH_sim.json # write to a file
//	cdnabench -benchtime 2s       # longer micro-benchmark windows
//
// The seed_baseline block records the pre-refactor engine (heap
// allocation per event through container/heap) measured on the same
// class of machine when the zero-allocation core landed; the headline
// acceptance bar is engine.schedule_fire.events_per_sec at ≥2× the
// baseline with zero allocs/op.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cdna/internal/bench"
	"cdna/internal/core"
	"cdna/internal/sim/simbench"
)

// Row is one micro-benchmark's distilled result.
type Row struct {
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

func row(r testing.BenchmarkResult) Row {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out := Row{NsPerEvent: ns, AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
	if ns > 0 {
		out.EventsPerSec = 1e9 / ns
	}
	return out
}

// Report is the BENCH_sim.json schema.
type Report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`

	// Engine micro-benchmarks (one simulated event per op).
	Engine struct {
		ScheduleFire        Row `json:"schedule_fire"`         // pooled event, bound callback
		ScheduleFireClosure Row `json:"schedule_fire_closure"` // fresh capturing closure per event
		TimerRearm          Row `json:"timer_rearm"`           // persistent timer re-armed in place
		Cancel              Row `json:"cancel"`                // schedule→cancel→recycle
	} `json:"engine"`

	// One full experiment (CDNA transmit, quick windows) timed end to
	// end: the whole-machine events/sec the engine work buys.
	EndToEnd struct {
		Config       string  `json:"config"`
		Events       uint64  `json:"events"`
		WallSeconds  float64 `json:"wall_seconds"`
		EventsPerSec float64 `json:"events_per_sec"`
		Mbps         float64 `json:"mbps"`
	} `json:"end_to_end"`

	// The seed engine measured immediately before the zero-allocation
	// refactor (BenchmarkBaselineScheduleFire on the reference builder:
	// Xeon @2.70GHz, go1.24): 81.5 ns/event, 1 alloc/64 B per event.
	SeedBaseline struct {
		NsPerEvent  float64 `json:"ns_per_event"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"seed_baseline"`

	// SpeedupVsSeed is schedule_fire events/sec over the seed baseline,
	// valid when run on comparable hardware.
	SpeedupVsSeed float64 `json:"speedup_vs_seed"`
}

func main() {
	testing.Init() // registers test.benchtime, which testing.Benchmark honours
	out := flag.String("out", "", "write JSON here (default stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "per-micro-benchmark measurement time")
	flag.Parse()

	if f := flag.Lookup("test.benchtime"); f != nil {
		_ = f.Value.Set(benchtime.String())
	}

	var rep Report
	rep.GoVersion = runtime.Version()
	rep.GOARCH = runtime.GOARCH

	rep.Engine.ScheduleFire = row(testing.Benchmark(simbench.ScheduleFire))
	rep.Engine.ScheduleFireClosure = row(testing.Benchmark(simbench.ScheduleFireClosure))
	rep.Engine.TimerRearm = row(testing.Benchmark(simbench.TimerRearm))
	rep.Engine.Cancel = row(testing.Benchmark(simbench.Cancel))

	cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	cfg.Protection = core.ModeHypercall
	cfg.Warmup = bench.Quick().Warmup
	cfg.Duration = bench.Quick().Duration
	start := time.Now()
	res, err := bench.Run(cfg)
	wall := time.Since(start).Seconds()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdnabench: end-to-end run failed: %v\n", err)
		os.Exit(1)
	}
	rep.EndToEnd.Config = cfg.Name()
	rep.EndToEnd.Events = res.Events
	rep.EndToEnd.WallSeconds = wall
	if wall > 0 {
		rep.EndToEnd.EventsPerSec = float64(res.Events) / wall
	}
	rep.EndToEnd.Mbps = res.Mbps

	rep.SeedBaseline.NsPerEvent = 81.5
	rep.SeedBaseline.AllocsPerOp = 1
	if rep.Engine.ScheduleFire.NsPerEvent > 0 {
		rep.SpeedupVsSeed = rep.SeedBaseline.NsPerEvent / rep.Engine.ScheduleFire.NsPerEvent
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdnabench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cdnabench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (engine %.1f ns/event, %.0f events/s end-to-end, %.1fx vs seed)\n",
		*out, rep.Engine.ScheduleFire.NsPerEvent, rep.EndToEnd.EventsPerSec, rep.SpeedupVsSeed)
}
