module cdna

go 1.24
