package cdna

// The determinism contract that pins the zero-allocation event-core
// refactor: the rendered evaluation tables must be byte-identical from
// run to run, sequentially and under the parallel campaign pool. Event
// pooling, timer re-arming, and the FIFO callback pattern all preserve
// the engine's (time, sequence) execution order exactly; this test is
// the tripwire if a future change does not.

import (
	"testing"

	"cdna/internal/bench"
	"cdna/internal/campaign"
	"cdna/internal/sim"
)

func renderTable1(t *testing.T, runner bench.Runner) string {
	t.Helper()
	opts := bench.Quick()
	if testing.Short() {
		opts = bench.Opts{Warmup: 20 * sim.Millisecond, Duration: 60 * sim.Millisecond}
	}
	opts.Runner = runner
	tbl, _, err := bench.Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.String()
}

func TestTable1GoldenDeterminism(t *testing.T) {
	first := renderTable1(t, nil)
	second := renderTable1(t, nil)
	if first != second {
		t.Fatalf("sequential reruns differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	pooled := renderTable1(t, campaign.Runner(4))
	if pooled != first {
		t.Fatalf("campaign-pool run differs from sequential:\n--- sequential ---\n%s\n--- pooled ---\n%s", first, pooled)
	}
	if len(first) == 0 {
		t.Fatal("rendered table is empty")
	}
}
