// Package mem models host physical memory as 4 KB pages with per-page
// ownership, reference counting, and byte-level contents. It implements
// the memory-safety substrate the CDNA protection mechanisms (paper §3.3)
// rely on:
//
//   - every page has an owning domain; ownership can be transferred
//     ("page flipping", used by Xen's front-end/back-end path);
//   - pages carry a reference count; a freed page is not returned to the
//     allocator while its refcount is non-zero, which is how the
//     hypervisor prevents reallocation during an in-flight DMA;
//   - pages can be marked hypervisor-exclusive for writing, which is how
//     the hypervisor takes exclusive write access to the CDNA descriptor
//     rings during driver initialization.
//
// CPU writes go through WriteAs and are permission-checked. Device (DMA)
// accesses go through Read/Write with no checks — exactly like real
// hardware without an IOMMU, which is the attack surface CDNA's
// descriptor validation exists to close.
package mem

import (
	"errors"
	"fmt"
)

// DomID identifies a domain for ownership purposes.
type DomID int

// Reserved domain IDs.
const (
	DomInvalid DomID = -1
	DomHyp     DomID = 0 // the hypervisor itself
	Dom0       DomID = 1 // the driver domain
	// Guest domains are Dom0+1, Dom0+2, ...
)

// PageSize is the host page size in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PFN is a physical frame number.
type PFN uint64

// Addr is a physical byte address.
type Addr uint64

// PFN returns the frame containing the address.
func (a Addr) PFN() PFN { return PFN(a >> PageShift) }

// Offset returns the in-page offset of the address.
func (a Addr) Offset() int { return int(a & (PageSize - 1)) }

// Base returns the first address of the frame.
func (p PFN) Base() Addr { return Addr(p) << PageShift }

// Errors returned by memory operations.
var (
	ErrNotOwner     = errors.New("mem: caller does not own page")
	ErrNoPage       = errors.New("mem: no such page")
	ErrPageBusy     = errors.New("mem: page has outstanding references")
	ErrHypExclusive = errors.New("mem: page is hypervisor-exclusive for writing")
	ErrZeroRef      = errors.New("mem: refcount underflow")
	ErrFreed        = errors.New("mem: page already freed")
)

type page struct {
	owner   DomID
	ref     int
	freed   bool // owner freed it; returns to pool when ref drops to 0
	hypOnly bool // only the hypervisor may CPU-write this page
	data    []byte
}

// Memory is the machine's physical memory. The page table is a dense
// slice indexed by PFN — frame numbers are handed out sequentially, so
// every page lookup on the DMA hot path (descriptor reads, payload
// writes, ownership validation) is an array index, not a hash probe,
// and iteration order is inherently deterministic.
type Memory struct {
	pages   []page // indexed by PFN; entry 0 is never allocated
	freeQ   []PFN
	nextPFN PFN

	// devWrites counts DMA-written bytes per owning domain (slice index
	// DomID+1, so DomInvalid owners land in slot 0); diagnostics for
	// the protection-off corruption demo.
	devWrites []uint64
}

// New returns an empty physical memory.
func New() *Memory {
	return &Memory{
		pages:   make([]page, 1, 256), // PFN 0 is never allocated; Addr 0 stays invalid
		nextPFN: 1,
	}
}

// DeviceWritten returns how many bytes devices (DMA) have written into
// pages owned by dom.
func (m *Memory) DeviceWritten(dom DomID) uint64 {
	if i := int(dom) + 1; i >= 0 && i < len(m.devWrites) {
		return m.devWrites[i]
	}
	return 0
}

// countDeviceWrite charges n DMA-written bytes to owner dom.
func (m *Memory) countDeviceWrite(dom DomID, n int) {
	i := int(dom) + 1
	if i < 0 {
		return
	}
	for i >= len(m.devWrites) {
		m.devWrites = append(m.devWrites, 0)
	}
	m.devWrites[i] += uint64(n)
}

// lookup returns the page for pfn, or nil if it was never allocated.
func (m *Memory) lookup(pfn PFN) *page {
	if pfn == 0 || uint64(pfn) >= uint64(len(m.pages)) {
		return nil
	}
	return &m.pages[pfn]
}

// Alloc allocates n pages owned by dom and returns their frame numbers.
func (m *Memory) Alloc(dom DomID, n int) []PFN {
	out := make([]PFN, 0, n)
	for i := 0; i < n; i++ {
		var pfn PFN
		if len(m.freeQ) > 0 {
			pfn = m.freeQ[0]
			m.freeQ = m.freeQ[1:]
			pg := &m.pages[pfn]
			pg.owner = dom
			pg.freed = false
			pg.hypOnly = false
			for j := range pg.data {
				pg.data[j] = 0
			}
		} else {
			pfn = m.nextPFN
			m.nextPFN++
			m.pages = append(m.pages, page{owner: dom})
		}
		out = append(out, pfn)
	}
	return out
}

// AllocOne allocates a single page.
func (m *Memory) AllocOne(dom DomID) PFN { return m.Alloc(dom, 1)[0] }

// Free releases a page back to the allocator. The caller must own the
// page. If the page has outstanding references (an in-flight DMA), the
// page is marked freed but is not reallocated until the last reference
// is dropped — the §3.3 reallocation-delay guarantee.
func (m *Memory) Free(dom DomID, pfn PFN) error {
	pg := m.lookup(pfn)
	if pg == nil {
		return ErrNoPage
	}
	if pg.freed {
		return ErrFreed
	}
	if pg.owner != dom && dom != DomHyp {
		return ErrNotOwner
	}
	pg.freed = true
	pg.owner = DomInvalid
	if pg.ref == 0 {
		m.freeQ = append(m.freeQ, pfn)
	}
	return nil
}

// Owner returns the owning domain, or DomInvalid for unknown/freed pages.
func (m *Memory) Owner(pfn PFN) DomID {
	pg := m.lookup(pfn)
	if pg == nil {
		return DomInvalid
	}
	return pg.owner
}

// Get increments the page's DMA reference count (hypervisor pins the page
// for an enqueued descriptor).
func (m *Memory) Get(pfn PFN) error {
	pg := m.lookup(pfn)
	if pg == nil {
		return ErrNoPage
	}
	pg.ref++
	return nil
}

// Put decrements the reference count. When a freed page's count reaches
// zero it finally returns to the allocator.
func (m *Memory) Put(pfn PFN) error {
	pg := m.lookup(pfn)
	if pg == nil {
		return ErrNoPage
	}
	if pg.ref == 0 {
		return ErrZeroRef
	}
	pg.ref--
	if pg.ref == 0 && pg.freed {
		m.freeQ = append(m.freeQ, pfn)
	}
	return nil
}

// Refs returns the current reference count.
func (m *Memory) Refs(pfn PFN) int {
	if pg := m.lookup(pfn); pg != nil {
		return pg.ref
	}
	return 0
}

// Transfer moves ownership of a page from one domain to another (the page
// flip used by the Xen network path). It fails while references are
// outstanding, because the pinned page may be a DMA target.
func (m *Memory) Transfer(pfn PFN, from, to DomID) error {
	pg := m.lookup(pfn)
	if pg == nil {
		return ErrNoPage
	}
	if pg.owner != from {
		return ErrNotOwner
	}
	if pg.ref != 0 {
		return ErrPageBusy
	}
	pg.owner = to
	return nil
}

// SetHypExclusive marks or clears hypervisor-exclusive write access on a
// page (descriptor-ring protection, §3.3).
func (m *Memory) SetHypExclusive(pfn PFN, on bool) error {
	pg := m.lookup(pfn)
	if pg == nil {
		return ErrNoPage
	}
	pg.hypOnly = on
	return nil
}

// HypExclusive reports whether the page is hypervisor-exclusive.
func (m *Memory) HypExclusive(pfn PFN) bool {
	pg := m.lookup(pfn)
	return pg != nil && pg.hypOnly
}

// RangeOwned reports whether every byte of [addr, addr+n) lies in pages
// owned by dom. It is the core ownership check of descriptor validation.
func (m *Memory) RangeOwned(dom DomID, addr Addr, n int) bool {
	if n <= 0 {
		return false
	}
	first, last := addr.PFN(), Addr(uint64(addr)+uint64(n)-1).PFN()
	for pfn := first; pfn <= last; pfn++ {
		pg := m.lookup(pfn)
		if pg == nil || pg.owner != dom || pg.freed {
			return false
		}
	}
	return true
}

// RangePFNs returns the frames spanned by [addr, addr+n).
func RangePFNs(addr Addr, n int) []PFN {
	first, count := RangeSpan(addr, n)
	if count == 0 {
		return nil
	}
	out := make([]PFN, count)
	for i := range out {
		out[i] = first + PFN(i)
	}
	return out
}

// RangeSpan returns the first frame and the frame count spanned by
// [addr, addr+n). Spans are contiguous by construction, so (first,
// count) carries the same information as RangePFNs without allocating —
// the per-descriptor hot paths (pinning, enqueue-cost accounting) use
// this form.
func RangeSpan(addr Addr, n int) (PFN, int) {
	if n <= 0 {
		return 0, 0
	}
	first, last := addr.PFN(), Addr(uint64(addr)+uint64(n)-1).PFN()
	return first, int(last-first) + 1
}

func (m *Memory) pageFor(a Addr) (*page, error) {
	pg := m.lookup(a.PFN())
	if pg == nil {
		return nil, fmt.Errorf("%w: pfn %d", ErrNoPage, a.PFN())
	}
	return pg, nil
}

// Write stores bytes at addr with no permission checks: this is the
// device/DMA path (hardware without an IOMMU can write anywhere).
func (m *Memory) Write(addr Addr, b []byte) error {
	return m.writeRaw(addr, b, true)
}

func (m *Memory) writeRaw(addr Addr, b []byte, device bool) error {
	for len(b) > 0 {
		pg, err := m.pageFor(addr)
		if err != nil {
			return err
		}
		if pg.data == nil {
			pg.data = make([]byte, PageSize)
		}
		off := addr.Offset()
		n := copy(pg.data[off:], b)
		if device {
			m.countDeviceWrite(pg.owner, n)
		}
		b = b[n:]
		addr += Addr(n)
	}
	return nil
}

// WriteAs stores bytes at addr on behalf of a CPU domain, enforcing
// ownership and hypervisor-exclusive protection. The hypervisor may write
// anywhere.
func (m *Memory) WriteAs(dom DomID, addr Addr, b []byte) error {
	// Permission check over the whole range first, so partial writes
	// cannot leak through.
	first, last := addr.PFN(), Addr(uint64(addr)+uint64(len(b))-1).PFN()
	if len(b) == 0 {
		last = first
	}
	for pfn := first; pfn <= last; pfn++ {
		pg := m.lookup(pfn)
		if pg == nil {
			return ErrNoPage
		}
		if dom != DomHyp {
			if pg.owner != dom {
				return ErrNotOwner
			}
			if pg.hypOnly {
				return ErrHypExclusive
			}
		}
	}
	return m.writeRaw(addr, b, false)
}

// Read copies n bytes starting at addr (device path, unchecked).
func (m *Memory) Read(addr Addr, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := m.ReadInto(addr, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadInto copies len(dst) bytes starting at addr into dst (device
// path, unchecked). Hot DMA readers (descriptor fetches, bit-vector
// polls) pass a reusable buffer so steady-state reads allocate nothing.
func (m *Memory) ReadInto(addr Addr, dst []byte) error {
	for len(dst) > 0 {
		pg, err := m.pageFor(addr)
		if err != nil {
			return err
		}
		off := addr.Offset()
		var c int
		if pg.data == nil {
			c = PageSize - off
			if c > len(dst) {
				c = len(dst)
			}
			for i := 0; i < c; i++ {
				dst[i] = 0
			}
		} else {
			c = copy(dst, pg.data[off:])
		}
		dst = dst[c:]
		addr += Addr(c)
	}
	return nil
}

// Pages returns how many live (not freed) pages dom owns.
func (m *Memory) Pages(dom DomID) int {
	n := 0
	for pfn := 1; pfn < len(m.pages); pfn++ {
		if pg := &m.pages[pfn]; pg.owner == dom && !pg.freed {
			n++
		}
	}
	return n
}
