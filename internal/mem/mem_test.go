package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

const guestA, guestB = Dom0 + 1, Dom0 + 2

func TestAllocOwnership(t *testing.T) {
	m := New()
	pfns := m.Alloc(guestA, 3)
	if len(pfns) != 3 {
		t.Fatalf("Alloc returned %d pages", len(pfns))
	}
	for _, p := range pfns {
		if m.Owner(p) != guestA {
			t.Fatalf("page %d owner = %d", p, m.Owner(p))
		}
	}
	if m.Pages(guestA) != 3 {
		t.Fatalf("Pages = %d", m.Pages(guestA))
	}
}

func TestPFNZeroNeverAllocated(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if p == 0 {
		t.Fatal("PFN 0 must never be allocated (Addr 0 is reserved invalid)")
	}
}

func TestFreeAndReuse(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.Free(guestA, p); err != nil {
		t.Fatal(err)
	}
	if m.Owner(p) != DomInvalid {
		t.Fatal("freed page retains owner")
	}
	q := m.AllocOne(guestB)
	if q != p {
		t.Fatalf("free page not reused: got %d want %d", q, p)
	}
	if m.Owner(q) != guestB {
		t.Fatal("reused page has wrong owner")
	}
}

func TestFreeWrongOwner(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.Free(guestB, p); err != ErrNotOwner {
		t.Fatalf("err = %v, want ErrNotOwner", err)
	}
}

func TestDoubleFree(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.Free(guestA, p); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(guestA, p); err != ErrFreed {
		t.Fatalf("double free err = %v, want ErrFreed", err)
	}
}

// TestNoReallocationWhilePinned is the paper's §3.3 guarantee: a page
// freed during an outstanding DMA must not be handed to another domain
// until the reference is dropped.
func TestNoReallocationWhilePinned(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.Get(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(guestA, p); err != nil {
		t.Fatal(err)
	}
	q := m.AllocOne(guestB)
	if q == p {
		t.Fatal("pinned page was reallocated")
	}
	if err := m.Put(p); err != nil {
		t.Fatal(err)
	}
	r := m.AllocOne(guestB)
	if r != p {
		t.Fatalf("unpinned freed page should now be reusable: got %d want %d", r, p)
	}
}

func TestPutUnderflow(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.Put(p); err != ErrZeroRef {
		t.Fatalf("err = %v, want ErrZeroRef", err)
	}
}

func TestTransfer(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.Transfer(p, guestA, Dom0); err != nil {
		t.Fatal(err)
	}
	if m.Owner(p) != Dom0 {
		t.Fatal("transfer did not change owner")
	}
	if err := m.Transfer(p, guestA, guestB); err != ErrNotOwner {
		t.Fatalf("err = %v, want ErrNotOwner", err)
	}
}

func TestTransferPinnedFails(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	m.Get(p)
	if err := m.Transfer(p, guestA, Dom0); err != ErrPageBusy {
		t.Fatalf("err = %v, want ErrPageBusy", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	addr := p.Base() + 100
	want := []byte("hello, descriptor ring")
	if err := m.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(addr, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read back %q", got)
	}
}

func TestReadUntouchedPageIsZero(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	got, err := m.Read(p.Base(), 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched page must read as zeros")
		}
	}
}

func TestWriteCrossesPages(t *testing.T) {
	m := New()
	pfns := m.Alloc(guestA, 2)
	if pfns[1] != pfns[0]+1 {
		t.Skip("allocator returned non-contiguous pages")
	}
	addr := pfns[0].Base() + PageSize - 4
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.Write(addr, want); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(addr, 8)
	if !bytes.Equal(got, want) {
		t.Fatalf("cross-page read = %v", got)
	}
}

func TestReuseZeroesData(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	m.Write(p.Base(), []byte{0xde, 0xad})
	m.Free(guestA, p)
	q := m.AllocOne(guestB)
	if q != p {
		t.Skip("allocator did not reuse the page")
	}
	got, _ := m.Read(q.Base(), 2)
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("reallocated page leaked previous contents")
	}
}

func TestWriteAsOwnership(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.WriteAs(guestB, p.Base(), []byte{1}); err != ErrNotOwner {
		t.Fatalf("cross-domain CPU write err = %v, want ErrNotOwner", err)
	}
	if err := m.WriteAs(guestA, p.Base(), []byte{1}); err != nil {
		t.Fatalf("owner write failed: %v", err)
	}
	if err := m.WriteAs(DomHyp, p.Base(), []byte{2}); err != nil {
		t.Fatalf("hypervisor write failed: %v", err)
	}
}

func TestHypExclusiveRing(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	if err := m.SetHypExclusive(p, true); err != nil {
		t.Fatal(err)
	}
	if !m.HypExclusive(p) {
		t.Fatal("HypExclusive not set")
	}
	if err := m.WriteAs(guestA, p.Base(), []byte{1}); err != ErrHypExclusive {
		t.Fatalf("guest write to hyp-exclusive ring err = %v, want ErrHypExclusive", err)
	}
	if err := m.WriteAs(DomHyp, p.Base(), []byte{1}); err != nil {
		t.Fatalf("hypervisor must retain write access: %v", err)
	}
	m.SetHypExclusive(p, false)
	if err := m.WriteAs(guestA, p.Base(), []byte{1}); err != nil {
		t.Fatalf("write after clearing exclusivity failed: %v", err)
	}
}

func TestRangeOwned(t *testing.T) {
	m := New()
	a := m.AllocOne(guestA)
	b := m.AllocOne(guestB)
	if !m.RangeOwned(guestA, a.Base(), PageSize) {
		t.Fatal("own page should be owned")
	}
	if m.RangeOwned(guestA, b.Base(), 1) {
		t.Fatal("foreign page must not validate")
	}
	if m.RangeOwned(guestA, a.Base(), 0) {
		t.Fatal("empty range must not validate")
	}
	// A range spilling from an owned page into a foreign page must fail.
	if b == a+1 && m.RangeOwned(guestA, a.Base()+PageSize-1, 2) {
		t.Fatal("range crossing into foreign page validated")
	}
	m.Free(guestA, a)
	if m.RangeOwned(guestA, a.Base(), 8) {
		t.Fatal("freed page must not validate")
	}
}

func TestRangePFNs(t *testing.T) {
	got := RangePFNs(Addr(PageSize-1), 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("RangePFNs = %v", got)
	}
	if RangePFNs(0, 0) != nil {
		t.Fatal("empty range should return nil")
	}
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(5*PageSize + 123)
	if a.PFN() != 5 || a.Offset() != 123 {
		t.Fatalf("PFN=%d Offset=%d", a.PFN(), a.Offset())
	}
	if PFN(5).Base() != Addr(5*PageSize) {
		t.Fatalf("Base = %d", PFN(5).Base())
	}
}

func TestDeviceWriteCounter(t *testing.T) {
	m := New()
	p := m.AllocOne(guestA)
	m.Write(p.Base(), make([]byte, 100))
	if m.DeviceWritten(guestA) != 100 {
		t.Fatalf("DeviceWrites = %d", m.DeviceWritten(guestA))
	}
}

// Property: refcounts never go negative and a pinned+freed page is never
// handed out, across random operation sequences.
func TestRefcountProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New()
		p := m.AllocOne(guestA)
		refs := 0
		freed := false
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if m.Get(p) == nil {
					refs++
				}
			case 1:
				err := m.Put(p)
				if refs == 0 && err != ErrZeroRef {
					return false
				}
				if refs > 0 {
					if err != nil {
						return false
					}
					refs--
				}
			case 2:
				if !freed {
					if m.Free(guestA, p) != nil {
						return false
					}
					freed = true
				}
			}
			if m.Refs(p) != refs {
				return false
			}
			if freed && refs > 0 {
				if q := m.AllocOne(guestB); q == p {
					return false
				}
			}
			if freed {
				break // after free, only Get/Put on pinned page remain meaningful
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
