package mem

// PageState is one physical page's checkpoint image. Data is nil when
// the page has never been written (the allocator's lazy-zero state),
// which keeps snapshots of mostly-untouched memory small.
type PageState struct {
	Owner   DomID
	Ref     int
	Freed   bool
	HypOnly bool
	Data    []byte
}

// State is the whole physical memory's checkpoint image. Pages is
// indexed by PFN with entry 0 unused, mirroring the dense page table.
type State struct {
	Pages     []PageState
	FreeQ     []PFN
	NextPFN   PFN
	DevWrites []uint64
}

// State captures the memory: ownership, refcounts, protection bits, and
// byte contents of every page. Page data is copied so the snapshot is
// immune to later DMA writes.
func (m *Memory) State() State {
	s := State{
		Pages:     make([]PageState, len(m.pages)),
		FreeQ:     append([]PFN(nil), m.freeQ...),
		NextPFN:   m.nextPFN,
		DevWrites: append([]uint64(nil), m.devWrites...),
	}
	for i := range m.pages {
		pg := &m.pages[i]
		ps := PageState{Owner: pg.owner, Ref: pg.ref, Freed: pg.freed, HypOnly: pg.hypOnly}
		if pg.data != nil {
			ps.Data = append([]byte(nil), pg.data...)
		}
		s.Pages[i] = ps
	}
	return s
}

// SetState restores the memory from a State image, replacing the entire
// page table. The restored machine's construction-time allocations are
// overwritten wholesale — the image is authoritative.
func (m *Memory) SetState(s State) {
	m.pages = make([]page, len(s.Pages))
	for i := range s.Pages {
		ps := &s.Pages[i]
		pg := page{owner: ps.Owner, ref: ps.Ref, freed: ps.Freed, hypOnly: ps.HypOnly}
		if ps.Data != nil {
			pg.data = make([]byte, PageSize)
			copy(pg.data, ps.Data)
		}
		m.pages[i] = pg
	}
	m.freeQ = append(m.freeQ[:0], s.FreeQ...)
	m.nextPFN = s.NextPFN
	m.devWrites = append(m.devWrites[:0], s.DevWrites...)
}
