package workload

import (
	"fmt"

	"cdna/internal/sim"
	"cdna/internal/stats"
)

// EndpointState is one traffic slot's checkpoint image. The armed
// think/gap/burst timer rides the engine snapshot via the timer
// registry; this is the slot's own mutable state.
type EndpointState struct {
	RNG uint64
	T0  sim.Time
	On  bool
}

// GeneratorState is the generator's checkpoint image.
type GeneratorState struct {
	Endpoints []EndpointState
	Requests  stats.CounterState
	Flows     stats.CounterState
	Latency   stats.DistributionState
}

// State captures the generator and every endpoint in registration order.
func (g *Generator) State() GeneratorState {
	s := GeneratorState{
		Endpoints: make([]EndpointState, len(g.eps)),
		Requests:  g.Requests.State(),
		Flows:     g.Flows.State(),
		Latency:   g.Latency.State(),
	}
	for i, e := range g.eps {
		s.Endpoints[i] = EndpointState{RNG: e.rng.State(), T0: e.t0, On: e.on}
	}
	return s
}

// SetState restores the generator into a freshly built machine with the
// same endpoint roster.
func (g *Generator) SetState(s GeneratorState) error {
	if len(s.Endpoints) != len(g.eps) {
		return fmt.Errorf("workload: endpoint roster mismatch: snapshot has %d, machine has %d",
			len(s.Endpoints), len(g.eps))
	}
	for i, es := range s.Endpoints {
		e := g.eps[i]
		e.rng.SetState(es.RNG)
		e.t0 = es.T0
		e.on = es.On
	}
	g.Requests.SetState(s.Requests)
	g.Flows.SetState(s.Flows)
	g.Latency.SetState(s.Latency)
	return nil
}
