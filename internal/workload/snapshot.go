package workload

import (
	"fmt"

	"cdna/internal/sim"
	"cdna/internal/stats"
)

// FlowArrivalState is one queued open-loop arrival in a checkpoint.
type FlowArrivalState struct {
	At   sim.Time
	Segs int32
}

// EndpointState is one traffic slot's checkpoint image. The armed
// think/gap/burst/arrival timer rides the engine snapshot via the timer
// registry; this is the slot's own mutable state.
type EndpointState struct {
	RNG uint64
	T0  sim.Time
	On  bool

	// Open-loop state (Poisson, Pareto, Trace). The assigned trace rows
	// are rebuilt deterministically from the spec at restore; only the
	// replay cursor and base rides the snapshot.
	InFlight  bool               `json:",omitempty"`
	Backlog   []FlowArrivalState `json:",omitempty"`
	Cursor    int                `json:",omitempty"`
	TraceBase sim.Time           `json:",omitempty"`
}

// GeneratorState is the generator's checkpoint image.
type GeneratorState struct {
	Endpoints []EndpointState
	Requests  stats.CounterState
	Flows     stats.CounterState
	Arrivals  stats.CounterState
	Latency   stats.DistributionState
}

// State captures the generator and every endpoint in registration order.
func (g *Generator) State() GeneratorState {
	s := GeneratorState{
		Endpoints: make([]EndpointState, len(g.eps)),
		Requests:  g.Requests.State(),
		Flows:     g.Flows.State(),
		Arrivals:  g.Arrivals.State(),
		Latency:   g.Latency.State(),
	}
	for i, e := range g.eps {
		es := EndpointState{
			RNG:       e.rng.State(),
			T0:        e.t0,
			On:        e.on,
			InFlight:  e.inFlight,
			Cursor:    e.cursor,
			TraceBase: e.traceBase,
		}
		if n := e.backlog.Len(); n > 0 {
			es.Backlog = make([]FlowArrivalState, n)
			for j := 0; j < n; j++ {
				fa := e.backlog.At(j)
				es.Backlog[j] = FlowArrivalState{At: fa.at, Segs: fa.segs}
			}
		}
		s.Endpoints[i] = es
	}
	return s
}

// SetState restores the generator into a freshly built machine with the
// same endpoint roster.
func (g *Generator) SetState(s GeneratorState) error {
	if len(s.Endpoints) != len(g.eps) {
		return fmt.Errorf("workload: endpoint roster mismatch: snapshot has %d, machine has %d",
			len(s.Endpoints), len(g.eps))
	}
	for i, es := range s.Endpoints {
		e := g.eps[i]
		e.rng.SetState(es.RNG)
		e.t0 = es.T0
		e.on = es.On
		e.inFlight = es.InFlight
		e.cursor = es.Cursor
		e.traceBase = es.TraceBase
		e.backlog.Clear()
		for _, fa := range es.Backlog {
			e.backlog.Push(flowArrival{at: fa.At, segs: fa.Segs})
		}
	}
	g.Requests.SetState(s.Requests)
	g.Flows.SetState(s.Flows)
	g.Arrivals.SetState(s.Arrivals)
	g.Latency.SetState(s.Latency)
	return nil
}
