package workload

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cdna/internal/sim"
	"cdna/internal/transport"
)

// TraceEvent is one recorded flow arrival: at time At (relative to the
// workload launch), Src's host offers a Segs-segment flow toward Dst's
// host.
type TraceEvent struct {
	At       sim.Time
	Src, Dst int
	Segs     int
}

// FlowTrace is a parsed flow trace, sorted by arrival time (stable, so
// same-instant rows keep file order).
type FlowTrace struct {
	Events []TraceEvent
}

// MemPrefix marks a TracePath that names a registered in-memory trace
// instead of a file — tests and programmatic campaigns use it to avoid
// touching the filesystem.
const MemPrefix = "mem:"

var (
	traceMu  sync.Mutex
	traceReg = map[string]*FlowTrace{}
)

// RegisterTrace stores an in-memory trace under MemPrefix+name.
// Registration replaces any previous trace of the same name.
func RegisterTrace(name string, tr *FlowTrace) {
	traceMu.Lock()
	defer traceMu.Unlock()
	traceReg[name] = tr
}

// LoadTrace resolves a TracePath: a MemPrefix name looks up the
// registry, anything else parses a CSV file of
//
//	arrival,src,dst,bytes
//
// with arrival in seconds (fractions allowed), src/dst as host indices,
// and bytes as the flow's payload size (converted to segments at the
// default MSS). Blank lines and #-comments are skipped, as is an
// optional non-numeric header row. Files are parsed once and cached.
func LoadTrace(path string) (*FlowTrace, error) {
	traceMu.Lock()
	defer traceMu.Unlock()
	if name, ok := strings.CutPrefix(path, MemPrefix); ok {
		tr := traceReg[name]
		if tr == nil {
			return nil, fmt.Errorf("workload: no registered trace %q", name)
		}
		return tr, nil
	}
	if tr := traceReg[path]; tr != nil {
		return tr, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: open trace: %w", err)
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %s: %w", path, err)
	}
	traceReg[path] = tr
	return tr, nil
}

// ParseTrace parses trace CSV from a reader (see LoadTrace for the
// format) and sorts the events by arrival time.
func ParseTrace(r interface{ Read([]byte) (int, error) }) (*FlowTrace, error) {
	tr := &FlowTrace{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		cols := strings.Split(text, ",")
		if len(cols) != 4 {
			return nil, fmt.Errorf("line %d: want 4 columns (arrival,src,dst,bytes), got %d", line, len(cols))
		}
		sec, err := strconv.ParseFloat(strings.TrimSpace(cols[0]), 64)
		if err != nil {
			if line == 1 { // header row
				continue
			}
			return nil, fmt.Errorf("line %d: bad arrival %q", line, cols[0])
		}
		src, err1 := strconv.Atoi(strings.TrimSpace(cols[1]))
		dst, err2 := strconv.Atoi(strings.TrimSpace(cols[2]))
		bytes, err3 := strconv.ParseInt(strings.TrimSpace(cols[3]), 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("line %d: bad src/dst/bytes in %q", line, text)
		}
		if sec < 0 || src < 0 || dst < 0 || bytes <= 0 {
			return nil, fmt.Errorf("line %d: negative field (or empty flow) in %q", line, text)
		}
		segs := int((bytes + transport.DefaultSegSize - 1) / transport.DefaultSegSize)
		if segs < 1 {
			segs = 1
		}
		tr.Events = append(tr.Events, TraceEvent{
			At:   sim.Time(sec * float64(sim.Second)),
			Src:  src,
			Dst:  dst,
			Segs: segs,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Events) == 0 {
		return nil, fmt.Errorf("trace has no events")
	}
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At })
	return tr, nil
}

// assignTrace distributes trace events over an endpoint roster: each
// event goes to the next endpoint whose (Local.Host, Remote.Host)
// matches its (src, dst), round-robin within the pair so multiple
// slots share the pair's load. Events with no matching endpoint are
// skipped and counted. The roster must be in global slot order — the
// same order at any shard count — so assignment is shard-invariant.
func assignTrace(tr *FlowTrace, eps []*endpoint) (skipped int) {
	type pair struct{ src, dst int }
	byPair := map[pair][]*endpoint{}
	for _, e := range eps {
		p := pair{e.Local.Host, e.Remote.Host}
		byPair[p] = append(byPair[p], e)
	}
	next := map[pair]int{}
	for _, ev := range tr.Events {
		p := pair{ev.Src, ev.Dst}
		slots := byPair[p]
		if len(slots) == 0 {
			skipped++
			continue
		}
		e := slots[next[p]%len(slots)]
		next[p]++
		e.trace = append(e.trace, ev)
	}
	return skipped
}
