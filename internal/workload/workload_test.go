package workload

import (
	"encoding/json"
	"testing"

	"cdna/internal/sim"
	"cdna/internal/transport"
)

// loop wires a connection to itself through a fixed-delay function-call
// "network", the minimal harness for driving a Generator without a
// machine model.
func loop(eng *sim.Engine, window int) *transport.Conn {
	c := transport.NewConn(eng, 0, transport.DefaultSegSize, window)
	c.AttachSender(func(s *transport.Segment) {
		eng.After(10*sim.Microsecond, "wire.data", func() { transport.Dispatch(s) })
	})
	c.AttachReceiver(func(s *transport.Segment) {
		eng.After(10*sim.Microsecond, "wire.ack", func() { transport.Dispatch(s) })
	})
	return c
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Bulk, RequestResponse, Churn, Burst} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("%v round-tripped to %v", k, back)
		}
		parsed, err := ParseKind(k.String())
		if err != nil || parsed != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), parsed, err)
		}
	}
	if _, err := ParseKind("wat"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{Kind: RequestResponse, RequestSegs: 7, Think: 3 * sim.Millisecond, Seed: 42}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round-trip %+v != %+v", out, in)
	}
	// Legacy configs carry no workload at all: absent JSON is bulk.
	var zero Spec
	if err := json.Unmarshal([]byte(`{}`), &zero); err != nil {
		t.Fatal(err)
	}
	if zero.Kind != Bulk {
		t.Fatalf("empty spec decoded to %v, want bulk", zero.Kind)
	}
}

func TestResolvedDefaults(t *testing.T) {
	tx := Spec{Kind: RequestResponse}.Resolved(true, false)
	if tx.RequestSegs != DefaultHeavySegs || tx.ResponseSegs != DefaultLightSegs {
		t.Fatalf("tx-heavy RPC resolved to req=%d resp=%d", tx.RequestSegs, tx.ResponseSegs)
	}
	rx := Spec{Kind: RequestResponse}.Resolved(false, true)
	if rx.RequestSegs != DefaultLightSegs || rx.ResponseSegs != DefaultHeavySegs {
		t.Fatalf("rx-heavy RPC resolved to req=%d resp=%d", rx.RequestSegs, rx.ResponseSegs)
	}
	if got := (Spec{Kind: Churn}).Resolved(true, false); got.FlowSegs != DefaultFlowSegs {
		t.Fatalf("churn FlowSegs default = %d", got.FlowSegs)
	}
	b := Spec{Kind: Burst}.Resolved(true, false)
	if b.BurstOn != DefaultBurstOn || b.BurstOff != DefaultBurstOff {
		t.Fatalf("burst defaults = %v/%v", b.BurstOn, b.BurstOff)
	}
	// Explicit knobs survive resolution.
	keep := Spec{Kind: RequestResponse, RequestSegs: 9}.Resolved(true, false)
	if keep.RequestSegs != 9 {
		t.Fatalf("explicit RequestSegs overwritten: %d", keep.RequestSegs)
	}
}

func TestValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec invalid: %v", err)
	}
	if err := (Spec{Kind: Kind(99)}).Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := (Spec{Kind: Churn, FlowSegs: -1}).Validate(); err == nil {
		t.Fatal("negative flow size accepted")
	}
	if err := (Spec{Kind: Burst, BurstOn: -sim.Millisecond}).Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestSuffix(t *testing.T) {
	if s := (Spec{}).Suffix(); s != "" {
		t.Fatalf("bulk suffix = %q, want empty (legacy names unchanged)", s)
	}
	specs := []Spec{
		{Kind: RequestResponse},
		{Kind: RequestResponse, RequestSegs: 4},
		{Kind: RequestResponse, RequestSegs: 4, Think: sim.Millisecond},
		{Kind: Churn},
		{Kind: Churn, FlowSegs: 16},
		{Kind: Burst},
		{Kind: Burst, BurstOn: sim.Millisecond},
	}
	seen := map[string]Spec{}
	for _, s := range specs {
		suf := s.Suffix()
		if suf == "" {
			t.Fatalf("non-bulk spec %+v has empty suffix", s)
		}
		if prev, dup := seen[suf]; dup {
			t.Fatalf("specs %+v and %+v share suffix %q", prev, s, suf)
		}
		seen[suf] = s
	}
}

func TestRequestResponseClosedLoop(t *testing.T) {
	eng := sim.New()
	spec := Spec{Kind: RequestResponse}.Resolved(true, false)
	g, err := NewGenerator(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !g.NeedsReverse() {
		t.Fatal("RPC workload must request a reverse channel")
	}
	if err := g.Add(Endpoint{Fwd: loop(eng, 32), Rev: loop(eng, 32)}); err != nil {
		t.Fatal(err)
	}
	g.Launch(30 * sim.Millisecond)
	eng.Run(100 * sim.Millisecond)
	n := g.Requests.Total()
	if n == 0 {
		t.Fatal("no RPCs completed")
	}
	// Closed loop with ~1ms think: roughly one RPC per think time, and
	// certainly no more than the loop structure allows.
	if max := uint64(100); n > max {
		t.Fatalf("%d RPCs in 100ms with 1ms think: loop is not closed", n)
	}
	if g.Latency.Count() == 0 || g.Latency.Quantile(0.5) <= 0 {
		t.Fatalf("no RPC latency samples (count=%d)", g.Latency.Count())
	}
}

func TestChurnOpensAndClosesFlows(t *testing.T) {
	eng := sim.New()
	spec := Spec{Kind: Churn}.Resolved(true, false)
	g, err := NewGenerator(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	setups, teardowns := 0, 0
	ep := Endpoint{
		Fwd:         loop(eng, 32),
		OnFlowSetup: func() { setups++ }, OnFlowTeardown: func() { teardowns++ },
	}
	if err := g.Add(ep); err != nil {
		t.Fatal(err)
	}
	g.Launch(30 * sim.Millisecond)
	eng.Run(100 * sim.Millisecond)
	if g.Flows.Total() == 0 {
		t.Fatal("no flows completed")
	}
	if setups == 0 || teardowns == 0 {
		t.Fatalf("flow lifecycle hooks not charged: %d setups, %d teardowns", setups, teardowns)
	}
	if diff := setups - teardowns; diff < 0 || diff > 1 {
		t.Fatalf("setup/teardown imbalance: %d vs %d", setups, teardowns)
	}
	if uint64(teardowns) != g.Flows.Total() {
		t.Fatalf("teardowns %d != flows %d", teardowns, g.Flows.Total())
	}
}

func TestBurstAlternates(t *testing.T) {
	eng := sim.New()
	spec := Spec{Kind: Burst}.Resolved(true, false)
	g, err := NewGenerator(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	c := loop(eng, 32)
	if err := g.Add(Endpoint{Fwd: c}); err != nil {
		t.Fatal(err)
	}
	g.Launch(30 * sim.Millisecond)

	// Sample delivery in slices: with a 20% duty cycle some slices must
	// be silent and some busy.
	silent, busy := 0, 0
	last := uint64(0)
	for at := 10 * sim.Millisecond; at <= 100*sim.Millisecond; at += 2 * sim.Millisecond {
		eng.Run(at)
		d := c.Delivered.Total()
		if d == last {
			silent++
		} else {
			busy++
		}
		last = d
	}
	if busy == 0 {
		t.Fatal("burst workload never transmitted")
	}
	if silent == 0 {
		t.Fatal("burst workload never went silent (off-periods missing)")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		eng := sim.New()
		g, err := NewGenerator(eng, Spec{Kind: Churn}.Resolved(true, false))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := g.Add(Endpoint{Fwd: loop(eng, 32)}); err != nil {
				t.Fatal(err)
			}
		}
		g.Launch(30 * sim.Millisecond)
		eng.Run(80 * sim.Millisecond)
		return g.Flows.Total(), g.Latency.Quantile(0.9)
	}
	f1, q1 := run()
	f2, q2 := run()
	if f1 != f2 || q1 != q2 {
		t.Fatalf("reruns differ: (%d, %v) vs (%d, %v)", f1, q1, f2, q2)
	}
}

func TestAddRejectsMiswiredEndpoints(t *testing.T) {
	eng := sim.New()
	g, _ := NewGenerator(eng, Spec{Kind: RequestResponse}.Resolved(true, false))
	if err := g.Add(Endpoint{}); err == nil {
		t.Fatal("endpoint without a forward conn accepted")
	}
	if err := g.Add(Endpoint{Fwd: loop(eng, 8)}); err == nil {
		t.Fatal("RPC endpoint without a reverse conn accepted")
	}
	if _, err := NewGenerator(eng, Spec{Kind: Kind(42)}); err == nil {
		t.Fatal("generator accepted an invalid spec")
	}
}
