package workload

import (
	"math"

	"cdna/internal/sim"
)

// Open-loop flow generation (Poisson, Pareto, Trace): arrivals are
// driven by a modeled client population (or a recorded trace), not by
// completions. Each endpoint keeps an arrival backlog; one flow is in
// flight on the connection at a time, and latency is measured from
// *arrival* to completion — queueing delay included — so overload shows
// up as response-time collapse, exactly what a closed-loop generator
// structurally cannot exhibit.

// flowArrival is one queued open-loop flow: when it arrived and how
// many segments it carries (size sampled at arrival time, so the RNG
// draw order depends only on the arrival process).
type flowArrival struct {
	at   sim.Time
	segs int32
}

// sizeBin is one step of a discrete flow-size CDF: cumulative
// probability up to and including this size.
type sizeBin struct {
	q    float64
	segs int32
}

// maxFlowSegs caps sampled flow sizes (~6 MB at the default MSS) so a
// single heavy-tail draw cannot occupy a link for a whole measurement
// window.
const maxFlowSegs = 4096

// websearchBins approximates the web-search flow-size CDF of the DCTCP
// lineage (shape-preserving, in segments at the default MSS): mostly
// small-to-mid flows with a modest heavy tail.
var websearchBins = []sizeBin{
	{0.15, 2}, {0.40, 7}, {0.60, 20}, {0.80, 70}, {0.92, 230}, {0.98, 700}, {1.00, 1400},
}

// dataminingBins approximates the data-mining CDF: overwhelmingly tiny
// flows and a thin tail of very large ones.
var dataminingBins = []sizeBin{
	{0.50, 1}, {0.78, 2}, {0.90, 7}, {0.96, 50}, {0.99, 350}, {1.00, 2800},
}

// pickBin returns the size whose CDF step covers u.
func pickBin(bins []sizeBin, u float64) int32 {
	for _, b := range bins {
		if u <= b.q {
			return b.segs
		}
	}
	return bins[len(bins)-1].segs
}

// sampleSegs draws one flow size from the spec's distribution.
func (e *endpoint) sampleSegs() int32 {
	s := e.g.spec
	switch s.SizeDist {
	case SizePareto:
		v := e.rng.Pareto(s.ParetoAlpha, float64(s.FlowSegs))
		if v > maxFlowSegs {
			v = maxFlowSegs
		}
		return int32(math.Ceil(v))
	case SizeWebSearch:
		return pickBin(websearchBins, e.rng.Float64())
	case SizeDataMining:
		return pickBin(dataminingBins, e.rng.Float64())
	default:
		return int32(s.FlowSegs)
	}
}

// interArrival draws the gap to the endpoint's next flow arrival. The
// mean is 1/(FlowRate*Clients); Poisson draws exponential gaps, Pareto
// heavy-tailed ones with the same mean (bursts and long silences).
func (e *endpoint) interArrival() sim.Time {
	s := e.g.spec
	mean := float64(sim.Second) / (s.FlowRate * float64(s.Clients))
	var v float64
	if s.Kind == Pareto {
		xm := mean * (s.ParetoAlpha - 1) / s.ParetoAlpha
		v = e.rng.Pareto(s.ParetoAlpha, xm)
	} else {
		v = e.rng.Exp(mean)
	}
	if v < 1 {
		v = 1
	}
	return sim.Time(v)
}

// startOpenLoop is the Poisson/Pareto launch event: arm the first
// arrival one draw away.
func (e *endpoint) startOpenLoop() {
	e.timer.ArmAfter(e.interArrival())
}

// onArrival is the Poisson/Pareto arrival event: enqueue the flow
// (size sampled now), re-arm the arrival process, and start the flow
// immediately if the connection is idle.
func (e *endpoint) onArrival() {
	e.g.Arrivals.Inc()
	e.backlog.Push(flowArrival{at: e.g.eng.Now(), segs: e.sampleSegs()})
	e.timer.ArmAfter(e.interArrival())
	if !e.inFlight {
		e.startNextFlow()
	}
}

// startTrace is the Trace launch event: position the cursor and arm
// the first recorded arrival (trace times are relative to launch).
func (e *endpoint) startTrace() {
	if e.cursor >= len(e.trace) {
		return
	}
	e.traceBase = e.g.eng.Now()
	e.timer.Arm(e.traceBase + e.trace[e.cursor].At)
}

// onTraceArrival replays the cursor's event and arms the next one.
func (e *endpoint) onTraceArrival() {
	ev := e.trace[e.cursor]
	e.cursor++
	e.g.Arrivals.Inc()
	segs := int32(ev.Segs)
	if segs > maxFlowSegs {
		segs = maxFlowSegs
	}
	e.backlog.Push(flowArrival{at: e.g.eng.Now(), segs: segs})
	if e.cursor < len(e.trace) {
		e.timer.Arm(e.traceBase + e.trace[e.cursor].At)
	}
	if !e.inFlight {
		e.startNextFlow()
	}
}

// startNextFlow opens the backlog's head flow on the connection:
// per-flow setup cost, fresh slow start, one delivery mark at the end.
func (e *endpoint) startNextFlow() {
	head := e.backlog.Pop()
	e.inFlight = true
	e.t0 = head.at // arrival time: latency includes backlog queueing
	if e.OnFlowSetup != nil {
		e.OnFlowSetup()
	}
	e.Fwd.ResetSlowStart()
	e.Fwd.ExpectDelivery(int(head.segs))
	e.Fwd.Send(int(head.segs))
}

// onOpenFlowDone runs at the sender when the in-flight flow is fully
// acknowledged: charge teardown, record the open-loop response time,
// and drain the backlog.
func (e *endpoint) onOpenFlowDone() {
	if e.OnFlowTeardown != nil {
		e.OnFlowTeardown()
	}
	e.g.Flows.Inc()
	e.g.Latency.Observe(float64(e.g.eng.Now()-e.t0) / 1000)
	e.inFlight = false
	if e.backlog.Len() > 0 {
		e.startNextFlow()
	}
}
