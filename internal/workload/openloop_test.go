package workload

import (
	"reflect"
	"strings"
	"testing"

	"cdna/internal/sim"
	"cdna/internal/transport"
)

func TestOpenLoopKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Poisson, Pareto, Trace} {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("%v round-tripped to %v", k, back)
		}
	}
	for _, d := range []SizeDist{SizeFixed, SizePareto, SizeWebSearch, SizeDataMining} {
		b, err := d.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back SizeDist
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Fatalf("%v round-tripped to %v", d, back)
		}
	}
	if _, err := ParseSizeDist("wat"); err == nil {
		t.Fatal("unknown size distribution accepted")
	}
}

func TestOpenLoopValidate(t *testing.T) {
	cases := []Spec{
		{Kind: Poisson, FlowRate: -1},
		{Kind: Poisson, Clients: -2},
		{Kind: Pareto, ParetoAlpha: 1.0},
		{Kind: Pareto, ParetoAlpha: 0.5},
		{Kind: Poisson, SizeDist: SizeDist(77)},
		{Kind: Trace}, // no path
		{Kind: Poisson, TracePath: "x.csv"},
	}
	for _, s := range cases {
		if err := s.Validate(); err == nil {
			t.Fatalf("invalid spec accepted: %+v", s)
		}
	}
	if err := (Spec{Kind: Poisson}).Validate(); err != nil {
		t.Fatalf("plain poisson rejected: %v", err)
	}
}

func TestPoissonOpenLoop(t *testing.T) {
	eng := sim.New()
	spec := Spec{Kind: Poisson, FlowRate: 2000}.Resolved(true, false)
	g, err := NewGenerator(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	setups := 0
	if err := g.Add(Endpoint{Fwd: loop(eng, 32), OnFlowSetup: func() { setups++ }}); err != nil {
		t.Fatal(err)
	}
	g.Launch(30 * sim.Millisecond)
	eng.Run(100 * sim.Millisecond)
	a, f := g.Arrivals.Total(), g.Flows.Total()
	if a == 0 || f == 0 {
		t.Fatalf("open loop idle: %d arrivals, %d flows", a, f)
	}
	if f > a {
		t.Fatalf("completed %d flows from only %d arrivals", f, a)
	}
	// ~2000/s over ~98ms: the arrival process must be in the right
	// decade, independent of service behaviour.
	if a < 80 || a > 800 {
		t.Fatalf("poisson arrivals = %d, want ~200", a)
	}
	if setups == 0 || g.Latency.Count() == 0 {
		t.Fatalf("flow lifecycle unobserved: setups=%d latency samples=%d", setups, g.Latency.Count())
	}
}

// TestOpenLoopOverloadGrowsLatency is the structural point of open-loop
// load: arrivals do not slow down when the fabric saturates, so response
// time (arrival to completion, backlog included) collapses. A
// closed-loop generator cannot show this.
func TestOpenLoopOverloadGrowsLatency(t *testing.T) {
	run := func(rate float64) (p90 float64, backlog uint64) {
		eng := sim.New()
		g, err := NewGenerator(eng, Spec{Kind: Poisson, FlowRate: rate}.Resolved(true, false))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(Endpoint{Fwd: loop(eng, 32)}); err != nil {
			t.Fatal(err)
		}
		g.Launch(30 * sim.Millisecond)
		eng.Run(150 * sim.Millisecond)
		return g.Latency.Quantile(0.9), g.Arrivals.Total() - g.Flows.Total()
	}
	p90Light, _ := run(200)
	p90Heavy, backlog := run(50000)
	if p90Heavy < 4*p90Light {
		t.Fatalf("overload p90 %.1fµs not ≫ light-load p90 %.1fµs", p90Heavy, p90Light)
	}
	if backlog == 0 {
		t.Fatal("overloaded endpoint accrued no backlog")
	}
}

func TestParetoArrivalsDifferFromPoisson(t *testing.T) {
	run := func(kind Kind) uint64 {
		eng := sim.New()
		g, err := NewGenerator(eng, Spec{Kind: kind, FlowRate: 2000}.Resolved(true, false))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(Endpoint{Fwd: loop(eng, 32)}); err != nil {
			t.Fatal(err)
		}
		g.Launch(30 * sim.Millisecond)
		eng.Run(100 * sim.Millisecond)
		return g.Arrivals.Total()
	}
	po, pa := run(Poisson), run(Pareto)
	if po == 0 || pa == 0 {
		t.Fatalf("arrival process idle: poisson=%d pareto=%d", po, pa)
	}
	if po == pa {
		t.Fatalf("pareto arrivals identical to poisson (%d) — heavy tail not wired", po)
	}
}

func TestSizeDistributionsSample(t *testing.T) {
	for _, d := range []SizeDist{SizePareto, SizeWebSearch, SizeDataMining} {
		eng := sim.New()
		spec := Spec{Kind: Poisson, FlowRate: 5000, SizeDist: d}.Resolved(true, false)
		g, err := NewGenerator(eng, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(Endpoint{Fwd: loop(eng, 32)}); err != nil {
			t.Fatal(err)
		}
		g.Launch(10 * sim.Millisecond)
		eng.Run(100 * sim.Millisecond)
		if g.Flows.Total() == 0 {
			t.Fatalf("%v: no flows completed", d)
		}
		// Sizes vary: over many flows the per-endpoint sampler must have
		// drawn more than one size; verify indirectly via the latency
		// spread (identical flows on a fixed loop have identical latency
		// when unqueued — heavy and tiny flows cannot).
		if g.Latency.Quantile(0.99) <= g.Latency.Quantile(0.05) {
			t.Fatalf("%v: no size spread (p99 %.1f <= p05 %.1f)",
				d, g.Latency.Quantile(0.99), g.Latency.Quantile(0.05))
		}
	}
}

func TestOpenLoopDeterminism(t *testing.T) {
	for _, kind := range []Kind{Poisson, Pareto} {
		run := func() (uint64, uint64, float64) {
			eng := sim.New()
			g, err := NewGenerator(eng, Spec{Kind: kind, FlowRate: 3000, SizeDist: SizeWebSearch}.Resolved(true, false))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := g.Add(Endpoint{Fwd: loop(eng, 32)}); err != nil {
					t.Fatal(err)
				}
			}
			g.Launch(30 * sim.Millisecond)
			eng.Run(100 * sim.Millisecond)
			return g.Arrivals.Total(), g.Flows.Total(), g.Latency.Quantile(0.9)
		}
		a1, f1, q1 := run()
		a2, f2, q2 := run()
		if a1 != a2 || f1 != f2 || q1 != q2 {
			t.Fatalf("%v reruns differ: (%d,%d,%v) vs (%d,%d,%v)", kind, a1, f1, q1, a2, f2, q2)
		}
	}
}

func TestParseTrace(t *testing.T) {
	csv := `arrival,src,dst,bytes
# comment line
0.002,0,1,3000
0.001,1,0,1448

0.001,0,1,100
`
	tr, err := ParseTrace(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(tr.Events))
	}
	// Sorted by arrival, stable for ties (file order preserved).
	if tr.Events[0].Src != 1 || tr.Events[1].Src != 0 || tr.Events[2].At != 2*sim.Millisecond {
		t.Fatalf("sort order wrong: %+v", tr.Events)
	}
	if tr.Events[2].Segs != 3 { // ceil(3000/1448)
		t.Fatalf("3000 bytes = %d segs, want 3", tr.Events[2].Segs)
	}
	for _, bad := range []string{
		"", "0.1,0,1", "x,y,z,w\n0.1,a,1,10", "0.1,0,1,-5", "-0.1,0,1,10",
	} {
		if _, err := ParseTrace(strings.NewReader(bad)); err == nil {
			t.Fatalf("bad trace accepted: %q", bad)
		}
	}
}

// TestSmokeTraceFixture pins the checked-in trace fixture that `make
// topo-smoke` replays through cdnasim: it must parse, stay sorted, and
// target an incast root (every destination is host 0).
func TestSmokeTraceFixture(t *testing.T) {
	tr, err := LoadTrace("testdata/smoke_trace.csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 120 {
		t.Fatalf("fixture has %d events, want 120", len(tr.Events))
	}
	for i, ev := range tr.Events {
		if i > 0 && ev.At < tr.Events[i-1].At {
			t.Fatalf("event %d out of order: %v after %v", i, ev.At, tr.Events[i-1].At)
		}
		if ev.Dst != 0 || ev.Src < 1 || ev.Src > 3 {
			t.Fatalf("event %d is not spoke→root traffic: %+v", i, ev)
		}
		if ev.Segs < 1 {
			t.Fatalf("event %d has no payload: %+v", i, ev)
		}
	}
}

func TestTraceReplay(t *testing.T) {
	RegisterTrace("replay", &FlowTrace{Events: []TraceEvent{
		{At: 0, Src: 0, Dst: 1, Segs: 2},
		{At: sim.Millisecond, Src: 0, Dst: 1, Segs: 3},
		{At: 2 * sim.Millisecond, Src: 7, Dst: 9, Segs: 1}, // no such endpoint
	}})
	eng := sim.New()
	g, err := NewGenerator(eng, Spec{Kind: Trace, TracePath: MemPrefix + "replay"}.Resolved(true, false))
	if err != nil {
		t.Fatal(err)
	}
	ep := Endpoint{
		Fwd:    loop(eng, 32),
		Local:  transport.Addr{Host: 0},
		Remote: transport.Addr{Host: 1},
	}
	if err := g.Add(ep); err != nil {
		t.Fatal(err)
	}
	g.Launch(30 * sim.Millisecond)
	eng.Run(100 * sim.Millisecond)
	if skipped := g.TraceSkipped(); skipped != 1 {
		t.Fatalf("TraceSkipped = %d, want 1", skipped)
	}
	if a := g.Arrivals.Total(); a != 2 {
		t.Fatalf("replayed %d arrivals, want 2", a)
	}
	if f := g.Flows.Total(); f != 2 {
		t.Fatalf("completed %d flows, want 2", f)
	}
	if _, err := NewGenerator(eng, Spec{Kind: Trace, TracePath: MemPrefix + "nope"}.Resolved(true, false)); err == nil {
		t.Fatal("unknown mem trace accepted")
	}
}

func TestOpenLoopSnapshotRoundTrip(t *testing.T) {
	build := func() (*sim.Engine, *Generator) {
		eng := sim.New()
		g, err := NewGenerator(eng, Spec{Kind: Poisson, FlowRate: 50000}.Resolved(true, false))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Add(Endpoint{Fwd: loop(eng, 32)}); err != nil {
			t.Fatal(err)
		}
		return eng, g
	}
	eng, g := build()
	g.Launch(10 * sim.Millisecond)
	eng.Run(50 * sim.Millisecond) // overload: backlog is non-empty
	img := g.State()
	if len(img.Endpoints) != 1 || len(img.Endpoints[0].Backlog) == 0 {
		t.Fatalf("expected a queued backlog in the image: %+v", img.Endpoints)
	}
	_, g2 := build()
	if err := g2.SetState(img); err != nil {
		t.Fatal(err)
	}
	if got := g2.State(); !reflect.DeepEqual(got, img) {
		t.Fatalf("state round-trip differs:\n got %+v\nwant %+v", got, img)
	}
	if err := g2.SetState(GeneratorState{}); err == nil {
		t.Fatal("roster mismatch accepted")
	}
}
