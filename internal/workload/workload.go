// Package workload is the traffic-generation layer: it decides *what*
// the guests send over the simulated network, decoupled from *how* the
// transport and the machine under test move it. The benchmark machine
// builder wires transport connections into workload Endpoints; a
// Generator then drives those endpoints according to a Spec — the
// paper's always-saturating bulk streams, closed-loop request/response
// clients, short-lived flow churn, or on/off bursts — across every
// machine mode (native, Xen, CDNA) identically.
//
// The default (zero-value) Spec is Bulk and reproduces the paper's
// benchmark byte-for-byte: one infinite go-back-N stream per
// connection, started with the exact stagger schedule the evaluation
// has always used.
package workload

import (
	"fmt"
	"path"
	"strconv"
	"strings"

	"cdna/internal/sim"
)

// Kind selects the traffic shape. The zero value is Bulk, so legacy
// configurations (and old result records) decode to the paper's
// workload unchanged.
type Kind int

// Workload kinds.
const (
	// Bulk is the paper's benchmark: every connection pumps an
	// infinite stream as fast as the window allows.
	Bulk Kind = iota
	// RequestResponse is a closed-loop RPC client per connection pair:
	// send a request, wait for the full response, think, repeat.
	RequestResponse
	// Churn is many short-lived flows per connection slot: open, push
	// a few segments, close (slow-start restarting every time), repeat
	// — the "millions of users" shape.
	Churn
	// Burst alternates saturating on-periods with silent off-periods,
	// jittered per endpoint so bursts desynchronize.
	Burst
	// Poisson is open-loop flow arrivals: a modeled client population
	// behind each endpoint offers flows at a fixed mean rate with
	// exponential inter-arrival gaps, regardless of how fast the fabric
	// completes them. Arrivals queue behind the endpoint's connection;
	// latency measures arrival→completion, queueing included — the
	// open-loop response time that collapses under overload.
	Poisson
	// Pareto is Poisson's heavy-tailed sibling: the same open-loop
	// machinery with Pareto-distributed inter-arrival gaps (tail index
	// ParetoAlpha), so arrivals come in bursts with long silences.
	Pareto
	// Trace replays a recorded flow trace (CSV of arrival,src,dst,bytes)
	// through the open-loop machinery: each row becomes a flow arrival
	// on an endpoint matching its (src,dst) host pair.
	Trace
)

func (k Kind) String() string {
	switch k {
	case Bulk:
		return "bulk"
	case RequestResponse:
		return "rr"
	case Churn:
		return "churn"
	case Burst:
		return "burst"
	case Poisson:
		return "poisson"
	case Pareto:
		return "pareto"
	case Trace:
		return "trace"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a workload kind token:
// bulk | rr | churn | burst | poisson | pareto | trace.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "bulk", "":
		return Bulk, nil
	case "rr", "rpc", "request-response":
		return RequestResponse, nil
	case "churn":
		return Churn, nil
	case "burst":
		return Burst, nil
	case "poisson":
		return Poisson, nil
	case "pareto":
		return Pareto, nil
	case "trace":
		return Trace, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q (want bulk | rr | churn | burst | poisson | pareto | trace)", s)
}

// MarshalText encodes the kind as its canonical token.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case Bulk, RequestResponse, Churn, Burst, Poisson, Pareto, Trace:
		return []byte(k.String()), nil
	}
	return []byte(strconv.Itoa(int(k))), nil
}

// UnmarshalText decodes a kind token (or the decimal fallback form
// MarshalText emits for out-of-range values).
func (k *Kind) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*k = Kind(n)
		return nil
	}
	v, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// SizeDist selects the flow-size distribution of the open-loop kinds.
// The zero value uses the fixed FlowSegs size, so configurations that
// predate size distributions decode unchanged.
type SizeDist int

// Flow-size distributions.
const (
	// SizeFixed uses FlowSegs for every flow.
	SizeFixed SizeDist = iota
	// SizePareto draws Pareto(ParetoAlpha, FlowSegs) segments — a
	// minimum-sized flow with a heavy tail.
	SizePareto
	// SizeWebSearch approximates the web-search flow-size CDF of the
	// DCTCP lineage: mostly mid-sized flows, a modest heavy tail.
	SizeWebSearch
	// SizeDataMining approximates the data-mining CDF: overwhelmingly
	// tiny flows and a tail of very large ones.
	SizeDataMining
)

func (d SizeDist) String() string {
	switch d {
	case SizeFixed:
		return "fixed"
	case SizePareto:
		return "pareto"
	case SizeWebSearch:
		return "websearch"
	case SizeDataMining:
		return "datamining"
	default:
		return fmt.Sprintf("SizeDist(%d)", int(d))
	}
}

// ParseSizeDist parses a size-distribution token.
func ParseSizeDist(s string) (SizeDist, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fixed", "":
		return SizeFixed, nil
	case "pareto":
		return SizePareto, nil
	case "websearch":
		return SizeWebSearch, nil
	case "datamining":
		return SizeDataMining, nil
	}
	return 0, fmt.Errorf("workload: unknown size distribution %q (want fixed | pareto | websearch | datamining)", s)
}

// MarshalText encodes the distribution as its canonical token.
func (d SizeDist) MarshalText() ([]byte, error) { return []byte(d.String()), nil }

// UnmarshalText decodes a size-distribution token.
func (d *SizeDist) UnmarshalText(b []byte) error {
	v, err := ParseSizeDist(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}

// Spec describes one workload. All fields are scalars so a Spec (and
// therefore a bench.Config embedding one) stays comparable — campaign
// grid deduplication relies on that. Zero fields mean "use the kind's
// default", resolved by Resolved(); the zero Spec is the paper's bulk
// workload.
type Spec struct {
	Kind Kind `json:"kind"`

	// RequestResponse knobs.
	RequestSegs  int      `json:"request_segs,omitempty"`  // segments per request message
	ResponseSegs int      `json:"response_segs,omitempty"` // segments per response message
	Think        sim.Time `json:"think_ns,omitempty"`      // client think time between RPCs

	// Churn knobs.
	FlowSegs int      `json:"flow_segs,omitempty"`   // segments per short-lived flow
	FlowGap  sim.Time `json:"flow_gap_ns,omitempty"` // idle gap between a close and the next open

	// Burst knobs.
	BurstOn  sim.Time `json:"burst_on_ns,omitempty"`  // saturating period
	BurstOff sim.Time `json:"burst_off_ns,omitempty"` // silent period

	// Open-loop knobs (Poisson, Pareto, Trace). FlowSegs doubles as
	// the fixed flow size (SizeFixed) and the Pareto size minimum.
	FlowRate    float64  `json:"flow_rate,omitempty"`    // mean flow arrivals/s per modeled client
	Clients     int      `json:"clients,omitempty"`      // modeled clients per endpoint (rate multiplier)
	ParetoAlpha float64  `json:"pareto_alpha,omitempty"` // tail index for Pareto arrivals / sizes (>1)
	SizeDist    SizeDist `json:"size_dist,omitempty"`    // flow-size distribution
	TracePath   string   `json:"trace,omitempty"`        // Trace kind: CSV path (or mem: registry name)

	// Seed offsets the per-endpoint jitter RNG streams; 0 uses the
	// package default. Same seed ⇒ same traffic, always.
	Seed uint64 `json:"seed,omitempty"`
}

// Default workload parameters (used when the Spec leaves them zero).
const (
	// DefaultHeavySegs is the data-bearing message size (segments) for
	// the payload-heavy side of an RPC (~5.8 KB at the default MSS).
	DefaultHeavySegs = 4
	// DefaultLightSegs is the light side of an RPC (a header-sized
	// request or a short acknowledgment-style response).
	DefaultLightSegs = 1
	// DefaultFlowSegs is a churn flow's length (~11.6 KB: a small web
	// object).
	DefaultFlowSegs = 8
	// DefaultClients is the modeled client population per endpoint.
	DefaultClients = 1
)

// Default open-loop parameters.
const (
	// DefaultFlowRate is the mean open-loop arrival rate per modeled
	// client, flows per second — moderate load on a GbE access link at
	// the default flow size, leaving headroom to push into overload
	// with Clients or FlowRate.
	DefaultFlowRate = 400.0
	// DefaultParetoAlpha is the heavy-tail index for Pareto arrivals
	// and sizes: infinite variance (alpha < 2) with a finite mean
	// (alpha > 1), the classic self-similar-traffic regime.
	DefaultParetoAlpha = 1.5
)

// Default workload durations.
const (
	DefaultThink    = sim.Millisecond       // RPC client think time
	DefaultBurstOn  = 2 * sim.Millisecond   // burst duty: 2ms on ...
	DefaultBurstOff = 8 * sim.Millisecond   // ... 8ms off (20%)
	defaultSeed     = 0x5eed_cd9a_0000_0001 // per-endpoint jitter streams
)

// Resolved fills a Spec's zero fields with the kind's defaults. The
// direction of the experiment chooses which RPC message is
// payload-heavy: txHeavy makes the request large (upload RPC), rxHeavy
// the response (download RPC); both makes the exchange symmetric.
func (s Spec) Resolved(txHeavy, rxHeavy bool) Spec {
	r := s
	if r.Kind == RequestResponse {
		if r.RequestSegs == 0 {
			r.RequestSegs = DefaultLightSegs
			if txHeavy {
				r.RequestSegs = DefaultHeavySegs
			}
		}
		if r.ResponseSegs == 0 {
			r.ResponseSegs = DefaultLightSegs
			if rxHeavy {
				r.ResponseSegs = DefaultHeavySegs
			}
		}
		if r.Think == 0 {
			r.Think = DefaultThink
		}
	}
	if r.Kind == Churn && r.FlowSegs == 0 {
		r.FlowSegs = DefaultFlowSegs
	}
	if r.Kind == Poisson || r.Kind == Pareto || r.Kind == Trace {
		if r.FlowSegs == 0 {
			r.FlowSegs = DefaultFlowSegs
		}
		if r.FlowRate == 0 {
			r.FlowRate = DefaultFlowRate
		}
		if r.Clients == 0 {
			r.Clients = DefaultClients
		}
	}
	if (r.Kind == Pareto || r.SizeDist == SizePareto) && r.ParetoAlpha == 0 {
		r.ParetoAlpha = DefaultParetoAlpha
	}
	if r.Kind == Burst {
		if r.BurstOn == 0 {
			r.BurstOn = DefaultBurstOn
		}
		if r.BurstOff == 0 {
			r.BurstOff = DefaultBurstOff
		}
	}
	if r.Seed == 0 {
		r.Seed = defaultSeed
	}
	return r
}

// Validate rejects specs the generator cannot run meaningfully.
// Zero-valued knobs are fine (defaults fill them); negative ones are
// not.
func (s Spec) Validate() error {
	switch s.Kind {
	case Bulk, RequestResponse, Churn, Burst, Poisson, Pareto, Trace:
	default:
		return fmt.Errorf("workload: unknown kind %v", s.Kind)
	}
	switch s.SizeDist {
	case SizeFixed, SizePareto, SizeWebSearch, SizeDataMining:
	default:
		return fmt.Errorf("workload: unknown size distribution %v", s.SizeDist)
	}
	if s.RequestSegs < 0 || s.ResponseSegs < 0 || s.FlowSegs < 0 {
		return fmt.Errorf("workload: negative message size in %+v", s)
	}
	if s.Think < 0 || s.FlowGap < 0 || s.BurstOn < 0 || s.BurstOff < 0 {
		return fmt.Errorf("workload: negative duration in %+v", s)
	}
	if s.FlowRate < 0 || s.Clients < 0 {
		return fmt.Errorf("workload: negative open-loop load in %+v", s)
	}
	if s.ParetoAlpha != 0 && s.ParetoAlpha <= 1 {
		return fmt.Errorf("workload: ParetoAlpha must exceed 1 for a finite mean, got %g", s.ParetoAlpha)
	}
	if s.Kind == Trace && s.TracePath == "" {
		return fmt.Errorf("workload: trace workload needs a trace path")
	}
	if s.Kind != Trace && s.TracePath != "" {
		return fmt.Errorf("workload: trace path set on non-trace kind %v", s.Kind)
	}
	return nil
}

// Suffix returns the workload's contribution to an experiment name:
// empty for the default bulk workload (so legacy names are unchanged),
// otherwise the kind plus every explicitly set knob, so that every
// distinct grid point names distinctly.
func (s Spec) Suffix() string {
	if s.Kind == Bulk {
		return ""
	}
	var b strings.Builder
	b.WriteString("/")
	b.WriteString(s.Kind.String())
	add := func(tag, val string) { fmt.Fprintf(&b, ",%s=%s", tag, val) }
	if s.RequestSegs != 0 {
		add("req", strconv.Itoa(s.RequestSegs))
	}
	if s.ResponseSegs != 0 {
		add("resp", strconv.Itoa(s.ResponseSegs))
	}
	if s.Think != 0 {
		add("think", s.Think.String())
	}
	if s.FlowSegs != 0 {
		add("segs", strconv.Itoa(s.FlowSegs))
	}
	if s.FlowGap != 0 {
		add("gap", s.FlowGap.String())
	}
	if s.BurstOn != 0 {
		add("on", s.BurstOn.String())
	}
	if s.BurstOff != 0 {
		add("off", s.BurstOff.String())
	}
	if s.FlowRate != 0 {
		add("rate", strconv.FormatFloat(s.FlowRate, 'g', -1, 64))
	}
	if s.Clients != 0 {
		add("cl", strconv.Itoa(s.Clients))
	}
	if s.ParetoAlpha != 0 {
		add("a", strconv.FormatFloat(s.ParetoAlpha, 'g', -1, 64))
	}
	if s.SizeDist != SizeFixed {
		add("sz", s.SizeDist.String())
	}
	if s.TracePath != "" {
		add("trace", path.Base(s.TracePath))
	}
	if s.Seed != 0 {
		add("seed", strconv.FormatUint(s.Seed, 16))
	}
	return b.String()
}
