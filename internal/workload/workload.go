// Package workload is the traffic-generation layer: it decides *what*
// the guests send over the simulated network, decoupled from *how* the
// transport and the machine under test move it. The benchmark machine
// builder wires transport connections into workload Endpoints; a
// Generator then drives those endpoints according to a Spec — the
// paper's always-saturating bulk streams, closed-loop request/response
// clients, short-lived flow churn, or on/off bursts — across every
// machine mode (native, Xen, CDNA) identically.
//
// The default (zero-value) Spec is Bulk and reproduces the paper's
// benchmark byte-for-byte: one infinite go-back-N stream per
// connection, started with the exact stagger schedule the evaluation
// has always used.
package workload

import (
	"fmt"
	"strconv"
	"strings"

	"cdna/internal/sim"
)

// Kind selects the traffic shape. The zero value is Bulk, so legacy
// configurations (and old result records) decode to the paper's
// workload unchanged.
type Kind int

// Workload kinds.
const (
	// Bulk is the paper's benchmark: every connection pumps an
	// infinite stream as fast as the window allows.
	Bulk Kind = iota
	// RequestResponse is a closed-loop RPC client per connection pair:
	// send a request, wait for the full response, think, repeat.
	RequestResponse
	// Churn is many short-lived flows per connection slot: open, push
	// a few segments, close (slow-start restarting every time), repeat
	// — the "millions of users" shape.
	Churn
	// Burst alternates saturating on-periods with silent off-periods,
	// jittered per endpoint so bursts desynchronize.
	Burst
)

func (k Kind) String() string {
	switch k {
	case Bulk:
		return "bulk"
	case RequestResponse:
		return "rr"
	case Churn:
		return "churn"
	case Burst:
		return "burst"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind parses a workload kind token: bulk | rr | churn | burst.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "bulk", "":
		return Bulk, nil
	case "rr", "rpc", "request-response":
		return RequestResponse, nil
	case "churn":
		return Churn, nil
	case "burst":
		return Burst, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q (want bulk | rr | churn | burst)", s)
}

// MarshalText encodes the kind as its canonical token.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case Bulk, RequestResponse, Churn, Burst:
		return []byte(k.String()), nil
	}
	return []byte(strconv.Itoa(int(k))), nil
}

// UnmarshalText decodes a kind token (or the decimal fallback form
// MarshalText emits for out-of-range values).
func (k *Kind) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*k = Kind(n)
		return nil
	}
	v, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Spec describes one workload. All fields are scalars so a Spec (and
// therefore a bench.Config embedding one) stays comparable — campaign
// grid deduplication relies on that. Zero fields mean "use the kind's
// default", resolved by Resolved(); the zero Spec is the paper's bulk
// workload.
type Spec struct {
	Kind Kind `json:"kind"`

	// RequestResponse knobs.
	RequestSegs  int      `json:"request_segs,omitempty"`  // segments per request message
	ResponseSegs int      `json:"response_segs,omitempty"` // segments per response message
	Think        sim.Time `json:"think_ns,omitempty"`      // client think time between RPCs

	// Churn knobs.
	FlowSegs int      `json:"flow_segs,omitempty"`   // segments per short-lived flow
	FlowGap  sim.Time `json:"flow_gap_ns,omitempty"` // idle gap between a close and the next open

	// Burst knobs.
	BurstOn  sim.Time `json:"burst_on_ns,omitempty"`  // saturating period
	BurstOff sim.Time `json:"burst_off_ns,omitempty"` // silent period

	// Seed offsets the per-endpoint jitter RNG streams; 0 uses the
	// package default. Same seed ⇒ same traffic, always.
	Seed uint64 `json:"seed,omitempty"`
}

// Default workload parameters (used when the Spec leaves them zero).
const (
	// DefaultHeavySegs is the data-bearing message size (segments) for
	// the payload-heavy side of an RPC (~5.8 KB at the default MSS).
	DefaultHeavySegs = 4
	// DefaultLightSegs is the light side of an RPC (a header-sized
	// request or a short acknowledgment-style response).
	DefaultLightSegs = 1
	// DefaultFlowSegs is a churn flow's length (~11.6 KB: a small web
	// object).
	DefaultFlowSegs = 8
)

// Default workload durations.
const (
	DefaultThink    = sim.Millisecond       // RPC client think time
	DefaultBurstOn  = 2 * sim.Millisecond   // burst duty: 2ms on ...
	DefaultBurstOff = 8 * sim.Millisecond   // ... 8ms off (20%)
	defaultSeed     = 0x5eed_cd9a_0000_0001 // per-endpoint jitter streams
)

// Resolved fills a Spec's zero fields with the kind's defaults. The
// direction of the experiment chooses which RPC message is
// payload-heavy: txHeavy makes the request large (upload RPC), rxHeavy
// the response (download RPC); both makes the exchange symmetric.
func (s Spec) Resolved(txHeavy, rxHeavy bool) Spec {
	r := s
	if r.Kind == RequestResponse {
		if r.RequestSegs == 0 {
			r.RequestSegs = DefaultLightSegs
			if txHeavy {
				r.RequestSegs = DefaultHeavySegs
			}
		}
		if r.ResponseSegs == 0 {
			r.ResponseSegs = DefaultLightSegs
			if rxHeavy {
				r.ResponseSegs = DefaultHeavySegs
			}
		}
		if r.Think == 0 {
			r.Think = DefaultThink
		}
	}
	if r.Kind == Churn && r.FlowSegs == 0 {
		r.FlowSegs = DefaultFlowSegs
	}
	if r.Kind == Burst {
		if r.BurstOn == 0 {
			r.BurstOn = DefaultBurstOn
		}
		if r.BurstOff == 0 {
			r.BurstOff = DefaultBurstOff
		}
	}
	if r.Seed == 0 {
		r.Seed = defaultSeed
	}
	return r
}

// Validate rejects specs the generator cannot run meaningfully.
// Zero-valued knobs are fine (defaults fill them); negative ones are
// not.
func (s Spec) Validate() error {
	switch s.Kind {
	case Bulk, RequestResponse, Churn, Burst:
	default:
		return fmt.Errorf("workload: unknown kind %v", s.Kind)
	}
	if s.RequestSegs < 0 || s.ResponseSegs < 0 || s.FlowSegs < 0 {
		return fmt.Errorf("workload: negative message size in %+v", s)
	}
	if s.Think < 0 || s.FlowGap < 0 || s.BurstOn < 0 || s.BurstOff < 0 {
		return fmt.Errorf("workload: negative duration in %+v", s)
	}
	return nil
}

// Suffix returns the workload's contribution to an experiment name:
// empty for the default bulk workload (so legacy names are unchanged),
// otherwise the kind plus every explicitly set knob, so that every
// distinct grid point names distinctly.
func (s Spec) Suffix() string {
	if s.Kind == Bulk {
		return ""
	}
	var b strings.Builder
	b.WriteString("/")
	b.WriteString(s.Kind.String())
	add := func(tag, val string) { fmt.Fprintf(&b, ",%s=%s", tag, val) }
	if s.RequestSegs != 0 {
		add("req", strconv.Itoa(s.RequestSegs))
	}
	if s.ResponseSegs != 0 {
		add("resp", strconv.Itoa(s.ResponseSegs))
	}
	if s.Think != 0 {
		add("think", s.Think.String())
	}
	if s.FlowSegs != 0 {
		add("segs", strconv.Itoa(s.FlowSegs))
	}
	if s.FlowGap != 0 {
		add("gap", s.FlowGap.String())
	}
	if s.BurstOn != 0 {
		add("on", s.BurstOn.String())
	}
	if s.BurstOff != 0 {
		add("off", s.BurstOff.String())
	}
	if s.Seed != 0 {
		add("seed", strconv.FormatUint(s.Seed, 16))
	}
	return b.String()
}
