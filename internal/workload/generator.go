package workload

import (
	"fmt"

	"cdna/internal/sim"
	"cdna/internal/stats"
	"cdna/internal/transport"
)

// jitterFrac is the relative jitter applied to workload timers (think
// time, burst phases, flow gaps) so endpoints desynchronize instead of
// beating in lockstep.
const jitterFrac = 0.2

// Endpoint is one traffic-generation attachment point, produced by the
// machine builder: the forward connection the workload drives, an
// optional reverse connection (request/response needs a return
// channel), and the CPU-charge hooks for per-flow setup/teardown in the
// guest that owns the slot. Hooks may be nil (the CPU-less peer).
type Endpoint struct {
	Fwd *transport.Conn
	Rev *transport.Conn

	// Local and Remote identify the endpoint's guest and the remote
	// guest it targets on the fabric (transport.PeerHost for the
	// classic off-fabric peer). The machine builder threads them
	// through so a generator's slots are addressable: cross-host
	// patterns (incast, all-to-all, pairwise) differ only in how these
	// are chosen.
	Local, Remote transport.Addr

	// OnFlowSetup/OnFlowTeardown charge the owning guest's stack for
	// opening and closing a short-lived flow, so churn is not free.
	OnFlowSetup    func()
	OnFlowTeardown func()
}

// Generator drives every endpoint of one machine according to a Spec.
// It lives entirely inside the machine's single-threaded sim.Engine, so
// its behaviour is deterministic for a given spec and endpoint order.
type Generator struct {
	eng  *sim.Engine
	spec Spec // resolved: all defaults filled in
	eps  []*endpoint

	// trace is the parsed flow trace (Trace kind), loaded at
	// construction; events are assigned to endpoints at Launch.
	trace *FlowTrace
	// traceSkipped counts trace events with no matching endpoint.
	traceSkipped int
	// traceDone guards the one-shot trace assignment for a standalone
	// generator (a Fleet assigns machine-globally instead).
	traceDone bool

	// Requests counts completed RPC exchanges (RequestResponse).
	Requests stats.Counter
	// Flows counts completed short-lived flows (Churn and the
	// open-loop kinds).
	Flows stats.Counter
	// Arrivals counts open-loop flow arrivals (offered load); compared
	// with Flows it exposes the backlog an overloaded fabric accrues.
	Arrivals stats.Counter
	// Latency samples message-completion latency in microseconds:
	// request-issue to response-delivered for RequestResponse, flow
	// open to final ack for Churn. Empty for Bulk and Burst.
	Latency stats.Distribution
}

// endpoint is the per-attachment runtime state.
type endpoint struct {
	g *Generator
	Endpoint
	rng     *sim.RNG
	timer   *sim.Timer // think / gap / burst-phase / arrival timer
	t0      sim.Time   // outstanding message's issue (or arrival) time
	on      bool       // burst: currently in an on-period
	startFn sim.Fn     // kind-appropriate Launch callback, bound at Add

	// Open-loop state (Poisson, Pareto, Trace).
	backlog   sim.FIFO[flowArrival] // arrivals waiting for the connection
	inFlight  bool                  // a flow occupies the connection
	trace     []TraceEvent          // this endpoint's assigned trace rows
	cursor    int                   // next trace row to replay
	traceBase sim.Time              // engine time of trace t=0
}

// NewGenerator creates a generator for a resolved spec. Call
// Spec.Resolved before constructing; Add endpoints as the machine is
// wired, then Launch once to start traffic.
func NewGenerator(eng *sim.Engine, spec Spec) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{eng: eng, spec: spec}
	if spec.Kind == Trace {
		tr, err := LoadTrace(spec.TracePath)
		if err != nil {
			return nil, err
		}
		g.trace = tr
	}
	return g, nil
}

// Spec returns the generator's resolved spec.
func (g *Generator) Spec() Spec { return g.spec }

// Endpoints returns the registered endpoint descriptors in registration
// order — the wiring roster tests and diagnostics read to see which
// remote guest each traffic slot targets.
func (g *Generator) Endpoints() []Endpoint {
	eps := make([]Endpoint, len(g.eps))
	for i, e := range g.eps {
		eps[i] = e.Endpoint
	}
	return eps
}

// NeedsReverse reports whether the workload requires a reverse
// connection per endpoint (the machine builder wires one only then).
func (g *Generator) NeedsReverse() bool { return g.spec.Kind == RequestResponse }

// Add registers an endpoint. Endpoints must be added in a deterministic
// order (the machine builder's wiring order); each gets its own jitter
// RNG stream derived from the spec seed and its index, so traffic is
// identical run-to-run and independent of campaign parallelism.
func (g *Generator) Add(ep Endpoint) error { return g.addIndexed(len(g.eps), ep) }

// addIndexed registers an endpoint whose jitter RNG stream derives from
// the given index instead of the local registration count. A Fleet
// passes the machine-global endpoint index so a sharded machine's
// traffic is identical to the single-engine machine's, where global and
// local indices coincide.
func (g *Generator) addIndexed(rngIdx int, ep Endpoint) error {
	if ep.Fwd == nil {
		return fmt.Errorf("workload: endpoint needs a forward connection")
	}
	if g.NeedsReverse() && ep.Rev == nil {
		return fmt.Errorf("workload: %v workload needs a reverse connection", g.spec.Kind)
	}
	e := &endpoint{g: g, Endpoint: ep}
	e.rng = sim.NewRNG(g.spec.Seed + uint64(rngIdx)*0x9e3779b97f4a7c15)
	switch g.spec.Kind {
	case Bulk:
		e.startFn = g.eng.Bind(ep.Fwd.Start)
	case RequestResponse:
		e.timer = g.eng.NewTimer("workload.think", e.issue)
		e.startFn = g.eng.Bind(e.issue)
		ep.Fwd.OnMark = e.serve
		ep.Rev.OnMark = e.onResponse
	case Churn:
		e.timer = g.eng.NewTimer("workload.gap", e.openFlow)
		e.startFn = g.eng.Bind(e.openFlow)
		ep.Fwd.OnSendComplete = e.onFlowDone
	case Burst:
		e.timer = g.eng.NewTimer("workload.burst", e.togglePhase)
		e.startFn = g.eng.Bind(e.startBurst)
	case Poisson, Pareto:
		e.timer = g.eng.NewTimer("workload.arrival", e.onArrival)
		e.startFn = g.eng.Bind(e.startOpenLoop)
		ep.Fwd.OnSendComplete = e.onOpenFlowDone
	case Trace:
		e.timer = g.eng.NewTimer("workload.arrival", e.onTraceArrival)
		e.startFn = g.eng.Bind(e.startTrace)
		ep.Fwd.OnSendComplete = e.onOpenFlowDone
	}
	g.eps = append(g.eps, e)
	return nil
}

// Launch schedules the workload's start for every endpoint, staggered
// over the first part of warmup so initial windows do not arrive as one
// synchronized burst. For Bulk this reproduces the historical schedule
// exactly: the same "conn.start" events at the same times in the same
// order.
func (g *Generator) Launch(warmup sim.Time) {
	if g.spec.Kind == Trace && !g.traceDone {
		g.traceDone = true
		g.traceSkipped = assignTrace(g.trace, g.eps)
	}
	n := len(g.eps)
	for i, e := range g.eps {
		g.launchOne(e, launchAt(warmup, i, n))
	}
}

// TraceSkipped returns how many trace events had no matching endpoint
// (valid after Launch for the Trace kind).
func (g *Generator) TraceSkipped() int { return g.traceSkipped }

// launchAt returns the staggered start time of global endpoint i of n:
// offset past driver initialization (initial receive-buffer posting),
// then spread over the first part of warmup.
func launchAt(warmup sim.Time, i, n int) sim.Time {
	stagger := warmup / 3
	if stagger > 50*sim.Millisecond {
		stagger = 50 * sim.Millisecond
	}
	return 2*sim.Millisecond + sim.Time(i)*stagger/sim.Time(n)
}

// launchOne schedules one endpoint's kind-appropriate start event.
func (g *Generator) launchOne(e *endpoint, at sim.Time) {
	switch g.spec.Kind {
	case Bulk:
		g.eng.AtFn(at, "conn.start", e.startFn)
	case RequestResponse:
		g.eng.AtFn(at, "workload.issue", e.startFn)
	case Churn:
		g.eng.AtFn(at, "workload.flow", e.startFn)
	case Burst:
		g.eng.AtFn(at, "conn.start", e.startFn)
	case Poisson, Pareto, Trace:
		g.eng.AtFn(at, "workload.arrival", e.startFn)
	}
}

// StartWindow resets the generator's windowed metrics, discarding
// warmup samples.
func (g *Generator) StartWindow() {
	g.Requests.StartWindow()
	g.Flows.StartWindow()
	g.Arrivals.StartWindow()
	g.Latency.Reset()
}

// --- RequestResponse: closed-loop RPC client ---

// issue sends one request and arms the completion marks on both sides:
// the server responds when the full request has been delivered, the
// client completes when the full response has.
func (e *endpoint) issue() {
	e.t0 = e.g.eng.Now()
	e.Fwd.ExpectDelivery(e.g.spec.RequestSegs)
	e.Rev.ExpectDelivery(e.g.spec.ResponseSegs)
	e.Fwd.Send(e.g.spec.RequestSegs)
}

// serve runs at the server when the request is fully delivered.
func (e *endpoint) serve() {
	e.Rev.Send(e.g.spec.ResponseSegs)
}

// onResponse runs at the client when the response is fully delivered:
// record the RPC's end-to-end latency, think, go again.
func (e *endpoint) onResponse() {
	e.g.Latency.Observe(float64(e.g.eng.Now()-e.t0) / 1000)
	e.g.Requests.Inc()
	e.timer.ArmAfter(e.rng.Jitter(e.g.spec.Think, jitterFrac))
}

// --- Churn: short-lived flows ---

// openFlow charges connection setup to the owning guest, restarts slow
// start (a fresh flow does not inherit the previous flow's window), and
// pushes the flow's segments. The delivery mark flushes the final
// delayed ack so the close is not RTO-bound.
func (e *endpoint) openFlow() {
	if e.OnFlowSetup != nil {
		e.OnFlowSetup()
	}
	e.t0 = e.g.eng.Now()
	e.Fwd.ResetSlowStart()
	e.Fwd.ExpectDelivery(e.g.spec.FlowSegs)
	e.Fwd.Send(e.g.spec.FlowSegs)
}

// onFlowDone runs at the sender when the flow is fully acknowledged:
// charge teardown, record the flow's lifetime, open the next flow
// (after the configured gap, if any).
func (e *endpoint) onFlowDone() {
	if e.OnFlowTeardown != nil {
		e.OnFlowTeardown()
	}
	e.g.Flows.Inc()
	e.g.Latency.Observe(float64(e.g.eng.Now()-e.t0) / 1000)
	if gap := e.g.spec.FlowGap; gap > 0 {
		e.timer.ArmAfter(e.rng.Jitter(gap, jitterFrac))
		return
	}
	e.openFlow()
}

// --- Burst: on/off saturation ---

// startBurst begins the first on-period.
func (e *endpoint) startBurst() {
	e.on = true
	e.Fwd.Start()
	e.timer.ArmAfter(e.rng.Jitter(e.g.spec.BurstOn, jitterFrac))
}

// togglePhase flips between on and off, re-arming its own timer — the
// persistent-timer self-re-arm pattern.
func (e *endpoint) togglePhase() {
	if e.on {
		e.on = false
		e.Fwd.Pause()
		e.timer.ArmAfter(e.rng.Jitter(e.g.spec.BurstOff, jitterFrac))
		return
	}
	e.on = true
	e.Fwd.Resume()
	e.timer.ArmAfter(e.rng.Jitter(e.g.spec.BurstOn, jitterFrac))
}
