package workload

import (
	"fmt"

	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Fleet drives the endpoints of one machine across its engine shards:
// one Generator per engine, plus the machine-global endpoint roster.
// Every per-endpoint decision (jitter RNG stream, launch stagger) is
// keyed by the global endpoint index, so a fleet over N shards emits
// exactly the traffic the same roster would on a single engine — the
// property the 1-vs-N-shard byte-identity contract rests on. A
// single-engine machine simply runs a fleet of one.
type Fleet struct {
	gens  []*Generator
	byEng map[*sim.Engine]*Generator
	slots []fleetSlot

	// lat is scratch space for merged latency quantiles.
	lat stats.Distribution

	// traceSkipped counts trace events with no matching endpoint,
	// summed at Launch (Trace kind only).
	traceSkipped int
	// traceDone guards the one-shot trace assignment (Launch or the
	// restore path, whichever runs first).
	traceDone bool
}

// fleetSlot locates one global endpoint inside its owning generator.
type fleetSlot struct {
	g   *Generator
	idx int
}

// NewFleet creates one generator per engine for a resolved spec.
// Engines must be passed in shard-index order.
func NewFleet(engs []*sim.Engine, spec Spec) (*Fleet, error) {
	f := &Fleet{byEng: make(map[*sim.Engine]*Generator, len(engs))}
	for _, eng := range engs {
		g, err := NewGenerator(eng, spec)
		if err != nil {
			return nil, err
		}
		f.gens = append(f.gens, g)
		f.byEng[eng] = g
	}
	return f, nil
}

// Spec returns the fleet's resolved spec.
func (f *Fleet) Spec() Spec { return f.gens[0].Spec() }

// NeedsReverse reports whether the workload requires a reverse
// connection per endpoint.
func (f *Fleet) NeedsReverse() bool { return f.gens[0].NeedsReverse() }

// AddOn registers an endpoint on the shard that owns eng — the engine
// the endpoint's forward sender runs on, so every workload callback
// fires on the shard that owns the state it touches. Endpoints must be
// added in a deterministic machine-global order.
func (f *Fleet) AddOn(eng *sim.Engine, ep Endpoint) error {
	g := f.byEng[eng]
	if g == nil {
		return fmt.Errorf("workload: AddOn with an engine outside the fleet")
	}
	if err := g.addIndexed(len(f.slots), ep); err != nil {
		return err
	}
	f.slots = append(f.slots, fleetSlot{g: g, idx: len(g.eps) - 1})
	return nil
}

// Endpoints returns the registered endpoint descriptors in global
// registration order.
func (f *Fleet) Endpoints() []Endpoint {
	eps := make([]Endpoint, len(f.slots))
	for i, s := range f.slots {
		eps[i] = s.g.eps[s.idx].Endpoint
	}
	return eps
}

// Launch schedules every endpoint's start, staggered by global index
// over the first part of warmup — the same schedule at any shard count.
func (f *Fleet) Launch(warmup sim.Time) {
	f.assignTraceOnce()
	n := len(f.slots)
	for i, s := range f.slots {
		s.g.launchOne(s.g.eps[s.idx], launchAt(warmup, i, n))
	}
}

// TraceSkipped returns how many trace events had no matching endpoint
// (valid after Launch for the Trace kind).
func (f *Fleet) TraceSkipped() int { return f.traceSkipped }

// assignTraceOnce distributes trace events against the machine-global
// roster in slot order — the same roster at any shard count, so each
// event lands on the same endpoint regardless of sharding. Runs once,
// from Launch on a cold start or from SetState on a restore (a restored
// machine is never Launched; its timers ride the engine snapshot, but
// the replay cursor still needs the assigned rows to index into).
func (f *Fleet) assignTraceOnce() {
	if f.traceDone || f.Spec().Kind != Trace {
		return
	}
	f.traceDone = true
	eps := make([]*endpoint, len(f.slots))
	for i, s := range f.slots {
		eps[i] = s.g.eps[s.idx]
	}
	f.traceSkipped = assignTrace(f.gens[0].trace, eps)
}

// StartWindow resets every generator's windowed metrics.
func (f *Fleet) StartWindow() {
	for _, g := range f.gens {
		g.StartWindow()
	}
}

// RequestsRate returns completed RPC exchanges per second over the
// window, summed across shards before the division so the result is the
// same float a single counter would produce.
func (f *Fleet) RequestsRate(dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	var w uint64
	for _, g := range f.gens {
		w += g.Requests.Window()
	}
	return float64(w) / dur.Seconds()
}

// FlowsRate returns completed short-lived flows per second over the
// window.
func (f *Fleet) FlowsRate(dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	var w uint64
	for _, g := range f.gens {
		w += g.Flows.Window()
	}
	return float64(w) / dur.Seconds()
}

// ArrivalsRate returns open-loop flow arrivals per second over the
// window — the offered load, independent of what the fabric absorbed.
func (f *Fleet) ArrivalsRate(dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	var w uint64
	for _, g := range f.gens {
		w += g.Arrivals.Window()
	}
	return float64(w) / dur.Seconds()
}

// LatencyQuantile returns the q-quantile of message-completion latency
// across every shard's samples. Quantiles are a pure function of the
// combined multiset, so the merged value is identical to what a single
// engine observing the same traffic would report.
func (f *Fleet) LatencyQuantile(q float64) float64 {
	if len(f.gens) == 1 {
		return f.gens[0].Latency.Quantile(q)
	}
	f.lat.Reset()
	for _, g := range f.gens {
		f.lat.Merge(&g.Latency)
	}
	return f.lat.Quantile(q)
}

// State captures every generator in shard order.
func (f *Fleet) State() []GeneratorState {
	out := make([]GeneratorState, len(f.gens))
	for i, g := range f.gens {
		out[i] = g.State()
	}
	return out
}

// SetState restores every generator from a fleet image with the same
// shard layout.
func (f *Fleet) SetState(ss []GeneratorState) error {
	f.assignTraceOnce()
	if len(ss) != len(f.gens) {
		return fmt.Errorf("workload: fleet shard mismatch: snapshot has %d generators, machine has %d",
			len(ss), len(f.gens))
	}
	for i, g := range f.gens {
		if err := g.SetState(ss[i]); err != nil {
			return err
		}
	}
	return nil
}
