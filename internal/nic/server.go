// Package nic provides the shared machinery of simulated network
// interfaces: a processing server (ASIC pipeline or firmware processor),
// an interrupt coalescer, and a generic multi-queue DMA engine that
// fetches descriptors from host rings, transmits and receives frames,
// and reports completions. The conventional Intel-style NIC
// (internal/intelnic) instantiates one queue pair; the CDNA RiceNIC
// (internal/ricenic) instantiates one per hardware context and layers
// sequence checking, MAC demultiplexing and interrupt bit vectors on
// top.
package nic

import (
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Server is a FIFO processing resource with a fixed service rate — the
// NIC's ASIC pipeline or embedded firmware processor. Work items are
// serviced in order; a saturated server delays completions, bounding the
// NIC's packet rate.
type Server struct {
	eng       *sim.Engine
	busyUntil sim.Time
	Ops       stats.Counter
}

// NewServer creates a processing server.
func NewServer(eng *sim.Engine) *Server { return &Server{eng: eng} }

// Do schedules fn after cost of processing time, behind any queued work.
// Completions fire in issue order (FIFO), so callers can thread
// per-item state through a sim.FIFO paired with a callback bound once
// instead of capturing it in a fresh closure per call.
func (s *Server) Do(cost sim.Time, name string, fn sim.Fn) {
	start := s.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + cost
	s.Ops.Inc()
	s.eng.AtFn(s.busyUntil, name, fn)
}

// Backlog returns the queued processing time.
func (s *Server) Backlog() sim.Time {
	if s.busyUntil <= s.eng.Now() {
		return 0
	}
	return s.busyUntil - s.eng.Now()
}

// Coalescer batches completion events into interrupts: an interrupt
// fires when `Pkts` completions accumulate or `Delay` elapses after the
// first unreported completion, whichever comes first. This is the
// mechanism behind the paper's Interrupts/s columns.
type Coalescer struct {
	eng   *sim.Engine
	Delay sim.Time
	Pkts  int
	fire  func()

	pending int
	timer   *sim.Timer // re-armed in place; no per-batch event allocation
	Fires   stats.Counter
}

// NewCoalescer creates a coalescer; fire is invoked to raise the
// interrupt (after which accumulation restarts).
func NewCoalescer(eng *sim.Engine, delay sim.Time, pkts int, fire func()) *Coalescer {
	if pkts <= 0 {
		pkts = 1
	}
	c := &Coalescer{eng: eng, Delay: delay, Pkts: pkts, fire: fire}
	c.timer = eng.NewTimer("coalesce", c.fireNow)
	return c
}

// Event records one completion.
func (c *Coalescer) Event() {
	c.pending++
	if c.pending >= c.Pkts {
		c.fireNow()
		return
	}
	if !c.timer.Armed() {
		c.timer.ArmAfter(c.Delay)
	}
}

func (c *Coalescer) fireNow() {
	c.timer.Stop()
	if c.pending == 0 {
		return
	}
	c.pending = 0
	c.Fires.Inc()
	c.fire()
}

// Pending returns completions not yet reported by an interrupt.
func (c *Coalescer) Pending() int { return c.pending }
