//go:build !race

package nic_test

import (
	"testing"

	"cdna/internal/bus"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/nic"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

// One packet through the full transmit pipeline — descriptor publish,
// doorbell, fetch DMA, processing, payload DMA, wire, writeback, reap —
// must be allocation-free in steady state: the frame is a recycled
// arena slot and the stage jobs ride reused FIFOs. Race builds are
// excluded (the detector's instrumentation allocates).
func TestTxPipelineZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	const guest = mem.Dom0 + 1
	eng := sim.New()
	m := mem.New()
	bs := bus.New(eng, bus.DefaultParams())
	out := ether.NewPipe(eng, 1.0, 0)
	out.Connect(ether.PortFunc(func(f *ether.Frame) { f.Release() }))
	e := nic.NewEngine(eng, bs, m, out, nic.DefaultParams())
	tx, err := ring.New("tx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := ring.New("rx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
	if err != nil {
		t.Fatal(err)
	}
	qid := e.AddQueue(tx, rx)
	arena := ether.NewArena()
	var slots [256]*ether.Frame
	e.Hooks = nic.Hooks{
		LookupTx: func(q int, idx uint32) *ether.Frame { return slots[idx%256] },
	}
	buf := m.AllocOne(guest).Base()
	src, dst := ether.MakeMAC(1, 1), ether.MakeMAC(9, 9)
	drain := func() { eng.Run(eng.Now() + sim.Second) }
	var reaped uint32
	step := func() {
		idx := tx.Prod()
		slots[idx%256] = arena.Get(src, dst, 1514, nil)
		d := ring.Desc{Addr: buf, Len: 1514, Flags: ring.FlagTx | ring.FlagValid}
		if err := tx.WriteDesc(m, guest, idx, d); err != nil {
			t.Fatal(err)
		}
		if err := tx.Publish(1); err != nil {
			t.Fatal(err)
		}
		e.KickTx(qid, tx.Prod())
		drain()
		for ; int32(tx.Cons()-reaped) > 0; reaped++ {
			i := reaped % 256
			slots[i].Release()
			slots[i] = nil
		}
	}
	for i := 0; i < 32; i++ {
		step()
	}

	news := arena.News
	if a := testing.AllocsPerRun(200, step); a != 0 {
		t.Fatalf("steady-state tx pipeline allocates %.1f/op, want 0", a)
	}
	if arena.News != news {
		t.Fatalf("arena missed its free list in steady state: News %d -> %d", news, arena.News)
	}
}
