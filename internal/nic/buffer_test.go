package nic

// Tests for the §4 on-NIC receive packet buffer: frames arriving while
// descriptors are published but unfetched are held, not dropped.

import (
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

func TestRxBufferAbsorbsFetchLatency(t *testing.T) {
	r := newRig(t)
	r.e.Hooks = Hooks{}
	// Publish descriptors and immediately flood frames before the
	// descriptor-fetch DMA can complete.
	r.postRx(t, 32)
	for i := 0; i < 8; i++ {
		r.e.Receive(&ether.Frame{Size: 1514})
	}
	r.eng.Run(10 * sim.Millisecond)
	if r.e.RxDrops.Total() != 0 {
		t.Fatalf("dropped %d frames that the buffer should have held", r.e.RxDrops.Total())
	}
	if r.e.RxBuffered.Total() == 0 {
		t.Fatal("no frames were buffered despite racing the fetch")
	}
	if r.e.RxPackets.Total() != 8 {
		t.Fatalf("delivered %d, want 8", r.e.RxPackets.Total())
	}
}

func TestRxBufferCapacityDropsExcess(t *testing.T) {
	r := newRig(t)
	r.e.Params.RxBufBytes = 3 * 1514 // room for three frames only
	r.e.Hooks = Hooks{}
	r.postRx(t, 32)
	for i := 0; i < 8; i++ {
		r.e.Receive(&ether.Frame{Size: 1514})
	}
	r.eng.Run(10 * sim.Millisecond)
	if r.e.RxDrops.Total() != 5 {
		t.Fatalf("drops = %d, want 5 (3 buffered + 5 overflow)", r.e.RxDrops.Total())
	}
	if r.e.RxPackets.Total() != 3 {
		t.Fatalf("delivered %d, want 3", r.e.RxPackets.Total())
	}
}

func TestRxBufferDisabledDropsImmediately(t *testing.T) {
	r := newRig(t)
	r.e.Params.RxBufBytes = 0
	r.e.Hooks = Hooks{}
	r.postRx(t, 32)
	r.e.Receive(&ether.Frame{Size: 1514})
	r.eng.Run(10 * sim.Millisecond)
	if r.e.RxDrops.Total() != 1 {
		t.Fatalf("drops = %d, want 1 with buffering disabled", r.e.RxDrops.Total())
	}
}

func TestRxBufferNoDescriptorsEverStillDrops(t *testing.T) {
	// Nothing published at all: buffering must not hold frames that no
	// descriptor will ever serve.
	r := newRig(t)
	r.e.Hooks = Hooks{}
	r.e.Receive(&ether.Frame{Size: 1514})
	r.eng.Run(sim.Millisecond)
	if r.e.RxDrops.Total() != 1 {
		t.Fatalf("drops = %d, want 1", r.e.RxDrops.Total())
	}
	if r.e.RxBuffered.Total() != 0 {
		t.Fatal("frame buffered with no fetchable descriptors")
	}
}

func TestRxBufferClearedOnDetach(t *testing.T) {
	r := newRig(t)
	r.e.Hooks = Hooks{}
	r.postRx(t, 32)
	for i := 0; i < 4; i++ {
		r.e.Receive(&ether.Frame{Size: 1514})
	}
	// Detach immediately: held frames vanish with the queue.
	r.e.DetachQueue(r.qid)
	r.eng.Run(10 * sim.Millisecond)
	if r.e.RxPackets.Total() != 0 {
		t.Fatal("detached queue delivered buffered frames")
	}
}
