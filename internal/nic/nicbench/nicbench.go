// Package nicbench holds the NIC data-engine hot-path benchmark in
// plain func(*testing.B) form, shared by `go test -bench` and
// cmd/cdnabench — the same split internal/sim/simbench uses for the
// event core.
package nicbench

import (
	"testing"

	"cdna/internal/bus"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/nic"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

// TxPipeline measures one transmitted packet per op through the full
// device pipeline: descriptor write + publish + doorbell, descriptor
// fetch DMA, NIC processing, payload DMA, wire transmit, consumer-index
// writeback, and the driver-style reap releasing the in-flight frame
// back to its arena. The contract is zero allocs/op in steady state:
// the frame comes from a recycled arena slot, the pipeline stages ride
// pooled events and reused job FIFOs, and the reap never materializes a
// slice.
func TxPipeline(b *testing.B) {
	const guest = mem.Dom0 + 1
	eng := sim.New()
	m := mem.New()
	bs := bus.New(eng, bus.DefaultParams())
	out := ether.NewPipe(eng, 1.0, 0)
	out.Connect(ether.PortFunc(func(f *ether.Frame) { f.Release() }))
	e := nic.NewEngine(eng, bs, m, out, nic.DefaultParams())
	tx, err := ring.New("tx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := ring.New("rx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
	if err != nil {
		b.Fatal(err)
	}
	qid := e.AddQueue(tx, rx)
	arena := ether.NewArena()
	var slots [256]*ether.Frame
	e.Hooks = nic.Hooks{
		LookupTx: func(q int, idx uint32) *ether.Frame { return slots[idx%256] },
	}
	buf := m.AllocOne(guest).Base()
	src, dst := ether.MakeMAC(1, 1), ether.MakeMAC(9, 9)
	drain := func() { eng.Run(eng.Now() + 10*sim.Second) }
	post := func() {
		idx := tx.Prod()
		slots[idx%256] = arena.Get(src, dst, 1514, nil)
		d := ring.Desc{Addr: buf, Len: 1514, Flags: ring.FlagTx | ring.FlagValid}
		if err := tx.WriteDesc(m, guest, idx, d); err != nil {
			b.Fatal(err)
		}
		if err := tx.Publish(1); err != nil {
			b.Fatal(err)
		}
		e.KickTx(qid, tx.Prod())
	}
	var reaped uint32
	reap := func() {
		for ; int32(tx.Cons()-reaped) > 0; reaped++ {
			i := reaped % 256
			slots[i].Release()
			slots[i] = nil
		}
	}
	// Prime the arena, the descriptor-fetch path, and the job FIFOs.
	for i := 0; i < 32; i++ {
		post()
		drain()
		reap()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
		drain()
		reap()
	}
}
