package nic

import (
	"testing"

	"cdna/internal/bus"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

const guest = mem.Dom0 + 1

type rig struct {
	eng  *sim.Engine
	m    *mem.Memory
	e    *Engine
	tx   *ring.Ring
	rx   *ring.Ring
	qid  int
	sent []*ether.Frame
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.New()
	m := mem.New()
	b := bus.New(eng, bus.DefaultParams())
	out := ether.NewPipe(eng, 1.0, 0)
	r := &rig{eng: eng, m: m}
	out.Connect(ether.PortFunc(func(f *ether.Frame) { r.sent = append(r.sent, f) }))
	r.e = NewEngine(eng, b, m, out, DefaultParams())
	var err error
	r.tx, err = ring.New("tx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
	if err != nil {
		t.Fatal(err)
	}
	r.rx, err = ring.New("rx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
	if err != nil {
		t.Fatal(err)
	}
	r.qid = r.e.AddQueue(r.tx, r.rx)
	return r
}

// postTx writes n tx descriptors directly (driver-style) and kicks.
func (r *rig) postTx(t *testing.T, frames map[uint32]*ether.Frame, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		idx := r.tx.Prod()
		buf := r.m.AllocOne(guest)
		d := ring.Desc{Addr: buf.Base(), Len: 1514, Flags: ring.FlagTx | ring.FlagValid}
		if err := r.tx.WriteDesc(r.m, guest, idx, d); err != nil {
			t.Fatal(err)
		}
		if frames != nil {
			frames[idx] = &ether.Frame{Size: 1514, Dst: ether.MakeMAC(9, 9)}
		}
		if err := r.tx.Publish(1); err != nil {
			t.Fatal(err)
		}
	}
	r.e.KickTx(r.qid, r.tx.Prod())
}

func (r *rig) postRx(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		idx := r.rx.Prod()
		buf := r.m.AllocOne(guest)
		d := ring.Desc{Addr: buf.Base(), Len: 1514, Flags: ring.FlagValid}
		if err := r.rx.WriteDesc(r.m, guest, idx, d); err != nil {
			t.Fatal(err)
		}
		if err := r.rx.Publish(1); err != nil {
			t.Fatal(err)
		}
	}
	r.e.KickRx(r.qid, r.rx.Prod())
}

func TestTxPath(t *testing.T) {
	r := newRig(t)
	frames := map[uint32]*ether.Frame{}
	completions := 0
	r.e.Hooks = Hooks{
		LookupTx:     func(qid int, idx uint32) *ether.Frame { return frames[idx] },
		OnCompletion: func(qid int, tx bool) { completions++ },
	}
	r.postTx(t, frames, 10)
	r.eng.Run(10 * sim.Millisecond)
	if len(r.sent) != 10 {
		t.Fatalf("transmitted %d frames, want 10", len(r.sent))
	}
	if completions != 10 {
		t.Fatalf("completions = %d", completions)
	}
	if r.tx.Cons() != 10 {
		t.Fatalf("consumer writeback = %d", r.tx.Cons())
	}
	if r.e.TxPackets.Total() != 10 {
		t.Fatalf("TxPackets = %d", r.e.TxPackets.Total())
	}
}

func TestTxPacedAtLineRate(t *testing.T) {
	r := newRig(t)
	frames := map[uint32]*ether.Frame{}
	r.e.Hooks = Hooks{LookupTx: func(qid int, idx uint32) *ether.Frame { return frames[idx] }}
	r.postTx(t, frames, 200)
	r.eng.Run(sim.Millisecond)
	// Line rate: ~81.3 frames/ms; pacing must keep us near it, never above.
	if len(r.sent) > 84 {
		t.Fatalf("sent %d frames in 1ms: exceeds line rate", len(r.sent))
	}
	if len(r.sent) < 70 {
		t.Fatalf("sent %d frames in 1ms: wire underutilized", len(r.sent))
	}
}

func TestRxPath(t *testing.T) {
	r := newRig(t)
	var delivered []*ether.Frame
	r.e.Hooks = Hooks{
		OnRxDelivered: func(qid int, f *ether.Frame, d ring.Desc) { delivered = append(delivered, f) },
	}
	r.postRx(t, 32)
	r.eng.Run(sim.Millisecond) // let prefetch complete
	for i := 0; i < 5; i++ {
		r.e.Receive(&ether.Frame{Size: 1514, Dst: ether.MakeMAC(1, 1)})
	}
	r.eng.Run(10 * sim.Millisecond)
	if len(delivered) != 5 {
		t.Fatalf("delivered %d, want 5", len(delivered))
	}
	if r.rx.Cons() != 5 {
		t.Fatalf("rx consumer = %d", r.rx.Cons())
	}
}

func TestRxDropWithoutBuffers(t *testing.T) {
	r := newRig(t)
	r.e.Hooks = Hooks{}
	r.e.Receive(&ether.Frame{Size: 1514})
	r.eng.Run(sim.Millisecond)
	if r.e.RxDrops.Total() != 1 || r.e.RxPackets.Total() != 0 {
		t.Fatalf("drops=%d rx=%d", r.e.RxDrops.Total(), r.e.RxPackets.Total())
	}
}

func TestRxDemuxDrop(t *testing.T) {
	r := newRig(t)
	r.e.Hooks = Hooks{RxQueueFor: func(dst ether.MAC) int { return -1 }}
	r.postRx(t, 8)
	r.eng.Run(sim.Millisecond)
	r.e.Receive(&ether.Frame{Size: 1514, Dst: ether.MakeMAC(3, 3)})
	r.eng.Run(sim.Millisecond)
	if r.e.RxDrops.Total() != 1 {
		t.Fatalf("drops = %d", r.e.RxDrops.Total())
	}
}

func TestSeqCheckFaultFreezesQueue(t *testing.T) {
	r := newRig(t)
	var fault *ring.Desc
	calls := 0
	r.e.Hooks = Hooks{
		CheckTxSeq: func(qid int, d ring.Desc) bool {
			calls++
			return d.Seq == uint32(calls-1) // expect 0,1,2,...
		},
		OnFault: func(qid int, tx bool, d ring.Desc) { fault = &d },
	}
	// Write three descriptors with seqs 0, 1, 7 (7 is wrong).
	for i, seq := range []uint32{0, 1, 7} {
		buf := r.m.AllocOne(guest)
		d := ring.Desc{Addr: buf.Base(), Len: 100, Seq: seq}
		r.tx.WriteDesc(r.m, guest, uint32(i), d)
		r.tx.Publish(1)
	}
	r.e.KickTx(r.qid, 3)
	r.eng.Run(10 * sim.Millisecond)
	if fault == nil {
		t.Fatal("no fault reported")
	}
	if fault.Seq != 7 {
		t.Fatalf("fault on seq %d", fault.Seq)
	}
	if r.e.QueueActive(r.qid) {
		t.Fatal("queue still active after fault")
	}
	if r.e.Faults.Total() != 1 {
		t.Fatalf("Faults = %d", r.e.Faults.Total())
	}
	// At most the two valid descriptors were transmitted.
	if len(r.sent) > 2 {
		t.Fatalf("sent %d frames after fault", len(r.sent))
	}
}

func TestDetachedQueueIgnoresKicksAndFrames(t *testing.T) {
	r := newRig(t)
	r.e.Hooks = Hooks{}
	r.postRx(t, 8)
	r.eng.Run(sim.Millisecond)
	r.e.DetachQueue(r.qid)
	r.e.Receive(&ether.Frame{Size: 100})
	r.e.KickTx(r.qid, 5)
	r.eng.Run(sim.Millisecond)
	if r.e.RxDrops.Total() != 1 {
		t.Fatal("detached queue must drop frames")
	}
	if len(r.sent) != 0 {
		t.Fatal("detached queue transmitted")
	}
}

func TestStaleDescriptorWithoutSeqCheckTransmitsGarbage(t *testing.T) {
	// Without sequence checking (protection off), a forged producer
	// index makes the NIC read stale ring bytes and transmit garbage —
	// the vulnerability §3.3 closes.
	r := newRig(t)
	r.e.Hooks = Hooks{LookupTx: func(qid int, idx uint32) *ether.Frame { return nil }}
	buf := r.m.AllocOne(guest)
	d := ring.Desc{Addr: buf.Base(), Len: 777}
	r.tx.WriteDesc(r.m, guest, 0, d)
	// Forge: kick producer=1 without publishing through the ring API.
	r.e.KickTx(r.qid, 1)
	r.eng.Run(10 * sim.Millisecond)
	if len(r.sent) != 1 || r.sent[0].Size != 777 {
		t.Fatalf("garbage frame not transmitted: %v", r.sent)
	}
}

func TestMultiQueueFairness(t *testing.T) {
	eng := sim.New()
	m := mem.New()
	b := bus.New(eng, bus.DefaultParams())
	out := ether.NewPipe(eng, 1.0, 0)
	perQueue := map[int]int{}
	e := NewEngine(eng, b, m, out, DefaultParams())
	frames := map[[2]uint32]*ether.Frame{}
	e.Hooks = Hooks{LookupTx: func(qid int, idx uint32) *ether.Frame { return frames[[2]uint32{uint32(qid), idx}] }}
	out.Connect(ether.PortFunc(func(f *ether.Frame) {
		perQueue[int(f.Src[5])]++
	}))
	const nQ = 4
	for qi := 0; qi < nQ; qi++ {
		tx, _ := ring.New("tx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
		rx, _ := ring.New("rx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
		qid := e.AddQueue(tx, rx)
		for i := 0; i < 100; i++ {
			buf := m.AllocOne(guest)
			d := ring.Desc{Addr: buf.Base(), Len: 1514}
			tx.WriteDesc(m, guest, uint32(i), d)
			tx.Publish(1)
			frames[[2]uint32{uint32(qid), uint32(i)}] = &ether.Frame{Size: 1514, Src: ether.MAC{5: byte(qid)}}
		}
		e.KickTx(qid, 100)
	}
	// Run for ~2ms: wire fits ~163 frames; fairness => ~40 each.
	eng.Run(2 * sim.Millisecond)
	for qi := 0; qi < nQ; qi++ {
		if perQueue[qi] < 30 || perQueue[qi] > 55 {
			t.Fatalf("unfair interleave: %v", perQueue)
		}
	}
}

func TestServerFIFO(t *testing.T) {
	eng := sim.New()
	s := NewServer(eng)
	var order []int
	s.Do(10, "a", sim.RawFn(func() { order = append(order, 1) }))
	s.Do(10, "b", sim.RawFn(func() { order = append(order, 2) }))
	if s.Backlog() != 20 {
		t.Fatalf("Backlog = %v", s.Backlog())
	}
	eng.Run(sim.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if s.Backlog() != 0 {
		t.Fatal("backlog after drain")
	}
}

func TestCoalescerThreshold(t *testing.T) {
	eng := sim.New()
	fires := 0
	c := NewCoalescer(eng, 100*sim.Microsecond, 4, func() { fires++ })
	for i := 0; i < 8; i++ {
		c.Event()
	}
	if fires != 2 {
		t.Fatalf("fires = %d, want 2 (threshold)", fires)
	}
	if c.Pending() != 0 {
		t.Fatal("pending after fire")
	}
}

func TestCoalescerTimer(t *testing.T) {
	eng := sim.New()
	var fireAt sim.Time
	c := NewCoalescer(eng, 100*sim.Microsecond, 1000, func() { fireAt = eng.Now() })
	eng.After(10*sim.Microsecond, "ev", func() { c.Event() })
	eng.Run(sim.Millisecond)
	if fireAt != 110*sim.Microsecond {
		t.Fatalf("fired at %v, want 110us", fireAt)
	}
}

func TestCoalescerTimerNotRearmedBySecondEvent(t *testing.T) {
	eng := sim.New()
	var fireAt sim.Time
	fires := 0
	c := NewCoalescer(eng, 100*sim.Microsecond, 1000, func() { fires++; fireAt = eng.Now() })
	eng.After(10*sim.Microsecond, "e1", func() { c.Event() })
	eng.After(60*sim.Microsecond, "e2", func() { c.Event() })
	eng.Run(sim.Millisecond)
	if fires != 1 || fireAt != 110*sim.Microsecond {
		t.Fatalf("fires=%d at %v; the delay must run from the FIRST pending event", fires, fireAt)
	}
}

func TestCoalescerZeroPktsClamped(t *testing.T) {
	eng := sim.New()
	fires := 0
	c := NewCoalescer(eng, sim.Microsecond, 0, func() { fires++ })
	c.Event()
	if fires != 1 {
		t.Fatal("pkts<=0 must clamp to 1 (immediate fire)")
	}
}
