package nic_test

import (
	"testing"

	"cdna/internal/nic/nicbench"
)

// The device transmit pipeline, runnable via `go test -bench`;
// cmd/cdnabench runs the same function for the committed BENCH_sim.json
// row.
func BenchmarkTxPipeline(b *testing.B) { nicbench.TxPipeline(b) }
