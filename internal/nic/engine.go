package nic

import (
	"cdna/internal/bus"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Params configures the DMA/packet engine.
type Params struct {
	ProcTx     sim.Time // processing per transmitted packet
	ProcRx     sim.Time // processing per received packet
	FetchBatch int      // descriptors fetched per DMA read
	RxPrefetch int      // receive descriptors to keep fetched ahead
	TxWindow   int      // frames the engine keeps queued on the wire ahead
	// RxBufBytes is the per-queue on-NIC receive packet buffer (the
	// RiceNIC provides 128 KB per context, §4): frames arriving while
	// descriptors are published but not yet fetched wait here instead
	// of being dropped. 0 disables buffering (drop immediately).
	RxBufBytes int
}

// DefaultParams returns a conventional-ASIC parameterization.
func DefaultParams() Params {
	return Params{
		ProcTx:     300 * sim.Nanosecond,
		ProcRx:     400 * sim.Nanosecond,
		FetchBatch: 16,
		RxPrefetch: 64,
		TxWindow:   3,
		RxBufBytes: 128 << 10,
	}
}

// Hooks are the device-specific policies layered on the generic engine.
type Hooks struct {
	// CheckTxSeq/CheckRxSeq validate a descriptor's sequence number for
	// queue qid (nil = no checking, the conventional-NIC case). A false
	// return freezes the queue and reports a fault.
	CheckTxSeq func(qid int, d ring.Desc) bool
	CheckRxSeq func(qid int, d ring.Desc) bool
	// OnFault reports a protection fault on a queue.
	OnFault func(qid int, tx bool, d ring.Desc)
	// LookupTx maps a tx descriptor (by free-running ring index) to the
	// frame the driver associated with it; nil results transmit an
	// opaque frame of the descriptor's length (the stale-descriptor /
	// corrupted case).
	LookupTx func(qid int, idx uint32) *ether.Frame
	// RxQueueFor demultiplexes an incoming frame to a queue (-1 drops).
	RxQueueFor func(dst ether.MAC) int
	// OnRxDelivered records a received frame's completion (the data is
	// now in host memory; the driver sees it at its next interrupt).
	OnRxDelivered func(qid int, f *ether.Frame, d ring.Desc)
	// OnCompletion is called for every finished tx or rx descriptor;
	// devices use it to accumulate interrupt state (bit vectors).
	OnCompletion func(qid int, tx bool)
}

type txEntry struct {
	idx  uint32
	desc ring.Desc
}

type queue struct {
	id     int
	tx, rx *ring.Ring
	active bool

	// NIC-visible producer indices (mailbox values).
	txProd, rxProd uint32
	// Next free-running index to fetch.
	txFetch, rxFetch uint32

	txFifo     sim.FIFO[txEntry]
	rxFifo     sim.FIFO[txEntry]
	txFetching bool
	rxFetching bool
	txConsumed uint32 // free-running count of tx descriptors completed
	rxConsumed uint32

	// In-flight descriptor-fetch parameters plus the completion
	// callbacks bound at AddQueue: at most one fetch per direction is
	// outstanding, so the old per-fetch closure's captures live here.
	txFetchN, rxFetchN         int
	txFetchStart, rxFetchStart uint32
	txDescDoneFn, rxDescDoneFn sim.Fn

	// On-NIC receive packet buffer: frames waiting for a descriptor
	// fetch to complete (§4's per-context buffering).
	rxHeld      sim.FIFO[*ether.Frame]
	rxHeldBytes int
}

// txJob / rxJob carry one packet's state through the FIFO processing
// server and the FIFO bus: completions pop the matching job, replacing
// the fresh capturing closure per packet the hot path used to allocate.
type txJob struct {
	q     *queue
	entry txEntry
}

type rxJob struct {
	q     *queue
	f     *ether.Frame
	entry txEntry
}

// Engine is the generic multi-queue NIC data engine.
type Engine struct {
	Eng    *sim.Engine
	Bus    *bus.Bus
	Mem    *mem.Memory
	Out    *ether.Pipe
	Proc   *Server
	Params Params
	Hooks  Hooks

	queues  []*queue
	rrNext  int
	pumping bool

	// Per-packet pipeline state (see txJob/rxJob) and the stage
	// callbacks, bound once in NewEngine.
	txProcJobs, txDmaJobs sim.FIFO[txJob]
	rxProcJobs, rxDmaJobs sim.FIFO[rxJob]

	txProcDoneFn, txDmaDoneFn sim.Fn
	rxProcDoneFn, rxDmaDoneFn sim.Fn
	pumpStepFn                sim.Fn

	TxPackets  stats.Counter
	RxPackets  stats.Counter
	RxDrops    stats.Counter // no posted buffer or no matching queue
	RxBuffered stats.Counter // frames absorbed by the on-NIC buffer
	Faults     stats.Counter
}

// NewEngine creates the data engine. Hooks must be set before traffic
// flows.
func NewEngine(eng *sim.Engine, b *bus.Bus, m *mem.Memory, out *ether.Pipe, p Params) *Engine {
	e := &Engine{Eng: eng, Bus: b, Mem: m, Out: out, Proc: NewServer(eng), Params: p}
	e.txProcDoneFn = eng.Bind(e.txProcDone)
	e.txDmaDoneFn = eng.Bind(e.txDmaDone)
	e.rxProcDoneFn = eng.Bind(e.rxProcDone)
	e.rxDmaDoneFn = eng.Bind(e.rxDmaDone)
	e.pumpStepFn = eng.Bind(e.pumpStep)
	return e
}

// AddQueue registers a queue pair over the given rings and returns its
// queue id.
func (e *Engine) AddQueue(tx, rx *ring.Ring) int {
	q := &queue{id: len(e.queues), tx: tx, rx: rx, active: true}
	q.txDescDoneFn = e.Eng.Bind(func() { e.txDescDone(q) })
	q.rxDescDoneFn = e.Eng.Bind(func() { e.rxDescDone(q) })
	e.queues = append(e.queues, q)
	return q.id
}

// DetachQueue shuts down a queue (context revocation): pending work is
// discarded and future mailbox writes and frames are ignored.
func (e *Engine) DetachQueue(qid int) {
	if qid < 0 || qid >= len(e.queues) {
		return
	}
	q := e.queues[qid]
	q.active = false
	q.txFifo.Clear()
	q.rxFifo.Clear()
	for q.rxHeld.Len() > 0 {
		q.rxHeld.Pop().Release()
	}
	q.rxHeldBytes = 0
}

// QueueActive reports whether the queue is serving.
func (e *Engine) QueueActive(qid int) bool {
	return qid >= 0 && qid < len(e.queues) && e.queues[qid].active
}

// KickTx is the tx mailbox write: the NIC learns the new producer index
// and begins fetching/transmitting. The value is trusted, exactly as the
// paper describes — validation happens via sequence numbers.
func (e *Engine) KickTx(qid int, prod uint32) {
	q := e.queues[qid]
	if !q.active {
		return
	}
	q.txProd = prod
	e.fetchTx(q)
	e.pump()
}

// KickRx is the rx mailbox write (new receive buffers posted).
func (e *Engine) KickRx(qid int, prod uint32) {
	q := e.queues[qid]
	if !q.active {
		return
	}
	q.rxProd = prod
	e.fetchRx(q)
}

// fetchTx issues a descriptor DMA read when there is something to fetch.
func (e *Engine) fetchTx(q *queue) {
	if q.txFetching || !q.active {
		return
	}
	n := int(q.txProd - q.txFetch)
	if n <= 0 {
		return
	}
	if n > e.Params.FetchBatch {
		n = e.Params.FetchBatch
	}
	q.txFetching = true
	q.txFetchN = n
	q.txFetchStart = q.txFetch
	e.Bus.DMA(n*q.tx.Layout.Size, "bus.dma:txdesc", q.txDescDoneFn)
}

func (e *Engine) txDescDone(q *queue) {
	q.txFetching = false
	if !q.active {
		return
	}
	for i := 0; i < q.txFetchN; i++ {
		idx := q.txFetchStart + uint32(i)
		d, err := q.tx.ReadDesc(e.Mem, idx)
		if err != nil {
			return
		}
		if e.Hooks.CheckTxSeq != nil && !e.Hooks.CheckTxSeq(q.id, d) {
			e.fault(q, true, d)
			return
		}
		q.txFifo.Push(txEntry{idx: idx, desc: d})
		q.txFetch = idx + 1
	}
	e.fetchTx(q) // keep fetching if more were published
	e.pump()
}

// fetchRx prefetches receive descriptors.
func (e *Engine) fetchRx(q *queue) {
	if q.rxFetching || !q.active {
		return
	}
	if q.rxFifo.Len() >= e.Params.RxPrefetch {
		return
	}
	n := int(q.rxProd - q.rxFetch)
	if n <= 0 {
		return
	}
	if n > e.Params.FetchBatch {
		n = e.Params.FetchBatch
	}
	q.rxFetching = true
	q.rxFetchN = n
	q.rxFetchStart = q.rxFetch
	e.Bus.DMA(n*q.rx.Layout.Size, "bus.dma:rxdesc", q.rxDescDoneFn)
}

func (e *Engine) rxDescDone(q *queue) {
	q.rxFetching = false
	if !q.active {
		return
	}
	for i := 0; i < q.rxFetchN; i++ {
		idx := q.rxFetchStart + uint32(i)
		d, err := q.rx.ReadDesc(e.Mem, idx)
		if err != nil {
			return
		}
		if e.Hooks.CheckRxSeq != nil && !e.Hooks.CheckRxSeq(q.id, d) {
			e.fault(q, false, d)
			return
		}
		q.rxFifo.Push(txEntry{idx: idx, desc: d})
		q.rxFetch = idx + 1
	}
	// Buffered frames drain now that descriptors are available.
	for q.rxHeld.Len() > 0 && q.rxFifo.Len() > 0 {
		f := q.rxHeld.Pop()
		q.rxHeldBytes -= f.Size
		e.deliverRx(q, f)
	}
	e.fetchRx(q)
}

func (e *Engine) fault(q *queue, tx bool, d ring.Desc) {
	e.Faults.Inc()
	if e.Hooks.OnFault != nil {
		e.Hooks.OnFault(q.id, tx, d)
	}
	e.DetachQueue(q.id)
}

// pump is the transmit service loop: round-robin across queues with
// fetched descriptors ("the NIC simply services all of the hardware
// contexts fairly and interleaves the network traffic", §3.1), pacing
// against the wire.
func (e *Engine) pump() {
	if e.pumping {
		return
	}
	e.pumping = true
	e.pumpStep()
}

func (e *Engine) pumpStep() {
	// Pace against the wire: keep at most TxWindow frames serialized
	// ahead, and resume as soon as the backlog falls back under the
	// threshold (not when the wire drains — that would leave bubbles).
	slot := sim.Time(float64(1538) * 8) // ~one full frame at 1 Gb/s, in ns
	if e.Out != nil {
		limit := sim.Time(e.Params.TxWindow) * slot
		if bl := e.Out.Backlog(); bl > limit {
			e.Eng.AfterFn(bl-limit, "nic.pace", e.pumpStepFn)
			return
		}
	}
	// Round-robin scan for a queue with transmittable work.
	n := len(e.queues)
	for i := 0; i < n; i++ {
		q := e.queues[(e.rrNext+i)%n]
		if !q.active || q.txFifo.Len() == 0 {
			continue
		}
		e.rrNext = (e.rrNext + i + 1) % n
		entry := q.txFifo.Pop()
		if q.txFifo.Len() < e.Params.FetchBatch {
			e.fetchTx(q)
		}
		e.txProcJobs.Push(txJob{q: q, entry: entry})
		e.Proc.Do(e.Params.ProcTx, "nicproc:tx", e.txProcDoneFn)
		return
	}
	e.pumping = false
}

// txProcDone: NIC processing finished; DMA the payload out of host
// memory.
func (e *Engine) txProcDone() {
	j := e.txProcJobs.Pop()
	e.txDmaJobs.Push(j)
	e.Bus.DMA(int(j.entry.desc.Len), "bus.dma:txdata", e.txDmaDoneFn)
}

// txDmaDone: payload is on the NIC; transmit and complete.
func (e *Engine) txDmaDone() {
	j := e.txDmaJobs.Pop()
	var f *ether.Frame
	if e.Hooks.LookupTx != nil {
		f = e.Hooks.LookupTx(j.q.id, j.entry.idx)
	}
	if f == nil {
		// Stale or forged descriptor: the NIC transmits whatever bytes
		// the memory held.
		f = &ether.Frame{Size: int(j.entry.desc.Len)}
	}
	if e.Out != nil {
		// The driver's in-flight slot keeps its reference until reap;
		// the wire consumes one of its own.
		f.Retain()
		e.Out.Send(f)
	}
	e.TxPackets.Inc()
	e.completeTx(j.q)
	e.pumpStep()
}

func (e *Engine) completeTx(q *queue) {
	if q.tx.Avail() > 0 {
		q.tx.Consume(1) // host-visible consumer index writeback
	}
	q.txConsumed++
	if e.Hooks.OnCompletion != nil {
		e.Hooks.OnCompletion(q.id, true)
	}
}

// Receive implements ether.Port: a frame arrived from the wire.
func (e *Engine) Receive(f *ether.Frame) {
	qid := 0
	if e.Hooks.RxQueueFor != nil {
		qid = e.Hooks.RxQueueFor(f.Dst)
	}
	if qid < 0 || qid >= len(e.queues) || !e.queues[qid].active {
		e.RxDrops.Inc()
		f.Release()
		return
	}
	q := e.queues[qid]
	if q.rxFifo.Len() == 0 {
		// No fetched descriptor. If more are published (or a fetch is in
		// flight) and the on-NIC packet buffer has room, hold the frame;
		// otherwise tail-drop (§2.2 semantics).
		fetchable := q.rxFetching || int(q.rxProd-q.rxFetch) > 0
		if fetchable && q.rxHeldBytes+f.Size <= e.Params.RxBufBytes {
			q.rxHeld.Push(f)
			q.rxHeldBytes += f.Size
			e.RxBuffered.Inc()
			e.fetchRx(q)
			return
		}
		e.RxDrops.Inc()
		f.Release()
		e.fetchRx(q)
		return
	}
	e.deliverRx(q, f)
}

// deliverRx consumes one fetched descriptor for frame f: NIC processing,
// payload DMA into the host buffer, consumer-index writeback, and the
// completion hook.
func (e *Engine) deliverRx(q *queue, f *ether.Frame) {
	entry := q.rxFifo.Pop()
	if q.rxFifo.Len() < e.Params.RxPrefetch/2 {
		e.fetchRx(q)
	}
	e.rxProcJobs.Push(rxJob{q: q, f: f, entry: entry})
	e.Proc.Do(e.Params.ProcRx, "nicproc:rx", e.rxProcDoneFn)
}

// rxProcDone: NIC processing finished; DMA the payload into the posted
// host buffer.
func (e *Engine) rxProcDone() {
	j := e.rxProcJobs.Pop()
	size := j.f.Size
	if size > int(j.entry.desc.Len) {
		size = int(j.entry.desc.Len)
	}
	e.rxDmaJobs.Push(j)
	e.Bus.DMA(size, "bus.dma:rxdata", e.rxDmaDoneFn)
}

// rxDmaDone: the frame is in host memory; write back the consumer index
// and report the completion.
func (e *Engine) rxDmaDone() {
	j := e.rxDmaJobs.Pop()
	q := j.q
	if !q.active {
		j.f.Release()
		return
	}
	if q.rx.Avail() > 0 {
		q.rx.Consume(1)
	}
	q.rxConsumed++
	e.RxPackets.Inc()
	if e.Hooks.OnRxDelivered != nil {
		e.Hooks.OnRxDelivered(q.id, j.f, j.entry.desc)
	}
	if e.Hooks.OnCompletion != nil {
		e.Hooks.OnCompletion(q.id, false)
	}
}

// TxBacklog returns fetched-but-untransmitted descriptors on a queue.
func (e *Engine) TxBacklog(qid int) int { return e.queues[qid].txFifo.Len() }

// RxPosted returns fetched receive buffers ready for arrivals.
func (e *Engine) RxPosted(qid int) int { return e.queues[qid].rxFifo.Len() }

// StartWindow resets windowed counters.
func (e *Engine) StartWindow() {
	e.TxPackets.StartWindow()
	e.RxPackets.StartWindow()
	e.RxDrops.StartWindow()
	e.Faults.StartWindow()
}
