package nic

import (
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// ServerState is the processing server's checkpoint image.
type ServerState struct {
	BusyUntil sim.Time
	Ops       stats.CounterState
}

// State captures the server.
func (s *Server) State() ServerState {
	return ServerState{BusyUntil: s.busyUntil, Ops: s.Ops.State()}
}

// SetState restores the server.
func (s *Server) SetState(st ServerState) {
	s.busyUntil = st.BusyUntil
	s.Ops.SetState(st.Ops)
}

// CoalescerState is the interrupt coalescer's checkpoint image. The
// armed delay timer rides the engine snapshot via the timer registry.
type CoalescerState struct {
	Pending int
	Fires   stats.CounterState
}

// State captures the coalescer.
func (c *Coalescer) State() CoalescerState {
	return CoalescerState{Pending: c.pending, Fires: c.Fires.State()}
}

// SetState restores the coalescer.
func (c *Coalescer) SetState(s CoalescerState) {
	c.pending = s.Pending
	c.Fires.SetState(s.Fires)
}

// DescEntry is one fetched descriptor in a queue FIFO image.
type DescEntry struct {
	Idx  uint32
	Desc ring.Desc
}

// QueueState is one queue pair's checkpoint image. The descriptor
// rings' free-running indices are captured here because the engine is
// the rings' consumer — the driver side shares the same ring objects
// and relies on this restore.
type QueueState struct {
	Active         bool
	TxRing, RxRing ring.State

	TxProd, RxProd   uint32
	TxFetch, RxFetch uint32

	TxFifo, RxFifo         []DescEntry
	TxFetching, RxFetching bool
	TxConsumed, RxConsumed uint32

	TxFetchN, RxFetchN         int
	TxFetchStart, RxFetchStart uint32

	RxHeld      []ether.FrameState
	RxHeldBytes int
}

// TxJobState is one packet in the transmit pipeline image.
type TxJobState struct {
	Queue int
	Entry DescEntry
}

// RxJobState is one packet in the receive pipeline image.
type RxJobState struct {
	Queue int
	Frame ether.FrameState
	Entry DescEntry
}

// EngineState is the data engine's checkpoint image, including its
// processing server.
type EngineState struct {
	Queues  []QueueState
	RRNext  int
	Pumping bool

	TxProcJobs, TxDmaJobs []TxJobState
	RxProcJobs, RxDmaJobs []RxJobState

	Proc ServerState

	TxPackets  stats.CounterState
	RxPackets  stats.CounterState
	RxDrops    stats.CounterState
	RxBuffered stats.CounterState
	Faults     stats.CounterState
}

func captureDescFIFO(q *sim.FIFO[txEntry]) []DescEntry {
	out := make([]DescEntry, q.Len())
	for i := 0; i < q.Len(); i++ {
		e := q.At(i)
		out[i] = DescEntry{Idx: e.idx, Desc: e.desc}
	}
	return out
}

func restoreDescFIFO(q *sim.FIFO[txEntry], es []DescEntry) {
	q.Clear()
	for _, e := range es {
		q.Push(txEntry{idx: e.Idx, desc: e.Desc})
	}
}

// State captures the engine. In-flight packets referenced by the
// processing/DMA job FIFOs serialize their queue as an index and their
// frame by value via codec.
func (e *Engine) State(codec ether.PayloadCodec) (EngineState, error) {
	s := EngineState{
		Queues:     make([]QueueState, len(e.queues)),
		RRNext:     e.rrNext,
		Pumping:    e.pumping,
		Proc:       e.Proc.State(),
		TxPackets:  e.TxPackets.State(),
		RxPackets:  e.RxPackets.State(),
		RxDrops:    e.RxDrops.State(),
		RxBuffered: e.RxBuffered.State(),
		Faults:     e.Faults.State(),
	}
	for i, q := range e.queues {
		held, err := ether.CaptureFrameFIFO(&q.rxHeld, codec)
		if err != nil {
			return EngineState{}, err
		}
		s.Queues[i] = QueueState{
			Active:       q.active,
			TxRing:       q.tx.State(),
			RxRing:       q.rx.State(),
			TxProd:       q.txProd,
			RxProd:       q.rxProd,
			TxFetch:      q.txFetch,
			RxFetch:      q.rxFetch,
			TxFifo:       captureDescFIFO(&q.txFifo),
			RxFifo:       captureDescFIFO(&q.rxFifo),
			TxFetching:   q.txFetching,
			RxFetching:   q.rxFetching,
			TxConsumed:   q.txConsumed,
			RxConsumed:   q.rxConsumed,
			TxFetchN:     q.txFetchN,
			RxFetchN:     q.rxFetchN,
			TxFetchStart: q.txFetchStart,
			RxFetchStart: q.rxFetchStart,
			RxHeld:       held,
			RxHeldBytes:  q.rxHeldBytes,
		}
	}
	capTxJobs := func(q *sim.FIFO[txJob]) []TxJobState {
		out := make([]TxJobState, q.Len())
		for i := 0; i < q.Len(); i++ {
			j := q.At(i)
			out[i] = TxJobState{Queue: j.q.id, Entry: DescEntry{Idx: j.entry.idx, Desc: j.entry.desc}}
		}
		return out
	}
	capRxJobs := func(q *sim.FIFO[rxJob]) ([]RxJobState, error) {
		out := make([]RxJobState, q.Len())
		for i := 0; i < q.Len(); i++ {
			j := q.At(i)
			fs, err := ether.CaptureFrame(j.f, codec)
			if err != nil {
				return nil, err
			}
			out[i] = RxJobState{Queue: j.q.id, Frame: fs, Entry: DescEntry{Idx: j.entry.idx, Desc: j.entry.desc}}
		}
		return out, nil
	}
	s.TxProcJobs = capTxJobs(&e.txProcJobs)
	s.TxDmaJobs = capTxJobs(&e.txDmaJobs)
	var err error
	if s.RxProcJobs, err = capRxJobs(&e.rxProcJobs); err != nil {
		return EngineState{}, err
	}
	if s.RxDmaJobs, err = capRxJobs(&e.rxDmaJobs); err != nil {
		return EngineState{}, err
	}
	return s, nil
}

// SetState restores the engine into a freshly built machine whose queue
// roster matches the donor's.
func (e *Engine) SetState(s EngineState, codec ether.PayloadCodec) error {
	if len(s.Queues) != len(e.queues) {
		return fmt.Errorf("nic: queue roster mismatch: snapshot has %d, machine has %d",
			len(s.Queues), len(e.queues))
	}
	for i, qs := range s.Queues {
		q := e.queues[i]
		q.active = qs.Active
		q.tx.SetState(qs.TxRing)
		q.rx.SetState(qs.RxRing)
		q.txProd, q.rxProd = qs.TxProd, qs.RxProd
		q.txFetch, q.rxFetch = qs.TxFetch, qs.RxFetch
		restoreDescFIFO(&q.txFifo, qs.TxFifo)
		restoreDescFIFO(&q.rxFifo, qs.RxFifo)
		q.txFetching, q.rxFetching = qs.TxFetching, qs.RxFetching
		q.txConsumed, q.rxConsumed = qs.TxConsumed, qs.RxConsumed
		q.txFetchN, q.rxFetchN = qs.TxFetchN, qs.RxFetchN
		q.txFetchStart, q.rxFetchStart = qs.TxFetchStart, qs.RxFetchStart
		if err := ether.RestoreFrameFIFO(&q.rxHeld, qs.RxHeld, codec); err != nil {
			return err
		}
		q.rxHeldBytes = qs.RxHeldBytes
	}
	e.rrNext = s.RRNext
	e.pumping = s.Pumping
	resTxJobs := func(q *sim.FIFO[txJob], js []TxJobState) error {
		q.Clear()
		for _, j := range js {
			if j.Queue < 0 || j.Queue >= len(e.queues) {
				return fmt.Errorf("nic: tx job references queue %d of %d", j.Queue, len(e.queues))
			}
			q.Push(txJob{q: e.queues[j.Queue], entry: txEntry{idx: j.Entry.Idx, desc: j.Entry.Desc}})
		}
		return nil
	}
	resRxJobs := func(q *sim.FIFO[rxJob], js []RxJobState) error {
		q.Clear()
		for _, j := range js {
			if j.Queue < 0 || j.Queue >= len(e.queues) {
				return fmt.Errorf("nic: rx job references queue %d of %d", j.Queue, len(e.queues))
			}
			f, err := ether.RestoreFrame(j.Frame, codec)
			if err != nil {
				return err
			}
			q.Push(rxJob{q: e.queues[j.Queue], f: f, entry: txEntry{idx: j.Entry.Idx, desc: j.Entry.Desc}})
		}
		return nil
	}
	if err := resTxJobs(&e.txProcJobs, s.TxProcJobs); err != nil {
		return err
	}
	if err := resTxJobs(&e.txDmaJobs, s.TxDmaJobs); err != nil {
		return err
	}
	if err := resRxJobs(&e.rxProcJobs, s.RxProcJobs); err != nil {
		return err
	}
	if err := resRxJobs(&e.rxDmaJobs, s.RxDmaJobs); err != nil {
		return err
	}
	e.Proc.SetState(s.Proc)
	e.TxPackets.SetState(s.TxPackets)
	e.RxPackets.SetState(s.RxPackets)
	e.RxDrops.SetState(s.RxDrops)
	e.RxBuffered.SetState(s.RxBuffered)
	e.Faults.SetState(s.Faults)
	return nil
}
