package ring

import (
	"testing"
	"testing/quick"

	"cdna/internal/mem"
)

const guest = mem.Dom0 + 1

func newRing(t *testing.T, entries int) (*mem.Memory, *Ring) {
	t.Helper()
	m := mem.New()
	pages := (entries*DefaultLayout.Size + mem.PageSize - 1) / mem.PageSize
	pfns := m.Alloc(guest, pages)
	r, err := New("tx", DefaultLayout, pfns[0].Base(), entries)
	if err != nil {
		t.Fatal(err)
	}
	return m, r
}

func TestLayoutValidate(t *testing.T) {
	if err := DefaultLayout.Validate(); err != nil {
		t.Fatalf("default layout invalid: %v", err)
	}
	bad := []Layout{
		{Size: 8, AddrOff: 0, LenOff: 0, FlagsOff: 0, SeqOff: -1},
		{Size: 16, AddrOff: 12, LenOff: 0, FlagsOff: 2, SeqOff: -1},  // addr spills
		{Size: 16, AddrOff: 0, LenOff: 15, FlagsOff: 8, SeqOff: -1},  // len spills
		{Size: 16, AddrOff: 0, LenOff: 8, FlagsOff: 15, SeqOff: -1},  // flags spill
		{Size: 16, AddrOff: 0, LenOff: 8, FlagsOff: 10, SeqOff: 13},  // seq spills
		{Size: 16, AddrOff: -1, LenOff: 8, FlagsOff: 10, SeqOff: 12}, // negative
	}
	for i, l := range bad {
		if l.Validate() == nil {
			t.Errorf("bad layout %d validated", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(addr uint64, length uint16, flags uint16, seq uint32) bool {
		d := Desc{Addr: mem.Addr(addr), Len: length, Flags: flags, Seq: seq}
		got, err := DefaultLayout.Decode(DefaultLayout.Encode(d))
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	if _, err := DefaultLayout.Decode(make([]byte, 8)); err == nil {
		t.Fatal("short buffer must fail to decode")
	}
}

func TestLayoutWithoutSeq(t *testing.T) {
	l := Layout{Size: 12, AddrOff: 0, LenOff: 8, FlagsOff: 10, SeqOff: -1}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	d := Desc{Addr: 0x1234, Len: 99, Flags: FlagTx, Seq: 7}
	got, err := l.Decode(l.Encode(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 {
		t.Fatal("seq must be dropped by a layout without a seq field")
	}
	if got.Addr != d.Addr || got.Len != d.Len || got.Flags != d.Flags {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}

func TestNewRejectsNonPowerOfTwo(t *testing.T) {
	m := mem.New()
	base := m.AllocOne(guest).Base()
	for _, n := range []int{0, -1, 3, 100} {
		if _, err := New("x", DefaultLayout, base, n); err == nil {
			t.Errorf("entries=%d accepted", n)
		}
	}
}

func TestProducerConsumerProtocol(t *testing.T) {
	_, r := newRing(t, 8)
	if r.Avail() != 0 || r.Space() != 8 || r.Full() {
		t.Fatal("fresh ring state wrong")
	}
	if err := r.Publish(5); err != nil {
		t.Fatal(err)
	}
	if r.Avail() != 5 || r.Space() != 3 {
		t.Fatalf("avail=%d space=%d", r.Avail(), r.Space())
	}
	if err := r.Publish(4); err != ErrRingFull {
		t.Fatalf("overfill err = %v", err)
	}
	if err := r.Consume(5); err != nil {
		t.Fatal(err)
	}
	if err := r.Consume(1); err != ErrRingEmpty {
		t.Fatalf("over-consume err = %v", err)
	}
}

func TestIndicesWrapFreeRunning(t *testing.T) {
	_, r := newRing(t, 4)
	for i := 0; i < 100; i++ {
		if err := r.Publish(1); err != nil {
			t.Fatal(err)
		}
		if err := r.Consume(1); err != nil {
			t.Fatal(err)
		}
	}
	if r.Prod() != 100 || r.Cons() != 100 {
		t.Fatalf("prod=%d cons=%d", r.Prod(), r.Cons())
	}
	if r.SlotAddr(100) != r.SlotAddr(0) {
		t.Fatal("slot addresses must wrap mod entries")
	}
}

func TestWriteReadDescThroughMemory(t *testing.T) {
	m, r := newRing(t, 8)
	d := Desc{Addr: 0xabcd000, Len: 1514, Flags: FlagTx | FlagEOP | FlagValid, Seq: 42}
	if err := r.WriteDesc(m, guest, 3, d); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadDesc(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("got %+v want %+v", got, d)
	}
	// Index 3+8 maps to the same slot.
	got2, _ := r.ReadDesc(m, 11)
	if got2 != d {
		t.Fatal("wrapped index read a different slot")
	}
}

func TestHypExclusiveRingWrite(t *testing.T) {
	m, r := newRing(t, 8)
	for _, pfn := range mem.RangePFNs(r.Base, r.Bytes()) {
		m.SetHypExclusive(pfn, true)
	}
	d := Desc{Addr: 0x1000, Len: 64, Seq: 1}
	if err := r.WriteDesc(m, guest, 0, d); err != mem.ErrHypExclusive {
		t.Fatalf("guest ring write err = %v, want ErrHypExclusive", err)
	}
	if err := r.WriteDesc(m, mem.DomHyp, 0, d); err != nil {
		t.Fatalf("hypervisor ring write failed: %v", err)
	}
}

// Property: producer/consumer indices never cross under random
// publish/consume sequences.
func TestRingIndexInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		m := mem.New()
		base := m.AllocOne(guest).Base()
		r, _ := New("p", DefaultLayout, base, 16)
		for _, op := range ops {
			n := int(op&7) + 1
			if op&8 == 0 {
				if n <= r.Space() {
					if r.Publish(n) != nil {
						return false
					}
				} else if r.Publish(n) != ErrRingFull {
					return false
				}
			} else {
				if n <= r.Avail() {
					if r.Consume(n) != nil {
						return false
					}
				} else if r.Consume(n) != ErrRingEmpty {
					return false
				}
			}
			if r.Avail() < 0 || r.Avail() > r.Entries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
