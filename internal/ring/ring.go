// Package ring implements DMA descriptor rings as the paper describes
// them (§2.2–3.3): fixed-size descriptors holding a physical address, a
// length, flags, and — for CDNA — a strictly increasing sequence number,
// stored as real bytes in simulated host memory and managed with a
// producer/consumer protocol whose indices are free-running and wrap
// modulo the ring size.
//
// The encoding is parameterized by a Layout so the hypervisor can handle
// any NIC's descriptor format generically (§3.4): a NIC declares the
// descriptor size and the offsets of the address, length, flags and
// sequence-number fields, and the hypervisor composes descriptors without
// interpreting the flags.
package ring

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cdna/internal/mem"
)

// Flags carried in a descriptor.
const (
	FlagEOP   = 1 << 0 // end of packet
	FlagTx    = 1 << 1 // transmit (vs receive buffer post)
	FlagValid = 1 << 2 // set by the producer
)

// Desc is the decoded form of a DMA descriptor.
type Desc struct {
	Addr  mem.Addr
	Len   uint16
	Flags uint16
	Seq   uint32
}

// Layout describes a NIC's on-ring descriptor format. All offsets are in
// bytes from the start of the descriptor slot.
type Layout struct {
	Size     int // bytes per descriptor slot
	AddrOff  int // 8-byte little-endian physical address
	LenOff   int // 2-byte length
	FlagsOff int // 2-byte flags (opaque to the hypervisor)
	SeqOff   int // 4-byte sequence number; -1 if the NIC has no seq field
}

// DefaultLayout is the RiceNIC CDNA descriptor format.
var DefaultLayout = Layout{Size: 16, AddrOff: 0, LenOff: 8, FlagsOff: 10, SeqOff: 12}

// Validate checks that the field offsets fit within Size and do not
// overlap in obviously broken ways.
func (l Layout) Validate() error {
	if l.Size < 12 {
		return fmt.Errorf("ring: layout size %d too small", l.Size)
	}
	if l.AddrOff < 0 || l.AddrOff+8 > l.Size {
		return errors.New("ring: address field out of bounds")
	}
	if l.LenOff < 0 || l.LenOff+2 > l.Size {
		return errors.New("ring: length field out of bounds")
	}
	if l.FlagsOff < 0 || l.FlagsOff+2 > l.Size {
		return errors.New("ring: flags field out of bounds")
	}
	if l.SeqOff != -1 && (l.SeqOff < 0 || l.SeqOff+4 > l.Size) {
		return errors.New("ring: seq field out of bounds")
	}
	return nil
}

// Encode serializes d into a descriptor slot image.
func (l Layout) Encode(d Desc) []byte {
	b := make([]byte, l.Size)
	l.EncodeInto(d, b)
	return b
}

// EncodeInto serializes d into b, which must hold at least Size bytes.
// The per-Ring scratch buffer passes through here so the descriptor
// hot path does not allocate a slot image per packet.
func (l Layout) EncodeInto(d Desc, b []byte) {
	binary.LittleEndian.PutUint64(b[l.AddrOff:], uint64(d.Addr))
	binary.LittleEndian.PutUint16(b[l.LenOff:], d.Len)
	binary.LittleEndian.PutUint16(b[l.FlagsOff:], d.Flags)
	if l.SeqOff >= 0 {
		binary.LittleEndian.PutUint32(b[l.SeqOff:], d.Seq)
	}
}

// Decode parses a descriptor slot image.
func (l Layout) Decode(b []byte) (Desc, error) {
	if len(b) < l.Size {
		return Desc{}, fmt.Errorf("ring: short descriptor: %d < %d bytes", len(b), l.Size)
	}
	d := Desc{
		Addr:  mem.Addr(binary.LittleEndian.Uint64(b[l.AddrOff:])),
		Len:   binary.LittleEndian.Uint16(b[l.LenOff:]),
		Flags: binary.LittleEndian.Uint16(b[l.FlagsOff:]),
	}
	if l.SeqOff >= 0 {
		d.Seq = binary.LittleEndian.Uint32(b[l.SeqOff:])
	}
	return d, nil
}

// Ring is the host-side view of a descriptor ring: a contiguous region of
// host memory holding Entries descriptor slots, plus free-running
// producer and consumer indices. The producer index counts descriptors
// ever published; the consumer index counts descriptors ever consumed by
// the NIC. Both wrap modulo Entries only when converted to slot
// positions.
type Ring struct {
	Name    string
	Layout  Layout
	Base    mem.Addr
	Entries int

	prod uint32
	cons uint32

	scratch []byte // one descriptor slot image, reused by WriteDesc/ReadDesc
}

// New creates a ring over pre-allocated memory at base.
func New(name string, layout Layout, base mem.Addr, entries int) (*Ring, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("ring: entries %d must be a positive power of two", entries)
	}
	return &Ring{Name: name, Layout: layout, Base: base, Entries: entries,
		scratch: make([]byte, layout.Size)}, nil
}

// Bytes returns the memory footprint of the ring.
func (r *Ring) Bytes() int { return r.Entries * r.Layout.Size }

// SlotAddr returns the address of the slot for free-running index i.
func (r *Ring) SlotAddr(i uint32) mem.Addr {
	return r.Base + mem.Addr(int(i%uint32(r.Entries))*r.Layout.Size)
}

// Prod returns the free-running producer index.
func (r *Ring) Prod() uint32 { return r.prod }

// Cons returns the free-running consumer index.
func (r *Ring) Cons() uint32 { return r.cons }

// Avail returns how many published descriptors await consumption.
func (r *Ring) Avail() int { return int(r.prod - r.cons) }

// Space returns how many slots are free for new descriptors.
func (r *Ring) Space() int { return r.Entries - r.Avail() }

// Full reports whether the ring has no free slots.
func (r *Ring) Full() bool { return r.Space() == 0 }

// Errors from ring index operations.
var (
	ErrRingFull  = errors.New("ring: full")
	ErrRingEmpty = errors.New("ring: no published descriptors")
)

// Publish advances the producer index by n after descriptors have been
// written to the slots.
func (r *Ring) Publish(n int) error {
	if n > r.Space() {
		return ErrRingFull
	}
	r.prod += uint32(n)
	return nil
}

// Consume advances the consumer index by n.
func (r *Ring) Consume(n int) error {
	if n > r.Avail() {
		return ErrRingEmpty
	}
	r.cons += uint32(n)
	return nil
}

// SetProd force-sets the free-running producer index. This models the
// mailbox write: the NIC trusts the value, which is exactly the attack
// surface the sequence-number check closes (§3.3). It is exported for
// the fault-injection tests and the malicious-driver example.
func (r *Ring) SetProd(v uint32) { r.prod = v }

// WriteDesc encodes d into slot i via memory m, using writer identity
// dom (mem enforces hypervisor-exclusive ring protection).
func (r *Ring) WriteDesc(m *mem.Memory, dom mem.DomID, i uint32, d Desc) error {
	r.Layout.EncodeInto(d, r.scratch)
	return m.WriteAs(dom, r.SlotAddr(i), r.scratch)
}

// ReadDesc decodes slot i via the device path (no permission checks —
// this is the NIC's DMA read of the descriptor).
func (r *Ring) ReadDesc(m *mem.Memory, i uint32) (Desc, error) {
	if err := m.ReadInto(r.SlotAddr(i), r.scratch); err != nil {
		return Desc{}, err
	}
	return r.Layout.Decode(r.scratch)
}
