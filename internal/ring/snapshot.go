package ring

// State is a Ring's checkpoint image: the two free-running indices.
// The descriptor bytes themselves live in simulated host memory and are
// captured by the mem layer; geometry (base, entries, layout) is
// construction state the restored machine rebuilds identically.
type State struct {
	Prod uint32
	Cons uint32
}

// State captures the ring indices.
func (r *Ring) State() State { return State{Prod: r.prod, Cons: r.cons} }

// SetState restores the ring indices from a State image.
func (r *Ring) SetState(s State) { r.prod, r.cons = s.Prod, s.Cons }
