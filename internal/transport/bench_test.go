package transport_test

import (
	"testing"

	"cdna/internal/transport/transportbench"
)

// The pooled-segment round trip, runnable via `go test -bench`;
// cmd/cdnabench runs the same function for the committed BENCH_sim.json
// row.
func BenchmarkSegment(b *testing.B) { transportbench.Segment(b) }
