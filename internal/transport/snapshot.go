package transport

import (
	"encoding/binary"
	"fmt"

	"cdna/internal/sim"
	"cdna/internal/stats"
)

// ConnState is a connection's checkpoint image: both endpoints' sliding
// state plus metrics. The armed RTO timer itself rides the engine
// snapshot via the timer registry; rtoUna is the callback's captured
// state and lives here.
type ConnState struct {
	SndNext uint32
	SndUna  uint32
	Cwnd    int
	Started bool
	Bounded bool
	Limit   uint32
	RtoUna  uint32

	RcvNext   uint32
	Unacked   int
	MarkArmed bool
	RcvMark   uint32

	Delivered   stats.CounterState
	Retransmits stats.CounterState
	DupDrops    stats.CounterState
	AcksSent    stats.CounterState
	Latency     stats.DistributionState
}

// State captures the connection.
func (c *Conn) State() ConnState {
	return ConnState{
		SndNext:     c.sndNext,
		SndUna:      c.sndUna,
		Cwnd:        c.cwnd,
		Started:     c.started,
		Bounded:     c.bounded,
		Limit:       c.limit,
		RtoUna:      c.rtoUna,
		RcvNext:     c.rcvNext,
		Unacked:     c.unacked,
		MarkArmed:   c.markArmed,
		RcvMark:     c.rcvMark,
		Delivered:   c.Delivered.State(),
		Retransmits: c.Retransmits.State(),
		DupDrops:    c.DupDrops.State(),
		AcksSent:    c.AcksSent.State(),
		Latency:     c.Latency.State(),
	}
}

// SetState restores the connection.
func (c *Conn) SetState(s ConnState) {
	c.sndNext = s.SndNext
	c.sndUna = s.SndUna
	c.cwnd = s.Cwnd
	c.started = s.Started
	c.bounded = s.Bounded
	c.limit = s.Limit
	c.rtoUna = s.RtoUna
	c.rcvNext = s.RcvNext
	c.unacked = s.Unacked
	c.markArmed = s.MarkArmed
	c.rcvMark = s.RcvMark
	c.Delivered.SetState(s.Delivered)
	c.Retransmits.SetState(s.Retransmits)
	c.DupDrops.SetState(s.DupDrops)
	c.AcksSent.SetState(s.AcksSent)
	c.Latency.SetState(s.Latency)
}

// Segment wire image: segments in flight (frame payloads, receive
// queues) serialize to a fixed 22-byte record with the owning
// connection replaced by its index in the machine's connection group.
const segImageBytes = 4 + 4 + 4 + 1 + 4 + 8 // conn, seq, len, ack, ackseq, sentat

// EncodeSegment converts a segment to its checkpoint bytes, using
// connIndex as the connection's identity.
func EncodeSegment(s *Segment, connIndex int) []byte {
	b := make([]byte, segImageBytes)
	binary.LittleEndian.PutUint32(b[0:], uint32(connIndex))
	binary.LittleEndian.PutUint32(b[4:], s.Seq)
	binary.LittleEndian.PutUint32(b[8:], uint32(s.Len))
	if s.Ack {
		b[12] = 1
	}
	binary.LittleEndian.PutUint32(b[13:], s.AckSeq)
	binary.LittleEndian.PutUint64(b[17:], uint64(s.SentAt))
	return b
}

// DecodeSegment materializes a segment from its checkpoint bytes; the
// caller resolves the returned connection index to a *Conn.
func DecodeSegment(b []byte) (connIndex int, s *Segment, err error) {
	if len(b) != segImageBytes {
		return 0, nil, fmt.Errorf("transport: segment image is %d bytes, want %d", len(b), segImageBytes)
	}
	s = &Segment{
		Seq:    binary.LittleEndian.Uint32(b[4:]),
		Len:    int(binary.LittleEndian.Uint32(b[8:])),
		Ack:    b[12] == 1,
		AckSeq: binary.LittleEndian.Uint32(b[13:]),
		SentAt: sim.Time(binary.LittleEndian.Uint64(b[17:])),
	}
	return int(binary.LittleEndian.Uint32(b[0:])), s, nil
}
