//go:build !race

package transport_test

import (
	"testing"

	"cdna/internal/sim"
	"cdna/internal/transport"
)

// A bounded send's full round trip — pump, delivery, delayed ack,
// completion — must be allocation-free in steady state when the
// connection draws from segment pools. Race builds are excluded (the
// detector's instrumentation allocates).
func TestSegmentRoundTripZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	eng := sim.New()
	pool := transport.NewSegPool()
	c := transport.NewConn(eng, 0, transport.DefaultSegSize, 32)
	c.SetPools(pool, pool)
	var wire sim.FIFO[*transport.Segment]
	deliver := eng.Bind(func() {
		s := wire.Pop()
		transport.Dispatch(s)
		s.Release()
	})
	c.AttachSender(func(s *transport.Segment) {
		wire.Push(s)
		eng.AfterFn(10*sim.Microsecond, "wire", deliver)
	})
	c.AttachReceiver(func(s *transport.Segment) {
		wire.Push(s)
		eng.AfterFn(10*sim.Microsecond, "wire", deliver)
	})
	drain := func() { eng.Run(eng.Now() + sim.Millisecond) }
	c.Send(64)
	drain()

	news := pool.News
	if a := testing.AllocsPerRun(200, func() {
		c.Send(2)
		drain()
		c.Latency.Reset()
	}); a != 0 {
		t.Fatalf("steady-state segment round trip allocates %.1f/op, want 0", a)
	}
	if pool.News != news {
		t.Fatalf("pool missed its free list in steady state: News %d -> %d", news, pool.News)
	}
}
