package transport

import (
	"testing"
	"testing/quick"

	"cdna/internal/sim"
)

// directWire connects two endpoints with a lossy, delayed function call.
type directWire struct {
	eng   *sim.Engine
	delay sim.Time
	// dropEvery drops every Nth data segment (0 = lossless).
	dropEvery int
	sent      int
}

func (w *directWire) dataPath(c *Conn) func(*Segment) {
	return func(s *Segment) {
		w.sent++
		if w.dropEvery > 0 && w.sent%w.dropEvery == 0 {
			return // dropped on the floor
		}
		w.eng.After(w.delay, "wire.data", func() { Dispatch(s) })
	}
}

func (w *directWire) ackPath(c *Conn) func(*Segment) {
	return func(s *Segment) {
		w.eng.After(w.delay, "wire.ack", func() { Dispatch(s) })
	}
}

func newPair(eng *sim.Engine, dropEvery int) (*Conn, *directWire) {
	c := NewConn(eng, 0, DefaultSegSize, 32)
	w := &directWire{eng: eng, delay: 10 * sim.Microsecond, dropEvery: dropEvery}
	c.AttachSender(w.dataPath(c))
	c.AttachReceiver(w.ackPath(c))
	return c, w
}

func TestLosslessDelivery(t *testing.T) {
	eng := sim.New()
	c, _ := newPair(eng, 0)
	c.StartWindow()
	c.Start()
	eng.Run(50 * sim.Millisecond)
	if c.Delivered.Window() == 0 {
		t.Fatal("nothing delivered")
	}
	if c.Retransmits.Window() != 0 {
		t.Fatalf("lossless run retransmitted %d", c.Retransmits.Window())
	}
	if c.DupDrops.Window() != 0 {
		t.Fatalf("lossless run dropped %d", c.DupDrops.Window())
	}
}

func TestWindowBoundsInFlight(t *testing.T) {
	eng := sim.New()
	c := NewConn(eng, 0, DefaultSegSize, 8)
	// A sender with no receiver: segments vanish; the initial burst is
	// bounded by the slow-start window, not the full window.
	sent := 0
	c.AttachSender(func(s *Segment) { sent++ })
	c.Start()
	eng.Run(sim.Millisecond)
	if sent != InitialCwnd {
		t.Fatalf("sent %d, want initial cwnd %d", sent, InitialCwnd)
	}
	if c.InFlight() != InitialCwnd {
		t.Fatalf("InFlight = %d", c.InFlight())
	}
}

func TestSlowStartRampsToFullWindow(t *testing.T) {
	eng := sim.New()
	c, _ := newPair(eng, 0)
	c.Start()
	eng.Run(20 * sim.Millisecond)
	if c.effWindow() != c.Window {
		t.Fatalf("cwnd %d never reached window %d", c.cwnd, c.Window)
	}
	if c.Delivered.Total() == 0 {
		t.Fatal("nothing delivered during ramp")
	}
}

func TestRecoveryFromDrops(t *testing.T) {
	eng := sim.New()
	c, _ := newPair(eng, 50) // drop every 50th segment
	c.Start()
	eng.Run(200 * sim.Millisecond)
	if c.Retransmits.Total() == 0 {
		t.Fatal("drops occurred but nothing was retransmitted")
	}
	if c.Delivered.Total() == 0 {
		t.Fatal("no delivery despite recovery")
	}
	// In-order delivery invariant: delivered bytes = rcvNext * segSize.
	if c.Delivered.Total() != uint64(c.rcvNext)*uint64(c.SegSize) {
		t.Fatalf("delivered %d bytes != %d in-order segments", c.Delivered.Total(), c.rcvNext)
	}
}

// TestExactlyOnceInOrder: every byte is delivered exactly once in order,
// under randomized drop patterns.
func TestExactlyOnceInOrder(t *testing.T) {
	f := func(dropMod uint8) bool {
		eng := sim.New()
		drop := int(dropMod%37) + 13
		c, _ := newPair(eng, drop)
		c.Start()
		eng.Run(100 * sim.Millisecond)
		return c.Delivered.Total() == uint64(c.rcvNext)*uint64(c.SegSize) && c.rcvNext > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayedAckPolicy(t *testing.T) {
	eng := sim.New()
	c, _ := newPair(eng, 0)
	c.Start()
	eng.Run(20 * sim.Millisecond)
	acks := c.AcksSent.Total()
	segs := uint64(c.rcvNext)
	if acks == 0 {
		t.Fatal("no acks")
	}
	ratio := float64(segs) / float64(acks)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("segments per ack = %v, want ~2 (delayed ack)", ratio)
	}
}

func TestFrameBytes(t *testing.T) {
	s := &Segment{Len: DefaultSegSize}
	if s.FrameBytes() != 1514 {
		t.Fatalf("data frame = %d, want 1514", s.FrameBytes())
	}
	a := &Segment{Ack: true}
	if a.FrameBytes() != 66 {
		t.Fatalf("ack frame = %d, want 66", a.FrameBytes())
	}
}

func TestGroupAggregationAndFairness(t *testing.T) {
	eng := sim.New()
	var g Group
	for i := 0; i < 4; i++ {
		c, _ := newPair(eng, 0)
		c.ID = i
		g.Add(c)
	}
	g.StartWindow()
	for _, c := range g.Conns {
		c.Start()
	}
	eng.Run(50 * sim.Millisecond)
	if g.DeliveredBytes() == 0 {
		t.Fatal("no aggregate delivery")
	}
	if fi := g.FairnessIndex(); fi < 0.99 {
		t.Fatalf("fairness = %v for identical conns", fi)
	}
	mbps := g.DeliveredMbps(50 * sim.Millisecond)
	wantMbps := float64(g.DeliveredBytes()) * 8 / 1e6 / 0.050
	if diff := mbps - wantMbps; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Mbps %v inconsistent with bytes %v", mbps, wantMbps)
	}
}

func TestEmptyGroupFairness(t *testing.T) {
	var g Group
	if g.FairnessIndex() != 1 {
		t.Fatal("empty group fairness should be 1")
	}
}

func TestRTORewindResendsWindow(t *testing.T) {
	eng := sim.New()
	c := NewConn(eng, 0, DefaultSegSize, 4)
	var sent []uint32
	// Black-hole wire: everything is lost.
	c.AttachSender(func(s *Segment) { sent = append(sent, s.Seq) })
	c.Start()
	eng.Run(10 * sim.Millisecond) // > RTO: at least one rewind
	if len(sent) < 8 {
		t.Fatalf("expected a resent window, got sends %v", sent)
	}
	// After the initial burst [0,1,2,3], the rewind resends [0,1,2,3].
	for i := 0; i < 4; i++ {
		if sent[4+i] != uint32(i) {
			t.Fatalf("rewind did not resend from una: %v", sent)
		}
	}
	if c.Retransmits.Total() == 0 {
		t.Fatal("retransmit counter not incremented")
	}
}
