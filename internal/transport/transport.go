// Package transport implements the reliable windowed byte streams the
// benchmark program drives over the simulated network — the synthetic
// stand-in for the paper's TCP connections (§5.1). It is a go-back-N
// protocol with cumulative acknowledgements, a fixed window, and timeout
// retransmission. Throughput therefore emerges from the interaction of
// CPU capacity, link serialization, window backpressure and interrupt
// batching, exactly the dynamics the paper measures; nothing in this
// package hard-codes a rate.
package transport

import (
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// TCPIPOverhead is the bytes of L3+L4 headers per segment (IP + TCP with
// timestamps), so a 1448-byte payload yields the classic 1514-byte
// Ethernet frame.
const TCPIPOverhead = 52

// DefaultSegSize is the per-segment payload (1448 bytes, the standard
// MSS with TCP timestamps on a 1500-byte MTU).
const DefaultSegSize = 1448

// PeerHost is the Addr.Host value for the CPU-less peer machine of the
// classic single-host topology — the far end that is not a modelled
// host on the fabric.
const PeerHost = -1

// Addr identifies a connection endpoint on the simulated fabric: which
// host, which guest on it, and which of the host's NIC ports the
// endpoint's traffic uses. The machine builders fill these in when they
// wire connections, so workloads and tests can see (and target) any
// remote guest; Host is PeerHost for the off-fabric peer and Guest 0 is
// the first guest (or the native host OS).
type Addr struct {
	Host  int `json:"host"`
	Guest int `json:"guest"`
	Port  int `json:"port"`
}

// String formats the address as "h<host>.g<guest>.p<port>" ("peer.p<n>"
// for the off-fabric peer).
func (a Addr) String() string {
	if a.Host == PeerHost {
		return fmt.Sprintf("peer.p%d", a.Port)
	}
	return fmt.Sprintf("h%d.g%d.p%d", a.Host, a.Guest, a.Port)
}

// Segment is one transport PDU; it rides in ether.Frame.Payload.
//
// Segments on the hot path come from a SegPool and are
// reference-counted: the frame carrying a segment owns one reference
// (released when the frame is freed), and a receive path that keeps
// the segment past the frame's lifetime (a stack rx queue) retains its
// own. Segments built as plain literals (tests, snapshot restore, seam
// clones) have no pool; their Retain/Release are no-ops and the
// garbage collector owns them. Pooled segments are immutable once
// handed to the send path and never cross a shard boundary — seam
// pipes clone them via CloneUnshared.
type Segment struct {
	Conn   *Conn
	Seq    uint32 // data sequence number (in segments)
	Len    int    // payload bytes (0 for a pure ack)
	Ack    bool
	AckSeq uint32   // cumulative: next expected data seq
	SentAt sim.Time // transmit timestamp for latency measurement

	pool *SegPool
	refs int32
}

// FrameBytes returns the Ethernet frame size for this segment.
func (s *Segment) FrameBytes() int {
	return ether.HeaderBytes + TCPIPOverhead + s.Len
}

// SegPool is a segment free list. One pool serves one engine (shard);
// connection endpoints draw from the pool of the shard they run on
// (sender side for data, receiver side for acks), so pools are only
// ever touched by their owning shard.
type SegPool struct {
	free []*Segment

	// Gets/Puts count pooled traffic; News counts free-list misses. In
	// steady state News stops growing — the transport_segment benchmark
	// and the zero-alloc tests hold that.
	Gets, Puts, News uint64
}

// NewSegPool creates an empty pool.
func NewSegPool() *SegPool { return &SegPool{} }

// Get returns a zeroed segment with one reference, owned by the caller.
func (p *SegPool) Get() *Segment {
	p.Gets++
	var s *Segment
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*s = Segment{pool: p}
	} else {
		p.News++
		s = &Segment{pool: p}
	}
	s.refs = 1
	return s
}

// put recycles a freed segment.
func (p *SegPool) put(s *Segment) {
	p.Puts++
	p.free = append(p.free, s)
}

// FreeLen returns the current free-list depth (tests).
func (p *SegPool) FreeLen() int { return len(p.free) }

// Retain adds a reference. No-op for unpooled segments.
func (s *Segment) Retain() {
	if s.pool == nil {
		return
	}
	if s.refs <= 0 {
		panic("transport: Retain of a released segment")
	}
	s.refs++
}

// Release drops one reference; the last one returns the segment to its
// pool. No-op for unpooled segments.
func (s *Segment) Release() {
	if s.pool == nil {
		return
	}
	if s.refs <= 0 {
		panic("transport: Release of a released segment")
	}
	s.refs--
	if s.refs > 0 {
		return
	}
	s.Conn = nil
	s.pool.put(s)
}

// RetainPayload implements ether.PayloadRef.
func (s *Segment) RetainPayload() { s.Retain() }

// ReleasePayload implements ether.PayloadRef.
func (s *Segment) ReleasePayload() { s.Release() }

// CloneUnshared implements ether.PayloadRef: an unpooled value-copy
// for cross-shard seam crossings. The Conn pointer is shared — its
// sender and receiver field sets are disjoint per shard, which is what
// makes a cross-shard connection race-free in the first place.
func (s *Segment) CloneUnshared() any {
	return &Segment{Conn: s.Conn, Seq: s.Seq, Len: s.Len, Ack: s.Ack, AckSeq: s.AckSeq, SentAt: s.SentAt}
}

var _ ether.PayloadRef = (*Segment)(nil)

// Dispatch routes a received segment to its connection endpoint. Hosts
// call this after their receive path has delivered the frame payload.
func Dispatch(s *Segment) {
	if s.Ack {
		s.Conn.OnAck(s)
	} else {
		s.Conn.OnData(s)
	}
}

// Conn is one unidirectional data connection (data flows sender →
// receiver; acks flow back). The two endpoints live on different hosts;
// each attaches its transmit path.
type Conn struct {
	ID       int
	SegSize  int
	Window   int // max unacknowledged segments in flight
	AckEvery int

	// Local and Remote identify the endpoints on the fabric (data flows
	// Local → Remote). Set by the machine builders; informational.
	Local, Remote Addr

	eng *sim.Engine
	// rcvEng is the engine the receiver side runs on. It equals eng on a
	// single-engine machine; on a sharded machine the receiving host's
	// shard sets it via SetReceiverEngine, so receive-path timestamps
	// (latency samples) read the clock of the shard the delivery fires
	// on. Sender fields are only ever touched from eng, receiver fields
	// only from rcvEng — the disjoint field sets are what make a
	// cross-shard connection race-free.
	rcvEng *sim.Engine
	// RTO is the retransmission timeout (default 3ms; the benchmark
	// harness raises it to TCP-like values for long queueing paths).
	RTO sim.Time

	// sndPool recycles data segments (drawn on the sender's engine) and
	// rcvPool recycles acks (drawn on the receiver's engine). Machine
	// builders set them via SetPools; nil pools fall back to plain heap
	// allocation with identical behavior.
	sndPool, rcvPool *SegPool

	// Sender state.
	sendData func(*Segment)
	sndNext  uint32 // next seq to transmit
	sndUna   uint32 // oldest unacknowledged seq
	cwnd     int    // slow-start congestion window (segments)
	started  bool
	bounded  bool       // Send() budget in effect (false for Start()'s infinite stream)
	limit    uint32     // sequence bound of the current send budget
	rtoTimer *sim.Timer // persistent retransmit timer, re-armed in place
	rtoUna   uint32     // sndUna snapshot when the timer was last armed

	// OnSendComplete, if set, fires at the sender when every budgeted
	// segment has been cumulatively acknowledged — the sender-side
	// message-completion seam workloads use to close a flow or chain
	// the next one. Never fires for an unbounded (Start) stream.
	OnSendComplete func()

	// Receiver state.
	sendAck func(*Segment)
	rcvNext uint32
	unacked int

	// Receiver message-completion seam: ExpectDelivery arms a mark;
	// when in-order delivery reaches it, the pending delayed ack is
	// flushed (so a bounded flow's tail does not idle until the RTO)
	// and OnMark fires.
	markArmed bool
	rcvMark   uint32
	OnMark    func()

	// Metrics.
	Delivered   stats.ByteMeter // in-order payload bytes at the receiver
	Retransmits stats.Counter
	DupDrops    stats.Counter // out-of-order/duplicate segments discarded
	AcksSent    stats.Counter
	// Latency samples end-to-end segment delay (send to in-order
	// delivery) in microseconds.
	Latency stats.Distribution
}

// NewConn creates a connection. Window is in segments; ackEvery is the
// delayed-ack threshold (2, like TCP's default).
func NewConn(eng *sim.Engine, id, segSize, window int) *Conn {
	c := &Conn{
		ID: id, SegSize: segSize, Window: window, AckEvery: 2,
		eng: eng, rcvEng: eng, RTO: 3 * sim.Millisecond,
	}
	c.rtoTimer = eng.NewTimer("transport.rto", c.onRTO)
	return c
}

// SetReceiverEngine re-homes the receiver side onto the given engine.
// Sharded machine builders call it when the receiving host lives on a
// different shard than the sender.
func (c *Conn) SetReceiverEngine(eng *sim.Engine) { c.rcvEng = eng }

// SetPools installs the segment pools: snd for data segments (must
// belong to the sender's shard), rcv for acks (the receiver's shard).
// Either may be nil to keep plain heap allocation on that side.
func (c *Conn) SetPools(snd, rcv *SegPool) {
	c.sndPool = snd
	c.rcvPool = rcv
}

// AttachSender installs the sender host's transmit function.
func (c *Conn) AttachSender(send func(*Segment)) { c.sendData = send }

// AttachReceiver installs the receiver host's ack-transmit function.
func (c *Conn) AttachReceiver(sendAck func(*Segment)) { c.sendAck = sendAck }

// Start begins pumping data (the stream is infinite; the benchmark
// measures a window of it). The sender slow-starts: the effective window
// begins at InitialCwnd segments and grows by one per acknowledgement up
// to Window, so connection startup does not flood downstream queues.
func (c *Conn) Start() {
	c.started = true
	if c.cwnd == 0 {
		c.cwnd = InitialCwnd
	}
	c.Pump()
}

// Send queues n more segments of data on the connection and pumps. The
// connection becomes bounded: transmission stops when the budget is
// exhausted, and once every budgeted segment is acknowledged
// OnSendComplete fires. Workloads call Send per message (a request, a
// response, a short flow) instead of Start's saturate-forever stream;
// successive Sends extend the budget.
func (c *Conn) Send(n int) {
	if n <= 0 {
		return
	}
	c.bounded = true
	c.started = true
	if c.cwnd == 0 {
		c.cwnd = InitialCwnd
	}
	c.limit += uint32(n)
	c.Pump()
}

// Pause stops the sender from transmitting new segments; in-flight data
// still completes and acks are still processed. Resume continues.
func (c *Conn) Pause() { c.started = false }

// Resume restarts a paused sender and pumps.
func (c *Conn) Resume() {
	if c.started {
		return
	}
	c.started = true
	if c.cwnd == 0 {
		c.cwnd = InitialCwnd
	}
	c.Pump()
}

// ResetSlowStart returns the congestion window to its initial value, as
// a freshly opened connection would start. Churn workloads call it per
// short-lived flow so that every flow pays connection-startup dynamics
// instead of inheriting the previous flow's opened window.
func (c *Conn) ResetSlowStart() { c.cwnd = InitialCwnd }

// ExpectDelivery arms the receiver-side message-completion mark n
// in-order data segments past the current delivery point. When delivery
// reaches the mark the pending delayed ack is flushed and OnMark fires
// once. Re-arm per message.
func (c *Conn) ExpectDelivery(n int) {
	c.markArmed = true
	c.rcvMark = c.rcvNext + uint32(n)
}

// InitialCwnd is the slow-start initial window in segments.
const InitialCwnd = 4

// effWindow returns the current effective send window.
func (c *Conn) effWindow() int {
	if c.cwnd > 0 && c.cwnd < c.Window {
		return c.cwnd
	}
	return c.Window
}

// InFlight returns the number of unacknowledged segments.
func (c *Conn) InFlight() int { return int(c.sndNext - c.sndUna) }

// mayTransmit reports whether the send budget allows another segment
// (always true for an unbounded stream).
func (c *Conn) mayTransmit() bool {
	return !c.bounded || int32(c.limit-c.sndNext) > 0
}

// Pump transmits while the window and the send budget allow. The host's
// send function is responsible for backpressure-free queuing (the
// window bounds how much can ever be queued at once).
func (c *Conn) Pump() {
	if !c.started || c.sendData == nil {
		return
	}
	for c.InFlight() < c.effWindow() && c.mayTransmit() {
		var seg *Segment
		if c.sndPool != nil {
			seg = c.sndPool.Get()
		} else {
			seg = &Segment{}
		}
		seg.Conn, seg.Seq, seg.Len, seg.SentAt = c, c.sndNext, c.SegSize, c.eng.Now()
		c.sndNext++
		c.sendData(seg)
	}
	if !c.bounded || c.InFlight() > 0 {
		c.armRTO()
	} else if c.rtoTimer.Armed() {
		// Budget exhausted with nothing in flight: a bounded sender goes
		// quiet instead of re-arming the retransmit timer forever.
		c.rtoTimer.Stop()
	}
}

func (c *Conn) armRTO() {
	c.rtoUna = c.sndUna
	c.rtoTimer.ArmAfter(c.RTO)
}

// onRTO is the retransmit timer's callback (bound once at NewConn; the
// captured-state of the old per-arm closure lives in rtoUna).
func (c *Conn) onRTO() {
	if c.sndUna == c.rtoUna && c.InFlight() > 0 {
		// No progress: go-back-N rewind, restart slow start, resend.
		c.Retransmits.Add(uint64(c.InFlight()))
		c.sndNext = c.sndUna
		c.cwnd = InitialCwnd
		c.Pump()
		return
	}
	c.armRTO()
}

// OnAck processes a cumulative acknowledgement at the sender.
func (c *Conn) OnAck(s *Segment) {
	if int32(s.AckSeq-c.sndUna) > 0 {
		if c.cwnd < c.Window {
			c.cwnd++
		}
		c.sndUna = s.AckSeq
		if int32(c.sndNext-c.sndUna) < 0 {
			// Ack beyond what we sent (can only happen after a rewind
			// raced an in-flight delivery): resync.
			c.sndNext = c.sndUna
		}
		c.Pump()
		if c.bounded && c.sndUna == c.limit && c.OnSendComplete != nil {
			// Whole budget acknowledged: the message is complete. The
			// callback may Send again (extending the budget), so this
			// fires exactly once per exhaustion.
			c.OnSendComplete()
		}
	}
}

// OnData processes a data segment at the receiver: in-order data is
// delivered and (per delayed-ack policy) acknowledged; anything else is
// dropped and the current cumulative ack is repeated so the sender can
// recover.
func (c *Conn) OnData(s *Segment) {
	if s.Seq == c.rcvNext {
		c.rcvNext++
		c.Delivered.Add(uint64(s.Len))
		c.Latency.Observe(float64(c.rcvEng.Now()-s.SentAt) / 1000)
		c.unacked++
		if c.markArmed && int32(c.rcvNext-c.rcvMark) >= 0 {
			c.markArmed = false
			if c.unacked > 0 {
				c.emitAck()
			}
			if c.OnMark != nil {
				c.OnMark()
			}
		} else if c.unacked >= c.AckEvery {
			c.emitAck()
		}
		return
	}
	// Out of order (a drop upstream) or duplicate: discard, re-ack.
	c.DupDrops.Inc()
	c.emitAck()
}

func (c *Conn) emitAck() {
	c.unacked = 0
	if c.sendAck == nil {
		return
	}
	c.AcksSent.Inc()
	var s *Segment
	if c.rcvPool != nil {
		s = c.rcvPool.Get()
	} else {
		s = &Segment{}
	}
	s.Conn, s.Ack, s.AckSeq = c, true, c.rcvNext
	c.sendAck(s)
}

// StartWindow resets the connection's windowed metrics.
func (c *Conn) StartWindow() {
	c.Delivered.StartWindow()
	c.Retransmits.StartWindow()
	c.DupDrops.StartWindow()
	c.AcksSent.StartWindow()
}

// Group aggregates connections for measurement.
type Group struct {
	Conns []*Conn
}

// Add appends a connection.
func (g *Group) Add(c *Conn) { g.Conns = append(g.Conns, c) }

// Grow pre-allocates capacity for at least n further connections:
// machine builders know the topology's connection count up front, so
// the wiring loops never re-grow the slice.
func (g *Group) Grow(n int) {
	if cap(g.Conns)-len(g.Conns) >= n {
		return
	}
	nc := make([]*Conn, len(g.Conns), len(g.Conns)+n)
	copy(nc, g.Conns)
	g.Conns = nc
}

// StartWindow resets all member metrics.
func (g *Group) StartWindow() {
	for _, c := range g.Conns {
		c.StartWindow()
	}
}

// DeliveredMbps returns aggregate goodput over dur. An empty group or a
// non-positive duration yields 0, never NaN/Inf: churn workloads can
// legitimately end a window with no completed traffic.
func (g *Group) DeliveredMbps(dur sim.Time) float64 {
	if len(g.Conns) == 0 || dur <= 0 {
		return 0
	}
	total := 0.0
	for _, c := range g.Conns {
		total += c.Delivered.Mbps(dur)
	}
	return total
}

// DeliveredBytes returns aggregate windowed payload bytes.
func (g *Group) DeliveredBytes() uint64 {
	var total uint64
	for _, c := range g.Conns {
		total += c.Delivered.Window()
	}
	return total
}

// Retransmits returns aggregate windowed retransmissions.
func (g *Group) Retransmits() uint64 {
	var total uint64
	for _, c := range g.Conns {
		total += c.Retransmits.Window()
	}
	return total
}

// LatencyQuantile returns the q-quantile of end-to-end segment latency
// in microseconds, pooled across connections. With no connections or no
// samples at all it returns 0, never NaN.
func (g *Group) LatencyQuantile(q float64) float64 {
	if len(g.Conns) == 0 {
		return 0
	}
	var pool stats.Distribution
	for _, c := range g.Conns {
		n := c.Latency.Count()
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			if n > 0 {
				pool.Observe(c.Latency.Quantile(p))
			}
		}
	}
	return pool.Quantile(q)
}

// FairnessIndex returns Jain's fairness index over per-connection
// windowed goodput (1.0 = perfectly balanced, as the paper's benchmark
// tool enforces). An empty group, or one that delivered nothing in the
// window, is vacuously fair: 1, never NaN.
func (g *Group) FairnessIndex() float64 {
	if len(g.Conns) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, c := range g.Conns {
		v := float64(c.Delivered.Window())
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	n := float64(len(g.Conns))
	return sum * sum / (n * sumSq)
}
