package transport

import (
	"math"
	"testing"

	"cdna/internal/sim"
)

// TestBoundedSendCompletes: a Send budget transmits exactly that many
// segments and fires OnSendComplete once when fully acknowledged.
func TestBoundedSendCompletes(t *testing.T) {
	eng := sim.New()
	c, w := newPair(eng, 0)
	completions := 0
	c.OnSendComplete = func() { completions++ }
	c.Send(4)
	eng.Run(50 * sim.Millisecond)
	if completions != 1 {
		t.Fatalf("OnSendComplete fired %d times, want 1", completions)
	}
	if w.sent != 4 {
		t.Fatalf("sent %d segments, want exactly the budget of 4", w.sent)
	}
	if c.InFlight() != 0 {
		t.Fatalf("in-flight %d after completion", c.InFlight())
	}
	if c.rtoTimer.Armed() {
		t.Fatal("retransmit timer still armed after a completed bounded send")
	}
}

// TestExpectDeliveryFlushesFinalAck: an odd-sized message would stall
// on the delayed-ack policy (and complete only via RTO) unless the
// delivery mark flushes the final ack. The mark must also fire OnMark
// exactly once.
func TestExpectDeliveryFlushesFinalAck(t *testing.T) {
	eng := sim.New()
	c, _ := newPair(eng, 0)
	marks := 0
	done := sim.Time(0)
	c.OnMark = func() { marks++ }
	c.OnSendComplete = func() { done = eng.Now() }
	c.ExpectDelivery(5)
	c.Send(5) // odd: the 5th segment is below the delayed-ack threshold
	eng.Run(50 * sim.Millisecond)
	if marks != 1 {
		t.Fatalf("OnMark fired %d times, want 1", marks)
	}
	if done == 0 {
		t.Fatal("bounded send never completed")
	}
	if done >= c.RTO {
		t.Fatalf("completion at %v waited for the RTO (%v): final ack was not flushed", done, c.RTO)
	}
}

// TestSendExtendsBudget: a second Send inside OnSendComplete chains the
// next message, and completion fires once per budget exhaustion.
func TestSendExtendsBudget(t *testing.T) {
	eng := sim.New()
	c, _ := newPair(eng, 0)
	completions := 0
	c.OnSendComplete = func() {
		completions++
		if completions < 3 {
			c.ExpectDelivery(4)
			c.Send(4)
		}
	}
	c.ExpectDelivery(4)
	c.Send(4)
	eng.Run(50 * sim.Millisecond)
	if completions != 3 {
		t.Fatalf("completions = %d, want 3 chained messages", completions)
	}
	if got := uint64(c.rcvNext); got != 12 {
		t.Fatalf("delivered %d segments, want 12", got)
	}
}

// TestPauseResume: a paused sender stops transmitting; resume picks the
// stream back up.
func TestPauseResume(t *testing.T) {
	eng := sim.New()
	c, w := newPair(eng, 0)
	c.Start()
	eng.Run(5 * sim.Millisecond)
	c.Pause()
	eng.Run(10 * sim.Millisecond)
	atPause := w.sent
	eng.Run(20 * sim.Millisecond)
	if w.sent != atPause {
		t.Fatalf("paused sender transmitted %d new segments", w.sent-atPause)
	}
	c.Resume()
	eng.Run(40 * sim.Millisecond)
	if w.sent == atPause {
		t.Fatal("resumed sender never transmitted")
	}
}

// TestResetSlowStart: after the window has ramped, a reset returns the
// effective window to the initial slow-start value.
func TestResetSlowStart(t *testing.T) {
	eng := sim.New()
	c, _ := newPair(eng, 0)
	c.Start()
	eng.Run(20 * sim.Millisecond)
	if c.effWindow() != c.Window {
		t.Fatalf("cwnd never ramped: %d", c.effWindow())
	}
	c.ResetSlowStart()
	if c.effWindow() != InitialCwnd {
		t.Fatalf("effWindow after reset = %d, want %d", c.effWindow(), InitialCwnd)
	}
}

// TestGroupEmptyAndZeroGuards: churn workloads can end a measurement
// window with no connections or no completed samples; every aggregate
// must degrade to a finite default, never NaN/Inf.
func TestGroupEmptyAndZeroGuards(t *testing.T) {
	var g Group
	if v := g.DeliveredMbps(sim.Second); v != 0 {
		t.Fatalf("empty DeliveredMbps = %v, want 0", v)
	}
	if v := g.LatencyQuantile(0.5); v != 0 {
		t.Fatalf("empty LatencyQuantile = %v, want 0", v)
	}
	if v := g.FairnessIndex(); v != 1 {
		t.Fatalf("empty FairnessIndex = %v, want 1 (vacuously fair)", v)
	}

	// A connection that never moved a byte: zero windows, no samples.
	eng := sim.New()
	c, _ := newPair(eng, 0)
	c.StartWindow()
	g.Add(c)
	for _, v := range []float64{
		g.DeliveredMbps(0), g.DeliveredMbps(-sim.Second), g.DeliveredMbps(sim.Second),
		g.LatencyQuantile(0.5), g.LatencyQuantile(0.9), g.FairnessIndex(),
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("aggregate produced %v on an idle group", v)
		}
	}
	if v := g.DeliveredMbps(0); v != 0 {
		t.Fatalf("zero-duration DeliveredMbps = %v, want 0", v)
	}
	if v := g.LatencyQuantile(0.5); v != 0 {
		t.Fatalf("sampleless LatencyQuantile = %v, want 0", v)
	}
	if v := g.FairnessIndex(); v != 1 {
		t.Fatalf("zero-delivery FairnessIndex = %v, want 1", v)
	}
}
