// Package transportbench holds the transport hot-path benchmark in
// plain func(*testing.B) form, shared by `go test -bench` and
// cmd/cdnabench — the same split internal/sim/simbench uses for the
// event core.
package transportbench

import (
	"testing"

	"cdna/internal/sim"
	"cdna/internal/transport"
)

// Segment measures the pooled segment round trip: one bounded Send of
// two data segments through a zero-CPU wire, the receiver's in-order
// delivery, the delayed ack riding back, and the sender's completion —
// every segment drawn from and returned to a SegPool. The contract is
// zero allocs/op in steady state (the pool's News counter stops
// growing), which is what lets a saturated connection run
// allocation-free end to end.
func Segment(b *testing.B) {
	eng := sim.New()
	pool := transport.NewSegPool()
	c := transport.NewConn(eng, 0, transport.DefaultSegSize, 32)
	c.SetPools(pool, pool)
	var wire sim.FIFO[*transport.Segment]
	deliver := eng.Bind(func() {
		s := wire.Pop()
		transport.Dispatch(s)
		s.Release()
	})
	send := func(s *transport.Segment) {
		wire.Push(s)
		eng.AfterFn(10*sim.Microsecond, "wire", deliver)
	}
	c.AttachSender(send)
	c.AttachReceiver(send)
	drain := func() { eng.Run(eng.Now() + sim.Millisecond) }
	// Prime: open the congestion window and fill the pool free lists.
	c.Send(64)
	drain()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(2)
		drain()
		// Latency samples accumulate per delivery; recycle the backing
		// array so the measurement loop stays allocation-free.
		c.Latency.Reset()
	}
}
