package cpu

import (
	"math"
	"testing"

	"cdna/internal/sim"
)

func newCPU() (*sim.Engine, *CPU) {
	eng := sim.New()
	return eng, New(eng, Params{SwitchCost: 1 * sim.Microsecond, Slice: 100 * sim.Microsecond})
}

func TestSingleTaskAccounting(t *testing.T) {
	eng, c := newCPU()
	d := c.NewDomain("guest", KindGuest)
	c.StartWindow()
	done := false
	d.Exec(CatKernel, 10*sim.Microsecond, "work", sim.RawFn(func() { done = true }))
	eng.Run(sim.Millisecond)
	c.EndWindow()
	if !done {
		t.Fatal("task did not run")
	}
	k, u, h := d.DomainTime()
	if k != 10*sim.Microsecond || u != 0 || h != 0 {
		t.Fatalf("accounting: k=%v u=%v h=%v", k, u, h)
	}
	p := c.Profile()
	// One switch (1us) + 10us work + idle.
	if math.Abs(p.GuestOS-0.01) > 1e-9 {
		t.Fatalf("GuestOS = %v", p.GuestOS)
	}
	if math.Abs(p.Hyp-0.001) > 1e-9 {
		t.Fatalf("Hyp = %v (switch cost)", p.Hyp)
	}
	if math.Abs(p.Sum()-1) > 1e-9 {
		t.Fatalf("profile sum = %v", p.Sum())
	}
}

func TestCategoriesSplit(t *testing.T) {
	eng, c := newCPU()
	d := c.NewDomain("drv", KindDriver)
	c.StartWindow()
	d.Exec(CatKernel, 5*sim.Microsecond, "k", sim.Fn{})
	d.Exec(CatUser, 7*sim.Microsecond, "u", sim.Fn{})
	d.Exec(CatHyp, 3*sim.Microsecond, "h", sim.Fn{})
	eng.Run(sim.Millisecond)
	c.EndWindow()
	p := c.Profile()
	if math.Abs(p.DriverOS-0.005) > 1e-9 || math.Abs(p.DriverUser-0.007) > 1e-9 {
		t.Fatalf("driver profile: %+v", p)
	}
	// Hyp = hypercall 3us + 1 switch 1us = 4us.
	if math.Abs(p.Hyp-0.004) > 1e-9 {
		t.Fatalf("Hyp = %v", p.Hyp)
	}
}

func TestTaskChainOrdering(t *testing.T) {
	eng, c := newCPU()
	d := c.NewDomain("g", KindGuest)
	var order []string
	d.Exec(CatKernel, sim.Microsecond, "a", sim.RawFn(func() {
		order = append(order, "a")
		d.Exec(CatKernel, sim.Microsecond, "c", sim.RawFn(func() { order = append(order, "c") }))
	}))
	d.Exec(CatKernel, sim.Microsecond, "b", sim.RawFn(func() { order = append(order, "b") }))
	eng.Run(sim.Millisecond)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestISRPreemptsAtBoundary(t *testing.T) {
	eng, c := newCPU()
	d := c.NewDomain("g", KindGuest)
	var order []string
	d.Exec(CatKernel, 10*sim.Microsecond, "t1", sim.RawFn(func() { order = append(order, "t1") }))
	d.Exec(CatKernel, 10*sim.Microsecond, "t2", sim.RawFn(func() { order = append(order, "t2") }))
	// Arrives mid-t1; must run before t2.
	eng.After(5*sim.Microsecond, "irq", func() {
		c.ExecISR(2*sim.Microsecond, "isr", sim.RawFn(func() { order = append(order, "isr") }))
	})
	eng.Run(sim.Millisecond)
	if len(order) != 3 || order[0] != "t1" || order[1] != "isr" || order[2] != "t2" {
		t.Fatalf("order = %v", order)
	}
}

func TestIdleAccounting(t *testing.T) {
	eng, c := newCPU()
	d := c.NewDomain("g", KindGuest)
	c.StartWindow()
	eng.After(500*sim.Microsecond, "wake", func() {
		d.Exec(CatKernel, 100*sim.Microsecond, "w", sim.Fn{})
	})
	eng.Run(sim.Millisecond)
	c.EndWindow()
	p := c.Profile()
	// 500us idle before wake + (1000-601)us idle after = 899us idle.
	if math.Abs(p.Idle-0.899) > 1e-6 {
		t.Fatalf("Idle = %v, want 0.899", p.Idle)
	}
	if math.Abs(p.Sum()-1) > 1e-9 {
		t.Fatalf("sum = %v", p.Sum())
	}
}

func TestBoostOnWake(t *testing.T) {
	eng, c := newCPU()
	hog := c.NewDomain("hog", KindGuest)
	waker := c.NewDomain("waker", KindGuest)
	var order []string
	// Hog has lots of queued work.
	var refill func()
	refill = func() {
		hog.Exec(CatKernel, 50*sim.Microsecond, "hog", sim.RawFn(func() {
			order = append(order, "hog")
			if len(order) < 20 {
				refill()
			}
		}))
	}
	refill()
	refill()
	refill()
	// Waker becomes runnable mid-stream; must run at next slice boundary,
	// before the hog's remaining queue.
	eng.After(120*sim.Microsecond, "wake", func() {
		waker.Exec(CatKernel, sim.Microsecond, "waker", sim.RawFn(func() { order = append(order, "waker") }))
	})
	eng.Run(10 * sim.Millisecond)
	pos := -1
	for i, s := range order {
		if s == "waker" {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("waker never ran")
	}
	if pos > 4 {
		t.Fatalf("boosted waker ran too late: position %d in %v", pos, order)
	}
}

func TestSliceRoundRobinFairness(t *testing.T) {
	eng, c := newCPU()
	a := c.NewDomain("a", KindGuest)
	b := c.NewDomain("b", KindGuest)
	var at, bt sim.Time
	mk := func(d *Domain, acc *sim.Time) sim.Fn {
		var f sim.Fn
		f = sim.RawFn(func() {
			*acc += 20 * sim.Microsecond
			d.Exec(CatKernel, 20*sim.Microsecond, d.Name, f)
		})
		return f
	}
	a.Exec(CatKernel, 20*sim.Microsecond, "a", mk(a, &at))
	b.Exec(CatKernel, 20*sim.Microsecond, "b", mk(b, &bt))
	eng.Run(20 * sim.Millisecond)
	ratio := float64(at) / float64(bt)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair schedule: a=%v b=%v", at, bt)
	}
}

func TestDomainSwitchCostCharged(t *testing.T) {
	eng, c := newCPU()
	a := c.NewDomain("a", KindGuest)
	b := c.NewDomain("b", KindGuest)
	c.StartWindow()
	a.Exec(CatKernel, sim.Microsecond, "a", sim.Fn{})
	eng.Run(50 * sim.Microsecond)
	b.Exec(CatKernel, sim.Microsecond, "b", sim.Fn{})
	eng.Run(100 * sim.Microsecond)
	c.EndWindow()
	if got := c.Switches().Window(); got != 2 {
		t.Fatalf("switches = %d, want 2 (idle->a, a->b)", got)
	}
	p := c.Profile()
	// 2 switches * 1us over 100us window = 2%.
	if math.Abs(p.Hyp-0.02) > 1e-9 {
		t.Fatalf("Hyp = %v", p.Hyp)
	}
}

func TestNoSwitchCostSameDomain(t *testing.T) {
	eng, c := newCPU()
	a := c.NewDomain("a", KindGuest)
	c.StartWindow()
	a.Exec(CatKernel, sim.Microsecond, "t1", sim.Fn{})
	eng.Run(10 * sim.Microsecond)
	a.Exec(CatKernel, sim.Microsecond, "t2", sim.Fn{})
	eng.Run(20 * sim.Microsecond)
	c.EndWindow()
	if got := c.Switches().Window(); got != 1 {
		t.Fatalf("switches = %d, want 1 (re-dispatching the same domain is free)", got)
	}
}

func TestWakesCounter(t *testing.T) {
	eng, c := newCPU()
	d := c.NewDomain("g", KindGuest)
	d.Wakes().StartWindow()
	d.Exec(CatKernel, sim.Microsecond, "t1", sim.Fn{})
	d.Exec(CatKernel, sim.Microsecond, "t2", sim.Fn{}) // already runnable: no wake
	eng.Run(sim.Millisecond)
	d.Exec(CatKernel, sim.Microsecond, "t3", sim.Fn{}) // blocked again: wake
	eng.Run(2 * sim.Millisecond)
	if got := d.Wakes().Window(); got != 2 {
		t.Fatalf("wakes = %d, want 2", got)
	}
}

func TestZeroDurationTask(t *testing.T) {
	eng, c := newCPU()
	d := c.NewDomain("g", KindGuest)
	ran := false
	d.Exec(CatKernel, 0, "ctl", sim.RawFn(func() { ran = true }))
	eng.Run(sim.Millisecond)
	if !ran {
		t.Fatal("zero-duration task did not run")
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	_, c := newCPU()
	d := c.NewDomain("g", KindGuest)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration must panic")
		}
	}()
	d.Exec(CatKernel, -1, "bad", sim.Fn{})
}

func TestProfileSumsToOneUnderLoad(t *testing.T) {
	eng, c := newCPU()
	doms := []*Domain{
		c.NewDomain("drv", KindDriver),
		c.NewDomain("g1", KindGuest),
		c.NewDomain("g2", KindGuest),
	}
	rng := sim.NewRNG(5)
	for _, d := range doms {
		d := d
		var f sim.Fn
		f = sim.RawFn(func() {
			cat := Cat(rng.Intn(3))
			d.Exec(cat, sim.Time(rng.Intn(5000)+500), d.Name, f)
		})
		d.Exec(CatKernel, sim.Microsecond, "seed", f)
	}
	eng.Run(10 * sim.Millisecond)
	c.StartWindow()
	eng.Run(60 * sim.Millisecond)
	c.EndWindow()
	p := c.Profile()
	// Tasks may straddle window edges; tolerance covers one task length.
	if math.Abs(p.Sum()-1) > 0.001 {
		t.Fatalf("profile sum = %v: %+v", p.Sum(), p)
	}
	if p.Idle > 0.01 {
		t.Fatalf("saturated CPU shows idle %v", p.Idle)
	}
}

func TestISRWhileIdleRunsImmediately(t *testing.T) {
	eng, c := newCPU()
	c.StartWindow()
	ran := sim.Time(-1)
	eng.After(100*sim.Microsecond, "irq", func() {
		c.ExecISR(2*sim.Microsecond, "isr", sim.RawFn(func() { ran = eng.Now() }))
	})
	eng.Run(sim.Millisecond)
	c.EndWindow()
	if ran != 102*sim.Microsecond {
		t.Fatalf("ISR completed at %v, want 102us", ran)
	}
	p := c.Profile()
	if math.Abs(p.Hyp-0.002) > 1e-9 {
		t.Fatalf("Hyp = %v", p.Hyp)
	}
}
