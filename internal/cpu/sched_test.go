package cpu

// Tests for the scheduler mechanisms the multi-guest results depend on:
// intra-domain interrupt priority (ExecFront), wake preemption (credit
// BOOST), and the cache-refill penalty model.

import (
	"testing"

	"cdna/internal/sim"
)

func TestExecFrontRunsBeforeQueuedWork(t *testing.T) {
	eng := sim.New()
	c := New(eng, Params{Slice: sim.Millisecond})
	d := c.NewDomain("g", KindGuest)
	var order []string
	// Build a long queue of process-context work.
	for i := 0; i < 5; i++ {
		d.Exec(CatKernel, 10*sim.Microsecond, "proc", sim.RawFn(func() { order = append(order, "proc") }))
	}
	// An interrupt arrives mid-stream: its top half runs at the next
	// task boundary, not after the whole queue.
	eng.After(15*sim.Microsecond, "irq", func() {
		d.ExecFront(CatKernel, sim.Microsecond, "virq", sim.RawFn(func() { order = append(order, "virq") }))
	})
	eng.Run(sim.Millisecond)
	pos := -1
	for i, s := range order {
		if s == "virq" {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("virq ran at position %d in %v, want near the front", pos, order)
	}
}

func TestExecFrontWakesBlockedDomain(t *testing.T) {
	eng := sim.New()
	c := New(eng, Params{Slice: sim.Millisecond})
	d := c.NewDomain("g", KindGuest)
	ran := false
	d.ExecFront(CatKernel, sim.Microsecond, "virq", sim.RawFn(func() { ran = true }))
	eng.Run(sim.Millisecond)
	if !ran {
		t.Fatal("ExecFront on a blocked domain did not run")
	}
	if d.Wakes().Total() != 1 {
		t.Fatalf("wakes = %d", d.Wakes().Total())
	}
}

func TestWakePreemption(t *testing.T) {
	eng := sim.New()
	c := New(eng, Params{Slice: 10 * sim.Millisecond}) // long slices: only preemption can interleave
	hog := c.NewDomain("hog", KindGuest)
	io := c.NewDomain("io", KindGuest)
	var ioRanAt sim.Time
	var refill sim.Fn
	refill = sim.RawFn(func() { hog.Exec(CatKernel, 20*sim.Microsecond, "hog", refill) })
	refill.Call()
	eng.After(100*sim.Microsecond, "wake", func() {
		io.Exec(CatKernel, sim.Microsecond, "io", sim.RawFn(func() { ioRanAt = eng.Now() }))
	})
	eng.Run(5 * sim.Millisecond)
	if ioRanAt == 0 {
		t.Fatal("woken domain never ran")
	}
	// Without preemption it would wait for the 10ms slice; with BOOST
	// preemption it runs within a task length or two.
	if ioRanAt > 250*sim.Microsecond {
		t.Fatalf("woken domain ran at %v; BOOST preemption should run it almost immediately", ioRanAt)
	}
}

func TestCachePenaltyColdStart(t *testing.T) {
	eng := sim.New()
	p := Params{Slice: sim.Millisecond, CacheRefillUnit: 1000, CacheRefillCap: 8000}
	c := New(eng, p)
	d := c.NewDomain("g", KindGuest)
	c.StartWindow()
	d.Exec(CatKernel, 10*sim.Microsecond, "w", sim.Fn{})
	eng.Run(sim.Millisecond)
	c.EndWindow()
	k, _, _ := d.DomainTime()
	// First-ever dispatch: full cap charged on top of the task.
	want := 10*sim.Microsecond + p.CacheRefillCap
	if k != want {
		t.Fatalf("kernel time = %v, want %v (task + cold-start cap)", k, want)
	}
}

func TestCachePenaltyWarmSameDomain(t *testing.T) {
	eng := sim.New()
	p := Params{Slice: sim.Millisecond, CacheRefillUnit: 1000, CacheRefillCap: 8000}
	c := New(eng, p)
	d := c.NewDomain("g", KindGuest)
	d.Exec(CatKernel, 10*sim.Microsecond, "warmup", sim.Fn{})
	eng.Run(sim.Millisecond)
	c.StartWindow()
	// Re-running the same domain after idle: no other domain polluted
	// the cache, so no penalty.
	d.Exec(CatKernel, 10*sim.Microsecond, "w", sim.Fn{})
	eng.Run(2 * sim.Millisecond)
	c.EndWindow()
	k, _, _ := d.DomainTime()
	if k != 10*sim.Microsecond {
		t.Fatalf("kernel time = %v, want exactly 10us (warm cache)", k)
	}
}

func TestCachePenaltyGrowsWithInterveningDomains(t *testing.T) {
	measure := func(nOthers int) sim.Time {
		eng := sim.New()
		p := Params{Slice: sim.Millisecond, CacheRefillUnit: 1000, CacheRefillCap: 100000}
		c := New(eng, p)
		target := c.NewDomain("target", KindGuest)
		others := make([]*Domain, nOthers)
		for i := range others {
			others[i] = c.NewDomain("other", KindGuest)
		}
		// Warm everything up once.
		target.Exec(CatKernel, sim.Microsecond, "w", sim.Fn{})
		for _, o := range others {
			o.Exec(CatKernel, sim.Microsecond, "w", sim.Fn{})
		}
		eng.Run(sim.Millisecond)
		// One round: all others run, then the target.
		for _, o := range others {
			o.Exec(CatKernel, sim.Microsecond, "o", sim.Fn{})
		}
		eng.Run(2 * sim.Millisecond)
		c.StartWindow()
		target.Exec(CatKernel, 10*sim.Microsecond, "t", sim.Fn{})
		eng.Run(3 * sim.Millisecond)
		c.EndWindow()
		k, _, _ := target.DomainTime()
		return k
	}
	k2 := measure(2)
	k6 := measure(6)
	if k6 <= k2 {
		t.Fatalf("penalty with 6 intervening domains (%v) should exceed 2 (%v)", k6, k2)
	}
}

func TestCachePenaltyCapped(t *testing.T) {
	eng := sim.New()
	p := Params{Slice: sim.Millisecond, CacheRefillUnit: 1000, CacheRefillCap: 3000}
	c := New(eng, p)
	target := c.NewDomain("target", KindGuest)
	var others []*Domain
	for i := 0; i < 20; i++ {
		others = append(others, c.NewDomain("other", KindGuest))
	}
	target.Exec(CatKernel, sim.Microsecond, "w", sim.Fn{})
	for _, o := range others {
		o.Exec(CatKernel, sim.Microsecond, "w", sim.Fn{})
	}
	eng.Run(sim.Millisecond)
	for _, o := range others {
		o.Exec(CatKernel, sim.Microsecond, "o", sim.Fn{})
	}
	eng.Run(2 * sim.Millisecond)
	c.StartWindow()
	target.Exec(CatKernel, 10*sim.Microsecond, "t", sim.Fn{})
	eng.Run(3 * sim.Millisecond)
	c.EndWindow()
	k, _, _ := target.DomainTime()
	if k != 10*sim.Microsecond+p.CacheRefillCap {
		t.Fatalf("kernel time = %v, want task + cap %v", k, 10*sim.Microsecond+p.CacheRefillCap)
	}
}

func TestZeroCacheUnitDisablesPenalty(t *testing.T) {
	eng := sim.New()
	c := New(eng, Params{Slice: sim.Millisecond})
	a := c.NewDomain("a", KindGuest)
	b := c.NewDomain("b", KindGuest)
	c.StartWindow()
	a.Exec(CatKernel, sim.Microsecond, "a", sim.Fn{})
	b.Exec(CatKernel, sim.Microsecond, "b", sim.Fn{})
	eng.Run(sim.Millisecond)
	c.EndWindow()
	ka, _, _ := a.DomainTime()
	kb, _, _ := b.DomainTime()
	if ka != sim.Microsecond || kb != sim.Microsecond {
		t.Fatalf("penalty charged with unit=0: %v, %v", ka, kb)
	}
}
