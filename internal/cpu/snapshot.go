package cpu

import (
	"fmt"

	"cdna/internal/sim"
	"cdna/internal/stats"
)

// TaskState is one queued task's checkpoint image: the completion
// callback serializes as its bind-registry ID.
type TaskState struct {
	Cat  Cat
	Dur  sim.Time
	Name string
	Fn   int32
}

func captureTask(t Task) (TaskState, error) {
	id := t.Fn.ID()
	if id < 0 {
		return TaskState{}, fmt.Errorf("cpu: task %q carries an unregistered callback", t.Name)
	}
	return TaskState{Cat: t.Cat, Dur: t.Dur, Name: t.Name, Fn: id}, nil
}

func (c *CPU) restoreTask(s TaskState) (Task, error) {
	fn, err := c.eng.ResolveFn(s.Fn)
	if err != nil {
		return Task{}, fmt.Errorf("cpu: task %q: %w", s.Name, err)
	}
	return Task{Cat: s.Cat, Dur: s.Dur, Name: s.Name, Fn: fn}, nil
}

func captureTaskFIFO(q *sim.FIFO[Task]) ([]TaskState, error) {
	out := make([]TaskState, q.Len())
	for i := 0; i < q.Len(); i++ {
		ts, err := captureTask(q.At(i))
		if err != nil {
			return nil, err
		}
		out[i] = ts
	}
	return out, nil
}

func (c *CPU) restoreTaskFIFO(q *sim.FIFO[Task], ss []TaskState) error {
	q.Clear()
	for _, s := range ss {
		t, err := c.restoreTask(s)
		if err != nil {
			return err
		}
		q.Push(t)
	}
	return nil
}

// DomainState is one domain's checkpoint image.
type DomainState struct {
	Queue          []TaskState
	State          uint8
	Boosted        bool
	SliceEnd       sim.Time
	SeqAtDesched   uint64
	RanBefore      bool
	PendingPenalty sim.Time

	KernelT, UserT, HypT sim.Time
	Wakes                stats.CounterState
}

// CPUState is the scheduler's checkpoint image. Domains in the run
// queues serialize as registration indices; the pending task/ISR slots
// are captured verbatim (their completion events ride the engine
// snapshot).
type CPUState struct {
	Domains []DomainState

	BoostQ, RunQ []int32
	ISRQ         []TaskState

	Cur         int32 // domain index; -1 for none
	Busy        bool
	IdleSince   sim.Time
	SwitchSeq   uint64
	BoostStreak int

	PendDom  int32 // domain index; -1 for none
	PendTask TaskState
	PendISR  TaskState

	HypT, IdleT sim.Time
	WinStart    sim.Time
	Switches    stats.CounterState
}

func domIndex(d *Domain) int32 {
	if d == nil {
		return -1
	}
	return int32(d.ID)
}

func captureDomFIFO(q *sim.FIFO[*Domain]) []int32 {
	out := make([]int32, q.Len())
	for i := 0; i < q.Len(); i++ {
		out[i] = domIndex(q.At(i))
	}
	return out
}

func (c *CPU) domAt(i int32) (*Domain, error) {
	if i == -1 {
		return nil, nil
	}
	if i < 0 || int(i) >= len(c.domains) {
		return nil, fmt.Errorf("cpu: snapshot references domain %d of %d", i, len(c.domains))
	}
	return c.domains[i], nil
}

func (c *CPU) restoreDomFIFO(q *sim.FIFO[*Domain], is []int32) error {
	q.Clear()
	for _, i := range is {
		d, err := c.domAt(i)
		if err != nil {
			return err
		}
		if d == nil {
			return fmt.Errorf("cpu: nil domain in run-queue image")
		}
		q.Push(d)
	}
	return nil
}

// State captures the CPU and every registered domain.
func (c *CPU) State() (CPUState, error) {
	s := CPUState{
		Domains:     make([]DomainState, len(c.domains)),
		BoostQ:      captureDomFIFO(&c.boostQ),
		RunQ:        captureDomFIFO(&c.runQ),
		Cur:         domIndex(c.cur),
		Busy:        c.busy,
		IdleSince:   c.idleSince,
		SwitchSeq:   c.switchSeq,
		BoostStreak: c.boostStreak,
		PendDom:     domIndex(c.pendDom),
		HypT:        c.hypT,
		IdleT:       c.idleT,
		WinStart:    c.winStart,
		Switches:    c.switches.State(),
	}
	var err error
	for i, d := range c.domains {
		ds := DomainState{
			State:          uint8(d.state),
			Boosted:        d.boosted,
			SliceEnd:       d.sliceEnd,
			SeqAtDesched:   d.seqAtDesched,
			RanBefore:      d.ranBefore,
			PendingPenalty: d.pendingPenalty,
			KernelT:        d.kernelT,
			UserT:          d.userT,
			HypT:           d.hypT,
			Wakes:          d.wakes.State(),
		}
		if ds.Queue, err = captureTaskFIFO(&d.q); err != nil {
			return CPUState{}, err
		}
		s.Domains[i] = ds
	}
	if s.ISRQ, err = captureTaskFIFO(&c.isrQ); err != nil {
		return CPUState{}, err
	}
	if s.PendTask, err = captureTask(c.pendTask); err != nil {
		return CPUState{}, err
	}
	if s.PendISR, err = captureTask(c.pendISR); err != nil {
		return CPUState{}, err
	}
	return s, nil
}

// SetState restores the CPU into a freshly built machine with the same
// domain roster.
func (c *CPU) SetState(s CPUState) error {
	if len(s.Domains) != len(c.domains) {
		return fmt.Errorf("cpu: domain roster mismatch: snapshot has %d, machine has %d",
			len(s.Domains), len(c.domains))
	}
	for i, ds := range s.Domains {
		d := c.domains[i]
		if err := c.restoreTaskFIFO(&d.q, ds.Queue); err != nil {
			return err
		}
		d.state = domState(ds.State)
		d.boosted = ds.Boosted
		d.sliceEnd = ds.SliceEnd
		d.seqAtDesched = ds.SeqAtDesched
		d.ranBefore = ds.RanBefore
		d.pendingPenalty = ds.PendingPenalty
		d.kernelT, d.userT, d.hypT = ds.KernelT, ds.UserT, ds.HypT
		d.wakes.SetState(ds.Wakes)
	}
	if err := c.restoreDomFIFO(&c.boostQ, s.BoostQ); err != nil {
		return err
	}
	if err := c.restoreDomFIFO(&c.runQ, s.RunQ); err != nil {
		return err
	}
	if err := c.restoreTaskFIFO(&c.isrQ, s.ISRQ); err != nil {
		return err
	}
	var err error
	if c.cur, err = c.domAt(s.Cur); err != nil {
		return err
	}
	c.busy = s.Busy
	c.idleSince = s.IdleSince
	c.switchSeq = s.SwitchSeq
	c.boostStreak = s.BoostStreak
	if c.pendDom, err = c.domAt(s.PendDom); err != nil {
		return err
	}
	if c.pendTask, err = c.restoreTask(s.PendTask); err != nil {
		return err
	}
	if c.pendISR, err = c.restoreTask(s.PendISR); err != nil {
		return err
	}
	c.hypT, c.idleT = s.HypT, s.IdleT
	c.winStart = s.WinStart
	c.switches.SetState(s.Switches)
	return nil
}
