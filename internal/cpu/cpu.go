// Package cpu models a single host CPU shared by a hypervisor and a set
// of domains (virtual machines), with Xenoprof-style time accounting.
//
// Work arrives as short Tasks (sub-microsecond to a few microseconds)
// appended to per-domain queues or to a global interrupt-service queue.
// The CPU runs one task at a time; the scheduler is a boost-on-wake round
// robin approximating Xen's credit scheduler for I/O-bound domains:
// a domain that transitions from blocked to runnable is placed on a boost
// queue and preferred over domains that exhausted their slice. Domain
// switches cost SwitchCost, charged to the hypervisor — this cost is what
// makes many-guest configurations degrade, as the paper's Figures 3–4
// show.
//
// Time is charged per (domain kind, category): hypervisor time is global,
// kernel/user time is split between the driver domain and guests, and
// idle time accrues whenever no work is runnable. Profile() reports the
// same six columns as the paper's Tables 2–4.
package cpu

import (
	"fmt"

	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Cat classifies where a task's time is charged.
type Cat uint8

// Task categories.
const (
	CatKernel Cat = iota // guest or driver-domain kernel (OS) time
	CatUser              // application time
	CatHyp               // hypervisor time (hypercalls, ISRs, switches)
)

// Kind classifies a domain for profile aggregation.
type Kind uint8

// Domain kinds.
const (
	KindGuest  Kind = iota // a guest VM (or the host OS in native mode)
	KindDriver             // the privileged driver domain
)

// Task is one unit of CPU work.
type Task struct {
	Cat  Cat
	Dur  sim.Time
	Name string
	Fn   sim.Fn // runs on completion, in scheduling order; may be the zero Fn
}

// Domain is a schedulable virtual machine (or the native host OS).
type Domain struct {
	ID   int
	Name string
	Kind Kind

	cpu      *CPU
	q        sim.FIFO[Task]
	state    domState
	boosted  bool
	sliceEnd sim.Time

	seqAtDesched   uint64 // global switch sequence when last descheduled
	ranBefore      bool
	pendingPenalty sim.Time // cache-refill charge for the next task

	// window accounting
	kernelT, userT, hypT sim.Time
	wakes                stats.Counter
}

type domState uint8

const (
	domBlocked domState = iota
	domQueued           // on a run queue
	domRunning
)

// Params configures the scheduler.
type Params struct {
	SwitchCost sim.Time // hypervisor cost per domain switch
	Slice      sim.Time // scheduling quantum

	// Cache pollution: when a domain is rescheduled after other domains
	// ran, its working set has been evicted and its first stretch of
	// execution runs slower. The penalty is CacheRefillUnit per
	// intervening domain switch, capped at CacheRefillCap, charged to
	// the domain's own first task. With one busy domain the penalty is
	// ~zero (warm caches); with many domains it approaches the cap —
	// this is the dominant mechanism behind the paper's multi-guest
	// degradation (Figures 3–4).
	CacheRefillUnit sim.Time
	CacheRefillCap  sim.Time
}

// DefaultParams mirrors a tuned Xen credit scheduler for I/O workloads
// on the paper's Opteron 250 (1 MB L2).
func DefaultParams() Params {
	return Params{
		SwitchCost:      900 * sim.Nanosecond,
		Slice:           300 * sim.Microsecond,
		CacheRefillUnit: 2500 * sim.Nanosecond,
		CacheRefillCap:  10 * sim.Microsecond,
	}
}

// CPU is the single shared processor.
type CPU struct {
	eng    *sim.Engine
	params Params

	// The scheduler queues are ring buffers, not slices: tasks arrive
	// and retire millions of times per simulated second, and an
	// append/re-slice queue reallocates continually (the backing array
	// can never be reused once the head has advanced). The rings find
	// their working depth during warmup and then allocate nothing.
	domains []*Domain
	boostQ  sim.FIFO[*Domain]
	runQ    sim.FIFO[*Domain]
	isrQ    sim.FIFO[Task]

	cur         *Domain // domain whose task is executing (nil for ISR/idle)
	busy        bool
	idleSince   sim.Time
	switchSeq   uint64
	boostStreak int

	// The CPU executes one thing at a time, so exactly one completion
	// event is outstanding; its state lives here instead of in a fresh
	// closure per dispatch, and the completion callbacks below are bound
	// once in New. This is what keeps the per-task hot path free of
	// allocations.
	pendDom  *Domain
	pendTask Task
	pendISR  Task

	switchDoneFn, taskDoneFn, isrDoneFn sim.Fn

	// window accounting
	hypT, idleT sim.Time
	winStart    sim.Time
	switches    stats.Counter
}

// New creates a CPU attached to the engine.
func New(eng *sim.Engine, p Params) *CPU {
	c := &CPU{eng: eng, params: p, idleSince: eng.Now()}
	c.switchDoneFn = eng.Bind(c.switchDone)
	c.taskDoneFn = eng.Bind(c.taskDone)
	c.isrDoneFn = eng.Bind(c.isrDone)
	return c
}

// NewDomain registers a domain with the scheduler.
func (c *CPU) NewDomain(name string, kind Kind) *Domain {
	d := &Domain{ID: len(c.domains), Name: name, Kind: kind, cpu: c}
	c.domains = append(c.domains, d)
	return d
}

// Domains returns all registered domains.
func (c *CPU) Domains() []*Domain { return c.domains }

// Engine returns the engine the CPU is attached to — layers above use
// it to bind their completion callbacks.
func (c *CPU) Engine() *sim.Engine { return c.eng }

// Engine returns the engine of the CPU the domain runs on.
func (d *Domain) Engine() *sim.Engine { return d.cpu.eng }

// Exec queues a task on the domain. If the domain was blocked it becomes
// runnable (boosted). Duration must be non-negative; zero-duration tasks
// are allowed for pure control flow.
func (d *Domain) Exec(cat Cat, dur sim.Time, name string, fn sim.Fn) {
	if dur < 0 {
		panic(fmt.Sprintf("cpu: negative task duration for %s", name))
	}
	d.q.Push(Task{Cat: cat, Dur: dur, Name: name, Fn: fn})
	if d.state == domBlocked {
		d.state = domQueued
		d.boosted = true
		d.wakes.Inc()
		d.cpu.boostQ.Push(d)
	}
	d.cpu.kick()
}

// ExecFront queues a task at the head of the domain's queue: the
// domain-local interrupt path (a virtual interrupt's top half preempts
// process context inside the guest, it does not wait behind queued
// kernel work).
func (d *Domain) ExecFront(cat Cat, dur sim.Time, name string, fn sim.Fn) {
	if dur < 0 {
		panic(fmt.Sprintf("cpu: negative task duration for %s", name))
	}
	d.q.PushFront(Task{Cat: cat, Dur: dur, Name: name, Fn: fn})
	if d.state == domBlocked {
		d.state = domQueued
		d.boosted = true
		d.wakes.Inc()
		d.cpu.boostQ.Push(d)
	}
	d.cpu.kick()
}

// QueueLen returns the number of tasks waiting on the domain.
func (d *Domain) QueueLen() int { return d.q.Len() }

// Wakes returns the windowed count of blocked→runnable transitions.
func (d *Domain) Wakes() *stats.Counter { return &d.wakes }

// ExecISR queues hypervisor interrupt-service work. ISRs preempt domains
// at task boundaries (tasks are short, so dispatch latency is bounded by
// a few microseconds, matching real top-half latency).
func (c *CPU) ExecISR(dur sim.Time, name string, fn sim.Fn) {
	if dur < 0 {
		panic(fmt.Sprintf("cpu: negative ISR duration for %s", name))
	}
	c.isrQ.Push(Task{Cat: CatHyp, Dur: dur, Name: name, Fn: fn})
	c.kick()
}

func (c *CPU) kick() {
	if c.busy {
		return
	}
	c.busy = true
	// Close the idle span.
	c.idleT += c.eng.Now() - c.idleSince
	c.dispatch()
}

// dispatch picks and starts the next task. Caller guarantees c.busy.
func (c *CPU) dispatch() {
	// 1. Interrupt service work first.
	if c.isrQ.Len() > 0 {
		c.runTask(nil, c.isrQ.Pop())
		return
	}
	// 2. Pick a domain: boosted wakers first, then round robin. The
	// boost streak is bounded so continuously runnable domains cannot
	// starve behind an endless stream of wakers — the analogue of the
	// credit scheduler demoting domains that exceed their credits.
	const boostLimit = 4
	var d *Domain
	switch {
	case c.boostQ.Len() > 0 && (c.runQ.Len() == 0 || c.boostStreak < boostLimit):
		d = c.boostQ.Pop()
		c.boostStreak++
	case c.runQ.Len() > 0:
		d = c.runQ.Pop()
		c.boostStreak = 0
	default:
		// Idle. c.cur is preserved: re-dispatching the same domain after
		// an idle gap costs no switch (its state is still loaded).
		c.busy = false
		c.idleSince = c.eng.Now()
		return
	}
	if d.state != domQueued || d.q.Len() == 0 {
		// Stale queue entry (domain drained or re-queued); try again.
		c.dispatch()
		return
	}
	var switchCost sim.Time
	if c.cur != d {
		switchCost = c.params.SwitchCost
		c.switches.Inc()
		if c.cur != nil {
			c.cur.seqAtDesched = c.switchSeq
		}
		c.switchSeq++
		// Cache-refill penalty: scaled by how many switches happened
		// since this domain last ran (how polluted its cache is).
		if c.params.CacheRefillUnit > 0 {
			var pen sim.Time
			if !d.ranBefore {
				pen = c.params.CacheRefillCap
			} else {
				intervening := c.switchSeq - d.seqAtDesched - 1
				pen = sim.Time(intervening) * c.params.CacheRefillUnit
				if pen > c.params.CacheRefillCap {
					pen = c.params.CacheRefillCap
				}
			}
			d.pendingPenalty = pen
		}
		d.ranBefore = true
	}
	c.cur = d
	d.state = domRunning
	d.boosted = false
	d.sliceEnd = c.eng.Now() + switchCost + c.params.Slice
	if switchCost > 0 {
		// switchCost is always params.SwitchCost here, so the callback
		// needs only the pending domain.
		c.pendDom = d
		c.eng.AfterFn(switchCost, "cpu.switch", c.switchDoneFn)
		return
	}
	c.startDomainTask(d)
}

func (c *CPU) switchDone() {
	c.hypT += c.params.SwitchCost
	c.startDomainTask(c.pendDom)
}

func (c *CPU) startDomainTask(d *Domain) {
	t := d.q.Pop()
	// The cache-refill penalty inflates the first task after a switch,
	// charged to that task's own category (the misses occur during the
	// domain's execution, not the hypervisor's).
	t.Dur += d.pendingPenalty
	d.pendingPenalty = 0
	c.pendDom, c.pendTask = d, t
	// The bare task name keeps the hot path allocation-free; the
	// flight-recorder prefix is only built when someone is recording.
	name := t.Name
	if c.eng.Traced() {
		name = "cpu.task:" + t.Name
	}
	c.eng.AfterFn(t.Dur, name, c.taskDoneFn)
}

func (c *CPU) taskDone() {
	d, t := c.pendDom, c.pendTask
	c.pendTask.Fn = sim.Fn{} // release the callback before t.Fn reschedules
	c.accountDomain(d, t)
	t.Fn.Call()
	c.afterDomainTask(d)
}

func (c *CPU) afterDomainTask(d *Domain) {
	if d.q.Len() == 0 {
		// Domain blocks.
		d.state = domBlocked
		c.dispatch()
		return
	}
	if c.isrQ.Len() > 0 {
		// Pending interrupt work preempts at the task boundary; the
		// domain keeps its turn (front of the boost queue, no switch
		// cost since c.cur is unchanged).
		d.state = domQueued
		c.boostQ.PushFront(d)
		c.dispatch()
		return
	}
	if c.boostQ.Len() > 0 && c.boostQ.Peek() != d {
		// Wake preemption (Xen credit-scheduler BOOST): a freshly woken
		// domain preempts the running one at the task boundary. The
		// preempted domain rejoins the run queue; FIFO order keeps the
		// round robin fair among CPU-hungry domains.
		d.state = domQueued
		c.runQ.Push(d)
		c.dispatch()
		return
	}
	if c.eng.Now() >= d.sliceEnd && (c.boostQ.Len() > 0 || c.runQ.Len() > 0) {
		// Slice expired and there is other runnable work: preempt.
		d.state = domQueued
		c.runQ.Push(d)
		c.dispatch()
		return
	}
	c.startDomainTask(d)
}

func (c *CPU) runTask(d *Domain, t Task) {
	c.pendISR = t
	name := t.Name
	if c.eng.Traced() {
		name = "cpu.isr:" + t.Name
	}
	c.eng.AfterFn(t.Dur, name, c.isrDoneFn)
}

func (c *CPU) isrDone() {
	t := c.pendISR
	c.pendISR.Fn = sim.Fn{}
	c.hypT += t.Dur
	t.Fn.Call()
	c.dispatch()
}

func (c *CPU) accountDomain(d *Domain, t Task) {
	switch t.Cat {
	case CatKernel:
		d.kernelT += t.Dur
	case CatUser:
		d.userT += t.Dur
	case CatHyp:
		d.hypT += t.Dur
	}
}

// StartWindow resets window accounting; call it after warmup.
func (c *CPU) StartWindow() {
	c.winStart = c.eng.Now()
	c.hypT, c.idleT = 0, 0
	if !c.busy {
		c.idleSince = c.eng.Now()
	}
	c.switches.StartWindow()
	for _, d := range c.domains {
		d.kernelT, d.userT, d.hypT = 0, 0, 0
		d.wakes.StartWindow()
	}
}

// EndWindow flushes an open idle span so Profile is exact at window end.
func (c *CPU) EndWindow() {
	if !c.busy {
		c.idleT += c.eng.Now() - c.idleSince
		c.idleSince = c.eng.Now()
	}
}

// Switches returns the windowed domain-switch counter.
func (c *CPU) Switches() *stats.Counter { return &c.switches }

// Profile returns the six-column execution profile over the window that
// ended at EndWindow.
func (c *CPU) Profile() stats.Profile {
	dur := c.eng.Now() - c.winStart
	if dur <= 0 {
		return stats.Profile{}
	}
	f := func(t sim.Time) float64 { return float64(t) / float64(dur) }
	p := stats.Profile{Hyp: f(c.hypT), Idle: f(c.idleT)}
	for _, d := range c.domains {
		p.Hyp += f(d.hypT)
		switch d.Kind {
		case KindDriver:
			p.DriverOS += f(d.kernelT)
			p.DriverUser += f(d.userT)
		case KindGuest:
			p.GuestOS += f(d.kernelT)
			p.GuestUser += f(d.userT)
		}
	}
	return p
}

// DomainTime returns the windowed (kernel, user, hyp) time of a domain.
func (d *Domain) DomainTime() (kernel, user, hyp sim.Time) {
	return d.kernelT, d.userT, d.hypT
}
