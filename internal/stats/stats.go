// Package stats provides measurement primitives for the CDNA simulator:
// windowed rate meters, counters, and the six-column execution profile
// used throughout the paper's evaluation (hypervisor / driver-domain
// OS+user / guest OS+user / idle).
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"cdna/internal/sim"
)

// Counter is a monotonically increasing event count with a measurement
// window, so that warmup activity can be excluded from reported rates.
type Counter struct {
	total   uint64
	window  uint64
	started bool
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.total += n
	if c.started {
		c.window += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Total returns the all-time count.
func (c *Counter) Total() uint64 { return c.total }

// StartWindow begins the measurement window.
func (c *Counter) StartWindow() { c.started = true; c.window = 0 }

// Window returns the count accumulated since StartWindow.
func (c *Counter) Window() uint64 { return c.window }

// Rate returns the windowed count divided by dur, per second.
func (c *Counter) Rate(dur sim.Time) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(c.window) / dur.Seconds()
}

// ByteMeter counts payload bytes and reports throughput in Mb/s, the
// unit the paper's tables use.
type ByteMeter struct {
	Counter
}

// Mbps returns windowed throughput in megabits per second.
func (m *ByteMeter) Mbps(dur sim.Time) float64 {
	return m.Rate(dur) * 8 / 1e6
}

// Profile is the paper's execution profile: fraction of CPU time in each
// of the six categories over a measurement window. Fractions sum to ~1.
// The JSON names are part of the result schema cmd/cdnasweep emits.
type Profile struct {
	Hyp        float64 `json:"hyp"`
	DriverOS   float64 `json:"driver_os"`
	DriverUser float64 `json:"driver_user"`
	GuestOS    float64 `json:"guest_os"`
	GuestUser  float64 `json:"guest_user"`
	Idle       float64 `json:"idle"`
}

// Busy returns the non-idle fraction.
func (p Profile) Busy() float64 { return 1 - p.Idle }

// String formats the profile as the paper's tables do.
func (p Profile) String() string {
	return fmt.Sprintf("hyp %.1f%% | drvOS %.1f%% | drvUsr %.1f%% | gstOS %.1f%% | gstUsr %.1f%% | idle %.1f%%",
		100*p.Hyp, 100*p.DriverOS, 100*p.DriverUser, 100*p.GuestOS, 100*p.GuestUser, 100*p.Idle)
}

// Sum returns the sum of all fractions (≈1 when accounting is complete).
func (p Profile) Sum() float64 {
	return p.Hyp + p.DriverOS + p.DriverUser + p.GuestOS + p.GuestUser + p.Idle
}

// Table renders rows of labelled columns as an aligned text table; it is
// the common output path for cmd/cdnatables and the examples.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteCSV writes the table as RFC 4180 CSV (header row first), the
// machine-readable companion to String() for spreadsheet import.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Distribution collects samples and reports quantiles; used for latency
// and batch-size diagnostics.
type Distribution struct {
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (d *Distribution) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Count returns the number of samples.
func (d *Distribution) Count() int { return len(d.samples) }

// Reset discards all samples, keeping the backing array — the
// distribution analogue of StartWindow, so warmup samples can be
// excluded from reported quantiles.
func (d *Distribution) Reset() {
	d.samples = d.samples[:0]
	d.sorted = false
}

// Merge appends every sample of o. Quantiles of the merged distribution
// depend only on the combined multiset, so merge order does not matter;
// the sharded workload fleet merges per-shard latency distributions this
// way before reporting.
func (d *Distribution) Merge(o *Distribution) {
	d.samples = append(d.samples, o.samples...)
	d.sorted = false
}

// Mean returns the sample mean (0 for no samples).
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.samples {
		s += v
	}
	return s / float64(len(d.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest rank.
func (d *Distribution) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	idx := int(q * float64(len(d.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d.samples) {
		idx = len(d.samples) - 1
	}
	return d.samples[idx]
}

// Max returns the largest sample (0 for no samples).
func (d *Distribution) Max() float64 { return d.Quantile(1) }
