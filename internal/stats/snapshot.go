package stats

// CounterState is a Counter's checkpoint image: the plain-data form
// internal/snap serializes. Capturing both the all-time total and the
// window keeps a restored run byte-identical whether the snapshot was
// taken before or after StartWindow.
type CounterState struct {
	Total   uint64
	Window  uint64
	Started bool
}

// State captures the counter.
func (c *Counter) State() CounterState {
	return CounterState{Total: c.total, Window: c.window, Started: c.started}
}

// SetState restores the counter from a State image.
func (c *Counter) SetState(s CounterState) {
	c.total, c.window, c.started = s.Total, s.Window, s.Started
}

// DistributionState is a Distribution's checkpoint image. The sample
// slice is copied on capture so later Observes do not alias into the
// snapshot; Sorted is preserved because Quantile's nearest-rank walk
// sorts in place and a restored run must replay the same sort points.
type DistributionState struct {
	Samples []float64
	Sorted  bool
}

// State captures the distribution.
func (d *Distribution) State() DistributionState {
	return DistributionState{Samples: append([]float64(nil), d.samples...), Sorted: d.sorted}
}

// SetState restores the distribution from a State image.
func (d *Distribution) SetState(s DistributionState) {
	d.samples = append(d.samples[:0], s.Samples...)
	d.sorted = s.Sorted
}
