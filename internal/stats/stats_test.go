package stats

import (
	"math"
	"strings"
	"testing"

	"cdna/internal/sim"
)

func TestCounterWindow(t *testing.T) {
	var c Counter
	c.Add(10)
	if c.Total() != 10 || c.Window() != 0 {
		t.Fatalf("pre-window: total=%d window=%d", c.Total(), c.Window())
	}
	c.StartWindow()
	c.Inc()
	c.Add(4)
	if c.Total() != 15 || c.Window() != 5 {
		t.Fatalf("post-window: total=%d window=%d", c.Total(), c.Window())
	}
}

func TestCounterRate(t *testing.T) {
	var c Counter
	c.StartWindow()
	c.Add(1000)
	if got := c.Rate(2 * sim.Second); got != 500 {
		t.Fatalf("Rate = %v, want 500", got)
	}
	if got := c.Rate(0); got != 0 {
		t.Fatalf("Rate over zero window = %v, want 0", got)
	}
}

func TestByteMeterMbps(t *testing.T) {
	var m ByteMeter
	m.StartWindow()
	m.Add(125_000_000) // 125 MB in 1 s = 1000 Mb/s
	if got := m.Mbps(sim.Second); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("Mbps = %v, want 1000", got)
	}
}

func TestProfileSumAndBusy(t *testing.T) {
	p := Profile{Hyp: 0.1, DriverOS: 0.2, DriverUser: 0.05, GuestOS: 0.3, GuestUser: 0.05, Idle: 0.3}
	if math.Abs(p.Sum()-1) > 1e-12 {
		t.Fatalf("Sum = %v, want 1", p.Sum())
	}
	if math.Abs(p.Busy()-0.7) > 1e-12 {
		t.Fatalf("Busy = %v, want 0.7", p.Busy())
	}
}

func TestProfileString(t *testing.T) {
	p := Profile{Hyp: 0.102, Idle: 0.508}
	s := p.String()
	if !strings.Contains(s, "hyp 10.2%") || !strings.Contains(s, "idle 50.8%") {
		t.Fatalf("unexpected profile string: %s", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"System", "Mb/s"}}
	tb.AddRow("Xen", "1602")
	tb.AddRow("CDNA", "1867")
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "System") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[3], "CDNA") || !strings.Contains(lines[3], "1867") {
		t.Fatalf("bad row: %q", lines[3])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := Table{Header: []string{"System", "Mb/s"}}
	tb.AddRow("Xen, with commas", "1602")
	tb.AddRow("CDNA", "1867")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), b.String())
	}
	if lines[0] != "System,Mb/s" {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
	if lines[1] != `"Xen, with commas",1602` {
		t.Fatalf("comma cell not quoted: %q", lines[1])
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("empty distribution must report zeros")
	}
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if d.Count() != 100 {
		t.Fatalf("Count = %d", d.Count())
	}
	if math.Abs(d.Mean()-50.5) > 1e-9 {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if q := d.Quantile(0.5); q < 49 || q > 52 {
		t.Fatalf("median = %v", q)
	}
	if d.Max() != 100 {
		t.Fatalf("Max = %v", d.Max())
	}
	// Observing after a quantile query must keep working.
	d.Observe(1000)
	if d.Max() != 1000 {
		t.Fatalf("Max after re-observe = %v", d.Max())
	}
}
