package intelnic

import (
	"cdna/internal/ether"
	"cdna/internal/nic"
)

// State is the NIC's checkpoint image: the data engine, the coalescer,
// and completed-but-undrained receive frames.
type State struct {
	Engine nic.EngineState
	Coal   nic.CoalescerState
	RxDone []ether.FrameState
}

// State captures the NIC.
func (n *NIC) State(codec ether.PayloadCodec) (State, error) {
	es, err := n.E.State(codec)
	if err != nil {
		return State{}, err
	}
	rx, err := ether.CaptureFrames(n.rxDone, codec)
	if err != nil {
		return State{}, err
	}
	return State{Engine: es, Coal: n.Coal.State(), RxDone: rx}, nil
}

// SetState restores the NIC into a freshly built machine.
func (n *NIC) SetState(s State, codec ether.PayloadCodec) error {
	if err := n.E.SetState(s.Engine, codec); err != nil {
		return err
	}
	n.Coal.SetState(s.Coal)
	rx, err := ether.RestoreFrames(s.RxDone, codec)
	if err != nil {
		return err
	}
	n.rxDone = rx
	return nil
}
