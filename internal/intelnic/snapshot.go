package intelnic

import (
	"cdna/internal/ether"
	"cdna/internal/nic"
)

// State is the NIC's checkpoint image: the data engine, the coalescer,
// and completed-but-undrained receive frames.
type State struct {
	Engine nic.EngineState
	Coal   nic.CoalescerState
	RxDone []ether.FrameState
}

// State captures the NIC.
func (n *NIC) State(codec ether.PayloadCodec) (State, error) {
	es, err := n.E.State(codec)
	if err != nil {
		return State{}, err
	}
	rx := make([]ether.FrameState, n.rxDone.Len())
	for i := range rx {
		fs, err := ether.CaptureFrame(n.rxDone.At(i), codec)
		if err != nil {
			return State{}, err
		}
		rx[i] = fs
	}
	return State{Engine: es, Coal: n.Coal.State(), RxDone: rx}, nil
}

// SetState restores the NIC into a freshly built machine.
func (n *NIC) SetState(s State, codec ether.PayloadCodec) error {
	if err := n.E.SetState(s.Engine, codec); err != nil {
		return err
	}
	n.Coal.SetState(s.Coal)
	n.rxDone.Reset()
	for _, fs := range s.RxDone {
		f, err := ether.RestoreFrame(fs, codec)
		if err != nil {
			return err
		}
		n.rxDone.Append(f)
	}
	return nil
}
