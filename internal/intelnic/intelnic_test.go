package intelnic

import (
	"testing"

	"cdna/internal/bus"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

const owner = mem.Dom0

type rig struct {
	eng *sim.Engine
	m   *mem.Memory
	n   *NIC
	tx  *ring.Ring
	rx  *ring.Ring
	out []*ether.Frame
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{eng: sim.New(), m: mem.New()}
	b := bus.New(r.eng, bus.DefaultParams())
	pipe := ether.NewPipe(r.eng, 1.0, 0)
	pipe.Connect(ether.PortFunc(func(f *ether.Frame) { r.out = append(r.out, f) }))
	r.n = New(r.eng, b, r.m, pipe, DefaultParams(), ether.MakeMAC(1, 0))
	var err error
	r.tx, err = ring.New("tx", ring.DefaultLayout, r.m.AllocOne(owner).Base(), 128)
	if err != nil {
		t.Fatal(err)
	}
	r.rx, err = ring.New("rx", ring.DefaultLayout, r.m.AllocOne(owner).Base(), 128)
	if err != nil {
		t.Fatal(err)
	}
	r.n.AttachRings(r.tx, r.rx)
	return r
}

func (r *rig) postTx(t *testing.T, frames map[uint32]*ether.Frame, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		idx := r.tx.Prod()
		d := ring.Desc{Addr: r.m.AllocOne(owner).Base(), Len: 1514, Flags: ring.FlagTx}
		if err := r.tx.WriteDesc(r.m, owner, idx, d); err != nil {
			t.Fatal(err)
		}
		r.tx.Publish(1)
		if frames != nil {
			frames[idx] = &ether.Frame{Size: 1514}
		}
	}
	r.n.KickTx(r.tx.Prod())
}

func (r *rig) postRx(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		d := ring.Desc{Addr: r.m.AllocOne(owner).Base(), Len: 1600}
		if err := r.rx.WriteDesc(r.m, owner, r.rx.Prod(), d); err != nil {
			t.Fatal(err)
		}
		r.rx.Publish(1)
	}
	r.n.KickRx(r.rx.Prod())
}

func TestTransmit(t *testing.T) {
	r := newRig(t)
	frames := map[uint32]*ether.Frame{}
	r.n.SetDriver(func(idx uint32) *ether.Frame { return frames[idx] }, nil)
	r.postTx(t, frames, 7)
	r.eng.Run(10 * sim.Millisecond)
	if len(r.out) != 7 {
		t.Fatalf("transmitted %d, want 7", len(r.out))
	}
	if r.tx.Cons() != 7 {
		t.Fatalf("consumer = %d", r.tx.Cons())
	}
}

func TestInterruptAfterWriteback(t *testing.T) {
	r := newRig(t)
	frames := map[uint32]*ether.Frame{}
	irqs := 0
	r.n.SetDriver(func(idx uint32) *ether.Frame { return frames[idx] }, func() { irqs++ })
	r.postTx(t, frames, 3)
	r.eng.Run(10 * sim.Millisecond)
	if irqs == 0 {
		t.Fatal("no interrupt after completions")
	}
	if r.n.Coal.Fires.Total() == 0 {
		t.Fatal("coalescer never fired")
	}
}

func TestSetIRQOverridesLine(t *testing.T) {
	r := newRig(t)
	a, b := 0, 0
	r.n.SetDriver(nil, func() { a++ })
	r.n.SetIRQ(func() { b++ })
	frames := map[uint32]*ether.Frame{}
	r.n.SetDriver(func(idx uint32) *ether.Frame { return frames[idx] }, nil) // nil keeps the IRQ line
	r.postTx(t, frames, 1)
	r.eng.Run(10 * sim.Millisecond)
	if a != 0 || b == 0 {
		t.Fatalf("IRQ routing: old=%d new=%d", a, b)
	}
}

func TestReceiveAnyMAC(t *testing.T) {
	// The conventional NIC in bridged operation accepts every frame —
	// software demultiplexes (§2.1).
	r := newRig(t)
	r.postRx(t, 16)
	r.eng.Run(sim.Millisecond)
	r.n.Receive(&ether.Frame{Dst: ether.MakeMAC(9, 1), Size: 1514})
	r.n.Receive(&ether.Frame{Dst: ether.MakeMAC(9, 2), Size: 300})
	r.eng.Run(10 * sim.Millisecond)
	got := r.n.DrainRx()
	if len(got) != 2 {
		t.Fatalf("DrainRx = %d frames, want 2", len(got))
	}
	if r.n.RxPending() != 0 {
		t.Fatal("pending after drain")
	}
}

func TestRxDropWithoutBuffers(t *testing.T) {
	r := newRig(t)
	r.n.Receive(&ether.Frame{Size: 1514})
	r.eng.Run(sim.Millisecond)
	if r.n.E.RxDrops.Total() != 1 {
		t.Fatalf("drops = %d", r.n.E.RxDrops.Total())
	}
}

func TestTSODefaultEnabled(t *testing.T) {
	if !DefaultParams().TSO {
		t.Fatal("the paper's Intel configuration has TSO enabled")
	}
}
