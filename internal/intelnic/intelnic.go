// Package intelnic models a conventional server NIC in the mold of the
// Intel Pro/1000 MT the paper uses as its software-virtualization
// baseline (§5.1): one transmit and one receive descriptor ring, mailbox
// (doorbell) kicks, interrupt coalescing, and a consumer-index writeback
// DMA before each interrupt. It has exactly one owner — the driver
// domain under Xen, or the host OS natively — and no notion of contexts;
// multiplexing guests onto it is software's problem, which is the entire
// point of the paper's comparison.
package intelnic

import (
	"cdna/internal/bus"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/nic"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

// Params configures the device.
type Params struct {
	Engine        nic.Params
	CoalesceDelay sim.Time
	CoalescePkts  int
	// TSO marks hardware TCP segmentation offload support; it does not
	// change the device model (segments arrive pre-cut in the
	// simulation) but drivers lower their per-packet CPU costs when it
	// is available, as the paper's configurations did (§5.1).
	TSO bool
}

// DefaultParams mirrors a tuned e1000: interrupt throttling around
// 7-8k/s at load.
func DefaultParams() Params {
	return Params{
		Engine: nic.Params{
			ProcTx:     300 * sim.Nanosecond,
			ProcRx:     400 * sim.Nanosecond,
			FetchBatch: 32,
			RxPrefetch: 64,
			TxWindow:   3,
			RxBufBytes: 128 << 10,
		},
		CoalesceDelay: 125 * sim.Microsecond,
		CoalescePkts:  40,
		TSO:           true,
	}
}

// NIC is the device.
type NIC struct {
	Name   string
	MAC    ether.MAC
	Params Params
	E      *nic.Engine
	Coal   *nic.Coalescer

	raiseIRQ func()
	lookupTx func(idx uint32) *ether.Frame

	writebackDoneFn sim.Fn // bound once: raise the IRQ after the writeback DMA

	// rxDone accumulates completed receive frames between interrupts;
	// the driver's IRQ task drains the burst in one swap (previously a
	// fresh slice per interrupt).
	rxDone sim.DoubleBuf[*ether.Frame]
}

// New creates the NIC with its wire attachment.
func New(eng *sim.Engine, b *bus.Bus, m *mem.Memory, out *ether.Pipe, p Params, mac ether.MAC) *NIC {
	n := &NIC{Name: "intel", MAC: mac, Params: p}
	n.writebackDoneFn = eng.Bind(func() {
		if n.raiseIRQ != nil {
			n.raiseIRQ()
		}
	})
	n.E = nic.NewEngine(eng, b, m, out, p.Engine)
	n.Coal = nic.NewCoalescer(eng, p.CoalesceDelay, p.CoalescePkts, func() {
		// Consumer-index writeback then the physical interrupt.
		b.DMA(8, "bus.dma:intel.writeback", n.writebackDoneFn)
	})
	n.E.Hooks = nic.Hooks{
		LookupTx: func(qid int, idx uint32) *ether.Frame {
			if n.lookupTx != nil {
				return n.lookupTx(idx)
			}
			return nil
		},
		// Conventional NIC in promiscuous/bridged operation: all frames
		// land in the single receive queue.
		RxQueueFor: func(dst ether.MAC) int { return 0 },
		OnRxDelivered: func(qid int, f *ether.Frame, d ring.Desc) {
			n.rxDone.Append(f)
		},
		OnCompletion: func(qid int, tx bool) { n.Coal.Event() },
	}
	return n
}

// AttachRings installs the driver's descriptor rings.
func (n *NIC) AttachRings(tx, rx *ring.Ring) {
	n.E.AddQueue(tx, rx)
}

// SetDriver installs the driver's tx frame lookup.
func (n *NIC) SetDriver(lookup func(idx uint32) *ether.Frame, raiseIRQ func()) {
	n.lookupTx = lookup
	if raiseIRQ != nil {
		n.raiseIRQ = raiseIRQ
	}
}

// SetIRQ installs the physical interrupt line (wired by the machine
// builder: directly to the driver natively, through the hypervisor
// under Xen).
func (n *NIC) SetIRQ(raiseIRQ func()) { n.raiseIRQ = raiseIRQ }

// KickTx is the transmit doorbell (the PIO cost is charged by the
// driver before calling).
func (n *NIC) KickTx(prod uint32) { n.E.KickTx(0, prod) }

// KickRx is the receive doorbell.
func (n *NIC) KickRx(prod uint32) { n.E.KickRx(0, prod) }

// DrainRx hands the driver all completed receive frames. The returned
// slice is recycled at the drain after next; the driver's IRQ task
// consumes it synchronously.
func (n *NIC) DrainRx() []*ether.Frame {
	return n.rxDone.Drain()
}

// RxPending returns queued, undrained receive completions.
func (n *NIC) RxPending() int { return n.rxDone.Len() }

// Receive implements ether.Port for the wire side.
func (n *NIC) Receive(f *ether.Frame) { n.E.Receive(f) }
