package sim

// DoubleBuf is the batched layer-crossing primitive: a producer on one
// side of a layer boundary appends completions as they happen, and the
// consumer's single scheduled event (an interrupt task, a virq
// handler) drains the whole burst at once with Drain, which swaps the
// two backing buffers. Neither side allocates in steady state — the
// spare buffer from the previous drain becomes the next append target
// — and the drained slice stays valid until the drain after next, which
// is exactly the lifetime an interrupt handler that consumes the burst
// synchronously needs.
//
// This generalizes the rxDone/rxSpare pattern the RiceNIC model grew
// ad hoc: any producer/consumer pair separated by one scheduled event
// (NIC rx completions → driver interrupt, device completion lists →
// virq decode) gets the same zero-allocation burst crossing from one
// type.
//
// DoubleBuf is not a FIFO: it has no per-element pop, and the producer
// must never append while the consumer still walks a previously
// drained slice's second-to-last incarnation. The event-driven
// alternation (append during event N, drain and consume at event N+1)
// satisfies that by construction.
type DoubleBuf[T any] struct {
	cur, spare []T
}

// Append adds one element to the current burst.
func (b *DoubleBuf[T]) Append(v T) { b.cur = append(b.cur, v) }

// Len returns the current burst's length.
func (b *DoubleBuf[T]) Len() int { return len(b.cur) }

// At returns the i-th element of the current (undrained) burst —
// checkpoint walks use it to capture pending completions in order.
func (b *DoubleBuf[T]) At(i int) T { return b.cur[i] }

// Drain returns the accumulated burst and resets the buffer for the
// next one, swapping backing arrays so neither side allocates. The
// returned slice is valid until the drain after next; callers consume
// it before returning to the event loop. The drained elements are not
// zeroed until the swapped buffer is appended over — holders of
// pointer-typed elements release their references as they consume.
func (b *DoubleBuf[T]) Drain() []T {
	out := b.cur
	b.cur, b.spare = b.spare[:0], out
	return out
}

// Reset discards the current burst without handing it to a consumer
// (teardown paths). The caller walks the burst first if its elements
// hold references that must be dropped.
func (b *DoubleBuf[T]) Reset() {
	clear(b.cur)
	b.cur = b.cur[:0]
}
