package sim

import "fmt"

// Fn is a schedulable callback with a registry identity. Model layers
// bind their callbacks once at construction time with Engine.Bind; the
// identity (a small integer assigned in bind order) is what lets a
// checkpoint serialize a pending event or a queued task — a func value
// has no portable representation, but "bound callback #17 of a machine
// built from this config" does, because machine construction is
// deterministic: the same config binds the same callbacks in the same
// order, so an ID recorded by one machine resolves to the equivalent
// callback in a freshly built one.
//
// The zero Fn is valid and means "no callback": calling it is a no-op
// and it snapshots as ID 0.
type Fn struct {
	f  func()
	id int32
}

// Fn identity classes (the ID space):
//
//	 0  — the zero Fn: no callback.
//	-1  — raw: an unregistered func (tests, attack paths, one-off
//	      tooling). Raw callbacks work normally but make the engine
//	      unsnapshotable while one is pending.
//	>0  — bound: index+1 into the engine's bind registry.
const rawFnID = -1

// RawFn wraps an unregistered func. Events scheduled with a raw Fn
// cannot be checkpointed; use Engine.Bind for anything that can be
// pending when a snapshot is taken.
func RawFn(f func()) Fn {
	if f == nil {
		return Fn{}
	}
	return Fn{f: f, id: rawFnID}
}

// Bind registers f in the engine's callback registry and returns its
// Fn. Bind must only be called during machine construction (before the
// simulation runs), and construction must be deterministic — both are
// what make bind IDs stable across machines built from the same
// configuration, which checkpoint restore relies on.
func (e *Engine) Bind(f func()) Fn {
	if f == nil {
		panic("sim: Bind(nil)")
	}
	e.binds = append(e.binds, f)
	return Fn{f: f, id: int32(len(e.binds))}
}

// Binds returns the number of bound callbacks — a cheap structural
// fingerprint snapshot headers carry to reject restoring into a
// machine built differently.
func (e *Engine) Binds() int { return len(e.binds) }

// ResolveFn returns the Fn for a snapshot-recorded ID.
func (e *Engine) ResolveFn(id int32) (Fn, error) {
	switch {
	case id == 0:
		return Fn{}, nil
	case id > 0 && int(id) <= len(e.binds):
		return Fn{f: e.binds[id-1], id: id}, nil
	}
	return Fn{}, fmt.Errorf("sim: callback id %d not in registry (%d bound)", id, len(e.binds))
}

// Call invokes the callback; calling the zero Fn is a no-op.
func (fn Fn) Call() {
	if fn.f != nil {
		fn.f()
	}
}

// Nil reports whether the Fn holds no callback.
func (fn Fn) Nil() bool { return fn.f == nil }

// ID returns the registry identity (see the ID-space comment above).
func (fn Fn) ID() int32 { return fn.id }
