package sim

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestFIFOWrapsAroundRing(t *testing.T) {
	var q FIFO[int]
	// Interleave pushes and pops so head walks around the ring many
	// times at a fixed small depth.
	for i := 0; i < 1000; i++ {
		q.Push(i)
		q.Push(i + 1000000)
		if q.Pop() != i {
			t.Fatalf("wrap order broken at %d", i)
		}
		if q.Pop() != i+1000000 {
			t.Fatalf("wrap order broken at %d", i)
		}
	}
	if len(q.buf) > 8 {
		t.Fatalf("ring grew to %d for depth-2 traffic", len(q.buf))
	}
}

// TestFIFOInterleavedAtCapacityBoundary drives push/pop interleavings
// exactly at the ring's power-of-two capacity boundaries: the queue
// sits at size == len(buf) with the head at every possible ring offset,
// so each grow copies a fully wrapped ring, and each post-grow
// interleave crosses the old boundary. This is the access pattern a
// churn workload's per-flow queues produce at their working depth.
func TestFIFOInterleavedAtCapacityBoundary(t *testing.T) {
	for offset := 0; offset < 8; offset++ {
		var q FIFO[int]
		next, expect := 0, 0
		push := func() { q.Push(next); next++ }
		pop := func() {
			if got := q.Pop(); got != expect {
				t.Fatalf("offset %d: popped %d, want %d", offset, got, expect)
			}
			expect++
		}
		// Walk the head to the chosen ring offset at depth 1.
		for i := 0; i < offset; i++ {
			push()
			pop()
		}
		// Fill to exactly the initial capacity (8) — the ring is full
		// and wrapped whenever offset > 0.
		for q.Len() < 8 {
			push()
		}
		if len(q.buf) != 8 {
			t.Fatalf("offset %d: capacity %d, want 8", offset, len(q.buf))
		}
		// Interleave at the boundary: each push forces a grow of a full
		// wrapped ring exactly once, then keep the queue riding the new
		// capacity edge.
		for i := 0; i < 3; i++ {
			push() // grows on i==0
			pop()
			push()
		}
		if len(q.buf) != 16 {
			t.Fatalf("offset %d: capacity after boundary crossing %d, want 16", offset, len(q.buf))
		}
		// Drain completely; order must hold across the wrapped copy.
		for q.Len() > 0 {
			pop()
		}
		if expect != next {
			t.Fatalf("offset %d: drained %d items, pushed %d", offset, expect, next)
		}
		// The emptied ring must still work at the new boundary.
		for i := 0; i < 16; i++ {
			push()
		}
		for q.Len() > 0 {
			pop()
		}
	}
}

func TestFIFOSteadyStateZeroAllocs(t *testing.T) {
	var q FIFO[*int]
	v := new(int)
	q.Push(v)
	q.Pop()
	allocs := testing.AllocsPerRun(1000, func() {
		q.Push(v)
		q.Push(v)
		q.Pop()
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("steady-state FIFO allocates %.1f/op, want 0", allocs)
	}
}

func TestFIFOPeekAndClear(t *testing.T) {
	var q FIFO[string]
	q.Push("a")
	q.Push("b")
	if q.Peek() != "a" || q.Len() != 2 {
		t.Fatalf("Peek = %q Len = %d", q.Peek(), q.Len())
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	q.Push("c")
	if q.Pop() != "c" {
		t.Fatal("FIFO broken after Clear")
	}
}

func TestFIFOPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop of empty FIFO must panic")
		}
	}()
	var q FIFO[int]
	q.Pop()
}

func TestFIFOGrowPreservesOrder(t *testing.T) {
	var q FIFO[int]
	// Offset head, then force several growths mid-stream.
	for i := 0; i < 5; i++ {
		q.Push(-1)
	}
	for i := 0; i < 3; i++ {
		q.Pop()
	}
	for i := 0; i < 500; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	for i := 0; i < 500; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
}
