package sim

import "testing"

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestFIFOWrapsAroundRing(t *testing.T) {
	var q FIFO[int]
	// Interleave pushes and pops so head walks around the ring many
	// times at a fixed small depth.
	for i := 0; i < 1000; i++ {
		q.Push(i)
		q.Push(i + 1000000)
		if q.Pop() != i {
			t.Fatalf("wrap order broken at %d", i)
		}
		if q.Pop() != i+1000000 {
			t.Fatalf("wrap order broken at %d", i)
		}
	}
	if len(q.buf) > 8 {
		t.Fatalf("ring grew to %d for depth-2 traffic", len(q.buf))
	}
}

func TestFIFOSteadyStateZeroAllocs(t *testing.T) {
	var q FIFO[*int]
	v := new(int)
	q.Push(v)
	q.Pop()
	allocs := testing.AllocsPerRun(1000, func() {
		q.Push(v)
		q.Push(v)
		q.Pop()
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("steady-state FIFO allocates %.1f/op, want 0", allocs)
	}
}

func TestFIFOPeekAndClear(t *testing.T) {
	var q FIFO[string]
	q.Push("a")
	q.Push("b")
	if q.Peek() != "a" || q.Len() != 2 {
		t.Fatalf("Peek = %q Len = %d", q.Peek(), q.Len())
	}
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len after Clear = %d", q.Len())
	}
	q.Push("c")
	if q.Pop() != "c" {
		t.Fatal("FIFO broken after Clear")
	}
}

func TestFIFOPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop of empty FIFO must panic")
		}
	}()
	var q FIFO[int]
	q.Pop()
}

func TestFIFOGrowPreservesOrder(t *testing.T) {
	var q FIFO[int]
	// Offset head, then force several growths mid-stream.
	for i := 0; i < 5; i++ {
		q.Push(-1)
	}
	for i := 0; i < 3; i++ {
		q.Pop()
	}
	for i := 0; i < 500; i++ {
		q.Push(i)
	}
	q.Pop()
	q.Pop()
	for i := 0; i < 500; i++ {
		if v := q.Pop(); v != i {
			t.Fatalf("Pop = %d, want %d", v, i)
		}
	}
}
