package sim

import "testing"

// The event pool's safety contract: a Handle taken on an event that has
// since fired and been recycled for a different purpose must be inert.
func TestStaleHandleCancelIsNoOp(t *testing.T) {
	e := New()
	fired1 := false
	h1 := e.After(10, "first", func() { fired1 = true })
	e.Run(20)
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	if h1.Scheduled() {
		t.Fatal("fired event still reports Scheduled")
	}
	// The pool reuses the recycled Event object for the next schedule.
	fired2 := false
	h2 := e.After(10, "second", func() { fired2 = true })
	// Cancelling the stale handle must not disturb the new event.
	h1.Cancel()
	if !h2.Scheduled() {
		t.Fatal("stale Cancel cancelled a recycled event")
	}
	e.Run(100)
	if !fired2 {
		t.Fatal("recycled event did not fire")
	}
}

func TestStaleHandleAfterCancelAndReuse(t *testing.T) {
	e := New()
	h1 := e.After(10, "victim", func() { t.Fatal("cancelled event fired") })
	h1.Cancel()
	fired := false
	h2 := e.After(10, "fresh", func() { fired = true })
	h1.Cancel() // stale: same Event object, older generation
	if !h2.Scheduled() {
		t.Fatal("stale Cancel hit the recycled event")
	}
	e.Run(100)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestEventPoolRecycles(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		e.After(1, "ev", fn)
		e.Step()
	}
	if len(e.free) == 0 || len(e.free) > 2 {
		t.Fatalf("free list holds %d events after a fire loop, want 1-2", len(e.free))
	}
}

func TestZeroHandleIsInert(t *testing.T) {
	var h Handle
	if h.Scheduled() {
		t.Fatal("zero Handle reports Scheduled")
	}
	h.Cancel() // must not panic
	if h.When() != 0 {
		t.Fatal("zero Handle has a When")
	}
}

// The tentpole regression: schedule→fire→recycle must not allocate once
// the pool is warm.
func TestScheduleFireRecycleZeroAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	e.After(1, "warm", fn)
	e.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, "ev", fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule→fire→recycle allocates %.1f/op, want 0", allocs)
	}
}

func TestCancelPathZeroAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	e.After(1, "warm", fn)
	e.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.After(1, "ev", fn)
		h.Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule→cancel→recycle allocates %.1f/op, want 0", allocs)
	}
}

func TestTimerRearmZeroAllocs(t *testing.T) {
	e := New()
	var tm *Timer
	tm = e.NewTimer("tick", func() { tm.ArmAfter(10) })
	tm.ArmAfter(10)
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("timer re-arm allocates %.1f/op, want 0", allocs)
	}
}

func TestTimerFires(t *testing.T) {
	e := New()
	count := 0
	tm := e.NewTimer("t", func() { count++ })
	tm.ArmAfter(10)
	if !tm.Armed() || tm.When() != 10 {
		t.Fatalf("Armed=%v When=%v", tm.Armed(), tm.When())
	}
	e.Run(100)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerRearmMovesFiring(t *testing.T) {
	e := New()
	var at Time
	tm := e.NewTimer("t", func() { at = e.Now() })
	tm.ArmAfter(10)
	tm.ArmAfter(50) // supersedes: must fire once, at 50
	e.Run(100)
	if at != 50 {
		t.Fatalf("fired at %v, want 50", at)
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
}

func TestTimerStop(t *testing.T) {
	e := New()
	tm := e.NewTimer("t", func() { t.Fatal("stopped timer fired") })
	tm.ArmAfter(10)
	tm.Stop()
	if tm.Armed() {
		t.Fatal("Armed after Stop")
	}
	tm.Stop() // idempotent
	e.Run(100)
	// Re-arm after Stop still works.
	fired := false
	tm2 := e.NewTimer("t2", func() { fired = true })
	tm2.ArmAfter(10)
	tm2.Stop()
	tm2.ArmAfter(20)
	e.Run(200)
	if !fired {
		t.Fatal("re-armed timer did not fire")
	}
}

func TestTimerSelfRearmInCallback(t *testing.T) {
	e := New()
	count := 0
	var tm *Timer
	tm = e.NewTimer("tick", func() {
		count++
		if count < 5 {
			tm.ArmAfter(10)
		}
	})
	tm.ArmAfter(10)
	e.Run(Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

// TestTimerThinkLoopRearm is the RPC think-time pattern: a timer whose
// callback does work, then re-arms itself with a jittered delay, racing
// other traffic events. The firing count must be deterministic across
// reruns, the timer must stay armed between firings, and a Stop from
// inside the callback must end the loop cleanly (re-armable later).
func TestTimerThinkLoopRearm(t *testing.T) {
	run := func() (int, Time) {
		e := New()
		rng := NewRNG(7)
		fired := 0
		var last Time
		var tm *Timer
		tm = e.NewTimer("think", func() {
			fired++
			last = e.Now()
			if fired >= 20 {
				tm.Stop() // inside own callback: already dequeued, must not panic
				return
			}
			tm.ArmAfter(rng.Jitter(Millisecond, 0.5))
		})
		// Background traffic contending for tied timestamps.
		var bg *Timer
		bg = e.NewTimer("bg", func() { bg.ArmAfter(Millisecond) })
		bg.ArmAfter(Millisecond)
		tm.ArmAfter(Millisecond)
		e.Run(Second)
		if tm.Armed() {
			t.Fatal("think timer armed after its loop stopped")
		}
		// The stopped timer is re-armable: one more firing.
		tm.ArmAfter(Millisecond)
		e.Run(e.Now() + 2*Millisecond)
		return fired, last
	}
	f1, l1 := run()
	f2, l2 := run()
	if f1 != 21 {
		t.Fatalf("fired %d times, want 20 loop firings + 1 re-arm", f1)
	}
	if f1 != f2 || l1 != l2 {
		t.Fatalf("think loop nondeterministic: (%d,%v) vs (%d,%v)", f1, l1, f2, l2)
	}
}

// A timer re-armed at a tied timestamp behaves like a freshly scheduled
// event: it consumes a new sequence number, so it fires after events
// already queued at that time — the same semantics as the
// cancel-and-reschedule pattern the Timer replaces.
func TestTimerRearmSequencesLikeFreshEvent(t *testing.T) {
	e := New()
	var order []string
	tm := e.NewTimer("timer", func() { order = append(order, "timer") })
	tm.ArmAfter(50)
	e.At(50, "a", func() { order = append(order, "a") })
	tm.ArmAfter(50) // re-arm: now sequences after "a"
	e.Run(100)
	if len(order) != 2 || order[0] != "a" || order[1] != "timer" {
		t.Fatalf("order = %v, want [a timer]", order)
	}
}

func TestPendingCountsTimers(t *testing.T) {
	e := New()
	tm := e.NewTimer("t", func() {})
	tm.ArmAfter(10)
	e.After(20, "ev", func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	tm.Stop()
	if e.Pending() != 1 {
		t.Fatalf("Pending after Stop = %d, want 1", e.Pending())
	}
}

// Heap stress: interleaved schedules, cancels, and timer re-arms must
// preserve (time, seq) execution order exactly.
func TestHeapStressWithCancels(t *testing.T) {
	e := New()
	rng := NewRNG(1234)
	var fireTimes []Time
	record := func() { fireTimes = append(fireTimes, e.Now()) }
	var handles []Handle
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			handles = append(handles, e.At(e.Now()+Time(rng.Intn(500)), "s", record))
		case 2:
			if len(handles) > 0 {
				j := rng.Intn(len(handles))
				handles[j].Cancel()
				handles = append(handles[:j], handles[j+1:]...)
			}
		}
		if rng.Intn(4) == 0 {
			e.Step()
		}
	}
	e.Run(Second)
	for i := 1; i < len(fireTimes); i++ {
		if fireTimes[i] < fireTimes[i-1] {
			t.Fatalf("out-of-order firing at %d: %v after %v", i, fireTimes[i], fireTimes[i-1])
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e.Pending())
	}
}
