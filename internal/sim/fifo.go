package sim

// FIFO is a growable ring-buffer queue with zero steady-state
// allocation: the backing array doubles while the queue finds its
// working depth and is then reused forever. The model layers pair one
// FIFO with one callback bound at construction time — the callback pops
// the item its firing corresponds to — which is how per-packet state is
// threaded through FIFO resources (bus, processing server, wire)
// without allocating a capturing closure per packet. Correctness relies
// on the resource completing work in issue order, which every FIFO
// server in this repository does.
type FIFO[T any] struct {
	buf  []T // power-of-two length
	head int
	size int
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int { return q.size }

// Push appends v to the tail.
func (q *FIFO[T]) Push(v T) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)&(len(q.buf)-1)] = v
	q.size++
}

// PushFront prepends v at the head — the "preempt but keep your turn"
// pattern (a domain re-queued ahead of waiting wakers, an interrupt's
// top half cutting ahead of queued kernel work). O(1) on the ring, no
// shifting.
func (q *FIFO[T]) PushFront(v T) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.head = (q.head - 1) & (len(q.buf) - 1)
	q.buf[q.head] = v
	q.size++
}

// Pop removes and returns the head. Popping an empty FIFO panics: it
// means a completion fired with no matching issue, a model bug.
func (q *FIFO[T]) Pop() T {
	if q.size == 0 {
		panic("sim: Pop of empty FIFO")
	}
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.size--
	return v
}

// At returns the i-th queued item (0 is the head) without removing it.
// Checkpoint capture walks queues with it.
func (q *FIFO[T]) At(i int) T {
	if i < 0 || i >= q.size {
		panic("sim: FIFO.At out of range")
	}
	return q.buf[(q.head+i)&(len(q.buf)-1)]
}

// Peek returns the head without removing it.
func (q *FIFO[T]) Peek() T {
	if q.size == 0 {
		panic("sim: Peek of empty FIFO")
	}
	return q.buf[q.head]
}

// Clear drops all queued items, keeping the backing array.
func (q *FIFO[T]) Clear() {
	var zero T
	for i := 0; i < q.size; i++ {
		q.buf[(q.head+i)&(len(q.buf)-1)] = zero
	}
	q.head, q.size = 0, 0
}

func (q *FIFO[T]) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	nb := make([]T, n)
	for i := 0; i < q.size; i++ {
		nb[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf, q.head = nb, 0
}
