// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution. All model components in this repository are
// driven by a single Engine; determinism is guaranteed by a strict
// (time, sequence) ordering of events and by the absence of goroutines in
// the simulation core.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	name      string
	fn        func()
	index     int // heap index; -1 once popped or cancelled
	cancelled bool
}

// At returns the time the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	ev.cancelled = true
	ev.fn = nil
}

// Cancelled reports whether Cancel was called.
func (ev *Event) Cancelled() bool { return ev.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulator core.
type Engine struct {
	now     Time
	seq     uint64
	pq      eventHeap
	running bool
	fired   uint64
	tracer  *Tracer
}

// New returns an Engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for tests
// and for sanity-checking experiment complexity).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pq {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, name: name, fn: fn}
	heap.Push(&e.pq, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled with negative delay %v", name, d))
	}
	return e.At(e.now+d, name, fn)
}

// Run executes events in order until the clock reaches the until
// timestamp or the event queue drains. Events scheduled exactly at
// `until` do not run; the clock is left at `until` (or at the last event
// time if the queue drained earlier).
func (e *Engine) Run(until Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 {
		ev := e.pq[0]
		if ev.at >= until {
			break
		}
		heap.Pop(&e.pq)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		if e.tracer != nil {
			e.tracer.record(ev.at, ev.name)
		}
		fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Step executes exactly one pending event (skipping cancelled ones) and
// reports whether an event ran.
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		if e.tracer != nil {
			e.tracer.record(ev.at, ev.name)
		}
		fn()
		return true
	}
	return false
}
