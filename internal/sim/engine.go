// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution. All model components in this repository are
// driven by a single Engine; determinism is guaranteed by a strict
// (time, sequence) ordering of events and by the absence of goroutines in
// the simulation core.
//
// The engine is the simulator's hot path: every packet the models move
// costs several events, so the core is built for zero steady-state
// allocation. Event objects are recycled through a free list and handed
// out as value-type Handles carrying a generation counter, cancelled
// events are removed from the queue eagerly, and components that fire
// repeatedly use a Timer — one persistent event re-armed in place —
// instead of scheduling fresh events. The event queue is a hierarchical
// timing wheel (sched_wheel.go) with O(1) amortized schedule, cancel
// and same-timestamp batch dispatch; the PR 2 binary heap remains the
// build-selectable reference implementation (-tags simheap). See
// DESIGN.md ("Foundation").
package sim

import "fmt"

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. Events are owned by the Engine's pool
// (or by a Timer) and referenced externally only through Handles, which
// carry a generation counter so a reference to a recycled event is
// detectably stale.
type Event struct {
	at    Time
	seq   uint64
	name  string
	fn    func()
	eng   *Engine
	next  *Event // intrusive wheel-slot list links (nil when unqueued
	prev  *Event // or when queued in the reference heap)
	index int32  // queue position: heap index or wheel slot; -1 when not queued
	fnID  int32  // callback registry identity (see fn.go); -1 raw, 0 none
	tm    int32  // owning Timer's registry index (meaningful iff timer)
	gen   uint32 // bumped on every recycle; stale Handles mismatch
	timer bool   // owned by a Timer, never returned to the pool
}

// Handle refers to a scheduled event. The zero Handle is valid and
// refers to nothing. Handles are values: copying one is free, and a
// Handle outliving its event is safe — once the event fires or is
// cancelled and recycled, the generation counter no longer matches and
// every method degrades to a no-op.
type Handle struct {
	ev  *Event
	gen uint32
}

// Scheduled reports whether the event is still queued to fire.
func (h Handle) Scheduled() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0
}

// When returns the time the event is scheduled to fire, or 0 if the
// handle is stale.
func (h Handle) When() Time {
	if !h.Scheduled() {
		return 0
	}
	return h.ev.at
}

// Cancel removes the event from the queue and recycles it. Cancelling a
// fired, already-cancelled, or stale handle is a no-op — in particular,
// cancelling an old handle to an event that has since been recycled for
// a different purpose must not (and does not) disturb the new event.
func (h Handle) Cancel() {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return
	}
	e := ev.eng
	e.q.remove(ev)
	e.release(ev)
}

// Engine is the discrete-event simulator core.
type Engine struct {
	now     Time
	seq     uint64
	free    []*Event // recycled events
	running bool
	fired   uint64
	tracer  *Tracer
	q       queueImpl // the event queue; concrete type, see sched_select_*.go

	// Checkpoint registries (fn.go, snapshot.go): callbacks bound and
	// timers created during machine construction, in construction
	// order. Deterministic construction makes the indices stable
	// identities a snapshot can record.
	binds  []func()
	timers []*Timer
}

// New returns an Engine with the clock at zero and the finest (1 ns)
// queue granularity.
func New() *Engine { return NewWithResolution(1) }

// NewWithResolution returns an Engine whose timing-wheel granularity is
// auto-sized to the given event-time scale: res should be the typical
// smallest spacing between distinct event timestamps (a calibrated
// per-task cost, a per-packet wire time, ...). The granularity is the
// largest power of two not exceeding res, clamped to [1 ns, 4096 ns].
// Resolution is purely a performance knob — coarser granularity shortens
// the radix distance long-range timers (retransmit timeouts, ticks)
// travel through the wheel — and never affects simulated results:
// events bucketed into one slot still fire in exact (time, sequence)
// order, so any resolution produces byte-identical output. (The
// reference heap ignores it.)
func NewWithResolution(res Time) *Engine {
	e := &Engine{}
	e.q.init(granularityShift(res))
	return e
}

// granularityShift converts an event-time scale to log2 of the wheel
// granularity, clamped to [1, 4096] ns.
func granularityShift(res Time) uint {
	var shift uint
	for res >= 2 && shift < 12 {
		res >>= 1
		shift++
	}
	return shift
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (useful for tests
// and for sanity-checking experiment complexity).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events. Cancelled
// events are removed from the queue eagerly, so this is the exact queue
// population — O(1), not a scan.
func (e *Engine) Pending() int { return e.q.len() }

// NextAt returns the timestamp of the earliest pending event, and false
// if the queue is empty. Shard coordinators use it to bound how early a
// stopped engine could possibly act again (its lookahead anchor).
func (e *Engine) NextAt() (Time, bool) {
	ev := e.q.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// alloc takes an event from the free list, or grows the pool.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{eng: e, index: -1}
}

// release recycles a fired or cancelled event. Timer-owned events are
// persistent and never enter the pool.
func (e *Engine) release(ev *Event) {
	if ev.timer {
		return
	}
	ev.gen++
	ev.fn = nil
	ev.fnID = 0
	ev.name = ""
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a model bug. The callback is raw (see
// RawFn): fine for tests and tooling, but model layers schedule bound
// callbacks through AtFn so pending events stay snapshotable.
func (e *Engine) At(t Time, name string, fn func()) Handle {
	return e.AtFn(t, name, RawFn(fn))
}

// AtFn schedules a registered callback to run at absolute time t.
func (e *Engine) AtFn(t Time, name string, fn Fn) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at, ev.seq, ev.name, ev.fn, ev.fnID = t, e.seq, name, fn.f, fn.id
	e.q.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// SeqBand is the high sequence bit that separates key-sequenced events
// (AtFnKeyed) from counter-sequenced ones: any keyed sequence has it
// set, so keyed events order after every counter-sequenced event at the
// same instant, regardless of scheduling order. Counter sequences can
// never reach it (2^62 events is beyond any feasible run).
const SeqBand uint64 = 1 << 62

// AtFnKeyed schedules a registered callback at absolute time t with an
// explicit sequence key instead of the engine counter. The key decides
// ordering among same-time events, which makes the order a pure function
// of the caller's key assignment — the property the sharded runtime
// needs so that an event injected at a barrier sorts identically to one
// scheduled mid-round on a single engine. Keys must have SeqBand set
// (checked) and be unique among pending events; the engine counter is
// not consumed.
func (e *Engine) AtFnKeyed(t Time, name string, fn Fn, key uint64) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", name, t, e.now))
	}
	if key&SeqBand == 0 {
		panic(fmt.Sprintf("sim: keyed event %q without SeqBand in key %#x", name, key))
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.name, ev.fn, ev.fnID = t, key, name, fn.f, fn.id
	e.q.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, name string, fn func()) Handle {
	return e.AfterFn(d, name, RawFn(fn))
}

// AfterFn schedules a registered callback d nanoseconds from now.
func (e *Engine) AfterFn(d Time, name string, fn Fn) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: event %q scheduled with negative delay %v", name, d))
	}
	return e.AtFn(e.now+d, name, fn)
}

// fire executes the already-dequeued event ev. Pooled events are
// recycled before the callback runs, so a schedule→fire→recycle loop
// reuses one Event object and never allocates.
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	fn := ev.fn
	e.fired++
	if e.tracer != nil {
		e.tracer.record(ev.at, ev.name)
	}
	e.release(ev)
	if fn != nil {
		fn()
	}
}

// Run executes events in order until the clock reaches the until
// timestamp or the event queue drains. Events scheduled exactly at
// `until` do not run; the clock is left at `until` (or at the last event
// time if the queue drained earlier).
//
// Events sharing a timestamp are batch-dispatched: after the first
// event at a time fires, the remaining ones (including any the
// callbacks schedule at the same instant) drain straight off the
// current wheel slot in (time, sequence) order without re-probing the
// queue hierarchy per event.
func (e *Engine) Run(until Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for {
		ev := e.q.peek()
		if ev == nil || ev.at >= until {
			break
		}
		e.q.pop(ev)
		e.fire(ev)
		for {
			nxt := e.q.popAt(e.now)
			if nxt == nil {
				break
			}
			e.fire(nxt)
		}
	}
	if e.now < until {
		e.now = until
	}
}

// Step executes exactly one pending event and reports whether an event
// ran.
func (e *Engine) Step() bool {
	ev := e.q.peek()
	if ev == nil {
		return false
	}
	e.q.pop(ev)
	e.fire(ev)
	return true
}
