package sim_test

// The engine micro-benchmarks behind `make bench` / BENCH_sim.json.
// Bodies live in internal/sim/simbench (shared with cmd/cdnabench and
// the repository-root bench) so the committed perf artifact always
// measures exactly these loops. External test package to avoid the
// sim → simbench → sim cycle.

import (
	"testing"

	"cdna/internal/sim/simbench"
)

func BenchmarkEngineScheduleFire(b *testing.B)        { simbench.ScheduleFire(b) }
func BenchmarkEngineScheduleFireClosure(b *testing.B) { simbench.ScheduleFireClosure(b) }
func BenchmarkEngineScheduleFireDepth64(b *testing.B) { simbench.ScheduleFireDepth64(b) }
func BenchmarkTimerRearm(b *testing.B)                { simbench.TimerRearm(b) }
func BenchmarkEngineCancel(b *testing.B)              { simbench.Cancel(b) }
func BenchmarkEngineCancelHeavy(b *testing.B)         { simbench.CancelHeavy(b) }
func BenchmarkEngineRTOChurn(b *testing.B)            { simbench.RTOChurn(b) }
