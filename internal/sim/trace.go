package sim

// TraceEntry is one fired event in the engine's trace ring.
type TraceEntry struct {
	At   Time
	Name string
}

// Tracer is a fixed-size ring buffer of fired events — the simulator's
// flight recorder. Tracing costs one append per event, so it is off
// unless attached; cdnasim -trace uses it to show what the machine was
// doing at the end of a run.
type Tracer struct {
	buf   []TraceEntry
	next  int
	count uint64
}

// Attach installs a tracer recording the last n fired events.
func (e *Engine) Attach(n int) *Tracer {
	if n <= 0 {
		n = 1024
	}
	e.tracer = &Tracer{buf: make([]TraceEntry, 0, n)}
	return e.tracer
}

// Detach removes the tracer.
func (e *Engine) Detach() { e.tracer = nil }

// Traced reports whether a tracer is attached. Hot paths use it to
// skip building decorated event names (a per-event string allocation)
// when nobody is recording them.
func (e *Engine) Traced() bool { return e.tracer != nil }

func (tr *Tracer) record(at Time, name string) {
	tr.count++
	if len(tr.buf) < cap(tr.buf) {
		tr.buf = append(tr.buf, TraceEntry{at, name})
		return
	}
	tr.buf[tr.next] = TraceEntry{at, name}
	tr.next = (tr.next + 1) % cap(tr.buf)
}

// Count returns the number of events recorded over the tracer's life.
func (tr *Tracer) Count() uint64 { return tr.count }

// Last returns up to k most recent entries, oldest first.
func (tr *Tracer) Last(k int) []TraceEntry {
	n := len(tr.buf)
	if k > n {
		k = n
	}
	out := make([]TraceEntry, 0, k)
	// Entries are ordered starting at next (oldest) when the ring is
	// full, else from 0.
	start := 0
	if n == cap(tr.buf) {
		start = tr.next
	}
	for i := n - k; i < n; i++ {
		out = append(out, tr.buf[(start+i)%n])
	}
	return out
}
