//go:build simheap

package sim

// queueImpl selects the reference binary-heap queue (see
// sched_select_wheel.go for the default and the rationale).
type queueImpl = heapSched

// SchedulerName identifies the compiled-in event queue.
const SchedulerName = "heap"
