//go:build !simheap && !simwheel

package sim

// queueImpl selects the default event queue: the hybrid near/far
// scheduler (sched_hybrid.go) — a small binary-heap run for the
// immediate horizon fronting the hierarchical timing wheel for far
// timers. Build with -tags simwheel for the pure wheel or -tags
// simheap for the reference heap; see sched_select_wheel.go.
type queueImpl = hybridSched

// SchedulerName identifies the compiled-in event queue.
const SchedulerName = "hybrid"
