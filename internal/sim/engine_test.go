package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.After(30, "c", func() { order = append(order, 3) })
	e.After(10, "a", func() { order = append(order, 1) })
	e.After(20, "b", func() { order = append(order, 2) })
	e.Run(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, "tie", func() { order = append(order, i) })
	}
	e.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineRunBoundaryExclusive(t *testing.T) {
	e := New()
	fired := false
	e.At(100, "edge", func() { fired = true })
	e.Run(100)
	if fired {
		t.Fatal("event at the until-boundary must not fire")
	}
	e.Run(101)
	if !fired {
		t.Fatal("event should fire once the window passes it")
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(10, "x", func() { fired = true })
	if !ev.Scheduled() {
		t.Fatal("Scheduled() should be true before Cancel")
	}
	ev.Cancel()
	if ev.Scheduled() {
		t.Fatal("Scheduled() should be false after Cancel")
	}
	ev.Cancel() // double-cancel is a no-op
	e.Run(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", e.Fired())
	}
}

func TestEngineCancelMiddleOfQueue(t *testing.T) {
	e := New()
	var order []int
	handles := make([]Handle, 0, 10)
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, e.At(Time(10*(i+1)), "ev", func() { order = append(order, i) }))
	}
	handles[3].Cancel()
	handles[7].Cancel()
	handles[0].Cancel()
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
	e.Run(Second)
	want := []int{1, 2, 4, 5, 6, 8, 9}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestEngineReschedulingFromCallback(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, "tick", tick)
		}
	}
	e.After(10, "tick", tick)
	e.Run(Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != Second {
		t.Fatalf("clock = %v, want 1s", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New()
	e.After(100, "later", func() {})
	e.Run(200)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	e.At(50, "past", func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay must panic")
		}
	}()
	e.After(-1, "neg", func() {})
}

func TestEngineStep(t *testing.T) {
	e := New()
	n := 0
	e.After(10, "a", func() { n++ })
	e.After(20, "b", func() { n++ })
	if !e.Step() || n != 1 || e.Now() != 10 {
		t.Fatalf("first Step: n=%d now=%v", n, e.Now())
	}
	if !e.Step() || n != 2 || e.Now() != 20 {
		t.Fatalf("second Step: n=%d now=%v", n, e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestEnginePending(t *testing.T) {
	e := New()
	a := e.After(10, "a", func() {})
	e.After(20, "b", func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	a.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := New()
		var stamps []Time
		rng := NewRNG(42)
		var gen func()
		gen = func() {
			stamps = append(stamps, e.Now())
			if len(stamps) < 50 {
				e.After(Time(rng.Intn(1000)+1), "gen", gen)
			}
		}
		e.After(1, "gen", gen)
		e.Run(Second)
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timestamp %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(11)
	d := 1000 * Microsecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(d, 0.1)
		if j < Time(float64(d)*0.9) || j > Time(float64(d)*1.1) {
			t.Fatalf("jitter out of bounds: %v", j)
		}
	}
}
