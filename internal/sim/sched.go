package sim

// The event queue sits behind a small scheduler seam so the engine can
// carry either implementation as a concrete type (no interface value in
// the hot path — `queueImpl` is a build-tag-selected type alias, see
// sched_select_*.go):
//
//   - hybridSched (default): a near/far split — a small binary-heap
//     run for the wheel clock's current window fronting the timing
//     wheel for everything farther out (sched_hybrid.go);
//   - wheelSched (-tags simwheel): the pure hierarchical timing wheel
//     with O(1) amortized schedule/cancel;
//   - heapSched (-tags simheap): the PR 2 binary min-heap, kept as the
//     reference implementation the differential test replays against.
//
// The interface itself is only ever used by tests (the randomized
// differential test drives both implementations through it) and as the
// compile-time contract both types must satisfy.
type scheduler interface {
	// init prepares the queue; gshift is log2 of the wheel granularity
	// in nanoseconds (ignored by the heap).
	init(gshift uint)
	// push inserts a queued event (at, seq, index maintained).
	push(ev *Event)
	// peek returns the minimum (at, seq) event without removing it, or
	// nil when empty.
	peek() *Event
	// pop removes ev, which must be the event peek just returned, and
	// commits simulated time to ev's timestamp.
	pop(ev *Event)
	// popAt removes and returns the minimum event if it fires exactly
	// at t, else nil. Used for same-timestamp batch dispatch: after a
	// pop at time t, all remaining events at t are reachable in O(1).
	popAt(t Time) *Event
	// remove deletes a queued event (cancellation).
	remove(ev *Event)
	// reschedule re-keys a queued event after its at/seq changed
	// (Timer re-arm).
	reschedule(ev *Event)
	// len returns the number of queued events.
	len() int
	// each visits every queued event in unspecified order (checkpoint
	// capture; the caller sorts by (at, seq)).
	each(f func(*Event))
	// reset empties the queue structurally without touching the
	// events' link fields — callers detach events via each first —
	// and re-seats the clock at t, which must not exceed any event
	// subsequently pushed (checkpoint restore).
	reset(t Time)
}

// Compile-time checks: both implementations satisfy the seam, so the
// build-tag alias can select either.
var (
	_ scheduler = (*wheelSched)(nil)
	_ scheduler = (*heapSched)(nil)
	_ scheduler = (*hybridSched)(nil)
)

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
