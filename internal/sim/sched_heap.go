package sim

// heapSched is the PR 2 event queue: a hand-rolled binary min-heap on
// (at, seq) that tracks each event's position for O(log n) cancellation.
// It is no longer the default — the timing wheel (sched_wheel.go) is —
// but stays as the build-selectable reference implementation
// (-tags simheap) and as the oracle the randomized differential test
// replays against.
type heapSched struct {
	pq []*Event
}

func (h *heapSched) init(gshift uint) {}

func (h *heapSched) len() int { return len(h.pq) }

func (h *heapSched) push(ev *Event) {
	ev.index = int32(len(h.pq))
	h.pq = append(h.pq, ev)
	h.siftUp(len(h.pq) - 1)
}

func (h *heapSched) peek() *Event {
	if len(h.pq) == 0 {
		return nil
	}
	return h.pq[0]
}

// pop removes ev, which is always h.pq[0] (the event peek returned).
func (h *heapSched) pop(ev *Event) {
	h.popMin()
}

func (h *heapSched) popAt(t Time) *Event {
	if len(h.pq) == 0 || h.pq[0].at != t {
		return nil
	}
	return h.popMin()
}

func (h *heapSched) popMin() *Event {
	ev := h.pq[0]
	last := len(h.pq) - 1
	if last > 0 {
		h.pq[0] = h.pq[last]
		h.pq[0].index = 0
	}
	h.pq[last] = nil
	h.pq = h.pq[:last]
	if last > 1 {
		h.siftDown(0)
	}
	ev.index = -1
	return ev
}

func (h *heapSched) remove(ev *Event) {
	i := int(ev.index)
	last := len(h.pq) - 1
	if i != last {
		h.pq[i] = h.pq[last]
		h.pq[i].index = int32(i)
	}
	h.pq[last] = nil
	h.pq = h.pq[:last]
	if i < last {
		h.fix(i)
	}
	ev.index = -1
}

// reschedule restores heap order after the event at position ev.index
// changed key (Timer re-arm re-keys the event where it sits).
func (h *heapSched) reschedule(ev *Event) {
	h.fix(int(ev.index))
}

func (h *heapSched) each(f func(*Event)) {
	for _, ev := range h.pq {
		f(ev)
	}
}

func (h *heapSched) reset(t Time) { h.pq = nil }

func (h *heapSched) fix(i int) {
	if !h.siftDown(i) {
		h.siftUp(i)
	}
}

func (h *heapSched) siftUp(i int) {
	ev := h.pq[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.pq[parent]
		if !eventLess(ev, p) {
			break
		}
		h.pq[i] = p
		p.index = int32(i)
		i = parent
	}
	h.pq[i] = ev
	ev.index = int32(i)
}

// siftDown reports whether the event moved.
func (h *heapSched) siftDown(i int) bool {
	ev := h.pq[i]
	n := len(h.pq)
	start := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h.pq[r], h.pq[l]) {
			m = r
		}
		if !eventLess(h.pq[m], ev) {
			break
		}
		h.pq[i] = h.pq[m]
		h.pq[i].index = int32(i)
		i = m
	}
	h.pq[i] = ev
	ev.index = int32(i)
	return i > start
}
