package sim

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 /
// xorshift-style) used for workload jitter. It is seeded explicitly so
// experiments replay identically; math/rand is deliberately avoided so
// that the stream is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped so the
// stream is never degenerate).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// State returns the generator's internal state (checkpoint capture).
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state (checkpoint
// restore). The argument must come from State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean —
// the inter-arrival draw of a Poisson process. Inverse-CDF over the
// uniform stream, so one Uint64 per draw and the sequence replays
// identically from a stored state.
func (r *RNG) Exp(mean float64) float64 {
	return -mean * math.Log1p(-r.Float64())
}

// Pareto returns a Pareto(alpha, xm)-distributed value: minimum xm,
// tail index alpha. The mean is alpha*xm/(alpha-1) for alpha > 1 —
// heavy-tailed inter-arrival gaps and flow sizes both come from here.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (r *RNG) Jitter(d Time, frac float64) Time {
	f := 1 + frac*(2*r.Float64()-1)
	return Time(float64(d) * f)
}
