package sim

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// snapRig is an engine with a deterministic registry: two bound
// callbacks and one self-re-arming timer, all logging their firings.
// Two rigs built alike have identical registries, which is exactly the
// contract Engine.Restore verifies.
type snapRig struct {
	eng  *Engine
	log  []string
	a, b Fn
	tm   *Timer
}

func newSnapRig() *snapRig {
	r := &snapRig{eng: New()}
	r.a = r.eng.Bind(func() { r.log = append(r.log, fmt.Sprintf("a@%d", r.eng.Now())) })
	r.b = r.eng.Bind(func() { r.log = append(r.log, fmt.Sprintf("b@%d", r.eng.Now())) })
	r.tm = r.eng.NewTimer("tick", func() {
		r.log = append(r.log, fmt.Sprintf("t@%d", r.eng.Now()))
		r.tm.ArmAfter(7)
	})
	return r
}

func TestEngineSnapshotRestoreContinuation(t *testing.T) {
	a := newSnapRig()
	a.tm.Arm(3)
	for i := Time(1); i <= 40; i += 4 {
		a.eng.AtFn(i, "ev.a", a.a)
		a.eng.AtFn(i+1, "ev.b", a.b)
	}
	a.eng.AtFn(12, "ev.none", Fn{}) // nil callback: fires as a no-op
	a.eng.Run(17)

	st, err := a.eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Now != 17 || st.Binds != 2 || st.Timers != 1 {
		t.Fatalf("header fields: %+v", st)
	}
	if st.Fired != a.eng.Fired() || len(st.Events) != a.eng.Pending() {
		t.Fatalf("counters: %+v vs fired %d pending %d", st, a.eng.Fired(), a.eng.Pending())
	}
	if !sort.SliceIsSorted(st.Events, func(i, j int) bool {
		return st.Events[i].At < st.Events[j].At ||
			(st.Events[i].At == st.Events[j].At && st.Events[i].Seq < st.Events[j].Seq)
	}) {
		t.Fatal("snapshot events not sorted by (at, seq)")
	}
	// Same state, same image — regardless of queue-internal layout.
	st2, err := a.eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatal("re-snapshotting an untouched engine changed the image")
	}

	b := newSnapRig()
	// Queue junk into the restoring engine first: Restore must detach
	// and drop it (the pooled event returns to the collector, the armed
	// timer becomes unarmed-until-the-image-says-otherwise).
	b.eng.AtFn(2, "junk", b.b)
	b.tm.Arm(1)
	if err := b.eng.Restore(st); err != nil {
		t.Fatal(err)
	}
	if b.eng.Now() != 17 || b.eng.Fired() != a.eng.Fired() || b.eng.Pending() != a.eng.Pending() {
		t.Fatalf("restored clock/counters: now=%d fired=%d pending=%d",
			b.eng.Now(), b.eng.Fired(), b.eng.Pending())
	}
	if !b.tm.Armed() || b.tm.When() != a.tm.When() {
		t.Fatalf("restored timer: armed=%v when=%d, want when=%d", b.tm.Armed(), b.tm.When(), a.tm.When())
	}

	mark := len(a.log)
	a.eng.Run(100)
	b.eng.Run(100)
	if got, want := b.log, a.log[mark:]; !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed firings %v, want %v", got, want)
	}
	if b.eng.Fired() != a.eng.Fired() || b.eng.Now() != a.eng.Now() {
		t.Fatal("engines diverged after drain")
	}
	// The junk event must never have fired.
	for _, l := range b.log {
		if l[0] == 'b' && l != "b@18" && l[:2] == "b@" {
			break // b-callback firings are legitimate; the junk was at t=2 < 17
		}
	}
}

func TestSnapshotRejectsRawCallback(t *testing.T) {
	e := New()
	e.At(5, "raw", func() {})
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("snapshotted an engine with a pending raw callback")
	}
	// Once the raw event fires, the engine is snapshotable again.
	e.Run(10)
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsMismatch(t *testing.T) {
	donor := newSnapRig()
	donor.eng.AtFn(5, "ev", donor.a)
	st, err := donor.eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Registry-size mismatch: an engine built differently.
	if err := New().Restore(st); err == nil {
		t.Fatal("restored into an engine with no registry")
	}

	// A callback ID beyond the registry.
	bad := st
	bad.Events = append([]EventRecord(nil), st.Events...)
	bad.Events[0] = EventRecord{At: 5, Seq: 1, Name: "bogus", Fn: 99, Timer: -1}
	if err := newSnapRig().eng.Restore(bad); err == nil {
		t.Fatal("resolved a callback id outside the registry")
	}

	// A timer index beyond the registry.
	bad.Events[0] = EventRecord{At: 5, Seq: 1, Name: "bogus", Timer: 42}
	if err := newSnapRig().eng.Restore(bad); err == nil {
		t.Fatal("resolved a timer index outside the registry")
	}

	// Restore mid-run is refused: the firing loop holds queue state.
	r := newSnapRig()
	var running error
	r.eng.At(1, "inside", func() { running = r.eng.Restore(st) })
	r.eng.Run(2)
	if running == nil {
		t.Fatal("Restore succeeded inside Run")
	}
}

// TestSnapshotRestoreAcrossSchedulers pins the queue-walk contract both
// implementations share: each visits every queued event, reset empties
// the queue and re-bases its clock. The compiled-in queue is covered by
// the engine tests; this drives both concrete types directly.
func TestSchedulerEachAndReset(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    scheduler
	}{
		{"heap", &heapSched{}},
		{"wheel", &wheelSched{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.q.init(0)
			evs := make([]*Event, 5)
			for i := range evs {
				evs[i] = &Event{at: Time(100 - 10*i), seq: uint64(i + 1), index: -1}
				tc.q.push(evs[i])
			}
			seen := map[*Event]bool{}
			tc.q.each(func(ev *Event) { seen[ev] = true })
			if len(seen) != len(evs) {
				t.Fatalf("each visited %d of %d events", len(seen), len(evs))
			}
			for _, ev := range evs {
				if !seen[ev] {
					t.Fatalf("each missed event at %d", ev.at)
				}
			}
			for _, ev := range evs {
				ev.next, ev.prev, ev.index = nil, nil, -1
			}
			tc.q.reset(1000)
			if tc.q.len() != 0 {
				t.Fatalf("reset left %d events queued", tc.q.len())
			}
			// The reset queue accepts events at its new epoch.
			ev := &Event{at: 1005, seq: 99, index: -1}
			tc.q.push(ev)
			if got := tc.q.peek(); got != ev {
				t.Fatalf("post-reset peek = %v", got)
			}
		})
	}
}

func TestFnIdentity(t *testing.T) {
	e := New()
	if got := e.Binds(); got != 0 {
		t.Fatalf("fresh engine Binds = %d", got)
	}
	var fired int
	fn := e.Bind(func() { fired++ })
	if fn.Nil() || fn.ID() != 1 || e.Binds() != 1 {
		t.Fatalf("bound fn: nil=%v id=%d binds=%d", fn.Nil(), fn.ID(), e.Binds())
	}
	fn.Call()
	if fired != 1 {
		t.Fatal("Call did not invoke the callback")
	}

	var zero Fn
	zero.Call() // no-op by contract
	if !zero.Nil() || zero.ID() != 0 {
		t.Fatalf("zero Fn: nil=%v id=%d", zero.Nil(), zero.ID())
	}
	if raw := RawFn(func() {}); raw.ID() != -1 || raw.Nil() {
		t.Fatalf("raw Fn: id=%d nil=%v", raw.ID(), raw.Nil())
	}
	if rawNil := RawFn(nil); !rawNil.Nil() || rawNil.ID() != 0 {
		t.Fatalf("RawFn(nil): nil=%v id=%d", rawNil.Nil(), rawNil.ID())
	}

	if got, err := e.ResolveFn(0); err != nil || !got.Nil() {
		t.Fatalf("ResolveFn(0) = %+v, %v", got, err)
	}
	got, err := e.ResolveFn(fn.ID())
	if err != nil || got.ID() != fn.ID() {
		t.Fatalf("ResolveFn(%d) = %+v, %v", fn.ID(), got, err)
	}
	got.Call()
	if fired != 2 {
		t.Fatal("resolved Fn is not the bound callback")
	}
	if _, err := e.ResolveFn(2); err == nil {
		t.Fatal("resolved an unbound id")
	}
	if _, err := e.ResolveFn(-1); err == nil {
		t.Fatal("resolved the raw id")
	}

	if e.Timers() != 0 {
		t.Fatalf("Timers = %d", e.Timers())
	}
	e.NewTimer("t", func() {})
	if e.Timers() != 1 {
		t.Fatalf("Timers = %d after NewTimer", e.Timers())
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	a := NewRNG(42)
	a.Uint64()
	a.Uint64()
	st := a.State()
	b := NewRNG(7)
	b.SetState(st)
	for i := 0; i < 8; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestFIFORandomAccess(t *testing.T) {
	var q FIFO[int]
	for i := 1; i <= 3; i++ {
		q.Push(i)
	}
	q.PushFront(0)
	if q.Len() != 4 || q.Peek() != 0 {
		t.Fatalf("len=%d peek=%d", q.Len(), q.Peek())
	}
	for i := 0; i < 4; i++ {
		if q.At(i) != i {
			t.Fatalf("At(%d) = %d", i, q.At(i))
		}
	}
	// Wrap the ring: pop two, push two, and index again.
	q.Pop()
	q.Pop()
	q.Push(4)
	q.Push(5)
	for i := 0; i < 4; i++ {
		if q.At(i) != i+2 {
			t.Fatalf("wrapped At(%d) = %d", i, q.At(i))
		}
	}
}
