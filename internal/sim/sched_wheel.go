package sim

import "math/bits"

// wheelSched is a hierarchical timing wheel (Linux-kernel style
// cascading levels): wheelLevels levels of wheelSlots slots each, where
// a level-l slot spans wheelSlots^l ticks and one tick is the wheel
// granularity (1<<gshift nanoseconds). Events hang off per-slot
// intrusive circular doubly-linked lists threaded through the pooled
// Event's next/prev fields, so schedule and cancel are O(1) pointer
// splices with zero allocation; per-level occupancy bitmaps (one uint64
// per level — wheelSlots is 64 precisely so a level's occupancy is one
// word) make "find the next non-empty slot" a single TrailingZeros64.
//
// Exact (at, seq) total order — the engine's determinism contract — is
// preserved by two rules:
//
//   - level-0 lists are kept sorted by (at, seq) (insertion walks
//     backwards from the tail, which is O(1) for the dominant
//     monotonic-append pattern), so the head of the lowest occupied
//     level-0 slot is the global minimum and same-timestamp events
//     drain in seq order;
//   - higher-level lists are unsorted (append), but their events are
//     cascaded — re-placed one level down — when the clock enters
//     their slot's span, and every cascade lands same-tick events back
//     in a sorted level-0 list before they can fire. A cascaded event
//     keeps its (at, seq) key, so ordering survives any number of
//     cascade hops.
//
// Events beyond the wheel horizon (wheelSlots^wheelLevels ticks) go to
// an unsorted overflow list and are re-placed into the wheel when the
// clock crosses into their top-level epoch.
//
// The wheel never scans time: the clock (cur, in ticks) advances only
// to popped events' timestamps, so an idle span costs nothing.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64: one occupancy word per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 6 // horizon: 64^6 ticks (~68 s at 1 ns granularity)

	// overflowIdx is the Event.index marker for the overflow list; slot
	// indices are level*wheelSlots+slot in [0, overflowIdx).
	overflowIdx = wheelLevels * wheelSlots
)

type wheelSched struct {
	gshift uint   // log2 of granularity: tick = at >> gshift
	cur    uint64 // tick of the last popped event; never ahead of one
	count  int

	occ   [wheelLevels]uint64            // per-level slot occupancy bitmaps
	slots [wheelLevels][wheelSlots]Event // circular-list sentinels
	over  Event                          // overflow-list sentinel
}

func (w *wheelSched) init(gshift uint) {
	w.gshift = gshift
	for l := range w.slots {
		for s := range w.slots[l] {
			sentinelInit(&w.slots[l][s])
		}
	}
	sentinelInit(&w.over)
}

func sentinelInit(s *Event) { s.next, s.prev = s, s }

func listEmpty(s *Event) bool { return s.next == s }

// insertAfter splices ev in after p.
func insertAfter(p, ev *Event) {
	ev.prev = p
	ev.next = p.next
	p.next.prev = ev
	p.next = ev
}

func listUnlink(ev *Event) {
	ev.prev.next = ev.next
	ev.next.prev = ev.prev
	ev.next, ev.prev = nil, nil
}

func (w *wheelSched) len() int { return w.count }

func (w *wheelSched) tick(t Time) uint64 { return uint64(t) >> w.gshift }

func (w *wheelSched) push(ev *Event) {
	w.place(ev)
	w.count++
}

// place files ev into the level/slot its distance from cur selects. It
// is also the cascade target: relocated events keep their (at, seq) key
// and simply land closer to level 0.
func (w *wheelSched) place(ev *Event) {
	t := w.tick(ev.at)
	// The level is the highest 6-bit digit in which t differs from cur:
	// same digit everywhere above level l means t is within the current
	// level-(l+1) epoch, and l is the smallest such level.
	d := t ^ w.cur
	if d == 0 {
		w.insert(0, int(t&wheelMask), ev)
		return
	}
	l := (63 - bits.LeadingZeros64(d)) / wheelBits
	if l >= wheelLevels {
		ev.index = overflowIdx
		insertAfter(w.over.prev, ev) // append; overflow is unsorted
		return
	}
	w.insert(l, int((t>>(uint(l)*wheelBits))&wheelMask), ev)
}

func (w *wheelSched) insert(l, s int, ev *Event) {
	sent := &w.slots[l][s]
	if l == 0 {
		// Sorted insert, scanning backwards from the tail: new events
		// carry fresh sequence numbers, so appending at the tail is the
		// common case and the walk is O(1) amortized.
		p := sent.prev
		for p != sent && eventLess(ev, p) {
			p = p.prev
		}
		insertAfter(p, ev)
	} else {
		insertAfter(sent.prev, ev)
	}
	w.occ[l] |= 1 << uint(s)
	ev.index = int32(l*wheelSlots + s)
}

// unlink removes a queued event and maintains the occupancy bitmap.
func (w *wheelSched) unlink(ev *Event) {
	idx := int(ev.index)
	listUnlink(ev)
	ev.index = -1
	if idx < overflowIdx {
		l, s := idx>>wheelBits, idx&wheelMask
		if listEmpty(&w.slots[l][s]) {
			w.occ[l] &^= 1 << uint(s)
		}
	}
}

// peek returns the (at, seq)-minimum queued event without removing it.
// Level 0 is O(1); a non-empty higher slot or the overflow list is
// scanned for its minimum (each event is scanned this way at most once
// per level it cascades through, so the amortized cost stays O(1)).
func (w *wheelSched) peek() *Event {
	if w.count == 0 {
		return nil
	}
	if w.occ[0] != 0 {
		s := bits.TrailingZeros64(w.occ[0])
		return w.slots[0][s].next // sorted: head is the minimum
	}
	for l := 1; l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		s := bits.TrailingZeros64(w.occ[l])
		return minInList(&w.slots[l][s])
	}
	return minInList(&w.over)
}

func minInList(sent *Event) *Event {
	best := sent.next
	for ev := best.next; ev != sent; ev = ev.next {
		if eventLess(ev, best) {
			best = ev
		}
	}
	return best
}

// pop removes ev — the event peek just returned — and advances the
// wheel clock to its tick, cascading the slot the clock just entered.
func (w *wheelSched) pop(ev *Event) {
	idx := int(ev.index)
	w.unlink(ev)
	w.count--
	w.advance(w.tick(ev.at))
	if idx >= wheelSlots && idx < overflowIdx {
		// ev came from a level >= 1 slot whose span the clock has now
		// entered: relocate its remaining events. Every one of them
		// shares ev's level-l digit (that is what a slot is), so each
		// lands at a strictly lower level — same-tick events reach the
		// sorted level-0 list before they can fire.
		w.cascade(idx>>wheelBits, idx&wheelMask)
	}
}

// popAt removes and returns the next event if it fires exactly at t.
// After a pop at time t, every remaining event at t sits at the head of
// the lowest occupied level-0 slot (same tick ⇒ level 0, sorted), so
// same-timestamp batch dispatch is one bitmap probe + one splice per
// event — never a heap sift or a hierarchy walk.
func (w *wheelSched) popAt(t Time) *Event {
	if w.occ[0] == 0 {
		return nil
	}
	s := bits.TrailingZeros64(w.occ[0])
	ev := w.slots[0][s].next
	if ev.at != t {
		return nil
	}
	w.unlink(ev)
	w.count--
	return ev
}

func (w *wheelSched) remove(ev *Event) {
	w.unlink(ev)
	w.count--
}

func (w *wheelSched) reschedule(ev *Event) {
	w.unlink(ev)
	w.place(ev)
}

// advance moves the wheel clock to tick t (the tick of an event being
// popped, so nothing earlier can exist or be scheduled later). Crossing
// into a new top-level epoch re-files overflow events that are now
// within the wheel horizon.
func (w *wheelSched) advance(t uint64) {
	const topShift = wheelBits * wheelLevels
	crossed := (t >> topShift) != (w.cur >> topShift)
	w.cur = t
	if !crossed || listEmpty(&w.over) {
		return
	}
	top := t >> topShift
	for ev := w.over.next; ev != &w.over; {
		next := ev.next
		if w.tick(ev.at)>>topShift == top {
			listUnlink(ev)
			w.place(ev)
		}
		ev = next
	}
}

// each visits every queued event (all slots plus overflow), in wheel
// order — unspecified as far as callers are concerned.
func (w *wheelSched) each(f func(*Event)) {
	for l := 0; l < wheelLevels; l++ {
		for s := 0; s < wheelSlots; s++ {
			sent := &w.slots[l][s]
			for ev := sent.next; ev != sent; ev = ev.next {
				f(ev)
			}
		}
	}
	for ev := w.over.next; ev != &w.over; ev = ev.next {
		f(ev)
	}
}

// reset re-initializes the wheel to empty with the clock at t's tick.
// Restore then re-pushes events whose timestamps are all >= t, so every
// placement distance is computed against a clock no later than the
// wheel would have reached organically — order-correct regardless of
// where the donor wheel's clock stood.
func (w *wheelSched) reset(t Time) {
	gshift := w.gshift
	*w = wheelSched{}
	w.init(gshift)
	w.cur = w.tick(t)
}

// cascade relocates every event remaining in slot (l, s) one or more
// levels down after the clock entered the slot's span.
func (w *wheelSched) cascade(l, s int) {
	sent := &w.slots[l][s]
	if listEmpty(sent) {
		return
	}
	w.occ[l] &^= 1 << uint(s)
	for ev := sent.next; ev != sent; {
		next := ev.next
		ev.next, ev.prev = nil, nil
		w.place(ev)
		ev = next
	}
	sentinelInit(sent)
}
