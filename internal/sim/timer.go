package sim

// Timer is a reschedulable event: one persistent Event, bound to a
// callback once at creation, that re-arms in place. Components that fire
// repeatedly — retransmit timeouts, interrupt coalescers, periodic
// ticks — hold one Timer instead of scheduling a fresh closure per
// firing, so the steady state allocates nothing.
//
// Arming an already-armed timer moves it (the old firing is superseded),
// exactly like Cancel-then-reschedule but without queue churn: the event
// is re-keyed where it sits. Each re-arm consumes a fresh sequence
// number, so ties against other events resolve as if the timer had just
// been scheduled — semantics identical to the fresh-event pattern it
// replaces, which is what keeps the refactor byte-deterministic.
type Timer struct {
	eng *Engine
	ev  Event
}

// NewTimer creates a timer that runs fn when it fires. The callback is
// fixed for the timer's lifetime; per-firing state belongs on the
// component the callback is a method of. The timer starts unarmed.
func (e *Engine) NewTimer(name string, fn func()) *Timer {
	t := &Timer{eng: e}
	t.ev = Event{eng: e, name: name, fn: fn, index: -1, timer: true, tm: int32(len(e.timers))}
	e.timers = append(e.timers, t)
	return t
}

// Timers returns the number of registered timers — like Binds, a
// structural fingerprint for snapshot headers.
func (e *Engine) Timers() int { return len(e.timers) }

// Arm schedules (or reschedules) the timer to fire at absolute time at.
func (t *Timer) Arm(at Time) {
	e := t.eng
	if at < e.now {
		panic("sim: timer " + t.ev.name + " armed in the past")
	}
	e.seq++
	t.ev.at, t.ev.seq = at, e.seq
	if t.ev.index >= 0 {
		e.q.reschedule(&t.ev)
	} else {
		e.q.push(&t.ev)
	}
}

// ArmAfter schedules (or reschedules) the timer d nanoseconds from now.
func (t *Timer) ArmAfter(d Time) {
	if d < 0 {
		panic("sim: timer " + t.ev.name + " armed with negative delay")
	}
	t.Arm(t.eng.now + d)
}

// ArmKeyed schedules (or reschedules) the timer to fire at absolute
// time at with an explicit sequence key (see AtFnKeyed): the key, not
// the arming moment, decides ordering against other same-time events.
// The multi-host fault injector arms itself this way so a fault applies
// after every ordinary event at its instant in both the single-engine
// and the sharded runtime.
func (t *Timer) ArmKeyed(at Time, key uint64) {
	e := t.eng
	if at < e.now {
		panic("sim: timer " + t.ev.name + " armed in the past")
	}
	if key&SeqBand == 0 {
		panic("sim: timer " + t.ev.name + " armed with keyless sequence")
	}
	t.ev.at, t.ev.seq = at, key
	if t.ev.index >= 0 {
		e.q.reschedule(&t.ev)
	} else {
		e.q.push(&t.ev)
	}
}

// Stop disarms the timer if it is armed. The timer can be re-armed.
func (t *Timer) Stop() {
	if t.ev.index >= 0 {
		t.eng.q.remove(&t.ev)
	}
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.ev.index >= 0 }

// When returns the time the timer will fire (meaningful only if Armed).
func (t *Timer) When() Time { return t.ev.at }
