package sim

import "testing"

func TestTracerRecordsFiredEvents(t *testing.T) {
	e := New()
	tr := e.Attach(4)
	for i := 0; i < 3; i++ {
		e.After(Time(10*(i+1)), "ev", func() {})
	}
	e.Run(Second)
	if tr.Count() != 3 {
		t.Fatalf("Count = %d", tr.Count())
	}
	last := tr.Last(2)
	if len(last) != 2 || last[0].At != 20 || last[1].At != 30 {
		t.Fatalf("Last(2) = %v", last)
	}
}

func TestTracerRingWraps(t *testing.T) {
	e := New()
	tr := e.Attach(4)
	for i := 1; i <= 10; i++ {
		e.After(Time(i), "ev", func() {})
	}
	e.Run(Second)
	if tr.Count() != 10 {
		t.Fatalf("Count = %d", tr.Count())
	}
	last := tr.Last(4)
	if len(last) != 4 {
		t.Fatalf("Last(4) len = %d", len(last))
	}
	for i, want := range []Time{7, 8, 9, 10} {
		if last[i].At != want {
			t.Fatalf("Last = %v, want times 7..10", last)
		}
	}
	// Asking for more than capacity returns everything held, oldest first.
	if got := tr.Last(100); len(got) != 4 || got[0].At != 7 {
		t.Fatalf("Last(100) = %v", got)
	}
}

func TestTracerCancelledEventsNotRecorded(t *testing.T) {
	e := New()
	tr := e.Attach(8)
	ev := e.After(10, "cancelled", func() {})
	ev.Cancel()
	e.After(20, "kept", func() {})
	e.Run(Second)
	if tr.Count() != 1 {
		t.Fatalf("Count = %d, cancelled event recorded", tr.Count())
	}
}

func TestDetachStopsRecording(t *testing.T) {
	e := New()
	tr := e.Attach(8)
	e.After(10, "a", func() {})
	e.Run(15)
	e.Detach()
	e.After(10, "b", func() {})
	e.Run(Second)
	if tr.Count() != 1 {
		t.Fatalf("Count = %d after detach", tr.Count())
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	e := New()
	tr := e.Attach(0)
	if cap(tr.buf) != 1024 {
		t.Fatalf("default capacity = %d", cap(tr.buf))
	}
}

func TestTracerStep(t *testing.T) {
	e := New()
	tr := e.Attach(4)
	e.After(5, "s", func() {})
	e.Step()
	if tr.Count() != 1 {
		t.Fatal("Step not traced")
	}
}
