package sim

import "math/bits"

// hybridSched is a near/far event queue: a small binary min-heap (the
// "near run") holds every event whose tick falls in the wheel clock's
// current 64-tick window — exactly the events the timing wheel would
// file into its sorted level-0 lists — while the hierarchical wheel
// (sched_wheel.go) keeps everything farther out. The split pairs each
// structure with the access pattern it wins at:
//
//   - shallow schedule→fire traffic (a handful of events within a few
//     microseconds, the dominant pattern of a busy machine) stays in a
//     heap of a few dozen entries: O(log k) array sifts on hot cache
//     lines instead of the wheel's level-0 list walk;
//   - far timers (retransmit timeouts, coalescer delays, ticks) keep the
//     wheel's O(1) placement and never cost heap depth, preserving the
//     depth64/rto_churn wins that motivated the wheel.
//
// Ordering: near events live in the wheel-clock window [cur &^ 63,
// cur | 63]; the wheel holds only events in strictly later windows
// (level >= 1 slots and overflow — cascading into level 0 happens only
// inside pop, which immediately re-drains level 0 into the run). Ticks
// in different windows order the same way their timestamps do, so the
// run minimum is the global minimum whenever the run is non-empty, and
// exact (at, seq) order is preserved — the differential test proves the
// three queue implementations event-for-event identical.
//
// The wheel clock advances only on wheel pops, which happen only when
// the run is empty; a lagging clock is safe (placement distances are
// computed against a clock no later than the organic one) and keeps the
// wheel's own invariants intact without cascading on run pops.
//
// nearBase offsets run positions in Event.index so membership is
// disambiguated from wheel slot indices ([0, overflowIdx]) without
// another Event field.
const nearBase = overflowIdx + 1

type hybridSched struct {
	w   wheelSched
	run []*Event // binary min-heap on (at, seq); index = nearBase + pos
}

func (h *hybridSched) init(gshift uint) { h.w.init(gshift) }

func (h *hybridSched) len() int { return h.w.len() + len(h.run) }

// near reports whether tick t falls in the wheel clock's current
// level-0 window — the near-run membership rule.
func (h *hybridSched) near(t uint64) bool {
	return t>>wheelBits == h.w.cur>>wheelBits
}

func (h *hybridSched) push(ev *Event) {
	if h.near(h.w.tick(ev.at)) {
		h.runPush(ev)
		return
	}
	h.w.push(ev)
}

func (h *hybridSched) peek() *Event {
	if len(h.run) > 0 {
		return h.run[0]
	}
	return h.w.peek()
}

// pop removes ev — the event peek just returned. A wheel pop advances
// the wheel clock into ev's window, so whatever cascaded into level 0
// is promoted to the run immediately, restoring the invariant that the
// wheel holds only later-window events.
func (h *hybridSched) pop(ev *Event) {
	if ev.index >= nearBase {
		h.runPopMin()
		return
	}
	h.w.pop(ev)
	h.promote()
}

func (h *hybridSched) popAt(t Time) *Event {
	if len(h.run) > 0 {
		ev := h.run[0]
		if ev.at != t {
			return nil
		}
		h.runPopMin()
		return ev
	}
	// Engine batch dispatch never reaches this: after a pop at t the
	// run holds every remaining event in t's window. Interface-driven
	// callers (the differential test) may, so stay correct for them.
	ev := h.w.peek()
	if ev == nil || ev.at != t {
		return nil
	}
	h.w.pop(ev)
	h.promote()
	return ev
}

func (h *hybridSched) remove(ev *Event) {
	if ev.index >= nearBase {
		h.runRemoveAt(int(ev.index) - nearBase)
		ev.index = -1
		return
	}
	h.w.remove(ev)
}

// reschedule re-keys a queued event after its at/seq changed (Timer
// re-arm). The new key may move it across the near/far seam in either
// direction, so it is re-filed from scratch.
func (h *hybridSched) reschedule(ev *Event) {
	if ev.index >= nearBase {
		h.runRemoveAt(int(ev.index) - nearBase)
		ev.index = -1
	} else {
		h.w.remove(ev)
	}
	h.push(ev)
}

func (h *hybridSched) each(f func(*Event)) {
	for _, ev := range h.run {
		f(ev)
	}
	h.w.each(f)
}

func (h *hybridSched) reset(t Time) {
	for i := range h.run {
		h.run[i] = nil
	}
	h.run = h.run[:0]
	h.w.reset(t)
}

// promote drains the wheel's level-0 slots — events in the clock's
// current window — into the run. Each event is promoted at most once
// (it leaves the wheel for good), so the amortized cost per event is
// one heap push.
func (h *hybridSched) promote() {
	w := &h.w
	for w.occ[0] != 0 {
		s := bits.TrailingZeros64(w.occ[0])
		sent := &w.slots[0][s]
		for ev := sent.next; ev != sent; {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.count--
			h.runPush(ev)
			ev = next
		}
		sentinelInit(sent)
		w.occ[0] &^= 1 << uint(s)
	}
}

// --- near-run binary heap (heapSched with nearBase-offset indices) ---

func (h *hybridSched) runPush(ev *Event) {
	h.run = append(h.run, ev)
	h.runUp(len(h.run) - 1)
}

func (h *hybridSched) runPopMin() *Event {
	ev := h.run[0]
	last := len(h.run) - 1
	if last > 0 {
		h.run[0] = h.run[last]
		h.run[0].index = nearBase
	}
	h.run[last] = nil
	h.run = h.run[:last]
	if last > 1 {
		h.runDown(0)
	}
	ev.index = -1
	return ev
}

func (h *hybridSched) runRemoveAt(i int) {
	last := len(h.run) - 1
	if i != last {
		h.run[i] = h.run[last]
		h.run[i].index = int32(nearBase + i)
	}
	h.run[last] = nil
	h.run = h.run[:last]
	if i < last {
		if !h.runDown(i) {
			h.runUp(i)
		}
	}
}

func (h *hybridSched) runUp(i int) {
	ev := h.run[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.run[parent]
		if !eventLess(ev, p) {
			break
		}
		h.run[i] = p
		p.index = int32(nearBase + i)
		i = parent
	}
	h.run[i] = ev
	ev.index = int32(nearBase + i)
}

// runDown reports whether the event moved.
func (h *hybridSched) runDown(i int) bool {
	ev := h.run[i]
	n := len(h.run)
	start := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h.run[r], h.run[l]) {
			m = r
		}
		if !eventLess(h.run[m], ev) {
			break
		}
		h.run[i] = h.run[m]
		h.run[i].index = int32(nearBase + i)
		i = m
	}
	h.run[i] = ev
	ev.index = int32(nearBase + i)
	return i > start
}
