package sim

import (
	"fmt"
	"sort"
)

// EventRecord is one pending event in a checkpoint: its exact queue key
// (at, seq), its trace name, and its callback identity — either a bound
// callback ID (pooled one-shot events) or the owning timer's registry
// index (persistent timer events).
type EventRecord struct {
	At    Time
	Seq   uint64
	Name  string
	Fn    int32 // bound-callback ID; 0 for timer events and nil callbacks
	Timer int32 // timer registry index, or -1 for pooled events
}

// EngineState is the engine's full checkpoint: clock, sequence counter,
// fired-event count, every pending event, and the registry sizes the
// restoring engine is verified against.
type EngineState struct {
	Now    Time
	Seq    uint64
	Fired  uint64
	Binds  int
	Timers int
	Events []EventRecord
}

// Snapshot captures the engine's state. It fails if any pending event
// carries a raw (unregistered) callback — such an event has no portable
// identity; see RawFn.
func (e *Engine) Snapshot() (EngineState, error) {
	s := EngineState{
		Now:    e.now,
		Seq:    e.seq,
		Fired:  e.fired,
		Binds:  len(e.binds),
		Timers: len(e.timers),
		Events: make([]EventRecord, 0, e.q.len()),
	}
	var err error
	e.q.each(func(ev *Event) {
		rec := EventRecord{At: ev.at, Seq: ev.seq, Name: ev.name, Timer: -1}
		if ev.timer {
			rec.Timer = ev.tm
		} else {
			if ev.fnID == rawFnID && err == nil {
				err = fmt.Errorf("sim: pending event %q has an unregistered callback", ev.name)
			}
			rec.Fn = ev.fnID
		}
		s.Events = append(s.Events, rec)
	})
	if err != nil {
		return EngineState{}, err
	}
	// The queue walk order is implementation-defined (wheel slots vs
	// heap layout); sort by the total event order so the same machine
	// state always snapshots identically.
	sort.Slice(s.Events, func(i, j int) bool {
		return s.Events[i].At < s.Events[j].At ||
			(s.Events[i].At == s.Events[j].At && s.Events[i].Seq < s.Events[j].Seq)
	})
	return s, nil
}

// Restore replaces the engine's clock, counters and event queue with a
// checkpoint's. The engine must come from the same deterministic
// construction as the snapshot donor (same config ⇒ same bind and
// timer registries); Restore verifies the registry sizes and resolves
// every recorded callback before touching the queue.
func (e *Engine) Restore(s EngineState) error {
	if e.running {
		return fmt.Errorf("sim: Restore during Run")
	}
	if len(e.binds) != s.Binds || len(e.timers) != s.Timers {
		return fmt.Errorf("sim: registry mismatch: engine has %d binds/%d timers, snapshot %d/%d",
			len(e.binds), len(e.timers), s.Binds, s.Timers)
	}
	fns := make([]Fn, len(s.Events))
	for i, rec := range s.Events {
		if rec.Timer >= 0 {
			if int(rec.Timer) >= len(e.timers) {
				return fmt.Errorf("sim: snapshot references timer %d of %d", rec.Timer, len(e.timers))
			}
			continue
		}
		fn, err := e.ResolveFn(rec.Fn)
		if err != nil {
			return fmt.Errorf("sim: event %q: %w", rec.Name, err)
		}
		fns[i] = fn
	}

	// Detach whatever is queued (pooled events are dropped for the
	// collector; timer events just become unarmed), then rebuild the
	// queue with the snapshot's exact (at, seq) keys. The walk collects
	// before unlinking: each traverses the very pointers being cleared.
	var queued []*Event
	e.q.each(func(ev *Event) { queued = append(queued, ev) })
	for _, ev := range queued {
		ev.next, ev.prev, ev.index = nil, nil, -1
	}
	e.q.reset(s.Now)
	e.now, e.seq, e.fired = s.Now, s.Seq, s.Fired
	for i, rec := range s.Events {
		if rec.Timer >= 0 {
			t := e.timers[rec.Timer]
			t.ev.at, t.ev.seq = rec.At, rec.Seq
			e.q.push(&t.ev)
			continue
		}
		ev := e.alloc()
		ev.at, ev.seq, ev.name, ev.fn, ev.fnID = rec.At, rec.Seq, rec.Name, fns[i].f, fns[i].id
		e.q.push(ev)
	}
	return nil
}
