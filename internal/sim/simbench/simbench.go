// Package simbench holds the engine micro-benchmark bodies in one
// place, shared by `go test -bench` (internal/sim and the repository
// root) and by cmd/cdnabench, so the rows committed to BENCH_sim.json
// can never drift from the benchmarks the docs point readers at. It is
// a separate package so internal/sim itself never imports testing.
//
// Reference point: the seed engine (heap-allocated events through
// container/heap) measured ~81 ns and 1 alloc per schedule→fire on the
// reference builder; the pooled core's contract is 0 allocs/op and at
// least 2× the events/sec.
package simbench

import (
	"testing"

	"cdna/internal/sim"
)

// ScheduleFire is the canonical hot loop: schedule one event with a
// pre-bound callback, fire it, recycle it.
func ScheduleFire(b *testing.B) {
	e := sim.New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(10, "ev", fn)
		e.Step()
	}
}

// ScheduleFireClosure is the same loop with a fresh capturing closure
// per event — the pattern the model layers used before the
// zero-allocation refactor — kept as the comparison row.
func ScheduleFireClosure(b *testing.B) {
	e := sim.New()
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(10, "ev", func() { n += i })
		e.Step()
	}
}

// ScheduleFireDepth64 exercises the heap at a realistic standing depth
// (a loaded machine keeps tens of events queued).
func ScheduleFireDepth64(b *testing.B) {
	e := sim.New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(sim.Time(1000+i), "standing", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(10, "ev", fn)
		e.Step()
	}
}

// TimerRearm measures the re-arm-in-place path used by coalescers,
// retransmit timers, and periodic ticks.
func TimerRearm(b *testing.B) {
	e := sim.New()
	var tm *sim.Timer
	tm = e.NewTimer("tick", func() { tm.ArmAfter(10) })
	tm.ArmAfter(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// Cancel measures schedule→cancel→recycle (the rto-style churn pattern
// before timers; still used for one-shot aborts).
func Cancel(b *testing.B) {
	e := sim.New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := e.After(10, "ev", fn)
		h.Cancel()
	}
}

// CancelHeavy measures cancellation under a standing load: 64 queued
// events spread over the near future while one-shot events are
// scheduled and aborted. The heap pays an O(log n) re-sift per cancel
// here; the wheel unlinks in O(1).
func CancelHeavy(b *testing.B) {
	e := sim.New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(sim.Time(100_000+i*1000), "standing", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.After(50, "ev", fn)
		h.Cancel()
	}
}

// RTOChurn is the retransmit-timeout pattern that dominates transport
// timer traffic: per-connection long-range timers re-armed ~200 ms into
// the future on every acknowledgement and (almost) never firing. 16
// connections keep a realistic standing population queued; each op
// re-keys a timer far from the clock — a deep sift for the heap, an
// O(1) radix re-file for the wheel.
func RTOChurn(b *testing.B) {
	e := sim.New()
	const conns = 16
	for i := 0; i < conns; i++ {
		rto := e.NewTimer("rto", func() {})
		var ack *sim.Timer
		jitter := sim.Time(i) * sim.Microsecond / 4
		ack = e.NewTimer("ack", func() {
			rto.ArmAfter(200*sim.Millisecond + jitter)
			ack.ArmAfter(10*sim.Microsecond + jitter)
		})
		ack.ArmAfter(10*sim.Microsecond + jitter)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
