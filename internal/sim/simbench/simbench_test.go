package simbench

import "testing"

// Standard-runner wrappers so `go test -bench` can drive the shared
// benchmark bodies directly (cdnabench runs the same functions through
// testing.Benchmark). Compare queue implementations with
// `go test -bench . [-tags simwheel|simheap] ./internal/sim/simbench/`.

func BenchmarkScheduleFire(b *testing.B)        { ScheduleFire(b) }
func BenchmarkScheduleFireClosure(b *testing.B) { ScheduleFireClosure(b) }
func BenchmarkScheduleFireDepth64(b *testing.B) { ScheduleFireDepth64(b) }
func BenchmarkTimerRearm(b *testing.B)          { TimerRearm(b) }
func BenchmarkCancel(b *testing.B)              { Cancel(b) }
func BenchmarkCancelHeavy(b *testing.B)         { CancelHeavy(b) }
func BenchmarkRTOChurn(b *testing.B)            { RTOChurn(b) }
