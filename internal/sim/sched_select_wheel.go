//go:build !simheap

package sim

// queueImpl is the event queue the Engine embeds — a concrete type, so
// every queue operation in the hot path is a static call with no
// interface dispatch. The default build uses the timing wheel; build
// with -tags simheap to select the reference binary heap instead (the
// two are proven order-identical by TestSchedulerDifferential).
type queueImpl = wheelSched

// SchedulerName identifies the compiled-in event queue; cdnabench
// records it in BENCH_sim.json so wheel and heap runs are
// distinguishable artifacts.
const SchedulerName = "wheel"
