//go:build simwheel

package sim

// queueImpl is the event queue the Engine embeds — a concrete type, so
// every queue operation in the hot path is a static call with no
// interface dispatch. Build with -tags simwheel to select the pure
// timing wheel (the default build fronts it with the hybrid near run,
// see sched_select_hybrid.go); -tags simheap selects the reference
// binary heap (all three are proven order-identical by
// TestSchedulerDifferential).
type queueImpl = wheelSched

// SchedulerName identifies the compiled-in event queue; cdnabench
// records it in BENCH_sim.json so wheel and heap runs are
// distinguishable artifacts.
const SchedulerName = "wheel"
