package sim

import (
	"fmt"
	"testing"
)

// --- Randomized differential test: the timing wheel must replay any
// schedule / fire / cancel / timer-re-arm sequence in exactly the order
// the reference heap produces. This is the equivalence proof behind
// swapping the engine's queue implementation. ---

// schedEvent is one logical event mirrored across both queues.
type schedEvent struct {
	id   int
	heap *Event
	whl  *Event
}

func TestSchedulerDifferential(t *testing.T) {
	for _, gshift := range []uint{0, 5, 12} {
		gshift := gshift
		t.Run(fmt.Sprintf("gshift=%d", gshift), func(t *testing.T) {
			testSchedulerDifferential(t, gshift)
		})
	}
}

func testSchedulerDifferential(t *testing.T, gshift uint) {
	rng := NewRNG(20260729 + uint64(gshift))
	h := &heapSched{}
	w := &wheelSched{}
	h.init(gshift)
	w.init(gshift)

	// Delay mix spanning every wheel level plus the overflow list
	// (64^6 ticks at gshift 0 is ~68.7 simulated seconds).
	delay := func() Time {
		switch rng.Intn(10) {
		case 0:
			return 0 // same timestamp as now
		case 1, 2, 3:
			return Time(rng.Intn(100)) // level 0 neighbourhood
		case 4, 5:
			return Time(rng.Intn(100_000)) // levels 1-2
		case 6, 7:
			return Time(rng.Intn(50_000_000)) // levels 3-4
		case 8:
			return Time(rng.Intn(2_000_000_000)) // level 5 / seconds
		default:
			return Time(100_000_000_000) + Time(rng.Intn(1_000_000_000)) // overflow
		}
	}

	var (
		now  Time
		seq  uint64
		next int
		live []*schedEvent
	)
	check := func(op string) (hev, wev *Event) {
		hev, wev = h.peek(), w.peek()
		switch {
		case (hev == nil) != (wev == nil):
			t.Fatalf("%s: heap peek %v vs wheel peek %v (heap len %d, wheel len %d)",
				op, hev, wev, h.len(), w.len())
		case hev == nil:
			return nil, nil
		case hev.at != wev.at || hev.seq != wev.seq || hev.name != wev.name:
			t.Fatalf("%s: heap min (%d,%d,%s) != wheel min (%d,%d,%s)",
				op, hev.at, hev.seq, hev.name, wev.at, wev.seq, wev.name)
		}
		return hev, wev
	}
	popMin := func(op string) bool {
		hev, wev := check(op)
		if hev == nil {
			return false
		}
		h.pop(hev)
		w.pop(wev)
		now = hev.at
		for i, ev := range live {
			if ev.heap == hev {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
		return true
	}

	const ops = 20000
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // schedule
			at := now + delay()
			seq++
			se := &schedEvent{id: next}
			name := fmt.Sprint(next)
			next++
			se.heap = &Event{at: at, seq: seq, name: name, index: -1}
			se.whl = &Event{at: at, seq: seq, name: name, index: -1}
			h.push(se.heap)
			w.push(se.whl)
			live = append(live, se)
		case 4, 5: // fire
			popMin("pop")
		case 6: // fire + same-timestamp batch drain through popAt
			if popMin("pop") {
				for {
					hev, wev := h.popAt(now), w.popAt(now)
					if (hev == nil) != (wev == nil) {
						t.Fatalf("popAt(%d): heap %v vs wheel %v", now, hev, wev)
					}
					if hev == nil {
						break
					}
					if hev.at != wev.at || hev.seq != wev.seq || hev.name != wev.name {
						t.Fatalf("popAt(%d): heap (%d,%d,%s) != wheel (%d,%d,%s)",
							now, hev.at, hev.seq, hev.name, wev.at, wev.seq, wev.name)
					}
					for i, ev := range live {
						if ev.heap == hev {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
		case 7: // cancel
			if len(live) > 0 {
				j := rng.Intn(len(live))
				se := live[j]
				h.remove(se.heap)
				w.remove(se.whl)
				live = append(live[:j], live[j+1:]...)
			}
		case 8: // timer re-arm: new (at, seq) re-keyed in place
			if len(live) > 0 {
				se := live[rng.Intn(len(live))]
				at := now + delay()
				seq++
				se.heap.at, se.heap.seq = at, seq
				se.whl.at, se.whl.seq = at, seq
				h.reschedule(se.heap)
				w.reschedule(se.whl)
			}
		case 9: // consistency probe
			check("probe")
			if h.len() != w.len() {
				t.Fatalf("len mismatch: heap %d wheel %d", h.len(), w.len())
			}
		}
	}
	// Drain completely: the full remaining fire order must agree.
	for popMin("drain") {
	}
	if h.len() != 0 || w.len() != 0 {
		t.Fatalf("queues not empty after drain: heap %d wheel %d", h.len(), w.len())
	}
}

// --- Wheel edge cases through the public Engine API (the default build
// runs these on the wheel; -tags simheap runs them on the heap, where
// they must hold just the same). ---

// TestWheelCascadeBoundary schedules events exactly at level rollovers
// (64^l ticks) and one tick either side: the points where an event's
// wheel level and slot digits change, and where a mis-derived level
// would file it into a stale slot.
func TestWheelCascadeBoundary(t *testing.T) {
	boundaries := []Time{
		wheelSlots,                           // level 0→1 rollover
		wheelSlots * wheelSlots,              // level 1→2
		wheelSlots * wheelSlots * wheelSlots, // level 2→3
	}
	e := New()
	var want []Time
	for _, b := range boundaries {
		for _, at := range []Time{b - 1, b, b + 1} {
			want = append(want, at)
		}
	}
	var got []Time
	for _, at := range want {
		e.At(at, "edge", func() { got = append(got, e.Now()) })
	}
	e.Run(boundaries[len(boundaries)-1] * 2)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i, at := range want {
		if got[i] != at {
			t.Fatalf("firing %d at %v, want %v (all: %v)", i, got[i], at, got)
		}
	}
}

// TestWheelFarFutureOverflow exercises the overflow list: events beyond
// the wheel horizon (64^6 ns ≈ 68.7 s at 1 ns granularity) in two
// different top-level epochs, interleaved with near events. The far
// events must re-file into the wheel when the clock crosses into their
// epoch and still fire in exact order.
func TestWheelFarFutureOverflow(t *testing.T) {
	e := New()
	const horizon = Time(1) << (wheelBits * wheelLevels) // in ns at gshift 0
	ats := []Time{
		Second,             // in-wheel
		horizon + Second,   // first overflow epoch
		2*horizon + Second, // second overflow epoch
		2*horizon + Second + 1,
	}
	var got []Time
	for _, at := range ats {
		e.At(at, "far", func() { got = append(got, e.Now()) })
	}
	// A near chain keeps the wheel busy while the far events wait.
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(10*Millisecond, "tick", tick)
		}
	}
	e.After(10*Millisecond, "tick", tick)
	e.Run(3 * horizon)
	if len(got) != len(ats) {
		t.Fatalf("fired %d far events, want %d", len(got), len(ats))
	}
	for i, at := range ats {
		if got[i] != at {
			t.Fatalf("far firing %d at %v, want %v", i, got[i], at)
		}
	}
	if count != 100 {
		t.Fatalf("near chain fired %d, want 100", count)
	}
}

// TestWheelCancelAfterCascade cancels an event that has been cascaded
// out of its original higher-level slot but has not fired: the Handle's
// recorded position must track the event through relocation.
func TestWheelCancelAfterCascade(t *testing.T) {
	e := New()
	var got []Time
	rec := func() { got = append(got, e.Now()) }
	// Ticks 70, 100, 101 share level-1 slot 1 (all have digit 1 at
	// level 1 from time 0). Firing 70 advances the clock into the slot
	// and cascades 100 and 101 down to level 0.
	e.At(70, "a", rec)
	h := e.At(100, "b", func() { t.Fatal("cancelled event fired") })
	e.At(101, "c", rec)
	e.Run(71) // fire 70 only; 100 and 101 have cascaded
	if !h.Scheduled() {
		t.Fatal("cascaded event lost its scheduled state")
	}
	h.Cancel()
	if h.Scheduled() || e.Pending() != 1 {
		t.Fatalf("after cancel: Scheduled=%v Pending=%d", h.Scheduled(), e.Pending())
	}
	e.Run(Second)
	if len(got) != 2 || got[0] != 70 || got[1] != 101 {
		t.Fatalf("fired %v, want [70 101]", got)
	}
}

// TestWheelTimerRearmCurrentSlot re-arms a timer to the current
// timestamp from inside a callback: the re-arm lands in the slot the
// engine is draining right now, and must fire in this batch, after the
// events already queued at the same instant (fresh sequence number).
func TestWheelTimerRearmCurrentSlot(t *testing.T) {
	e := New()
	var order []string
	var tm *Timer
	rearmed := false
	tm = e.NewTimer("tm", func() {
		order = append(order, "timer")
		if !rearmed {
			rearmed = true
			tm.Arm(e.Now()) // same timestamp, same slot, mid-drain
		}
	})
	e.At(50, "first", func() { order = append(order, "first") })
	tm.Arm(50)
	e.At(50, "after-timer", func() { order = append(order, "after") })
	e.Run(100)
	want := []string{"first", "timer", "after", "timer"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("now=%v pending=%d", e.Now(), e.Pending())
	}
}

// TestWheelCoarseGranularityOrder verifies that a coarse wheel
// granularity (many distinct timestamps per slot) cannot perturb
// ordering: same-slot events with different timestamps fire at their
// own times in exact (time, sequence) order.
func TestWheelCoarseGranularityOrder(t *testing.T) {
	e := NewWithResolution(4096) // gshift 12: 4096 ns per level-0 slot
	rng := NewRNG(99)
	var got []Time
	for i := 0; i < 500; i++ {
		e.At(Time(rng.Intn(3_000_000)), "ev", func() { got = append(got, e.Now()) })
	}
	e.Run(4 * Millisecond)
	if len(got) != 500 {
		t.Fatalf("fired %d, want 500", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

// TestEngineSameTimestampBatchWithInsertions: callbacks scheduling new
// events at the executing timestamp take part in the same-timestamp
// batch drain, in sequence order, including across Step/Run styles.
func TestEngineSameTimestampBatchWithInsertions(t *testing.T) {
	e := New()
	var order []int
	e.At(10, "a", func() {
		order = append(order, 1)
		e.At(10, "c", func() { order = append(order, 3) })
	})
	e.At(10, "b", func() { order = append(order, 2) })
	e.At(20, "d", func() { order = append(order, 4) })
	e.Run(100)
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
