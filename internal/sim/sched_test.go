package sim

import (
	"fmt"
	"testing"
)

// --- Randomized differential test: the timing wheel and the hybrid
// near/far queue must replay any schedule / fire / cancel / timer-re-arm
// sequence in exactly the order the reference heap produces. This is the
// equivalence proof behind swapping the engine's queue implementation:
// a three-way heap-vs-wheel-vs-hybrid replay. ---

// schedEvent is one logical event mirrored across every queue: evs[i]
// is its copy in the i'th implementation (heap first — the oracle).
type schedEvent struct {
	id  int
	evs []*Event
}

func TestSchedulerDifferential(t *testing.T) {
	for _, gshift := range []uint{0, 5, 12} {
		gshift := gshift
		t.Run(fmt.Sprintf("gshift=%d", gshift), func(t *testing.T) {
			testSchedulerDifferential(t, gshift)
		})
	}
}

func testSchedulerDifferential(t *testing.T, gshift uint) {
	rng := NewRNG(20260729 + uint64(gshift))
	impls := []scheduler{&heapSched{}, &wheelSched{}, &hybridSched{}}
	names := []string{"heap", "wheel", "hybrid"}
	h := impls[0]
	for _, q := range impls {
		q.init(gshift)
	}

	// Delay mix spanning every wheel level plus the overflow list
	// (64^6 ticks at gshift 0 is ~68.7 simulated seconds).
	delay := func() Time {
		switch rng.Intn(10) {
		case 0:
			return 0 // same timestamp as now
		case 1, 2, 3:
			return Time(rng.Intn(100)) // level 0 neighbourhood
		case 4, 5:
			return Time(rng.Intn(100_000)) // levels 1-2
		case 6, 7:
			return Time(rng.Intn(50_000_000)) // levels 3-4
		case 8:
			return Time(rng.Intn(2_000_000_000)) // level 5 / seconds
		default:
			return Time(100_000_000_000) + Time(rng.Intn(1_000_000_000)) // overflow
		}
	}

	var (
		now  Time
		seq  uint64
		next int
		live []*schedEvent
	)
	check := func(op string) []*Event {
		mins := make([]*Event, len(impls))
		for i, q := range impls {
			mins[i] = q.peek()
		}
		hev := mins[0]
		for i, ev := range mins[1:] {
			switch {
			case (hev == nil) != (ev == nil):
				t.Fatalf("%s: heap peek %v vs %s peek %v (heap len %d, %s len %d)",
					op, hev, names[i+1], ev, h.len(), names[i+1], impls[i+1].len())
			case hev == nil:
			case hev.at != ev.at || hev.seq != ev.seq || hev.name != ev.name:
				t.Fatalf("%s: heap min (%d,%d,%s) != %s min (%d,%d,%s)",
					op, hev.at, hev.seq, hev.name, names[i+1], ev.at, ev.seq, ev.name)
			}
		}
		if hev == nil {
			return nil
		}
		return mins
	}
	popMin := func(op string) bool {
		mins := check(op)
		if mins == nil {
			return false
		}
		for i, q := range impls {
			q.pop(mins[i])
		}
		now = mins[0].at
		for i, ev := range live {
			if ev.evs[0] == mins[0] {
				live = append(live[:i], live[i+1:]...)
				break
			}
		}
		return true
	}

	const ops = 20000
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // schedule
			at := now + delay()
			seq++
			se := &schedEvent{id: next, evs: make([]*Event, len(impls))}
			name := fmt.Sprint(next)
			next++
			for j, q := range impls {
				se.evs[j] = &Event{at: at, seq: seq, name: name, index: -1}
				q.push(se.evs[j])
			}
			live = append(live, se)
		case 4, 5: // fire
			popMin("pop")
		case 6: // fire + same-timestamp batch drain through popAt
			if popMin("pop") {
				for {
					got := make([]*Event, len(impls))
					for j, q := range impls {
						got[j] = q.popAt(now)
					}
					hev := got[0]
					for j, ev := range got[1:] {
						if (hev == nil) != (ev == nil) {
							t.Fatalf("popAt(%d): heap %v vs %s %v", now, hev, names[j+1], ev)
						}
						if hev != nil && (hev.at != ev.at || hev.seq != ev.seq || hev.name != ev.name) {
							t.Fatalf("popAt(%d): heap (%d,%d,%s) != %s (%d,%d,%s)",
								now, hev.at, hev.seq, hev.name, names[j+1], ev.at, ev.seq, ev.name)
						}
					}
					if hev == nil {
						break
					}
					for i, ev := range live {
						if ev.evs[0] == hev {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
		case 7: // cancel
			if len(live) > 0 {
				j := rng.Intn(len(live))
				se := live[j]
				for k, q := range impls {
					q.remove(se.evs[k])
				}
				live = append(live[:j], live[j+1:]...)
			}
		case 8: // timer re-arm: new (at, seq) re-keyed in place
			if len(live) > 0 {
				se := live[rng.Intn(len(live))]
				at := now + delay()
				seq++
				for k, q := range impls {
					se.evs[k].at, se.evs[k].seq = at, seq
					q.reschedule(se.evs[k])
				}
			}
		case 9: // consistency probe
			check("probe")
			for j, q := range impls[1:] {
				if h.len() != q.len() {
					t.Fatalf("len mismatch: heap %d %s %d", h.len(), names[j+1], q.len())
				}
			}
		}
	}
	// Drain completely: the full remaining fire order must agree.
	for popMin("drain") {
	}
	for j, q := range impls {
		if q.len() != 0 {
			t.Fatalf("%s not empty after drain: %d", names[j], q.len())
		}
	}
}

// --- Wheel edge cases through the public Engine API (the default build
// runs these on the wheel; -tags simheap runs them on the heap, where
// they must hold just the same). ---

// TestWheelCascadeBoundary schedules events exactly at level rollovers
// (64^l ticks) and one tick either side: the points where an event's
// wheel level and slot digits change, and where a mis-derived level
// would file it into a stale slot.
func TestWheelCascadeBoundary(t *testing.T) {
	boundaries := []Time{
		wheelSlots,                           // level 0→1 rollover
		wheelSlots * wheelSlots,              // level 1→2
		wheelSlots * wheelSlots * wheelSlots, // level 2→3
	}
	e := New()
	var want []Time
	for _, b := range boundaries {
		for _, at := range []Time{b - 1, b, b + 1} {
			want = append(want, at)
		}
	}
	var got []Time
	for _, at := range want {
		e.At(at, "edge", func() { got = append(got, e.Now()) })
	}
	e.Run(boundaries[len(boundaries)-1] * 2)
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i, at := range want {
		if got[i] != at {
			t.Fatalf("firing %d at %v, want %v (all: %v)", i, got[i], at, got)
		}
	}
}

// TestWheelFarFutureOverflow exercises the overflow list: events beyond
// the wheel horizon (64^6 ns ≈ 68.7 s at 1 ns granularity) in two
// different top-level epochs, interleaved with near events. The far
// events must re-file into the wheel when the clock crosses into their
// epoch and still fire in exact order.
func TestWheelFarFutureOverflow(t *testing.T) {
	e := New()
	const horizon = Time(1) << (wheelBits * wheelLevels) // in ns at gshift 0
	ats := []Time{
		Second,             // in-wheel
		horizon + Second,   // first overflow epoch
		2*horizon + Second, // second overflow epoch
		2*horizon + Second + 1,
	}
	var got []Time
	for _, at := range ats {
		e.At(at, "far", func() { got = append(got, e.Now()) })
	}
	// A near chain keeps the wheel busy while the far events wait.
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(10*Millisecond, "tick", tick)
		}
	}
	e.After(10*Millisecond, "tick", tick)
	e.Run(3 * horizon)
	if len(got) != len(ats) {
		t.Fatalf("fired %d far events, want %d", len(got), len(ats))
	}
	for i, at := range ats {
		if got[i] != at {
			t.Fatalf("far firing %d at %v, want %v", i, got[i], at)
		}
	}
	if count != 100 {
		t.Fatalf("near chain fired %d, want 100", count)
	}
}

// TestWheelCancelAfterCascade cancels an event that has been cascaded
// out of its original higher-level slot but has not fired: the Handle's
// recorded position must track the event through relocation.
func TestWheelCancelAfterCascade(t *testing.T) {
	e := New()
	var got []Time
	rec := func() { got = append(got, e.Now()) }
	// Ticks 70, 100, 101 share level-1 slot 1 (all have digit 1 at
	// level 1 from time 0). Firing 70 advances the clock into the slot
	// and cascades 100 and 101 down to level 0.
	e.At(70, "a", rec)
	h := e.At(100, "b", func() { t.Fatal("cancelled event fired") })
	e.At(101, "c", rec)
	e.Run(71) // fire 70 only; 100 and 101 have cascaded
	if !h.Scheduled() {
		t.Fatal("cascaded event lost its scheduled state")
	}
	h.Cancel()
	if h.Scheduled() || e.Pending() != 1 {
		t.Fatalf("after cancel: Scheduled=%v Pending=%d", h.Scheduled(), e.Pending())
	}
	e.Run(Second)
	if len(got) != 2 || got[0] != 70 || got[1] != 101 {
		t.Fatalf("fired %v, want [70 101]", got)
	}
}

// TestWheelTimerRearmCurrentSlot re-arms a timer to the current
// timestamp from inside a callback: the re-arm lands in the slot the
// engine is draining right now, and must fire in this batch, after the
// events already queued at the same instant (fresh sequence number).
func TestWheelTimerRearmCurrentSlot(t *testing.T) {
	e := New()
	var order []string
	var tm *Timer
	rearmed := false
	tm = e.NewTimer("tm", func() {
		order = append(order, "timer")
		if !rearmed {
			rearmed = true
			tm.Arm(e.Now()) // same timestamp, same slot, mid-drain
		}
	})
	e.At(50, "first", func() { order = append(order, "first") })
	tm.Arm(50)
	e.At(50, "after-timer", func() { order = append(order, "after") })
	e.Run(100)
	want := []string{"first", "timer", "after", "timer"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 100 || e.Pending() != 0 {
		t.Fatalf("now=%v pending=%d", e.Now(), e.Pending())
	}
}

// TestWheelCoarseGranularityOrder verifies that a coarse wheel
// granularity (many distinct timestamps per slot) cannot perturb
// ordering: same-slot events with different timestamps fire at their
// own times in exact (time, sequence) order.
func TestWheelCoarseGranularityOrder(t *testing.T) {
	e := NewWithResolution(4096) // gshift 12: 4096 ns per level-0 slot
	rng := NewRNG(99)
	var got []Time
	for i := 0; i < 500; i++ {
		e.At(Time(rng.Intn(3_000_000)), "ev", func() { got = append(got, e.Now()) })
	}
	e.Run(4 * Millisecond)
	if len(got) != 500 {
		t.Fatalf("fired %d, want 500", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

// TestEngineSameTimestampBatchWithInsertions: callbacks scheduling new
// events at the executing timestamp take part in the same-timestamp
// batch drain, in sequence order, including across Step/Run styles.
func TestEngineSameTimestampBatchWithInsertions(t *testing.T) {
	e := New()
	var order []int
	e.At(10, "a", func() {
		order = append(order, 1)
		e.At(10, "c", func() { order = append(order, 3) })
	})
	e.At(10, "b", func() { order = append(order, 2) })
	e.At(20, "d", func() { order = append(order, 4) })
	e.Run(100)
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// --- Hybrid near/far seam edge cases (driven on the concrete type so
// they hold under any build tag). ---

// TestHybridHorizonBoundary places events exactly at the near/far
// boundary: the last tick of the wheel clock's current window is near,
// the first tick of the next window is far, and popping across the
// boundary promotes the new window into the run.
func TestHybridHorizonBoundary(t *testing.T) {
	h := &hybridSched{}
	h.init(0)
	mk := func(at Time, seq uint64) *Event {
		ev := &Event{at: at, seq: seq, name: "ev", index: -1}
		h.push(ev)
		return ev
	}
	mk(0, 1)
	last := mk(wheelSlots-1, 2) // tick 63: last near tick of window 0
	mk(wheelSlots, 3)           // tick 64: first far tick (window 1)
	mk(wheelSlots+1, 4)
	if len(h.run) != 2 || h.w.len() != 2 {
		t.Fatalf("near/far split: run %d wheel %d, want 2/2", len(h.run), h.w.len())
	}
	if last.index < nearBase {
		t.Fatalf("boundary-1 event not in near run (index %d)", last.index)
	}
	var got []Time
	for {
		ev := h.peek()
		if ev == nil {
			break
		}
		h.pop(ev)
		got = append(got, ev.at)
		if ev.at == wheelSlots && len(h.run) != 1 {
			// Popping into window 1 must promote tick 65 to the run.
			t.Fatalf("after boundary pop: run %d, want 1", len(h.run))
		}
	}
	want := []Time{0, wheelSlots - 1, wheelSlots, wheelSlots + 1}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
}

// TestHybridCancelRearmPromoted cancels and re-arms events that were
// promoted into the near run by a cascade: membership bookkeeping must
// track an event across far→near promotion and near↔far re-arms.
func TestHybridCancelRearmPromoted(t *testing.T) {
	h := &hybridSched{}
	h.init(0)
	a := &Event{at: 70, seq: 1, name: "a", index: -1}
	b := &Event{at: 100, seq: 2, name: "b", index: -1}
	c := &Event{at: 101, seq: 3, name: "c", index: -1}
	for _, ev := range []*Event{a, b, c} {
		h.push(ev)
	}
	// Ticks 70, 100, 101 are all in window 1 (far from window 0): the
	// run starts empty.
	if len(h.run) != 0 || h.w.len() != 3 {
		t.Fatalf("initial split: run %d wheel %d, want 0/3", len(h.run), h.w.len())
	}
	if ev := h.peek(); ev != a {
		t.Fatalf("peek %v, want a", ev)
	}
	h.pop(a)
	// Popping 70 advanced the clock into window 1: 100 and 101 must now
	// be promoted into the run.
	if len(h.run) != 2 || h.w.len() != 0 {
		t.Fatalf("after promote: run %d wheel %d, want 2/0", len(h.run), h.w.len())
	}
	if b.index < nearBase || c.index < nearBase {
		t.Fatalf("promoted events not indexed into run: b=%d c=%d", b.index, c.index)
	}
	// Cancel the promoted b.
	h.remove(b)
	if b.index != -1 || h.len() != 1 || h.peek() != c {
		t.Fatalf("after cancel: index=%d len=%d peek=%v", b.index, h.len(), h.peek())
	}
	// Re-arm c far (near→far): it must leave the run for the wheel.
	c.at, c.seq = 200, 4
	h.reschedule(c)
	if len(h.run) != 0 || h.w.len() != 1 || h.peek() != c {
		t.Fatalf("after far re-arm: run %d wheel %d peek %v", len(h.run), h.w.len(), h.peek())
	}
	// Re-arm c near again (far→near).
	c.at, c.seq = 75, 5
	h.reschedule(c)
	if len(h.run) != 1 || h.w.len() != 0 {
		t.Fatalf("after near re-arm: run %d wheel %d", len(h.run), h.w.len())
	}
	h.pop(h.peek())
	if h.len() != 0 {
		t.Fatalf("len %d after draining", h.len())
	}
}
