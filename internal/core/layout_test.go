package core

// §3.4: "This commonality should make it possible to generalize the
// mechanisms within the hypervisor by having the NIC notify the
// hypervisor of its preferred format." These tests run the protection
// engine against a foreign NIC's descriptor layout — different size,
// different field offsets — and verify that validation, sequence
// stamping and NIC-side checking all work without the hypervisor
// interpreting the flags.

import (
	"testing"

	"cdna/internal/mem"
	"cdna/internal/ring"
)

// vendorLayout is a hypothetical third-party NIC's 24-byte descriptor:
// flags first, then length, a vendor-private field (opaque), the
// address, and the sequence number at the tail.
var vendorLayout = ring.Layout{Size: 24, FlagsOff: 0, LenOff: 2, AddrOff: 8, SeqOff: 20}

func TestGenericLayoutThroughProtection(t *testing.T) {
	m := mem.New()
	base := m.AllocOne(guestA).Base()
	r, err := ring.New("vendor.tx", vendorLayout, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProtection(m, ModeHypercall)
	if err := p.RegisterRing(guestA, r, 128); err != nil {
		t.Fatal(err)
	}
	checker := NewSeqChecker(128)

	const vendorPrivateFlags = 0xa5c3
	for i := 0; i < 100; i++ {
		buf := m.AllocOne(guestA)
		d := ring.Desc{Addr: buf.Base(), Len: 1514, Flags: vendorPrivateFlags &^ ring.FlagValid}
		if _, err := p.Enqueue(guestA, r, []ring.Desc{d}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		// NIC side: read the slot through the vendor layout and check
		// the sequence number.
		got, err := r.ReadDesc(m, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if !checker.Check(got.Seq) {
			t.Fatalf("seq check failed at %d: %d", i, got.Seq)
		}
		if got.Addr != d.Addr || got.Len != d.Len {
			t.Fatalf("fields corrupted: %+v", got)
		}
		// The hypervisor copied the vendor flags without interpreting
		// them (it only ORs in FlagValid).
		if got.Flags&^ring.FlagValid != vendorPrivateFlags&^ring.FlagValid {
			t.Fatalf("vendor flags not preserved: %#x", got.Flags)
		}
		r.Consume(1)
	}
}

func TestGenericLayoutStaleDetection(t *testing.T) {
	m := mem.New()
	base := m.AllocOne(guestA).Base()
	r, _ := ring.New("vendor.tx", vendorLayout, base, 8)
	p := NewProtection(m, ModeHypercall)
	p.RegisterRing(guestA, r, 16)
	checker := NewSeqChecker(16)
	// Fill one lap.
	for i := 0; i < 8; i++ {
		buf := m.AllocOne(guestA)
		p.Enqueue(guestA, r, []ring.Desc{{Addr: buf.Base(), Len: 100}})
		d, _ := r.ReadDesc(m, uint32(i))
		if !checker.Check(d.Seq) {
			t.Fatal("setup failed")
		}
		r.Consume(1)
	}
	// Replay slot 0 (stale): its sequence number is one lap old.
	stale, _ := r.ReadDesc(m, 8) // wraps to slot 0
	if checker.Check(stale.Seq) {
		t.Fatal("stale descriptor accepted under vendor layout")
	}
}

func TestLayoutWithoutSeqFieldRejectsNothing(t *testing.T) {
	// A layout with no sequence field models a conventional NIC; the
	// hypervisor still validates ownership but staleness detection is
	// unavailable (this is why CDNA NICs need the field).
	noSeq := ring.Layout{Size: 16, AddrOff: 0, LenOff: 8, FlagsOff: 10, SeqOff: -1}
	m := mem.New()
	base := m.AllocOne(guestA).Base()
	r, err := ring.New("legacy.tx", noSeq, base, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProtection(m, ModeHypercall)
	if err := p.RegisterRing(guestA, r, 32); err != nil {
		t.Fatal(err)
	}
	buf := m.AllocOne(guestA)
	if _, err := p.Enqueue(guestA, r, []ring.Desc{{Addr: buf.Base(), Len: 64}}); err != nil {
		t.Fatal(err)
	}
	d, _ := r.ReadDesc(m, 0)
	if d.Seq != 0 {
		t.Fatal("layout without a seq field must not carry one")
	}
}
