package core_test

import (
	"testing"

	"cdna/internal/core/corebench"
)

// The hypercall DMA-protection enqueue path, runnable via
// `go test -bench`; cmd/cdnabench runs the same function for the
// committed BENCH_sim.json row.
func BenchmarkGuestDMA(b *testing.B) { corebench.GuestDMA(b) }
