package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Mode selects how DMA memory protection is provided.
type Mode int

// Protection modes.
const (
	// ModeHypercall is the paper's software mechanism: guests call into
	// the hypervisor to validate and enqueue every DMA descriptor.
	ModeHypercall Mode = iota
	// ModeIOMMU models a context-aware IOMMU (§5.3): guests enqueue
	// descriptors directly and the hypervisor only maintains IOMMU
	// mappings; per-descriptor hypervisor work disappears.
	ModeIOMMU
	// ModeOff disables protection entirely (Table 4's upper bound):
	// guests enqueue directly and nothing is validated.
	ModeOff
)

func (m Mode) String() string {
	switch m {
	case ModeHypercall:
		return "hypercall"
	case ModeIOMMU:
		return "iommu"
	case ModeOff:
		return "off"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a protection mode name: hypercall | iommu | off.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "hypercall":
		return ModeHypercall, nil
	case "iommu":
		return ModeIOMMU, nil
	case "off":
		return ModeOff, nil
	}
	return 0, fmt.Errorf("core: unknown protection mode %q (want hypercall | iommu | off)", s)
}

// MarshalText encodes the mode as its String() token, so protection
// modes round-trip through JSON grid specs and result records.
// Out-of-range values encode as their decimal value so records of
// failed experiments stay serializable.
func (m Mode) MarshalText() ([]byte, error) {
	if m < ModeHypercall || m > ModeOff {
		return []byte(strconv.Itoa(int(m))), nil
	}
	return []byte(m.String()), nil
}

// UnmarshalText decodes a protection mode token, accepting the decimal
// fallback form MarshalText emits for out-of-range values.
func (m *Mode) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*m = Mode(n)
		return nil
	}
	v, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Errors reported by descriptor validation.
var (
	ErrNotRingOwner  = errors.New("core: ring not registered to this domain")
	ErrForeignMemory = errors.New("core: descriptor references memory not owned by caller")
	ErrRingFull      = ring.ErrRingFull
	ErrZeroLength    = errors.New("core: descriptor has zero length")
	ErrRevoked       = errors.New("core: context has been revoked")
)

// pinned records one descriptor's page pins as a contiguous frame span
// — descriptors reference [Addr, Addr+Len), so the spanned frames are
// first..first+n-1 and the hot pin/unpin paths never materialize a
// frame slice.
type pinned struct {
	idx   uint32 // free-running ring index of the descriptor
	first mem.PFN
	n     int32
}

// ringState is the hypervisor's per-ring protection bookkeeping.
type ringState struct {
	owner  mem.DomID
	r      *ring.Ring
	seq    *SeqAssigner
	pins   sim.FIFO[pinned] // ordered by idx
	active bool
}

// Protection is the hypervisor side of CDNA DMA memory protection
// (§3.3). All descriptor enqueues for registered rings flow through
// Enqueue, which validates ownership, pins pages, stamps sequence
// numbers, and writes descriptor bytes with the hypervisor's exclusive
// ring-write access.
type Protection struct {
	Mem  *mem.Memory
	Mode Mode

	rings map[*ring.Ring]*ringState
	// order is the append-only registration roster: ring identity for
	// checkpoints is "the n-th ring ever registered", which matches
	// across a donor machine and a freshly built one because machine
	// construction registers rings in a fixed order.
	order []*ring.Ring

	// Counters for the evaluation and tests.
	Validated   stats.Counter // descriptors validated and enqueued
	Rejected    stats.Counter // descriptors refused
	Reaped      stats.Counter // completed descriptors unpinned
	PinnedPages stats.Counter // page pins performed
}

// NewProtection creates the protection engine.
func NewProtection(m *mem.Memory, mode Mode) *Protection {
	return &Protection{Mem: m, Mode: mode, rings: make(map[*ring.Ring]*ringState)}
}

// RegisterRing places a guest's descriptor ring under hypervisor
// management during driver initialization: the hypervisor records the
// owner, seeds the sequence assigner, and takes exclusive write access
// to the ring's pages (ModeHypercall only).
func (p *Protection) RegisterRing(owner mem.DomID, r *ring.Ring, seqSpace uint32) error {
	if _, dup := p.rings[r]; dup {
		return fmt.Errorf("core: ring %q already registered", r.Name)
	}
	if !p.Mem.RangeOwned(owner, r.Base, r.Bytes()) {
		return ErrForeignMemory
	}
	if p.Mode == ModeHypercall {
		for _, pfn := range mem.RangePFNs(r.Base, r.Bytes()) {
			if err := p.Mem.SetHypExclusive(pfn, true); err != nil {
				return err
			}
		}
	}
	p.rings[r] = &ringState{owner: owner, r: r, seq: NewSeqAssigner(seqSpace), active: true}
	p.order = append(p.order, r)
	return nil
}

// UnregisterRing releases a ring (context revocation/teardown): all
// outstanding pins are dropped and exclusive access is released.
func (p *Protection) UnregisterRing(r *ring.Ring) {
	st, ok := p.rings[r]
	if !ok {
		return
	}
	for st.pins.Len() > 0 {
		pin := st.pins.Pop()
		for i := int32(0); i < pin.n; i++ {
			p.Mem.Put(pin.first + mem.PFN(i))
		}
	}
	st.active = false
	if p.Mode == ModeHypercall {
		for _, pfn := range mem.RangePFNs(r.Base, r.Bytes()) {
			p.Mem.SetHypExclusive(pfn, false)
		}
	}
	delete(p.rings, r)
}

// Registered reports whether r is under protection management.
func (p *Protection) Registered(r *ring.Ring) bool {
	_, ok := p.rings[r]
	return ok
}

// Pins returns the number of descriptors with outstanding page pins on r.
func (p *Protection) Pins(r *ring.Ring) int {
	if st, ok := p.rings[r]; ok {
		return st.pins.Len()
	}
	return 0
}

// Enqueue validates and enqueues descriptors on behalf of owner
// (§3.3). It first reaps completions (decrementing refcounts for
// descriptors the NIC has consumed — the paper's lazy reap), then for
// each descriptor verifies that every referenced page is owned by the
// caller, pins the pages, assigns the next sequence number, writes the
// descriptor into the ring with hypervisor-exclusive access, and finally
// publishes the batch. On any validation failure nothing from the batch
// is published.
//
// The returned count is the number of descriptors enqueued (all or
// nothing). CPU cost for this work is charged by the caller (the
// hypercall path in internal/xen).
func (p *Protection) Enqueue(owner mem.DomID, r *ring.Ring, descs []ring.Desc) (int, error) {
	st, ok := p.rings[r]
	if !ok || st.owner != owner {
		p.Rejected.Add(uint64(len(descs)))
		return 0, ErrNotRingOwner
	}
	if !st.active {
		p.Rejected.Add(uint64(len(descs)))
		return 0, ErrRevoked
	}
	p.reap(st)
	if len(descs) > r.Space() {
		p.Rejected.Add(uint64(len(descs)))
		return 0, ErrRingFull
	}
	// Validate the whole batch before touching the ring.
	for _, d := range descs {
		if d.Len == 0 {
			p.Rejected.Add(uint64(len(descs)))
			return 0, ErrZeroLength
		}
		if !p.Mem.RangeOwned(owner, d.Addr, int(d.Len)) {
			p.Rejected.Add(uint64(len(descs)))
			return 0, ErrForeignMemory
		}
	}
	idx := r.Prod()
	for _, d := range descs {
		first, npg := mem.RangeSpan(d.Addr, int(d.Len))
		for i := 0; i < npg; i++ {
			p.Mem.Get(first + mem.PFN(i))
			p.PinnedPages.Inc()
		}
		d.Seq = st.seq.Assign()
		d.Flags |= ring.FlagValid
		if err := r.WriteDesc(p.Mem, mem.DomHyp, idx, d); err != nil {
			// Unreachable for registered rings; fail closed.
			for i := 0; i < npg; i++ {
				p.Mem.Put(first + mem.PFN(i))
			}
			return 0, err
		}
		st.pins.Push(pinned{idx: idx, first: first, n: int32(npg)})
		idx++
	}
	if err := r.Publish(len(descs)); err != nil {
		// Unreachable: Space was checked above. Fail closed.
		return 0, err
	}
	p.Validated.Add(uint64(len(descs)))
	return len(descs), nil
}

// reap drops pins for descriptors the NIC has consumed (visible through
// the ring's consumer index, which the NIC writes back to host memory).
func (p *Protection) reap(st *ringState) {
	cons := st.r.Cons()
	n := 0
	for st.pins.Len() > 0 {
		// Free-running indices: pin.idx is complete when it is strictly
		// below cons in free-running terms.
		pin := st.pins.Peek()
		if int32(cons-pin.idx) <= 0 {
			break
		}
		for i := int32(0); i < pin.n; i++ {
			p.Mem.Put(pin.first + mem.PFN(i))
		}
		st.pins.Pop()
		n++
	}
	if n > 0 {
		p.Reaped.Add(uint64(n))
	}
}

// ReapNow forces an immediate reap (the paper notes reaping could be
// done more aggressively; teardown paths use this).
func (p *Protection) ReapNow(r *ring.Ring) {
	if st, ok := p.rings[r]; ok {
		p.reap(st)
	}
}

// DirectEnqueue models the unprotected paths (ModeOff and ModeIOMMU):
// the guest writes descriptors straight into its ring with no
// hypervisor validation, pinning, or sequence stamping. With ModeOff
// this is exactly the Table 4 "protection disabled" configuration —
// and the reason that configuration is unsafe.
func (p *Protection) DirectEnqueue(owner mem.DomID, r *ring.Ring, descs []ring.Desc) (int, error) {
	if len(descs) > r.Space() {
		return 0, ErrRingFull
	}
	idx := r.Prod()
	for _, d := range descs {
		d.Flags |= ring.FlagValid
		if err := r.WriteDesc(p.Mem, owner, idx, d); err != nil {
			return 0, err
		}
		idx++
	}
	if err := r.Publish(len(descs)); err != nil {
		return 0, err
	}
	return len(descs), nil
}
