// Package core implements the CDNA architecture (paper §3): hardware
// context management, DMA memory protection (ownership validation,
// per-page reference counting, hypervisor-exclusive descriptor rings,
// strictly increasing sequence numbers with stale-descriptor detection),
// and the interrupt bit-vector delivery mechanism.
//
// The package is deliberately independent of any particular NIC or VMM:
// the RiceNIC model (internal/ricenic) consumes the NIC-side pieces
// (SeqChecker, BitVectorQueue, Context), and the hypervisor model
// (internal/xen) consumes the VMM-side pieces (Protection,
// ContextManager), mirroring the paper's §3.4 argument that the
// mechanisms generalize.
package core

import "fmt"

// SeqChecker is the NIC-side validator for descriptor sequence numbers
// (§3.3). The hypervisor writes a strictly increasing sequence number
// into every descriptor it enqueues; the NIC checks continuity modulo
// the sequence space before using a descriptor. A stale descriptor —
// one left in the ring from an earlier lap and re-exposed by a malicious
// producer-index update — carries a sequence number exactly
// ringEntries below the expected value, so any space of at least twice
// the ring size makes staleness unambiguous.
type SeqChecker struct {
	next  uint32
	space uint32
}

// NewSeqChecker creates a checker with the given sequence space (the
// maximum sequence number + 1). Space must be a power of two so modular
// comparison is exact.
func NewSeqChecker(space uint32) *SeqChecker {
	if space == 0 || space&(space-1) != 0 {
		panic(fmt.Sprintf("core: sequence space %d must be a power of two", space))
	}
	return &SeqChecker{space: space}
}

// Space returns the sequence space size.
func (s *SeqChecker) Space() uint32 { return s.space }

// Expected returns the next sequence number the checker will accept.
func (s *SeqChecker) Expected() uint32 { return s.next % s.space }

// Check validates one descriptor's sequence number. On success the
// expected value advances; on failure the checker state is unchanged and
// the NIC must report a protection fault for the context.
func (s *SeqChecker) Check(seq uint32) bool {
	if seq%s.space != s.next%s.space {
		return false
	}
	s.next++
	return true
}

// Next returns the sequence number the hypervisor should assign to the
// n-th descriptor it enqueues (free-running counter, wrapped to space).
// This is the producer-side mirror of Check.
type SeqAssigner struct {
	next  uint32
	space uint32
}

// NewSeqAssigner creates the hypervisor-side sequence source.
func NewSeqAssigner(space uint32) *SeqAssigner {
	if space == 0 || space&(space-1) != 0 {
		panic(fmt.Sprintf("core: sequence space %d must be a power of two", space))
	}
	return &SeqAssigner{space: space}
}

// Assign returns the next sequence number and advances.
func (s *SeqAssigner) Assign() uint32 {
	v := s.next % s.space
	s.next++
	return v
}
