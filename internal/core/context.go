package core

import (
	"errors"
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
)

// NumContexts is the number of hardware contexts a CDNA NIC provides
// (the RiceNIC implementation supports 32, §4).
const NumContexts = 32

// MailboxesPerContext is the number of mailbox locations at the base of
// each context's 4 KB SRAM partition (§4).
const MailboxesPerContext = 24

// ContextPartitionBytes is the size of each context's PIO-accessible
// SRAM partition; it equals the host page size so the hypervisor can map
// one partition into one guest's address space (§4).
const ContextPartitionBytes = mem.PageSize

// Context is one hardware context on a CDNA NIC: an independent virtual
// network interface with its own MAC address, mailboxes, and transmit
// and receive descriptor rings (§3.1).
type Context struct {
	ID    int
	Owner mem.DomID
	MAC   ether.MAC

	TxRing, RxRing *ring.Ring
	TxSeq, RxSeq   *SeqChecker // NIC-side validators

	Active  bool
	Faulted bool
}

// FaultReason explains a context protection fault reported by the NIC.
type FaultReason int

// Fault reasons.
const (
	FaultSeqMismatch FaultReason = iota // stale or forged descriptor sequence number
	FaultRingEmpty                      // producer index ran past published descriptors
)

func (f FaultReason) String() string {
	switch f {
	case FaultSeqMismatch:
		return "sequence-number mismatch (stale or forged descriptor)"
	case FaultRingEmpty:
		return "producer index beyond published descriptors"
	default:
		return fmt.Sprintf("FaultReason(%d)", int(f))
	}
}

// Fault is the guest-specific protection fault error a CDNA NIC reports
// to the hypervisor (§3.3).
type Fault struct {
	ContextID int
	Owner     mem.DomID
	Reason    FaultReason
}

func (f *Fault) Error() string {
	return fmt.Sprintf("core: protection fault on context %d (dom %d): %s", f.ContextID, f.Owner, f.Reason)
}

// Context-manager errors.
var (
	ErrNoFreeContext = errors.New("core: no free hardware context")
	ErrNotAssigned   = errors.New("core: context not assigned")
)

// ContextManager is the hypervisor-side allocator of NIC hardware
// contexts (§3.1): it assigns a unique context to a guest (conceptually
// mapping that context's mailbox partition into the guest's address
// space), and can revoke a context at any time, shutting down its
// pending operations.
type ContextManager struct {
	contexts [NumContexts]*Context
	prot     *Protection

	// OnRevoke, when set, is invoked after a context is deactivated so
	// the NIC model can abort in-flight work.
	OnRevoke func(*Context)
}

// NewContextManager creates a manager bound to the protection engine.
func NewContextManager(prot *Protection) *ContextManager {
	return &ContextManager{prot: prot}
}

// Assign allocates the lowest free context for dom with the given MAC
// and rings. Rings are registered with the protection engine using a
// sequence space of at least twice the ring size (the §3.3 sizing rule).
func (cm *ContextManager) Assign(dom mem.DomID, mac ether.MAC, tx, rx *ring.Ring) (*Context, error) {
	slot := -1
	for i, c := range cm.contexts {
		if c == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, ErrNoFreeContext
	}
	seqSpace := func(r *ring.Ring) uint32 {
		s := uint32(2 * r.Entries)
		// Round up to a power of two (entries already are).
		return s
	}
	if err := cm.prot.RegisterRing(dom, tx, seqSpace(tx)); err != nil {
		return nil, err
	}
	if err := cm.prot.RegisterRing(dom, rx, seqSpace(rx)); err != nil {
		cm.prot.UnregisterRing(tx)
		return nil, err
	}
	ctx := &Context{
		ID: slot, Owner: dom, MAC: mac,
		TxRing: tx, RxRing: rx,
		TxSeq: NewSeqChecker(seqSpace(tx)), RxSeq: NewSeqChecker(seqSpace(rx)),
		Active: true,
	}
	cm.contexts[slot] = ctx
	return ctx, nil
}

// Revoke deactivates a context: pending protection state is released,
// the NIC is notified to shut down the context's operations, and the
// slot becomes reusable (§3.1).
func (cm *ContextManager) Revoke(ctx *Context) error {
	if ctx == nil || cm.contexts[ctx.ID] != ctx {
		return ErrNotAssigned
	}
	ctx.Active = false
	cm.prot.UnregisterRing(ctx.TxRing)
	cm.prot.UnregisterRing(ctx.RxRing)
	cm.contexts[ctx.ID] = nil
	if cm.OnRevoke != nil {
		cm.OnRevoke(ctx)
	}
	return nil
}

// HandleFault is the hypervisor's response to a NIC-reported protection
// fault: mark the context faulted and revoke it.
func (cm *ContextManager) HandleFault(f *Fault) {
	if f.ContextID < 0 || f.ContextID >= NumContexts {
		return
	}
	ctx := cm.contexts[f.ContextID]
	if ctx == nil {
		return
	}
	ctx.Faulted = true
	cm.Revoke(ctx)
}

// Lookup returns the context in a slot (nil if free).
func (cm *ContextManager) Lookup(id int) *Context {
	if id < 0 || id >= NumContexts {
		return nil
	}
	return cm.contexts[id]
}

// Assigned returns the number of active contexts.
func (cm *ContextManager) Assigned() int {
	n := 0
	for _, c := range cm.contexts {
		if c != nil {
			n++
		}
	}
	return n
}
