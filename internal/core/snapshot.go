package core

import (
	"fmt"

	"cdna/internal/mem"
	"cdna/internal/stats"
)

// This file is the checkpoint layer for the CDNA protection machinery.
// All structures here follow the repository's snapshot contract: plain
// exported data, deterministic slice order (never map iteration), and
// SetState methods that treat the image as authoritative. Ring indices
// and ring/bit-vector memory bytes are restored elsewhere (by the
// owning driver layer and internal/mem respectively); this layer owns
// the hypervisor- and NIC-side protection bookkeeping.

// State/SetState for the sequence validators: the free-running counter
// is the entire mutable state (the space is construction geometry).

// State captures the checker's free-running expected counter.
func (s *SeqChecker) State() uint32 { return s.next }

// SetState restores the checker's free-running expected counter.
func (s *SeqChecker) SetState(v uint32) { s.next = v }

// State captures the assigner's free-running counter.
func (s *SeqAssigner) State() uint32 { return s.next }

// SetState restores the assigner's free-running counter.
func (s *SeqAssigner) SetState(v uint32) { s.next = v }

// PinState is one pinned descriptor: its free-running ring index and
// the frames it holds references on.
type PinState struct {
	Idx  uint32
	PFNs []mem.PFN
}

// RingProtState is the protection bookkeeping for the n-th ring ever
// registered. Registered distinguishes rings still under management
// from ones unregistered before the snapshot.
type RingProtState struct {
	Registered bool
	Owner      mem.DomID
	SeqNext    uint32
	Active     bool
	Pins       []PinState
}

// ProtectionState is the Protection engine's checkpoint image.
type ProtectionState struct {
	Rings       []RingProtState
	Validated   stats.CounterState
	Rejected    stats.CounterState
	Reaped      stats.CounterState
	PinnedPages stats.CounterState
}

// State captures the protection engine. Ring identity is registration
// order (the append-only roster), which a freshly built machine
// reproduces exactly.
func (p *Protection) State() ProtectionState {
	s := ProtectionState{
		Rings:       make([]RingProtState, len(p.order)),
		Validated:   p.Validated.State(),
		Rejected:    p.Rejected.State(),
		Reaped:      p.Reaped.State(),
		PinnedPages: p.PinnedPages.State(),
	}
	for i, r := range p.order {
		st, ok := p.rings[r]
		if !ok {
			continue
		}
		rs := RingProtState{
			Registered: true,
			Owner:      st.owner,
			SeqNext:    st.seq.State(),
			Active:     st.active,
			Pins:       make([]PinState, st.pins.Len()),
		}
		for j := range rs.Pins {
			pin := st.pins.At(j)
			// Pins are contiguous frame spans internally; the image keeps
			// the explicit frame list so its wire shape is unchanged.
			pfns := make([]mem.PFN, pin.n)
			for k := range pfns {
				pfns[k] = pin.first + mem.PFN(k)
			}
			rs.Pins[j] = PinState{Idx: pin.idx, PFNs: pfns}
		}
		s.Rings[i] = rs
	}
	return s
}

// SetState restores the protection engine. The receiver must be a
// freshly built machine whose registration roster matches the donor's —
// restore does not touch simulated memory (page refcounts and the
// hypervisor-exclusive bits arrive with the mem image).
func (p *Protection) SetState(s ProtectionState) error {
	if len(s.Rings) != len(p.order) {
		return fmt.Errorf("core: protection roster mismatch: snapshot has %d rings, machine has %d",
			len(s.Rings), len(p.order))
	}
	for i, rs := range s.Rings {
		r := p.order[i]
		st, ok := p.rings[r]
		if rs.Registered != ok {
			return fmt.Errorf("core: ring %d (%q) registration mismatch: snapshot=%v machine=%v",
				i, r.Name, rs.Registered, ok)
		}
		if !ok {
			continue
		}
		st.owner = rs.Owner
		st.seq.SetState(rs.SeqNext)
		st.active = rs.Active
		st.pins.Clear()
		for _, pin := range rs.Pins {
			if len(pin.PFNs) == 0 {
				continue
			}
			// Images come from State(), which emits contiguous spans.
			st.pins.Push(pinned{idx: pin.Idx, first: pin.PFNs[0], n: int32(len(pin.PFNs))})
		}
	}
	p.Validated.SetState(s.Validated)
	p.Rejected.SetState(s.Rejected)
	p.Reaped.SetState(s.Reaped)
	p.PinnedPages.SetState(s.PinnedPages)
	return nil
}

// ContextState is one hardware-context slot's checkpoint image.
type ContextState struct {
	Present bool
	Active  bool
	Faulted bool
	TxSeq   uint32
	RxSeq   uint32
}

// ContextManagerState is the context manager's checkpoint image: one
// entry per hardware-context slot.
type ContextManagerState struct {
	Contexts [NumContexts]ContextState
}

// State captures the context manager and the NIC-side sequence
// checkers living on each assigned context.
func (cm *ContextManager) State() ContextManagerState {
	var s ContextManagerState
	for i, c := range cm.contexts {
		if c == nil {
			continue
		}
		s.Contexts[i] = ContextState{
			Present: true,
			Active:  c.Active,
			Faulted: c.Faulted,
			TxSeq:   c.TxSeq.State(),
			RxSeq:   c.RxSeq.State(),
		}
	}
	return s
}

// SetState restores the context manager. Slot occupancy must match the
// donor's (snapshots taken after a runtime revocation need the restored
// machine to have revoked identically, which construction does not do —
// those snapshots are refused at capture by the machine layer).
func (cm *ContextManager) SetState(s ContextManagerState) error {
	for i, cs := range s.Contexts {
		c := cm.contexts[i]
		if cs.Present != (c != nil) {
			return fmt.Errorf("core: context slot %d occupancy mismatch: snapshot=%v machine=%v",
				i, cs.Present, c != nil)
		}
		if c == nil {
			continue
		}
		c.Active = cs.Active
		c.Faulted = cs.Faulted
		c.TxSeq.SetState(cs.TxSeq)
		c.RxSeq.SetState(cs.RxSeq)
	}
	return nil
}

// BitVectorQueueState is the interrupt bit-vector queue's checkpoint
// image. The circular buffer's bytes live in hypervisor memory and are
// captured by the mem layer; this is the NIC- and host-side index state.
type BitVectorQueueState struct {
	ProdShadow  uint32
	Cons        uint32
	PendingBits uint32
	Posted      stats.CounterState
	Merged      stats.CounterState
	Drained     stats.CounterState
}

// State captures the queue indices and counters.
func (q *BitVectorQueue) State() BitVectorQueueState {
	return BitVectorQueueState{
		ProdShadow:  q.prodShadow,
		Cons:        q.cons,
		PendingBits: q.pendingBits,
		Posted:      q.Posted.State(),
		Merged:      q.Merged.State(),
		Drained:     q.Drained.State(),
	}
}

// SetState restores the queue indices and counters.
func (q *BitVectorQueue) SetState(s BitVectorQueueState) {
	q.prodShadow = s.ProdShadow
	q.cons = s.Cons
	q.pendingBits = s.PendingBits
	q.Posted.SetState(s.Posted)
	q.Merged.SetState(s.Merged)
	q.Drained.SetState(s.Drained)
}
