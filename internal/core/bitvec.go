package core

import (
	"encoding/binary"
	"fmt"

	"cdna/internal/mem"
	"cdna/internal/stats"
)

// BitVectorQueue is the CDNA interrupt delivery channel (§3.2). The NIC
// tracks which contexts have updates since the last physical interrupt in
// a 32-bit vector, DMAs the vector into a circular buffer in hypervisor
// memory, updates a producer index in that memory, and raises a physical
// interrupt. The hypervisor's ISR drains all pending vectors and
// schedules virtual interrupts for every context with a set bit.
//
// The producer/consumer protocol guarantees a vector is never overwritten
// before the host has processed it: when the buffer is full the NIC holds
// the bits locally and merges them into the next posted vector.
type BitVectorQueue struct {
	memory  *mem.Memory
	base    mem.Addr // entries*4 bytes of vectors, then 4 bytes producer index
	entries int

	prodShadow uint32 // NIC-side copy of the producer index
	cons       uint32 // host-side consumer index

	pendingBits uint32 // NIC-local accumulation (merged when full)

	Posted  stats.Counter // vectors DMA'd to the host
	Merged  stats.Counter // post attempts coalesced into pending bits
	Drained stats.Counter // vectors consumed by the host ISR
}

// BitVectorBytes returns the memory footprint for a queue of n entries.
func BitVectorBytes(n int) int { return n*4 + 4 }

// NewBitVectorQueue creates a queue over hypervisor-owned memory at base.
func NewBitVectorQueue(m *mem.Memory, base mem.Addr, entries int) (*BitVectorQueue, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("core: bitvec entries %d must be a positive power of two", entries)
	}
	if !m.RangeOwned(mem.DomHyp, base, BitVectorBytes(entries)) {
		return nil, ErrForeignMemory
	}
	return &BitVectorQueue{memory: m, base: base, entries: entries}, nil
}

func (q *BitVectorQueue) slotAddr(i uint32) mem.Addr {
	return q.base + mem.Addr((i%uint32(q.entries))*4)
}

func (q *BitVectorQueue) prodAddr() mem.Addr {
	return q.base + mem.Addr(q.entries*4)
}

// Accumulate records NIC-local pending bits for contexts with updates.
func (q *BitVectorQueue) Accumulate(contextID int) {
	q.pendingBits |= 1 << uint(contextID)
}

// Pending reports whether the NIC has unposted bits.
func (q *BitVectorQueue) Pending() bool { return q.pendingBits != 0 }

// PostBytes returns the DMA size of one post (vector + producer index).
const PostBytes = 8

// Post moves the accumulated bits into the circular buffer (the bytes
// really are written into simulated hypervisor memory) and advances the
// producer index. It returns the posted vector and true, or 0 and false
// if the buffer is full — in which case the bits stay accumulated and
// are merged into a later post, so no update is ever lost. The caller
// (the NIC model) charges DMA time for PostBytes and then raises the
// physical interrupt.
func (q *BitVectorQueue) Post() (uint32, bool) {
	if q.pendingBits == 0 {
		return 0, false
	}
	if q.prodShadow-q.cons == uint32(q.entries) {
		q.Merged.Inc()
		return 0, false
	}
	vec := q.pendingBits
	q.pendingBits = 0
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], vec)
	q.memory.Write(q.slotAddr(q.prodShadow), b[:])
	q.prodShadow++
	binary.LittleEndian.PutUint32(b[:], q.prodShadow)
	q.memory.Write(q.prodAddr(), b[:])
	q.Posted.Inc()
	return vec, true
}

// Drain is the hypervisor ISR path: it reads the producer index from
// memory, consumes every pending vector, and returns the OR of all their
// bits (the set of contexts needing virtual interrupts) plus the number
// of vectors processed.
func (q *BitVectorQueue) Drain() (bits uint32, vectors int) {
	var b [4]byte
	if err := q.memory.ReadInto(q.prodAddr(), b[:]); err != nil {
		return 0, 0
	}
	prod := binary.LittleEndian.Uint32(b[:])
	for q.cons != prod {
		if err := q.memory.ReadInto(q.slotAddr(q.cons), b[:]); err != nil {
			break
		}
		bits |= binary.LittleEndian.Uint32(b[:])
		q.cons++
		vectors++
	}
	q.Drained.Add(uint64(vectors))
	return bits, vectors
}

// Backlog returns the number of unconsumed vectors in the buffer.
func (q *BitVectorQueue) Backlog() int { return int(q.prodShadow - q.cons) }
