package core

import (
	"testing"
	"testing/quick"
)

func TestSeqCheckerAcceptsInOrder(t *testing.T) {
	a := NewSeqAssigner(256)
	c := NewSeqChecker(256)
	for i := 0; i < 1000; i++ {
		seq := a.Assign()
		if !c.Check(seq) {
			t.Fatalf("in-order seq %d rejected at step %d", seq, i)
		}
	}
}

func TestSeqCheckerRejectsStale(t *testing.T) {
	c := NewSeqChecker(256)
	for i := uint32(0); i < 10; i++ {
		c.Check(i)
	}
	if c.Check(3) {
		t.Fatal("stale sequence accepted")
	}
	// State unchanged after rejection: correct next value still works.
	if !c.Check(10) {
		t.Fatal("checker state corrupted by rejection")
	}
}

func TestSeqCheckerWrapsModuloSpace(t *testing.T) {
	a := NewSeqAssigner(16)
	c := NewSeqChecker(16)
	for i := 0; i < 100; i++ {
		seq := a.Assign()
		if seq >= 16 {
			t.Fatalf("assigned seq %d outside space", seq)
		}
		if !c.Check(seq) {
			t.Fatalf("wrapped seq rejected at step %d", i)
		}
	}
}

func TestSeqCheckerNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two space must panic")
		}
	}()
	NewSeqChecker(100)
}

// TestSeqnumAliasingDetection verifies the paper's §3.3 sizing rule: a
// stale descriptor has a sequence number exactly ringEntries below the
// expected value, so a space of at least 2x the ring size always detects
// it — while a space equal to the ring size aliases and lets the replay
// through.
func TestSeqnumAliasingDetection(t *testing.T) {
	const entries = 64
	replayOffset := uint32(entries) // stale descriptor: one full lap old

	// Space = 2*entries: detected.
	c := NewSeqChecker(2 * entries)
	for i := uint32(0); i < 3*entries; i++ {
		if !c.Check(i % (2 * entries)) {
			t.Fatal("setup failed")
		}
	}
	stale := (3*entries - replayOffset) % (2 * entries)
	if c.Check(stale) {
		t.Fatal("2x space failed to detect stale descriptor")
	}

	// Space = entries: the stale value aliases to the expected one.
	c2 := NewSeqChecker(entries)
	for i := uint32(0); i < 3*entries; i++ {
		if !c2.Check(i % entries) {
			t.Fatal("setup failed")
		}
	}
	stale2 := (3*entries - replayOffset) % entries
	if !c2.Check(stale2) {
		t.Fatal("undersized space unexpectedly detected the replay — the test premise is wrong")
	}
}

// Property: for any ring size (power of two) and any replay distance
// 1..entries, a 2x sequence space detects the replay.
func TestSeqnumAliasingProperty(t *testing.T) {
	f := func(sizeExp uint8, dist uint16, laps uint8) bool {
		entries := uint32(1) << (sizeExp%6 + 2) // 4..128
		space := 2 * entries
		d := uint32(dist)%entries + 1 // replay distance 1..entries
		a := NewSeqAssigner(space)
		c := NewSeqChecker(space)
		steps := uint32(laps)%64 + d
		for i := uint32(0); i < steps; i++ {
			if !c.Check(a.Assign()) {
				return false
			}
		}
		// Replay the descriptor enqueued d steps ago.
		staleSeq := (steps - d) % space
		return !c.Check(staleSeq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignerCheckerStayInLockstep(t *testing.T) {
	f := func(n uint16) bool {
		a := NewSeqAssigner(128)
		c := NewSeqChecker(128)
		for i := 0; i < int(n%2000); i++ {
			if !c.Check(a.Assign()) {
				return false
			}
		}
		return c.Expected() == a.next%128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
