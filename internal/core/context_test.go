package core

import (
	"testing"

	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
)

func newCM(t *testing.T) (*mem.Memory, *Protection, *ContextManager) {
	t.Helper()
	m := mem.New()
	p := NewProtection(m, ModeHypercall)
	return m, p, NewContextManager(p)
}

func mkRings(t *testing.T, m *mem.Memory, dom mem.DomID) (*ring.Ring, *ring.Ring) {
	t.Helper()
	tx, err := ring.New("tx", ring.DefaultLayout, m.AllocOne(dom).Base(), 64)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := ring.New("rx", ring.DefaultLayout, m.AllocOne(dom).Base(), 64)
	if err != nil {
		t.Fatal(err)
	}
	return tx, rx
}

func TestAssignContexts(t *testing.T) {
	m, _, cm := newCM(t)
	tx, rx := mkRings(t, m, guestA)
	ctx, err := cm.Assign(guestA, ether.MakeMAC(1, 1), tx, rx)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.ID != 0 || !ctx.Active || ctx.Owner != guestA {
		t.Fatalf("context: %+v", ctx)
	}
	if cm.Lookup(0) != ctx || cm.Assigned() != 1 {
		t.Fatal("lookup/assigned wrong")
	}
	// Sequence space obeys the 2x rule.
	if ctx.TxSeq.Space() < uint32(2*tx.Entries) {
		t.Fatalf("seq space %d < 2x ring size", ctx.TxSeq.Space())
	}
}

func TestAssignExhaustion(t *testing.T) {
	m, _, cm := newCM(t)
	for i := 0; i < NumContexts; i++ {
		dom := mem.DomID(int(guestA) + i)
		tx, rx := mkRings(t, m, dom)
		if _, err := cm.Assign(dom, ether.MakeMAC(1, i), tx, rx); err != nil {
			t.Fatalf("assign %d: %v", i, err)
		}
	}
	tx, rx := mkRings(t, m, guestA)
	if _, err := cm.Assign(guestA, ether.MakeMAC(2, 0), tx, rx); err != ErrNoFreeContext {
		t.Fatalf("err = %v, want ErrNoFreeContext", err)
	}
}

func TestRevokeFreesSlotAndRings(t *testing.T) {
	m, p, cm := newCM(t)
	tx, rx := mkRings(t, m, guestA)
	ctx, _ := cm.Assign(guestA, ether.MakeMAC(1, 1), tx, rx)
	revoked := false
	cm.OnRevoke = func(c *Context) { revoked = c == ctx }
	if err := cm.Revoke(ctx); err != nil {
		t.Fatal(err)
	}
	if !revoked || ctx.Active || cm.Assigned() != 0 {
		t.Fatal("revoke did not clean up")
	}
	if p.Registered(tx) || p.Registered(rx) {
		t.Fatal("rings still registered after revoke")
	}
	if err := cm.Revoke(ctx); err != ErrNotAssigned {
		t.Fatalf("double revoke err = %v", err)
	}
	// The slot is reusable.
	tx2, rx2 := mkRings(t, m, guestB)
	ctx2, err := cm.Assign(guestB, ether.MakeMAC(1, 2), tx2, rx2)
	if err != nil || ctx2.ID != 0 {
		t.Fatalf("slot not reused: %v, %v", ctx2, err)
	}
}

func TestHandleFaultRevokes(t *testing.T) {
	m, _, cm := newCM(t)
	tx, rx := mkRings(t, m, guestA)
	ctx, _ := cm.Assign(guestA, ether.MakeMAC(1, 1), tx, rx)
	f := &Fault{ContextID: ctx.ID, Owner: guestA, Reason: FaultSeqMismatch}
	if f.Error() == "" || f.Reason.String() == "" {
		t.Fatal("fault formatting broken")
	}
	cm.HandleFault(f)
	if !ctx.Faulted || ctx.Active || cm.Assigned() != 0 {
		t.Fatal("fault did not revoke context")
	}
	// Faults on bogus or freed slots are ignored.
	cm.HandleFault(&Fault{ContextID: 99})
	cm.HandleFault(&Fault{ContextID: ctx.ID})
}

func TestAssignRegisterFailureRollsBack(t *testing.T) {
	m, p, cm := newCM(t)
	tx, _ := mkRings(t, m, guestA)
	// rx ring owned by another domain: second registration fails and the
	// first must be rolled back.
	rxForeign, _ := ring.New("rx", ring.DefaultLayout, m.AllocOne(guestB).Base(), 64)
	if _, err := cm.Assign(guestA, ether.MakeMAC(1, 1), tx, rxForeign); err == nil {
		t.Fatal("assign with foreign rx ring accepted")
	}
	if p.Registered(tx) {
		t.Fatal("tx ring leaked after rollback")
	}
	if cm.Assigned() != 0 {
		t.Fatal("context leaked after rollback")
	}
}

func TestConstantsMatchPaper(t *testing.T) {
	if NumContexts != 32 {
		t.Fatal("the RiceNIC provides 32 contexts")
	}
	if MailboxesPerContext != 24 {
		t.Fatal("each context exposes 24 mailboxes")
	}
	if ContextPartitionBytes != 4096 {
		t.Fatal("context partitions are one host page")
	}
}
