package core

import (
	"testing"
	"testing/quick"

	"cdna/internal/mem"
)

func newBV(t *testing.T, entries int) (*mem.Memory, *BitVectorQueue) {
	t.Helper()
	m := mem.New()
	base := m.AllocOne(mem.DomHyp).Base()
	q, err := NewBitVectorQueue(m, base, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m, q
}

func TestBitVecPostDrain(t *testing.T) {
	_, q := newBV(t, 8)
	q.Accumulate(0)
	q.Accumulate(5)
	q.Accumulate(31)
	vec, ok := q.Post()
	if !ok || vec != (1|1<<5|1<<31) {
		t.Fatalf("Post = %#x, %v", vec, ok)
	}
	bits, n := q.Drain()
	if n != 1 || bits != vec {
		t.Fatalf("Drain = %#x, %d", bits, n)
	}
}

func TestBitVecEmptyPost(t *testing.T) {
	_, q := newBV(t, 8)
	if _, ok := q.Post(); ok {
		t.Fatal("empty post must fail")
	}
	if bits, n := q.Drain(); bits != 0 || n != 0 {
		t.Fatal("empty drain must return nothing")
	}
}

func TestBitVecMultipleVectorsORed(t *testing.T) {
	_, q := newBV(t, 8)
	q.Accumulate(1)
	q.Post()
	q.Accumulate(2)
	q.Post()
	bits, n := q.Drain()
	if n != 2 || bits != (1<<1|1<<2) {
		t.Fatalf("Drain = %#x, %d", bits, n)
	}
}

// TestBitVecNeverOverwritesUnconsumed verifies the §3.2
// producer/consumer protocol: when the circular buffer fills, the NIC
// holds bits locally rather than overwriting an unprocessed vector, and
// no update is ever lost.
func TestBitVecNeverOverwritesUnconsumed(t *testing.T) {
	_, q := newBV(t, 4)
	for i := 0; i < 4; i++ {
		q.Accumulate(i)
		if _, ok := q.Post(); !ok {
			t.Fatalf("post %d failed with space available", i)
		}
	}
	q.Accumulate(9)
	if _, ok := q.Post(); ok {
		t.Fatal("post into a full buffer must be refused")
	}
	if q.Merged.Total() != 1 {
		t.Fatalf("Merged = %d", q.Merged.Total())
	}
	if !q.Pending() {
		t.Fatal("bits must remain pending after refused post")
	}
	bits, n := q.Drain()
	if n != 4 || bits != 0xf {
		t.Fatalf("Drain = %#x, %d", bits, n)
	}
	// Now the held bits go through.
	vec, ok := q.Post()
	if !ok || vec != 1<<9 {
		t.Fatalf("retry post = %#x, %v", vec, ok)
	}
	bits, _ = q.Drain()
	if bits != 1<<9 {
		t.Fatal("held bits lost")
	}
}

func TestBitVecWrapsAround(t *testing.T) {
	_, q := newBV(t, 4)
	for round := 0; round < 10; round++ {
		q.Accumulate(round % 32)
		if _, ok := q.Post(); !ok {
			t.Fatalf("post failed on round %d", round)
		}
		bits, n := q.Drain()
		if n != 1 || bits != 1<<uint(round%32) {
			t.Fatalf("round %d: %#x, %d", round, bits, n)
		}
	}
}

func TestBitVecRequiresHypMemory(t *testing.T) {
	m := mem.New()
	base := m.AllocOne(guestA).Base()
	if _, err := NewBitVectorQueue(m, base, 8); err != ErrForeignMemory {
		t.Fatalf("err = %v, want ErrForeignMemory", err)
	}
}

func TestBitVecNonPowerOfTwo(t *testing.T) {
	m := mem.New()
	base := m.AllocOne(mem.DomHyp).Base()
	if _, err := NewBitVectorQueue(m, base, 6); err == nil {
		t.Fatal("non-power-of-two entries accepted")
	}
}

// Property: every accumulated context bit is eventually visible to
// exactly one Drain, regardless of post/drain interleaving.
func TestBitVecNoLostUpdatesProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		m := mem.New()
		base := m.AllocOne(mem.DomHyp).Base()
		q, _ := NewBitVectorQueue(m, base, 4)
		accumulated := uint32(0) // bits sent in
		drained := uint32(0)     // bits seen by host
		for _, op := range ops {
			switch op % 3 {
			case 0:
				ctx := int(op>>2) % 32
				q.Accumulate(ctx)
				accumulated |= 1 << uint(ctx)
			case 1:
				q.Post()
			case 2:
				bits, _ := q.Drain()
				drained |= bits
			}
		}
		q.Post()
		// A full buffer can require one more drain+post round.
		bits, _ := q.Drain()
		drained |= bits
		q.Post()
		bits, _ = q.Drain()
		drained |= bits
		return drained == accumulated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
