// Package corebench holds the guest DMA-protection hot-path benchmark
// in plain func(*testing.B) form, shared by `go test -bench` and
// cmd/cdnabench — the same split internal/sim/simbench uses for the
// event core.
package corebench

import (
	"testing"

	"cdna/internal/core"
	"cdna/internal/mem"
	"cdna/internal/ring"
)

// GuestDMA measures one protected descriptor enqueue per op through the
// paper's hypercall mechanism (§3.3): lazy reap of the previous
// descriptor's page pins, ownership validation of the referenced range,
// page pinning, sequence stamping, the hypervisor-exclusive descriptor
// write, and publish. The contract is zero allocs/op in steady state:
// pins ride a reused FIFO as contiguous frame spans, and page
// refcounting is an array index per page.
func GuestDMA(b *testing.B) {
	const guest = mem.Dom0 + 1
	m := mem.New()
	p := core.NewProtection(m, core.ModeHypercall)
	r, err := ring.New("tx", ring.DefaultLayout, m.AllocOne(guest).Base(), 256)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.RegisterRing(guest, r, 1<<16); err != nil {
		b.Fatal(err)
	}
	buf := m.AllocOne(guest).Base()
	descs := [1]ring.Desc{{Addr: buf, Len: 1514, Flags: ring.FlagTx}}
	enq := func() {
		if _, err := p.Enqueue(guest, r, descs[:]); err != nil {
			b.Fatal(err)
		}
		// NIC-style consumer writeback, so the next enqueue's lazy reap
		// drops this descriptor's pins.
		r.Consume(1)
	}
	// Prime the pin FIFO and the ring.
	for i := 0; i < 32; i++ {
		enq()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enq()
	}
}
