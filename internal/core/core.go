package core
