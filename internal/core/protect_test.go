package core

import (
	"testing"

	"cdna/internal/mem"
	"cdna/internal/ring"
)

const (
	guestA = mem.Dom0 + 1
	guestB = mem.Dom0 + 2
)

func newProt(t *testing.T, mode Mode) (*mem.Memory, *Protection, *ring.Ring) {
	t.Helper()
	m := mem.New()
	base := m.AllocOne(guestA).Base()
	r, err := ring.New("tx", ring.DefaultLayout, base, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProtection(m, mode)
	if err := p.RegisterRing(guestA, r, 128); err != nil {
		t.Fatal(err)
	}
	return m, p, r
}

func buf(m *mem.Memory, dom mem.DomID) ring.Desc {
	pfn := m.AllocOne(dom)
	return ring.Desc{Addr: pfn.Base(), Len: 1514, Flags: ring.FlagTx}
}

func TestEnqueueValidOwned(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestA)
	n, err := p.Enqueue(guestA, r, []ring.Desc{d})
	if err != nil || n != 1 {
		t.Fatalf("Enqueue = %d, %v", n, err)
	}
	if r.Avail() != 1 {
		t.Fatal("descriptor not published")
	}
	if m.Refs(d.Addr.PFN()) != 1 {
		t.Fatal("page not pinned")
	}
	// The descriptor in memory carries seq 0 and FlagValid.
	got, err := r.ReadDesc(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 0 || got.Flags&ring.FlagValid == 0 || got.Addr != d.Addr {
		t.Fatalf("on-ring descriptor: %+v", got)
	}
}

// TestEnqueueForeignMemoryRejected is the paper's core protection claim:
// a guest cannot direct the NIC at another domain's memory.
func TestEnqueueForeignMemoryRejected(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	victim := buf(m, guestB)
	n, err := p.Enqueue(guestA, r, []ring.Desc{victim})
	if err != ErrForeignMemory || n != 0 {
		t.Fatalf("Enqueue = %d, %v; want 0, ErrForeignMemory", n, err)
	}
	if r.Avail() != 0 {
		t.Fatal("rejected descriptor was published")
	}
	if p.Rejected.Total() != 1 {
		t.Fatalf("Rejected = %d", p.Rejected.Total())
	}
}

func TestEnqueueBatchAllOrNothing(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	good := buf(m, guestA)
	bad := buf(m, guestB)
	n, err := p.Enqueue(guestA, r, []ring.Desc{good, bad})
	if err != ErrForeignMemory || n != 0 {
		t.Fatalf("Enqueue = %d, %v", n, err)
	}
	if r.Avail() != 0 || m.Refs(good.Addr.PFN()) != 0 {
		t.Fatal("partial batch leaked pins or publishes")
	}
}

func TestEnqueueWrongRingOwner(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestB)
	if _, err := p.Enqueue(guestB, r, []ring.Desc{d}); err != ErrNotRingOwner {
		t.Fatalf("err = %v, want ErrNotRingOwner", err)
	}
}

func TestEnqueueZeroLength(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestA)
	d.Len = 0
	if _, err := p.Enqueue(guestA, r, []ring.Desc{d}); err != ErrZeroLength {
		t.Fatalf("err = %v, want ErrZeroLength", err)
	}
}

func TestEnqueueRingFull(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	descs := make([]ring.Desc, 65)
	for i := range descs {
		descs[i] = buf(m, guestA)
	}
	if _, err := p.Enqueue(guestA, r, descs); err != ErrRingFull {
		t.Fatalf("err = %v, want ErrRingFull", err)
	}
}

func TestFreedPageRejected(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestA)
	m.Free(guestA, d.Addr.PFN())
	if _, err := p.Enqueue(guestA, r, []ring.Desc{d}); err != ErrForeignMemory {
		t.Fatalf("err = %v, want ErrForeignMemory", err)
	}
}

// TestFreeDuringDMADelaysReallocation exercises §3.3's central scenario:
// the guest frees a page right after enqueuing a DMA descriptor for it.
// The pin must keep the page from being reallocated until the NIC
// consumes the descriptor and the hypervisor reaps it.
func TestFreeDuringDMADelaysReallocation(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestA)
	if _, err := p.Enqueue(guestA, r, []ring.Desc{d}); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(guestA, d.Addr.PFN()); err != nil {
		t.Fatal(err)
	}
	if q := m.AllocOne(guestB); q == d.Addr.PFN() {
		t.Fatal("page reallocated while DMA outstanding")
	}
	// NIC consumes the descriptor; the next enqueue lazily reaps.
	r.Consume(1)
	d2 := buf(m, guestA)
	if _, err := p.Enqueue(guestA, r, []ring.Desc{d2}); err != nil {
		t.Fatal(err)
	}
	if p.Reaped.Total() != 1 {
		t.Fatalf("Reaped = %d, want 1", p.Reaped.Total())
	}
	if m.Refs(d.Addr.PFN()) != 0 {
		t.Fatal("pin not dropped after reap")
	}
	if q := m.AllocOne(guestB); q != d.Addr.PFN() {
		t.Fatal("page should be reusable after reap")
	}
}

func TestReapNow(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestA)
	p.Enqueue(guestA, r, []ring.Desc{d})
	r.Consume(1)
	p.ReapNow(r)
	if m.Refs(d.Addr.PFN()) != 0 {
		t.Fatal("ReapNow did not unpin")
	}
}

func TestMultiPageDescriptorPinsAllPages(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	pfns := m.Alloc(guestA, 2)
	if pfns[1] != pfns[0]+1 {
		t.Skip("non-contiguous allocation")
	}
	d := ring.Desc{Addr: pfns[0].Base() + mem.PageSize - 100, Len: 400}
	if _, err := p.Enqueue(guestA, r, []ring.Desc{d}); err != nil {
		t.Fatal(err)
	}
	if m.Refs(pfns[0]) != 1 || m.Refs(pfns[1]) != 1 {
		t.Fatalf("refs = %d, %d; want 1, 1", m.Refs(pfns[0]), m.Refs(pfns[1]))
	}
}

func TestGuestCannotForgeEnqueuedDescriptor(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestA)
	p.Enqueue(guestA, r, []ring.Desc{d})
	// The guest tries to rewrite slot 0 to point at guestB's memory.
	evil := ring.Desc{Addr: buf(m, guestB).Addr, Len: 1514, Seq: 0, Flags: ring.FlagValid}
	err := r.WriteDesc(m, guestA, 0, evil)
	if err != mem.ErrHypExclusive {
		t.Fatalf("guest descriptor forge err = %v, want ErrHypExclusive", err)
	}
}

func TestUnregisterReleasesEverything(t *testing.T) {
	m, p, r := newProt(t, ModeHypercall)
	d := buf(m, guestA)
	p.Enqueue(guestA, r, []ring.Desc{d})
	p.UnregisterRing(r)
	if m.Refs(d.Addr.PFN()) != 0 {
		t.Fatal("unregister leaked pins")
	}
	if m.HypExclusive(r.Base.PFN()) {
		t.Fatal("unregister left ring hyp-exclusive")
	}
	if p.Registered(r) {
		t.Fatal("ring still registered")
	}
	if _, err := p.Enqueue(guestA, r, []ring.Desc{buf(m, guestA)}); err != ErrNotRingOwner {
		t.Fatalf("enqueue on unregistered ring err = %v", err)
	}
}

func TestRegisterRingForeignMemory(t *testing.T) {
	m := mem.New()
	base := m.AllocOne(guestB).Base()
	r, _ := ring.New("tx", ring.DefaultLayout, base, 64)
	p := NewProtection(m, ModeHypercall)
	if err := p.RegisterRing(guestA, r, 128); err != ErrForeignMemory {
		t.Fatalf("err = %v, want ErrForeignMemory", err)
	}
}

func TestRegisterRingDuplicate(t *testing.T) {
	_, p, r := newProt(t, ModeHypercall)
	if err := p.RegisterRing(guestA, r, 128); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestDirectEnqueueSkipsValidation(t *testing.T) {
	m, p, r := newProt(t, ModeOff)
	// With protection off a guest CAN point the NIC at foreign memory —
	// this is the vulnerability the mechanism exists to close.
	victim := buf(m, guestB)
	d := ring.Desc{Addr: victim.Addr, Len: 1514} // references guestB's page
	// The ring itself is in guestA memory and not hyp-exclusive in ModeOff.
	n, err := p.DirectEnqueue(guestA, r, []ring.Desc{d})
	if err != nil || n != 1 {
		t.Fatalf("DirectEnqueue = %d, %v", n, err)
	}
	if m.Refs(victim.Addr.PFN()) != 0 {
		t.Fatal("DirectEnqueue must not pin")
	}
}

func TestModeString(t *testing.T) {
	if ModeHypercall.String() != "hypercall" || ModeIOMMU.String() != "iommu" || ModeOff.String() != "off" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode must still format")
	}
}
