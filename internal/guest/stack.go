// Package guest models the operating system inside a domain: a TCP-like
// network stack with calibrated per-packet costs, the benchmark
// application's user-time charges, and the three device drivers the
// evaluation needs — the native driver for a conventional NIC (used by
// native Linux and by Xen's driver domain), the paravirtual front-end
// (its back-end half lives in internal/backend), and the CDNA guest
// driver (§3).
package guest

import (
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/sim"
	"cdna/internal/stats"
	"cdna/internal/transport"
)

// SmallFrame is the frame-size threshold (bytes) under which drivers
// charge ScaleSmall of their per-packet cost: pure acks involve no
// payload copy/remap work.
const SmallFrame = 200

// ScaleCost halves a per-packet driver cost for small (ack-sized)
// frames.
func ScaleCost(t sim.Time, frameSize int) sim.Time {
	if frameSize < SmallFrame {
		return t / 2
	}
	return t
}

// qdiscLimit bounds a driver's transmit backlog (Linux's default txqueuelen
// is 1000 per device; the driver domain aggregates many guests, so the
// shared-device limit is generous).
const qdiscLimit = 4096

// NetDevice is the driver-side contract the stack binds to.
type NetDevice interface {
	MAC() ether.MAC
	// StartXmit queues a frame for transmission; the driver charges its
	// own CPU costs.
	StartXmit(f *ether.Frame)
	// SetRxHandler installs the stack's receive upcall, invoked in the
	// owning domain's context after driver per-packet costs.
	SetRxHandler(h func(f *ether.Frame))
}

// StackCosts are the network-stack CPU costs per wire packet, plus the
// per-flow connection lifecycle costs churn-style workloads exercise.
type StackCosts struct {
	TxData      sim.Time // kernel: segment a data packet down to the driver
	RxData      sim.Time // kernel: deliver a data packet up to the socket
	TxAck       sim.Time // kernel: generate a pure ack
	RxAck       sim.Time // kernel: process a received ack
	UserPerData sim.Time // user: application copy per data packet
	UserBatch   int      // data packets per user-time charge

	// FlowSetup/FlowTeardown are the kernel costs of establishing and
	// tearing down one connection (socket allocation, handshake
	// processing, fd churn). Charged once per short-lived flow by the
	// workload layer, so connection churn is not free.
	FlowSetup    sim.Time
	FlowTeardown sim.Time
}

// Stack is a guest OS network stack bound to one or more devices.
type Stack struct {
	Dom   *cpu.Domain
	Costs StackCosts

	// Arena, when set by the machine builder, supplies pooled transmit
	// frames (it must belong to the stack's engine). Nil falls back to
	// plain heap allocation with identical behavior.
	Arena *ether.Arena

	devs      []NetDevice
	userAcc   int
	Delivered stats.Counter // data packets handed to transport
	// Foreign counts unicast frames dropped at the device boundary
	// because their destination MAC is some other station's: a fabric
	// switch floods unicast to unlearned MACs, so endpoints see frames
	// that were never theirs and must filter them exactly like a
	// non-promiscuous NIC — not dispatch them up the transport layer.
	Foreign stats.Counter

	// Segments queued into the kernel's receive path; rxFn (bound once)
	// pops the segment its task corresponds to. Domain task queues are
	// FIFO, so push/pop order matches and the per-packet capturing
	// closure disappears.
	rxQ  sim.FIFO[*transport.Segment]
	rxFn sim.Fn

	// senders is the roster of transmit adapters created by Sender, in
	// creation order (checkpoint walk order).
	senders []*sender
}

// NewStack creates a stack on the domain's vCPU.
func NewStack(dom *cpu.Domain, costs StackCosts) *Stack {
	if costs.UserBatch <= 0 {
		costs.UserBatch = 16
	}
	s := &Stack{Dom: dom, Costs: costs}
	s.rxFn = dom.Engine().Bind(s.deliverTask)
	return s
}

// AttachDevice binds a device's receive path into the stack. Frames
// whose destination is neither the device's MAC nor broadcast are
// dropped here (counted in Foreign) before any stack cost is charged:
// they are flood copies the fabric sprayed at every port, filtered by
// address exactly as a non-promiscuous endpoint device would.
func (s *Stack) AttachDevice(dev NetDevice) {
	s.devs = append(s.devs, dev)
	dev.SetRxHandler(func(f *ether.Frame) {
		if f.Dst != dev.MAC() && !f.Dst.IsBroadcast() {
			s.Foreign.Inc()
			f.Release()
			return
		}
		s.deliver(f)
	})
}

// Devices returns the attached devices.
func (s *Stack) Devices() []NetDevice { return s.devs }

// ChargeFlowSetup charges one connection establishment to the stack's
// domain (the workload layer's per-flow open hook).
func (s *Stack) ChargeFlowSetup() {
	if s.Costs.FlowSetup > 0 {
		s.Dom.Exec(cpu.CatKernel, s.Costs.FlowSetup, "stack.flowopen", sim.Fn{})
	}
}

// ChargeFlowTeardown charges one connection teardown to the stack's
// domain (the workload layer's per-flow close hook).
func (s *Stack) ChargeFlowTeardown() {
	if s.Costs.FlowTeardown > 0 {
		s.Dom.Exec(cpu.CatKernel, s.Costs.FlowTeardown, "stack.flowclose", sim.Fn{})
	}
}

// chargeUser batches application time so the task count stays sane.
func (s *Stack) chargeUser() {
	s.userAcc++
	if s.userAcc >= s.Costs.UserBatch {
		n := s.userAcc
		s.userAcc = 0
		s.Dom.Exec(cpu.CatUser, sim.Time(n)*s.Costs.UserPerData, "app.copy", sim.Fn{})
	}
}

// sender is the per-(device, peer) transmit adapter behind Sender: one
// segment FIFO plus one task callback bound at creation, so queuing a
// segment into the kernel allocates no closure.
type sender struct {
	s   *Stack
	dev NetDevice
	dst ether.MAC
	q   sim.FIFO[*transport.Segment]
	fn  sim.Fn
}

// Sender returns a transport send function that pushes segments out
// through dev toward dstMAC, charging stack transmit costs.
func (s *Stack) Sender(dev NetDevice, dstMAC ether.MAC) func(*transport.Segment) {
	sn := &sender{s: s, dev: dev, dst: dstMAC}
	sn.fn = s.Dom.Engine().Bind(sn.xmitTask)
	s.senders = append(s.senders, sn)
	return sn.send
}

func (sn *sender) send(seg *transport.Segment) {
	cost := sn.s.Costs.TxData
	name := "stack.tx"
	if seg.Ack {
		cost = sn.s.Costs.TxAck
		name = "stack.txack"
	}
	sn.q.Push(seg)
	sn.s.Dom.Exec(cpu.CatKernel, cost, name, sn.fn)
}

func (sn *sender) xmitTask() {
	seg := sn.q.Pop()
	if !seg.Ack {
		sn.s.chargeUser()
	}
	// The segment's creation reference transfers into the frame: the
	// frame owns its payload and releases it when freed.
	var f *ether.Frame
	if a := sn.s.Arena; a != nil {
		f = a.Get(sn.dev.MAC(), sn.dst, seg.FrameBytes(), seg)
	} else {
		f = &ether.Frame{
			Src: sn.dev.MAC(), Dst: sn.dst,
			Size: seg.FrameBytes(), Payload: seg,
		}
	}
	sn.dev.StartXmit(f)
}

// deliver is the receive upcall from a driver.
func (s *Stack) deliver(f *ether.Frame) {
	seg, ok := f.Payload.(*transport.Segment)
	if !ok {
		f.Release()
		return // opaque/garbage frame (corruption demos): dropped by the stack
	}
	cost := s.Costs.RxData
	name := "stack.rx"
	if seg.Ack {
		cost = s.Costs.RxAck
		name = "stack.rxack"
	}
	// The rx queue outlives the frame: retain the segment before the
	// frame (which owns the payload reference) can be freed.
	seg.Retain()
	s.rxQ.Push(seg)
	f.Release()
	s.Dom.Exec(cpu.CatKernel, cost, name, s.rxFn)
}

func (s *Stack) deliverTask() {
	seg := s.rxQ.Pop()
	if !seg.Ack {
		s.chargeUser()
		s.Delivered.Inc()
	}
	transport.Dispatch(seg)
	seg.Release()
}
