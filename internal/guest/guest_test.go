package guest

import (
	"testing"

	"cdna/internal/bus"
	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/intelnic"
	"cdna/internal/mem"
	"cdna/internal/ricenic"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/transport"
	"cdna/internal/xen"
)

func testDriverCosts() DriverCosts {
	us := sim.Microsecond
	return DriverCosts{TxPerPkt: us, RxPerPkt: us, BatchFixed: us, IrqFixed: us, PIO: us / 2}
}

func testStackCosts() StackCosts {
	us := sim.Microsecond
	return StackCosts{TxData: us, RxData: us, TxAck: us / 2, RxAck: us / 2, UserPerData: us / 10, UserBatch: 4}
}

// --- Stack ---

func TestStackSenderChargesAndTransmits(t *testing.T) {
	eng := sim.New()
	c := cpu.New(eng, cpu.Params{SwitchCost: 0, Slice: sim.Millisecond})
	dom := c.NewDomain("g", cpu.KindGuest)
	st := NewStack(dom, testStackCosts())
	dev := &fakeDev{mac: ether.MakeMAC(1, 1)}
	st.AttachDevice(dev)
	send := st.Sender(dev, ether.MakeMAC(2, 2))
	c.StartWindow()
	conn := transport.NewConn(eng, 0, transport.DefaultSegSize, 4)
	conn.AttachSender(send)
	conn.Start()
	eng.Run(2 * sim.Millisecond) // below the RTO: only the initial burst
	c.EndWindow()
	if len(dev.sent) != transport.InitialCwnd {
		t.Fatalf("transmitted %d frames", len(dev.sent))
	}
	f := dev.sent[0]
	if f.Src != dev.mac || f.Dst != (ether.MakeMAC(2, 2)) || f.Size != 1514 {
		t.Fatalf("frame: %+v", f)
	}
	k, u, _ := dom.DomainTime()
	if k == 0 {
		t.Fatal("no kernel time charged")
	}
	if u == 0 {
		t.Fatal("no user time charged (batched copy)")
	}
}

func TestStackDeliverDispatches(t *testing.T) {
	eng := sim.New()
	c := cpu.New(eng, cpu.Params{SwitchCost: 0, Slice: sim.Millisecond})
	dom := c.NewDomain("g", cpu.KindGuest)
	st := NewStack(dom, testStackCosts())
	dev := &fakeDev{mac: ether.MakeMAC(1, 1)}
	st.AttachDevice(dev)
	conn := transport.NewConn(eng, 0, transport.DefaultSegSize, 4)
	acked := false
	conn.AttachReceiver(func(s *transport.Segment) { acked = true })
	seg := &transport.Segment{Conn: conn, Seq: 0, Len: transport.DefaultSegSize}
	dev.rx(&ether.Frame{Dst: dev.mac, Size: 1514, Payload: seg})
	seg2 := &transport.Segment{Conn: conn, Seq: 1, Len: transport.DefaultSegSize}
	dev.rx(&ether.Frame{Dst: dev.mac, Size: 1514, Payload: seg2})
	// A frame addressed to some other station must be filtered at the
	// device boundary, not dispatched to the conn.
	dev.rx(&ether.Frame{Dst: ether.MakeMAC(9, 9), Size: 1514,
		Payload: &transport.Segment{Conn: conn, Seq: 2, Len: transport.DefaultSegSize}})
	eng.Run(10 * sim.Millisecond)
	if conn.Delivered.Total() != 2*transport.DefaultSegSize {
		t.Fatalf("delivered = %d", conn.Delivered.Total())
	}
	if !acked {
		t.Fatal("delayed ack not emitted after 2 segments")
	}
	if st.Delivered.Total() != 2 {
		t.Fatalf("stack delivered counter = %d", st.Delivered.Total())
	}
	if st.Foreign.Total() != 1 {
		t.Fatalf("foreign counter = %d, want 1", st.Foreign.Total())
	}
}

func TestStackDropsOpaqueFrames(t *testing.T) {
	eng := sim.New()
	c := cpu.New(eng, cpu.Params{Slice: sim.Millisecond})
	dom := c.NewDomain("g", cpu.KindGuest)
	st := NewStack(dom, testStackCosts())
	dev := &fakeDev{}
	st.AttachDevice(dev)
	dev.rx(&ether.Frame{Size: 777}) // garbage frame, no Segment payload
	eng.Run(sim.Millisecond)
	if st.Delivered.Total() != 0 {
		t.Fatal("opaque frame delivered")
	}
}

func TestScaleCost(t *testing.T) {
	if ScaleCost(1000, 1514) != 1000 {
		t.Fatal("data frames pay full cost")
	}
	if ScaleCost(1000, 66) != 500 {
		t.Fatal("ack frames pay half cost")
	}
}

type fakeDev struct {
	mac  ether.MAC
	sent []*ether.Frame
	rx   func(*ether.Frame)
}

func (d *fakeDev) MAC() ether.MAC                    { return d.mac }
func (d *fakeDev) StartXmit(f *ether.Frame)          { d.sent = append(d.sent, f) }
func (d *fakeDev) SetRxHandler(h func(*ether.Frame)) { d.rx = h }

// --- NativeDriver ---

type nativeRig struct {
	eng *sim.Engine
	c   *cpu.CPU
	m   *mem.Memory
	dom *cpu.Domain
	nic *intelnic.NIC
	drv *NativeDriver
	out []*ether.Frame
}

func newNativeRig(t *testing.T) *nativeRig {
	t.Helper()
	r := &nativeRig{eng: sim.New(), m: mem.New()}
	r.c = cpu.New(r.eng, cpu.Params{SwitchCost: 500, Slice: sim.Millisecond})
	r.dom = r.c.NewDomain("host", cpu.KindGuest)
	b := bus.New(r.eng, bus.DefaultParams())
	pipe := ether.NewPipe(r.eng, 1.0, 0)
	pipe.Connect(ether.PortFunc(func(f *ether.Frame) { r.out = append(r.out, f) }))
	r.nic = intelnic.New(r.eng, b, r.m, pipe, intelnic.DefaultParams(), ether.MakeMAC(1, 0))
	var err error
	r.drv, err = NewNativeDriver(r.dom, mem.Dom0+1, r.m, r.nic, testDriverCosts())
	if err != nil {
		t.Fatal(err)
	}
	r.nic.SetIRQ(r.drv.OnInterrupt)
	r.drv.Start()
	return r
}

func TestNativeDriverTransmit(t *testing.T) {
	r := newNativeRig(t)
	for i := 0; i < 20; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514, Src: r.drv.MAC()})
	}
	r.eng.Run(20 * sim.Millisecond)
	if len(r.out) != 20 {
		t.Fatalf("transmitted %d, want 20", len(r.out))
	}
	if r.drv.TxDropped.Total() != 0 {
		t.Fatalf("dropped %d", r.drv.TxDropped.Total())
	}
}

func TestNativeDriverReceiveAndReplenish(t *testing.T) {
	r := newNativeRig(t)
	var got []*ether.Frame
	r.drv.SetRxHandler(func(f *ether.Frame) { got = append(got, f) })
	r.eng.Run(5 * sim.Millisecond) // initial rx posting
	posted := r.drv.rx.Prod()
	for i := 0; i < 10; i++ {
		r.nic.Receive(&ether.Frame{Size: 1514})
	}
	r.eng.Run(20 * sim.Millisecond)
	if len(got) != 10 {
		t.Fatalf("received %d, want 10", len(got))
	}
	if r.drv.rx.Prod() != posted+10 {
		t.Fatalf("replenish: prod %d, want %d", r.drv.rx.Prod(), posted+10)
	}
}

func TestNativeDriverBacklogDrainsNotDrops(t *testing.T) {
	r := newNativeRig(t)
	// Far more frames than the tx ring holds: the qdisc backlog must
	// absorb them and drain via completions.
	const n = RingEntries + 500
	for i := 0; i < n; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514})
	}
	r.eng.Run(sim.Second)
	if r.drv.TxDropped.Total() != 0 {
		t.Fatalf("qdisc dropped %d", r.drv.TxDropped.Total())
	}
	if len(r.out) != n {
		t.Fatalf("transmitted %d, want %d", len(r.out), n)
	}
}

func TestNativeDriverPoolRecycling(t *testing.T) {
	r := newNativeRig(t)
	// Push several pools' worth of packets through: buffers must recycle.
	const n = 3 * PoolPages
	for i := 0; i < n; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514})
	}
	r.eng.Run(2 * sim.Second)
	if len(r.out) != n {
		t.Fatalf("transmitted %d, want %d (pool starved?)", len(r.out), n)
	}
}

// --- CDNADriver ---

type cdnaRig struct {
	eng  *sim.Engine
	hyp  *xen.Hypervisor
	gdom *xen.Domain
	nic  *ricenic.NIC
	cm   *core.ContextManager
	drv  *CDNADriver
	out  []*ether.Frame
}

func newCDNARig(t *testing.T, protMode core.Mode) *cdnaRig {
	t.Helper()
	r := &cdnaRig{eng: sim.New()}
	m := mem.New()
	c := cpu.New(r.eng, cpu.Params{SwitchCost: 500, Slice: sim.Millisecond})
	r.hyp = xen.New(r.eng, c, m, xen.DefaultParams(), protMode)
	r.hyp.NewDomain("dom0", cpu.KindDriver)
	r.gdom = r.hyp.NewDomain("guest", cpu.KindGuest)
	b := bus.New(r.eng, bus.DefaultParams())
	pipe := ether.NewPipe(r.eng, 1.0, 0)
	pipe.Connect(ether.PortFunc(func(f *ether.Frame) { r.out = append(r.out, f) }))
	params := ricenic.DefaultParams()
	params.SeqCheck = protMode == core.ModeHypercall
	var err error
	r.nic, err = ricenic.New(r.eng, b, m, pipe, params)
	if err != nil {
		t.Fatal(err)
	}
	r.cm = core.NewContextManager(r.hyp.Prot)
	r.cm.OnRevoke = func(ctx *core.Context) { r.nic.DetachContext(ctx.ID) }
	txr, err := testRing(m, r.gdom.ID)
	if err != nil {
		t.Fatal(err)
	}
	rxr, err := testRing(m, r.gdom.ID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := r.cm.Assign(r.gdom.ID, ether.MakeMAC(1, 0), txr, rxr)
	if err != nil {
		t.Fatal(err)
	}
	direct := protMode != core.ModeHypercall
	r.drv = NewCDNADriver(r.gdom, m, r.nic, ctx, testDriverCosts(), r.hyp.Prot, direct, 100)
	channels := make([]*xen.EventChannel, core.NumContexts)
	channels[ctx.ID] = r.hyp.NewChannel(r.gdom, "cdna", r.drv.OnVirq)
	dec := r.hyp.NewBitVecDecoder(r.nic.BitVec, channels)
	irq := r.hyp.NewIRQ("rice", dec.HandleIRQ)
	r.nic.SetHost(irq.Raise, func(f *core.Fault) { r.hyp.HandleFault(r.cm, f) })
	r.drv.Start()
	return r
}

func TestCDNADriverTransmit(t *testing.T) {
	r := newCDNARig(t, core.ModeHypercall)
	for i := 0; i < 25; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514, Src: r.drv.MAC()})
	}
	r.eng.Run(50 * sim.Millisecond)
	if len(r.out) != 25 {
		t.Fatalf("transmitted %d, want 25", len(r.out))
	}
	if r.drv.EnqueueErrs.Total() != 0 || r.drv.TxDropped.Total() != 0 {
		t.Fatalf("errs=%d drops=%d", r.drv.EnqueueErrs.Total(), r.drv.TxDropped.Total())
	}
	if r.hyp.Prot.Validated.Total() == 0 {
		t.Fatal("no descriptors went through protection")
	}
}

func TestCDNADriverReceive(t *testing.T) {
	r := newCDNARig(t, core.ModeHypercall)
	var got []*ether.Frame
	r.drv.SetRxHandler(func(f *ether.Frame) { got = append(got, f) })
	r.eng.Run(10 * sim.Millisecond) // initial rx posting
	for i := 0; i < 9; i++ {
		r.nic.Receive(&ether.Frame{Dst: r.drv.MAC(), Size: 1514})
	}
	r.eng.Run(60 * sim.Millisecond)
	if len(got) != 9 {
		t.Fatalf("received %d, want 9", len(got))
	}
	if r.gdom.Virqs.Total() == 0 {
		t.Fatal("no virtual interrupts delivered")
	}
}

func TestCDNADriverBufferRecycling(t *testing.T) {
	r := newCDNARig(t, core.ModeHypercall)
	const n = 2*PoolPages + 100
	for i := 0; i < n; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514})
	}
	r.eng.Run(3 * sim.Second)
	if len(r.out) != n {
		t.Fatalf("transmitted %d, want %d", len(r.out), n)
	}
	if r.drv.TxDropped.Total() != 0 {
		t.Fatalf("dropped %d", r.drv.TxDropped.Total())
	}
}

func TestCDNADriverMaxBatch(t *testing.T) {
	r := newCDNARig(t, core.ModeHypercall)
	r.drv.MaxBatch = 2
	for i := 0; i < 10; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514})
	}
	r.eng.Run(50 * sim.Millisecond)
	if len(r.out) != 10 {
		t.Fatalf("transmitted %d, want 10", len(r.out))
	}
}

func TestCDNADriverDirectMode(t *testing.T) {
	r := newCDNARig(t, core.ModeOff)
	for i := 0; i < 10; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514})
	}
	r.eng.Run(50 * sim.Millisecond)
	if len(r.out) != 10 {
		t.Fatalf("direct mode transmitted %d, want 10", len(r.out))
	}
	if r.hyp.Prot.Validated.Total() != 0 {
		t.Fatal("direct mode must not invoke protection validation")
	}
}

func TestCDNADriverForeignAttackRejected(t *testing.T) {
	r := newCDNARig(t, core.ModeHypercall)
	victim := r.hyp.NewDomain("victim", cpu.KindGuest)
	page := r.hyp.Mem.AllocOne(victim.ID)
	var got error
	r.drv.AttackForeignEnqueue(page.Base(), func(err error) { got = err })
	r.eng.Run(10 * sim.Millisecond)
	if got != core.ErrForeignMemory {
		t.Fatalf("err = %v, want ErrForeignMemory", got)
	}
}

func TestCDNADriverStaleAttackRevoked(t *testing.T) {
	r := newCDNARig(t, core.ModeHypercall)
	for i := 0; i < 5; i++ {
		r.drv.StartXmit(&ether.Frame{Size: 1514})
	}
	r.eng.Run(20 * sim.Millisecond)
	r.drv.AttackStaleProducer(3)
	r.eng.Run(60 * sim.Millisecond)
	if !r.drv.Ctx.Faulted {
		t.Fatal("stale attack not detected")
	}
	if r.cm.Assigned() != 0 {
		t.Fatal("context not revoked")
	}
	// Subsequent enqueues fail cleanly.
	r.drv.StartXmit(&ether.Frame{Size: 1514})
	r.eng.Run(80 * sim.Millisecond)
	if r.drv.EnqueueErrs.Total() == 0 {
		t.Fatal("post-revocation enqueue should error")
	}
}

// testRing allocates a RingEntries-slot descriptor ring in dom's memory.
func testRing(m *mem.Memory, dom mem.DomID) (*ring.Ring, error) {
	pages := (RingEntries*ring.DefaultLayout.Size + mem.PageSize - 1) / mem.PageSize
	return ring.New("t", ring.DefaultLayout, m.Alloc(dom, pages)[0].Base(), RingEntries)
}
