package guest

import (
	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ricenic"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/stats"
	"cdna/internal/xen"
)

// CDNADriver is the guest device driver for one hardware context on a
// CDNA NIC (§3). It interacts with its context exactly as if it were an
// independent physical NIC — building DMA descriptors and writing
// producer indices into its mailbox partition via PIO — except that
// descriptor enqueues go through the hypervisor for validation
// (ModeHypercall), or directly when an IOMMU provides protection or
// protection is disabled (§5.3, Table 4).
type CDNADriver struct {
	Dom   *xen.Domain
	Mem   *mem.Memory
	NIC   *ricenic.NIC
	Ctx   *core.Context
	Costs DriverCosts

	// MaxBatch caps descriptors per enqueue call (0 = unlimited); the
	// batching ablation sweeps it.
	MaxBatch int

	// Direct bypasses the enqueue hypercall (ModeIOMMU / ModeOff);
	// DirectPerDesc is the guest-kernel cost of writing a descriptor
	// itself.
	Direct        bool
	DirectPerDesc sim.Time
	Prot          *core.Protection

	txPool, rxPool []mem.PFN
	// Per-slot buffer/frame tables indexed by ring index & (RingEntries-1):
	// the ring indices are free-running over a power-of-two ring, so a
	// slot is reused only after its previous occupant was consumed. PFN 0
	// is never allocated and a nil frame marks an empty slot, so no
	// separate presence set is needed — and the per-packet hot path does
	// array stores instead of map inserts/deletes.
	txBufs, rxBufs []mem.PFN
	inflight       []*ether.Frame

	// Recycled batch buffers: a staged batch and its descriptor image
	// travel through an async enqueue (hypercall or direct) and return
	// to these free lists in the completion, so steady-state batching
	// allocates nothing.
	stagedFree [][]stagedPkt
	descFree   [][]ring.Desc

	backlog                sim.FIFO[*ether.Frame] // qdisc: frames waiting for ring space
	stagedTx               []stagedPkt
	stagedRx               int
	enqTx                  bool
	enqRx                  bool
	lastTxCons, lastRxCons uint32

	// enqOps carries each staged batch through its asynchronous enqueue
	// (hypercall or direct): the op is pushed when the charged task is
	// scheduled and popped by the task body, in task-queue order. A
	// queue instead of a captured closure keeps in-flight enqueues
	// checkpointable.
	enqOps sim.FIFO[enqOp]

	rxHandler func(*ether.Frame)

	// Per-packet frames threaded through domain tasks (FIFO order) plus
	// the task callbacks bound once in NewCDNADriver; the batch-level
	// enqueue/kick callbacks are bound too since they capture only d.
	txIn sim.FIFO[*ether.Frame]
	rxUp sim.FIFO[*ether.Frame]

	txInFn, rxUpFn, virqFn, txBatchFn, rxBatchFn, kickFn sim.Fn
	hcFn, directFn, rxPioFn                              sim.Fn

	TxDropped   stats.Counter
	EnqueueErrs stats.Counter
}

type stagedPkt struct {
	desc  ring.Desc
	frame *ether.Frame
	pfn   mem.PFN
}

// enqOp is one staged descriptor batch in flight through its enqueue
// call. tx carries the staged packets to complete; rx carries only the
// buffer count (n) the descriptors were built from.
type enqOp struct {
	tx    bool
	batch []stagedPkt
	descs []ring.Desc
	n     int
}

// NewCDNADriver binds a driver to an assigned context. The rings were
// created in guest memory when the hypervisor assigned the context.
func NewCDNADriver(dom *xen.Domain, m *mem.Memory, n *ricenic.NIC, ctx *core.Context, costs DriverCosts, prot *core.Protection, direct bool, directPerDesc sim.Time) *CDNADriver {
	// The slot tables below are indexed by free-running ring index
	// masked to RingEntries; rings of any other size would alias slots.
	if ctx.TxRing.Entries != RingEntries || ctx.RxRing.Entries != RingEntries {
		panic("guest: CDNA context rings must have guest.RingEntries slots")
	}
	d := &CDNADriver{
		Dom: dom, Mem: m, NIC: n, Ctx: ctx, Costs: costs,
		Direct: direct, DirectPerDesc: directPerDesc, Prot: prot,
		txBufs: make([]mem.PFN, RingEntries), rxBufs: make([]mem.PFN, RingEntries),
		inflight: make([]*ether.Frame, RingEntries),
	}
	eng := dom.VCPU.Engine()
	d.txInFn = eng.Bind(d.txEnqueueTask)
	d.rxUpFn = eng.Bind(d.rxUpTask)
	d.virqFn = eng.Bind(d.virqTask)
	d.txBatchFn = eng.Bind(d.txBatchTask)
	d.rxBatchFn = eng.Bind(d.rxBatchTask)
	d.kickFn = eng.Bind(d.kickTask)
	d.hcFn = eng.Bind(d.hypercallTask)
	d.directFn = eng.Bind(d.directTask)
	d.rxPioFn = eng.Bind(d.kickRxTask)
	d.txPool = m.Alloc(dom.ID, PoolPages)
	d.rxPool = m.Alloc(dom.ID, PoolPages)
	n.AttachContext(ctx, func(idx uint32) *ether.Frame { return d.inflight[idx&(RingEntries-1)] })
	return d
}

// slot maps a free-running ring index to its table slot.
func slot(idx uint32) uint32 { return idx & (RingEntries - 1) }

func (d *CDNADriver) takeStaged() []stagedPkt {
	if n := len(d.stagedFree); n > 0 {
		b := d.stagedFree[n-1]
		d.stagedFree = d.stagedFree[:n-1]
		return b
	}
	return nil
}

func (d *CDNADriver) takeDescs(n int) []ring.Desc {
	// Pop only when the pooled buffer is big enough; an undersized one
	// stays pooled (its eventual larger replacement lands above it and
	// serves future takes), instead of being dropped and reallocated.
	if k := len(d.descFree); k > 0 {
		if b := d.descFree[k-1]; cap(b) >= n {
			d.descFree = d.descFree[:k-1]
			return b[:n]
		}
	}
	return make([]ring.Desc, n)
}

// MAC implements NetDevice: the context's unique Ethernet address.
func (d *CDNADriver) MAC() ether.MAC { return d.Ctx.MAC }

// SetRxHandler implements NetDevice.
func (d *CDNADriver) SetRxHandler(h func(*ether.Frame)) { d.rxHandler = h }

// Start posts the initial receive buffers through the protection path.
func (d *CDNADriver) Start() {
	n := RingEntries - 1
	if n > len(d.rxPool) {
		n = len(d.rxPool)
	}
	d.stagedRx = n
	d.flushRx()
}

// StartXmit implements NetDevice.
func (d *CDNADriver) StartXmit(f *ether.Frame) {
	d.txIn.Push(f)
	d.Dom.VCPU.Exec(cpu.CatKernel, ScaleCost(d.Costs.TxPerPkt, f.Size), "cdna.tx", d.txInFn)
}

func (d *CDNADriver) txEnqueueTask() {
	f := d.txIn.Pop()
	if d.backlog.Len() >= qdiscLimit {
		d.TxDropped.Inc()
		f.Release()
		return
	}
	d.backlog.Push(f)
	d.reapTx()
	d.stageFromBacklog()
	d.scheduleTxEnqueue()
}

// stageFromBacklog moves backlog frames into the staged batch while
// buffer pages and ring space allow.
func (d *CDNADriver) stageFromBacklog() {
	for d.backlog.Len() > 0 && len(d.txPool) > 0 &&
		len(d.stagedTx)+d.Ctx.TxRing.Avail() < RingEntries-1 {
		f := d.backlog.Pop()
		pfn := d.txPool[len(d.txPool)-1]
		d.txPool = d.txPool[:len(d.txPool)-1]
		d.stagedTx = append(d.stagedTx, stagedPkt{
			desc:  ring.Desc{Addr: pfn.Base(), Len: uint16(f.Size), Flags: ring.FlagTx},
			frame: f,
			pfn:   pfn,
		})
	}
}

func (d *CDNADriver) scheduleTxEnqueue() {
	if d.enqTx {
		return
	}
	d.enqTx = true
	d.Dom.VCPU.Exec(cpu.CatKernel, d.Costs.BatchFixed, "cdna.txbatch", d.txBatchFn)
}

func (d *CDNADriver) txBatchTask() {
	d.enqTx = false
	batch := d.stagedTx
	d.stagedTx = d.takeStaged()
	if d.MaxBatch > 0 && len(batch) > d.MaxBatch {
		// The tail beyond the cap is re-staged; it keeps the batch's
		// backing array, and the capped head is completed from it.
		d.stagedTx = append(d.stagedTx, batch[d.MaxBatch:]...)
		batch = batch[:d.MaxBatch]
		d.scheduleTxEnqueue()
	}
	if len(batch) == 0 {
		d.releaseStaged(batch)
		return
	}
	descs := d.takeDescs(len(batch))
	for i, s := range batch {
		descs[i] = s.desc
	}
	d.issueEnqueue(enqOp{tx: true, batch: batch, descs: descs}, "cdna.direct")
}

// issueEnqueue schedules the charged enqueue call for an op: the direct
// guest-kernel write (ModeIOMMU / ModeOff) or the validation hypercall.
func (d *CDNADriver) issueEnqueue(op enqOp, directName string) {
	d.enqOps.Push(op)
	if d.Direct {
		d.Dom.VCPU.Exec(cpu.CatKernel, sim.Time(len(op.descs))*d.DirectPerDesc, directName, d.directFn)
		return
	}
	d.Dom.Hypercall(d.Dom.CDNAEnqueueCost(op.descs), "cdna_enqueue", d.hcFn)
}

func (d *CDNADriver) opRing(op enqOp) *ring.Ring {
	if op.tx {
		return d.Ctx.TxRing
	}
	return d.Ctx.RxRing
}

func (d *CDNADriver) hypercallTask() {
	op := d.enqOps.Pop()
	n, err := d.Dom.CDNAValidate(d.opRing(op), op.descs)
	d.finishEnqueue(op, n, err)
}

func (d *CDNADriver) directTask() {
	op := d.enqOps.Pop()
	n, err := d.Prot.DirectEnqueue(d.Dom.ID, d.opRing(op), op.descs)
	d.finishEnqueue(op, n, err)
}

// finishEnqueue completes an op in the context of its enqueue call,
// exactly what the per-batch completion closures used to do.
func (d *CDNADriver) finishEnqueue(op enqOp, n int, err error) {
	if op.tx {
		if err != nil {
			d.EnqueueErrs.Add(uint64(len(op.batch)))
			for _, s := range op.batch {
				d.txPool = append(d.txPool, s.pfn)
				s.frame.Release()
			}
		} else {
			base := d.Ctx.TxRing.Prod() - uint32(n)
			for i, s := range op.batch {
				idx := slot(base + uint32(i))
				d.inflight[idx] = s.frame
				d.txBufs[idx] = s.pfn
			}
			d.kickTx()
		}
		d.releaseStaged(op.batch)
		d.descFree = append(d.descFree, op.descs)
		return
	}
	if err != nil {
		d.EnqueueErrs.Add(uint64(op.n))
		for i := 0; i < op.n; i++ {
			d.rxPool = append(d.rxPool, op.descs[i].Addr.PFN())
		}
	} else {
		base := d.Ctx.RxRing.Prod() - uint32(n)
		for i := 0; i < n; i++ {
			d.rxBufs[slot(base+uint32(i))] = op.descs[i].Addr.PFN()
		}
		d.Dom.VCPU.Exec(cpu.CatKernel, d.Costs.PIO, "cdna.rxpio", d.rxPioFn)
	}
	d.descFree = append(d.descFree, op.descs)
}

func (d *CDNADriver) kickRxTask() {
	d.NIC.PIOWrite(ricenic.MailboxPIOAddr(d.Ctx.ID, ricenic.MboxRxProd), d.Ctx.RxRing.Prod())
}

func (d *CDNADriver) kickTx() {
	d.Dom.VCPU.Exec(cpu.CatKernel, d.Costs.PIO, "cdna.pio", d.kickFn)
}

func (d *CDNADriver) kickTask() {
	d.NIC.PIOWrite(ricenic.MailboxPIOAddr(d.Ctx.ID, ricenic.MboxTxProd), d.Ctx.TxRing.Prod())
}

// releaseStaged returns a consumed batch buffer to the free list,
// clearing the full used region — including entries beyond a MaxBatch
// re-slice — so the pooled array pins no frames or buffer pages.
func (d *CDNADriver) releaseStaged(batch []stagedPkt) {
	batch = batch[:cap(batch)]
	for i := range batch {
		batch[i] = stagedPkt{}
	}
	d.stagedFree = append(d.stagedFree, batch[:0])
}

// reapTx recycles transmit buffers the NIC has finished with (the
// consumer index it wrote back has passed them).
func (d *CDNADriver) reapTx() {
	for d.lastTxCons != d.Ctx.TxRing.Cons() {
		idx := slot(d.lastTxCons)
		if pfn := d.txBufs[idx]; pfn != 0 {
			d.txPool = append(d.txPool, pfn)
			d.txBufs[idx] = 0
		}
		if f := d.inflight[idx]; f != nil {
			f.Release()
			d.inflight[idx] = nil
		}
		d.lastTxCons++
	}
}

// OnVirq is the driver's virtual-interrupt handler (§3.2): invoked when
// the hypervisor decodes this context's bit from a NIC interrupt bit
// vector.
func (d *CDNADriver) OnVirq() {
	d.Dom.VCPU.Exec(cpu.CatKernel, d.Costs.IrqFixed, "cdna.virq", d.virqFn)
}

func (d *CDNADriver) virqTask() {
	d.reapTx()
	if d.backlog.Len() > 0 {
		d.stageFromBacklog()
		d.scheduleTxEnqueue()
	}
	comps := d.NIC.DrainRx(d.Ctx.ID)
	for _, c := range comps {
		f := c.Frame
		d.rxUp.Push(f)
		d.Dom.VCPU.Exec(cpu.CatKernel, ScaleCost(d.Costs.RxPerPkt, f.Size), "cdna.rx", d.rxUpFn)
	}
	// Recycle consumed rx buffers and repost the same count.
	for d.lastRxCons != d.Ctx.RxRing.Cons() {
		idx := slot(d.lastRxCons)
		if pfn := d.rxBufs[idx]; pfn != 0 {
			d.rxPool = append(d.rxPool, pfn)
			d.rxBufs[idx] = 0
		}
		d.lastRxCons++
	}
	if len(comps) > 0 {
		d.stagedRx += len(comps)
		d.flushRx()
	}
}

func (d *CDNADriver) rxUpTask() {
	f := d.rxUp.Pop()
	if d.rxHandler != nil {
		d.rxHandler(f)
	} else {
		f.Release()
	}
}

// flushRx posts stagedRx receive buffers in one batched enqueue.
func (d *CDNADriver) flushRx() {
	if d.enqRx {
		return
	}
	d.enqRx = true
	d.Dom.VCPU.Exec(cpu.CatKernel, d.Costs.BatchFixed, "cdna.rxbatch", d.rxBatchFn)
}

func (d *CDNADriver) rxBatchTask() {
	d.enqRx = false
	n := d.stagedRx
	if n > len(d.rxPool) {
		n = len(d.rxPool)
	}
	if d.MaxBatch > 0 && n > d.MaxBatch {
		n = d.MaxBatch
	}
	if n <= 0 {
		return
	}
	d.stagedRx -= n
	if d.stagedRx > 0 {
		d.flushRx()
	}
	descs := d.takeDescs(n)
	for i := 0; i < n; i++ {
		pfn := d.rxPool[len(d.rxPool)-1]
		d.rxPool = d.rxPool[:len(d.rxPool)-1]
		descs[i] = ring.Desc{Addr: pfn.Base(), Len: ether.HeaderBytes + ether.MTU + 86, Flags: ring.FlagValid}
	}
	d.issueEnqueue(enqOp{descs: descs, n: n}, "cdna.rxdirect")
}

// --- Misbehaving-driver entry points (fault-injection tests and the
// protection example; §3.3's threat model) ---

// AttackForeignEnqueue attempts to enqueue a descriptor pointing at
// another domain's memory; the result arrives on cb.
func (d *CDNADriver) AttackForeignEnqueue(victim mem.Addr, cb func(error)) {
	descs := []ring.Desc{{Addr: victim, Len: 1514, Flags: ring.FlagTx}}
	if d.Direct {
		d.Dom.VCPU.Exec(cpu.CatKernel, d.DirectPerDesc, "attack.direct", sim.RawFn(func() {
			_, err := d.Prot.DirectEnqueue(d.Dom.ID, d.Ctx.TxRing, descs)
			cb(err)
		}))
		return
	}
	d.Dom.Hypercall(d.Dom.CDNAEnqueueCost(descs), "cdna_enqueue", sim.RawFn(func() {
		_, err := d.Dom.CDNAValidate(d.Ctx.TxRing, descs)
		cb(err)
	}))
}

// AttackStaleProducer forges a producer-index mailbox write `extra`
// slots past the last valid descriptor, exposing stale ring contents —
// the replay the sequence numbers must catch.
func (d *CDNADriver) AttackStaleProducer(extra uint32) {
	d.Dom.VCPU.Exec(cpu.CatKernel, d.Costs.PIO, "attack.pio", sim.RawFn(func() {
		d.NIC.PIOWrite(ricenic.MailboxPIOAddr(d.Ctx.ID, ricenic.MboxTxProd), d.Ctx.TxRing.Prod()+extra)
	}))
}
