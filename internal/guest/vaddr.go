package guest

import (
	"errors"
	"fmt"

	"cdna/internal/mem"
	"cdna/internal/ring"
)

// VAddr is a guest virtual address.
type VAddr uint64

// AddrSpace is a minimal guest virtual address space: a page-granular
// map from virtual to physical frames. It backs the small translation
// library the paper describes in §3.4: "a small library translates the
// driver's virtual addresses to physical addresses within the guest's
// driver before making a hypercall request to enqueue a DMA descriptor.
// For VMMs that use virtual addresses, this library would do nothing."
type AddrSpace struct {
	dom   mem.DomID
	m     *mem.Memory
	table map[uint64]mem.PFN // VPN -> PFN
	next  VAddr
}

// Errors from translation.
var (
	ErrUnmapped = errors.New("guest: virtual address not mapped")
)

// NewAddrSpace creates an empty address space for dom.
func NewAddrSpace(m *mem.Memory, dom mem.DomID) *AddrSpace {
	return &AddrSpace{dom: dom, m: m, table: make(map[uint64]mem.PFN), next: 0x400000}
}

// MapPage installs a translation for one page and returns its virtual
// base address.
func (as *AddrSpace) MapPage(pfn mem.PFN) VAddr {
	va := as.next
	as.next += mem.PageSize
	as.table[uint64(va)>>mem.PageShift] = pfn
	return va
}

// Alloc allocates n fresh physical pages, maps them contiguously in the
// virtual space, and returns the virtual base.
func (as *AddrSpace) Alloc(n int) VAddr {
	pfns := as.m.Alloc(as.dom, n)
	base := as.MapPage(pfns[0])
	for _, pfn := range pfns[1:] {
		as.MapPage(pfn)
	}
	return base
}

// Translate resolves one virtual address to a physical address.
func (as *AddrSpace) Translate(va VAddr) (mem.Addr, error) {
	pfn, ok := as.table[uint64(va)>>mem.PageShift]
	if !ok {
		return 0, fmt.Errorf("%w: %#x", ErrUnmapped, uint64(va))
	}
	return pfn.Base() + mem.Addr(uint64(va)&(mem.PageSize-1)), nil
}

// VDesc is a DMA descriptor expressed in guest virtual addresses, the
// form a driver would naturally hold before the translation library
// runs.
type VDesc struct {
	VAddr VAddr
	Len   uint16
	Flags uint16
}

// TranslateDescs converts virtual-address descriptors to the physical
// descriptors the CDNA enqueue hypercall takes, splitting any buffer
// whose virtual range maps to discontiguous physical pages. This is the
// §3.4 library: it runs entirely inside the guest driver, before the
// hypercall.
func (as *AddrSpace) TranslateDescs(vdescs []VDesc) ([]ring.Desc, error) {
	out := make([]ring.Desc, 0, len(vdescs))
	for _, vd := range vdescs {
		if vd.Len == 0 {
			return nil, errors.New("guest: zero-length virtual descriptor")
		}
		va := vd.VAddr
		remaining := int(vd.Len)
		for remaining > 0 {
			pa, err := as.Translate(va)
			if err != nil {
				return nil, err
			}
			chunk := mem.PageSize - pa.Offset()
			if chunk > remaining {
				chunk = remaining
			}
			// Extend the chunk across physically contiguous pages so a
			// well-behaved allocation stays a single descriptor.
			for chunk < remaining {
				nextPA, err := as.Translate(va + VAddr(chunk))
				if err != nil {
					return nil, err
				}
				if nextPA != pa+mem.Addr(chunk) {
					break
				}
				ext := mem.PageSize
				if ext > remaining-chunk {
					ext = remaining - chunk
				}
				chunk += ext
			}
			out = append(out, ring.Desc{Addr: pa, Len: uint16(chunk), Flags: vd.Flags})
			va += VAddr(chunk)
			remaining -= chunk
		}
	}
	return out, nil
}
