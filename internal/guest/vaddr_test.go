package guest

import (
	"errors"
	"testing"
	"testing/quick"

	"cdna/internal/core"
	"cdna/internal/mem"
	"cdna/internal/ring"
)

func TestAddrSpaceTranslate(t *testing.T) {
	m := mem.New()
	as := NewAddrSpace(m, mem.Dom0+1)
	pfn := m.AllocOne(mem.Dom0 + 1)
	va := as.MapPage(pfn)
	pa, err := as.Translate(va + 123)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pfn.Base()+123 {
		t.Fatalf("pa = %#x, want %#x", pa, pfn.Base()+123)
	}
	if _, err := as.Translate(0xdeadbeef); !errors.Is(err, ErrUnmapped) {
		t.Fatalf("unmapped err = %v", err)
	}
}

func TestTranslateDescsSinglePage(t *testing.T) {
	m := mem.New()
	as := NewAddrSpace(m, mem.Dom0+1)
	va := as.Alloc(1)
	descs, err := as.TranslateDescs([]VDesc{{VAddr: va + 100, Len: 1514, Flags: ring.FlagTx}})
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 || descs[0].Len != 1514 || descs[0].Flags != ring.FlagTx {
		t.Fatalf("descs = %+v", descs)
	}
}

func TestTranslateDescsContiguousPagesMerge(t *testing.T) {
	m := mem.New()
	as := NewAddrSpace(m, mem.Dom0+1)
	// Fresh allocations are physically contiguous in this allocator, so
	// a buffer spanning the page boundary stays one descriptor.
	va := as.Alloc(2)
	descs, err := as.TranslateDescs([]VDesc{{VAddr: va + mem.PageSize - 100, Len: 300}})
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 1 || descs[0].Len != 300 {
		t.Fatalf("contiguous span split: %+v", descs)
	}
}

func TestTranslateDescsDiscontiguousSplit(t *testing.T) {
	m := mem.New()
	as := NewAddrSpace(m, mem.Dom0+1)
	// Map two physically discontiguous pages virtually adjacent.
	pfns := m.Alloc(mem.Dom0+1, 3)
	va := as.MapPage(pfns[0])
	as.MapPage(pfns[2]) // skip pfns[1]: discontiguous
	descs, err := as.TranslateDescs([]VDesc{{VAddr: va + mem.PageSize - 100, Len: 300}})
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 2 {
		t.Fatalf("discontiguous buffer must split: %+v", descs)
	}
	if int(descs[0].Len)+int(descs[1].Len) != 300 {
		t.Fatalf("split lost bytes: %+v", descs)
	}
	if descs[0].Addr != pfns[0].Base()+mem.PageSize-100 || descs[1].Addr != pfns[2].Base() {
		t.Fatalf("split addresses wrong: %+v", descs)
	}
}

func TestTranslateDescsUnmappedAndZero(t *testing.T) {
	m := mem.New()
	as := NewAddrSpace(m, mem.Dom0+1)
	if _, err := as.TranslateDescs([]VDesc{{VAddr: 0x999000, Len: 10}}); err == nil {
		t.Fatal("unmapped translation accepted")
	}
	va := as.Alloc(1)
	if _, err := as.TranslateDescs([]VDesc{{VAddr: va, Len: 0}}); err == nil {
		t.Fatal("zero-length descriptor accepted")
	}
}

// TestTranslatedDescsPassProtection: the §3.4 pipeline end to end —
// virtual descriptors translated in the guest, then validated and
// enqueued by the hypervisor.
func TestTranslatedDescsPassProtection(t *testing.T) {
	m := mem.New()
	const dom = mem.Dom0 + 1
	as := NewAddrSpace(m, dom)
	prot := core.NewProtection(m, core.ModeHypercall)
	r, err := ring.New("tx", ring.DefaultLayout, m.AllocOne(dom).Base(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := prot.RegisterRing(dom, r, 128); err != nil {
		t.Fatal(err)
	}
	va := as.Alloc(2)
	descs, err := as.TranslateDescs([]VDesc{{VAddr: va + 200, Len: 1514, Flags: ring.FlagTx}})
	if err != nil {
		t.Fatal(err)
	}
	n, err := prot.Enqueue(dom, r, descs)
	if err != nil || n != len(descs) {
		t.Fatalf("Enqueue = %d, %v", n, err)
	}
}

// Property: translation conserves length and never crosses an unmapped
// boundary.
func TestTranslateDescsProperty(t *testing.T) {
	f := func(off uint16, length uint16, pages uint8) bool {
		m := mem.New()
		as := NewAddrSpace(m, mem.Dom0+1)
		n := int(pages%4) + 2
		va := as.Alloc(n)
		o := int(off) % mem.PageSize
		l := int(length)%(mem.PageSize*(n-1)) + 1
		descs, err := as.TranslateDescs([]VDesc{{VAddr: va + VAddr(o), Len: uint16(min(l, 65535))}})
		if err != nil {
			return false
		}
		total := 0
		for _, d := range descs {
			total += int(d.Len)
		}
		return total == min(l, 65535)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
