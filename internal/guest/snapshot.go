package guest

import (
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/stats"
	"cdna/internal/transport"
)

// This file is the checkpoint layer for the guest drivers and stack.
// Driver-side ring producer/consumer indices are restored by the NIC
// engine (the rings are shared objects); what lives here is the
// driver's own bookkeeping: buffer pools, slot tables, backlogs and
// in-flight batches. Recycling free lists (stagedFree/descFree) restore
// empty — they are never observable.

// SlotFrame is one occupied slot of a nil-holed frame table.
type SlotFrame struct {
	Slot  uint32
	Frame ether.FrameState
}

// IdxPFN is one entry of an index→buffer-page map, serialized sorted by
// index for determinism.
type IdxPFN struct {
	Idx uint32
	PFN mem.PFN
}

// StagedPktState is one staged transmit packet.
type StagedPktState struct {
	Desc  ring.Desc
	Frame ether.FrameState
	Pfn   mem.PFN
}

// EnqOpState is one descriptor batch in flight through its enqueue call.
type EnqOpState struct {
	Tx    bool
	Batch []StagedPktState
	Descs []ring.Desc
	N     int
}

// CDNADriverState is the CDNA guest driver's checkpoint image.
type CDNADriverState struct {
	TxPool, RxPool []mem.PFN
	TxBufs, RxBufs []mem.PFN // RingEntries slots; PFN 0 = empty
	Inflight       []SlotFrame

	Backlog  []ether.FrameState
	StagedTx []StagedPktState
	StagedRx int
	EnqTx    bool
	EnqRx    bool

	LastTxCons, LastRxCons uint32
	EnqOps                 []EnqOpState

	TxIn, RxUp []ether.FrameState

	TxDropped   stats.CounterState
	EnqueueErrs stats.CounterState
}

func captureStaged(batch []stagedPkt, codec ether.PayloadCodec) ([]StagedPktState, error) {
	if batch == nil {
		return nil, nil
	}
	out := make([]StagedPktState, len(batch))
	for i, s := range batch {
		fs, err := ether.CaptureFrame(s.frame, codec)
		if err != nil {
			return nil, err
		}
		out[i] = StagedPktState{Desc: s.desc, Frame: fs, Pfn: s.pfn}
	}
	return out, nil
}

func restoreStaged(ss []StagedPktState, codec ether.PayloadCodec) ([]stagedPkt, error) {
	if ss == nil {
		return nil, nil
	}
	out := make([]stagedPkt, len(ss))
	for i, s := range ss {
		f, err := ether.RestoreFrame(s.Frame, codec)
		if err != nil {
			return nil, err
		}
		out[i] = stagedPkt{desc: s.Desc, frame: f, pfn: s.Pfn}
	}
	return out, nil
}

// State captures the driver.
func (d *CDNADriver) State(codec ether.PayloadCodec) (CDNADriverState, error) {
	s := CDNADriverState{
		TxPool:      append([]mem.PFN(nil), d.txPool...),
		RxPool:      append([]mem.PFN(nil), d.rxPool...),
		TxBufs:      append([]mem.PFN(nil), d.txBufs...),
		RxBufs:      append([]mem.PFN(nil), d.rxBufs...),
		StagedRx:    d.stagedRx,
		EnqTx:       d.enqTx,
		EnqRx:       d.enqRx,
		LastTxCons:  d.lastTxCons,
		LastRxCons:  d.lastRxCons,
		TxDropped:   d.TxDropped.State(),
		EnqueueErrs: d.EnqueueErrs.State(),
	}
	for i, f := range d.inflight {
		if f == nil {
			continue
		}
		fs, err := ether.CaptureFrame(f, codec)
		if err != nil {
			return CDNADriverState{}, err
		}
		s.Inflight = append(s.Inflight, SlotFrame{Slot: uint32(i), Frame: fs})
	}
	var err error
	if s.Backlog, err = ether.CaptureFrameFIFO(&d.backlog, codec); err != nil {
		return CDNADriverState{}, err
	}
	if s.StagedTx, err = captureStaged(d.stagedTx, codec); err != nil {
		return CDNADriverState{}, err
	}
	s.EnqOps = make([]EnqOpState, d.enqOps.Len())
	for i := 0; i < d.enqOps.Len(); i++ {
		op := d.enqOps.At(i)
		batch, err := captureStaged(op.batch, codec)
		if err != nil {
			return CDNADriverState{}, err
		}
		s.EnqOps[i] = EnqOpState{Tx: op.tx, Batch: batch,
			Descs: append([]ring.Desc(nil), op.descs...), N: op.n}
	}
	if s.TxIn, err = ether.CaptureFrameFIFO(&d.txIn, codec); err != nil {
		return CDNADriverState{}, err
	}
	if s.RxUp, err = ether.CaptureFrameFIFO(&d.rxUp, codec); err != nil {
		return CDNADriverState{}, err
	}
	return s, nil
}

// SetState restores the driver into a freshly built machine.
func (d *CDNADriver) SetState(s CDNADriverState, codec ether.PayloadCodec) error {
	if len(s.TxBufs) != len(d.txBufs) || len(s.RxBufs) != len(d.rxBufs) {
		return fmt.Errorf("guest: cdna slot-table size mismatch: snapshot has %d/%d, machine has %d/%d",
			len(s.TxBufs), len(s.RxBufs), len(d.txBufs), len(d.rxBufs))
	}
	d.txPool = append(d.txPool[:0], s.TxPool...)
	d.rxPool = append(d.rxPool[:0], s.RxPool...)
	copy(d.txBufs, s.TxBufs)
	copy(d.rxBufs, s.RxBufs)
	for i := range d.inflight {
		d.inflight[i] = nil
	}
	for _, sf := range s.Inflight {
		if sf.Slot >= uint32(len(d.inflight)) {
			return fmt.Errorf("guest: cdna inflight slot %d out of range", sf.Slot)
		}
		f, err := ether.RestoreFrame(sf.Frame, codec)
		if err != nil {
			return err
		}
		d.inflight[sf.Slot] = f
	}
	if err := ether.RestoreFrameFIFO(&d.backlog, s.Backlog, codec); err != nil {
		return err
	}
	var err error
	if d.stagedTx, err = restoreStaged(s.StagedTx, codec); err != nil {
		return err
	}
	d.stagedRx = s.StagedRx
	d.enqTx, d.enqRx = s.EnqTx, s.EnqRx
	d.lastTxCons, d.lastRxCons = s.LastTxCons, s.LastRxCons
	d.enqOps.Clear()
	for _, os := range s.EnqOps {
		batch, err := restoreStaged(os.Batch, codec)
		if err != nil {
			return err
		}
		d.enqOps.Push(enqOp{tx: os.Tx, batch: batch,
			descs: append([]ring.Desc(nil), os.Descs...), n: os.N})
	}
	if err := ether.RestoreFrameFIFO(&d.txIn, s.TxIn, codec); err != nil {
		return err
	}
	if err := ether.RestoreFrameFIFO(&d.rxUp, s.RxUp, codec); err != nil {
		return err
	}
	d.stagedFree = d.stagedFree[:0]
	d.descFree = d.descFree[:0]
	d.TxDropped.SetState(s.TxDropped)
	d.EnqueueErrs.SetState(s.EnqueueErrs)
	return nil
}

// NativeDriverState is the conventional driver's checkpoint image. The
// buffer/frame maps serialize sorted by ring index.
type NativeDriverState struct {
	TxPool, RxPool []mem.PFN
	TxBufs, RxBufs []IdxPFN
	Inflight       []SlotFrame

	LastTxCons, LastRxCons uint32
	KickQueued             bool
	RxKickQueued           bool

	Backlog    []ether.FrameState
	TxIn, RxUp []ether.FrameState

	TxDropped stats.CounterState
}

func capturePFNMap(m map[uint32]mem.PFN) []IdxPFN {
	out := make([]IdxPFN, 0, len(m))
	for idx, pfn := range m {
		out = append(out, IdxPFN{Idx: idx, PFN: pfn})
	}
	sortIdxPFN(out)
	return out
}

func sortIdxPFN(s []IdxPFN) {
	// Tiny insertion sort keeps this file free of a sort import for one
	// call site; maps hold at most RingEntries entries.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Idx < s[j-1].Idx; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// State captures the driver.
func (d *NativeDriver) State(codec ether.PayloadCodec) (NativeDriverState, error) {
	s := NativeDriverState{
		TxPool:       append([]mem.PFN(nil), d.txPool...),
		RxPool:       append([]mem.PFN(nil), d.rxPool...),
		TxBufs:       capturePFNMap(d.txBufs),
		RxBufs:       capturePFNMap(d.rxBufs),
		LastTxCons:   d.lastTxCons,
		LastRxCons:   d.lastRxCons,
		KickQueued:   d.kickQueued,
		RxKickQueued: d.rxKickQueued,
		TxDropped:    d.TxDropped.State(),
	}
	idxs := make([]uint32, 0, len(d.inflight))
	for idx := range d.inflight {
		idxs = append(idxs, idx)
	}
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	for _, idx := range idxs {
		fs, err := ether.CaptureFrame(d.inflight[idx], codec)
		if err != nil {
			return NativeDriverState{}, err
		}
		s.Inflight = append(s.Inflight, SlotFrame{Slot: idx, Frame: fs})
	}
	var err error
	if s.Backlog, err = ether.CaptureFrameFIFO(&d.backlog, codec); err != nil {
		return NativeDriverState{}, err
	}
	if s.TxIn, err = ether.CaptureFrameFIFO(&d.txIn, codec); err != nil {
		return NativeDriverState{}, err
	}
	if s.RxUp, err = ether.CaptureFrameFIFO(&d.rxUp, codec); err != nil {
		return NativeDriverState{}, err
	}
	return s, nil
}

// SetState restores the driver into a freshly built machine.
func (d *NativeDriver) SetState(s NativeDriverState, codec ether.PayloadCodec) error {
	d.txPool = append(d.txPool[:0], s.TxPool...)
	d.rxPool = append(d.rxPool[:0], s.RxPool...)
	d.txBufs = make(map[uint32]mem.PFN, len(s.TxBufs))
	for _, e := range s.TxBufs {
		d.txBufs[e.Idx] = e.PFN
	}
	d.rxBufs = make(map[uint32]mem.PFN, len(s.RxBufs))
	for _, e := range s.RxBufs {
		d.rxBufs[e.Idx] = e.PFN
	}
	d.inflight = make(map[uint32]*ether.Frame, len(s.Inflight))
	for _, sf := range s.Inflight {
		f, err := ether.RestoreFrame(sf.Frame, codec)
		if err != nil {
			return err
		}
		d.inflight[sf.Slot] = f
	}
	d.lastTxCons, d.lastRxCons = s.LastTxCons, s.LastRxCons
	d.kickQueued, d.rxKickQueued = s.KickQueued, s.RxKickQueued
	if err := ether.RestoreFrameFIFO(&d.backlog, s.Backlog, codec); err != nil {
		return err
	}
	if err := ether.RestoreFrameFIFO(&d.txIn, s.TxIn, codec); err != nil {
		return err
	}
	if err := ether.RestoreFrameFIFO(&d.rxUp, s.RxUp, codec); err != nil {
		return err
	}
	d.TxDropped.SetState(s.TxDropped)
	return nil
}

// StackState is the network stack's checkpoint image. Queued segments
// serialize through the payload codec (they are exactly the payload
// type it handles); sender identity is creation order.
type StackState struct {
	UserAcc   int
	Delivered stats.CounterState
	Foreign   stats.CounterState
	RxQ       [][]byte
	Senders   [][][]byte
}

// State captures the stack.
func (s *Stack) State(codec ether.PayloadCodec) (StackState, error) {
	st := StackState{
		UserAcc:   s.userAcc,
		Delivered: s.Delivered.State(),
		Foreign:   s.Foreign.State(),
		RxQ:       make([][]byte, s.rxQ.Len()),
		Senders:   make([][][]byte, len(s.senders)),
	}
	for i := 0; i < s.rxQ.Len(); i++ {
		b, err := codec.EncodePayload(s.rxQ.At(i))
		if err != nil {
			return StackState{}, err
		}
		st.RxQ[i] = b
	}
	for i, sn := range s.senders {
		q := make([][]byte, sn.q.Len())
		for j := 0; j < sn.q.Len(); j++ {
			b, err := codec.EncodePayload(sn.q.At(j))
			if err != nil {
				return StackState{}, err
			}
			q[j] = b
		}
		st.Senders[i] = q
	}
	return st, nil
}

// SetState restores the stack into a freshly built machine with the
// same sender roster.
func (s *Stack) SetState(st StackState, codec ether.PayloadCodec) error {
	if len(st.Senders) != len(s.senders) {
		return fmt.Errorf("guest: sender roster mismatch: snapshot has %d, machine has %d",
			len(st.Senders), len(s.senders))
	}
	s.userAcc = st.UserAcc
	s.Delivered.SetState(st.Delivered)
	s.Foreign.SetState(st.Foreign)
	s.rxQ.Clear()
	for _, b := range st.RxQ {
		p, err := codec.DecodePayload(b)
		if err != nil {
			return err
		}
		seg, ok := p.(*transport.Segment)
		if !ok {
			return fmt.Errorf("guest: stack rx image decoded to %T, want segment", p)
		}
		s.rxQ.Push(seg)
	}
	for i, q := range st.Senders {
		sn := s.senders[i]
		sn.q.Clear()
		for _, b := range q {
			p, err := codec.DecodePayload(b)
			if err != nil {
				return err
			}
			seg, ok := p.(*transport.Segment)
			if !ok {
				return fmt.Errorf("guest: sender image decoded to %T, want segment", p)
			}
			sn.q.Push(seg)
		}
	}
	return nil
}
