package guest

import (
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/intelnic"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// DriverCosts are per-packet and per-event CPU costs for a device
// driver, whichever domain hosts it.
type DriverCosts struct {
	TxPerPkt   sim.Time // build + post one transmit descriptor
	RxPerPkt   sim.Time // process one receive completion + replenish
	BatchFixed sim.Time // fixed cost per doorbell batch
	IrqFixed   sim.Time // fixed cost per (virtual) interrupt
	PIO        sim.Time // one programmed-I/O doorbell write
}

// RingEntries is the descriptor ring size used by all drivers.
const RingEntries = 1024

// PoolPages is the per-direction buffer pool size.
const PoolPages = 1536

// NativeDriver is an unmodified conventional driver for the Intel-style
// NIC (§2.2): it runs natively in Table 1's baseline and inside Xen's
// driver domain for the software-virtualization rows.
type NativeDriver struct {
	Dom   *cpu.Domain
	DomID mem.DomID
	Mem   *mem.Memory
	NIC   *intelnic.NIC
	Costs DriverCosts

	tx, rx *ring.Ring

	txPool, rxPool []mem.PFN
	txBufs         map[uint32]mem.PFN      // tx ring idx -> buffer page
	rxBufs         map[uint32]mem.PFN      // rx ring idx -> buffer page
	inflight       map[uint32]*ether.Frame // tx ring idx -> frame
	lastTxCons     uint32
	lastRxCons     uint32

	kickQueued   bool
	rxKickQueued bool
	rxHandler    func(*ether.Frame)

	backlog sim.FIFO[*ether.Frame] // qdisc: frames waiting for ring space

	// Per-packet frames queued into domain tasks, popped FIFO by the
	// matching callback bound once below (domain task queues preserve
	// order); kickFn/rxKickFn/irqFn are the batched-path callbacks.
	txIn sim.FIFO[*ether.Frame]
	rxUp sim.FIFO[*ether.Frame]

	txInFn, rxUpFn, irqFn, kickFn, rxKickFn sim.Fn

	TxDropped stats.Counter // backlog overflow (qdisc limit)
}

// NewNativeDriver allocates rings and buffer pools in the owning domain
// and binds to the NIC.
func NewNativeDriver(dom *cpu.Domain, domID mem.DomID, m *mem.Memory, n *intelnic.NIC, costs DriverCosts) (*NativeDriver, error) {
	d := &NativeDriver{
		Dom: dom, DomID: domID, Mem: m, NIC: n, Costs: costs,
		txBufs: make(map[uint32]mem.PFN), rxBufs: make(map[uint32]mem.PFN),
		inflight: make(map[uint32]*ether.Frame),
	}
	eng := dom.Engine()
	d.txInFn = eng.Bind(d.txEnqueueTask)
	d.rxUpFn = eng.Bind(d.rxUpTask)
	d.irqFn = eng.Bind(d.irqTask)
	d.kickFn = eng.Bind(d.kickTask)
	d.rxKickFn = eng.Bind(d.rxKickTask)
	ringPages := (RingEntries*ring.DefaultLayout.Size + mem.PageSize - 1) / mem.PageSize
	var err error
	d.tx, err = ring.New("intel.tx", ring.DefaultLayout, m.Alloc(domID, ringPages)[0].Base(), RingEntries)
	if err != nil {
		return nil, err
	}
	d.rx, err = ring.New("intel.rx", ring.DefaultLayout, m.Alloc(domID, ringPages)[0].Base(), RingEntries)
	if err != nil {
		return nil, err
	}
	d.txPool = m.Alloc(domID, PoolPages)
	d.rxPool = m.Alloc(domID, PoolPages)
	n.AttachRings(d.tx, d.rx)
	n.SetDriver(d.lookupTx, nil) // IRQ line is wired by the machine builder
	return d, nil
}

// MAC implements NetDevice.
func (d *NativeDriver) MAC() ether.MAC { return d.NIC.MAC }

// SetRxHandler implements NetDevice.
func (d *NativeDriver) SetRxHandler(h func(*ether.Frame)) { d.rxHandler = h }

func (d *NativeDriver) lookupTx(idx uint32) *ether.Frame { return d.inflight[idx] }

// Start posts the initial receive buffers (driver initialization).
func (d *NativeDriver) Start() {
	n := RingEntries - 1
	for i := 0; i < n; i++ {
		d.postRxBuffer()
	}
	d.NIC.KickRx(d.rx.Prod())
}

func (d *NativeDriver) postRxBuffer() bool {
	if len(d.rxPool) == 0 || d.rx.Full() {
		return false
	}
	pfn := d.rxPool[len(d.rxPool)-1]
	d.rxPool = d.rxPool[:len(d.rxPool)-1]
	idx := d.rx.Prod()
	desc := ring.Desc{Addr: pfn.Base(), Len: ether.HeaderBytes + ether.MTU + 86, Flags: ring.FlagValid}
	if err := d.rx.WriteDesc(d.Mem, d.DomID, idx, desc); err != nil {
		d.rxPool = append(d.rxPool, pfn)
		return false
	}
	d.rx.Publish(1)
	d.rxBufs[idx] = pfn
	return true
}

// StartXmit implements NetDevice: per-packet descriptor work then a
// batched doorbell.
func (d *NativeDriver) StartXmit(f *ether.Frame) {
	d.txIn.Push(f)
	d.Dom.Exec(cpu.CatKernel, ScaleCost(d.Costs.TxPerPkt, f.Size), "ndrv.tx", d.txInFn)
}

func (d *NativeDriver) txEnqueueTask() {
	f := d.txIn.Pop()
	// Qdisc semantics: queue, then fill the ring as far as space and
	// buffers allow; the rest drains on transmit completions.
	if d.backlog.Len() >= qdiscLimit {
		d.TxDropped.Inc()
		f.Release()
		return
	}
	d.backlog.Push(f)
	d.reapTx()
	d.fillRing()
}

func (d *NativeDriver) scheduleKick() {
	if d.kickQueued {
		return
	}
	d.kickQueued = true
	d.Dom.Exec(cpu.CatKernel, d.Costs.BatchFixed+d.Costs.PIO, "ndrv.kick", d.kickFn)
}

func (d *NativeDriver) kickTask() {
	d.kickQueued = false
	d.NIC.KickTx(d.tx.Prod())
}

// fillRing moves backlog frames onto the descriptor ring while space
// and buffer pages allow.
func (d *NativeDriver) fillRing() {
	moved := false
	for d.backlog.Len() > 0 && len(d.txPool) > 0 && !d.tx.Full() {
		f := d.backlog.Peek()
		pfn := d.txPool[len(d.txPool)-1]
		idx := d.tx.Prod()
		desc := ring.Desc{Addr: pfn.Base(), Len: uint16(f.Size), Flags: ring.FlagTx | ring.FlagValid}
		if err := d.tx.WriteDesc(d.Mem, d.DomID, idx, desc); err != nil {
			break
		}
		d.backlog.Pop()
		d.txPool = d.txPool[:len(d.txPool)-1]
		d.tx.Publish(1)
		d.txBufs[idx] = pfn
		d.inflight[idx] = f
		moved = true
	}
	if moved {
		d.scheduleKick()
	}
}

// reapTx recycles buffers for descriptors the NIC has consumed.
func (d *NativeDriver) reapTx() {
	for d.lastTxCons != d.tx.Cons() {
		idx := d.lastTxCons
		if pfn, ok := d.txBufs[idx]; ok {
			d.txPool = append(d.txPool, pfn)
			delete(d.txBufs, idx)
		}
		if f, ok := d.inflight[idx]; ok {
			f.Release()
			delete(d.inflight, idx)
		}
		d.lastTxCons++
	}
}

// OnInterrupt is the driver's interrupt handler, invoked in the owning
// domain's context (directly for native IRQs, via an event channel under
// Xen). It reaps transmit completions, pulls receive completions up the
// stack, and replenishes receive buffers.
func (d *NativeDriver) OnInterrupt() {
	d.Dom.Exec(cpu.CatKernel, d.Costs.IrqFixed, "ndrv.irq", d.irqFn)
}

func (d *NativeDriver) irqTask() {
	d.reapTx()
	d.fillRing()
	comps := d.NIC.DrainRx()
	for _, f := range comps {
		d.rxUp.Push(f)
		d.Dom.Exec(cpu.CatKernel, ScaleCost(d.Costs.RxPerPkt, f.Size), "ndrv.rx", d.rxUpFn)
	}
	if len(comps) > 0 {
		d.replenishRx(len(comps))
	}
}

func (d *NativeDriver) rxUpTask() {
	f := d.rxUp.Pop()
	if d.rxHandler != nil {
		d.rxHandler(f)
	} else {
		f.Release()
	}
}

func (d *NativeDriver) replenishRx(n int) {
	// Recycle consumed buffers, then repost.
	for d.lastRxCons != d.rx.Cons() {
		idx := d.lastRxCons
		if pfn, ok := d.rxBufs[idx]; ok {
			d.rxPool = append(d.rxPool, pfn)
			delete(d.rxBufs, idx)
		}
		d.lastRxCons++
	}
	posted := 0
	for i := 0; i < n; i++ {
		if d.postRxBuffer() {
			posted++
		}
	}
	if posted > 0 && !d.rxKickQueued {
		d.rxKickQueued = true
		d.Dom.Exec(cpu.CatKernel, d.Costs.PIO, "ndrv.rxkick", d.rxKickFn)
	}
}

func (d *NativeDriver) rxKickTask() {
	d.rxKickQueued = false
	d.NIC.KickRx(d.rx.Prod())
}
