package campaign

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync/atomic"

	"cdna/internal/bench"
	"cdna/internal/snap"
	"cdna/internal/store"
)

// Result caching. Determinism makes every experiment result a pure
// function of (normalized config, model build), so results are
// perfectly cacheable: ResultKey derives the canonical hash of that
// identity and CachedExec wraps the experiment executor with an
// internal/store lookup. Repeated and overlapping grids — the common
// case when iterating on one axis — then only run the delta.

// resultSchema versions the cached payload encoding (the JSON form of
// bench.Result). Bump it when Result's schema changes shape in a way
// its JSON does not self-describe, so stale entries miss instead of
// round-tripping into the wrong bytes.
const resultSchema = "cdna-result-v1"

// CacheStats counts cache traffic for one consumer (a sweep, a table
// run). Safe for concurrent use; the daemon reports a snapshot per
// sweep through its status API.
type CacheStats struct {
	hits, misses, uncacheable atomic.Uint64
}

// CacheCounts is the JSON snapshot of CacheStats.
type CacheCounts struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Uncacheable counts experiments bypassing the cache entirely —
	// configurations that fail validation (their error outcome is
	// recomputed, not stored).
	Uncacheable uint64 `json:"uncacheable,omitempty"`
}

// Counts returns a point-in-time snapshot.
func (c *CacheStats) Counts() CacheCounts {
	return CacheCounts{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Uncacheable: c.uncacheable.Load(),
	}
}

// HitRate returns hits / (hits + misses), or 1 when nothing was looked
// up (an empty sweep misses nothing).
func (c CacheCounts) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 1
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// ResultKey derives the canonical cache key of a configuration: a hash
// over the payload schema version, the snapshot format version, the
// engine registry fingerprint of the configuration's machine, and the
// canonical JSON of the normalized configuration plus its calibration.
// Any model change that alters the machine's registries — and any
// snapshot-format bump, the marker for state images changing shape —
// lands every config on a fresh key, so a stale store can only miss,
// never mislead. Configurations that fail validation are uncacheable
// and return an error.
func ResultKey(cfg bench.Config) (key string, err error) {
	// A malformed-but-validating config can still panic in the machine
	// builder; RunCaptured owns reporting that. Treat it as uncacheable.
	defer func() {
		if r := recover(); r != nil {
			key, err = "", fmt.Errorf("campaign: fingerprint build panicked: %v", r)
		}
	}()
	norm, err := bench.Normalize(cfg)
	if err != nil {
		return "", err
	}
	binds, timers, err := bench.Fingerprint(norm)
	if err != nil {
		return "", err
	}
	cfgJSON, err := json.Marshal(norm)
	if err != nil {
		return "", err
	}
	// The calibration is excluded from Config's JSON (results files
	// reconstruct it), but it is part of experiment identity: a
	// calibration change moves every result without touching the
	// registries.
	calJSON, err := json.Marshal(norm.Cal)
	if err != nil {
		return "", err
	}
	return store.Key(
		[]byte(resultSchema),
		[]byte(strconv.Itoa(snap.Version)),
		[]byte(strconv.Itoa(binds)),
		[]byte(strconv.Itoa(timers)),
		cfgJSON,
		calJSON,
	), nil
}

// CachedExec returns an experiment executor that consults the store
// before running: a verified hit returns the stored result without
// simulating; a miss runs the experiment and persists the result
// (crash-safely — see store.Put) for every future overlapping sweep.
// Failed experiments are never cached: an error is recomputed (and
// re-reported) on every submission, so a transient failure — a
// watchdog timeout, a panic — cannot poison the store. Results served
// from cache are byte-identical to recomputed ones (JSON float
// round-tripping is exact), which the daemon's recovery suite pins.
//
// stats may be nil; s must not be.
func CachedExec(s *store.Store, stats *CacheStats) func(bench.Config) bench.Outcome {
	if stats == nil {
		stats = &CacheStats{}
	}
	return func(cfg bench.Config) bench.Outcome {
		key, err := ResultKey(cfg)
		if err != nil {
			stats.uncacheable.Add(1)
			return bench.RunCaptured(cfg)
		}
		if b, ok := s.Get(key); ok {
			var res bench.Result
			if err := json.Unmarshal(b, &res); err == nil {
				stats.hits.Add(1)
				return bench.Outcome{Config: cfg, Result: res}
			}
			// Checksum-valid but undecodable: a schema drift the version
			// tag missed. Recompute; the Put below repairs the entry.
		}
		stats.misses.Add(1)
		out := bench.RunCaptured(cfg)
		if out.Err == nil {
			if b, err := json.Marshal(out.Result); err == nil {
				// A store write failure degrades future runs to recompute;
				// it never fails the experiment that just succeeded.
				_ = s.Put(key, b)
			}
		}
		return out
	}
}

// CachedRunner is Runner with a store behind it: the injection point
// for cmd/cdnatables -store, so CI's table jobs consume the same cache
// the daemon fills. stats may be nil.
func CachedRunner(workers int, s *store.Store, stats *CacheStats) bench.Runner {
	return func(cfgs []bench.Config) []bench.Outcome {
		return Run(cfgs, Options{Workers: workers, Exec: CachedExec(s, stats)})
	}
}
