package campaign

import (
	"bytes"
	"encoding/json"
	"testing"

	"cdna/internal/bench"
	"cdna/internal/sim"
	"cdna/internal/workload"
)

// TestGridPointNamesDistinct: every distinct point of every canned
// campaign — the full paper plus the workloads preset plus a grid with
// explicit workload knobs — must have a distinct Name, and the name
// must survive a JSON round-trip of its configuration. This is the
// round-trip contract result files rely on to key records.
func TestGridPointNamesDistinct(t *testing.T) {
	grids := PaperGrids()
	grids = append(grids, WorkloadGrids()...)
	grids = append(grids, Grid{
		Modes: []bench.Mode{bench.ModeCDNA},
		Workloads: []workload.Spec{
			{Kind: workload.RequestResponse},
			{Kind: workload.RequestResponse, RequestSegs: 8},
			{Kind: workload.RequestResponse, RequestSegs: 8, Think: 5 * sim.Millisecond},
			{Kind: workload.Churn},
			{Kind: workload.Churn, FlowSegs: 2},
			{Kind: workload.Churn, FlowGap: sim.Millisecond},
			{Kind: workload.Burst},
			{Kind: workload.Burst, BurstOn: sim.Millisecond, BurstOff: 4 * sim.Millisecond},
		},
	})
	cfgs := Expand(grids...)
	if len(cfgs) == 0 {
		t.Fatal("no grid points")
	}
	names := make(map[string]bench.Config, len(cfgs))
	for _, cfg := range cfgs {
		name := cfg.Name()
		if prev, dup := names[name]; dup {
			t.Fatalf("distinct grid points share name %q:\n%+v\n%+v", name, prev, cfg)
		}
		names[name] = cfg

		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var back bench.Config
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.Name() != name {
			t.Fatalf("name %q round-tripped to %q", name, back.Name())
		}
	}
}

// TestWorkloadCampaignParallelDeterminism: with the workload axis
// enabled, a 1-worker and an N-worker run of the same campaign must
// produce byte-identical result files.
func TestWorkloadCampaignParallelDeterminism(t *testing.T) {
	cfgs := Expand(WorkloadGrids()...)
	cfgs = Apply(cfgs, 20*sim.Millisecond, 60*sim.Millisecond)
	if len(cfgs) != 12 {
		t.Fatalf("workloads preset expands to %d points, want 12 (3 modes x 4 shapes)", len(cfgs))
	}

	encode := func(workers int) []byte {
		outs := Run(cfgs, Options{Workers: workers})
		var buf bytes.Buffer
		if err := WriteJSON(&buf, outs); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	pooled := encode(4)
	if !bytes.Equal(serial, pooled) {
		t.Fatalf("1-worker and 4-worker workload campaigns differ:\n--- serial ---\n%s\n--- pooled ---\n%s", serial, pooled)
	}

	// Every point must actually have run its workload: the non-bulk
	// shapes report their own columns.
	recs, err := ReadJSON(bytes.NewReader(serial))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Failed() {
			t.Fatalf("%s failed: %s", rec.Name, rec.Error)
		}
		switch rec.Result.Config.Workload.Kind {
		case workload.RequestResponse:
			if rec.Result.RPCPerSec <= 0 || rec.Result.MsgLatP50us <= 0 {
				t.Fatalf("%s: no RPC traffic (rpc/s=%v p50=%v)", rec.Name, rec.Result.RPCPerSec, rec.Result.MsgLatP50us)
			}
		case workload.Churn:
			if rec.Result.FlowsPerSec <= 0 {
				t.Fatalf("%s: no flow churn", rec.Name)
			}
		case workload.Bulk, workload.Burst:
			if rec.Result.Mbps <= 0 {
				t.Fatalf("%s: no traffic", rec.Name)
			}
		}
	}
}
