package campaign

import (
	"bytes"
	"os"
	"testing"

	"cdna/internal/bench"
	"cdna/internal/sim"
	"cdna/internal/store"
)

// tinyGrid returns a fast-running grid (very short windows) for cache
// tests: modes x dirs, real simulations.
func tinyGrid(modes []bench.Mode) []bench.Config {
	g := Grid{
		Modes:    modes,
		Dirs:     []bench.Direction{bench.Tx, bench.Rx},
		Warmup:   20 * sim.Millisecond,
		Duration: 50 * sim.Millisecond,
	}
	return g.Points()
}

// TestCachedExecByteIdentity: a sweep served from cache must emit JSON
// byte-identical to the computed sweep that filled it.
func TestCachedExecByteIdentity(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := tinyGrid([]bench.Mode{bench.ModeCDNA})

	var cold CacheStats
	coldOuts := Run(cfgs, Options{Workers: 1, Exec: CachedExec(s, &cold)})
	var warm CacheStats
	warmOuts := Run(cfgs, Options{Workers: 1, Exec: CachedExec(s, &warm)})

	if c := cold.Counts(); c.Hits != 0 || c.Misses != uint64(len(cfgs)) {
		t.Fatalf("cold counts = %+v; want 0 hits / %d misses", c, len(cfgs))
	}
	if c := warm.Counts(); c.Hits != uint64(len(cfgs)) || c.Misses != 0 {
		t.Fatalf("warm counts = %+v; want %d hits / 0 misses", c, len(cfgs))
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, coldOuts); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, warmOuts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("cached sweep JSON differs from computed sweep JSON")
	}
	// And both match an uncached run entirely outside the cache path.
	var c bytes.Buffer
	if err := WriteJSON(&c, Run(cfgs, Options{Workers: 1})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("cached-path sweep JSON differs from plain Run JSON")
	}
}

// TestOverlappingSweepRunsOnlyDelta: re-submitting a grid that shares
// points with a completed sweep re-runs only the delta — the acceptance
// criterion behind incremental sweeps.
func TestOverlappingSweepRunsOnlyDelta(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := tinyGrid([]bench.Mode{bench.ModeXen}) // xen tx, xen rx
	var st1 CacheStats
	Run(first, Options{Workers: 2, Exec: CachedExec(s, &st1)})

	second := tinyGrid([]bench.Mode{bench.ModeXen, bench.ModeCDNA}) // shares the 2 xen points
	var st2 CacheStats
	outs := Run(second, Options{Workers: 2, Exec: CachedExec(s, &st2)})
	if err := Check(outs); err != nil {
		t.Fatal(err)
	}
	if c := st2.Counts(); c.Hits != 2 || c.Misses != uint64(len(second)-2) {
		t.Fatalf("overlap counts = %+v; want 2 hits / %d misses", c, len(second)-2)
	}
}

// TestResultKeyIdentity pins what is — and is not — experiment
// identity: the key is stable across recomputation and across the
// shard axis (a pure wall-clock knob), and distinct along every
// result-changing axis.
func TestResultKeyIdentity(t *testing.T) {
	base := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	k1, err := ResultKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ResultKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("ResultKey is not deterministic")
	}

	other := base
	other.Dir = bench.Rx
	if k, _ := ResultKey(other); k == k1 {
		t.Fatal("direction change did not change the key")
	}
	longer := base
	longer.Duration *= 2
	if k, _ := ResultKey(longer); k == k1 {
		t.Fatal("duration change did not change the key")
	}

	// Shards are excluded from identity: results are byte-identical at
	// any shard count, so a sharded submission of a cached point hits.
	multi := base
	multi.Hosts = 3
	multi.Pattern = bench.PatternIncast
	km1, err := ResultKey(multi)
	if err != nil {
		t.Fatal(err)
	}
	multi.Shards = 3
	km3, err := ResultKey(multi)
	if err != nil {
		t.Fatal(err)
	}
	if km1 != km3 {
		t.Fatal("shard count leaked into the cache key")
	}
	if km1 == k1 {
		t.Fatal("host axis did not change the key")
	}
}

// TestFailedExperimentNotCached: error outcomes are recomputed every
// time, never stored.
func TestFailedExperimentNotCached(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	bad.Guests = 0 // fails Validate
	var cs CacheStats
	exec := CachedExec(s, &cs)
	for i := 0; i < 2; i++ {
		if out := exec(bad); out.Err == nil {
			t.Fatal("invalid config did not error")
		}
	}
	if c := cs.Counts(); c.Uncacheable != 2 || c.Hits != 0 {
		t.Fatalf("counts = %+v; want 2 uncacheable", c)
	}
	if n, err := s.Len(); err != nil || n != 0 {
		t.Fatalf("store holds %d entries (err %v); failed experiments must not be cached", n, err)
	}
}

// TestCorruptEntryRecomputed drives the store's corruption contract
// through the campaign layer: a damaged entry reads as a miss, the
// experiment recomputes, and the repaired entry serves hits again.
func TestCorruptEntryRecomputed(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyGrid([]bench.Mode{bench.ModeCDNA})[0]
	var cs CacheStats
	exec := CachedExec(s, &cs)
	first := exec(cfg)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	key, err := ResultKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-flip the stored payload on disk.
	raw, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x20
	if err := os.WriteFile(s.Path(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	second := exec(cfg)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	if c := cs.Counts(); c.Hits != 0 || c.Misses != 2 {
		t.Fatalf("counts after corruption = %+v; want 0 hits / 2 misses", c)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("store corrupt counter = %d; want 1", st.Corrupt)
	}
	// The recompute repaired the entry; it round-trips byte-identically.
	third := exec(cfg)
	if third.Err != nil {
		t.Fatal(third.Err)
	}
	if c := cs.Counts(); c.Hits != 1 {
		t.Fatalf("repaired entry did not hit: %+v", c)
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, []bench.Outcome{first}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, []bench.Outcome{third}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repaired entry is not byte-identical to the original result")
	}
}
