package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"cdna/internal/bench"
)

// Record is the serialized form of one experiment outcome. Failed
// experiments carry their configuration and error string with a zero
// result, so a result file always has one record per grid point.
type Record struct {
	Name string `json:"name"`
	bench.Result
	Error string `json:"error,omitempty"`
}

// Failed reports whether the experiment errored.
func (r Record) Failed() bool { return r.Error != "" }

// Records converts outcomes to their serialized form, preserving order.
func Records(outs []bench.Outcome) []Record {
	recs := make([]Record, len(outs))
	for i, out := range outs {
		recs[i] = Record{Name: out.Config.Name(), Result: out.Result}
		if out.Err != nil {
			recs[i].Error = out.Err.Error()
			recs[i].Result.Config = out.Config
		}
	}
	return recs
}

// WriteJSON writes the outcomes as an indented JSON array of Records —
// the cmd/cdnasweep output format.
func WriteJSON(w io.Writer, outs []bench.Outcome) error {
	b, err := json.MarshalIndent(Records(outs), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSON reads a Record array written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var recs []Record
	dec := json.NewDecoder(r)
	if err := dec.Decode(&recs); err != nil {
		return nil, fmt.Errorf("campaign: decoding records: %w", err)
	}
	return recs, nil
}

// csvHeader is the flat column set of WriteCSV, one column per
// configuration axis and result metric.
var csvHeader = []string{
	"name", "mode", "nic", "dir", "workload", "guests", "nics", "conns", "window",
	"protection", "max_enqueue_batch", "direct_per_context_irq", "tx_coalesce_pkts",
	"warmup_s", "duration_s",
	"mbps", "pkt_per_sec",
	"hyp", "driver_os", "driver_user", "guest_os", "guest_user", "idle",
	"driver_intr_per_sec", "guest_intr_per_sec", "phys_irq_per_sec",
	"latency_p50_us", "latency_p90_us",
	"drops", "retransmits", "fairness", "faults", "events",
	"rpc_per_sec", "flows_per_sec", "msg_lat_p50_us", "msg_lat_p99_us",
	"arrivals_per_sec", "trace_skipped",
	"error",
}

func enumCell(v interface{ MarshalText() ([]byte, error) }) string {
	b, err := v.MarshalText()
	if err != nil {
		return fmt.Sprint(v)
	}
	return string(b)
}

// WriteCSV writes the outcomes as one flat CSV row per experiment, for
// spreadsheet and dataframe import.
func WriteCSV(w io.Writer, outs []bench.Outcome) error {
	return WriteCSVRecords(w, Records(outs))
}

// WriteCSVRecords is WriteCSV over already-serialized records — the
// path the remote client takes, which receives records (not outcomes)
// from the daemon and must emit CSV byte-identical to a local run's.
func WriteCSVRecords(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, rec := range recs {
		cfg, res := rec.Result.Config, rec.Result
		row := []string{
			rec.Name,
			enumCell(cfg.Mode), enumCell(cfg.NIC), enumCell(cfg.Dir),
			enumCell(cfg.Workload.Kind),
			strconv.Itoa(cfg.Guests), strconv.Itoa(cfg.NICs),
			strconv.Itoa(cfg.ConnsPerGuestPerNIC), strconv.Itoa(cfg.Window),
			enumCell(cfg.Protection),
			strconv.Itoa(cfg.MaxEnqueueBatch), strconv.FormatBool(cfg.DirectPerContextIRQ),
			strconv.Itoa(cfg.TxCoalescePkts),
			f(cfg.Warmup.Seconds()), f(cfg.Duration.Seconds()),
			f(res.Mbps), f(res.PktPerSec),
			f(res.Profile.Hyp), f(res.Profile.DriverOS), f(res.Profile.DriverUser),
			f(res.Profile.GuestOS), f(res.Profile.GuestUser), f(res.Profile.Idle),
			f(res.DriverIntrPerSec), f(res.GuestIntrPerSec), f(res.PhysIRQPerSec),
			f(res.LatencyP50us), f(res.LatencyP90us),
			u(res.Drops), u(res.Retransmits), f(res.Fairness), u(res.Faults), u(res.Events),
			f(res.RPCPerSec), f(res.FlowsPerSec), f(res.MsgLatP50us), f(res.MsgLatP99us),
			f(res.ArrivalsPerSec), strconv.Itoa(res.TraceSkipped),
			rec.Error,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadGrids parses a cmd/cdnasweep -spec file: either a single Grid
// object or an array of Grids, distinguished by the leading byte so
// that a parse error inside the chosen form is reported as-is.
// Unknown keys are rejected, so a typo'd axis name fails loudly
// instead of silently collapsing to the default grid.
func ReadGrids(r io.Reader) ([]Grid, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimLeft(b, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		var grids []Grid
		if err := decodeStrict(b, &grids); err != nil {
			return nil, fmt.Errorf("campaign: decoding grid array spec: %w", err)
		}
		return grids, nil
	}
	var g Grid
	if err := decodeStrict(b, &g); err != nil {
		return nil, fmt.Errorf("campaign: decoding grid spec: %w", err)
	}
	return []Grid{g}, nil
}

func decodeStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// ErrFailures is returned by Check when a campaign had failed
// experiments.
var ErrFailures = errors.New("campaign: some experiments failed")

// Check summarizes a campaign's failures: nil when everything
// succeeded, otherwise an error wrapping ErrFailures that names the
// first failing configuration and the failure count.
func Check(outs []bench.Outcome) error {
	errs := Errs(outs)
	if len(errs) == 0 {
		return nil
	}
	for _, out := range outs {
		if out.Err != nil {
			return fmt.Errorf("%w: %d of %d (first: %s: %v)",
				ErrFailures, len(errs), len(outs), out.Config.Name(), out.Err)
		}
	}
	return ErrFailures
}
