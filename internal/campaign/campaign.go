// Package campaign runs experiment campaigns: whole grids of
// independent bench configurations fanned out across a worker pool.
//
// Every experiment owns a private single-goroutine sim.Engine with an
// explicitly seeded RNG and no shared mutable state, so a campaign is
// embarrassingly parallel and — crucially — deterministic: the same
// grid produces byte-identical per-config results whether it runs on
// one worker or on every core (campaign_test.go enforces this). One
// failing configuration is captured in its Outcome instead of aborting
// the sweep.
//
// The package is the engine behind cmd/cdnasweep (grid in, JSON/CSV
// out) and supplies the parallel bench.Runner that cmd/cdnatables
// injects to regenerate the paper's tables concurrently.
package campaign

import (
	"runtime"
	"sync"

	"cdna/internal/bench"
)

// Options controls campaign execution.
type Options struct {
	// Workers is the number of concurrent experiments; <= 0 means
	// GOMAXPROCS.
	Workers int

	// Progress, when non-nil, is called once per finished experiment
	// with the completion count so far and the experiment's outcome.
	// Calls are serialized; completion order is nondeterministic under
	// parallelism, but outcomes land in input order regardless.
	Progress func(done, total int, out bench.Outcome)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every configuration of the campaign and returns one
// outcome per configuration, in input order. Errors (including panics
// from malformed configurations) are captured per experiment; the rest
// of the sweep always completes.
func Run(cfgs []bench.Config, opt Options) []bench.Outcome {
	outs := make([]bench.Outcome, len(cfgs))
	workers := opt.workers()
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i, cfg := range cfgs {
			outs[i] = bench.RunCaptured(cfg)
			report(opt, i+1, len(cfgs), outs[i])
		}
		return outs
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out := bench.RunCaptured(cfgs[i])
				outs[i] = out
				mu.Lock()
				done++
				report(opt, done, len(cfgs), out)
				mu.Unlock()
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return outs
}

func report(opt Options, done, total int, out bench.Outcome) {
	if opt.Progress != nil {
		opt.Progress(done, total, out)
	}
}

// Runner adapts a worker count into a bench.Runner, the injection point
// bench's table generators expose. bench.Table2(opts) with
// opts.Runner = campaign.Runner(0) runs that table's rows across all
// cores.
func Runner(workers int) bench.Runner {
	return func(cfgs []bench.Config) []bench.Outcome {
		return Run(cfgs, Options{Workers: workers})
	}
}

// Errs collects the errors of failed experiments, preserving order.
func Errs(outs []bench.Outcome) []error {
	var errs []error
	for _, out := range outs {
		if out.Err != nil {
			errs = append(errs, out.Err)
		}
	}
	return errs
}
