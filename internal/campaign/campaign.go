// Package campaign runs experiment campaigns: whole grids of
// independent bench configurations fanned out across a worker pool.
//
// Every experiment owns a private single-goroutine sim.Engine with an
// explicitly seeded RNG and no shared mutable state, so a campaign is
// embarrassingly parallel and — crucially — deterministic: the same
// grid produces byte-identical per-config results whether it runs on
// one worker or on every core (campaign_test.go enforces this). One
// failing configuration is captured in its Outcome instead of aborting
// the sweep.
//
// The package is the engine behind cmd/cdnasweep (grid in, JSON/CSV
// out) and supplies the parallel bench.Runner that cmd/cdnatables
// injects to regenerate the paper's tables concurrently. The service
// layers stack on the same entry point: cache.go supplies a
// store-backed executor (Options.Exec) and internal/daemon drives Run
// with a watchdog deadline (Options.Timeout) and a drain signal
// (Options.Cancel).
package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cdna/internal/bench"
)

// ErrTimeout marks an experiment killed by the per-experiment watchdog:
// it ran past Options.Timeout and its worker was released. Wrapped in
// the outcome's Err; test with errors.Is.
var ErrTimeout = errors.New("campaign: experiment exceeded watchdog deadline")

// ErrCanceled marks an experiment that never started because the
// campaign's Cancel channel closed first (a daemon drain, a shutdown).
// Its grid point is simply unrun — resubmitting the grid completes the
// delta, served from cache for the points that did finish.
var ErrCanceled = errors.New("campaign: sweep canceled before experiment started")

// Options controls campaign execution.
type Options struct {
	// Workers is the number of concurrent experiments; <= 0 means
	// GOMAXPROCS.
	Workers int

	// Timeout is the per-experiment watchdog deadline. A positive value
	// bounds every experiment's wall clock: an experiment still running
	// at the deadline is marked failed with ErrTimeout and its worker
	// moves on, so one wedged configuration cannot block the pool
	// forever. The wedged goroutine itself is abandoned (goroutines
	// cannot be killed); the cost of a leak is bounded by the number of
	// hangs, where the cost of no watchdog is an unbounded stall.
	// Zero disables the watchdog.
	Timeout time.Duration

	// Exec overrides the per-experiment executor; nil means
	// bench.RunCaptured. The cache layer (CachedExec) and tests inject
	// here. The watchdog wraps whatever executor is configured.
	Exec func(bench.Config) bench.Outcome

	// Cancel, when non-nil, aborts the campaign when closed: experiments
	// already running finish (and report), experiments not yet started
	// are marked with ErrCanceled and never run. This is the graceful
	// half of a daemon drain — in-flight work completes, queued work is
	// left for the resumed sweep.
	Cancel <-chan struct{}

	// Progress, when non-nil, is called once per finished experiment
	// with the completion count so far and the experiment's outcome.
	// Calls are serialized; completion order is nondeterministic under
	// parallelism, but outcomes land in input order regardless.
	// Canceled (never-started) experiments do not report.
	Progress func(done, total int, out bench.Outcome)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// canceled reports whether the options' cancel channel has closed.
// Safe with a nil channel (never canceled).
func (o Options) canceled() bool {
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// runOne executes one experiment through the configured executor,
// under the watchdog deadline when one is set.
func (o Options) runOne(cfg bench.Config) bench.Outcome {
	exec := o.Exec
	if exec == nil {
		exec = bench.RunCaptured
	}
	if o.Timeout <= 0 {
		return exec(cfg)
	}
	ch := make(chan bench.Outcome, 1)
	go func() { ch <- exec(cfg) }()
	watchdog := time.NewTimer(o.Timeout)
	defer watchdog.Stop()
	select {
	case out := <-ch:
		return out
	case <-watchdog.C:
		return bench.Outcome{
			Config: cfg,
			Err:    fmt.Errorf("experiment %s ran past %v: %w", cfg.Name(), o.Timeout, ErrTimeout),
		}
	}
}

func cancelOutcome(cfg bench.Config) bench.Outcome {
	return bench.Outcome{Config: cfg, Err: ErrCanceled}
}

// Run executes every configuration of the campaign and returns one
// outcome per configuration, in input order. Errors (including panics
// from malformed configurations and watchdog timeouts) are captured per
// experiment; the rest of the sweep always completes — unless
// Options.Cancel closes, in which case the unstarted remainder is
// marked ErrCanceled.
func Run(cfgs []bench.Config, opt Options) []bench.Outcome {
	outs := make([]bench.Outcome, len(cfgs))
	workers := opt.workers()
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i, cfg := range cfgs {
			if opt.canceled() {
				outs[i] = cancelOutcome(cfg)
				continue
			}
			outs[i] = opt.runOne(cfg)
			report(opt, i+1, len(cfgs), outs[i])
		}
		return outs
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out := opt.runOne(cfgs[i])
				outs[i] = out
				mu.Lock()
				done++
				report(opt, done, len(cfgs), out)
				mu.Unlock()
			}
		}()
	}
	// Dispatch in input order; a close of Cancel stops dispatch and
	// marks the undispatched tail canceled. Indices past the cancel
	// point were never sent to a worker, so writing their outcomes here
	// cannot race.
dispatch:
	for i := range cfgs {
		if !opt.canceled() {
			select {
			case jobs <- i:
				continue
			case <-opt.Cancel:
			}
		}
		for j := i; j < len(cfgs); j++ {
			outs[j] = cancelOutcome(cfgs[j])
		}
		break dispatch
	}
	close(jobs)
	wg.Wait()
	return outs
}

func report(opt Options, done, total int, out bench.Outcome) {
	if opt.Progress != nil {
		opt.Progress(done, total, out)
	}
}

// Runner adapts a worker count into a bench.Runner, the injection point
// bench's table generators expose. bench.Table2(opts) with
// opts.Runner = campaign.Runner(0) runs that table's rows across all
// cores.
func Runner(workers int) bench.Runner {
	return func(cfgs []bench.Config) []bench.Outcome {
		return Run(cfgs, Options{Workers: workers})
	}
}

// Errs collects the errors of failed experiments, preserving order.
func Errs(outs []bench.Outcome) []error {
	var errs []error
	for _, out := range outs {
		if out.Err != nil {
			errs = append(errs, out.Err)
		}
	}
	return errs
}

// Interrupted reports whether any experiment in the batch was canceled
// before starting — the signature of a drained (incomplete) sweep,
// which a journaled daemon resumes on restart.
func Interrupted(outs []bench.Outcome) bool {
	for _, out := range outs {
		if errors.Is(out.Err, ErrCanceled) {
			return true
		}
	}
	return false
}
