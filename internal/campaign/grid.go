package campaign

import (
	"cdna/internal/bench"
	"cdna/internal/core"
	"cdna/internal/sim"
	"cdna/internal/topo"
	"cdna/internal/workload"
)

// Grid is a declarative experiment space: the cross-product of every
// populated axis. Empty axes collapse to the single default value, so a
// zero Grid expands to one default CDNA transmit experiment. Grids
// marshal to/from JSON with enum axes as strings ("xen", "ricenic",
// "tx", "hypercall", ...), which is the cmd/cdnasweep -spec file
// format.
type Grid struct {
	Modes       []bench.Mode      `json:"modes,omitempty"`
	NICs        []bench.NICKind   `json:"nics,omitempty"`
	Dirs        []bench.Direction `json:"dirs,omitempty"`
	Guests      []int             `json:"guests,omitempty"`
	NICCounts   []int             `json:"nic_counts,omitempty"`
	Protections []core.Mode       `json:"protections,omitempty"`

	// Hosts is the fabric-size axis (machines on the top-of-rack
	// switch); empty or 1 collapses to the classic host-plus-peer
	// topology. Patterns is the cross-host scenario axis, collapsed for
	// single-host points where it is meaningless.
	Hosts    []int           `json:"hosts,omitempty"`
	Patterns []bench.Pattern `json:"patterns,omitempty"`

	// Fabrics is the switching-topology axis (single ToR, leaf-spine,
	// fat-tree, at chosen oversubscription ratios); empty collapses to
	// the single ToR switch. Multi-tier specs are collapsed out of
	// single-host points, which have no cross-host fabric to shape.
	Fabrics []topo.FabricSpec `json:"fabrics,omitempty"`

	// Shards is the engine-partition axis (bench.Config.Shards): how
	// many event-queue shards execute each multi-host point. A pure
	// wall-clock knob — results are byte-identical at any value — so it
	// never enters experiment identity (Name, JSON records); a
	// multi-valued axis is a built-in differential check. Collapsed to 1
	// for single-host points, which have nothing to partition.
	Shards []int `json:"shards,omitempty"`

	// Workloads is the traffic-shape axis; empty collapses to the
	// default bulk workload (the paper's benchmark).
	Workloads []workload.Spec `json:"workloads,omitempty"`

	// Faults is the fault/churn scenario axis; empty collapses to the
	// fault-free run. A spec with zero Outage gets the default schedule
	// (injection a quarter into the window, quarter-window outage), so
	// an axis can name just the kinds. Single-host points drop
	// FaultPortFail, which needs a switched fabric, the same way the
	// pattern axis collapses.
	Faults []bench.FaultSpec `json:"faults,omitempty"`

	// Ablation axes (CDNA only; see bench.Config).
	MaxEnqueueBatches []int  `json:"max_enqueue_batches,omitempty"` // A2
	IRQDeliveries     []bool `json:"irq_deliveries,omitempty"`      // A1: DirectPerContextIRQ
	TxCoalesce        []int  `json:"tx_coalesce_pkts,omitempty"`    // A5

	// Scalar overrides applied to every point (0 = bench default).
	Conns  int `json:"conns_per_guest_per_nic,omitempty"`
	Window int `json:"window,omitempty"`

	Warmup   sim.Time `json:"warmup_ns,omitempty"`
	Duration sim.Time `json:"duration_ns,omitempty"`
}

func modesOr(v []bench.Mode) []bench.Mode {
	if len(v) == 0 {
		return []bench.Mode{bench.ModeCDNA}
	}
	return v
}

func intsOr(v []int, def int) []int {
	if len(v) == 0 {
		return []int{def}
	}
	return v
}

func boolsOr(v []bool) []bool {
	if len(v) == 0 {
		return []bool{false}
	}
	return v
}

func dirsOr(v []bench.Direction) []bench.Direction {
	if len(v) == 0 {
		return []bench.Direction{bench.Tx}
	}
	return v
}

func workloadsOr(v []workload.Spec) []workload.Spec {
	if len(v) == 0 {
		return []workload.Spec{{}}
	}
	return v
}

// patternsFor collapses the pattern axis for single-host points, where
// the builder ignores it.
func (g Grid) patternsFor(hosts int) []bench.Pattern {
	if hosts <= 1 || len(g.Patterns) == 0 {
		return []bench.Pattern{bench.PatternPairs}
	}
	return g.Patterns
}

// faultsFor collapses fabric-only fault scenarios out of the axis for
// single-host points (a port failure needs a switch to fail).
func (g Grid) faultsFor(hosts int) []bench.FaultSpec {
	if len(g.Faults) == 0 {
		return []bench.FaultSpec{{}}
	}
	if hosts > 1 {
		return g.Faults
	}
	var specs []bench.FaultSpec
	for _, f := range g.Faults {
		if f.Kind != bench.FaultPortFail {
			specs = append(specs, f)
		}
	}
	if len(specs) == 0 {
		return []bench.FaultSpec{{}}
	}
	return specs
}

// fabricsFor collapses the fabric-topology axis for single-host
// points: multi-tier fabrics need a multi-host rack, so only the ToR
// entries survive there (and at least the default ToR always does).
func (g Grid) fabricsFor(hosts int) []topo.FabricSpec {
	if len(g.Fabrics) == 0 {
		return []topo.FabricSpec{{}}
	}
	if hosts > 1 {
		return g.Fabrics
	}
	var specs []topo.FabricSpec
	for _, f := range g.Fabrics {
		if f.Kind == topo.KindToR {
			specs = append(specs, f)
		}
	}
	if len(specs) == 0 {
		return []topo.FabricSpec{{}}
	}
	return specs
}

// shardsFor collapses the engine-partition axis for single-host
// points: one host means one engine, so any requested shard count
// degenerates to 1 and would only duplicate the point.
func (g Grid) shardsFor(hosts int) []int {
	if hosts <= 1 || len(g.Shards) == 0 {
		return []int{1}
	}
	return g.Shards
}

// nicsFor returns the NIC axis for one mode: only Xen supports both
// device models; native always drives the Intel NIC and CDNA always
// the RiceNIC, so their NIC axis collapses.
func (g Grid) nicsFor(m bench.Mode) []bench.NICKind {
	switch m {
	case bench.ModeNative:
		return []bench.NICKind{bench.NICIntel}
	case bench.ModeCDNA:
		return []bench.NICKind{bench.NICRice}
	}
	if len(g.NICs) == 0 {
		return []bench.NICKind{bench.NICIntel}
	}
	return g.NICs
}

// protectionsFor collapses the protection axis for non-CDNA modes,
// where it is ignored by the builder.
func (g Grid) protectionsFor(m bench.Mode) []core.Mode {
	if m != bench.ModeCDNA || len(g.Protections) == 0 {
		return []core.Mode{core.ModeHypercall}
	}
	return g.Protections
}

// Points expands the grid into its cross-product of configurations.
// Axes that a mode ignores collapse to one value (protection and the
// ablation axes are CDNA-only; native has no guest axis), so the
// expansion never contains two configurations the simulator would treat
// identically. Expansion order is deterministic: the rightmost axis
// varies fastest.
func (g Grid) Points() []bench.Config {
	var cfgs []bench.Config
	seen := make(map[bench.Config]bool)
	for _, mode := range modesOr(g.Modes) {
		guests := intsOr(g.Guests, 1)
		batches, irqs, coals := intsOr(g.MaxEnqueueBatches, 0), boolsOr(g.IRQDeliveries), intsOr(g.TxCoalesce, 0)
		if mode != bench.ModeCDNA {
			batches, irqs, coals = []int{0}, []bool{false}, []int{0}
		}
		if mode == bench.ModeNative {
			// Native mode has no VMM: the host OS is the only "guest".
			guests = []int{1}
		}
		for _, nic := range g.nicsFor(mode) {
			for _, dir := range dirsOr(g.Dirs) {
				for _, wl := range workloadsOr(g.Workloads) {
					for _, gs := range guests {
						for _, nn := range intsOr(g.NICCounts, 2) {
							for _, hosts := range intsOr(g.Hosts, 1) {
								for _, pat := range g.patternsFor(hosts) {
									for _, fab := range g.fabricsFor(hosts) {
										for _, flt := range g.faultsFor(hosts) {
											for _, shards := range g.shardsFor(hosts) {
												for _, prot := range g.protectionsFor(mode) {
													for _, batch := range batches {
														for _, irq := range irqs {
															for _, coal := range coals {
																cfg := bench.DefaultConfig(mode, nic, dir)
																cfg.Workload = wl
																cfg.Guests = gs
																cfg.NICs = nn
																if hosts > 1 {
																	cfg.Hosts = hosts
																	cfg.Pattern = pat
																	cfg.Shards = shards
																	cfg.Fabric = fab
																}
																cfg.Fault = flt
																cfg.Protection = prot
																cfg.MaxEnqueueBatch = batch
																cfg.DirectPerContextIRQ = irq
																cfg.TxCoalescePkts = coal
																cfg.ConnsPerGuestPerNIC = g.Conns
																// Invalid guest counts stay as-is here and fail
																// Config.Validate with a per-point error record.
																if g.Conns <= 0 && gs >= 1 {
																	cfg.ConnsPerGuestPerNIC = bench.BalancedConns(gs)
																}
																if g.Window > 0 {
																	cfg.Window = g.Window
																}
																if g.Warmup > 0 {
																	cfg.Warmup = g.Warmup
																}
																if g.Duration > 0 {
																	cfg.Duration = g.Duration
																}
																key := cfg
																key.Cal = bench.Calibration{}
																if !seen[key] {
																	seen[key] = true
																	cfgs = append(cfgs, cfg)
																}
															}
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cfgs
}

// Expand concatenates the expansions of several grids, deduplicating
// across them while preserving first-occurrence order. Presets compose
// this way: the full paper is Expand(PaperGrids()...).
func Expand(grids ...Grid) []bench.Config {
	var cfgs []bench.Config
	seen := make(map[bench.Config]bool)
	for _, g := range grids {
		for _, cfg := range g.Points() {
			key := cfg
			key.Cal = bench.Calibration{}
			if !seen[key] {
				seen[key] = true
				cfgs = append(cfgs, cfg)
			}
		}
	}
	return cfgs
}

// Apply sets the measurement windows on every configuration; zero
// fields are left at each configuration's current value.
func Apply(cfgs []bench.Config, warmup, duration sim.Time) []bench.Config {
	for i := range cfgs {
		if warmup > 0 {
			cfgs[i].Warmup = warmup
		}
		if duration > 0 {
			cfgs[i].Duration = duration
		}
	}
	return cfgs
}

var (
	bothDirs = []bench.Direction{bench.Tx, bench.Rx}
	xenOnly  = []bench.Mode{bench.ModeXen}
	cdnaOnly = []bench.Mode{bench.ModeCDNA}
)

// Table1Grids is Table 1: native Linux on the six-NIC rig and a Xen
// guest on the two-NIC rig, transmit and receive.
func Table1Grids() []Grid {
	return []Grid{
		{Modes: []bench.Mode{bench.ModeNative}, Dirs: bothDirs, NICCounts: []int{6}, Conns: 6},
		{Modes: xenOnly, NICs: []bench.NICKind{bench.NICIntel}, Dirs: bothDirs},
	}
}

// Tables234Grids is the full Tables 2–4 grid: the three I/O
// architectures (Xen/Intel, Xen/RiceNIC, CDNA/RiceNIC) in both
// directions, plus CDNA with protection disabled (Table 4).
func Tables234Grids() []Grid {
	return []Grid{
		{Modes: xenOnly, NICs: []bench.NICKind{bench.NICIntel, bench.NICRice}, Dirs: bothDirs},
		{Modes: cdnaOnly, Dirs: bothDirs, Protections: []core.Mode{core.ModeHypercall, core.ModeOff}},
	}
}

// FigureGrids is Figures 3 and 4: Xen/Intel vs CDNA/RiceNIC scaling
// over the guest-count axis, both directions.
func FigureGrids() []Grid {
	return []Grid{
		{Modes: []bench.Mode{bench.ModeXen, bench.ModeCDNA}, NICs: []bench.NICKind{bench.NICIntel}, Dirs: bothDirs, Guests: bench.FigureGuests},
	}
}

// AblationGrids covers the ablation studies cmd/cdnatables runs: A1
// (interrupt delivery, 8 guests), A2 (enqueue batching), A4 (protection
// mechanism) and A5 (transmit coalescing), all CDNA transmit.
func AblationGrids() []Grid {
	tx := []bench.Direction{bench.Tx}
	return []Grid{
		{Modes: cdnaOnly, Dirs: tx, Guests: []int{8}, IRQDeliveries: []bool{false, true}},
		{Modes: cdnaOnly, Dirs: tx, MaxEnqueueBatches: []int{1, 2, 4, 8, 16, 0}},
		{Modes: cdnaOnly, Dirs: tx, Protections: []core.Mode{core.ModeHypercall, core.ModeIOMMU, core.ModeOff}},
		{Modes: cdnaOnly, Dirs: tx, TxCoalesce: []int{2, 4, 8, 12, 24, 48}},
	}
}

// WorkloadGrids is the beyond-the-paper traffic-diversity campaign: all
// four workload shapes (bulk, closed-loop RPC, connection churn, on/off
// bursts) across the three I/O architectures, so virtualization
// overheads can be ranked under latency-bound and churn-bound traffic
// rather than only under saturating bulk streams.
func WorkloadGrids() []Grid {
	allModes := []bench.Mode{bench.ModeNative, bench.ModeXen, bench.ModeCDNA}
	shapes := []workload.Spec{
		{Kind: workload.Bulk},
		{Kind: workload.RequestResponse},
		{Kind: workload.Churn},
		{Kind: workload.Burst},
	}
	return []Grid{{Modes: allModes, Workloads: shapes}}
}

// TopologyGrids is the cross-host scenario campaign over the switched
// fabric (internal/topo): an incast host sweep (the N→1 fan-in whose
// tail drops live in the switch's root-port egress queue), pairwise and
// all-to-all shuffles at a fixed rack size, and connection churn across
// the fabric — each for both I/O architectures, so the question "does
// CDNA's advantage survive a congested fabric?" has a one-command
// answer.
func TopologyGrids() []Grid {
	tx := []bench.Direction{bench.Tx}
	xenCDNA := []bench.Mode{bench.ModeXen, bench.ModeCDNA}
	return []Grid{
		{Modes: xenCDNA, Dirs: tx, Hosts: []int{2, 4, 8}, Patterns: []bench.Pattern{bench.PatternIncast}},
		{Modes: xenCDNA, Dirs: tx, Hosts: []int{4}, Patterns: []bench.Pattern{bench.PatternPairs, bench.PatternAllToAll}},
		{Modes: xenCDNA, Dirs: tx, Hosts: []int{4}, Patterns: []bench.Pattern{bench.PatternIncast},
			Workloads: []workload.Spec{{Kind: workload.Churn}}},
	}
}

// FaultGrids is the fault/churn campaign over the switched fabric: a
// 3-host incast under each fault scenario (none as the baseline, an
// access-link flap, a switch-port failure with its FDB re-learning
// churn, and a whole-fabric blackout whose healing synchronizes the
// retransmission timers), for both I/O architectures. Default
// schedules (quarter-window) keep every scenario valid at any window
// length, so `-quick` sweeps and full-length runs use the same grid.
func FaultGrids() []Grid {
	tx := []bench.Direction{bench.Tx}
	xenCDNA := []bench.Mode{bench.ModeXen, bench.ModeCDNA}
	return []Grid{
		{Modes: xenCDNA, Dirs: tx, Hosts: []int{3}, Patterns: []bench.Pattern{bench.PatternIncast},
			Faults: []bench.FaultSpec{
				{},
				{Kind: bench.FaultLinkFlap},
				{Kind: bench.FaultPortFail},
				{Kind: bench.FaultBlackout},
			}},
	}
}

// FabricGrids is the multi-tier fabric campaign: the cross-rack incast
// and shuffle scenarios re-run over leaf-spine and fat-tree topologies
// (against the single-ToR baseline), plus a trunk-starvation sweep over
// the oversubscription ratio, for both I/O architectures.
func FabricGrids() []Grid {
	tx := []bench.Direction{bench.Tx}
	xenCDNA := []bench.Mode{bench.ModeXen, bench.ModeCDNA}
	fabrics := []topo.FabricSpec{
		{},
		{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2},
		{Kind: topo.KindFatTree, HostsPerLeaf: 2, Spines: 2},
	}
	return []Grid{
		{Modes: xenCDNA, Dirs: tx, Hosts: []int{4}, Fabrics: fabrics,
			Patterns: []bench.Pattern{bench.PatternIncast, bench.PatternAllToAll}},
		{Modes: cdnaOnly, Dirs: tx, Hosts: []int{4}, Patterns: []bench.Pattern{bench.PatternPairs},
			Fabrics: []topo.FabricSpec{
				{Kind: topo.KindLeafSpine, HostsPerLeaf: 1, Spines: 2},
				{Kind: topo.KindLeafSpine, HostsPerLeaf: 1, Spines: 2, Oversub: 2},
				{Kind: topo.KindLeafSpine, HostsPerLeaf: 1, Spines: 2, Oversub: 4},
			}},
	}
}

// OpenLoopGrids is the open-loop workload campaign: Poisson and Pareto
// flow arrivals at rates spanning light load through response-time
// collapse, web-search and data-mining flow-size mixes, incast across a
// leaf-spine fabric, for both I/O architectures.
func OpenLoopGrids() []Grid {
	tx := []bench.Direction{bench.Tx}
	xenCDNA := []bench.Mode{bench.ModeXen, bench.ModeCDNA}
	var shapes []workload.Spec
	for _, rate := range []float64{50, 500, 4000} {
		shapes = append(shapes,
			workload.Spec{Kind: workload.Poisson, FlowRate: rate, SizeDist: workload.SizeWebSearch},
			workload.Spec{Kind: workload.Pareto, FlowRate: rate, SizeDist: workload.SizeDataMining},
		)
	}
	return []Grid{
		{Modes: xenCDNA, Dirs: tx, Hosts: []int{4}, Patterns: []bench.Pattern{bench.PatternIncast},
			Fabrics:   []topo.FabricSpec{{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2}},
			Workloads: shapes},
	}
}

// PaperGrids is the whole evaluation: Tables 1–4, Figures 3–4, and the
// ablations, as one deduplicated campaign.
func PaperGrids() []Grid {
	var grids []Grid
	grids = append(grids, Table1Grids()...)
	grids = append(grids, Tables234Grids()...)
	grids = append(grids, FigureGrids()...)
	grids = append(grids, AblationGrids()...)
	return grids
}
