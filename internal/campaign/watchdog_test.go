package campaign

import (
	"errors"
	"testing"
	"time"

	"cdna/internal/bench"
)

// wedge is an executor whose victim configuration hangs forever — the
// deliberately wedged Runner of the watchdog contract. Non-victim
// configurations return immediately.
func wedge(victimGuests int) func(bench.Config) bench.Outcome {
	return func(cfg bench.Config) bench.Outcome {
		if cfg.Guests == victimGuests {
			select {} // wedged: never returns
		}
		return bench.Outcome{Config: cfg}
	}
}

func watchdogGrid() []bench.Config {
	var cfgs []bench.Config
	for _, g := range []int{1, 2, 7, 4} {
		cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
		cfg.Guests = g
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestWatchdogReleasesWorker: a hung experiment must be marked failed
// with ErrTimeout at the deadline and its worker released — the rest of
// the pool's experiments all complete. Without the watchdog this test
// would deadlock (and time out the suite).
func TestWatchdogReleasesWorker(t *testing.T) {
	cfgs := watchdogGrid() // guests 1, 2, 7(victim), 4
	done := make(chan []bench.Outcome, 1)
	go func() {
		done <- Run(cfgs, Options{
			Workers: 2,
			Timeout: 50 * time.Millisecond,
			Exec:    wedge(7),
		})
	}()
	var outs []bench.Outcome
	select {
	case outs = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("watchdog did not release the wedged worker")
	}
	for i, out := range outs {
		if cfgs[i].Guests == 7 {
			if !errors.Is(out.Err, ErrTimeout) {
				t.Fatalf("wedged experiment err = %v; want ErrTimeout", out.Err)
			}
			continue
		}
		if out.Err != nil {
			t.Fatalf("experiment %d failed: %v", i, out.Err)
		}
	}
}

// The sequential path (workers <= 1) runs the same watchdog: a single
// wedged point cannot stall a one-worker sweep.
func TestWatchdogSequential(t *testing.T) {
	cfgs := watchdogGrid()
	outs := Run(cfgs, Options{
		Workers: 1,
		Timeout: 50 * time.Millisecond,
		Exec:    wedge(7),
	})
	timeouts := 0
	for _, out := range outs {
		if errors.Is(out.Err, ErrTimeout) {
			timeouts++
		} else if out.Err != nil {
			t.Fatalf("unexpected error: %v", out.Err)
		}
	}
	if timeouts != 1 {
		t.Fatalf("got %d timeouts; want exactly 1", timeouts)
	}
}

// TestWatchdogDisabled: a zero timeout must not wrap the executor in a
// goroutine at all — outcomes flow through untouched.
func TestWatchdogDisabled(t *testing.T) {
	cfgs := watchdogGrid()[:2]
	outs := Run(cfgs, Options{Workers: 1, Exec: func(cfg bench.Config) bench.Outcome {
		return bench.Outcome{Config: cfg}
	}})
	for _, out := range outs {
		if out.Err != nil {
			t.Fatalf("unexpected error: %v", out.Err)
		}
	}
}

// TestCancelMarksUnstartedTail: closing Cancel stops dispatch; finished
// experiments keep their results, unstarted ones carry ErrCanceled, and
// Interrupted flags the batch.
func TestCancelMarksUnstartedTail(t *testing.T) {
	cfgs := watchdogGrid()
	cancel := make(chan struct{})
	started := make(chan struct{})
	var once bool
	outs := Run(cfgs, Options{
		Workers: 1,
		Cancel:  cancel,
		Exec: func(cfg bench.Config) bench.Outcome {
			if !once {
				once = true
				close(started)
				close(cancel) // drain arrives while the first experiment runs
			}
			return bench.Outcome{Config: cfg}
		},
	})
	<-started
	if outs[0].Err != nil {
		t.Fatalf("in-flight experiment should finish: %v", outs[0].Err)
	}
	for i := 1; i < len(outs); i++ {
		if !errors.Is(outs[i].Err, ErrCanceled) {
			t.Fatalf("outcome %d err = %v; want ErrCanceled", i, outs[i].Err)
		}
	}
	if !Interrupted(outs) {
		t.Fatal("Interrupted = false for a canceled batch")
	}
}

// TestCancelPreClosedParallel: a cancel that is already closed cancels
// everything, on the parallel path too, and never leaves a zero-value
// outcome behind.
func TestCancelPreClosedParallel(t *testing.T) {
	cfgs := watchdogGrid()
	cancel := make(chan struct{})
	close(cancel)
	outs := Run(cfgs, Options{Workers: 4, Cancel: cancel})
	for i, out := range outs {
		if !errors.Is(out.Err, ErrCanceled) {
			t.Fatalf("outcome %d err = %v; want ErrCanceled", i, out.Err)
		}
		if out.Config.Name() != cfgs[i].Name() {
			t.Fatalf("outcome %d lost its config", i)
		}
	}
}
