package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"cdna/internal/bench"
	"cdna/internal/core"
	"cdna/internal/sim"
)

// testGrid is a small mixed grid with very short windows, cheap enough
// to run several times in one test.
func testGrid() []bench.Config {
	cfgs := Expand(Grid{
		Modes:  []bench.Mode{bench.ModeXen, bench.ModeCDNA},
		NICs:   []bench.NICKind{bench.NICIntel},
		Dirs:   []bench.Direction{bench.Tx, bench.Rx},
		Window: 24,
	})
	return Apply(cfgs, 20*sim.Millisecond, 50*sim.Millisecond)
}

// TestWorkerCountDeterminism is the campaign's core guarantee: the same
// grid run on 1 worker and on N workers yields byte-identical results,
// because every experiment owns a private deterministic engine.
func TestWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a dozen simulations")
	}
	var serial, parallel bytes.Buffer
	if err := WriteJSON(&serial, Run(testGrid(), Options{Workers: 1})); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&parallel, Run(testGrid(), Options{Workers: 4})); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("1-worker and 4-worker runs differ:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestTableRunnerDeterminism checks the bench-side injection point: a
// table generated through the parallel campaign Runner must match the
// sequential default exactly.
func TestTableRunnerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six simulations")
	}
	opts := bench.Opts{Warmup: 20 * sim.Millisecond, Duration: 50 * sim.Millisecond}
	seq, seqRes, err := bench.Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Runner = Runner(4)
	par, parRes, err := bench.Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("sequential and parallel Table 2 differ:\n%s\nvs\n%s", seq, par)
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Error("sequential and parallel Table 2 results differ")
	}
}

// TestErrorCaptureDoesNotAbort mixes healthy configurations with one
// that errors (unknown mode), one that fails validation (zero guests),
// and one that panics inside the simulator (a corrupted calibration
// with a negative per-packet cost trips the CPU model's assertion);
// the sweep must complete with the failures captured in place and the
// healthy experiments intact.
func TestErrorCaptureDoesNotAbort(t *testing.T) {
	good := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	good.Warmup, good.Duration = 10*sim.Millisecond, 20*sim.Millisecond

	bad := good
	bad.Mode = bench.Mode(99)

	invalid := good
	invalid.Guests = 0

	panicky := good
	panicky.Cal.StackNoTSO.TxData = -sim.Microsecond

	cfgs := []bench.Config{good, bad, invalid, panicky, good}
	outs := Run(cfgs, Options{Workers: 3})
	if len(outs) != len(cfgs) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(cfgs))
	}
	for _, i := range []int{0, 4} {
		if outs[i].Err != nil {
			t.Errorf("healthy config %d failed: %v", i, outs[i].Err)
		}
		if outs[i].Result.Mbps <= 0 {
			t.Errorf("healthy config %d measured %v Mb/s, want > 0", i, outs[i].Result.Mbps)
		}
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "unknown mode") {
		t.Errorf("bad-mode config: err = %v, want unknown-mode error", outs[1].Err)
	}
	if outs[2].Err == nil || !strings.Contains(outs[2].Err.Error(), "at least one guest") {
		t.Errorf("zero-guest config: err = %v, want validation error", outs[2].Err)
	}
	if outs[3].Err == nil || !strings.Contains(outs[3].Err.Error(), "panicked") {
		t.Errorf("panicking config: err = %v, want captured panic", outs[3].Err)
	}
	if err := Check(outs); !errors.Is(err, ErrFailures) {
		t.Errorf("Check = %v, want ErrFailures", err)
	}
	if err := Check(outs[:1]); err != nil {
		t.Errorf("Check of healthy prefix = %v, want nil", err)
	}
}

// TestProgressReporting checks that the progress callback fires exactly
// once per experiment with a monotonically increasing completion count.
func TestProgressReporting(t *testing.T) {
	cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	cfg.Warmup, cfg.Duration = 5*sim.Millisecond, 10*sim.Millisecond
	cfgs := []bench.Config{cfg, cfg, cfg}

	var seen []int
	Run(cfgs, Options{Workers: 2, Progress: func(done, total int, out bench.Outcome) {
		if total != len(cfgs) {
			t.Errorf("total = %d, want %d", total, len(cfgs))
		}
		seen = append(seen, done)
	}})
	if want := []int{1, 2, 3}; !reflect.DeepEqual(seen, want) {
		t.Errorf("progress counts = %v, want %v", seen, want)
	}
}

// TestJSONRoundTrip runs a tiny campaign (including one failure),
// writes it as JSON, reads it back, and checks the records survive.
func TestJSONRoundTrip(t *testing.T) {
	cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	cfg.Warmup, cfg.Duration = 10*sim.Millisecond, 20*sim.Millisecond
	cfg.Protection = core.ModeIOMMU
	bad := cfg
	bad.Mode = bench.Mode(99)

	outs := Run([]bench.Config{cfg, bad}, Options{Workers: 1})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, outs); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Compare via JSON: the in-memory records differ only in Config.Cal,
	// which is deliberately excluded from serialization.
	again, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := json.Marshal(Records(outs))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, orig) {
		t.Errorf("round-tripped records differ:\ngot  %s\nwant %s", again, orig)
	}
	if recs[0].Failed() || recs[0].Mbps <= 0 {
		t.Errorf("record 0: failed=%v mbps=%v, want success with throughput", recs[0].Failed(), recs[0].Mbps)
	}
	if recs[0].Result.Config.Protection != core.ModeIOMMU {
		t.Errorf("record 0 protection = %v, want iommu", recs[0].Result.Config.Protection)
	}
	if !recs[1].Failed() {
		t.Error("record 1 should carry the failure")
	}
}

// TestWriteCSV checks the CSV form: a header plus one row per
// experiment, with the error column populated on failures.
func TestWriteCSV(t *testing.T) {
	cfg := bench.DefaultConfig(bench.ModeCDNA, bench.NICRice, bench.Tx)
	cfg.Warmup, cfg.Duration = 5*sim.Millisecond, 10*sim.Millisecond
	bad := cfg
	bad.Mode = bench.Mode(99)
	outs := Run([]bench.Config{cfg, bad}, Options{Workers: 1})

	var buf bytes.Buffer
	if err := WriteCSV(&buf, outs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "name,mode,nic,dir") {
		t.Errorf("unexpected CSV header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "cdna") || strings.Contains(lines[1], "unknown mode") {
		t.Errorf("row 1 should be the healthy cdna run: %s", lines[1])
	}
	if !strings.Contains(lines[2], "unknown mode") {
		t.Errorf("row 2 should carry the error: %s", lines[2])
	}
}

// TestTables234GridExpansion pins the acceptance grid: the three I/O
// architectures in both directions plus the protection-off rows — the
// eight distinct experiments behind Tables 2–4.
func TestTables234GridExpansion(t *testing.T) {
	cfgs := Expand(Tables234Grids()...)
	if len(cfgs) != 8 {
		t.Fatalf("Tables 2–4 grid has %d points, want 8", len(cfgs))
	}
	type key struct {
		m bench.Mode
		n bench.NICKind
		d bench.Direction
		p core.Mode
	}
	got := make(map[key]bool)
	for _, c := range cfgs {
		got[key{c.Mode, c.NIC, c.Dir, c.Protection}] = true
		if c.Guests != 1 || c.NICs != 2 {
			t.Errorf("%s: guests=%d nics=%d, want 1 guest 2 NICs", c.Name(), c.Guests, c.NICs)
		}
	}
	for _, d := range []bench.Direction{bench.Tx, bench.Rx} {
		for _, want := range []key{
			{bench.ModeXen, bench.NICIntel, d, core.ModeHypercall},
			{bench.ModeXen, bench.NICRice, d, core.ModeHypercall},
			{bench.ModeCDNA, bench.NICRice, d, core.ModeHypercall},
			{bench.ModeCDNA, bench.NICRice, d, core.ModeOff},
		} {
			if !got[want] {
				t.Errorf("missing grid point %+v", want)
			}
		}
	}
}

// TestExpandDeduplicates checks both the in-grid axis collapsing (the
// protection axis is meaningless outside CDNA) and cross-grid
// deduplication in Expand.
func TestExpandDeduplicates(t *testing.T) {
	g := Grid{
		Modes:       []bench.Mode{bench.ModeXen},
		Dirs:        []bench.Direction{bench.Tx},
		Protections: []core.Mode{core.ModeHypercall, core.ModeOff},
	}
	if cfgs := g.Points(); len(cfgs) != 1 {
		t.Errorf("Xen grid with a protection axis expands to %d points, want 1 (axis is CDNA-only)", len(cfgs))
	}
	if cfgs := Expand(g, g); len(cfgs) != 1 {
		t.Errorf("Expand(g, g) has %d points, want 1", len(cfgs))
	}
	paper := Expand(PaperGrids()...)
	seen := make(map[bench.Config]bool)
	for _, c := range paper {
		c.Cal = bench.Calibration{}
		if seen[c] {
			t.Errorf("paper grid contains duplicate %s", c.Name())
		}
		seen[c] = true
	}
	// The paper campaign must cover the acceptance grid (Tables 2–4).
	for _, want := range Expand(Tables234Grids()...) {
		want.Cal = bench.Calibration{}
		if !seen[want] {
			t.Errorf("paper grid missing Tables 2–4 point %s", want.Name())
		}
	}
}

// TestShardAxisCollapse pins the engine-partition axis semantics: a
// shard axis crossed with a host axis applies only to multi-host
// points and collapses to 1 (no duplicate points) wherever there is a
// single host and therefore a single engine.
func TestShardAxisCollapse(t *testing.T) {
	g := Grid{
		Modes:  []bench.Mode{bench.ModeCDNA},
		Dirs:   []bench.Direction{bench.Tx},
		Hosts:  []int{1, 4},
		Shards: []int{2, 4},
	}
	cfgs := g.Points()
	// 1 single-host point (shards collapsed) + 2 four-host points.
	if len(cfgs) != 3 {
		t.Fatalf("grid expands to %d points, want 3", len(cfgs))
	}
	var got []int
	for _, c := range cfgs {
		if c.Hosts <= 1 && c.Shards != 0 && c.Shards != 1 {
			t.Errorf("single-host point carries shards=%d", c.Shards)
		}
		if c.Hosts > 1 {
			got = append(got, c.Shards)
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("multi-host shard points = %v, want [2 4]", got)
	}

	// An empty shard axis leaves every point on the single engine.
	for _, c := range (Grid{Modes: []bench.Mode{bench.ModeCDNA}, Hosts: []int{4}}).Points() {
		if c.Shards > 1 {
			t.Errorf("default grid point carries shards=%d", c.Shards)
		}
	}
}

// TestGridSpecJSON parses a -spec style grid file with string enums and
// checks it round-trips through campaign.Grid's JSON form.
func TestGridSpecJSON(t *testing.T) {
	spec := `{
		"modes": ["xen", "cdna"],
		"nics": ["intel"],
		"dirs": ["tx", "rx"],
		"guests": [1, 4],
		"protections": ["hypercall", "off"],
		"window": 24
	}`
	grids, err := ReadGrids(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 1 {
		t.Fatalf("got %d grids, want 1", len(grids))
	}
	g := grids[0]
	if !reflect.DeepEqual(g.Modes, []bench.Mode{bench.ModeXen, bench.ModeCDNA}) ||
		!reflect.DeepEqual(g.Dirs, []bench.Direction{bench.Tx, bench.Rx}) ||
		g.Window != 24 {
		t.Errorf("parsed grid = %+v", g)
	}
	// Xen×{tx,rx}×{1,4} plus CDNA×{tx,rx}×{1,4}×{hypercall,off}.
	if cfgs := Expand(g); len(cfgs) != 12 {
		t.Errorf("spec expands to %d points, want 12", len(cfgs))
	}
	// An omitted direction axis collapses to transmit, like every
	// other axis, rather than expanding to nothing.
	if cfgs := (Grid{}).Points(); len(cfgs) != 1 || cfgs[0].Dir != bench.Tx {
		t.Errorf("zero grid expands to %v, want one default transmit point", cfgs)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ReadGrids(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again[0], g) {
		t.Errorf("grid does not round-trip: %s", b)
	}
	if _, err := ReadGrids(strings.NewReader(`{"modes": ["vmware"]}`)); err == nil {
		t.Error("unknown mode token should fail to parse")
	}
	// A bad token inside an array spec must surface the token error,
	// not a structural object-vs-array complaint.
	if _, err := ReadGrids(strings.NewReader(`[{"modes": ["vmware"]}]`)); err == nil || !strings.Contains(err.Error(), "vmware") {
		t.Errorf("array spec error = %v, want the unknown-mode diagnostic", err)
	}
}
