package daemon

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cdna/internal/campaign"
	"cdna/internal/sim"
	"cdna/internal/store"
)

// The HTTP/JSON API, served over a unix socket:
//
//	POST /v1/sweeps            submit a SweepRequest; 202 SubmitResponse,
//	                           429 when the queue is full (retryable),
//	                           503 while draining (retryable)
//	GET  /v1/sweeps/{id}       SweepStatus
//	GET  /v1/sweeps/{id}/results
//	                           the sweep's result records, byte-identical
//	                           to a local cdnasweep run's JSON output;
//	                           409 until the sweep is done
//	GET  /v1/sweeps/{id}/stream
//	                           newline-delimited ProgressEvents, replayed
//	                           from the start and ending with a terminal
//	                           event carrying the sweep state
//	GET  /v1/status            DaemonStatus
//	POST /v1/drain             begin graceful shutdown; 202 immediately
//
// Submission is idempotent by content: a request's ID is the hash of
// its canonical JSON, so a client that retries after a timeout, a 429,
// or a daemon restart re-attaches to the same sweep instead of
// enqueueing a duplicate.

// SweepRequest is a sweep submission: the same grid schema
// cmd/cdnasweep -spec reads, plus execution knobs.
type SweepRequest struct {
	Grids []campaign.Grid `json:"grids"`
	// Warmup/Duration override every point's measurement windows
	// (0 keeps each grid's own values), exactly like campaign.Apply.
	Warmup   sim.Time `json:"warmup_ns,omitempty"`
	Duration sim.Time `json:"duration_ns,omitempty"`
	// Workers is the campaign worker-pool width; <= 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// ID returns the request's content hash: 16 hex bytes over the
// canonical JSON encoding.
func (r SweepRequest) ID() (string, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("daemon: hashing request: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// Sweep states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	// StateInterrupted marks a sweep cut short by a drain or crash: its
	// journal entry is still open, so the next daemon start resumes it
	// (completed points served from the store).
	StateInterrupted = "interrupted"
	StateFailed      = "failed"
)

// Terminal reports whether a sweep state is final for this daemon
// process (an interrupted sweep is terminal here, resumed by the next).
func Terminal(state string) bool {
	return state == StateDone || state == StateInterrupted || state == StateFailed
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// SweepStatus is one sweep's progress snapshot. Done counts finished
// experiments (cache hits included); Failed counts finished experiments
// whose outcome is an error.
type SweepStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Failed int    `json:"failed"`
	// Cache is the sweep's own hit/miss ledger — the counters the
	// overlapping-sweep acceptance test reads.
	Cache campaign.CacheCounts `json:"cache"`
	Error string               `json:"error,omitempty"`
}

// DaemonStatus is the daemon-wide snapshot.
type DaemonStatus struct {
	State    string      `json:"state"` // serving | draining
	Queued   int         `json:"queued"`
	QueueCap int         `json:"queue_cap"`
	Sweeps   int         `json:"sweeps"`
	Store    store.Stats `json:"store"`
}

// ProgressEvent is one line of a sweep's progress stream. Ordinary
// events carry a finished experiment; the final event has State set to
// the sweep's terminal state and no experiment fields.
type ProgressEvent struct {
	Done  int     `json:"done"`
	Total int     `json:"total"`
	Name  string  `json:"name,omitempty"`
	Mbps  float64 `json:"mbps,omitempty"`
	Error string  `json:"error,omitempty"`
	State string  `json:"state,omitempty"`
}

// apiError is the JSON error envelope; Retryable tells a client the
// condition is transient (queue full, draining).
type apiError struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
}
