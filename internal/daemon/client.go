package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"time"
)

// Client talks to a sweep daemon over its unix socket. Every call
// retries transient failures — connection errors, retryable API
// rejections (429 queue-full, 503 draining), and 5xx — under
// exponential backoff with jitter, so a briefly overloaded or
// restarting daemon is invisible to the caller beyond added latency.
type Client struct {
	socket  string
	hc      *http.Client
	Backoff Backoff
	// Logf, when non-nil, receives one line per retry and reconnect.
	Logf func(format string, args ...any)
}

// Backoff is an exponential backoff schedule with full jitter.
type Backoff struct {
	Base     time.Duration // first delay; 0 means 50ms
	Max      time.Duration // delay ceiling; 0 means 5s
	Attempts int           // total tries per call; 0 means 8
}

func (b Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 50 * time.Millisecond
}

func (b Backoff) max() time.Duration {
	if b.Max > 0 {
		return b.Max
	}
	return 5 * time.Second
}

func (b Backoff) attempts() int {
	if b.Attempts > 0 {
		return b.Attempts
	}
	return 8
}

// delay returns the jittered sleep before retry attempt n (0-based):
// uniform over (0, min(Max, Base*2^n)].
func (b Backoff) delay(n int) time.Duration {
	d := b.base() << uint(n)
	if d <= 0 || d > b.max() {
		d = b.max()
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// NewClient returns a client for the daemon at the given socket path.
func NewClient(socket string) *Client {
	return &Client{
		socket: socket,
		hc: &http.Client{
			Transport: &http.Transport{
				DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
					var d net.Dialer
					return d.DialContext(ctx, "unix", socket)
				},
			},
		},
	}
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// retryErr is a transient failure the backoff loop should absorb.
type retryErr struct{ err error }

func (e retryErr) Error() string { return e.err.Error() }
func (e retryErr) Unwrap() error { return e.err }

// call performs one HTTP round trip, decoding the response into out
// (when non-nil) and classifying failures as retryable or fatal.
func (c *Client) call(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("daemon client: encoding request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, "http://daemon"+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return retryErr{fmt.Errorf("daemon client: %s %s: %w", method, path, err)}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return retryErr{fmt.Errorf("daemon client: reading response: %w", err)}
	}
	if resp.StatusCode >= 400 {
		var ae apiError
		msg := string(bytes.TrimSpace(raw))
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		err := fmt.Errorf("daemon client: %s %s: %s (%s)", method, path, resp.Status, msg)
		if ae.Retryable || resp.StatusCode >= 500 {
			return retryErr{err}
		}
		return err
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("daemon client: decoding response: %w", err)
		}
	}
	return nil
}

// retry runs fn under the backoff schedule, absorbing retryable
// failures until the attempt budget runs out.
func (c *Client) retry(what string, fn func() error) error {
	var last error
	for n := 0; n < c.Backoff.attempts(); n++ {
		if n > 0 {
			d := c.Backoff.delay(n - 1)
			c.logf("retrying %s in %v: %v", what, d, last)
			time.Sleep(d)
		}
		err := fn()
		if err == nil {
			return nil
		}
		if _, ok := err.(retryErr); !ok {
			return err
		}
		last = err
	}
	return fmt.Errorf("daemon client: %s failed after %d attempts: %w", what, c.Backoff.attempts(), last)
}

// Submit submits a sweep (idempotent by content hash) and returns the
// daemon's acknowledgment.
func (c *Client) Submit(req SweepRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.retry("submit", func() error {
		return c.call("POST", "/v1/sweeps", req, &resp)
	})
	return resp, err
}

// Status fetches one sweep's progress snapshot.
func (c *Client) Status(id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.retry("status", func() error {
		return c.call("GET", "/v1/sweeps/"+id, nil, &st)
	})
	return st, err
}

// DaemonStatus fetches the daemon-wide snapshot.
func (c *Client) DaemonStatus() (DaemonStatus, error) {
	var st DaemonStatus
	err := c.retry("daemon status", func() error {
		return c.call("GET", "/v1/status", nil, &st)
	})
	return st, err
}

// Results fetches a finished sweep's result JSON, verbatim — the bytes
// are identical to what a local cdnasweep run would have written.
func (c *Client) Results(id string) ([]byte, error) {
	var raw []byte
	err := c.retry("results", func() error {
		resp, err := c.hc.Get("http://daemon/v1/sweeps/" + id + "/results")
		if err != nil {
			return retryErr{err}
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return retryErr{err}
		}
		if resp.StatusCode != http.StatusOK {
			var ae apiError
			msg := string(bytes.TrimSpace(b))
			if json.Unmarshal(b, &ae) == nil && ae.Error != "" {
				msg = ae.Error
			}
			err := fmt.Errorf("daemon client: results: %s (%s)", resp.Status, msg)
			if ae.Retryable || resp.StatusCode >= 500 {
				return retryErr{err}
			}
			return err
		}
		raw = b
		return nil
	})
	return raw, err
}

// Drain asks the daemon to shut down gracefully.
func (c *Client) Drain() error {
	return c.retry("drain", func() error {
		return c.call("POST", "/v1/drain", nil, nil)
	})
}

// Stream follows a sweep's progress stream, invoking fn per event,
// until the stream ends. A disconnect is returned (not retried) — the
// caller decides whether to reconnect; events are replayed from the
// start on a new stream.
func (c *Client) Stream(id string, fn func(ProgressEvent)) error {
	resp, err := c.hc.Get("http://daemon/v1/sweeps/" + id + "/stream")
	if err != nil {
		return retryErr{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("daemon client: stream: %s", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev ProgressEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			return retryErr{err}
		}
		if fn != nil {
			fn(ev)
		}
	}
}

// RunSweep drives a sweep end to end: submit (retrying through
// queue-full and draining rejections), follow progress, resubmit if
// the daemon restarts or the sweep is interrupted by a drain, and
// return the final result JSON once the sweep is done. Content-hash
// idempotency makes every resubmission re-attach or resume rather
// than duplicate work. progress may be nil.
func (c *Client) RunSweep(req SweepRequest, progress func(ProgressEvent)) ([]byte, error) {
	const resubmits = 16 // interruption budget, distinct from per-call retries
	var lastState string
	for n := 0; n < resubmits; n++ {
		ack, err := c.Submit(req)
		if err != nil {
			return nil, err
		}
		if err := c.Stream(ack.ID, progress); err != nil {
			c.logf("progress stream lost (%v); re-attaching to sweep %s", err, ack.ID)
		}
		// The stream ended (terminal event, daemon restart, or dropped
		// connection). Poll status for the authoritative state.
		st, err := c.Status(ack.ID)
		if err != nil {
			// Daemon likely restarting; back off and resubmit (same ID).
			c.logf("status poll failed (%v); resubmitting sweep %s", err, ack.ID)
			time.Sleep(c.Backoff.delay(n))
			continue
		}
		lastState = st.State
		switch st.State {
		case StateDone:
			return c.Results(ack.ID)
		case StateFailed:
			return nil, fmt.Errorf("daemon client: sweep %s failed: %s", ack.ID, st.Error)
		case StateInterrupted:
			c.logf("sweep %s interrupted (%d/%d done); resubmitting", ack.ID, st.Done, st.Total)
			time.Sleep(c.Backoff.delay(n))
			continue
		default:
			// Still queued or running but the stream closed; re-attach.
			continue
		}
	}
	return nil, fmt.Errorf("daemon client: sweep did not complete after %d submissions (last state %q)", resubmits, lastState)
}
