package daemon

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The write-ahead journal of accepted sweeps. Accepting a submission
// appends an "accept" record (request included) and fsyncs before the
// client sees its acknowledgment; completing the sweep appends a
// "done" record. A daemon killed mid-sweep therefore restarts with an
// exact list of accepted-but-incomplete sweeps and resumes them — the
// result store turns the resume into a delta run.
//
// The journal tolerates its own crash modes: a torn final line (killed
// mid-append) is ignored, and startup compacts the file down to the
// open entries via the same temp-file-plus-rename discipline the store
// uses, so the journal cannot grow without bound or be left torn.

type journalRec struct {
	Op  string        `json:"op"` // accept | done
	ID  string        `json:"id"`
	Req *SweepRequest `json:"req,omitempty"`
}

type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// openJournal replays the journal at path (creating it if absent),
// compacts it to its open entries, and returns those entries — the
// sweeps to resume — in original acceptance order.
func openJournal(path string) (*journal, []journalRec, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("daemon: reading journal: %w", err)
	}
	var order []string
	open := make(map[string]journalRec)
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail from a crash mid-append: everything before it is
			// intact, so stop here rather than failing the restart.
			break
		}
		switch rec.Op {
		case "accept":
			if _, ok := open[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			open[rec.ID] = rec
		case "done":
			delete(open, rec.ID)
		}
	}

	var pending []journalRec
	for _, id := range order {
		if rec, ok := open[id]; ok && rec.Req != nil {
			pending = append(pending, rec)
		}
	}

	// Compact: rewrite only the open entries, atomically.
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("daemon: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".journal.*")
	if err != nil {
		return nil, nil, fmt.Errorf("daemon: compacting journal: %w", err)
	}
	for _, rec := range pending {
		if err := appendRec(tmp, rec); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, nil, err
		}
	}
	if err := tmp.Sync(); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("daemon: compacting journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, fmt.Errorf("daemon: compacting journal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("daemon: opening journal: %w", err)
	}
	return &journal{f: f, path: path}, pending, nil
}

func appendRec(f *os.File, rec journalRec) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("daemon: encoding journal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := f.Write(b); err != nil {
		return fmt.Errorf("daemon: appending journal record: %w", err)
	}
	return nil
}

// append writes one record and makes it durable before returning: the
// WAL guarantee that an acknowledged submission survives any crash.
func (j *journal) append(rec journalRec) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := appendRec(j.f, rec); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("daemon: syncing journal: %w", err)
	}
	return nil
}

func (j *journal) accept(id string, req SweepRequest) error {
	return j.append(journalRec{Op: "accept", ID: id, Req: &req})
}

func (j *journal) done(id string) error {
	return j.append(journalRec{Op: "done", ID: id})
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
