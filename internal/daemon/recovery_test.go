package daemon

import (
	"bytes"
	"testing"
	"time"

	"cdna/internal/campaign"
	"cdna/internal/sim"
)

// TestCrashRecovery is the kill-and-restart acceptance test: a daemon
// killed mid-sweep (faults campaign in flight) restarts, replays its
// journal, resumes the sweep as a delta run — completed points served
// from the store — and the final output is byte-identical to a local
// uninterrupted run.
func TestCrashRecovery(t *testing.T) {
	dir := shortDir(t)
	cfg := testConfig(dir)

	// The faults preset: 2 modes x 4 fault scenarios on a 3-host incast.
	req := SweepRequest{
		Grids:    campaign.FaultGrids(),
		Warmup:   20 * sim.Millisecond,
		Duration: 50 * sim.Millisecond,
		Workers:  2,
	}
	want := localReference(t, req)
	total := len(campaign.Expand(req.Grids...))
	if total != 8 {
		t.Fatalf("faults preset has %d points; test assumes 8", total)
	}

	d1, c := startDaemon(t, cfg)
	ack, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the daemon mid-sweep: some experiments done, not all.
	deadline := time.After(60 * time.Second)
	for {
		st, err := c.Status(ack.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done >= 1 && st.Done < total {
			break
		}
		if Terminal(st.State) {
			t.Fatalf("sweep finished (%+v) before the kill; shorten the windows", st)
		}
		select {
		case <-deadline:
			t.Fatalf("sweep never reached a mid-flight point (status %+v)", st)
		case <-time.After(2 * time.Millisecond):
		}
	}
	d1.Kill()

	// Restart on the same store and journal. The journal replay
	// re-enqueues the sweep before intake opens; no resubmission needed.
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.recovered) != 1 || d2.recovered[0].id != ack.ID {
		t.Fatalf("recovered %d sweeps; want the killed sweep %s", len(d2.recovered), ack.ID)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d2.Serve() }()
	t.Cleanup(func() {
		d2.Kill()
		if err := <-serveErr; err != nil {
			t.Errorf("restarted Serve: %v", err)
		}
	})

	// The client re-attaches by content hash and collects the results.
	got, err := c.RunSweep(req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed sweep JSON differs from an uninterrupted local run")
	}

	// The resume was a delta run: at least one pre-crash point came from
	// the store instead of being recomputed.
	st, err := c.Status(ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Done != total {
		t.Fatalf("resumed sweep status = %+v; want done %d/%d", st, total, total)
	}
	if st.Cache.Hits == 0 {
		t.Fatal("resumed sweep recomputed everything; want >0 cache hits from the pre-crash run")
	}
	if st.Cache.Hits+st.Cache.Misses != uint64(total) {
		t.Fatalf("cache ledger %+v does not cover all %d points", st.Cache, total)
	}

	// And the journal is closed out: a third daemon has nothing to resume.
	d2.Kill()
	<-serveErr
	serveErr <- nil
	_, pending, err := openJournal(cfg.journalPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("journal still holds %d open sweeps after completion", len(pending))
	}
}
