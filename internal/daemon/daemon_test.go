package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cdna/internal/bench"
	"cdna/internal/campaign"
	"cdna/internal/sim"
)

// shortDir returns a temp dir with a short absolute path. Unix socket
// paths are limited to ~108 bytes, so t.TempDir() (which embeds the
// full test name) is unusable here.
func shortDir(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "cdnad")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return dir
}

// startDaemon builds and serves a daemon; the returned stop function
// drains it (ignored if the test already stopped it another way).
func startDaemon(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve() }()
	t.Cleanup(func() {
		d.Kill()
		select {
		case err := <-serveErr:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after shutdown")
		}
	})
	c := NewClient(cfg.Socket)
	c.Backoff = Backoff{Base: 5 * time.Millisecond, Max: 250 * time.Millisecond, Attempts: 40}
	c.Logf = t.Logf
	return d, c
}

func testConfig(dir string) Config {
	return Config{
		Socket:   filepath.Join(dir, "d.sock"),
		StoreDir: filepath.Join(dir, "st"),
		Workers:  2,
	}
}

// tinyModesReq is a fast real-simulation sweep: modes x {tx, rx} at
// very short measurement windows.
func tinyModesReq(modes ...bench.Mode) SweepRequest {
	return SweepRequest{
		Grids: []campaign.Grid{{
			Modes: modes,
			Dirs:  []bench.Direction{bench.Tx, bench.Rx},
		}},
		Warmup:   20 * sim.Millisecond,
		Duration: 50 * sim.Millisecond,
		Workers:  2,
	}
}

// localReference runs the request locally (no daemon, no cache) and
// returns the JSON bytes a local cdnasweep run would write.
func localReference(t *testing.T, req SweepRequest) []byte {
	t.Helper()
	cfgs := campaign.Apply(campaign.Expand(req.Grids...), req.Warmup, req.Duration)
	outs := campaign.Run(cfgs, campaign.Options{Workers: req.Workers})
	var buf bytes.Buffer
	if err := campaign.WriteJSON(&buf, outs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonEndToEnd: a remote sweep's result bytes equal a local
// run's, and the overlapping second sweep re-runs only the delta —
// verified through the status API's hit/miss counters.
func TestDaemonEndToEnd(t *testing.T) {
	dir := shortDir(t)
	_, c := startDaemon(t, testConfig(dir))

	first := tinyModesReq(bench.ModeXen) // 2 points
	var events int
	got, err := c.RunSweep(first, func(ev ProgressEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if want := localReference(t, first); !bytes.Equal(got, want) {
		t.Fatal("remote sweep JSON differs from local run")
	}
	if events == 0 {
		t.Fatal("progress stream delivered no events")
	}

	// Overlapping sweep: shares the 2 xen points, adds 2 cdna points.
	second := tinyModesReq(bench.ModeXen, bench.ModeCDNA) // 4 points
	got2, err := c.RunSweep(second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := localReference(t, second); !bytes.Equal(got2, want) {
		t.Fatal("overlapping remote sweep JSON differs from local run")
	}
	id, err := second.ID()
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Done != 4 || st.Failed != 0 {
		t.Fatalf("status = %+v; want done 4/4", st)
	}
	if st.Cache.Hits != 2 || st.Cache.Misses != 2 {
		t.Fatalf("overlap cache counts = %+v; want 2 hits / 2 misses", st.Cache)
	}

	ds, err := c.DaemonStatus()
	if err != nil {
		t.Fatal(err)
	}
	if ds.State != "serving" || ds.Sweeps != 2 {
		t.Fatalf("daemon status = %+v; want serving with 2 sweeps", ds)
	}
	if ds.Store.Puts != 4 {
		t.Fatalf("store puts = %d; want 4 (2 xen + 2 cdna)", ds.Store.Puts)
	}
}

// TestSubmitIsIdempotent: the same request content maps to the same
// sweep — a client retry or double submit re-attaches, never duplicates.
func TestSubmitIsIdempotent(t *testing.T) {
	dir := shortDir(t)
	d, c := startDaemon(t, testConfig(dir))

	req := tinyModesReq(bench.ModeCDNA)
	a1, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if a1.ID != a2.ID {
		t.Fatalf("same content got two sweeps: %s vs %s", a1.ID, a2.ID)
	}
	d.mu.Lock()
	n := len(d.sweeps)
	d.mu.Unlock()
	if n != 1 {
		t.Fatalf("daemon holds %d sweeps; want 1", n)
	}
	if _, err := c.RunSweep(req, nil); err != nil {
		t.Fatal(err)
	}
}

// gate returns a testWrapExec that blocks every experiment until
// release is closed, after signaling entry on entered.
func gate(entered chan<- struct{}, release <-chan struct{}) func(func(bench.Config) bench.Outcome) func(bench.Config) bench.Outcome {
	return func(exec func(bench.Config) bench.Outcome) func(bench.Config) bench.Outcome {
		return func(cfg bench.Config) bench.Outcome {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
			return exec(cfg)
		}
	}
}

// submitRaw posts a request without any retry and returns the HTTP
// status plus the decoded error envelope (if any).
func submitRaw(t *testing.T, c *Client, req SweepRequest) (int, apiError) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.hc.Post("http://daemon/v1/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ae apiError
	json.NewDecoder(resp.Body).Decode(&ae)
	return resp.StatusCode, ae
}

// distinctReqs returns n sweep requests with distinct content (distinct
// guest counts), each a single experiment.
func distinctReqs(n int) []SweepRequest {
	reqs := make([]SweepRequest, n)
	for i := range reqs {
		reqs[i] = SweepRequest{
			Grids: []campaign.Grid{{
				Modes:  []bench.Mode{bench.ModeCDNA},
				Dirs:   []bench.Direction{bench.Tx},
				Guests: []int{i + 1},
			}},
			Warmup:   20 * sim.Millisecond,
			Duration: 50 * sim.Millisecond,
			Workers:  1,
		}
	}
	return reqs
}

// TestQueueFullShedsLoad: with the runner wedged and the queue full, a
// new submission is rejected with a retryable 429 — and a client under
// backoff absorbs the rejection and completes once capacity returns.
func TestQueueFullShedsLoad(t *testing.T) {
	dir := shortDir(t)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := testConfig(dir)
	cfg.QueueDepth = 1
	cfg.testWrapExec = gate(entered, release)
	_, c := startDaemon(t, cfg)

	reqs := distinctReqs(3)
	if _, err := c.Submit(reqs[0]); err != nil { // runner takes it, then blocks
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first sweep never started")
	}
	if _, err := c.Submit(reqs[1]); err != nil { // fills the single queue slot
		t.Fatal(err)
	}

	code, ae := submitRaw(t, c, reqs[2])
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit got %d; want 429", code)
	}
	if !ae.Retryable {
		t.Fatal("429 rejection not marked retryable")
	}

	// The client's backoff rides out the full queue: release the gate
	// and the shed sweep completes end to end.
	close(release)
	if _, err := c.RunSweep(reqs[2], nil); err != nil {
		t.Fatalf("backoff did not absorb queue-full rejection: %v", err)
	}
}

// TestGracefulDrain: drain stops intake with a retryable 503, lets the
// in-flight experiment finish, marks undispatched work interrupted
// (journal left open), and shuts the daemon down cleanly.
func TestGracefulDrain(t *testing.T) {
	dir := shortDir(t)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	cfg := testConfig(dir)
	cfg.testWrapExec = gate(entered, release)
	d, c := startDaemon(t, cfg)

	req := tinyModesReq(bench.ModeXen, bench.ModeCDNA) // 4 points
	req.Workers = 1
	ack, err := c.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep never started")
	}

	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	// Intake is closed: a new submission is shed with a retryable 503.
	code, ae := submitRaw(t, c, distinctReqs(1)[0])
	if code != http.StatusServiceUnavailable || !ae.Retryable {
		t.Fatalf("submit while draining got %d retryable=%v; want retryable 503", code, ae.Retryable)
	}

	release <- struct{}{} // let the in-flight experiment finish
	close(release)

	deadline := time.After(15 * time.Second)
	for {
		sw := d.lookup(ack.ID)
		sw.mu.Lock()
		state, done := sw.state, sw.done
		sw.mu.Unlock()
		if Terminal(state) {
			if state != StateInterrupted {
				t.Fatalf("drained sweep state = %s; want interrupted", state)
			}
			if done < 1 || done >= 4 {
				t.Fatalf("drained sweep finished %d of 4 experiments; want the in-flight one only", done)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("sweep never reached a terminal state (state %s)", state)
		case <-time.After(5 * time.Millisecond):
		}
	}

	// The journal entry is still open, so the next daemon resumes it.
	_, pending, err := openJournal(cfg.journalPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != ack.ID {
		t.Fatalf("journal pending = %+v; want the drained sweep", pending)
	}
}
