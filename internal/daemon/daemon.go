// Package daemon turns the campaign layer into a long-running sweep
// service: a crash-safe daemon that accepts sweep submissions over a
// unix-socket HTTP/JSON API, executes them through the durable result
// store, and degrades gracefully under load and shutdown.
//
// Robustness contract:
//
//   - Durability. Every accepted sweep is journaled (write-ahead,
//     fsynced) before the 202 acknowledgment; every finished experiment
//     lands in the content-addressed result store. Killing the daemon
//     at any instant loses at most the experiments in flight.
//   - Recovery. On restart the daemon replays the journal and re-runs
//     every accepted-but-incomplete sweep; points that completed before
//     the crash are served from the store, so the resumed sweep is a
//     delta run with byte-identical output.
//   - Load shedding. The work queue is bounded: a submission that
//     cannot be queued is rejected immediately with a retryable 429
//     rather than accepted and lost, and the client's backoff absorbs
//     the rejection.
//   - Graceful drain. Drain stops intake (retryable 503), lets
//     in-flight experiments finish, marks undispatched work interrupted
//     (journal left open for the next daemon), then closes the socket.
package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cdna/internal/bench"
	"cdna/internal/campaign"
	"cdna/internal/store"
)

// Config configures a daemon instance.
type Config struct {
	// Socket is the unix socket path to serve on.
	Socket string
	// StoreDir is the durable result store directory.
	StoreDir string
	// Journal is the write-ahead journal path; empty means
	// StoreDir/journal.wal.
	Journal string
	// QueueDepth bounds the number of sweeps waiting to run; <= 0 means 8.
	// A submission arriving with the queue full is shed with a 429.
	QueueDepth int
	// Workers is the default campaign worker-pool width for sweeps that
	// do not set their own; <= 0 means GOMAXPROCS.
	Workers int
	// ExpTimeout is the per-experiment watchdog deadline (campaign
	// Options.Timeout); zero disables it.
	ExpTimeout time.Duration
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)

	// testWrapExec, when non-nil, wraps the sweep executor. Tests use it
	// to gate experiment completion deterministically; it is unexported
	// so the production path cannot bypass the store-backed executor.
	testWrapExec func(func(bench.Config) bench.Outcome) func(bench.Config) bench.Outcome
}

func (c Config) journalPath() string {
	if c.Journal != "" {
		return c.Journal
	}
	return filepath.Join(c.StoreDir, "journal.wal")
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 8
}

// sweep is the daemon's in-memory record of one submitted sweep.
type sweep struct {
	id  string
	req SweepRequest

	mu       sync.Mutex
	state    string
	done     int
	failed   int
	total    int
	errMsg   string
	results  []byte          // WriteJSON bytes, set when state == done
	events   []ProgressEvent // full history, replayed to new subscribers
	subs     []chan ProgressEvent
	finished chan struct{} // closed on terminal state
	stats    campaign.CacheStats
}

func newSweep(id string, req SweepRequest) *sweep {
	return &sweep{id: id, req: req, state: StateQueued, finished: make(chan struct{})}
}

func (sw *sweep) status() SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return SweepStatus{
		ID:     sw.id,
		State:  sw.state,
		Done:   sw.done,
		Total:  sw.total,
		Failed: sw.failed,
		Cache:  sw.stats.Counts(),
		Error:  sw.errMsg,
	}
}

// publish appends an event to the history and fans it out. Subscriber
// channels are buffered for the sweep's entire event budget, so the
// runner never blocks on a slow stream reader.
func (sw *sweep) publish(ev ProgressEvent) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.events = append(sw.events, ev)
	for _, ch := range sw.subs {
		select {
		case ch <- ev:
		default: // buffer sized to hold every event; default is paranoia
		}
	}
}

// subscribe returns the event history so far plus a channel carrying
// the remainder. The channel is closed when the sweep reaches a
// terminal state.
func (sw *sweep) subscribe() ([]ProgressEvent, <-chan ProgressEvent) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ch := make(chan ProgressEvent, sw.total+2)
	if Terminal(sw.state) {
		close(ch)
		return append([]ProgressEvent(nil), sw.events...), ch
	}
	sw.subs = append(sw.subs, ch)
	return append([]ProgressEvent(nil), sw.events...), ch
}

// finish moves the sweep to a terminal state, emits the terminal
// event, and releases subscribers and waiters.
func (sw *sweep) finish(state, errMsg string, results []byte) {
	sw.mu.Lock()
	sw.state = state
	sw.errMsg = errMsg
	sw.results = results
	ev := ProgressEvent{Done: sw.done, Total: sw.total, State: state, Error: errMsg}
	sw.events = append(sw.events, ev)
	subs := sw.subs
	sw.subs = nil
	sw.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	close(sw.finished)
}

// Server is the sweep daemon.
type Server struct {
	cfg Config
	st  *store.Store
	jr  *journal

	mu       sync.Mutex
	sweeps   map[string]*sweep
	draining bool
	killed   bool

	queue      chan *sweep
	cancel     chan struct{} // closed on drain/kill; wired into campaign runs
	runnerDone chan struct{}
	recovered  []*sweep

	lis  net.Listener
	http *http.Server
}

// New opens the store and journal and recovers any sweeps the previous
// daemon accepted but did not finish. Serve starts executing them.
func New(cfg Config) (*Server, error) {
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	jr, pending, err := openJournal(cfg.journalPath())
	if err != nil {
		return nil, err
	}
	// The queue must hold every recovered sweep plus the configured
	// depth of new intake — recovery never sheds accepted work.
	depth := cfg.queueDepth()
	if depth < len(pending) {
		depth = len(pending)
	}
	d := &Server{
		cfg:        cfg,
		st:         st,
		jr:         jr,
		sweeps:     make(map[string]*sweep),
		queue:      make(chan *sweep, depth),
		cancel:     make(chan struct{}),
		runnerDone: make(chan struct{}),
	}
	for _, rec := range pending {
		sw := newSweep(rec.ID, *rec.Req)
		d.sweeps[sw.id] = sw
		d.recovered = append(d.recovered, sw)
		d.logf("daemon: recovered sweep %s from journal", sw.id)
	}
	return d, nil
}

func (d *Server) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Serve listens on the unix socket and runs sweeps until Drain (or
// Kill) completes. Recovered sweeps are enqueued before intake opens,
// so a restart resumes the backlog even if no client reconnects.
func (d *Server) Serve() error {
	lis, err := listenUnix(d.cfg.Socket)
	if err != nil {
		return err
	}
	d.lis = lis

	for _, sw := range d.recovered {
		d.queue <- sw // queue is sized to hold every recovered sweep
	}
	d.recovered = nil

	go d.runLoop()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", d.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", d.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", d.handleResults)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", d.handleStream)
	mux.HandleFunc("GET /v1/status", d.handleDaemonStatus)
	mux.HandleFunc("POST /v1/drain", d.handleDrain)
	d.http = &http.Server{Handler: mux}
	d.logf("daemon: serving on %s", d.cfg.Socket)
	err = d.http.Serve(lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// listenUnix binds path, clearing a stale socket left by a killed
// daemon (detected by a refused connection).
func listenUnix(path string) (net.Listener, error) {
	lis, err := net.Listen("unix", path)
	if err == nil {
		return lis, nil
	}
	if conn, derr := net.DialTimeout("unix", path, 250*time.Millisecond); derr == nil {
		conn.Close()
		return nil, fmt.Errorf("daemon: %s already has a live daemon", path)
	}
	if rerr := os.Remove(path); rerr != nil {
		return nil, err
	}
	return net.Listen("unix", path)
}

// runLoop executes queued sweeps one at a time (each sweep fans out
// internally across the campaign worker pool). It exits when the
// cancel channel closes and the queue has been marked.
func (d *Server) runLoop() {
	defer close(d.runnerDone)
	for {
		select {
		case <-d.cancel:
			d.interruptQueued()
			return
		case sw := <-d.queue:
			d.runSweep(sw)
		}
	}
}

// interruptQueued marks every still-queued sweep interrupted. Their
// journal entries stay open, so the next daemon resumes them.
func (d *Server) interruptQueued() {
	for {
		select {
		case sw := <-d.queue:
			sw.mu.Lock()
			sw.total = len(d.expand(sw.req))
			sw.mu.Unlock()
			sw.finish(StateInterrupted, "daemon draining before sweep started", nil)
		default:
			return
		}
	}
}

func (d *Server) expand(req SweepRequest) []bench.Config {
	cfgs := campaign.Expand(req.Grids...)
	return campaign.Apply(cfgs, req.Warmup, req.Duration)
}

func (d *Server) runSweep(sw *sweep) {
	cfgs := d.expand(sw.req)
	sw.mu.Lock()
	if d.isCanceled() {
		sw.mu.Unlock()
		sw.finish(StateInterrupted, "daemon draining before sweep started", nil)
		return
	}
	sw.state = StateRunning
	sw.total = len(cfgs)
	sw.mu.Unlock()
	d.logf("daemon: sweep %s running (%d experiments)", sw.id, len(cfgs))

	workers := sw.req.Workers
	if workers <= 0 {
		workers = d.cfg.Workers
	}
	exec := campaign.CachedExec(d.st, &sw.stats)
	if d.cfg.testWrapExec != nil {
		exec = d.cfg.testWrapExec(exec)
	}
	outs := campaign.Run(cfgs, campaign.Options{
		Workers: workers,
		Timeout: d.cfg.ExpTimeout,
		Cancel:  d.cancel,
		Exec:    exec,
		Progress: func(done, total int, out bench.Outcome) {
			sw.mu.Lock()
			sw.done = done
			if out.Err != nil {
				sw.failed++
			}
			sw.mu.Unlock()
			ev := ProgressEvent{Done: done, Total: total, Name: out.Config.Name(), Mbps: out.Result.Mbps}
			if out.Err != nil {
				ev.Error = out.Err.Error()
			}
			sw.publish(ev)
		},
	})

	if campaign.Interrupted(outs) {
		// Drained mid-sweep: completed points are in the store, the
		// journal entry stays open, the next daemon finishes the delta.
		c := sw.stats.Counts()
		d.logf("daemon: sweep %s interrupted (%d/%d done, %d hits)", sw.id, sw.done, sw.total, c.Hits)
		sw.finish(StateInterrupted, "sweep interrupted by drain", nil)
		return
	}

	var buf bytes.Buffer
	if err := campaign.WriteJSON(&buf, outs); err != nil {
		sw.finish(StateFailed, fmt.Sprintf("encoding results: %v", err), nil)
		return
	}
	if err := d.jr.done(sw.id); err != nil {
		// The sweep ran; a journal append failure only risks a redundant
		// (fully cached) re-run after restart. Log and serve the result.
		d.logf("daemon: sweep %s: journaling done: %v", sw.id, err)
	}
	c := sw.stats.Counts()
	d.logf("daemon: sweep %s done (%d experiments, %d hits, %d misses)", sw.id, sw.total, c.Hits, c.Misses)
	sw.finish(StateDone, "", buf.Bytes())
}

func (d *Server) isCanceled() bool {
	select {
	case <-d.cancel:
		return true
	default:
		return false
	}
}

// Drain begins graceful shutdown: intake closes (503), dispatch stops,
// in-flight experiments finish, queued sweeps are marked interrupted
// with their journal entries open, then the listener shuts down. It
// blocks until the daemon is fully stopped.
func (d *Server) Drain() error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		<-d.runnerDone
		return nil
	}
	d.draining = true
	close(d.cancel)
	d.mu.Unlock()
	d.logf("daemon: draining")

	<-d.runnerDone
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var err error
	if d.http != nil {
		err = d.http.Shutdown(ctx)
	}
	d.jr.close()
	d.logf("daemon: stopped")
	return err
}

// Kill emulates a hard crash for recovery tests: the listener and
// journal are slammed shut with no drain, no journal marks, and no
// waiting for in-flight work. State on disk is exactly what a SIGKILL
// would leave.
func (d *Server) Kill() {
	d.mu.Lock()
	if d.killed {
		d.mu.Unlock()
		return
	}
	d.killed = true
	d.draining = true
	select {
	case <-d.cancel:
	default:
		close(d.cancel)
	}
	d.mu.Unlock()
	if d.http != nil {
		d.http.Close()
	}
	d.jr.close()
}

// --- HTTP handlers ---

func (d *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decoding sweep request: %v", err), false)
		return
	}
	if len(req.Grids) == 0 {
		writeErr(w, http.StatusBadRequest, "sweep request has no grids", false)
		return
	}
	id, err := req.ID()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error(), false)
		return
	}

	d.mu.Lock()
	if sw, ok := d.sweeps[id]; ok {
		// Same content, same sweep: re-attach. An interrupted sweep is
		// re-enqueued (completed points come from the store).
		sw.mu.Lock()
		resumable := sw.state == StateInterrupted && !d.draining
		if resumable {
			fresh := newSweep(id, req)
			d.sweeps[id] = fresh
			sw = fresh
		}
		state := sw.state
		sw.mu.Unlock()
		if resumable {
			select {
			case d.queue <- sw:
				d.mu.Unlock()
				writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued})
				return
			default:
				delete(d.sweeps, id)
				d.mu.Unlock()
				writeErr(w, http.StatusTooManyRequests, "work queue full", true)
				return
			}
		}
		d.mu.Unlock()
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: state})
		return
	}
	if d.draining {
		d.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "daemon draining", true)
		return
	}
	sw := newSweep(id, req)
	select {
	case d.queue <- sw:
	default:
		d.mu.Unlock()
		writeErr(w, http.StatusTooManyRequests, "work queue full", true)
		return
	}
	// Journal before acknowledging: once the client sees 202, the sweep
	// survives any crash.
	if err := d.jr.accept(id, req); err != nil {
		d.mu.Unlock()
		writeErr(w, http.StatusInternalServerError, err.Error(), true)
		return
	}
	d.sweeps[id] = sw
	d.mu.Unlock()
	d.logf("daemon: accepted sweep %s", id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, State: StateQueued})
}

func (d *Server) lookup(id string) *sweep {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sweeps[id]
}

func (d *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw := d.lookup(r.PathValue("id"))
	if sw == nil {
		writeErr(w, http.StatusNotFound, "unknown sweep", false)
		return
	}
	writeJSON(w, http.StatusOK, sw.status())
}

func (d *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	sw := d.lookup(r.PathValue("id"))
	if sw == nil {
		writeErr(w, http.StatusNotFound, "unknown sweep", false)
		return
	}
	sw.mu.Lock()
	state, results := sw.state, sw.results
	sw.mu.Unlock()
	if state != StateDone {
		writeErr(w, http.StatusConflict, fmt.Sprintf("sweep is %s, not done", state), state == StateQueued || state == StateRunning)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(results)
}

func (d *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sw := d.lookup(r.PathValue("id"))
	if sw == nil {
		writeErr(w, http.StatusNotFound, "unknown sweep", false)
		return
	}
	history, ch := sw.subscribe()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for _, ev := range history {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for ev := range ch {
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (d *Server) handleDaemonStatus(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	state := "serving"
	if d.draining {
		state = "draining"
	}
	status := DaemonStatus{
		State:    state,
		Queued:   len(d.queue),
		QueueCap: cap(d.queue),
		Sweeps:   len(d.sweeps),
		Store:    d.st.Stats(),
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

func (d *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "draining"})
	go d.Drain()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string, retryable bool) {
	writeJSON(w, code, apiError{Error: msg, Retryable: retryable})
}
