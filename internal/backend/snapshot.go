package backend

import (
	"fmt"

	"cdna/internal/ether"
	"cdna/internal/stats"
)

// NetfrontState is a front-end driver's checkpoint image.
type NetfrontState struct {
	NotifyQd bool
	TxIn     []ether.FrameState
	RxUp     []ether.FrameState
}

// VifState is one virtual interface's checkpoint image.
type VifState struct {
	TxQ, RxQ     []ether.FrameState
	NotifyQd     bool
	Visiting     bool
	TxOut, RxOut []ether.FrameState
	Front        NetfrontState
}

// State is a netback's checkpoint image: the bridge, the wire-side
// queue, and every vif (with its front end) in attach order.
type State struct {
	Bridge       ether.BridgeState
	WireIn       []ether.FrameState
	Vifs         []VifState
	PktsToWire   stats.CounterState
	PktsToGuests stats.CounterState
}

// State captures the netback and all attached vifs/netfronts.
func (nb *Netback) State(codec ether.PayloadCodec) (State, error) {
	s := State{
		Bridge:       nb.Bridge.State(),
		Vifs:         make([]VifState, len(nb.vifs)),
		PktsToWire:   nb.PktsToWire.State(),
		PktsToGuests: nb.PktsToGuests.State(),
	}
	var err error
	if s.WireIn, err = ether.CaptureFrameFIFO(&nb.wireIn, codec); err != nil {
		return State{}, err
	}
	for i, v := range nb.vifs {
		vs := VifState{NotifyQd: v.notifyQd, Visiting: v.visiting,
			Front: NetfrontState{NotifyQd: v.Front.notifyQd}}
		if vs.TxQ, err = ether.CaptureFrames(v.txQ, codec); err != nil {
			return State{}, err
		}
		if vs.RxQ, err = ether.CaptureFrames(v.rxQ, codec); err != nil {
			return State{}, err
		}
		if vs.TxOut, err = ether.CaptureFrameFIFO(&v.txOut, codec); err != nil {
			return State{}, err
		}
		if vs.RxOut, err = ether.CaptureFrameFIFO(&v.rxOut, codec); err != nil {
			return State{}, err
		}
		if vs.Front.TxIn, err = ether.CaptureFrameFIFO(&v.Front.txIn, codec); err != nil {
			return State{}, err
		}
		if vs.Front.RxUp, err = ether.CaptureFrameFIFO(&v.Front.rxUp, codec); err != nil {
			return State{}, err
		}
		s.Vifs[i] = vs
	}
	return s, nil
}

// SetState restores the netback into a freshly built machine with the
// same vif roster.
func (nb *Netback) SetState(s State, codec ether.PayloadCodec) error {
	if len(s.Vifs) != len(nb.vifs) {
		return fmt.Errorf("backend: vif roster mismatch: snapshot has %d, machine has %d",
			len(s.Vifs), len(nb.vifs))
	}
	nb.Bridge.SetState(s.Bridge)
	if err := ether.RestoreFrameFIFO(&nb.wireIn, s.WireIn, codec); err != nil {
		return err
	}
	for i, vs := range s.Vifs {
		v := nb.vifs[i]
		var err error
		if v.txQ, err = ether.RestoreFrames(vs.TxQ, codec); err != nil {
			return err
		}
		if v.rxQ, err = ether.RestoreFrames(vs.RxQ, codec); err != nil {
			return err
		}
		v.notifyQd = vs.NotifyQd
		v.visiting = vs.Visiting
		if err = ether.RestoreFrameFIFO(&v.txOut, vs.TxOut, codec); err != nil {
			return err
		}
		if err = ether.RestoreFrameFIFO(&v.rxOut, vs.RxOut, codec); err != nil {
			return err
		}
		v.Front.notifyQd = vs.Front.NotifyQd
		if err = ether.RestoreFrameFIFO(&v.Front.txIn, vs.Front.TxIn, codec); err != nil {
			return err
		}
		if err = ether.RestoreFrameFIFO(&v.Front.rxUp, vs.Front.RxUp, codec); err != nil {
			return err
		}
	}
	nb.PktsToWire.SetState(s.PktsToWire)
	nb.PktsToGuests.SetState(s.PktsToGuests)
	return nil
}
