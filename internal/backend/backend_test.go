package backend

import (
	"testing"

	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/guest"
	"cdna/internal/mem"
	"cdna/internal/sim"
	"cdna/internal/xen"
)

// fakePhys is a stand-in physical device recording transmissions and
// allowing frame injection.
type fakePhys struct {
	mac  ether.MAC
	sent []*ether.Frame
	rx   func(*ether.Frame)
}

func (d *fakePhys) MAC() ether.MAC                    { return d.mac }
func (d *fakePhys) StartXmit(f *ether.Frame)          { d.sent = append(d.sent, f) }
func (d *fakePhys) SetRxHandler(h func(*ether.Frame)) { d.rx = h }

func testFrontCosts() FrontCosts {
	us := sim.Microsecond
	return FrontCosts{TxPerPkt: us, RxPerPkt: us, NotifyFixed: us / 2, IrqFixed: us}
}

func testBackCosts() BackCosts {
	us := sim.Microsecond
	return BackCosts{
		VisitFixed: us, TxPerPkt: us, RxPerPkt: us,
		BridgePerPkt: us / 2, FlipPerPkt: us / 2, FlipRxPerPkt: us,
		NotifyFixed: us / 2, Budget: 4,
	}
}

type pvRig struct {
	eng    *sim.Engine
	hyp    *xen.Hypervisor
	dom0   *xen.Domain
	guests []*xen.Domain
	fronts []*Netfront
	phys   *fakePhys
	nb     *Netback
}

func newPV(t *testing.T, nGuests int) *pvRig {
	t.Helper()
	r := &pvRig{eng: sim.New()}
	c := cpu.New(r.eng, cpu.Params{SwitchCost: 500, Slice: 300 * sim.Microsecond})
	r.hyp = xen.New(r.eng, c, mem.New(), xen.DefaultParams(), core.ModeHypercall)
	r.dom0 = r.hyp.NewDomain("dom0", cpu.KindDriver)
	r.phys = &fakePhys{mac: ether.MakeMAC(1, 0)}
	r.nb = NewNetback(r.hyp, r.dom0, r.phys, testBackCosts())
	for g := 0; g < nGuests; g++ {
		gd := r.hyp.NewDomain("guest", cpu.KindGuest)
		r.guests = append(r.guests, gd)
		r.fronts = append(r.fronts, r.nb.AddVif(gd, ether.MakeMAC(10, g), testFrontCosts()))
	}
	return r
}

func TestGuestToWire(t *testing.T) {
	r := newPV(t, 1)
	peerMAC := ether.MakeMAC(200, 0)
	for i := 0; i < 10; i++ {
		r.fronts[0].StartXmit(&ether.Frame{Src: r.fronts[0].MAC(), Dst: peerMAC, Size: 1514})
	}
	r.eng.Run(20 * sim.Millisecond)
	if len(r.phys.sent) != 10 {
		t.Fatalf("wire got %d frames, want 10", len(r.phys.sent))
	}
	if r.nb.PktsToWire.Total() != 10 {
		t.Fatalf("PktsToWire = %d", r.nb.PktsToWire.Total())
	}
	// Flips charged to the hypervisor.
	_, _, hypT := r.dom0.VCPU.DomainTime()
	if hypT == 0 {
		t.Fatal("no page-flip hypervisor time charged")
	}
}

func TestWireToGuestDemux(t *testing.T) {
	r := newPV(t, 2)
	got := make([]int, 2)
	for i := range r.fronts {
		i := i
		mac := r.fronts[i].MAC()
		// Count only frames addressed to this guest (flooded learning
		// frames from the other guest are dropped by the guest's stack).
		r.fronts[i].SetRxHandler(func(f *ether.Frame) {
			if f.Dst == mac {
				got[i]++
			}
		})
	}
	// The bridge must learn guest MACs from their traffic first.
	for i := range r.fronts {
		r.fronts[i].StartXmit(&ether.Frame{Src: r.fronts[i].MAC(), Dst: ether.MakeMAC(200, 0), Size: 100})
	}
	r.eng.Run(10 * sim.Millisecond)
	// Frames from the wire to each guest.
	r.phys.rx(&ether.Frame{Src: ether.MakeMAC(200, 0), Dst: r.fronts[0].MAC(), Size: 1514})
	r.phys.rx(&ether.Frame{Src: ether.MakeMAC(200, 0), Dst: r.fronts[1].MAC(), Size: 1514})
	r.phys.rx(&ether.Frame{Src: ether.MakeMAC(200, 0), Dst: r.fronts[1].MAC(), Size: 1514})
	r.eng.Run(30 * sim.Millisecond)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("demux: guest0=%d guest1=%d", got[0], got[1])
	}
	if r.guests[0].Virqs.Total() == 0 {
		t.Fatal("no virtual interrupt to guest")
	}
}

func TestGuestToGuestThroughBridge(t *testing.T) {
	r := newPV(t, 2)
	got := 0
	r.fronts[1].SetRxHandler(func(f *ether.Frame) { got++ })
	// Teach the bridge where guest1 lives.
	r.fronts[1].StartXmit(&ether.Frame{Src: r.fronts[1].MAC(), Dst: ether.MakeMAC(200, 0), Size: 100})
	r.eng.Run(10 * sim.Millisecond)
	r.fronts[0].StartXmit(&ether.Frame{Src: r.fronts[0].MAC(), Dst: r.fronts[1].MAC(), Size: 1514})
	r.eng.Run(30 * sim.Millisecond)
	if got != 1 {
		t.Fatalf("inter-guest frame not delivered: %d", got)
	}
}

func TestBudgetBoundsBatch(t *testing.T) {
	r := newPV(t, 1)
	// 20 frames with budget 4: netback must take several visits; all
	// frames still flow (no loss from budgeting).
	for i := 0; i < 20; i++ {
		r.fronts[0].StartXmit(&ether.Frame{Src: r.fronts[0].MAC(), Dst: ether.MakeMAC(200, 0), Size: 1514})
	}
	r.eng.Run(30 * sim.Millisecond)
	if len(r.phys.sent) != 20 {
		t.Fatalf("wire got %d frames, want 20", len(r.phys.sent))
	}
	// Tx-completion notifications reached the guest.
	if r.guests[0].Virqs.Total() == 0 {
		t.Fatal("no tx-completion virq")
	}
}

func TestNotifyMerging(t *testing.T) {
	r := newPV(t, 1)
	for i := 0; i < 50; i++ {
		r.fronts[0].StartXmit(&ether.Frame{Src: r.fronts[0].MAC(), Dst: ether.MakeMAC(200, 0), Size: 1514})
	}
	r.eng.Run(50 * sim.Millisecond)
	// The front end issued far fewer notifications than packets.
	v := r.dom0.Virqs.Total()
	if v == 0 || v >= 50 {
		t.Fatalf("dom0 virqs = %d, want batched (0 < v < 50)", v)
	}
}

func TestSmallFrameCopyBreak(t *testing.T) {
	// Acks take the cheap copy path, not the full rx page flip: compare
	// hypervisor time for a burst of acks vs a burst of data.
	hypFor := func(size int) sim.Time {
		r := newPV(t, 1)
		r.fronts[0].SetRxHandler(func(f *ether.Frame) {})
		r.fronts[0].StartXmit(&ether.Frame{Src: r.fronts[0].MAC(), Dst: ether.MakeMAC(200, 0), Size: 100})
		r.eng.Run(10 * sim.Millisecond)
		r.hyp.CPU.StartWindow()
		for i := 0; i < 20; i++ {
			r.phys.rx(&ether.Frame{Src: ether.MakeMAC(200, 0), Dst: r.fronts[0].MAC(), Size: size})
		}
		r.eng.Run(40 * sim.Millisecond)
		r.hyp.CPU.EndWindow()
		_, _, hypT := r.dom0.VCPU.DomainTime()
		return hypT
	}
	ackHyp := hypFor(66)
	dataHyp := hypFor(1514)
	if ackHyp >= dataHyp {
		t.Fatalf("ack rx flip cost %v should be below data %v", ackHyp, dataHyp)
	}
}

func TestNetDeviceInterfaceCompliance(t *testing.T) {
	var _ guest.NetDevice = (*Netfront)(nil)
}
