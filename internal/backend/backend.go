// Package backend implements Xen's paravirtual network path (§2.1): the
// front-end driver in each guest, the back-end driver in the privileged
// driver domain, the page-remapping transfers between them, and the
// software Ethernet bridge that multiplexes all guests onto the physical
// NIC. This is the software-virtualization architecture whose overheads
// CDNA eliminates; its costs are what the paper's Tables 2–3 attribute
// to the driver domain.
package backend

import (
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/guest"
	"cdna/internal/sim"
	"cdna/internal/stats"
	"cdna/internal/xen"
)

// FrontCosts are the guest-side (netfront) CPU costs.
type FrontCosts struct {
	TxPerPkt    sim.Time // grant + shared-ring publish per packet
	RxPerPkt    sim.Time // consume + deliver per received packet
	NotifyFixed sim.Time // batched event-channel notify preparation
	IrqFixed    sim.Time // fixed work per virtual interrupt
}

// BackCosts are the driver-domain (netback) CPU costs.
type BackCosts struct {
	VisitFixed   sim.Time // fixed cost per per-guest ring visit
	TxPerPkt     sim.Time // guest->wire per packet (copy/remap bookkeeping)
	RxPerPkt     sim.Time // wire->guest per packet
	BridgePerPkt sim.Time // Ethernet bridge traversal
	FlipPerPkt   sim.Time // tx page remap grant operation (charged to hypervisor)
	// FlipRxPerPkt is the receive-side page remap: mapping a foreign
	// page into the guest plus the TLB shootdown makes it far costlier
	// than the transmit grant, which is why the paper's receive path
	// spends so much more time in the hypervisor (Table 3).
	FlipRxPerPkt sim.Time
	NotifyFixed  sim.Time // batched notify toward a guest
	// Budget is the maximum packets netback moves per ring visit before
	// notifying the guest and rescheduling itself (real netback works in
	// bounded batches; this also sets the guest's tx-completion
	// interrupt rate).
	Budget int
}

// Netfront is the paravirtualized guest NIC driver; it satisfies
// guest.NetDevice.
type Netfront struct {
	Dom   *xen.Domain
	Costs FrontCosts

	mac       ether.MAC
	vif       *Vif
	rxHandler func(*ether.Frame)
	notifyQd  bool

	// Per-packet frames queued into guest tasks (FIFO order) and the
	// task callbacks bound once when the vif is created.
	txIn sim.FIFO[*ether.Frame]
	rxUp sim.FIFO[*ether.Frame]

	txInFn, rxUpFn, virqFn, notifyFn sim.Fn
}

// MAC implements guest.NetDevice.
func (f *Netfront) MAC() ether.MAC { return f.mac }

// SetRxHandler implements guest.NetDevice.
func (f *Netfront) SetRxHandler(h func(*ether.Frame)) { f.rxHandler = h }

// StartXmit implements guest.NetDevice: the packet is granted to the
// back end over the shared ring, with a batched notification.
func (f *Netfront) StartXmit(frame *ether.Frame) {
	f.txIn.Push(frame)
	f.Dom.VCPU.Exec(cpu.CatKernel, guest.ScaleCost(f.Costs.TxPerPkt, frame.Size), "netfront.tx", f.txInFn)
}

func (f *Netfront) txInTask() {
	frame := f.txIn.Pop()
	f.vif.txQ = append(f.vif.txQ, frame)
	f.scheduleNotify()
}

func (f *Netfront) scheduleNotify() {
	if f.notifyQd {
		return
	}
	f.notifyQd = true
	f.Dom.VCPU.Exec(cpu.CatKernel, f.Costs.NotifyFixed, "netfront.notify", f.notifyFn)
}

func (f *Netfront) notifyTask() {
	f.notifyQd = false
	f.vif.toBack.NotifyFromGuest(f.Dom)
}

// onVirq handles the back end's notification: received packets are
// pulled off the shared ring and delivered up the stack.
func (f *Netfront) onVirq() {
	f.Dom.VCPU.Exec(cpu.CatKernel, f.Costs.IrqFixed, "netfront.virq", f.virqFn)
}

func (f *Netfront) virqTask() {
	frames := f.vif.rxQ
	f.vif.rxQ = f.vif.rxQ[:0]
	for _, fr := range frames {
		f.rxUp.Push(fr)
		f.Dom.VCPU.Exec(cpu.CatKernel, guest.ScaleCost(f.Costs.RxPerPkt, fr.Size), "netfront.rx", f.rxUpFn)
	}
}

func (f *Netfront) rxUpTask() {
	fr := f.rxUp.Pop()
	if f.rxHandler != nil {
		f.rxHandler(fr)
	} else {
		fr.Release()
	}
}

// Vif is one guest's virtual interface: the shared rings between a
// netfront and the netback, plus the event channels in both directions.
type Vif struct {
	Front *Netfront
	back  *Netback
	port  int // bridge port

	txQ []*ether.Frame // guest -> driver domain
	rxQ []*ether.Frame // driver domain -> guest

	toBack   *xen.EventChannel
	toFront  *xen.EventChannel
	notifyQd bool
	visiting bool

	// Per-packet frames moving through driver-domain tasks (FIFO) and
	// the callbacks bound once in AddVif.
	txOut sim.FIFO[*ether.Frame] // toward the bridge/wire
	rxOut sim.FIFO[*ether.Frame] // toward this guest

	visitFn, notifyFn, txOutFn, rxOutFn sim.Fn
}

// Netback is the driver domain's back-end driver plus bridge for one
// physical NIC.
type Netback struct {
	Dom0  *xen.Domain
	Hyp   *xen.Hypervisor
	Costs BackCosts

	Bridge   *ether.Bridge
	physPort int
	phys     guest.NetDevice

	vifs []*Vif

	// Frames arriving from the physical driver, queued into the bridge
	// traversal task; wireInFn is bound once in NewNetback.
	wireIn   sim.FIFO[*ether.Frame]
	wireInFn sim.Fn

	PktsToWire   stats.Counter
	PktsToGuests stats.Counter
}

// NewNetback creates the back end bridged onto the physical device.
func NewNetback(hyp *xen.Hypervisor, dom0 *xen.Domain, phys guest.NetDevice, costs BackCosts) *Netback {
	nb := &Netback{Dom0: dom0, Hyp: hyp, Costs: costs, Bridge: ether.NewBridge(), phys: phys}
	nb.wireInFn = hyp.Eng.Bind(nb.wireInTask)
	nb.physPort = nb.Bridge.AddPort(ether.PortFunc(func(f *ether.Frame) {
		nb.PktsToWire.Inc()
		phys.StartXmit(f)
	}))
	// The physical driver's receive path feeds the bridge.
	phys.SetRxHandler(nb.fromWire)
	return nb
}

// AddVif connects a guest's netfront and returns it. The MAC is the
// guest's virtual interface address; the bridge learns it from traffic.
// The per-vif packet callbacks are bound here, once, so the per-packet
// paths below never allocate a capturing closure.
func (nb *Netback) AddVif(gdom *xen.Domain, mac ether.MAC, fc FrontCosts) *Netfront {
	eng := nb.Hyp.Eng
	front := &Netfront{Dom: gdom, Costs: fc, mac: mac}
	front.txInFn = eng.Bind(front.txInTask)
	front.rxUpFn = eng.Bind(front.rxUpTask)
	front.virqFn = eng.Bind(front.virqTask)
	front.notifyFn = eng.Bind(front.notifyTask)
	vif := &Vif{Front: front, back: nb}
	front.vif = vif
	vif.visitFn = eng.Bind(func() { nb.visitTask(vif) })
	vif.notifyFn = eng.Bind(func() { nb.frontNotifyTask(vif) })
	vif.txOutFn = eng.Bind(func() { nb.txOutTask(vif) })
	vif.rxOutFn = eng.Bind(func() { nb.rxOutTask(vif) })
	vif.port = nb.Bridge.AddPort(ether.PortFunc(func(f *ether.Frame) {
		nb.deliverToGuest(vif, f)
	}))
	vif.toBack = nb.Hyp.NewChannel(nb.Dom0, "vif.tx", func() { nb.serveVif(vif) })
	vif.toFront = nb.Hyp.NewChannel(gdom, "vif.rx", front.onVirq)
	nb.vifs = append(nb.vifs, vif)
	return front
}

// serveVif is the back end's response to a guest's transmit
// notification: visit the guest's ring and push every pending packet
// through the bridge. Each packet pays a page-remap (hypervisor) plus
// back-end and bridge processing.
func (nb *Netback) serveVif(v *Vif) {
	if v.visiting {
		return
	}
	v.visiting = true
	nb.Dom0.VCPU.Exec(cpu.CatKernel, nb.Costs.VisitFixed, "netback.visit", v.visitFn)
}

func (nb *Netback) visitTask(v *Vif) {
	v.visiting = false
	budget := nb.Costs.Budget
	if budget <= 0 {
		budget = 16
	}
	n := len(v.txQ)
	if n > budget {
		n = budget
	}
	frames := v.txQ[:n]
	v.txQ = v.txQ[n:]
	for _, f := range frames {
		v.txOut.Push(f)
		nb.Dom0.VCPU.Exec(cpu.CatHyp, nb.Costs.FlipPerPkt, "netback.flip", sim.Fn{})
		nb.Dom0.VCPU.Exec(cpu.CatKernel, guest.ScaleCost(nb.Costs.TxPerPkt, f.Size)+nb.Costs.BridgePerPkt, "netback.tx", v.txOutFn)
	}
	if len(frames) > 0 {
		// Transmit-completion notification back to the guest: the
		// back end interrupts the front end whenever it generates
		// new work for it (§5.2's discussion of guest interrupt
		// rates), so the front end can clean its shared ring.
		nb.scheduleFrontNotify(v)
	}
	if len(v.txQ) > 0 {
		// Budget exhausted: reschedule the remainder.
		nb.serveVif(v)
	}
}

func (nb *Netback) txOutTask(v *Vif) {
	f := v.txOut.Pop()
	nb.Bridge.Input(v.port, f)
}

// fromWire is the physical driver's receive upcall: bridge the frame
// toward whichever guest owns the destination MAC.
func (nb *Netback) fromWire(f *ether.Frame) {
	nb.wireIn.Push(f)
	nb.Dom0.VCPU.Exec(cpu.CatKernel, nb.Costs.BridgePerPkt, "netback.bridge", nb.wireInFn)
}

func (nb *Netback) wireInTask() {
	f := nb.wireIn.Pop()
	nb.Bridge.Input(nb.physPort, f)
}

// deliverToGuest remaps the packet into the guest and notifies it
// (batched).
func (nb *Netback) deliverToGuest(v *Vif, f *ether.Frame) {
	nb.PktsToGuests.Inc()
	// Small packets are copied into the guest rather than page-flipped
	// (Xen's copy-break optimization), skipping the TLB shootdown.
	flip := nb.Costs.FlipRxPerPkt
	if f.Size < guest.SmallFrame {
		flip = nb.Costs.FlipPerPkt / 2
	}
	v.rxOut.Push(f)
	nb.Dom0.VCPU.Exec(cpu.CatHyp, flip, "netback.rxflip", sim.Fn{})
	nb.Dom0.VCPU.Exec(cpu.CatKernel, guest.ScaleCost(nb.Costs.RxPerPkt, f.Size), "netback.rx", v.rxOutFn)
}

func (nb *Netback) rxOutTask(v *Vif) {
	f := v.rxOut.Pop()
	v.rxQ = append(v.rxQ, f)
	nb.scheduleFrontNotify(v)
}

func (nb *Netback) scheduleFrontNotify(v *Vif) {
	if v.notifyQd {
		return
	}
	v.notifyQd = true
	nb.Dom0.VCPU.Exec(cpu.CatKernel, nb.Costs.NotifyFixed, "netback.notify", v.notifyFn)
}

func (nb *Netback) frontNotifyTask(v *Vif) {
	v.notifyQd = false
	v.toFront.NotifyFromGuest(nb.Dom0)
}
