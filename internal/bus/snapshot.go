package bus

import (
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// State is the bus's checkpoint image: the FIFO server's horizon plus
// the traffic counters. In-flight DMA completions are events and ride
// the engine snapshot.
type State struct {
	BusyUntil sim.Time
	Transfers stats.CounterState
	Bytes     stats.CounterState
}

// State captures the bus.
func (b *Bus) State() State {
	return State{BusyUntil: b.busyUntil, Transfers: b.Transfers.State(), Bytes: b.Bytes.State()}
}

// SetState restores the bus from a State image.
func (b *Bus) SetState(s State) {
	b.busyUntil = s.BusyUntil
	b.Transfers.SetState(s.Transfers)
	b.Bytes.SetState(s.Bytes)
}
