package bus

import (
	"testing"

	"cdna/internal/sim"
)

func TestDMACompletionTime(t *testing.T) {
	eng := sim.New()
	b := New(eng, Params{BytesPerSec: 1e9, PerTransfer: 100})
	var done sim.Time
	b.DMA(1000, "x", sim.RawFn(func() { done = eng.Now() }))
	eng.Run(sim.Second)
	// 100ns setup + 1000B at 1GB/s = 1000ns -> 1100ns.
	if done != 1100 {
		t.Fatalf("done at %v, want 1100ns", done)
	}
}

func TestDMAFIFOSerialization(t *testing.T) {
	eng := sim.New()
	b := New(eng, Params{BytesPerSec: 1e9, PerTransfer: 0})
	var first, second sim.Time
	b.DMA(1000, "a", sim.RawFn(func() { first = eng.Now() }))
	b.DMA(1000, "b", sim.RawFn(func() { second = eng.Now() }))
	eng.Run(sim.Second)
	if first != 1000 || second != 2000 {
		t.Fatalf("first=%v second=%v, want 1000/2000", first, second)
	}
}

func TestDMAAfterIdleGap(t *testing.T) {
	eng := sim.New()
	b := New(eng, Params{BytesPerSec: 1e9, PerTransfer: 0})
	b.DMA(100, "a", sim.Fn{})
	var done sim.Time
	eng.After(10*sim.Microsecond, "later", func() {
		b.DMA(100, "b", sim.RawFn(func() { done = eng.Now() }))
	})
	eng.Run(sim.Second)
	if done != 10*sim.Microsecond+100 {
		t.Fatalf("done=%v, want 10.1us", done)
	}
}

func TestBacklog(t *testing.T) {
	eng := sim.New()
	b := New(eng, Params{BytesPerSec: 1e9, PerTransfer: 0})
	if b.Backlog() != 0 {
		t.Fatal("fresh bus must have zero backlog")
	}
	b.DMA(5000, "a", sim.Fn{})
	if b.Backlog() != 5000 {
		t.Fatalf("Backlog = %v, want 5000ns", b.Backlog())
	}
	eng.Run(sim.Second)
	if b.Backlog() != 0 {
		t.Fatal("drained bus must have zero backlog")
	}
}

func TestCounters(t *testing.T) {
	eng := sim.New()
	b := New(eng, DefaultParams())
	b.StartWindow()
	b.DMA(100, "a", sim.Fn{})
	b.DMA(200, "b", sim.Fn{})
	eng.Run(sim.Second)
	if b.Transfers.Window() != 2 || b.Bytes.Window() != 300 {
		t.Fatalf("transfers=%d bytes=%d", b.Transfers.Window(), b.Bytes.Window())
	}
}

func TestNegativeSizePanics(t *testing.T) {
	eng := sim.New()
	b := New(eng, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size must panic")
		}
	}()
	b.DMA(-1, "bad", sim.Fn{})
}

func TestNilCompletionAllowed(t *testing.T) {
	eng := sim.New()
	b := New(eng, DefaultParams())
	b.DMA(10, "fire-and-forget", sim.Fn{})
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("nil completion panicked: %v", r)
		}
	}()
	eng.Run(sim.Second)
}
