// Package bus models the host PCI bus (64-bit/66 MHz on the paper's
// testbed): a shared, FIFO bandwidth server that every DMA transfer —
// descriptor fetches, payload reads/writes, consumer-index writebacks and
// CDNA interrupt bit-vector pushes — must queue on. Programmed I/O cost
// is a constant charged to the issuing CPU context by the caller; the bus
// only tracks DMA occupancy.
package bus

import (
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Params configures the bus.
type Params struct {
	// BytesPerSec is the usable DMA bandwidth. A 64-bit/66 MHz PCI bus
	// peaks at 528 MB/s; sustained efficiency is lower.
	BytesPerSec float64
	// PerTransfer is the fixed arbitration + setup latency per DMA.
	PerTransfer sim.Time
}

// DefaultParams models the paper's PCI bus at ~80% efficiency.
func DefaultParams() Params {
	return Params{BytesPerSec: 420e6, PerTransfer: 600 * sim.Nanosecond}
}

// Bus is the shared DMA channel.
type Bus struct {
	eng       *sim.Engine
	params    Params
	busyUntil sim.Time

	Transfers stats.Counter
	Bytes     stats.Counter
}

// New creates a bus.
func New(eng *sim.Engine, p Params) *Bus {
	return &Bus{eng: eng, params: p}
}

// transferTime returns the service time for size bytes.
func (b *Bus) transferTime(size int) sim.Time {
	return b.params.PerTransfer + sim.Time(float64(size)/b.params.BytesPerSec*1e9)
}

// DMA queues a transfer of size bytes and invokes fn when it completes.
// Transfers are serviced FIFO — completions fire in issue order — so
// callers needing per-transfer state can pair a sim.FIFO with one
// callback bound at construction instead of capturing it in a fresh
// closure per transfer. name is the event name as it appears in traces.
func (b *Bus) DMA(size int, name string, fn sim.Fn) {
	if size < 0 {
		panic("bus: negative DMA size")
	}
	start := b.eng.Now()
	if b.busyUntil > start {
		start = b.busyUntil
	}
	done := start + b.transferTime(size)
	b.busyUntil = done
	b.Transfers.Inc()
	b.Bytes.Add(uint64(size))
	b.eng.AtFn(done, name, fn)
}

// Backlog returns how far in the future the bus frees up.
func (b *Bus) Backlog() sim.Time {
	if b.busyUntil <= b.eng.Now() {
		return 0
	}
	return b.busyUntil - b.eng.Now()
}

// StartWindow resets windowed counters.
func (b *Bus) StartWindow() {
	b.Transfers.StartWindow()
	b.Bytes.StartWindow()
}
