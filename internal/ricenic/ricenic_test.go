package ricenic

import (
	"testing"
	"testing/quick"

	"cdna/internal/bus"
	"cdna/internal/core"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

func TestMailboxHWDecodeOrder(t *testing.T) {
	var h MailboxHW
	if h.Pending() {
		t.Fatal("fresh hardware pending")
	}
	h.Write(5, 3, 100)
	h.Write(2, 0, 200)
	h.Write(2, 7, 300)
	if !h.Pending() {
		t.Fatal("events not pending")
	}
	// Decode walks contexts then mailboxes in ascending bit order.
	ctx, mbox, val, ok := h.DecodeNext()
	if !ok || ctx != 2 || mbox != 0 || val != 200 {
		t.Fatalf("decode 1: ctx=%d mbox=%d val=%d", ctx, mbox, val)
	}
	ctx, mbox, val, _ = h.DecodeNext()
	if ctx != 2 || mbox != 7 || val != 300 {
		t.Fatalf("decode 2: ctx=%d mbox=%d val=%d", ctx, mbox, val)
	}
	ctx, mbox, val, _ = h.DecodeNext()
	if ctx != 5 || mbox != 3 || val != 100 {
		t.Fatalf("decode 3: ctx=%d mbox=%d val=%d", ctx, mbox, val)
	}
	if _, _, _, ok := h.DecodeNext(); ok {
		t.Fatal("decode on empty hardware succeeded")
	}
}

func TestMailboxHWOverwrite(t *testing.T) {
	var h MailboxHW
	h.Write(1, MboxTxProd, 10)
	h.Write(1, MboxTxProd, 20) // producer index advanced again before service
	_, _, val, ok := h.DecodeNext()
	if !ok || val != 20 {
		t.Fatalf("val = %d, want latest write 20", val)
	}
	if h.Pending() {
		t.Fatal("coalesced mailbox writes must decode once")
	}
}

func TestMailboxHWClearContext(t *testing.T) {
	var h MailboxHW
	h.Write(3, 0, 1)
	h.Write(3, 5, 2)
	h.Write(9, 1, 3)
	h.ClearContext(3)
	ctx, _, _, ok := h.DecodeNext()
	if !ok || ctx != 9 {
		t.Fatalf("after clear: ctx=%d ok=%v", ctx, ok)
	}
}

func TestMailboxHWBoundsIgnored(t *testing.T) {
	var h MailboxHW
	h.Write(-1, 0, 1)
	h.Write(32, 0, 1)
	h.Write(0, -1, 1)
	h.Write(0, NumMailboxes, 1)
	if h.Pending() {
		t.Fatal("out-of-range writes must be ignored")
	}
	h.ClearContext(-1) // must not panic
	h.ClearContext(32)
}

// Property: every write is eventually decoded exactly once per
// (ctx, mbox) with the latest value.
func TestMailboxHWProperty(t *testing.T) {
	f := func(writes []uint16) bool {
		var h MailboxHW
		latest := map[[2]int]uint32{}
		for i, w := range writes {
			ctx := int(w) % 32
			mbox := int(w>>5) % NumMailboxes
			h.Write(ctx, mbox, uint32(i))
			latest[[2]int{ctx, mbox}] = uint32(i)
		}
		seen := map[[2]int]uint32{}
		for {
			ctx, mbox, val, ok := h.DecodeNext()
			if !ok {
				break
			}
			key := [2]int{ctx, mbox}
			if _, dup := seen[key]; dup {
				return false
			}
			seen[key] = val
		}
		if len(seen) != len(latest) {
			return false
		}
		for k, v := range latest {
			if seen[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// rig assembles a NIC with two contexts owned by two guests.
type rig struct {
	eng  *sim.Engine
	m    *mem.Memory
	n    *NIC
	cm   *core.ContextManager
	prot *core.Protection
	ctxA *core.Context
	ctxB *core.Context
	out  []*ether.Frame
}

const guestA, guestB = mem.Dom0 + 1, mem.Dom0 + 2

func newRig(t *testing.T, p Params) *rig {
	t.Helper()
	r := &rig{eng: sim.New(), m: mem.New()}
	b := bus.New(r.eng, bus.DefaultParams())
	pipe := ether.NewPipe(r.eng, 1.0, 0)
	pipe.Connect(ether.PortFunc(func(f *ether.Frame) { r.out = append(r.out, f) }))
	var err error
	r.n, err = New(r.eng, b, r.m, pipe, p)
	if err != nil {
		t.Fatal(err)
	}
	r.prot = core.NewProtection(r.m, core.ModeHypercall)
	r.cm = core.NewContextManager(r.prot)
	r.cm.OnRevoke = func(c *core.Context) { r.n.DetachContext(c.ID) }
	mk := func(dom mem.DomID, mac ether.MAC) *core.Context {
		tx, err := ring.New("tx", ring.DefaultLayout, r.m.AllocOne(dom).Base(), 64)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := ring.New("rx", ring.DefaultLayout, r.m.AllocOne(dom).Base(), 64)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := r.cm.Assign(dom, mac, tx, rx)
		if err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	r.ctxA = mk(guestA, ether.MakeMAC(1, 0))
	r.ctxB = mk(guestB, ether.MakeMAC(1, 1))
	return r
}

// enqueue pushes n tx descriptors through the protection engine and
// writes the mailbox.
func (r *rig) enqueue(t *testing.T, ctx *core.Context, dom mem.DomID, frames map[uint32]*ether.Frame, n int) {
	t.Helper()
	descs := make([]ring.Desc, n)
	base := ctx.TxRing.Prod()
	for i := range descs {
		buf := r.m.AllocOne(dom)
		descs[i] = ring.Desc{Addr: buf.Base(), Len: 1514, Flags: ring.FlagTx}
		if frames != nil {
			frames[base+uint32(i)] = &ether.Frame{Src: ctx.MAC, Size: 1514}
		}
	}
	if _, err := r.prot.Enqueue(dom, ctx.TxRing, descs); err != nil {
		t.Fatal(err)
	}
	r.n.MailboxWrite(ctx.ID, MboxTxProd, ctx.TxRing.Prod())
}

func TestTxThroughMailboxAndSeqCheck(t *testing.T) {
	r := newRig(t, DefaultParams())
	frames := map[uint32]*ether.Frame{}
	r.n.AttachContext(r.ctxA, func(idx uint32) *ether.Frame { return frames[idx] })
	r.n.AttachContext(r.ctxB, nil)
	r.enqueue(t, r.ctxA, guestA, frames, 5)
	r.eng.Run(10 * sim.Millisecond)
	if len(r.out) != 5 {
		t.Fatalf("transmitted %d frames, want 5", len(r.out))
	}
	if r.n.E.Faults.Total() != 0 {
		t.Fatal("valid sequence numbers faulted")
	}
	if r.ctxA.TxRing.Cons() != 5 {
		t.Fatalf("consumer writeback = %d", r.ctxA.TxRing.Cons())
	}
}

func TestStaleProducerFaultsAndRevokes(t *testing.T) {
	r := newRig(t, DefaultParams())
	frames := map[uint32]*ether.Frame{}
	r.n.AttachContext(r.ctxA, func(idx uint32) *ether.Frame { return frames[idx] })
	var fault *core.Fault
	r.n.SetHost(nil, func(f *core.Fault) {
		fault = f
		r.cm.HandleFault(f)
	})
	r.enqueue(t, r.ctxA, guestA, frames, 3)
	r.eng.Run(5 * sim.Millisecond)
	// Forge the producer index past the valid descriptors: the stale
	// slot's sequence number cannot match.
	r.n.MailboxWrite(r.ctxA.ID, MboxTxProd, r.ctxA.TxRing.Prod()+2)
	r.eng.Run(10 * sim.Millisecond)
	if fault == nil {
		t.Fatal("stale producer went undetected")
	}
	if fault.ContextID != r.ctxA.ID || fault.Owner != guestA {
		t.Fatalf("fault misattributed: %+v", fault)
	}
	if !r.ctxA.Faulted {
		t.Fatal("context not revoked")
	}
	if r.cm.Assigned() != 1 {
		t.Fatalf("assigned contexts = %d, want 1 (victim unaffected)", r.cm.Assigned())
	}
	// The revoked context's mailbox writes are ignored.
	r.n.MailboxWrite(r.ctxA.ID, MboxTxProd, 99)
	r.eng.Run(12 * sim.Millisecond)
}

func TestRxDemuxByMAC(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.n.AttachContext(r.ctxA, nil)
	r.n.AttachContext(r.ctxB, nil)
	// Post rx buffers for both contexts.
	for _, pair := range []struct {
		ctx *core.Context
		dom mem.DomID
	}{{r.ctxA, guestA}, {r.ctxB, guestB}} {
		descs := make([]ring.Desc, 8)
		for i := range descs {
			descs[i] = ring.Desc{Addr: r.m.AllocOne(pair.dom).Base(), Len: 1600}
		}
		if _, err := r.prot.Enqueue(pair.dom, pair.ctx.RxRing, descs); err != nil {
			t.Fatal(err)
		}
		r.n.MailboxWrite(pair.ctx.ID, MboxRxProd, pair.ctx.RxRing.Prod())
	}
	r.eng.Run(5 * sim.Millisecond)
	r.n.Receive(&ether.Frame{Dst: r.ctxA.MAC, Size: 1514})
	r.n.Receive(&ether.Frame{Dst: r.ctxB.MAC, Size: 1514})
	r.n.Receive(&ether.Frame{Dst: r.ctxB.MAC, Size: 1514})
	r.n.Receive(&ether.Frame{Dst: ether.MakeMAC(9, 9), Size: 1514}) // nobody's
	r.eng.Run(10 * sim.Millisecond)
	if got := r.n.RxPending(r.ctxA.ID); got != 1 {
		t.Fatalf("ctxA completions = %d, want 1", got)
	}
	if got := r.n.RxPending(r.ctxB.ID); got != 2 {
		t.Fatalf("ctxB completions = %d, want 2", got)
	}
	if r.n.E.RxDrops.Total() != 1 {
		t.Fatalf("unmatched frame drops = %d, want 1", r.n.E.RxDrops.Total())
	}
	// DrainRx empties the completion queue.
	if got := len(r.n.DrainRx(r.ctxB.ID)); got != 2 {
		t.Fatalf("DrainRx = %d", got)
	}
	if r.n.RxPending(r.ctxB.ID) != 0 {
		t.Fatal("completions not drained")
	}
}

func TestPromiscuousContext(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.n.AttachContext(r.ctxA, nil)
	descs := make([]ring.Desc, 4)
	for i := range descs {
		descs[i] = ring.Desc{Addr: r.m.AllocOne(guestA).Base(), Len: 1600}
	}
	r.prot.Enqueue(guestA, r.ctxA.RxRing, descs)
	r.n.MailboxWrite(r.ctxA.ID, MboxRxProd, r.ctxA.RxRing.Prod())
	r.eng.Run(5 * sim.Millisecond)
	r.n.SetPromiscuous(r.ctxA.ID)
	r.n.Receive(&ether.Frame{Dst: ether.MakeMAC(7, 7), Size: 1514})
	r.eng.Run(10 * sim.Millisecond)
	if r.n.RxPending(r.ctxA.ID) != 1 {
		t.Fatal("promiscuous context did not receive the unmatched frame")
	}
}

func TestBitVectorInterruptDelivery(t *testing.T) {
	r := newRig(t, DefaultParams())
	frames := map[uint32]*ether.Frame{}
	r.n.AttachContext(r.ctxA, func(idx uint32) *ether.Frame { return frames[idx] })
	irqs := 0
	r.n.SetHost(func() { irqs++ }, nil)
	r.enqueue(t, r.ctxA, guestA, frames, 3)
	r.eng.Run(10 * sim.Millisecond)
	if irqs == 0 {
		t.Fatal("no physical interrupt raised")
	}
	bits, n := r.n.BitVec.Drain()
	if n == 0 || bits&(1<<uint(r.ctxA.ID)) == 0 {
		t.Fatalf("bit vector missing context bit: %#x (%d vectors)", bits, n)
	}
}

func TestDirectPerContextIRQAblation(t *testing.T) {
	p := DefaultParams()
	p.DirectPerContextIRQ = true
	p.CoalescePkts = 1000 // force timer-based fire so both contexts share a vector
	r := newRig(t, p)
	framesA := map[uint32]*ether.Frame{}
	framesB := map[uint32]*ether.Frame{}
	r.n.AttachContext(r.ctxA, func(idx uint32) *ether.Frame { return framesA[idx] })
	r.n.AttachContext(r.ctxB, func(idx uint32) *ether.Frame { return framesB[idx] })
	irqs := 0
	r.n.SetHost(func() { irqs++ }, nil)
	r.enqueue(t, r.ctxA, guestA, framesA, 2)
	r.enqueue(t, r.ctxB, guestB, framesB, 2)
	r.eng.Run(5 * sim.Millisecond)
	if irqs < 2 {
		t.Fatalf("direct mode raised %d interrupts, want one per context (>=2)", irqs)
	}
}

func TestSeqCheckDisabled(t *testing.T) {
	p := DefaultParams()
	p.SeqCheck = false
	r := newRig(t, p)
	r.n.AttachContext(r.ctxA, nil)
	// Forged producer: without sequence checking nothing faults and the
	// NIC transmits garbage from the stale slots.
	r.n.MailboxWrite(r.ctxA.ID, MboxTxProd, 2)
	r.eng.Run(10 * sim.Millisecond)
	if r.n.E.Faults.Total() != 0 {
		t.Fatal("faults with checking disabled")
	}
	if len(r.out) != 2 {
		t.Fatalf("transmitted %d garbage frames, want 2", len(r.out))
	}
}

func TestDetachContext(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.n.AttachContext(r.ctxA, nil)
	r.n.DetachContext(r.ctxA.ID)
	r.n.Receive(&ether.Frame{Dst: r.ctxA.MAC, Size: 100})
	r.eng.Run(sim.Millisecond)
	if r.n.E.RxDrops.Total() != 1 {
		t.Fatal("detached context should drop frames")
	}
	if r.n.DrainRx(r.ctxA.ID) != nil {
		t.Fatal("detached context retains completions")
	}
}

func TestConstantsMatchPaper(t *testing.T) {
	if NumMailboxes != 24 {
		t.Fatal("the paper specifies 24 mailboxes per context")
	}
}
