package ricenic

import (
	"fmt"

	"cdna/internal/core"
)

// Memory map of the CDNA-modified RiceNIC (§4).
//
// The board carries 2 MB of SRAM reachable by host PIO. The low 128 KB
// is divided into 32 page-sized partitions, one per hardware context;
// only this SRAM can be memory-mapped into a host address space, so a
// guest's reach is exactly its own 4 KB partition. The low 24 words of
// each partition are the mailboxes; the rest is general-purpose shared
// memory between the guest driver and the NIC.
//
// Beyond the PIO window, each context uses 128 KB of on-board memory for
// metadata (descriptor-ring shadows) and the NIC buffers transmit and
// receive packet data in two globally shared 128 KB-per-context pools —
// 12 MB in total for 32 contexts, which is the paper's argument that a
// commodity NIC could afford CDNA.
const (
	SRAMBytes          = 2 << 20
	PartitionBytes     = core.ContextPartitionBytes // 4 KB, one host page
	PartitionedBytes   = 32 * PartitionBytes        // 128 KB of SRAM partitions
	MetadataPerContext = 128 << 10
	TxBufferPerContext = 128 << 10
	RxBufferPerContext = 128 << 10
)

// TotalContextMemory returns the on-board memory needed for n contexts
// (the paper's "only 12 MB ... to support 32 contexts").
func TotalContextMemory(n int) int {
	return n * (MetadataPerContext + TxBufferPerContext + RxBufferPerContext)
}

// PIOAddr is an offset into the NIC's PCI memory-mapped SRAM window.
type PIOAddr uint32

// MailboxPIOAddr returns the PIO address of a context's mailbox.
func MailboxPIOAddr(ctx, mbox int) PIOAddr {
	return PIOAddr(ctx*PartitionBytes + mbox*4)
}

// DecodePIO classifies a PIO write address: which context partition it
// falls in, and whether it hits a mailbox word (mbox >= 0) or the
// partition's general-purpose shared memory (mbox == -1). Addresses
// outside the partitioned region are invalid — nothing else on the
// board is PIO-reachable.
func DecodePIO(addr PIOAddr) (ctx, mbox int, err error) {
	if addr >= PartitionedBytes {
		return 0, 0, fmt.Errorf("ricenic: PIO address %#x outside the partitioned SRAM window", uint32(addr))
	}
	ctx = int(addr / PartitionBytes)
	off := int(addr % PartitionBytes)
	if off%4 == 0 && off/4 < NumMailboxes {
		return ctx, off / 4, nil
	}
	return ctx, -1, nil
}

// PIOWrite is the address-decoded PIO path: the hardware snoops the
// SRAM bus, so a write to any mailbox word generates a mailbox event,
// while writes to the rest of the partition are plain shared-memory
// stores. The hypervisor maps one partition per guest, so a guest
// cannot form an address targeting another context (§3.1); the model
// still decodes defensively.
func (n *NIC) PIOWrite(addr PIOAddr, val uint32) error {
	ctx, mbox, err := DecodePIO(addr)
	if err != nil {
		return err
	}
	if mbox >= 0 {
		n.MailboxWrite(ctx, mbox, val)
	}
	return nil
}
