package ricenic

import (
	"cdna/internal/bus"
	"cdna/internal/core"
	"cdna/internal/ether"
	"cdna/internal/mem"
	"cdna/internal/nic"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

// Params configures the device.
type Params struct {
	Engine          nic.Params
	MboxDecode      sim.Time // firmware cost to service one mailbox event
	CoalesceDelay   sim.Time // interrupt coalescing timer, transmit completions
	RxCoalesceDelay sim.Time // interrupt coalescing timer, receive completions
	CoalescePkts    int      // transmit-completion threshold
	RxCoalescePkts  int      // receive-completion threshold
	BitVecEntries   int
	// SeqCheck enables descriptor sequence validation (§3.3). Disabled
	// only for the protection-off configuration of Table 4.
	SeqCheck bool
	// DirectPerContextIRQ is the §3.2 ablation: instead of one physical
	// interrupt per posted bit vector, the NIC raises one per context
	// with updates, modeling hardware that interrupts guests directly.
	DirectPerContextIRQ bool
}

// DefaultParams models the RiceNIC firmware on one 300 MHz PowerPC: it
// comfortably saturates the Gigabit link, as the paper reports.
func DefaultParams() Params {
	return Params{
		Engine: nic.Params{
			ProcTx:     1500 * sim.Nanosecond,
			ProcRx:     1700 * sim.Nanosecond,
			FetchBatch: 16,
			RxPrefetch: 64,
			TxWindow:   3,
			RxBufBytes: 128 << 10,
		},
		MboxDecode:      800 * sim.Nanosecond,
		CoalesceDelay:   70 * sim.Microsecond,
		RxCoalesceDelay: 140 * sim.Microsecond,
		CoalescePkts:    32,
		BitVecEntries:   64,
		SeqCheck:        true,
	}
}

// RxCompletion is a received-frame record the guest driver reads at its
// next virtual interrupt.
type RxCompletion struct {
	Frame *ether.Frame
	Desc  ring.Desc
}

type devContext struct {
	ctx    *core.Context
	qid    int
	lookup func(idx uint32) *ether.Frame
	// rxDone accumulates receive completions between guest virtual
	// interrupts; DrainRx hands the burst across the device/driver
	// boundary in one swap (sim.DoubleBuf's batched layer crossing).
	rxDone sim.DoubleBuf[RxCompletion]
}

// NIC is the CDNA-capable device.
type NIC struct {
	Name   string
	Params Params
	E      *nic.Engine
	Coal   *nic.Coalescer // transmit-completion coalescer
	RxCoal *nic.Coalescer // receive-completion coalescer
	Mbox   MailboxHW
	BitVec *core.BitVectorQueue

	eng *sim.Engine
	bus *bus.Bus

	raiseIRQ func()
	onFault  func(*core.Fault)

	// Dense per-packet lookup tables: context IDs and engine qids are
	// small sequential integers, so these are nil-holed slices rather
	// than maps — an array index per packet instead of a hash probe,
	// with inherently deterministic iteration. MAC demux scans attached
	// contexts linearly (at most 32, typically a handful).
	contexts   []*devContext // indexed by context ID
	byQueue    []*devContext // indexed by engine qid
	attached   []*devContext // MAC demux scan list (attach order)
	decoding   bool
	promiscCtx int // context receiving unmatched frames (-1 = drop)

	// Posted-but-not-yet-DMAed interrupt bit vectors, consumed FIFO by
	// bitvecDoneFn; with decodeDoneFn these are the firmware's
	// per-interrupt/per-mailbox callbacks bound once at New.
	postedVecs   sim.FIFO[uint32]
	bitvecDoneFn sim.Fn
	decodeDoneFn sim.Fn
}

// SetPromiscuous routes frames whose destination MAC matches no context
// to the given context — how the driver domain uses a single RiceNIC
// context to bridge all guest traffic in the software-virtualization
// configuration (Xen/RiceNIC rows of Tables 2-3).
func (n *NIC) SetPromiscuous(ctxID int) { n.promiscCtx = ctxID }

// New creates the NIC. The interrupt bit-vector queue lives in
// hypervisor memory and is allocated here (the hypervisor tells the NIC
// where during initialization).
func New(eng *sim.Engine, b *bus.Bus, m *mem.Memory, out *ether.Pipe, p Params) (*NIC, error) {
	n := &NIC{
		Name: "ricenic", Params: p, eng: eng, bus: b,
		contexts:   make([]*devContext, core.NumContexts),
		promiscCtx: -1,
	}
	bvPages := (core.BitVectorBytes(p.BitVecEntries) + mem.PageSize - 1) / mem.PageSize
	base := m.Alloc(mem.DomHyp, bvPages)[0].Base()
	bv, err := core.NewBitVectorQueue(m, base, p.BitVecEntries)
	if err != nil {
		return nil, err
	}
	n.BitVec = bv
	n.bitvecDoneFn = eng.Bind(n.bitvecDone)
	n.decodeDoneFn = eng.Bind(n.decodeDone)
	n.E = nic.NewEngine(eng, b, m, out, p.Engine)
	n.Coal = nic.NewCoalescer(eng, p.CoalesceDelay, p.CoalescePkts, n.fireInterrupt)
	rxDelay := p.RxCoalesceDelay
	if rxDelay == 0 {
		rxDelay = p.CoalesceDelay
	}
	rxPkts := p.RxCoalescePkts
	if rxPkts == 0 {
		rxPkts = p.CoalescePkts
	}
	n.RxCoal = nic.NewCoalescer(eng, rxDelay, rxPkts, n.fireInterrupt)
	n.E.Hooks = nic.Hooks{
		CheckTxSeq: n.checkSeq(true),
		CheckRxSeq: n.checkSeq(false),
		OnFault:    n.engineFault,
		LookupTx: func(qid int, idx uint32) *ether.Frame {
			if dc := n.queueCtx(qid); dc != nil && dc.lookup != nil {
				return dc.lookup(idx)
			}
			return nil
		},
		RxQueueFor: func(dst ether.MAC) int {
			for _, dc := range n.attached {
				if dc.ctx.MAC == dst {
					return dc.qid
				}
			}
			if n.promiscCtx >= 0 {
				if dc := n.ctxByID(n.promiscCtx); dc != nil {
					return dc.qid
				}
			}
			return -1
		},
		OnRxDelivered: func(qid int, f *ether.Frame, d ring.Desc) {
			if dc := n.queueCtx(qid); dc != nil {
				dc.rxDone.Append(RxCompletion{Frame: f, Desc: d})
			} else {
				f.Release()
			}
		},
		OnCompletion: func(qid int, tx bool) {
			if dc := n.queueCtx(qid); dc != nil {
				n.BitVec.Accumulate(dc.ctx.ID)
				if tx {
					n.Coal.Event()
				} else {
					n.RxCoal.Event()
				}
			}
		},
	}
	return n, nil
}

// queueCtx returns the device context attached to an engine qid, or nil.
func (n *NIC) queueCtx(qid int) *devContext {
	if qid < 0 || qid >= len(n.byQueue) {
		return nil
	}
	return n.byQueue[qid]
}

// ctxByID returns the device context for a context ID, or nil.
func (n *NIC) ctxByID(ctxID int) *devContext {
	if ctxID < 0 || ctxID >= len(n.contexts) {
		return nil
	}
	return n.contexts[ctxID]
}

func (n *NIC) checkSeq(tx bool) func(int, ring.Desc) bool {
	if !n.Params.SeqCheck {
		return nil
	}
	return func(qid int, d ring.Desc) bool {
		dc := n.queueCtx(qid)
		if dc == nil {
			return false
		}
		if tx {
			return dc.ctx.TxSeq.Check(d.Seq)
		}
		return dc.ctx.RxSeq.Check(d.Seq)
	}
}

func (n *NIC) engineFault(qid int, tx bool, d ring.Desc) {
	dc := n.queueCtx(qid)
	if dc == nil {
		return
	}
	reason := core.FaultSeqMismatch
	f := &core.Fault{ContextID: dc.ctx.ID, Owner: dc.ctx.Owner, Reason: reason}
	if n.onFault != nil {
		n.onFault(f)
	}
}

// fireInterrupt posts the interrupt bit vector via DMA and raises the
// physical interrupt (§3.2).
func (n *NIC) fireInterrupt() {
	vec, ok := n.BitVec.Post()
	if !ok {
		// Buffer full: bits remain accumulated; the host ISR will drain
		// and the next completion retries.
		return
	}
	n.postedVecs.Push(vec)
	n.bus.DMA(core.PostBytes, "bus.dma:ricenic.bitvec", n.bitvecDoneFn)
}

// bitvecDone runs when a posted bit vector's DMA lands in host memory.
func (n *NIC) bitvecDone() {
	vec := n.postedVecs.Pop()
	if n.raiseIRQ == nil {
		return
	}
	if !n.Params.DirectPerContextIRQ {
		n.raiseIRQ()
		return
	}
	// Ablation: one physical interrupt per context with updates.
	for c := 0; c < 32; c++ {
		if vec&(1<<uint(c)) != 0 {
			n.raiseIRQ()
		}
	}
}

// SetHost installs the hypervisor-facing callbacks: the physical
// interrupt line and the protection-fault report channel.
func (n *NIC) SetHost(raiseIRQ func(), onFault func(*core.Fault)) {
	n.raiseIRQ = raiseIRQ
	n.onFault = onFault
}

// AttachContext activates a hardware context previously assigned by the
// hypervisor's ContextManager and installs the guest driver's tx frame
// lookup.
func (n *NIC) AttachContext(ctx *core.Context, lookup func(idx uint32) *ether.Frame) {
	qid := n.E.AddQueue(ctx.TxRing, ctx.RxRing)
	dc := &devContext{ctx: ctx, qid: qid, lookup: lookup}
	for ctx.ID >= len(n.contexts) {
		n.contexts = append(n.contexts, nil)
	}
	n.contexts[ctx.ID] = dc
	for qid >= len(n.byQueue) {
		n.byQueue = append(n.byQueue, nil)
	}
	n.byQueue[qid] = dc
	n.attached = append(n.attached, dc)
}

// DetachContext shuts down all pending operations for a context (§3.1
// revocation).
func (n *NIC) DetachContext(ctxID int) {
	dc := n.ctxByID(ctxID)
	if dc == nil {
		return
	}
	n.E.DetachQueue(dc.qid)
	for i := 0; i < dc.rxDone.Len(); i++ {
		dc.rxDone.At(i).Frame.Release()
	}
	dc.rxDone.Reset()
	n.Mbox.ClearContext(ctxID)
	n.contexts[ctxID] = nil
	n.byQueue[dc.qid] = nil
	for i, a := range n.attached {
		if a == dc {
			n.attached = append(n.attached[:i], n.attached[i+1:]...)
			break
		}
	}
}

// MailboxWrite is the guest's PIO into its context partition. The
// hardware records the event; the firmware decodes it asynchronously.
// PIO CPU cost is charged by the driver.
func (n *NIC) MailboxWrite(ctxID, mbox int, val uint32) {
	n.Mbox.Write(ctxID, mbox, val)
	n.decodeEvents()
}

func (n *NIC) decodeEvents() {
	if n.decoding || !n.Mbox.Pending() {
		return
	}
	n.decoding = true
	n.E.Proc.Do(n.Params.MboxDecode, "nicproc:mboxdecode", n.decodeDoneFn)
}

func (n *NIC) decodeDone() {
	n.decoding = false
	ctx, mbox, val, ok := n.Mbox.DecodeNext()
	if ok {
		n.handleMailbox(ctx, mbox, val)
	}
	n.decodeEvents()
}

func (n *NIC) handleMailbox(ctxID, mbox int, val uint32) {
	dc := n.ctxByID(ctxID)
	if dc == nil {
		return // stale event for a revoked context
	}
	switch mbox {
	case MboxTxProd:
		n.E.KickTx(dc.qid, val)
	case MboxRxProd:
		n.E.KickRx(dc.qid, val)
	}
}

// DrainRx hands the guest driver its completed receive frames.
func (n *NIC) DrainRx(ctxID int) []RxCompletion {
	dc := n.ctxByID(ctxID)
	if dc == nil {
		return nil
	}
	// One swap hands the whole burst across the device/driver boundary;
	// the caller consumes the returned slice before the next drain (the
	// driver's virq task does, synchronously).
	return dc.rxDone.Drain()
}

// RxPending returns queued, undrained receive completions for a context.
func (n *NIC) RxPending(ctxID int) int {
	if dc := n.ctxByID(ctxID); dc != nil {
		return dc.rxDone.Len()
	}
	return 0
}

// Receive implements ether.Port: MAC demultiplexing happens in
// Hooks.RxQueueFor.
func (n *NIC) Receive(f *ether.Frame) { n.E.Receive(f) }
