package ricenic

import (
	"testing"
	"testing/quick"

	"cdna/internal/ether"
	"cdna/internal/ring"
	"cdna/internal/sim"
)

func TestMemoryMapMatchesPaper(t *testing.T) {
	if SRAMBytes != 2<<20 {
		t.Fatal("the RiceNIC carries 2 MB of SRAM")
	}
	if PartitionedBytes != 128<<10 {
		t.Fatal("128 KB of SRAM is divided into context partitions")
	}
	if PartitionBytes != 4096 {
		t.Fatal("each partition is one host page")
	}
	// "only 12 MB of memory on the NIC is needed to support 32 contexts"
	if TotalContextMemory(32) != 12<<20 {
		t.Fatalf("TotalContextMemory(32) = %d, want 12 MB", TotalContextMemory(32))
	}
}

func TestDecodePIO(t *testing.T) {
	cases := []struct {
		addr PIOAddr
		ctx  int
		mbox int
	}{
		{0, 0, 0},                    // context 0, mailbox 0
		{4, 0, 1},                    // context 0, mailbox 1
		{23 * 4, 0, 23},              // last mailbox
		{24 * 4, 0, -1},              // just past the mailboxes: shared memory
		{MailboxPIOAddr(7, 5), 7, 5}, // helper round-trip
		{PIOAddr(31*PartitionBytes + 2000), 31, -1}, // shared memory, last context
		{2, 0, -1}, // unaligned: not a mailbox word
	}
	for _, c := range cases {
		ctx, mbox, err := DecodePIO(c.addr)
		if err != nil {
			t.Fatalf("addr %#x: %v", uint32(c.addr), err)
		}
		if ctx != c.ctx || mbox != c.mbox {
			t.Errorf("DecodePIO(%#x) = (%d, %d), want (%d, %d)", uint32(c.addr), ctx, mbox, c.ctx, c.mbox)
		}
	}
	if _, _, err := DecodePIO(PartitionedBytes); err == nil {
		t.Fatal("address beyond the partitioned window must be invalid")
	}
}

// Property: MailboxPIOAddr and DecodePIO are inverses over the whole
// valid space.
func TestPIOAddrRoundTrip(t *testing.T) {
	f := func(c, m uint8) bool {
		ctx, mbox := int(c)%32, int(m)%NumMailboxes
		gotCtx, gotMbox, err := DecodePIO(MailboxPIOAddr(ctx, mbox))
		return err == nil && gotCtx == ctx && gotMbox == mbox
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPIOWriteTriggersMailboxEvent(t *testing.T) {
	r := newRig(t, DefaultParams())
	frames := map[uint32]*ether.Frame{}
	r.n.AttachContext(r.ctxA, func(idx uint32) *ether.Frame { return frames[idx] })
	// A write into the partition's shared memory area: no event.
	if err := r.n.PIOWrite(MailboxPIOAddr(r.ctxA.ID, 0)+PIOAddr(NumMailboxes*4), 1); err != nil {
		t.Fatal(err)
	}
	if r.n.Mbox.Pending() {
		t.Fatal("shared-memory PIO generated a mailbox event")
	}
	// A PIO store to the tx-producer mailbox word behaves exactly like
	// MailboxWrite: descriptors flow and frames transmit.
	r.enqueuePIO(t, frames, 3)
	r.eng.Run(10 * sim.Millisecond)
	if len(r.out) != 3 {
		t.Fatalf("transmitted %d frames via address-decoded PIO, want 3", len(r.out))
	}
	// Out-of-window PIO is rejected.
	if err := r.n.PIOWrite(PartitionedBytes+4, 9); err == nil {
		t.Fatal("PIO outside the SRAM window accepted")
	}
}

// enqueuePIO mirrors rig.enqueue but kicks via the address-decoded PIO
// path.
func (r *rig) enqueuePIO(t *testing.T, frames map[uint32]*ether.Frame, n int) {
	t.Helper()
	descs := make([]ring.Desc, n)
	base := r.ctxA.TxRing.Prod()
	for i := range descs {
		buf := r.m.AllocOne(guestA)
		descs[i] = ring.Desc{Addr: buf.Base(), Len: 1514, Flags: ring.FlagTx}
		frames[base+uint32(i)] = &ether.Frame{Src: r.ctxA.MAC, Size: 1514}
	}
	if _, err := r.prot.Enqueue(guestA, r.ctxA.TxRing, descs); err != nil {
		t.Fatal(err)
	}
	if err := r.n.PIOWrite(MailboxPIOAddr(r.ctxA.ID, MboxTxProd), r.ctxA.TxRing.Prod()); err != nil {
		t.Fatal(err)
	}
}
