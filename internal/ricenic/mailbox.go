// Package ricenic models the CDNA-modified RiceNIC (§4): an FPGA-based
// Gigabit NIC with 32 hardware contexts, each exposing a page-sized SRAM
// partition with 24 mailboxes, a two-level mailbox event bit-vector
// hierarchy maintained in hardware, per-context transmit/receive
// descriptor rings with sequence-number validation, MAC-based receive
// demultiplexing, fair transmit interleaving across contexts, and
// interrupt delivery via DMA'd bit vectors.
package ricenic

import "math/bits"

// NumMailboxes matches the paper's 24 mailbox locations per context.
const NumMailboxes = 24

// Mailbox assignments used by the CDNA driver.
const (
	MboxTxProd = 0 // transmit producer index
	MboxRxProd = 1 // receive producer index
)

// MailboxHW is the hardware mailbox-event unit (§4): a snooper on the
// SRAM bus that records PIO mailbox writes in a two-level bit-vector
// hierarchy held in the processor's scratchpad. The first level says
// which contexts have events; the second says which mailboxes within a
// context. Values are stored in the (modeled) SRAM partitions.
type MailboxHW struct {
	level1 uint32
	level2 [32]uint32
	values [32][NumMailboxes]uint32
}

// Write records a PIO store to a context's mailbox. Repeated writes to
// the same mailbox before the firmware services it simply overwrite the
// value (producer indices are cumulative, so nothing is lost).
func (h *MailboxHW) Write(ctx, mbox int, val uint32) {
	if ctx < 0 || ctx >= 32 || mbox < 0 || mbox >= NumMailboxes {
		return
	}
	h.values[ctx][mbox] = val
	h.level2[ctx] |= 1 << uint(mbox)
	h.level1 |= 1 << uint(ctx)
}

// Pending reports whether any mailbox event awaits service.
func (h *MailboxHW) Pending() bool { return h.level1 != 0 }

// DecodeNext pops the next mailbox event in (context, mailbox) order by
// walking the two bit-vector levels, exactly the firmware's decode loop.
func (h *MailboxHW) DecodeNext() (ctx, mbox int, val uint32, ok bool) {
	if h.level1 == 0 {
		return 0, 0, 0, false
	}
	ctx = bits.TrailingZeros32(h.level1)
	mbox = bits.TrailingZeros32(h.level2[ctx])
	val = h.values[ctx][mbox]
	h.level2[ctx] &^= 1 << uint(mbox)
	if h.level2[ctx] == 0 {
		h.level1 &^= 1 << uint(ctx)
	}
	return ctx, mbox, val, true
}

// ClearContext drops all pending events for a context (used by the
// event-clear message path and on revocation).
func (h *MailboxHW) ClearContext(ctx int) {
	if ctx < 0 || ctx >= 32 {
		return
	}
	h.level2[ctx] = 0
	h.level1 &^= 1 << uint(ctx)
}
