package ricenic

import (
	"fmt"

	"cdna/internal/core"
	"cdna/internal/ether"
	"cdna/internal/nic"
	"cdna/internal/ring"
)

// MailboxState is the hardware mailbox unit's checkpoint image — the
// two-level event bit vectors and the SRAM-held values, all plain data.
type MailboxState struct {
	Level1 uint32
	Level2 [32]uint32
	Values [32][NumMailboxes]uint32
}

// State captures the mailbox hardware.
func (h *MailboxHW) State() MailboxState {
	return MailboxState{Level1: h.level1, Level2: h.level2, Values: h.values}
}

// SetState restores the mailbox hardware.
func (h *MailboxHW) SetState(s MailboxState) {
	h.level1, h.level2, h.values = s.Level1, s.Level2, s.Values
}

// RxCompletionState is one undrained receive completion.
type RxCompletionState struct {
	Frame ether.FrameState
	Desc  ring.Desc
}

// ContextState is one attached device context's checkpoint image,
// identified by attach order. CtxID and Qid pin the identity so a
// roster drift between snapshot and restore machine is an error, not a
// silent mismatch.
type ContextState struct {
	CtxID  int
	Qid    int
	RxDone []RxCompletionState
}

// State is the NIC's checkpoint image. The engine, coalescers, mailbox
// unit and bit-vector queue are bundled here because the NIC owns them;
// the bit-vector circular buffer's bytes ride the mem image.
type State struct {
	Engine   nic.EngineState
	Coal     nic.CoalescerState
	RxCoal   nic.CoalescerState
	Mbox     MailboxState
	BitVec   core.BitVectorQueueState
	Decoding bool
	Posted   []uint32
	Contexts []ContextState
}

// State captures the NIC and all attached device contexts.
func (n *NIC) State(codec ether.PayloadCodec) (State, error) {
	es, err := n.E.State(codec)
	if err != nil {
		return State{}, err
	}
	s := State{
		Engine:   es,
		Coal:     n.Coal.State(),
		RxCoal:   n.RxCoal.State(),
		Mbox:     n.Mbox.State(),
		BitVec:   n.BitVec.State(),
		Decoding: n.decoding,
		Posted:   make([]uint32, n.postedVecs.Len()),
		Contexts: make([]ContextState, len(n.attached)),
	}
	for i := 0; i < n.postedVecs.Len(); i++ {
		s.Posted[i] = n.postedVecs.At(i)
	}
	for i, dc := range n.attached {
		cs := ContextState{
			CtxID:  dc.ctx.ID,
			Qid:    dc.qid,
			RxDone: make([]RxCompletionState, dc.rxDone.Len()),
		}
		for j := range cs.RxDone {
			rc := dc.rxDone.At(j)
			fs, err := ether.CaptureFrame(rc.Frame, codec)
			if err != nil {
				return State{}, err
			}
			cs.RxDone[j] = RxCompletionState{Frame: fs, Desc: rc.Desc}
		}
		s.Contexts[i] = cs
	}
	return s, nil
}

// SetState restores the NIC into a freshly built machine with the same
// attach roster. The rxDone double buffer's spare array restores empty
// — it is never observable.
func (n *NIC) SetState(s State, codec ether.PayloadCodec) error {
	if len(s.Contexts) != len(n.attached) {
		return fmt.Errorf("ricenic: context roster mismatch: snapshot has %d, machine has %d",
			len(s.Contexts), len(n.attached))
	}
	for i, cs := range s.Contexts {
		dc := n.attached[i]
		if cs.CtxID != dc.ctx.ID || cs.Qid != dc.qid {
			return fmt.Errorf("ricenic: attached context %d is (ctx %d, qid %d) in snapshot, (ctx %d, qid %d) in machine",
				i, cs.CtxID, cs.Qid, dc.ctx.ID, dc.qid)
		}
	}
	if err := n.E.SetState(s.Engine, codec); err != nil {
		return err
	}
	n.Coal.SetState(s.Coal)
	n.RxCoal.SetState(s.RxCoal)
	n.Mbox.SetState(s.Mbox)
	n.BitVec.SetState(s.BitVec)
	n.decoding = s.Decoding
	n.postedVecs.Clear()
	for _, v := range s.Posted {
		n.postedVecs.Push(v)
	}
	for i, cs := range s.Contexts {
		dc := n.attached[i]
		dc.rxDone.Reset()
		for _, rc := range cs.RxDone {
			f, err := ether.RestoreFrame(rc.Frame, codec)
			if err != nil {
				return err
			}
			dc.rxDone.Append(RxCompletion{Frame: f, Desc: rc.Desc})
		}
	}
	return nil
}
