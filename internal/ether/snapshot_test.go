package ether

import (
	"errors"
	"reflect"
	"testing"

	"cdna/internal/sim"
)

// bytePayload is a stand-in for the transport segment riding a frame.
type bytePayload struct{ v byte }

// byteCodec serializes bytePayload; fail makes every call refuse, the
// way a real codec refuses a payload it does not recognize.
type byteCodec struct{ fail bool }

func (c byteCodec) EncodePayload(p any) ([]byte, error) {
	if c.fail {
		return nil, errors.New("encode refused")
	}
	return []byte{p.(bytePayload).v}, nil
}

func (c byteCodec) DecodePayload(b []byte) (any, error) {
	if c.fail || len(b) != 1 {
		return nil, errors.New("decode refused")
	}
	return bytePayload{v: b[0]}, nil
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Src: MakeMAC(1, 0), Dst: MakeMAC(1, 1), Size: 1514, Payload: bytePayload{v: 7}}
	s, err := CaptureFrame(f, byteCodec{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := RestoreFrame(s, byteCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Src != f.Src || g.Dst != f.Dst || g.Size != f.Size || g.Payload != f.Payload {
		t.Fatalf("restored frame %+v != original %+v", g, f)
	}

	// Payload-free frames need no codec at all.
	bare := &Frame{Src: MakeMAC(1, 2), Dst: MakeMAC(1, 3), Size: 60}
	s, err = CaptureFrame(bare, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Payload != nil {
		t.Fatalf("bare frame image has payload %v", s.Payload)
	}
	if g, err = RestoreFrame(s, nil); err != nil || g.Payload != nil {
		t.Fatalf("bare restore: frame %+v, err %v", g, err)
	}
}

func TestFrameCodecErrors(t *testing.T) {
	loaded := &Frame{Size: 60, Payload: bytePayload{v: 1}}
	if _, err := CaptureFrame(loaded, nil); err == nil {
		t.Fatal("captured a payload without a codec")
	}
	if _, err := CaptureFrame(loaded, byteCodec{fail: true}); err == nil {
		t.Fatal("capture ignored a codec error")
	}
	img, err := CaptureFrame(loaded, byteCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreFrame(img, nil); err == nil {
		t.Fatal("restored a payload image without a codec")
	}
	if _, err := RestoreFrame(img, byteCodec{fail: true}); err == nil {
		t.Fatal("restore ignored a codec error")
	}

	if _, err := CaptureFrames([]*Frame{loaded}, nil); err == nil {
		t.Fatal("slice capture ignored the codec error")
	}
	if _, err := RestoreFrames([]FrameState{img}, byteCodec{fail: true}); err == nil {
		t.Fatal("slice restore ignored the codec error")
	}
}

func TestFrameSlicesRoundTrip(t *testing.T) {
	// nil in, nil out: a nil slice is a meaningful "no frames here".
	if s, err := CaptureFrames(nil, nil); err != nil || s != nil {
		t.Fatalf("CaptureFrames(nil) = %v, %v", s, err)
	}
	if fs, err := RestoreFrames(nil, nil); err != nil || fs != nil {
		t.Fatalf("RestoreFrames(nil) = %v, %v", fs, err)
	}

	in := []*Frame{
		{Src: MakeMAC(2, 0), Dst: MakeMAC(2, 1), Size: 60},
		{Src: MakeMAC(2, 1), Dst: MakeMAC(2, 0), Size: 1514, Payload: bytePayload{v: 9}},
	}
	ss, err := CaptureFrames(in, byteCodec{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RestoreFrames(ss, byteCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("restored %d frames, want %d", len(out), len(in))
	}
	for i := range in {
		if *out[i] != *in[i] {
			t.Fatalf("frame %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestFrameFIFORoundTrip(t *testing.T) {
	var q sim.FIFO[*Frame]
	for i := 0; i < 3; i++ {
		q.Push(&Frame{Src: MakeMAC(3, i), Dst: MakeMAC(3, i+1), Size: 60 + i})
	}
	ss, err := CaptureFrameFIFO(&q, nil)
	if err != nil {
		t.Fatal(err)
	}
	var q2 sim.FIFO[*Frame]
	q2.Push(&Frame{Size: 999}) // must be cleared by restore
	if err := RestoreFrameFIFO(&q2, ss, nil); err != nil {
		t.Fatal(err)
	}
	if q2.Len() != q.Len() {
		t.Fatalf("restored FIFO depth %d, want %d", q2.Len(), q.Len())
	}
	for i := 0; i < q.Len(); i++ {
		if *q2.At(i) != *q.At(i) {
			t.Fatalf("slot %d: %+v != %+v", i, q2.At(i), q.At(i))
		}
	}

	bad := []FrameState{{Size: 60, Payload: []byte{1, 2}}} // undecodable image
	if err := RestoreFrameFIFO(&q2, bad, byteCodec{}); err == nil {
		t.Fatal("restored an undecodable payload image")
	}
}

// pipeRig is one pipe direction feeding a delivery log.
type pipeRig struct {
	eng  *sim.Engine
	pipe *Pipe
	got  []delivered
}

type delivered struct {
	at   sim.Time
	size int
}

func newPipeRig() *pipeRig {
	r := &pipeRig{eng: sim.New()}
	r.pipe = NewPipe(r.eng, 1.0, 500)
	r.pipe.Connect(PortFunc(func(f *Frame) {
		r.got = append(r.got, delivered{at: r.eng.Now(), size: f.Size})
	}))
	return r
}

// TestPipeSnapshotContinuation checkpoints a pipe with frames on the
// wire and resumes it in a fresh pipe on a fresh engine: the remaining
// deliveries must land at the same instants. The delivery events ride
// the engine snapshot; the pipe state carries the frames they pop.
func TestPipeSnapshotContinuation(t *testing.T) {
	a := newPipeRig()
	for i := 0; i < 4; i++ {
		a.pipe.Send(&Frame{Src: MakeMAC(4, 0), Dst: MakeMAC(4, 1), Size: 600 + i})
	}
	a.eng.Run(a.pipe.NextFree() / 2) // some delivered, some in flight

	ps, err := a.pipe.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	es, err := a.eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	b := newPipeRig()
	if err := b.pipe.SetState(ps, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.eng.Restore(es); err != nil {
		t.Fatal(err)
	}

	delivered := len(a.got)
	a.eng.Run(a.pipe.NextFree() + sim.Second)
	b.eng.Run(b.pipe.NextFree() + sim.Second)
	if !reflect.DeepEqual(a.got[delivered:], b.got) {
		t.Fatalf("resumed deliveries %v, want %v", b.got, a.got[delivered:])
	}

	// After both drained, the two pipes' images agree.
	as, err := a.pipe.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := b.pipe.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(as, bs) {
		t.Fatalf("drained images differ:\n%+v\n%+v", as, bs)
	}
}

func TestPipeDownStateRoundTrip(t *testing.T) {
	a := newPipeRig()
	a.pipe.Send(&Frame{Size: 600})
	a.pipe.SetDown(true)
	a.pipe.Send(&Frame{Size: 600}) // discarded: the link is down
	if !a.pipe.Down() {
		t.Fatal("pipe not down after SetDown")
	}
	if a.pipe.Dropped.Total() != 1 {
		t.Fatalf("Dropped = %d, want 1", a.pipe.Dropped.Total())
	}

	ps, err := a.pipe.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Down {
		t.Fatal("image lost the down flag")
	}
	b := newPipeRig()
	if err := b.pipe.SetState(ps, nil); err != nil {
		t.Fatal(err)
	}
	if !b.pipe.Down() || b.pipe.Dropped.Total() != 1 {
		t.Fatalf("restored pipe: down=%v dropped=%d", b.pipe.Down(), b.pipe.Dropped.Total())
	}
	got, err := b.pipe.State(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ps) {
		t.Fatalf("restored image %+v != donor image %+v", got, ps)
	}

	// Windowed counters reset on window open, down or not.
	b.pipe.StartWindow()
	if b.pipe.Dropped.Window() != 0 {
		t.Fatal("StartWindow did not reset the drop window")
	}
}

func TestPipeStateCodecErrors(t *testing.T) {
	r := newPipeRig()
	r.pipe.Send(&Frame{Size: 600, Payload: bytePayload{v: 3}})
	if _, err := r.pipe.State(nil); err == nil {
		t.Fatal("captured an in-flight payload without a codec")
	}
	ps, err := r.pipe.State(byteCodec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := newPipeRig().pipe.SetState(ps, byteCodec{fail: true}); err == nil {
		t.Fatal("restore ignored the codec error")
	}
}

func TestBridgeSnapshotRoundTrip(t *testing.T) {
	mk := func() (*Bridge, *[]int) {
		b := NewBridge()
		var hits []int
		for i := 0; i < 3; i++ {
			i := i
			b.AddPort(PortFunc(func(*Frame) { hits = append(hits, i) }))
		}
		return b, &hits
	}
	a, _ := mk()
	macs := []MAC{MakeMAC(6, 0), MakeMAC(6, 1), MakeMAC(6, 2)}
	for i, m := range macs {
		a.Input(i, &Frame{Src: m, Dst: Broadcast, Size: 60})
	}
	a.Input(0, &Frame{Src: macs[0], Dst: macs[2], Size: 60})

	st := a.State()
	if len(st.FDB) != 3 {
		t.Fatalf("image has %d FDB entries, want 3", len(st.FDB))
	}
	// Determinism: the FDB serializes sorted, independent of map order.
	if !reflect.DeepEqual(st, a.State()) {
		t.Fatal("re-capturing the same bridge produced a different image")
	}

	b, hits := mk()
	b.SetState(st)
	if !reflect.DeepEqual(b.State(), st) {
		t.Fatalf("restored image differs:\n%+v\n%+v", b.State(), st)
	}
	// The restored FDB forwards (not floods) to the learned port.
	b.Input(0, &Frame{Src: macs[0], Dst: macs[1], Size: 60})
	if !reflect.DeepEqual(*hits, []int{1}) {
		t.Fatalf("post-restore unicast hit ports %v, want [1]", *hits)
	}
}

func TestBridgeUnlearn(t *testing.T) {
	b := NewBridge()
	for i := 0; i < 3; i++ {
		b.AddPort(PortFunc(func(*Frame) {}))
	}
	if b.NumPorts() != 3 {
		t.Fatalf("NumPorts = %d", b.NumPorts())
	}
	macs := []MAC{MakeMAC(7, 0), MakeMAC(7, 1), MakeMAC(7, 2)}
	for i, m := range macs {
		b.Input(i, &Frame{Src: m, Dst: Broadcast, Size: 60})
	}
	if n := b.Unlearn(1); n != 1 {
		t.Fatalf("Unlearn removed %d entries, want 1", n)
	}
	if b.Lookup(macs[1]) != -1 {
		t.Fatal("station still learned after Unlearn")
	}
	if b.Lookup(macs[0]) != 0 || b.Lookup(macs[2]) != 2 {
		t.Fatal("Unlearn touched other ports' stations")
	}
	if n := b.Unlearn(1); n != 0 {
		t.Fatalf("second Unlearn removed %d entries, want 0", n)
	}
}
