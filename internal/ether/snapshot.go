package ether

import (
	"bytes"
	"fmt"
	"sort"

	"cdna/internal/sim"
	"cdna/internal/stats"
)

// PayloadCodec converts frame payloads to and from plain bytes for
// checkpoints. The payload type (a transport segment) lives above this
// package, so the machine layer supplies the codec; a nil payload is
// handled here and never reaches it.
type PayloadCodec interface {
	EncodePayload(p any) ([]byte, error)
	DecodePayload(b []byte) (any, error)
}

// FrameState is a frame's checkpoint image. Frames are immutable after
// creation and carry no identity in the model — every holder serializes
// its frames by value and restore materializes fresh ones.
type FrameState struct {
	Dst, Src MAC
	Size     int
	Payload  []byte // nil for frames without a payload
}

// CaptureFrame converts a frame to its image using codec for the
// payload.
func CaptureFrame(f *Frame, codec PayloadCodec) (FrameState, error) {
	s := FrameState{Dst: f.Dst, Src: f.Src, Size: f.Size}
	if f.Payload != nil {
		if codec == nil {
			return FrameState{}, fmt.Errorf("ether: frame with payload but no codec")
		}
		b, err := codec.EncodePayload(f.Payload)
		if err != nil {
			return FrameState{}, err
		}
		if b == nil {
			b = []byte{}
		}
		s.Payload = b
	}
	return s, nil
}

// RestoreFrame materializes a frame from its image.
func RestoreFrame(s FrameState, codec PayloadCodec) (*Frame, error) {
	f := &Frame{Dst: s.Dst, Src: s.Src, Size: s.Size}
	if s.Payload != nil {
		if codec == nil {
			return nil, fmt.Errorf("ether: frame image with payload but no codec")
		}
		p, err := codec.DecodePayload(s.Payload)
		if err != nil {
			return nil, err
		}
		f.Payload = p
	}
	return f, nil
}

// CaptureFrames converts a slice of frames.
func CaptureFrames(fs []*Frame, codec PayloadCodec) ([]FrameState, error) {
	if fs == nil {
		return nil, nil
	}
	out := make([]FrameState, len(fs))
	for i, f := range fs {
		s, err := CaptureFrame(f, codec)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// RestoreFrames materializes a slice of frames.
func RestoreFrames(ss []FrameState, codec PayloadCodec) ([]*Frame, error) {
	if ss == nil {
		return nil, nil
	}
	out := make([]*Frame, len(ss))
	for i, s := range ss {
		f, err := RestoreFrame(s, codec)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// CaptureFrameFIFO walks a frame FIFO head-to-tail.
func CaptureFrameFIFO(q *sim.FIFO[*Frame], codec PayloadCodec) ([]FrameState, error) {
	out := make([]FrameState, q.Len())
	for i := 0; i < q.Len(); i++ {
		s, err := CaptureFrame(q.At(i), codec)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// RestoreFrameFIFO refills a frame FIFO from images.
func RestoreFrameFIFO(q *sim.FIFO[*Frame], ss []FrameState, codec PayloadCodec) error {
	q.Clear()
	for _, s := range ss {
		f, err := RestoreFrame(s, codec)
		if err != nil {
			return err
		}
		q.Push(f)
	}
	return nil
}

// PipeState is one pipe direction's checkpoint image. The in-flight
// frames' delivery events ride the engine snapshot; the queue here is
// the frames those events will pop.
type PipeState struct {
	BusyUntil sim.Time
	Down      bool
	Inflight  []FrameState
	Frames    stats.CounterState
	Bytes     stats.CounterState
	Dropped   stats.CounterState

	// Keyed/seam state (cross.go): the per-pipe send counter behind
	// delivery keys, and the arrival queue of a cross-engine pipe
	// (whose delivery events ride the destination engine's snapshot).
	// Seam outboxes are always empty at snapshot points — the shard
	// coordinator flushes them before returning from every run.
	SendSeq  uint64
	Arrivals []FrameState
}

// State captures the pipe.
func (p *Pipe) State(codec PayloadCodec) (PipeState, error) {
	inflight := make([]FrameState, p.inflight.Len())
	for i := 0; i < p.inflight.Len(); i++ {
		s, err := CaptureFrame(p.inflight.At(i), codec)
		if err != nil {
			return PipeState{}, err
		}
		inflight[i] = s
	}
	arrivals, err := CaptureFrameFIFO(&p.arrivals, codec)
	if err != nil {
		return PipeState{}, err
	}
	if len(p.outbox) > 0 {
		return PipeState{}, fmt.Errorf("ether: snapshot of a seam pipe with an unflushed outbox")
	}
	return PipeState{
		BusyUntil: p.busyUntil,
		Down:      p.down,
		Inflight:  inflight,
		Frames:    p.Frames.State(),
		Bytes:     p.Bytes.State(),
		Dropped:   p.Dropped.State(),
		SendSeq:   p.sendSeq,
		Arrivals:  arrivals,
	}, nil
}

// SetState restores the pipe.
func (p *Pipe) SetState(s PipeState, codec PayloadCodec) error {
	p.busyUntil = s.BusyUntil
	p.down = s.Down
	p.inflight.Clear()
	for _, fs := range s.Inflight {
		f, err := RestoreFrame(fs, codec)
		if err != nil {
			return err
		}
		p.inflight.Push(f)
	}
	p.Frames.SetState(s.Frames)
	p.Bytes.SetState(s.Bytes)
	p.Dropped.SetState(s.Dropped)
	p.sendSeq = s.SendSeq
	p.outbox = p.outbox[:0]
	if err := RestoreFrameFIFO(&p.arrivals, s.Arrivals, codec); err != nil {
		return err
	}
	return nil
}

// FDBEntry is one learned station in a bridge image.
type FDBEntry struct {
	MAC  MAC
	Port int
}

// BridgeState is a learning bridge's checkpoint image. The forwarding
// database is serialized sorted by MAC so the image is deterministic
// regardless of map iteration order.
type BridgeState struct {
	FDB         []FDBEntry
	Forwarded   stats.CounterState
	Flooded     stats.CounterState
	FloodCopies stats.CounterState
	Moves       stats.CounterState
}

// State captures the bridge.
func (b *Bridge) State() BridgeState {
	fdb := make([]FDBEntry, 0, len(b.fdb))
	for m, p := range b.fdb {
		fdb = append(fdb, FDBEntry{MAC: m, Port: p})
	}
	sort.Slice(fdb, func(i, j int) bool {
		return bytes.Compare(fdb[i].MAC[:], fdb[j].MAC[:]) < 0
	})
	return BridgeState{
		FDB:         fdb,
		Forwarded:   b.Forwarded.State(),
		Flooded:     b.Flooded.State(),
		FloodCopies: b.FloodCopies.State(),
		Moves:       b.Moves.State(),
	}
}

// SetState restores the bridge.
func (b *Bridge) SetState(s BridgeState) {
	b.fdb = make(map[MAC]int, len(s.FDB))
	for _, e := range s.FDB {
		b.fdb[e.MAC] = e.Port
	}
	b.Forwarded.SetState(s.Forwarded)
	b.Flooded.SetState(s.Flooded)
	b.FloodCopies.SetState(s.FloodCopies)
	b.Moves.SetState(s.Moves)
}
