// Package ether models the Ethernet substrate: MAC addresses, frames,
// full-duplex Gigabit links with real framing overhead, and the learning
// software bridge that Xen's driver domain uses to multiplex guest
// traffic onto the physical NIC (paper §2.1).
package ether

import (
	"fmt"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// String formats the address conventionally.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IsBroadcast reports whether the address is broadcast or multicast.
func (m MAC) IsBroadcast() bool { return m[0]&1 == 1 }

// MakeMAC builds a locally administered unicast MAC from a group and
// index (group distinguishes NICs / guests / peers).
func MakeMAC(group, index int) MAC {
	return MAC{0x02, 0x00, byte(group >> 8), byte(group), byte(index >> 8), byte(index)}
}

// Frame header and physical-layer constants (bytes).
const (
	HeaderBytes   = 14 // dst + src + ethertype
	CRCBytes      = 4
	PreambleBytes = 8
	IFGBytes      = 12
	MinFrame      = 60 // without CRC
	MTU           = 1500
	// WireOverhead is added to every frame's on-the-wire slot.
	WireOverhead = CRCBytes + PreambleBytes + IFGBytes
)

// Frame is an Ethernet frame. Size is the frame length in bytes
// including the 14-byte header but excluding CRC/preamble/IFG; Payload
// carries the simulated upper-layer object (a transport segment).
//
// Frames on the hot data path come from a per-engine Arena and are
// reference-counted (see arena.go for the ownership rules). Frames
// built as plain literals work identically — their Retain/Release are
// no-ops and the garbage collector owns them.
type Frame struct {
	Dst, Src MAC
	Size     int
	Payload  any

	// Arena bookkeeping; all zero for unpooled (literal) frames.
	arena *Arena
	refs  int32
	gen   uint32
}

// WireBytes returns the number of byte slots the frame occupies on the
// medium, including CRC, preamble and inter-frame gap, with minimum-size
// padding applied.
func (f *Frame) WireBytes() int {
	size := f.Size
	if size < MinFrame {
		size = MinFrame
	}
	return size + WireOverhead
}

// GbpsToBytesPerNs converts a link rate in Gb/s to bytes per nanosecond.
func GbpsToBytesPerNs(gbps float64) float64 { return gbps / 8 }

// MaxPayloadMbps returns the maximum payload throughput (Mb/s) of a link
// at rate gbps when carrying frames with payload+headers totalling
// frameSize and payloadBytes of useful payload each. This is the
// saturation ceiling the paper's throughput numbers run into
// (941.5 Mb/s per Gigabit link for 1448-byte TCP payloads).
func MaxPayloadMbps(gbps float64, frameSize, payloadBytes int) float64 {
	slot := frameSize + WireOverhead
	framesPerSec := gbps * 1e9 / 8 / float64(slot)
	return framesPerSec * float64(payloadBytes) * 8 / 1e6
}
