package ether

// This file is the frame arena: a per-engine free list that recycles
// Frame values so the steady-state data path allocates nothing. Frames
// are reference-counted flyweights — the struct flows by pointer
// through every layer (driver slot tables, NIC job FIFOs, wire queues,
// bridge fan-out) and returns to its arena when the last holder drops
// it.
//
// Ownership rules (see DESIGN.md "Frame arena" for the long form):
//
//   - Arena.Get returns a frame with one reference, owned by the
//     caller. Handing the frame to a consuming sink — Pipe.Send,
//     Port.Receive, Bridge.Input, NetDevice.StartXmit, a stack rx
//     handler — transfers that reference.
//   - A holder that keeps the frame beyond such a call (a driver's
//     in-flight slot table while the NIC also puts the frame on the
//     wire) must Retain first; fan-out (bridge flood) Retains once per
//     extra recipient.
//   - Every drop path — link down, egress tail drop, qdisc overflow,
//     foreign-MAC filter, detach teardown — Releases instead of
//     silently discarding.
//   - Frames built as plain literals (tests, snapshot restore, seam
//     clones) have no arena: Retain/Release are no-ops and the GC owns
//     them. Model behavior is identical either way.
//
// Pooled frames never cross a shard boundary: a cross-engine seam pipe
// clones the frame (and any pooled payload) into unpooled values at
// Send time, on the sending shard, so arenas and reference counts are
// only ever touched by their owning shard.
//
// The generation counter increments on every free. It makes
// use-after-release detectable — Retain/Release on a stale handle
// panic in tests via Handle — without widening the hot path.

// PayloadRef is implemented by payloads that are themselves pooled and
// reference-counted (transport segments). A frame owns one payload
// reference: it retains nothing extra on attach (the creator's
// reference transfers in) and releases the payload when the frame
// itself is freed. CloneUnshared returns an unpooled value-copy for
// seam crossings.
type PayloadRef interface {
	RetainPayload()
	ReleasePayload()
	CloneUnshared() any
}

// Arena is a frame free list. One arena serves one engine (shard);
// it must never be shared across engines that run in parallel.
type Arena struct {
	free []*Frame

	// Gets/Puts count pooled traffic; News counts free-list misses
	// (frames newly allocated because the free list was empty). In
	// steady state News stops growing — the frame_arena benchmark and
	// the zero-alloc tests hold that.
	Gets, Puts, News uint64
}

// NewArena creates an empty arena.
func NewArena() *Arena { return &Arena{} }

// Get returns a frame initialized to the given header fields with one
// reference, owned by the caller. The payload reference (if the
// payload is pooled) transfers into the frame.
func (a *Arena) Get(src, dst MAC, size int, payload any) *Frame {
	a.Gets++
	var f *Frame
	if n := len(a.free); n > 0 {
		f = a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
	} else {
		a.News++
		f = &Frame{arena: a}
	}
	f.Src, f.Dst, f.Size, f.Payload = src, dst, size, payload
	f.refs = 1
	return f
}

// put recycles a freed frame.
func (a *Arena) put(f *Frame) {
	a.Puts++
	a.free = append(a.free, f)
}

// FreeLen returns the current free-list depth (tests).
func (a *Arena) FreeLen() int { return len(a.free) }

// Retain adds a reference. No-op for frames without an arena.
func (f *Frame) Retain() {
	if f.arena == nil {
		return
	}
	if f.refs <= 0 {
		panic("ether: Retain of a released frame")
	}
	f.refs++
}

// Release drops one reference; the last one returns the frame to its
// arena (releasing the payload reference it owns) and bumps the
// generation. No-op for frames without an arena.
func (f *Frame) Release() {
	if f.arena == nil {
		return
	}
	if f.refs <= 0 {
		panic("ether: Release of a released frame")
	}
	f.refs--
	if f.refs > 0 {
		return
	}
	f.gen++
	if p, ok := f.Payload.(PayloadRef); ok {
		p.ReleasePayload()
	}
	f.Payload = nil
	f.arena.put(f)
}

// Pooled reports whether the frame came from an arena.
func (f *Frame) Pooled() bool { return f.arena != nil }

// Handle is a generation-checked weak reference to a pooled frame.
// Holders that may outlive the frame (diagnostics, tests) keep a
// Handle instead of a bare pointer; Frame() panics if the slot was
// recycled, turning silent use-after-release into a loud failure.
type Handle struct {
	f   *Frame
	gen uint32
}

// Handle returns a generation-checked reference to the frame.
func (f *Frame) Handle() Handle { return Handle{f: f, gen: f.gen} }

// Valid reports whether the referenced frame is still the same
// incarnation.
func (h Handle) Valid() bool { return h.f != nil && h.f.gen == h.gen }

// Frame returns the referenced frame, panicking if it was released
// and recycled since the handle was taken.
func (h Handle) Frame() *Frame {
	if !h.Valid() {
		panic("ether: stale frame handle (released and recycled)")
	}
	return h.f
}

// cloneForSeam builds an unpooled value-copy of a frame for a
// cross-engine seam: the clone (and its payload, if pooled) is owned
// by the garbage collector, so the destination shard never touches
// this shard's arena or reference counts. Unpooled payloads are shared
// by pointer, exactly as all payloads were before frames were pooled —
// they are immutable after creation, so sharing is race-free.
func cloneForSeam(f *Frame) *Frame {
	nf := &Frame{Dst: f.Dst, Src: f.Src, Size: f.Size, Payload: f.Payload}
	if p, ok := f.Payload.(PayloadRef); ok {
		nf.Payload = p.CloneUnshared()
	}
	return nf
}
