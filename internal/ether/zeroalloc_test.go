//go:build !race

package ether_test

import (
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// The steady-state frame path must be allocation-free: frames come from
// the arena's free list and every link traversal rides pooled events.
// Race builds are excluded (the detector's instrumentation allocates).
func TestPipeSteadyStateZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	eng := sim.New()
	a := ether.NewArena()
	p := ether.NewPipe(eng, 10.0, sim.Microsecond)
	p.Connect(ether.PortFunc(func(f *ether.Frame) { f.Release() }))
	src, dst := ether.MakeMAC(1, 0), ether.MakeMAC(2, 0)
	drain := func() { eng.Run(eng.Now() + sim.Second) }
	for i := 0; i < 8; i++ {
		p.Send(a.Get(src, dst, 1514, nil))
	}
	drain()

	news := a.News
	if n := testing.AllocsPerRun(200, func() {
		p.Send(a.Get(src, dst, 1514, nil))
		drain()
	}); n != 0 {
		t.Fatalf("steady-state frame lifecycle allocates %.1f/op, want 0", n)
	}
	if a.News != news {
		t.Fatalf("arena missed its free list in steady state: News %d -> %d", news, a.News)
	}
}
