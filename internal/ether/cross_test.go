package ether

import (
	"testing"

	"cdna/internal/sim"
)

func TestCrossPipeSeamDelivery(t *testing.T) {
	src, dst := sim.New(), sim.New()
	p := NewPipeOn(src, dst, 1.0, 500*sim.Nanosecond)
	if !p.Cross() {
		t.Fatal("pipe between distinct engines is not a seam")
	}
	p.EnableKeyed(3)

	var got []*Frame
	p.Connect(PortFunc(func(f *Frame) { got = append(got, f) }))

	a := NewArena()
	pay := &fakePayload{}
	f := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 1514, pay)
	p.Send(f)

	// The send outboxes an unpooled clone and drops the wire's reference
	// to the original on the sending shard.
	if a.FreeLen() != 1 {
		t.Fatal("seam Send did not release the original frame")
	}
	if pay.releases != 1 {
		t.Fatalf("original payload released %d times, want 1", pay.releases)
	}
	if len(got) != 0 {
		t.Fatal("seam delivered before FlushCross")
	}

	p.FlushCross()
	dst.Run(dst.Now() + sim.Millisecond)
	if len(got) != 1 {
		t.Fatalf("delivered %d frames after flush, want 1", len(got))
	}
	c := got[0]
	if c.Pooled() {
		t.Fatal("delivered seam frame is pooled")
	}
	if c.Size != 1514 || c.Src != MakeMAC(0, 1) || c.Dst != MakeMAC(0, 2) {
		t.Fatalf("seam clone header differs: %+v", c)
	}
	if cp, ok := c.Payload.(*fakePayload); !ok || !cp.seamClone {
		t.Fatalf("seam payload not an unshared clone: %v", c.Payload)
	}
}

func TestPipeOnSameEngineIsLocal(t *testing.T) {
	eng := sim.New()
	p := NewPipeOn(eng, eng, 1.0, 500*sim.Nanosecond)
	if p.Cross() {
		t.Fatal("same-engine NewPipeOn built a seam")
	}
	p.EnableKeyed(1)

	var got []*Frame
	p.Connect(PortFunc(func(f *Frame) { got = append(got, f) }))
	for i := 0; i < 3; i++ {
		f := &Frame{Src: MakeMAC(0, 1), Dst: MakeMAC(0, 2), Size: 100 + i}
		p.Send(f)
	}
	eng.Run(eng.Now() + sim.Millisecond)
	if len(got) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(got))
	}
	for i, f := range got {
		if f.Size != 100+i {
			t.Fatalf("keyed same-engine delivery out of order: got size %d at %d", f.Size, i)
		}
	}
}

func TestDuplexOnWiresBothDirections(t *testing.T) {
	a, b := sim.New(), sim.New()
	d := NewDuplexOn(a, b, 1.0, 500*sim.Nanosecond)
	if !d.AtoB.Cross() || !d.BtoA.Cross() {
		t.Fatal("cross-engine duplex direction is not a seam")
	}
	if same := NewDuplexOn(a, a, 1.0, 0); same.AtoB.Cross() || same.BtoA.Cross() {
		t.Fatal("same-engine duplex built seams")
	}
}

func TestEarliestArrivalBound(t *testing.T) {
	eng := sim.New()
	p := NewPipeOn(eng, sim.New(), 1.0, 500*sim.Nanosecond)
	p.EnableKeyed(0)

	minTx := sim.Time(float64(MinFrame+WireOverhead) / GbpsToBytesPerNs(1.0))
	if got, want := p.EarliestArrival(0), minTx+500*sim.Nanosecond; got != want {
		t.Fatalf("idle-wire bound = %v, want %v", got, want)
	}
	if got, want := p.EarliestArrival(1000), 1000+minTx+500*sim.Nanosecond; got != want {
		t.Fatalf("srcAvail bound = %v, want %v", got, want)
	}

	// A frame on the wire pushes the bound out past srcAvail.
	p.Send(&Frame{Src: MakeMAC(0, 1), Dst: MakeMAC(0, 2), Size: 1514})
	if got := p.EarliestArrival(0); got <= minTx+500*sim.Nanosecond {
		t.Fatalf("busy-wire bound %v not pushed past idle bound", got)
	}
}

func TestPipeDownReleasesDroppedFrames(t *testing.T) {
	eng := sim.New()
	p := NewPipe(eng, 1.0, 0)
	p.SetDown(true)
	if !p.Down() {
		t.Fatal("SetDown(true) not reported by Down()")
	}
	a := NewArena()
	f := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 100, nil)
	p.Send(f)
	if p.Dropped.Total() != 1 {
		t.Fatalf("Dropped = %d, want 1", p.Dropped.Total())
	}
	if a.FreeLen() != 1 {
		t.Fatal("down-link drop leaked the frame")
	}
	p.SetDown(false)

	// With no port connected, delivery releases the frame instead of
	// leaking it.
	f2 := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 100, nil)
	p.Send(f2)
	eng.Run(eng.Now() + sim.Millisecond)
	if a.FreeLen() != 1 {
		t.Fatal("portless delivery leaked the frame")
	}
}
