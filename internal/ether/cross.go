package ether

import (
	"cdna/internal/sim"
)

// Cross-engine seams: when a simulation is partitioned into per-host
// engine shards, the fabric links are the only coupling between shards.
// A pipe whose transmitter and receiver live on different engines cannot
// schedule its delivery directly — the destination engine runs
// concurrently and may sit at a different clock. Instead the pipe queues
// the delivery in an outbox that the shard coordinator flushes onto the
// destination engine at round barriers (FlushCross), which is safe
// because conservative horizons guarantee every queued arrival is still
// in the destination's future.
//
// Determinism across shard counts comes from keyed delivery sequencing
// (EnableKeyed): every fabric pipe delivery carries an explicit event
// key SeqBand | pipeID<<40 | n instead of a scheduling-order sequence,
// so same-instant deliveries order by (pipe identity, send order) — a
// pure function of simulated traffic — whether they were scheduled
// mid-round on one engine or injected at a barrier on another. Keyed
// mode is therefore enabled for every fabric pipe of a multi-host
// machine even at one shard, making the single-engine run the byte
// reference for all shard counts.

// keyIDShift positions the pipe identity above the per-pipe send
// counter in a delivery key: 2^40 sends per pipe and 2^21 pipes fit
// under sim.SeqBand with room to spare.
const keyIDShift = 40

// crossMsg is one frame awaiting barrier injection on the destination
// engine.
type crossMsg struct {
	at  sim.Time
	key uint64
	f   *Frame
}

// NewPipeOn creates a unidirectional pipe whose transmitter runs on src
// and whose receiver runs on dst. With src == dst it is equivalent to
// NewPipe; otherwise the pipe becomes a cross-engine seam: deliveries
// are bound on the destination engine and buffered in an outbox until
// the shard coordinator flushes them.
func NewPipeOn(src, dst *sim.Engine, gbps float64, propDelay sim.Time) *Pipe {
	p := &Pipe{eng: src, bytesPerNs: GbpsToBytesPerNs(gbps), propDelay: propDelay}
	if dst != nil && dst != src {
		p.xEng = dst
		p.deliverFn = dst.Bind(p.deliver)
	} else {
		p.deliverFn = src.Bind(p.deliver)
	}
	return p
}

// NewDuplexOn builds a full-duplex link between engines a and b: the
// AtoB pipe transmits on a and delivers on b, BtoA the reverse.
func NewDuplexOn(a, b *sim.Engine, gbps float64, propDelay sim.Time) *Duplex {
	return &Duplex{
		AtoB: NewPipeOn(a, b, gbps, propDelay),
		BtoA: NewPipeOn(b, a, gbps, propDelay),
	}
}

// EnableKeyed switches the pipe to keyed delivery sequencing under the
// given machine-unique pipe identity. Must be called before any Send;
// ids must be assigned in deterministic construction order so keys are
// reproducible.
func (p *Pipe) EnableKeyed(id int) {
	p.keyed = true
	p.keyBase = sim.SeqBand | uint64(id)<<keyIDShift
}

// Cross reports whether the pipe is a cross-engine seam.
func (p *Pipe) Cross() bool { return p.xEng != nil }

// FlushCross schedules every outboxed delivery on the destination
// engine and appends the frames to the arrival queue those deliveries
// pop. Only the shard coordinator may call it, between rounds, when
// both engines are parked.
func (p *Pipe) FlushCross() {
	for _, m := range p.outbox {
		p.arrivals.Push(m.f)
		p.xEng.AtFnKeyed(m.at, "ether.deliver", p.deliverFn, m.key)
		m.f = nil
	}
	p.outbox = p.outbox[:0]
}

// EarliestArrival returns a conservative lower bound on when any frame
// the transmitter could still send — given that the transmitting shard
// cannot act before srcAvail — would reach the receiver: serialization
// of at least a minimum frame behind whatever already occupies the
// wire, plus propagation. The shard coordinator derives round horizons
// from this bound.
func (p *Pipe) EarliestArrival(srcAvail sim.Time) sim.Time {
	start := srcAvail
	if p.busyUntil > start {
		start = p.busyUntil
	}
	minTx := sim.Time(float64(MinFrame+WireOverhead) / p.bytesPerNs)
	return start + minTx + p.propDelay
}
