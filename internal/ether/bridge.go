package ether

import "cdna/internal/stats"

// Bridge is the forwarding database and port logic of the software
// Ethernet bridge that runs inside Xen's driver domain. It is pure
// forwarding logic: CPU cost for traversing it is charged by the driver
// domain code that invokes it, and the attached outputs are invoked
// synchronously.
//
// Standard learning-bridge semantics: the source MAC of every frame is
// learned on its ingress port; unicast frames to a known MAC go out that
// port only; unknown unicast and broadcast flood to every port except
// ingress.
type Bridge struct {
	outputs []Port
	fdb     map[MAC]int

	Forwarded stats.Counter
	Flooded   stats.Counter
}

// NewBridge creates an empty bridge.
func NewBridge() *Bridge {
	return &Bridge{fdb: make(map[MAC]int)}
}

// AddPort attaches an output and returns its port number.
func (b *Bridge) AddPort(out Port) int {
	b.outputs = append(b.outputs, out)
	return len(b.outputs) - 1
}

// NumPorts returns the number of attached ports.
func (b *Bridge) NumPorts() int { return len(b.outputs) }

// Lookup returns the learned port for a MAC, or -1.
func (b *Bridge) Lookup(m MAC) int {
	if p, ok := b.fdb[m]; ok {
		return p
	}
	return -1
}

// Input processes a frame arriving on ingress port `in`: learns the
// source and forwards or floods.
func (b *Bridge) Input(in int, f *Frame) {
	if !f.Src.IsBroadcast() {
		b.fdb[f.Src] = in
	}
	if !f.Dst.IsBroadcast() {
		if out, ok := b.fdb[f.Dst]; ok {
			if out != in {
				b.Forwarded.Inc()
				b.outputs[out].Receive(f)
			}
			return
		}
	}
	b.Flooded.Inc()
	for i, out := range b.outputs {
		if i != in {
			out.Receive(f)
		}
	}
}
