package ether

import "cdna/internal/stats"

// Bridge is the forwarding database and port logic of the software
// Ethernet bridge that runs inside Xen's driver domain. It is pure
// forwarding logic: CPU cost for traversing it is charged by the driver
// domain code that invokes it, and the attached outputs are invoked
// synchronously.
//
// Standard learning-bridge semantics: the source MAC of every frame is
// learned on its ingress port; unicast frames to a known MAC go out that
// port only; unknown unicast and broadcast flood to every port except
// ingress.
type Bridge struct {
	outputs []Port
	fdb     map[MAC]int

	Forwarded stats.Counter
	Flooded   stats.Counter
	// FloodCopies counts flood recipients: a flood event delivering to
	// n ports adds n. FloodCopies - Flooded is therefore the number of
	// extra frame copies flooding created — the term that closes the
	// fabric-wide conservation ledger the topo property tests check.
	FloodCopies stats.Counter
	// Moves counts source MACs re-learned on a different port — a
	// station that migrated across the fabric (or whose first frame
	// arrived as part of a flood and was then seen elsewhere).
	Moves stats.Counter
}

// NewBridge creates an empty bridge.
func NewBridge() *Bridge {
	return &Bridge{fdb: make(map[MAC]int)}
}

// AddPort attaches an output and returns its port number.
func (b *Bridge) AddPort(out Port) int {
	b.outputs = append(b.outputs, out)
	return len(b.outputs) - 1
}

// NumPorts returns the number of attached ports.
func (b *Bridge) NumPorts() int { return len(b.outputs) }

// Lookup returns the learned port for a MAC, or -1.
func (b *Bridge) Lookup(m MAC) int {
	if p, ok := b.fdb[m]; ok {
		return p
	}
	return -1
}

// Learn points the forwarding-database entry for m at port and returns
// the previously learned port, or -1 if the MAC was unknown. Bridge
// callers with richer port semantics (the multi-tier switch, whose
// uplink-facing entries legitimately flap between equal-cost ports) use
// it to apply their own station-move accounting; Input's own
// unconditional learning is unchanged and counts Moves itself.
func (b *Bridge) Learn(m MAC, port int) int {
	old, ok := b.fdb[m]
	b.fdb[m] = port
	if !ok {
		return -1
	}
	return old
}

// Unlearn removes every forwarding-database entry pointing at port and
// returns how many were dropped. A switch uses it when a port fails:
// stations behind the port must be re-learned (flooded to) wherever
// they reappear.
func (b *Bridge) Unlearn(port int) int {
	n := 0
	for m, p := range b.fdb {
		if p == port {
			delete(b.fdb, m)
			n++
		}
	}
	return n
}

// Input processes a frame arriving on ingress port `in`: learns the
// source and forwards or floods.
//
// Source learning is unconditional: every frame re-learns its source
// MAC on the ingress port, whether or not the forwarding database
// already has an entry and regardless of how the frame is about to be
// forwarded (known unicast, flood, or suppressed hairpin). A MAC that
// moves ports — including one whose first appearance was on a frame the
// bridge flooded — is therefore re-pointed by its very next frame, never
// pinned to a stale port. The regression tests in ether_test.go hold
// this invariant.
func (b *Bridge) Input(in int, f *Frame) {
	if !f.Src.IsBroadcast() {
		if old, ok := b.fdb[f.Src]; ok && old != in {
			b.Moves.Inc()
		}
		b.fdb[f.Src] = in
	}
	if !f.Dst.IsBroadcast() {
		if out, ok := b.fdb[f.Dst]; ok {
			if out != in {
				b.Forwarded.Inc()
				b.outputs[out].Receive(f)
			} else {
				// Hairpin suppressed: nobody consumes the frame.
				f.Release()
			}
			return
		}
	}
	b.Flooded.Inc()
	// Each recipient consumes one reference; the incoming reference
	// covers the first, so take one more per extra recipient before any
	// Receive can release the frame.
	n := 0
	for i := range b.outputs {
		if i != in {
			n++
		}
	}
	b.FloodCopies.Add(uint64(n))
	if n == 0 {
		f.Release()
		return
	}
	for i := 1; i < n; i++ {
		f.Retain()
	}
	for i, out := range b.outputs {
		if i != in {
			out.Receive(f)
		}
	}
}
