package ether

import (
	"math"
	"testing"
	"testing/quick"

	"cdna/internal/sim"
)

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x00, 0x00, 0x01, 0x00, 0x02}
	if m.String() != "02:00:00:01:00:02" {
		t.Fatalf("String = %s", m)
	}
}

func TestMakeMACUnique(t *testing.T) {
	seen := map[MAC]bool{}
	for g := 0; g < 4; g++ {
		for i := 0; i < 32; i++ {
			m := MakeMAC(g, i)
			if seen[m] {
				t.Fatalf("duplicate MAC %s", m)
			}
			if m.IsBroadcast() {
				t.Fatalf("generated MAC %s is multicast", m)
			}
			seen[m] = true
		}
	}
}

func TestBroadcastDetection(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast must be broadcast")
	}
	if (MAC{0x02}).IsBroadcast() {
		t.Fatal("locally administered unicast misdetected")
	}
}

func TestWireBytesPadding(t *testing.T) {
	small := &Frame{Size: 20}
	if small.WireBytes() != MinFrame+WireOverhead {
		t.Fatalf("small frame wire bytes = %d", small.WireBytes())
	}
	full := &Frame{Size: HeaderBytes + MTU}
	if full.WireBytes() != 1514+WireOverhead {
		t.Fatalf("full frame wire bytes = %d", full.WireBytes())
	}
}

func TestMaxPayloadMbps(t *testing.T) {
	// 1448B TCP payload in a 1514B frame on GbE: the classic ~941 Mb/s.
	got := MaxPayloadMbps(1.0, 1514, 1448)
	if math.Abs(got-941.5) > 1.0 {
		t.Fatalf("MaxPayloadMbps = %v, want ~941.5", got)
	}
}

func TestPipeSerialization(t *testing.T) {
	eng := sim.New()
	p := NewPipe(eng, 1.0, 0) // 1 Gb/s = 0.125 B/ns
	var times []sim.Time
	p.Connect(PortFunc(func(f *Frame) { times = append(times, eng.Now()) }))
	f := &Frame{Size: 1514}
	p.Send(f)
	p.Send(f)
	eng.Run(sim.Second)
	slot := sim.Time(float64(1538) / 0.125)
	if len(times) != 2 || times[0] != slot || times[1] != 2*slot {
		t.Fatalf("delivery times = %v, want %v and %v", times, slot, 2*slot)
	}
}

func TestPipePropagationDelay(t *testing.T) {
	eng := sim.New()
	p := NewPipe(eng, 1.0, 500*sim.Nanosecond)
	var at sim.Time
	p.Connect(PortFunc(func(f *Frame) { at = eng.Now() }))
	p.Send(&Frame{Size: 1514})
	eng.Run(sim.Second)
	want := sim.Time(float64(1538)/0.125) + 500
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestPipeThroughputCeiling(t *testing.T) {
	eng := sim.New()
	p := NewPipe(eng, 1.0, 0)
	delivered := 0
	p.Connect(PortFunc(func(f *Frame) { delivered += f.Size - HeaderBytes - 52 }))
	// Offer 2x line rate for 10ms; delivery is capped at line rate.
	var send func()
	n := 0
	send = func() {
		p.Send(&Frame{Size: 1514})
		n++
		if n < 2000 {
			eng.After(6*sim.Microsecond, "offer", send)
		}
	}
	eng.After(1, "start", send)
	eng.Run(10 * sim.Millisecond)
	mbps := float64(delivered) * 8 / 1e6 / 0.010
	if mbps > 945 {
		t.Fatalf("throughput %v Mb/s exceeds line rate ceiling", mbps)
	}
	if mbps < 900 {
		t.Fatalf("throughput %v Mb/s too low for saturated pipe", mbps)
	}
}

func TestPipeBacklogAndNextFree(t *testing.T) {
	eng := sim.New()
	p := NewPipe(eng, 1.0, 0)
	p.Connect(PortFunc(func(f *Frame) {}))
	if p.Backlog() != 0 || p.NextFree() != 0 {
		t.Fatal("fresh pipe should be free")
	}
	p.Send(&Frame{Size: 1514})
	if p.Backlog() == 0 {
		t.Fatal("busy pipe must report backlog")
	}
	if p.NextFree() != eng.Now()+p.Backlog() {
		t.Fatal("NextFree inconsistent with Backlog")
	}
}

func TestBridgeLearningAndUnicast(t *testing.T) {
	b := NewBridge()
	var got [3][]*Frame
	for i := 0; i < 3; i++ {
		i := i
		b.AddPort(PortFunc(func(f *Frame) { got[i] = append(got[i], f) }))
	}
	macA, macB := MakeMAC(1, 1), MakeMAC(1, 2)
	// A (port 0) talks; B unknown -> flood to 1 and 2.
	b.Input(0, &Frame{Src: macA, Dst: macB, Size: 100})
	if len(got[0]) != 0 || len(got[1]) != 1 || len(got[2]) != 1 {
		t.Fatalf("flood counts: %d %d %d", len(got[0]), len(got[1]), len(got[2]))
	}
	if b.Lookup(macA) != 0 {
		t.Fatal("source not learned")
	}
	// B replies from port 2: learned A -> unicast to port 0 only.
	b.Input(2, &Frame{Src: macB, Dst: macA, Size: 100})
	if len(got[0]) != 1 || len(got[1]) != 1 {
		t.Fatalf("unicast after learning: %d %d", len(got[0]), len(got[1]))
	}
	// Now A->B is unicast to port 2 only.
	b.Input(0, &Frame{Src: macA, Dst: macB, Size: 100})
	if len(got[2]) != 2 || len(got[1]) != 1 {
		t.Fatalf("unicast to learned dst: %d %d", len(got[2]), len(got[1]))
	}
}

func TestBridgeBroadcastFloods(t *testing.T) {
	b := NewBridge()
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		b.AddPort(PortFunc(func(f *Frame) { counts[i]++ }))
	}
	b.Input(1, &Frame{Src: MakeMAC(1, 1), Dst: Broadcast, Size: 64})
	if counts[1] != 0 {
		t.Fatal("frame echoed to ingress")
	}
	if counts[0] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("broadcast counts: %v", counts)
	}
}

func TestBridgeHairpinSuppressed(t *testing.T) {
	b := NewBridge()
	delivered := 0
	b.AddPort(PortFunc(func(f *Frame) { delivered++ }))
	b.AddPort(PortFunc(func(f *Frame) { delivered++ }))
	macA := MakeMAC(1, 1)
	b.Input(0, &Frame{Src: macA, Dst: MakeMAC(1, 9), Size: 64}) // learn A@0, flood to 1
	b.Input(0, &Frame{Src: MakeMAC(1, 3), Dst: macA, Size: 64}) // dst learned on ingress port: drop
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (hairpin suppressed)", delivered)
	}
}

// Regression: a station whose first frame arrived as part of a flood
// (destination unknown at the time) and which then moves to another
// port must be re-learned on its very next frame — source learning is
// unconditional, never first-writer-wins.
func TestBridgeRelearnAfterFloodMove(t *testing.T) {
	b := NewBridge()
	var got [3][]*Frame
	for i := 0; i < 3; i++ {
		i := i
		b.AddPort(PortFunc(func(f *Frame) { got[i] = append(got[i], f) }))
	}
	macA, macB := MakeMAC(1, 1), MakeMAC(1, 2)
	// A's first frame (dst unknown) floods; A is learned on port 0.
	b.Input(0, &Frame{Src: macA, Dst: macB, Size: 100})
	if b.Lookup(macA) != 0 {
		t.Fatalf("A learned on %d, want 0", b.Lookup(macA))
	}
	// A moves to port 1 (live migration) and speaks again — still a
	// flood (B is still unknown), but A must be re-learned regardless.
	b.Input(1, &Frame{Src: macA, Dst: macB, Size: 100})
	if b.Lookup(macA) != 1 {
		t.Fatalf("A not re-learned after move: Lookup = %d, want 1", b.Lookup(macA))
	}
	if b.Moves.Total() != 1 {
		t.Fatalf("Moves = %d, want 1", b.Moves.Total())
	}
	// Traffic to A now unicasts to the new port only.
	before := len(got[1])
	b.Input(2, &Frame{Src: macB, Dst: macA, Size: 100})
	if len(got[1]) != before+1 || len(got[0]) != 1 {
		t.Fatalf("post-move delivery: port1 got %d (want %d), port0 got %d (want 1, the original flood)",
			len(got[1]), before+1, len(got[0]))
	}
}

// Regression: a move is re-learned even when the triggering frame's
// forwarding is a suppressed hairpin (dst learned on the ingress port),
// the earliest-returning path through Input.
func TestBridgeRelearnOnHairpinFrame(t *testing.T) {
	b := NewBridge()
	b.AddPort(PortFunc(func(f *Frame) {}))
	b.AddPort(PortFunc(func(f *Frame) {}))
	macA, macB := MakeMAC(1, 1), MakeMAC(1, 2)
	b.Input(0, &Frame{Src: macA, Dst: Broadcast, Size: 60}) // A @ 0
	b.Input(1, &Frame{Src: macB, Dst: Broadcast, Size: 60}) // B @ 1
	// B moves to port 0 and sends to A: dst A is learned on ingress 0,
	// so forwarding hairpin-suppresses — but B must still move to 0.
	b.Input(0, &Frame{Src: macB, Dst: macA, Size: 100})
	if b.Lookup(macB) != 0 {
		t.Fatalf("B not re-learned on hairpin frame: Lookup = %d, want 0", b.Lookup(macB))
	}
}

// Property: wherever a station last transmitted from is where the
// bridge delivers its traffic — across any interleaving of moves.
func TestBridgeAlwaysTracksLastIngressProperty(t *testing.T) {
	f := func(moves []uint8) bool {
		const n = 4
		b := NewBridge()
		delivered := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			b.AddPort(PortFunc(func(f *Frame) { delivered[i]++ }))
		}
		mac := MakeMAC(3, 1)
		probe := MakeMAC(3, 2)
		b.Input(0, &Frame{Src: probe, Dst: Broadcast, Size: 60}) // prober @ 0
		last := -1
		for _, mv := range moves {
			port := int(mv) % n
			b.Input(port, &Frame{Src: mac, Dst: probe, Size: 100})
			last = port
			if b.Lookup(mac) != port {
				return false
			}
		}
		if last < 0 {
			return true
		}
		// A frame to the station goes to its last ingress port (unless
		// that is the prober's own port — hairpin).
		before := delivered[last]
		b.Input(0, &Frame{Src: probe, Dst: mac, Size: 100})
		if last == 0 {
			return delivered[0] == before
		}
		return delivered[last] == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after the bridge has learned a unicast MAC, a frame to it is
// delivered to exactly one port.
func TestBridgeSingleDeliveryProperty(t *testing.T) {
	f := func(srcIdx, dstIdx uint8, nPorts uint8) bool {
		n := int(nPorts%6) + 2
		b := NewBridge()
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			b.AddPort(PortFunc(func(f *Frame) { counts[i]++ }))
		}
		src := MakeMAC(1, int(srcIdx))
		dst := MakeMAC(2, int(dstIdx))
		inSrc, inDst := int(srcIdx)%n, int(dstIdx)%n
		b.Input(inDst, &Frame{Src: dst, Dst: src, Size: 64}) // learn dst
		for i := range counts {
			counts[i] = 0
		}
		b.Input(inSrc, &Frame{Src: src, Dst: dst, Size: 64})
		total := 0
		for _, c := range counts {
			total += c
		}
		if inSrc == inDst {
			return total == 0 // hairpin
		}
		return total == 1 && counts[inDst] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
