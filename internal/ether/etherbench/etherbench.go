// Package etherbench holds the frame-arena hot-path benchmark in plain
// func(*testing.B) form, shared by `go test -bench` and cmd/cdnabench —
// the same split internal/sim/simbench uses for the event core.
package etherbench

import (
	"testing"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// FrameArena measures one pooled frame's full lifecycle per op: arena
// Get, one pipe traversal (serialization + propagation events), and the
// sink's Release returning the frame to the free list. The contract is
// zero allocs/op in steady state — the arena's News counter stops
// growing once the free list reaches working depth, so every frame the
// model layer moves is a recycled one.
func FrameArena(b *testing.B) {
	eng := sim.New()
	a := ether.NewArena()
	p := ether.NewPipe(eng, 10.0, sim.Microsecond)
	p.Connect(ether.PortFunc(func(f *ether.Frame) { f.Release() }))
	src, dst := ether.MakeMAC(1, 0), ether.MakeMAC(2, 0)
	drain := func() { eng.Run(eng.Now() + 10*sim.Second) }
	// Prime the free list to working depth.
	for i := 0; i < 8; i++ {
		p.Send(a.Get(src, dst, 1514, nil))
	}
	drain()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Send(a.Get(src, dst, 1514, nil))
		drain()
	}
}
