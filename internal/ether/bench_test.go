package ether_test

import (
	"testing"

	"cdna/internal/ether/etherbench"
)

// The pooled-frame hot path, runnable via `go test -bench`;
// cmd/cdnabench runs the same function for the committed BENCH_sim.json
// row.
func BenchmarkFrameArena(b *testing.B) { etherbench.FrameArena(b) }
