package ether

import "testing"

// fakePayload implements PayloadRef with observable counters, standing
// in for a pooled transport segment.
type fakePayload struct {
	retains, releases int
	seamClone         bool
}

func (p *fakePayload) RetainPayload()  { p.retains++ }
func (p *fakePayload) ReleasePayload() { p.releases++ }
func (p *fakePayload) CloneUnshared() any {
	return &fakePayload{seamClone: true}
}

func TestArenaRecyclesFrames(t *testing.T) {
	a := NewArena()
	src, dst := MakeMAC(0, 1), MakeMAC(0, 2)

	f1 := a.Get(src, dst, 1514, nil)
	if !f1.Pooled() {
		t.Fatal("arena frame reports Pooled() == false")
	}
	if a.Gets != 1 || a.News != 1 || a.Puts != 0 {
		t.Fatalf("after first Get: Gets=%d News=%d Puts=%d", a.Gets, a.News, a.Puts)
	}
	f1.Release()
	if a.Puts != 1 || a.FreeLen() != 1 {
		t.Fatalf("after Release: Puts=%d FreeLen=%d", a.Puts, a.FreeLen())
	}

	f2 := a.Get(dst, src, 60, nil)
	if f2 != f1 {
		t.Fatal("second Get did not recycle the freed frame")
	}
	if a.News != 1 {
		t.Fatalf("recycled Get missed the free list: News=%d", a.News)
	}
	if f2.Src != dst || f2.Dst != src || f2.Size != 60 {
		t.Fatalf("recycled frame kept stale header: %+v", f2)
	}
	f2.Release()
}

func TestArenaRefCounting(t *testing.T) {
	a := NewArena()
	f := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 100, nil)
	f.Retain() // second holder (e.g. driver slot table)
	f.Release()
	if a.FreeLen() != 0 {
		t.Fatal("frame freed while a reference was still held")
	}
	f.Release()
	if a.FreeLen() != 1 {
		t.Fatal("last Release did not return the frame to the arena")
	}
}

func TestArenaReleasesPayloadOnFree(t *testing.T) {
	a := NewArena()
	p := &fakePayload{}
	f := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 100, p)
	f.Retain()
	f.Release()
	if p.releases != 0 {
		t.Fatal("payload released while the frame was still live")
	}
	f.Release()
	if p.releases != 1 {
		t.Fatalf("payload released %d times on frame free, want 1", p.releases)
	}
	if f.Payload != nil {
		t.Fatal("freed frame kept its payload pointer")
	}
}

func TestArenaUseAfterFreePanics(t *testing.T) {
	a := NewArena()
	f := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 100, nil)
	f.Release()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a released frame did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Retain", f.Retain)
	mustPanic("Release", f.Release)
}

func TestUnpooledFrameRefOpsAreNoops(t *testing.T) {
	f := &Frame{Src: MakeMAC(0, 1), Dst: MakeMAC(0, 2), Size: 100}
	if f.Pooled() {
		t.Fatal("literal frame reports Pooled() == true")
	}
	// Must not panic, must not mutate: the GC owns literal frames.
	f.Retain()
	f.Release()
	f.Release()
}

func TestHandleDetectsRecycle(t *testing.T) {
	a := NewArena()
	f := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 100, nil)
	h := f.Handle()
	if !h.Valid() || h.Frame() != f {
		t.Fatal("fresh handle invalid")
	}
	f.Release()
	if h.Valid() {
		t.Fatal("handle still valid after frame release")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Frame() on a stale handle did not panic")
		}
	}()
	_ = h.Frame()
}

func TestCloneForSeamUnpoolsFrameAndPayload(t *testing.T) {
	a := NewArena()
	p := &fakePayload{}
	f := a.Get(MakeMAC(0, 1), MakeMAC(0, 2), 1514, p)

	c := cloneForSeam(f)
	if c.Pooled() {
		t.Fatal("seam clone is pooled")
	}
	if c.Src != f.Src || c.Dst != f.Dst || c.Size != f.Size {
		t.Fatalf("seam clone header differs: %+v vs %+v", c, f)
	}
	cp, ok := c.Payload.(*fakePayload)
	if !ok || !cp.seamClone || cp == p {
		t.Fatal("pooled payload was not cloned unshared for the seam")
	}

	// Unpooled payloads are immutable and shared by pointer.
	f.Payload = "plain"
	if c2 := cloneForSeam(f); c2.Payload != any("plain") {
		t.Fatalf("unpooled payload not shared: %v", c2.Payload)
	}
	f.Payload = nil
	f.Release()
}
