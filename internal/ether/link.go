package ether

import (
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Port consumes frames delivered by a Pipe.
type Port interface {
	Receive(f *Frame)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(f *Frame)

// Receive implements Port.
func (fn PortFunc) Receive(f *Frame) { fn(f) }

// Pipe is one direction of a link: it serializes frames at the line rate
// and delivers them to the destination port after a propagation delay.
// Senders should pace themselves with Backlog/NextFree; the pipe itself
// never drops.
type Pipe struct {
	eng        *sim.Engine
	bytesPerNs float64
	propDelay  sim.Time
	dst        Port
	busyUntil  sim.Time

	// Frames in flight, delivered FIFO by deliverFn: serialization times
	// are nondecreasing and propagation is constant, so wire order is
	// issue order and the per-frame delivery closure reduces to one
	// bound callback plus a queue.
	inflight  sim.FIFO[*Frame]
	deliverFn sim.Fn

	// down models a failed link (fault injection): while set, Send
	// discards the frame at the transmitter. Frames already serialized
	// onto the wire still deliver — their bits left the NIC before the
	// failure.
	down bool

	// Keyed delivery sequencing and cross-engine seam state (cross.go).
	// Fabric pipes of multi-host machines sequence deliveries by an
	// explicit key so ordering is identical at any shard count; pipes
	// whose receiver lives on another engine additionally buffer
	// deliveries in an outbox until a round barrier.
	keyed    bool
	keyBase  uint64
	sendSeq  uint64
	xEng     *sim.Engine      // destination engine; nil for same-engine pipes
	outbox   []crossMsg       // sends awaiting barrier injection (seams only)
	arrivals sim.FIFO[*Frame] // flushed frames whose deliveries are queued on xEng

	Frames stats.Counter
	Bytes  stats.Counter
	// Dropped counts frames discarded because the link was down.
	Dropped stats.Counter
}

// NewPipe creates a unidirectional pipe at rate gbps.
func NewPipe(eng *sim.Engine, gbps float64, propDelay sim.Time) *Pipe {
	p := &Pipe{eng: eng, bytesPerNs: GbpsToBytesPerNs(gbps), propDelay: propDelay}
	p.deliverFn = eng.Bind(p.deliver)
	return p
}

// Connect attaches the receiving port.
func (p *Pipe) Connect(dst Port) { p.dst = dst }

// Send serializes the frame onto the wire. Delivery happens when the
// last bit (plus propagation) arrives.
func (p *Pipe) Send(f *Frame) {
	if p.down {
		p.Dropped.Inc()
		f.Release()
		return
	}
	start := p.eng.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	txTime := sim.Time(float64(f.WireBytes()) / p.bytesPerNs)
	p.busyUntil = start + txTime
	p.Frames.Inc()
	p.Bytes.Add(uint64(f.WireBytes()))
	deliverAt := p.busyUntil + p.propDelay
	if p.keyed {
		key := p.keyBase | p.sendSeq
		p.sendSeq++
		if p.xEng != nil {
			// Seam crossing: the destination shard must never touch this
			// shard's arena or pools, so hand it an unpooled value-copy
			// and drop the wire's reference to the original here, on the
			// sending shard.
			p.outbox = append(p.outbox, crossMsg{at: deliverAt, key: key, f: cloneForSeam(f)})
			f.Release()
			return
		}
		p.inflight.Push(f)
		p.eng.AtFnKeyed(deliverAt, "ether.deliver", p.deliverFn, key)
		return
	}
	p.inflight.Push(f)
	p.eng.AtFn(deliverAt, "ether.deliver", p.deliverFn)
}

func (p *Pipe) deliver() {
	var f *Frame
	if p.xEng != nil {
		f = p.arrivals.Pop()
	} else {
		f = p.inflight.Pop()
	}
	if p.dst != nil {
		p.dst.Receive(f)
	} else {
		f.Release()
	}
}

// Backlog returns how long until the wire is free.
func (p *Pipe) Backlog() sim.Time {
	if p.busyUntil <= p.eng.Now() {
		return 0
	}
	return p.busyUntil - p.eng.Now()
}

// NextFree returns the absolute time the wire frees up (never in the
// past).
func (p *Pipe) NextFree() sim.Time {
	if p.busyUntil < p.eng.Now() {
		return p.eng.Now()
	}
	return p.busyUntil
}

// SetDown fails or restores the link direction. A down pipe silently
// discards everything Send hands it, like a cable with its far end
// unplugged.
func (p *Pipe) SetDown(down bool) { p.down = down }

// Down reports whether the pipe is failed.
func (p *Pipe) Down() bool { return p.down }

// StartWindow resets windowed counters.
func (p *Pipe) StartWindow() {
	p.Frames.StartWindow()
	p.Bytes.StartWindow()
	p.Dropped.StartWindow()
}

// Duplex is a full-duplex link: A→B and B→A pipes.
type Duplex struct {
	AtoB, BtoA *Pipe
}

// NewDuplex builds a full-duplex link at rate gbps.
func NewDuplex(eng *sim.Engine, gbps float64, propDelay sim.Time) *Duplex {
	return &Duplex{
		AtoB: NewPipe(eng, gbps, propDelay),
		BtoA: NewPipe(eng, gbps, propDelay),
	}
}
