package snap

import (
	"strings"
	"testing"
)

type payload struct {
	Name  string
	Ticks []uint64
}

func image(t *testing.T, h Header, state any) []byte {
	t.Helper()
	b, err := Encode(h, state)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := payload{Name: "m", Ticks: []uint64{1, 2, 3}}
	b := image(t, Header{Config: "cfg", Binds: 4, Timers: 2}, in)

	var out payload
	h, err := Decode(b, &out)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Config != "cfg" || h.Binds != 4 || h.Timers != 2 {
		t.Fatalf("header = %+v", h)
	}
	if out.Name != in.Name || len(out.Ticks) != 3 || out.Ticks[2] != 3 {
		t.Fatalf("state = %+v", out)
	}

	// Encode stamps the version even when the caller sets a bogus one.
	b2 := image(t, Header{Version: 99, Config: "cfg"}, in)
	h2, err := DecodeHeader(b2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Version != Version {
		t.Fatalf("stamped version = %d, want %d", h2.Version, Version)
	}
}

func TestDecodeHeaderOnly(t *testing.T) {
	b := image(t, Header{Config: "x", Binds: 1, Timers: 1}, payload{Name: "y"})
	h, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Config != "x" {
		t.Fatalf("header = %+v", h)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var out payload
	if _, err := Decode([]byte("definitely not a snapshot"), &out); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("garbage decode err = %v", err)
	}
	if _, err := Decode([]byte("CD"), &out); err == nil {
		t.Fatal("short input decoded")
	}
	if _, err := DecodeHeader([]byte("CDNASNAP")); err == nil {
		t.Fatal("truncated header decoded")
	}
	// Valid header, truncated state.
	b := image(t, Header{Config: "x"}, payload{Name: "y", Ticks: make([]uint64, 64)})
	if _, err := Decode(b[:len(b)-8], &out); err == nil {
		t.Fatal("truncated state decoded")
	}
}

func TestEncodeRejectsUnencodable(t *testing.T) {
	if _, err := Encode(Header{Config: "x"}, func() {}); err == nil {
		t.Fatal("encoded a func value")
	}
}

func TestCompatible(t *testing.T) {
	h := Header{Version: Version, Config: "a", Binds: 3, Timers: 5}
	if err := h.Compatible(3, 5, "a"); err != nil {
		t.Fatal(err)
	}
	if err := h.Compatible(3, 5, "other", "a"); err != nil {
		t.Fatalf("multi-tag accept: %v", err)
	}
	if err := h.Compatible(3, 5, "other"); err == nil {
		t.Fatal("accepted a foreign config tag")
	}
	if err := h.Compatible(4, 5, "a"); err == nil {
		t.Fatal("accepted a bind-count mismatch")
	}
	if err := h.Compatible(3, 6, "a"); err == nil {
		t.Fatal("accepted a timer-count mismatch")
	}
	old := h
	old.Version = Version + 1
	if err := old.Compatible(3, 5, "a"); err == nil {
		t.Fatal("accepted a future format version")
	}
}
