// Package snap is the versioned checkpoint envelope for simulator
// snapshots. A snapshot is a header — format version, the producing
// configuration's name, and the engine's registry fingerprint — followed
// by one gob-encoded machine-state value. The header travels first so a
// restorer can reject a stale format or a structurally different
// machine before decoding megabytes of state.
//
// The envelope is deliberately ignorant of what the state value is: the
// machine layer (internal/bench) owns the walk over simulator
// components; this package owns versioning and identity. Restores are
// only defined into a machine rebuilt by the same deterministic
// construction — the registry fingerprint (bind and timer counts) is
// the cheap proxy for that, and the engine's own Restore re-verifies it
// against the live registries.
package snap

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Version is the snapshot format version. Bump it whenever any layer's
// state image changes shape; old images are then refused instead of
// being mis-decoded.
const Version = 1

// magic guards against feeding arbitrary files to Decode.
const magic = "CDNASNAP"

// Header identifies a snapshot.
type Header struct {
	Version int
	// Config is the producing configuration's name tag. Restorers decide
	// what tags they accept (a warm-start fork accepts its fault-zeroed
	// base; a round-trip restore demands an exact match).
	Config string
	// Binds and Timers are the producing engine's registry sizes — the
	// fingerprint of the deterministic construction.
	Binds, Timers int
}

// Compatible reports whether the header can restore into a machine with
// the given fingerprint, accepting any of the listed config tags.
func (h Header) Compatible(binds, timers int, tags ...string) error {
	if h.Version != Version {
		return fmt.Errorf("snap: snapshot is format v%d, this build reads v%d", h.Version, Version)
	}
	ok := false
	for _, t := range tags {
		if h.Config == t {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("snap: snapshot of %q does not match machine %v", h.Config, tags)
	}
	if h.Binds != binds || h.Timers != timers {
		return fmt.Errorf("snap: registry fingerprint mismatch: snapshot has %d binds/%d timers, machine has %d/%d",
			h.Binds, h.Timers, binds, timers)
	}
	return nil
}

// Encode serializes a header and a state value into one image. The
// header's Version field is stamped here; callers fill the rest.
func Encode(h Header, state any) ([]byte, error) {
	h.Version = Version
	var buf bytes.Buffer
	buf.WriteString(magic)
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(h); err != nil {
		return nil, fmt.Errorf("snap: encoding header: %w", err)
	}
	if err := enc.Encode(state); err != nil {
		return nil, fmt.Errorf("snap: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode reads an image's header and decodes its state into the given
// pointer, which must point at the same concrete type Encode was given.
// The header is returned for the caller's compatibility check — run it
// with DecodeHeader first when the state decode itself is expensive.
func Decode(b []byte, state any) (Header, error) {
	h, dec, err := decodeHeader(b)
	if err != nil {
		return Header{}, err
	}
	if err := dec.Decode(state); err != nil {
		return Header{}, fmt.Errorf("snap: decoding state: %w", err)
	}
	return h, nil
}

// DecodeHeader reads only the image's header.
func DecodeHeader(b []byte) (Header, error) {
	h, _, err := decodeHeader(b)
	return h, err
}

func decodeHeader(b []byte) (Header, *gob.Decoder, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return Header{}, nil, fmt.Errorf("snap: not a snapshot image (bad magic)")
	}
	dec := gob.NewDecoder(bytes.NewReader(b[len(magic):]))
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Header{}, nil, fmt.Errorf("snap: decoding header: %w", err)
	}
	return h, dec, nil
}
