// Package store is a content-addressed, crash-safe result store: a
// directory of immutable entries keyed by hex digests. It is the
// durable half of the campaign cache — the determinism contract makes
// every experiment result a pure function of its configuration (plus
// the model build), so a result computed once can be served forever
// under the canonical hash of that identity.
//
// The robustness contract:
//
//   - Writes are atomic and durable: an entry is staged in a temp file,
//     fsynced, and renamed into place, so a crash at any instant leaves
//     either the complete entry or nothing — never a torn file at the
//     final path.
//   - Every entry carries a SHA-256 checksum of its payload, verified on
//     every read. A corrupt, truncated, or foreign file is treated as a
//     miss (and counted), never served: the caller recomputes and the
//     next Put repairs the entry.
//   - Readers and writers are safe for concurrent use from any number of
//     goroutines (and, thanks to the atomic rename, from concurrent
//     processes sharing the directory — last writer wins with identical
//     bytes under a content-addressed key).
//
// The package is deliberately ignorant of what payloads mean;
// internal/campaign owns the experiment-result encoding and the key
// derivation (config hash + engine registry fingerprint).
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// entry file layout: magic, payload length, payload checksum, payload.
const (
	magic      = "CDNARST1"
	headerSize = len(magic) + 8 + sha256.Size
)

// Store is a content-addressed entry store rooted at one directory.
// The zero value is not usable; call Open.
type Store struct {
	dir string

	hits, misses, corrupt, puts atomic.Uint64
}

// Stats is a point-in-time snapshot of a store's traffic counters.
// Corrupt counts reads that found a damaged entry (also counted as
// misses — corruption is served as a miss, never as data).
type Stats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Corrupt uint64 `json:"corrupt"`
	Puts    uint64 `json:"puts"`
}

// Open opens (creating if necessary) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Key returns the canonical hex key for a sequence of identity parts:
// SHA-256 over the parts with length framing, so distinct part splits
// can never collide ("ab","c" vs "a","bc").
func Key(parts ...[]byte) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Path returns the entry file path for a key (whether or not the entry
// exists). Exposed so corruption tests can damage entries in place.
func (s *Store) Path(key string) string {
	// Two-level fan-out keeps directories small under large campaigns.
	if len(key) < 3 {
		return filepath.Join(s.dir, "objects", key)
	}
	return filepath.Join(s.dir, "objects", key[:2], key[2:])
}

// Get returns the payload stored under key. The boolean is false on a
// miss — absent entry, or any entry whose magic, length, or checksum
// does not verify (counted in Stats.Corrupt). A damaged entry is never
// returned: the caller recomputes, and the eventual Put overwrites the
// damage atomically.
func (s *Store) Get(key string) ([]byte, bool) {
	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, ok := decode(b)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// decode validates an entry file and extracts its payload.
func decode(b []byte) ([]byte, bool) {
	if len(b) < headerSize || !bytes.Equal(b[:len(magic)], []byte(magic)) {
		return nil, false
	}
	n := binary.BigEndian.Uint64(b[len(magic) : len(magic)+8])
	payload := b[headerSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(b[len(magic)+8:headerSize], sum[:]) {
		return nil, false
	}
	return payload, true
}

// Put stores payload under key, atomically and durably: the entry is
// written to a temp file, fsynced, and renamed over the final path, so
// concurrent writers and crashes can never leave a torn entry where Get
// will find it.
func (s *Store) Put(key string, payload []byte) error {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic)
	binary.BigEndian.PutUint64(buf[len(magic):], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[len(magic)+8:], sum[:])
	copy(buf[headerSize:], payload)

	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), key+".*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing entry: %w", err)
	}
	final := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing entry: %w", err)
	}
	// Make the rename itself durable. A failure here degrades crash
	// durability, not correctness (the entry is still atomic), so it is
	// deliberately not fatal.
	if d, err := os.Open(filepath.Dir(final)); err == nil {
		d.Sync()
		d.Close()
	}
	s.puts.Add(1)
	return nil
}

// Len walks the store and returns the number of entries on disk.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(s.dir, "objects"), func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			n++
		}
		return nil
	})
	return n, err
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Puts:    s.puts.Load(),
	}
}
