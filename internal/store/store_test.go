package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("config"), []byte("fingerprint"))
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	payload := []byte(`{"mbps": 1867.25}`)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 || st.Puts != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 0 corrupt, 1 put", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestKeyFraming(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("length framing failed: distinct part splits collide")
	}
	if Key([]byte("ab")) != Key([]byte("ab")) {
		t.Fatal("key is not deterministic")
	}
}

// TestCorruptionIsAMiss is the robustness contract: every way an entry
// can be damaged on disk — payload bit flips, header bit flips,
// truncation at any boundary, wholesale replacement — must read as a
// miss, never as data; and a subsequent Put must repair the entry so it
// round-trips again.
func TestCorruptionIsAMiss(t *testing.T) {
	payload := []byte(`{"name":"cdna/ricenic/1g/2nic/tx","mbps":1867}`)
	damage := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"payload bit flip", func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }},
		{"checksum bit flip", func(b []byte) []byte { b[len(magic)+8] ^= 0x01; return b }},
		{"magic bit flip", func(b []byte) []byte { b[0] ^= 0x01; return b }},
		{"length field corrupted", func(b []byte) []byte { b[len(magic)+7] ^= 0xff; return b }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-1] }},
		{"truncated to header", func(b []byte) []byte { return b[:headerSize] }},
		{"truncated mid-header", func(b []byte) []byte { return b[:headerSize/2] }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"foreign file", func(b []byte) []byte { return []byte("not a store entry at all") }},
		{"appended garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := Key([]byte(d.name))
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(s.Path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.Path(key), d.mut(append([]byte(nil), raw...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("damaged entry served as data: %q", got)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d; want 1", st.Corrupt)
			}
			// The repair path: recompute (here: just re-Put) and the entry
			// round-trips again.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, payload) {
				t.Fatalf("repaired entry Get = %q, %v; want %q, true", got, ok, payload)
			}
		})
	}
}

// TestNoTornFinalFile: the staging directory may hold leftovers after a
// crash, but nothing ever appears at a final entry path until it is
// complete — Put goes through tmp + rename only.
func TestNoTornFinalFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("x"))
	if err := s.Put(key, bytes.Repeat([]byte("y"), 1<<16)); err != nil {
		t.Fatal(err)
	}
	// The staging dir is empty after a successful Put (no leaked temps).
	ents, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("tmp dir holds %d leftover files after Put", len(ents))
	}
	// A simulated crash leftover in tmp/ is invisible to Get.
	if err := os.WriteFile(filepath.Join(dir, "tmp", "partial.123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Key([]byte("partial"))); ok {
		t.Fatal("staging leftover served as an entry")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				// Content-addressed: every writer of a key writes the same
				// bytes, the concurrent-process reality the atomic rename
				// serves.
				key := Key([]byte{byte(i)})
				payload := []byte(fmt.Sprintf("payload-%d", i))
				if err := s.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				got, ok := s.Get(key)
				if !ok || !bytes.Equal(got, payload) {
					t.Errorf("worker %d: Get(%d) = %q, %v", w, i, got, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := s.Len(); err != nil || n != 32 {
		t.Fatalf("Len = %d, %v; want 32", n, err)
	}
}

func TestOpenExisting(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("persist"))
	if err := s1.Put(key, []byte("survives reopen")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "survives reopen" {
		t.Fatalf("reopened store Get = %q, %v", got, ok)
	}
}
