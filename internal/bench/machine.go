package bench

import (
	"fmt"

	"cdna/internal/backend"
	"cdna/internal/bus"
	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/guest"
	"cdna/internal/intelnic"
	"cdna/internal/mem"
	"cdna/internal/ricenic"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/topo"
	"cdna/internal/transport"
	"cdna/internal/workload"
	"cdna/internal/xen"
)

// Mode selects the I/O virtualization architecture.
type Mode int

// Machine modes.
const (
	ModeNative Mode = iota // no VMM: host OS drives the NICs (Table 1)
	ModeXen                // Xen software I/O virtualization (§2)
	ModeCDNA               // concurrent direct network access (§3)
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "Native"
	case ModeXen:
		return "Xen"
	case ModeCDNA:
		return "CDNA"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// NICKind selects the device model.
type NICKind int

// NIC kinds.
const (
	NICIntel NICKind = iota // conventional Intel Pro/1000-style NIC
	NICRice                 // CDNA-capable RiceNIC
)

func (k NICKind) String() string {
	if k == NICIntel {
		return "Intel"
	}
	return "RiceNIC"
}

// Direction selects the traffic direction under test.
type Direction int

// Traffic directions.
const (
	Tx Direction = iota // guests transmit to the peer
	Rx                  // guests receive from the peer
	// Both runs full-duplex traffic — an extension beyond the paper's
	// unidirectional evaluation (each guest gets a transmit and a
	// receive connection set per NIC).
	Both
)

func (d Direction) String() string {
	switch d {
	case Tx:
		return "transmit"
	case Rx:
		return "receive"
	case Both:
		return "duplex"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Host is one physical machine on the fabric: its CPU, memory,
// hypervisor (nil in native mode), NICs, guest stacks and drivers. The
// classic single-host experiment is one Host plus the CPU-less peer;
// multi-host configurations (Config.Hosts > 1) assemble N of these onto
// a simulated top-of-rack switch (internal/topo).
type Host struct {
	Index int
	CPU   *cpu.CPU
	Mem   *mem.Memory
	Hyp   *xen.Hypervisor // nil in native mode

	IntelNICs []*intelnic.NIC
	RiceNICs  []*ricenic.NIC
	CtxMgrs   []*core.ContextManager // per RiceNIC
	Drivers   []*guest.CDNADriver    // CDNA drivers on this host
	Stacks    []*guest.Stack         // one per guest (native: the host OS)

	// Checkpoint rosters, in creation order: every bus, access-link pipe
	// (both directions, NIC order), netback and native driver built into
	// the host. The snapshot walk (snapshot.go) iterates these; identity
	// is the index, which deterministic construction reproduces.
	Buses      []*bus.Bus
	Links      []*ether.Pipe
	Netbacks   []*backend.Netback
	NativeDrvs []*guest.NativeDriver

	guestDoms []*xen.Domain
	dom0      *xen.Domain

	// devs is the wiring roster: devs[guest][nic] is the guest-visible
	// network device, the attachment point for benchmark connections.
	devs [][]guest.NetDevice
}

// Machine is an assembled testbed: the system under test (one host plus
// the external peer, or a whole rack on a switched fabric), its NICs,
// and the benchmark connections. The flat NIC/driver slices aggregate
// over all hosts in host order, so single-host callers are unaffected
// by the multi-host extension.
type Machine struct {
	Eng   *sim.Engine
	CPU   *cpu.CPU        // host 0's CPU
	Mem   *mem.Memory     // host 0's memory
	Hyp   *xen.Hypervisor // host 0's hypervisor; nil in native mode
	Conns transport.Group
	// Work drives traffic over the connections according to the
	// configuration's workload spec: one generator per engine shard
	// (classic machines run a fleet of one).
	Work *workload.Fleet

	// Hosts are the machines under test, in index order. Single-host
	// configurations have exactly one.
	Hosts []*Host
	// Fabric is the switch fabric connecting the hosts — the classic
	// single ToR or a composed leaf-spine/fat-tree (cfg.Fabric); nil for
	// the classic single-host topology (whose far end is the peer).
	Fabric *topo.Fabric

	IntelNICs []*intelnic.NIC
	RiceNICs  []*ricenic.NIC
	CtxMgrs   []*core.ContextManager // per RiceNIC
	Drivers   []*guest.CDNADriver    // all CDNA drivers (ordered by host, guest, NIC)

	// Tracer is attached by RunTraced (cdnasim -trace).
	Tracer *sim.Tracer

	// Shard runtime (shards.go). engines holds the per-shard engines in
	// shard-index order — Eng aliases engines[0]; classic machines have
	// exactly one. shardOf maps host index to shard (nil for
	// single-host), seams are the cross-shard pipe directions, and solos
	// are pending fault instants the coordinator must serialize.
	engines []*sim.Engine
	shardOf []int
	seams   []seam
	solos   []sim.Time

	// arenas/segPools recycle frames and transport segments, one pair
	// per engine shard (index = shard): every stack, peer and
	// connection endpoint draws from its own shard's pool, and seam
	// pipes clone anything that crosses shards, so pooled objects never
	// leave their shard.
	arenas   []*ether.Arena
	segPools []*transport.SegPool

	cfg    Config
	faults *faultInjector
}

// hostEnv is the assembly context a per-mode host builder runs in: it
// hides whether the host's links terminate at the CPU-less peer (the
// classic topology) or at a switch port (multi-host), and how MACs and
// domain names are made unique across hosts. One builder path serves
// both fabrics.
type hostEnv struct {
	eng *sim.Engine
	h   *Host

	// newLink allocates the host's next access link and returns
	// (nicOut, hostIn): the pipe the host NIC transmits into, and the
	// pipe that delivers fabric frames to the host (the builder connects
	// it to the NIC's Receive).
	newLink func() (*ether.Pipe, *ether.Pipe)

	// wire attaches benchmark connections for the guest stack's device
	// on NIC nicIdx. nil when wiring is deferred (multi-host patterns
	// wire after every host exists).
	wire func(st *guest.Stack, guestIdx, nicIdx int, dev guest.NetDevice) error

	// name qualifies a domain name with the host identity (identity for
	// single-host, "hN." prefixed for multi-host).
	name func(string) string

	// macIndex folds the host index into a MakeMAC index so device
	// addresses stay unique across the fabric (identity for
	// single-host).
	macIndex func(int) int
}

// peer is the traffic generator/sink machine on the far end of every
// link in the single-host topology. The paper tuned it to never be the
// bottleneck; here it has no CPU model at all.
type peer struct {
	outs  []*ether.Pipe
	macs  []ether.MAC
	arena *ether.Arena
}

func (p *peer) port(i int) ether.Port {
	return ether.PortFunc(func(f *ether.Frame) {
		// Dispatch while the frame still owns its payload reference,
		// then drop the frame (the peer has no CPU and no queues).
		if seg, ok := f.Payload.(*transport.Segment); ok {
			transport.Dispatch(seg)
		}
		f.Release()
	})
}

// sender returns a transport transmit function pushing frames onto link
// i toward dst.
func (p *peer) sender(i int, dst ether.MAC) func(*transport.Segment) {
	out := p.outs[i]
	src := p.macs[i]
	return func(seg *transport.Segment) {
		if p.arena != nil {
			out.Send(p.arena.Get(src, dst, seg.FrameBytes(), seg))
			return
		}
		out.Send(&ether.Frame{Src: src, Dst: dst, Size: seg.FrameBytes(), Payload: seg})
	}
}

// makeRings allocates a tx/rx descriptor ring pair in the domain's
// memory.
func makeRings(m *mem.Memory, dom mem.DomID, name string) (*ring.Ring, *ring.Ring, error) {
	pages := (guest.RingEntries*ring.DefaultLayout.Size + mem.PageSize - 1) / mem.PageSize
	tx, err := ring.New(name+".tx", ring.DefaultLayout, m.Alloc(dom, pages)[0].Base(), guest.RingEntries)
	if err != nil {
		return nil, nil, err
	}
	rx, err := ring.New(name+".rx", ring.DefaultLayout, m.Alloc(dom, pages)[0].Base(), guest.RingEntries)
	if err != nil {
		return nil, nil, err
	}
	return tx, rx, nil
}

// startBackground models housekeeping daemons in a domain: one
// persistent timer re-armed in place per tick.
func startBackground(eng *sim.Engine, d *cpu.Domain, period, kernel, user sim.Time) {
	var tm *sim.Timer
	tm = eng.NewTimer("bg", func() {
		d.Exec(cpu.CatKernel, kernel, "bg.kernel", sim.Fn{})
		d.Exec(cpu.CatUser, user, "bg.user", sim.Fn{})
		tm.ArmAfter(period)
	})
	tm.ArmAfter(period)
}

// identity is the single-host hostEnv name/macIndex mapping.
func identity(s string) string { return s }
func identityIdx(i int) int    { return i }

// Build assembles a machine for the configuration: the classic
// host-plus-peer testbed, or — when cfg.Hosts > 1 — a rack of hosts on
// a switched fabric (cluster.go).
func Build(cfg Config) (*Machine, error) {
	if cfg.Hosts > 1 {
		return buildCluster(cfg)
	}
	cal := cfg.Cal
	eng := sim.NewWithResolution(cal.EventResolution())
	h := &Host{Index: 0, CPU: cpu.New(eng, cal.CPU), Mem: mem.New()}
	m := &Machine{Eng: eng, CPU: h.CPU, Mem: h.Mem, Hosts: []*Host{h}}
	// The workload generator drives whatever connections the topology
	// builders wire below; direction decides which RPC message is
	// payload-heavy.
	spec := cfg.Workload.Resolved(cfg.Dir == Tx || cfg.Dir == Both, cfg.Dir == Rx || cfg.Dir == Both)
	m.engines = []*sim.Engine{eng}
	var err error
	m.Work, err = workload.NewFleet(m.engines, spec)
	if err != nil {
		return nil, err
	}
	m.arenas = []*ether.Arena{ether.NewArena()}
	m.segPools = []*transport.SegPool{transport.NewSegPool()}
	pr := &peer{arena: m.arenas[0]}

	// Pre-size every builder-filled slice: the topology's final counts
	// are implied by the configuration, so the assembly loops below
	// never re-grow a backing array. (Conns gets an upper bound: one
	// connection per slot in the configured direction, or a pair for
	// duplex and request/response wiring.)
	stacks := cfg.Guests
	if cfg.Mode == ModeNative {
		stacks = 1
	}
	m.Conns.Grow(stacks * cfg.NICs * cfg.ConnsPerGuestPerNIC * 2)
	h.IntelNICs = make([]*intelnic.NIC, 0, cfg.NICs)
	h.RiceNICs = make([]*ricenic.NIC, 0, cfg.NICs)
	h.CtxMgrs = make([]*core.ContextManager, 0, cfg.NICs)
	h.Drivers = make([]*guest.CDNADriver, 0, stacks*cfg.NICs)
	pr.outs = make([]*ether.Pipe, 0, cfg.NICs)
	pr.macs = make([]ether.MAC, 0, cfg.NICs)

	env := hostEnv{
		eng: eng,
		h:   h,
		// Links and peer ports, one per NIC.
		newLink: func() (*ether.Pipe, *ether.Pipe) {
			l := ether.NewDuplex(eng, 1.0, 500*sim.Nanosecond)
			i := len(pr.outs)
			pr.outs = append(pr.outs, l.BtoA)
			pr.macs = append(pr.macs, ether.MakeMAC(200, i))
			l.AtoB.Connect(pr.port(i))
			h.Links = append(h.Links, l.AtoB, l.BtoA)
			return l.AtoB, l.BtoA // (NIC out, fabric-to-host)
		},
		wire: func(st *guest.Stack, guestIdx, nicIdx int, dev guest.NetDevice) error {
			return m.wireConns(cfg, pr, st, guestIdx, nicIdx, dev)
		},
		name:     identity,
		macIndex: identityIdx,
	}

	if err := buildHost(cfg, env); err != nil {
		return nil, err
	}
	for _, st := range h.Stacks {
		st.Arena = m.arenas[0]
	}
	m.adoptHost(h)
	m.cfg = cfg
	m.faults = newFaultInjector(m)
	return m, nil
}

// buildHost assembles one host in the environment's fabric according to
// the configured I/O architecture.
func buildHost(cfg Config, env hostEnv) error {
	switch cfg.Mode {
	case ModeNative:
		return buildNative(cfg, env)
	case ModeXen:
		return buildXen(cfg, env)
	case ModeCDNA:
		return buildCDNA(cfg, env)
	default:
		return fmt.Errorf("bench: unknown mode %v", cfg.Mode)
	}
}

// adoptHost folds a built host's components into the machine's
// aggregate views (and the host-0 convenience aliases).
func (m *Machine) adoptHost(h *Host) {
	if h.Index == 0 {
		m.Hyp = h.Hyp
	}
	m.IntelNICs = append(m.IntelNICs, h.IntelNICs...)
	m.RiceNICs = append(m.RiceNICs, h.RiceNICs...)
	m.CtxMgrs = append(m.CtxMgrs, h.CtxMgrs...)
	m.Drivers = append(m.Drivers, h.Drivers...)
}

// wireConns creates the benchmark connection slots between a guest
// stack's device for NIC i and the peer's port i, registering each slot
// with the machine's workload generator. Bulk/churn/burst slots are one
// connection in the configured direction (Both = one each way);
// request/response slots are a forward-request/reverse-response pair.
func (m *Machine) wireConns(cfg Config, pr *peer, st *guest.Stack, guestIdx, nicIdx int, dev guest.NetDevice) error {
	local := transport.Addr{Host: 0, Guest: guestIdx, Port: nicIdx}
	remote := transport.Addr{Host: transport.PeerHost, Guest: transport.PeerHost, Port: nicIdx}
	wire := func(dir Direction) *transport.Conn {
		conn := transport.NewConn(m.Eng, len(m.Conns.Conns), transport.DefaultSegSize, cfg.Window)
		conn.RTO = 200 * sim.Millisecond
		conn.SetPools(m.segPools[0], m.segPools[0])
		if dir == Tx {
			conn.Local, conn.Remote = local, remote
			conn.AttachSender(st.Sender(dev, pr.macs[nicIdx]))
			conn.AttachReceiver(pr.sender(nicIdx, dev.MAC()))
		} else {
			conn.Local, conn.Remote = remote, local
			conn.AttachSender(pr.sender(nicIdx, dev.MAC()))
			conn.AttachReceiver(st.Sender(dev, pr.macs[nicIdx]))
		}
		m.Conns.Add(conn)
		return conn
	}
	for c := 0; c < cfg.ConnsPerGuestPerNIC; c++ {
		if m.Work.NeedsReverse() {
			// RPC: the guest is always the client — requests flow
			// guest→peer, responses flow back. Direction only selects
			// which message is payload-heavy (spec resolution).
			ep := workload.Endpoint{
				Fwd: wire(Tx), Rev: wire(Rx),
				Local: local, Remote: remote,
				OnFlowSetup: st.ChargeFlowSetup, OnFlowTeardown: st.ChargeFlowTeardown,
			}
			if err := m.Work.AddOn(m.Eng, ep); err != nil {
				return err
			}
			continue
		}
		dirs := []Direction{cfg.Dir}
		if cfg.Dir == Both {
			dirs = []Direction{Tx, Rx}
		}
		for _, dir := range dirs {
			ep := workload.Endpoint{
				Fwd:         wire(dir),
				Local:       local,
				Remote:      remote,
				OnFlowSetup: st.ChargeFlowSetup, OnFlowTeardown: st.ChargeFlowTeardown,
			}
			if err := m.Work.AddOn(m.Eng, ep); err != nil {
				return err
			}
		}
	}
	return nil
}

// recordDev files a guest device into the host's wiring roster.
func (h *Host) recordDev(guestIdx int, dev guest.NetDevice) {
	for len(h.devs) <= guestIdx {
		h.devs = append(h.devs, nil)
	}
	h.devs[guestIdx] = append(h.devs[guestIdx], dev)
}

func buildNative(cfg Config, env hostEnv) error {
	cal := cfg.Cal
	h := env.h
	hostDom := h.CPU.NewDomain(env.name("host"), cpu.KindGuest)
	const hostID = mem.Dom0 + 1
	st := guest.NewStack(hostDom, cal.StackNative)
	h.Stacks = []*guest.Stack{st}
	for i := 0; i < cfg.NICs; i++ {
		nicOut, hostIn := env.newLink()
		b := bus.New(env.eng, cal.Bus)
		h.Buses = append(h.Buses, b)
		n := intelnic.New(env.eng, b, h.Mem, nicOut, cal.Intel, ether.MakeMAC(1, env.macIndex(i)))
		hostIn.Connect(ether.PortFunc(n.Receive))
		drv, err := guest.NewNativeDriver(hostDom, hostID, h.Mem, n, cal.NativeDrv)
		if err != nil {
			return err
		}
		// Native: the NIC interrupts the host OS directly.
		n.SetIRQ(drv.OnInterrupt)
		drv.Start()
		st.AttachDevice(drv)
		h.IntelNICs = append(h.IntelNICs, n)
		h.NativeDrvs = append(h.NativeDrvs, drv)
		h.recordDev(0, drv)
		if env.wire != nil {
			if err := env.wire(st, 0, i, drv); err != nil {
				return err
			}
		}
	}
	return nil
}

func buildXen(cfg Config, env hostEnv) error {
	cal := cfg.Cal
	h := env.h
	// Xen trusts the driver domain (§2.2): the only rings on a CDNA NIC
	// in this topology belong to dom0 and are not validated.
	hyp := xen.New(env.eng, h.CPU, h.Mem, cal.Hyp, core.ModeOff)
	h.Hyp = hyp
	dom0 := hyp.NewDomain(env.name("dom0"), cpu.KindDriver)
	h.dom0 = dom0
	startBackground(env.eng, dom0.VCPU, cal.BackgroundPeriod, cal.BackgroundKernel, cal.BackgroundUser)

	guests := make([]*xen.Domain, cfg.Guests)
	stacks := make([]*guest.Stack, cfg.Guests)
	stackCosts := cal.StackTSO
	if cfg.NIC == NICRice {
		stackCosts = cal.StackNoTSO // RiceNIC lacks TSO (§5.1)
	}
	for g := range guests {
		guests[g] = hyp.NewDomain(env.name(fmt.Sprintf("guest%d", g+1)), cpu.KindGuest)
		stacks[g] = guest.NewStack(guests[g].VCPU, stackCosts)
	}
	h.guestDoms = guests
	h.Stacks = stacks

	for i := 0; i < cfg.NICs; i++ {
		nicOut, hostIn := env.newLink()
		b := bus.New(env.eng, cal.Bus)
		h.Buses = append(h.Buses, b)

		// Physical device owned by the driver domain.
		var phys guest.NetDevice
		switch cfg.NIC {
		case NICIntel:
			n := intelnic.New(env.eng, b, h.Mem, nicOut, cal.Intel, ether.MakeMAC(1, env.macIndex(i)))
			hostIn.Connect(ether.PortFunc(n.Receive))
			drv, err := guest.NewNativeDriver(dom0.VCPU, dom0.ID, h.Mem, n, cal.NativeDrv)
			if err != nil {
				return err
			}
			ch := hyp.NewChannel(dom0, "nic", drv.OnInterrupt)
			irq := hyp.NewIRQ(env.name(fmt.Sprintf("intel%d", i)), ch.Notify)
			n.SetIRQ(irq.Raise)
			drv.Start()
			h.IntelNICs = append(h.IntelNICs, n)
			h.NativeDrvs = append(h.NativeDrvs, drv)
			phys = drv
		case NICRice:
			// RiceNIC under software virtualization: one context assigned
			// to the driver domain, none to guests (§5.2). The driver
			// domain is trusted (§2.2), so its enqueues skip hypervisor
			// validation, exactly like a conventional NIC's driver.
			rice := cal.Rice
			rice.SeqCheck = false
			n, err := ricenic.New(env.eng, b, h.Mem, nicOut, rice)
			if err != nil {
				return err
			}
			hostIn.Connect(ether.PortFunc(n.Receive))
			cm := core.NewContextManager(hyp.Prot)
			cm.OnRevoke = func(c *core.Context) { n.DetachContext(c.ID) }
			tx, rx, err := makeRings(h.Mem, dom0.ID, fmt.Sprintf("dom0.nic%d", i))
			if err != nil {
				return err
			}
			ctx, err := cm.Assign(dom0.ID, ether.MakeMAC(1, env.macIndex(i)), tx, rx)
			if err != nil {
				return err
			}
			n.SetPromiscuous(ctx.ID)
			drv := guest.NewCDNADriver(dom0, h.Mem, n, ctx, cal.CDNADrv, hyp.Prot, true, cal.DirectPerDesc)
			ch := hyp.NewChannel(dom0, "cdna", drv.OnVirq)
			channels := make([]*xen.EventChannel, core.NumContexts)
			channels[ctx.ID] = ch
			dec := hyp.NewBitVecDecoder(n.BitVec, channels)
			irq := hyp.NewIRQ(env.name(fmt.Sprintf("rice%d", i)), dec.HandleIRQ)
			n.SetHost(irq.Raise, func(f *core.Fault) { hyp.HandleFault(cm, f) })
			drv.Start()
			h.RiceNICs = append(h.RiceNICs, n)
			h.CtxMgrs = append(h.CtxMgrs, cm)
			h.Drivers = append(h.Drivers, drv)
			phys = drv
		}

		nb := backend.NewNetback(hyp, dom0, phys, cal.Back)
		h.Netbacks = append(h.Netbacks, nb)
		for g := range guests {
			front := nb.AddVif(guests[g], ether.MakeMAC(10+i, env.macIndex(g)), cal.Front)
			stacks[g].AttachDevice(front)
			h.recordDev(g, front)
			if env.wire != nil {
				if err := env.wire(stacks[g], g, i, front); err != nil {
					return err
				}
			}
		}
	}
	hyp.StartTimers()
	return nil
}

func buildCDNA(cfg Config, env hostEnv) error {
	cal := cfg.Cal
	h := env.h
	hyp := xen.New(env.eng, h.CPU, h.Mem, cal.Hyp, cfg.Protection)
	h.Hyp = hyp
	dom0 := hyp.NewDomain(env.name("dom0"), cpu.KindDriver)
	h.dom0 = dom0
	startBackground(env.eng, dom0.VCPU, cal.BackgroundPeriod, cal.BackgroundKernel, cal.BackgroundUser)

	guests := make([]*xen.Domain, cfg.Guests)
	stacks := make([]*guest.Stack, cfg.Guests)
	for g := range guests {
		guests[g] = hyp.NewDomain(env.name(fmt.Sprintf("guest%d", g+1)), cpu.KindGuest)
		stacks[g] = guest.NewStack(guests[g].VCPU, cal.StackNoTSO)
	}
	h.guestDoms = guests
	h.Stacks = stacks

	direct := cfg.Protection != core.ModeHypercall
	rice := cal.Rice
	rice.SeqCheck = cfg.Protection == core.ModeHypercall
	rice.DirectPerContextIRQ = cfg.DirectPerContextIRQ
	if cfg.TxCoalescePkts > 0 {
		rice.CoalescePkts = cfg.TxCoalescePkts
	}

	for i := 0; i < cfg.NICs; i++ {
		nicOut, hostIn := env.newLink()
		b := bus.New(env.eng, cal.Bus)
		h.Buses = append(h.Buses, b)
		n, err := ricenic.New(env.eng, b, h.Mem, nicOut, rice)
		if err != nil {
			return err
		}
		hostIn.Connect(ether.PortFunc(n.Receive))
		cm := core.NewContextManager(hyp.Prot)
		cm.OnRevoke = func(c *core.Context) { n.DetachContext(c.ID) }
		channels := make([]*xen.EventChannel, core.NumContexts)
		dec := hyp.NewBitVecDecoder(n.BitVec, channels)
		irq := hyp.NewIRQ(env.name(fmt.Sprintf("rice%d", i)), dec.HandleIRQ)
		n.SetHost(irq.Raise, func(f *core.Fault) { hyp.HandleFault(cm, f) })

		for g := range guests {
			tx, rx, err := makeRings(h.Mem, guests[g].ID, fmt.Sprintf("g%d.nic%d", g, i))
			if err != nil {
				return err
			}
			ctx, err := cm.Assign(guests[g].ID, ether.MakeMAC(10+i, env.macIndex(g)), tx, rx)
			if err != nil {
				return err
			}
			drv := guest.NewCDNADriver(guests[g], h.Mem, n, ctx, cal.CDNADrv, hyp.Prot, direct, cal.DirectPerDesc)
			drv.MaxBatch = cfg.MaxEnqueueBatch
			channels[ctx.ID] = hyp.NewChannel(guests[g], "cdna", drv.OnVirq)
			drv.Start()
			stacks[g].AttachDevice(drv)
			h.Drivers = append(h.Drivers, drv)
			h.recordDev(g, drv)
			if env.wire != nil {
				if err := env.wire(stacks[g], g, i, drv); err != nil {
					return err
				}
			}
		}
		h.RiceNICs = append(h.RiceNICs, n)
		h.CtxMgrs = append(h.CtxMgrs, cm)
	}
	hyp.StartTimers()
	return nil
}
