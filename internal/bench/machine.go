package bench

import (
	"fmt"

	"cdna/internal/backend"
	"cdna/internal/bus"
	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/guest"
	"cdna/internal/intelnic"
	"cdna/internal/mem"
	"cdna/internal/ricenic"
	"cdna/internal/ring"
	"cdna/internal/sim"
	"cdna/internal/transport"
	"cdna/internal/workload"
	"cdna/internal/xen"
)

// Mode selects the I/O virtualization architecture.
type Mode int

// Machine modes.
const (
	ModeNative Mode = iota // no VMM: host OS drives the NICs (Table 1)
	ModeXen                // Xen software I/O virtualization (§2)
	ModeCDNA               // concurrent direct network access (§3)
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "Native"
	case ModeXen:
		return "Xen"
	case ModeCDNA:
		return "CDNA"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// NICKind selects the device model.
type NICKind int

// NIC kinds.
const (
	NICIntel NICKind = iota // conventional Intel Pro/1000-style NIC
	NICRice                 // CDNA-capable RiceNIC
)

func (k NICKind) String() string {
	if k == NICIntel {
		return "Intel"
	}
	return "RiceNIC"
}

// Direction selects the traffic direction under test.
type Direction int

// Traffic directions.
const (
	Tx Direction = iota // guests transmit to the peer
	Rx                  // guests receive from the peer
	// Both runs full-duplex traffic — an extension beyond the paper's
	// unidirectional evaluation (each guest gets a transmit and a
	// receive connection set per NIC).
	Both
)

func (d Direction) String() string {
	switch d {
	case Tx:
		return "transmit"
	case Rx:
		return "receive"
	case Both:
		return "duplex"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Machine is an assembled testbed: the system under test, its NICs, the
// external peer, and the benchmark connections.
type Machine struct {
	Eng   *sim.Engine
	CPU   *cpu.CPU
	Mem   *mem.Memory
	Hyp   *xen.Hypervisor // nil in native mode
	Conns transport.Group
	// Work drives traffic over the connections according to the
	// configuration's workload spec.
	Work *workload.Generator

	IntelNICs []*intelnic.NIC
	RiceNICs  []*ricenic.NIC
	CtxMgrs   []*core.ContextManager // per RiceNIC
	Drivers   []*guest.CDNADriver    // all CDNA drivers (ordered by guest, NIC)

	guestDoms []*xen.Domain
	dom0      *xen.Domain

	// Tracer is attached by RunTraced (cdnasim -trace).
	Tracer *sim.Tracer
}

// peer is the traffic generator/sink machine on the far end of every
// link. The paper tuned it to never be the bottleneck; here it has no
// CPU model at all.
type peer struct {
	outs []*ether.Pipe
	macs []ether.MAC
}

func (p *peer) port(i int) ether.Port {
	return ether.PortFunc(func(f *ether.Frame) {
		if seg, ok := f.Payload.(*transport.Segment); ok {
			transport.Dispatch(seg)
		}
	})
}

// sender returns a transport transmit function pushing frames onto link
// i toward dst.
func (p *peer) sender(i int, dst ether.MAC) func(*transport.Segment) {
	out := p.outs[i]
	src := p.macs[i]
	return func(seg *transport.Segment) {
		out.Send(&ether.Frame{Src: src, Dst: dst, Size: seg.FrameBytes(), Payload: seg})
	}
}

// makeRings allocates a tx/rx descriptor ring pair in the domain's
// memory.
func makeRings(m *mem.Memory, dom mem.DomID, name string) (*ring.Ring, *ring.Ring, error) {
	pages := (guest.RingEntries*ring.DefaultLayout.Size + mem.PageSize - 1) / mem.PageSize
	tx, err := ring.New(name+".tx", ring.DefaultLayout, m.Alloc(dom, pages)[0].Base(), guest.RingEntries)
	if err != nil {
		return nil, nil, err
	}
	rx, err := ring.New(name+".rx", ring.DefaultLayout, m.Alloc(dom, pages)[0].Base(), guest.RingEntries)
	if err != nil {
		return nil, nil, err
	}
	return tx, rx, nil
}

// startBackground models housekeeping daemons in a domain: one
// persistent timer re-armed in place per tick.
func startBackground(eng *sim.Engine, d *cpu.Domain, period, kernel, user sim.Time) {
	var tm *sim.Timer
	tm = eng.NewTimer("bg", func() {
		d.Exec(cpu.CatKernel, kernel, "bg.kernel", nil)
		d.Exec(cpu.CatUser, user, "bg.user", nil)
		tm.ArmAfter(period)
	})
	tm.ArmAfter(period)
}

// Build assembles a machine for the configuration.
func Build(cfg Config) (*Machine, error) {
	cal := cfg.Cal
	eng := sim.NewWithResolution(cal.EventResolution())
	m := &Machine{
		Eng: eng,
		CPU: cpu.New(eng, cal.CPU),
		Mem: mem.New(),
	}
	// The workload generator drives whatever connections the topology
	// builders wire below; direction decides which RPC message is
	// payload-heavy.
	spec := cfg.Workload.Resolved(cfg.Dir == Tx || cfg.Dir == Both, cfg.Dir == Rx || cfg.Dir == Both)
	var err error
	m.Work, err = workload.NewGenerator(eng, spec)
	if err != nil {
		return nil, err
	}
	pr := &peer{}

	// Pre-size every builder-filled slice: the topology's final counts
	// are implied by the configuration, so the assembly loops below
	// never re-grow a backing array. (Conns gets an upper bound: one
	// connection per slot in the configured direction, or a pair for
	// duplex and request/response wiring.)
	stacks := cfg.Guests
	if cfg.Mode == ModeNative {
		stacks = 1
	}
	m.Conns.Grow(stacks * cfg.NICs * cfg.ConnsPerGuestPerNIC * 2)
	m.IntelNICs = make([]*intelnic.NIC, 0, cfg.NICs)
	m.RiceNICs = make([]*ricenic.NIC, 0, cfg.NICs)
	m.CtxMgrs = make([]*core.ContextManager, 0, cfg.NICs)
	m.Drivers = make([]*guest.CDNADriver, 0, stacks*cfg.NICs)
	pr.outs = make([]*ether.Pipe, 0, cfg.NICs)
	pr.macs = make([]ether.MAC, 0, cfg.NICs)

	// Links and peer ports, one per NIC.
	newLink := func() (*ether.Pipe, *ether.Pipe) {
		l := ether.NewDuplex(eng, 1.0, 500*sim.Nanosecond)
		i := len(pr.outs)
		pr.outs = append(pr.outs, l.BtoA)
		pr.macs = append(pr.macs, ether.MakeMAC(200, i))
		l.AtoB.Connect(pr.port(i))
		return l.AtoB, l.BtoA // (NIC out, peer out)
	}

	switch cfg.Mode {
	case ModeNative:
		if err := buildNative(cfg, m, pr, newLink); err != nil {
			return nil, err
		}
	case ModeXen:
		if err := buildXen(cfg, m, pr, newLink); err != nil {
			return nil, err
		}
	case ModeCDNA:
		if err := buildCDNA(cfg, m, pr, newLink); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bench: unknown mode %v", cfg.Mode)
	}
	return m, nil
}

// wireConns creates the benchmark connection slots between a guest
// stack's device for NIC i and the peer's port i, registering each slot
// with the machine's workload generator. Bulk/churn/burst slots are one
// connection in the configured direction (Both = one each way);
// request/response slots are a forward-request/reverse-response pair.
func (m *Machine) wireConns(cfg Config, pr *peer, st *guest.Stack, nicIdx int, dev guest.NetDevice) error {
	wire := func(dir Direction) *transport.Conn {
		conn := transport.NewConn(m.Eng, len(m.Conns.Conns), transport.DefaultSegSize, cfg.Window)
		conn.RTO = 200 * sim.Millisecond
		if dir == Tx {
			conn.AttachSender(st.Sender(dev, pr.macs[nicIdx]))
			conn.AttachReceiver(pr.sender(nicIdx, dev.MAC()))
		} else {
			conn.AttachSender(pr.sender(nicIdx, dev.MAC()))
			conn.AttachReceiver(st.Sender(dev, pr.macs[nicIdx]))
		}
		m.Conns.Add(conn)
		return conn
	}
	for c := 0; c < cfg.ConnsPerGuestPerNIC; c++ {
		if m.Work.NeedsReverse() {
			// RPC: the guest is always the client — requests flow
			// guest→peer, responses flow back. Direction only selects
			// which message is payload-heavy (spec resolution).
			ep := workload.Endpoint{
				Fwd: wire(Tx), Rev: wire(Rx),
				OnFlowSetup: st.ChargeFlowSetup, OnFlowTeardown: st.ChargeFlowTeardown,
			}
			if err := m.Work.Add(ep); err != nil {
				return err
			}
			continue
		}
		dirs := []Direction{cfg.Dir}
		if cfg.Dir == Both {
			dirs = []Direction{Tx, Rx}
		}
		for _, dir := range dirs {
			ep := workload.Endpoint{
				Fwd:         wire(dir),
				OnFlowSetup: st.ChargeFlowSetup, OnFlowTeardown: st.ChargeFlowTeardown,
			}
			if err := m.Work.Add(ep); err != nil {
				return err
			}
		}
	}
	return nil
}

func buildNative(cfg Config, m *Machine, pr *peer, newLink func() (*ether.Pipe, *ether.Pipe)) error {
	cal := cfg.Cal
	hostDom := m.CPU.NewDomain("host", cpu.KindGuest)
	const hostID = mem.Dom0 + 1
	st := guest.NewStack(hostDom, cal.StackNative)
	for i := 0; i < cfg.NICs; i++ {
		nicOut, _ := newLink()
		b := bus.New(m.Eng, cal.Bus)
		n := intelnic.New(m.Eng, b, m.Mem, nicOut, cal.Intel, ether.MakeMAC(1, i))
		pr.outs[i].Connect(ether.PortFunc(n.Receive))
		drv, err := guest.NewNativeDriver(hostDom, hostID, m.Mem, n, cal.NativeDrv)
		if err != nil {
			return err
		}
		// Native: the NIC interrupts the host OS directly.
		n.SetIRQ(drv.OnInterrupt)
		drv.Start()
		st.AttachDevice(drv)
		m.IntelNICs = append(m.IntelNICs, n)
		if err := m.wireConns(cfg, pr, st, i, drv); err != nil {
			return err
		}
	}
	return nil
}

func buildXen(cfg Config, m *Machine, pr *peer, newLink func() (*ether.Pipe, *ether.Pipe)) error {
	cal := cfg.Cal
	// Xen trusts the driver domain (§2.2): the only rings on a CDNA NIC
	// in this topology belong to dom0 and are not validated.
	hyp := xen.New(m.Eng, m.CPU, m.Mem, cal.Hyp, core.ModeOff)
	m.Hyp = hyp
	dom0 := hyp.NewDomain("dom0", cpu.KindDriver)
	m.dom0 = dom0
	startBackground(m.Eng, dom0.VCPU, cal.BackgroundPeriod, cal.BackgroundKernel, cal.BackgroundUser)

	guests := make([]*xen.Domain, cfg.Guests)
	stacks := make([]*guest.Stack, cfg.Guests)
	stackCosts := cal.StackTSO
	if cfg.NIC == NICRice {
		stackCosts = cal.StackNoTSO // RiceNIC lacks TSO (§5.1)
	}
	for g := range guests {
		guests[g] = hyp.NewDomain(fmt.Sprintf("guest%d", g+1), cpu.KindGuest)
		stacks[g] = guest.NewStack(guests[g].VCPU, stackCosts)
	}
	m.guestDoms = guests

	for i := 0; i < cfg.NICs; i++ {
		nicOut, _ := newLink()
		b := bus.New(m.Eng, cal.Bus)

		// Physical device owned by the driver domain.
		var phys guest.NetDevice
		switch cfg.NIC {
		case NICIntel:
			n := intelnic.New(m.Eng, b, m.Mem, nicOut, cal.Intel, ether.MakeMAC(1, i))
			pr.outs[i].Connect(ether.PortFunc(n.Receive))
			drv, err := guest.NewNativeDriver(dom0.VCPU, dom0.ID, m.Mem, n, cal.NativeDrv)
			if err != nil {
				return err
			}
			ch := hyp.NewChannel(dom0, "nic", drv.OnInterrupt)
			irq := hyp.NewIRQ(fmt.Sprintf("intel%d", i), ch.Notify)
			n.SetIRQ(irq.Raise)
			drv.Start()
			m.IntelNICs = append(m.IntelNICs, n)
			phys = drv
		case NICRice:
			// RiceNIC under software virtualization: one context assigned
			// to the driver domain, none to guests (§5.2). The driver
			// domain is trusted (§2.2), so its enqueues skip hypervisor
			// validation, exactly like a conventional NIC's driver.
			rice := cal.Rice
			rice.SeqCheck = false
			n, err := ricenic.New(m.Eng, b, m.Mem, nicOut, rice)
			if err != nil {
				return err
			}
			pr.outs[i].Connect(ether.PortFunc(n.Receive))
			cm := core.NewContextManager(hyp.Prot)
			cm.OnRevoke = func(c *core.Context) { n.DetachContext(c.ID) }
			tx, rx, err := makeRings(m.Mem, dom0.ID, fmt.Sprintf("dom0.nic%d", i))
			if err != nil {
				return err
			}
			ctx, err := cm.Assign(dom0.ID, ether.MakeMAC(1, i), tx, rx)
			if err != nil {
				return err
			}
			n.SetPromiscuous(ctx.ID)
			drv := guest.NewCDNADriver(dom0, m.Mem, n, ctx, cal.CDNADrv, hyp.Prot, true, cal.DirectPerDesc)
			ch := hyp.NewChannel(dom0, "cdna", drv.OnVirq)
			channels := make([]*xen.EventChannel, core.NumContexts)
			channels[ctx.ID] = ch
			irq := hyp.NewIRQ(fmt.Sprintf("rice%d", i), func() { hyp.HandleBitVectorIRQ(n.BitVec, channels) })
			n.SetHost(irq.Raise, func(f *core.Fault) { hyp.HandleFault(cm, f) })
			drv.Start()
			m.RiceNICs = append(m.RiceNICs, n)
			m.CtxMgrs = append(m.CtxMgrs, cm)
			m.Drivers = append(m.Drivers, drv)
			phys = drv
		}

		nb := backend.NewNetback(hyp, dom0, phys, cal.Back)
		for g := range guests {
			front := nb.AddVif(guests[g], ether.MakeMAC(10+i, g), cal.Front)
			stacks[g].AttachDevice(front)
			if err := m.wireConns(cfg, pr, stacks[g], i, front); err != nil {
				return err
			}
		}
	}
	hyp.StartTimers()
	return nil
}

func buildCDNA(cfg Config, m *Machine, pr *peer, newLink func() (*ether.Pipe, *ether.Pipe)) error {
	cal := cfg.Cal
	hyp := xen.New(m.Eng, m.CPU, m.Mem, cal.Hyp, cfg.Protection)
	m.Hyp = hyp
	dom0 := hyp.NewDomain("dom0", cpu.KindDriver)
	m.dom0 = dom0
	startBackground(m.Eng, dom0.VCPU, cal.BackgroundPeriod, cal.BackgroundKernel, cal.BackgroundUser)

	guests := make([]*xen.Domain, cfg.Guests)
	stacks := make([]*guest.Stack, cfg.Guests)
	for g := range guests {
		guests[g] = hyp.NewDomain(fmt.Sprintf("guest%d", g+1), cpu.KindGuest)
		stacks[g] = guest.NewStack(guests[g].VCPU, cal.StackNoTSO)
	}
	m.guestDoms = guests

	direct := cfg.Protection != core.ModeHypercall
	rice := cal.Rice
	rice.SeqCheck = cfg.Protection == core.ModeHypercall
	rice.DirectPerContextIRQ = cfg.DirectPerContextIRQ
	if cfg.TxCoalescePkts > 0 {
		rice.CoalescePkts = cfg.TxCoalescePkts
	}

	for i := 0; i < cfg.NICs; i++ {
		nicOut, _ := newLink()
		b := bus.New(m.Eng, cal.Bus)
		n, err := ricenic.New(m.Eng, b, m.Mem, nicOut, rice)
		if err != nil {
			return err
		}
		pr.outs[i].Connect(ether.PortFunc(n.Receive))
		cm := core.NewContextManager(hyp.Prot)
		cm.OnRevoke = func(c *core.Context) { n.DetachContext(c.ID) }
		channels := make([]*xen.EventChannel, core.NumContexts)
		irq := hyp.NewIRQ(fmt.Sprintf("rice%d", i), func() { hyp.HandleBitVectorIRQ(n.BitVec, channels) })
		n.SetHost(irq.Raise, func(f *core.Fault) { hyp.HandleFault(cm, f) })

		for g := range guests {
			tx, rx, err := makeRings(m.Mem, guests[g].ID, fmt.Sprintf("g%d.nic%d", g, i))
			if err != nil {
				return err
			}
			ctx, err := cm.Assign(guests[g].ID, ether.MakeMAC(10+i, g), tx, rx)
			if err != nil {
				return err
			}
			drv := guest.NewCDNADriver(guests[g], m.Mem, n, ctx, cal.CDNADrv, hyp.Prot, direct, cal.DirectPerDesc)
			drv.MaxBatch = cfg.MaxEnqueueBatch
			channels[ctx.ID] = hyp.NewChannel(guests[g], "cdna", drv.OnVirq)
			drv.Start()
			stacks[g].AttachDevice(drv)
			m.Drivers = append(m.Drivers, drv)
			if err := m.wireConns(cfg, pr, stacks[g], i, drv); err != nil {
				return err
			}
		}
		m.RiceNICs = append(m.RiceNICs, n)
		m.CtxMgrs = append(m.CtxMgrs, cm)
	}
	hyp.StartTimers()
	return nil
}
