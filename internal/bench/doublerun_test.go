package bench

import (
	"encoding/json"
	"testing"

	"cdna/internal/core"
	"cdna/internal/sim"
)

// The byte-identity determinism contract at the single-experiment
// level: building and running the same multi-guest configuration twice
// must produce bit-for-bit identical results. This is the tripwire for
// any iteration-order dependence sneaking into the builders or the
// interrupt delivery path (per-context event channels are a dense
// slice, never a ranged-over map — see Hypervisor.HandleBitVectorIRQ).
func TestMultiGuestDoubleRunByteIdentical(t *testing.T) {
	opts := Opts{Warmup: 20 * sim.Millisecond, Duration: 60 * sim.Millisecond}
	if !testing.Short() {
		opts = Quick()
	}
	for _, tc := range []struct {
		name    string
		mode    Mode
		nic     NICKind
		hosts   int
		pattern Pattern
	}{
		{"Xen/RiceNIC", ModeXen, NICRice, 0, PatternPairs},
		{"Xen/Intel", ModeXen, NICIntel, 0, PatternPairs},
		{"CDNA", ModeCDNA, NICRice, 0, PatternPairs},
		// Multi-host: the switched fabric (per-port egress FIFOs, drops,
		// cross-host acks) must be just as byte-deterministic.
		{"CDNA/3h-incast", ModeCDNA, NICRice, 3, PatternIncast},
		{"Xen/4h-all2all", ModeXen, NICIntel, 4, PatternAllToAll},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(tc.mode, tc.nic, Tx)
			cfg.Guests = 4 // multi-guest: many contexts per bit-vector IRQ
			if tc.hosts > 1 {
				cfg.Hosts = tc.hosts
				cfg.Pattern = tc.pattern
				cfg.Guests = 2 // clusters multiply hosts; keep the run tight
			}
			cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
			if tc.mode == ModeCDNA {
				cfg.Protection = core.ModeHypercall
			}
			cfg.Warmup, cfg.Duration = opts.Warmup, opts.Duration
			run := func() []byte {
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				buf, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return buf
			}
			first, second := run(), run()
			if string(first) != string(second) {
				t.Fatalf("reruns differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
			}
		})
	}
}
