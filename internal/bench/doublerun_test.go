package bench

import (
	"encoding/json"
	"testing"

	"cdna/internal/core"
	"cdna/internal/sim"
)

// The byte-identity determinism contract at the single-experiment
// level: building and running the same multi-guest configuration twice
// must produce bit-for-bit identical results. This is the tripwire for
// any iteration-order dependence sneaking into the builders or the
// interrupt delivery path (per-context event channels are a dense
// slice, never a ranged-over map — see Hypervisor.HandleBitVectorIRQ).
func TestMultiGuestDoubleRunByteIdentical(t *testing.T) {
	opts := Opts{Warmup: 20 * sim.Millisecond, Duration: 60 * sim.Millisecond}
	if !testing.Short() {
		opts = Quick()
	}
	for _, tc := range []struct {
		name    string
		mode    Mode
		nic     NICKind
		hosts   int
		pattern Pattern
		fault   FaultKind
		shards  int
	}{
		{"Xen/RiceNIC", ModeXen, NICRice, 0, PatternPairs, FaultNone, 0},
		{"Xen/Intel", ModeXen, NICIntel, 0, PatternPairs, FaultNone, 0},
		{"CDNA", ModeCDNA, NICRice, 0, PatternPairs, FaultNone, 0},
		// Multi-host: the switched fabric (per-port egress FIFOs, drops,
		// cross-host acks) must be just as byte-deterministic.
		{"CDNA/3h-incast", ModeCDNA, NICRice, 3, PatternIncast, FaultNone, 0},
		{"Xen/4h-all2all", ModeXen, NICIntel, 4, PatternAllToAll, FaultNone, 0},
		// Fault injection mid-window (link flap under incast): the
		// outage, the drops it forces, and the recovery must all replay
		// bit-for-bit.
		{"CDNA/3h-incast-flap", ModeCDNA, NICRice, 3, PatternIncast, FaultLinkFlap, 0},
		// Sharded execution (shards.go): rerunning the partitioned
		// machine must be just as reproducible as the single engine.
		{"CDNA/4h-incast-4shards", ModeCDNA, NICRice, 4, PatternIncast, FaultNone, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(tc.mode, tc.nic, Tx)
			cfg.Guests = 4 // multi-guest: many contexts per bit-vector IRQ
			if tc.hosts > 1 {
				cfg.Hosts = tc.hosts
				cfg.Pattern = tc.pattern
				cfg.Guests = 2 // clusters multiply hosts; keep the run tight
				cfg.Shards = tc.shards
			}
			cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
			if tc.mode == ModeCDNA {
				cfg.Protection = core.ModeHypercall
			}
			cfg.Warmup, cfg.Duration = opts.Warmup, opts.Duration
			if tc.fault != FaultNone {
				cfg.Fault = FaultSpec{Kind: tc.fault, After: cfg.Duration / 4, Outage: cfg.Duration / 4}
			}
			run := func() []byte {
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				buf, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return buf
			}
			first, second := run(), run()
			if string(first) != string(second) {
				t.Fatalf("reruns differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
			}
		})
	}
}

// TestRestoreMidRunByteIdentical is the doublerun contract with a
// checkpoint in the loop: a run snapshotted mid-window and resumed in
// a fresh machine must be byte-identical to the uninterrupted run —
// including across a live link-flap outage.
func TestRestoreMidRunByteIdentical(t *testing.T) {
	opts := Opts{Warmup: 20 * sim.Millisecond, Duration: 60 * sim.Millisecond}
	for _, tc := range []struct {
		name  string
		hosts int
		fault FaultKind
	}{
		{"CDNA/single", 0, FaultNone},
		{"CDNA/3h-incast-flap", 3, FaultLinkFlap},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
			cfg.Guests = 2
			cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
			if tc.hosts > 1 {
				cfg.Hosts = tc.hosts
				cfg.Pattern = PatternIncast
			}
			cfg.Warmup, cfg.Duration = opts.Warmup, opts.Duration
			if tc.fault != FaultNone {
				cfg.Fault = FaultSpec{Kind: tc.fault, After: cfg.Duration / 4, Outage: cfg.Duration / 4}
			}
			// Snapshot mid-window, between injection and healing.
			snapAt := cfg.Warmup + cfg.Duration*3/8
			cold, img := runWithSnapshot(t, cfg, snapAt)
			resumed := resumeFromSnapshot(t, cfg, snapAt, img)
			a, b := resultJSON(t, cold), resultJSON(t, resumed)
			if a != b {
				t.Fatalf("resumed run diverged:\n--- cold ---\n%s\n--- resumed ---\n%s", a, b)
			}
		})
	}
}
