package bench

import (
	"strings"
	"testing"
)

// TestFaultGoldenDeterminism pins byte-identical fault-scenario table
// output across runs: the injection instants, the outage's drops, the
// FDB re-learning churn, and the recovery all replay exactly. The CI
// suite re-runs it under -tags simheap, so the pin also holds across
// the two event-queue implementations.
func TestFaultGoldenDeterminism(t *testing.T) {
	render := func() string {
		ft, results, err := ScenarioFaults(topoOpts(), 3)
		if err != nil {
			t.Fatal(err)
		}
		// The scenarios must actually bite: link faults destroy frames,
		// and a port failure unlearns stations so traffic floods until
		// they re-learn.
		var linkDrops, flooded uint64
		for _, res := range results {
			switch res.Config.Fault.Kind {
			case FaultLinkFlap, FaultBlackout:
				linkDrops += res.LinkDrops
			case FaultPortFail:
				flooded += res.FabricFlooded
			}
		}
		if linkDrops == 0 {
			t.Fatal("link faults dropped no frames")
		}
		if flooded == 0 {
			t.Fatal("port failure forced no FDB re-learning floods")
		}
		return ft.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("reruns differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if len(first) == 0 || !strings.Contains(first, "portfail") {
		t.Fatalf("rendered fault table looks empty:\n%s", first)
	}
}
