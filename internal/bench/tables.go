package bench

import (
	"fmt"

	"cdna/internal/core"
	"cdna/internal/sim"
	"cdna/internal/stats"
	"cdna/internal/topo"
	"cdna/internal/workload"
)

// Opts controls experiment length and execution. Quick() is for tests
// and benchmarks; Full() is what cmd/cdnatables and EXPERIMENTS.md use.
type Opts struct {
	Warmup   sim.Time
	Duration sim.Time

	// Shards partitions each multi-host experiment into engine shards
	// (Config.Shards). A wall-clock knob only: tables are byte-identical
	// at any value.
	Shards int

	// Runner executes the experiment batches behind every table and
	// figure; nil means the sequential RunAll. cmd/cdnatables injects
	// campaign.Runner here to fan a table's rows across CPU cores.
	Runner Runner
}

// Full returns publication-length windows.
func Full() Opts { return Opts{Warmup: 300 * sim.Millisecond, Duration: sim.Second} }

// Quick returns short windows for tests and benchmarks.
func Quick() Opts { return Opts{Warmup: 150 * sim.Millisecond, Duration: 300 * sim.Millisecond} }

func (o Opts) apply(cfg Config) Config {
	cfg.Warmup = o.Warmup
	cfg.Duration = o.Duration
	cfg.Shards = o.Shards
	return cfg
}

// runBatch applies the measurement windows to every configuration, runs
// the batch through the configured Runner, and unwraps the results. The
// table generators fail on the first error, as before the Runner split.
func (o Opts) runBatch(cfgs []Config) ([]Result, error) {
	run := o.Runner
	if run == nil {
		run = RunAll
	}
	for i := range cfgs {
		cfgs[i] = o.apply(cfgs[i])
	}
	outs := run(cfgs)
	results := make([]Result, len(outs))
	for i, out := range outs {
		if out.Err != nil {
			return nil, fmt.Errorf("%s: %w", out.Config.Name(), out.Err)
		}
		results[i] = out.Result
	}
	return results, nil
}

func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func profileCells(r Result) []string {
	p := r.Profile
	return []string{
		fmtPct(p.Hyp), fmtPct(p.DriverOS), fmtPct(p.DriverUser),
		fmtPct(p.GuestOS), fmtPct(p.GuestUser), fmtPct(p.Idle),
		fmt.Sprintf("%.0f", r.DriverIntrPerSec), fmt.Sprintf("%.0f", r.GuestIntrPerSec),
	}
}

var profileHeader = []string{"Hyp", "DrvOS", "DrvUsr", "GstOS", "GstUsr", "Idle", "DrvIntr/s", "GstIntr/s"}

// labelled pairs a table row label with its configuration.
type labelled struct {
	label string
	cfg   Config
}

func runLabelled(o Opts, rows []labelled) ([]Result, error) {
	cfgs := make([]Config, len(rows))
	for i, row := range rows {
		cfgs[i] = row.cfg
	}
	return o.runBatch(cfgs)
}

// Table1 reproduces Table 1: native Linux vs a Xen guest, transmit and
// receive (native uses the paper's six-NIC rig; Xen the two-NIC one).
func Table1(o Opts) (*stats.Table, []Result, error) {
	var rows []labelled
	for _, dir := range []Direction{Tx, Rx} {
		ncfg := DefaultConfig(ModeNative, NICIntel, dir)
		ncfg.NICs = 6
		ncfg.ConnsPerGuestPerNIC = 6
		rows = append(rows,
			labelled{fmt.Sprintf("Native Linux %v", dir), ncfg},
			labelled{fmt.Sprintf("Xen Guest %v", dir), DefaultConfig(ModeXen, NICIntel, dir)})
	}
	results, err := runLabelled(o, rows)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"System", "Direction", "Mb/s"}}
	for i, row := range rows {
		t.AddRow(row.label, row.cfg.Dir.String(), fmt.Sprintf("%.0f", results[i].Mbps))
	}
	return t, results, nil
}

// table23 runs Table 2 (transmit) or Table 3 (receive): single guest,
// two NICs, three I/O architectures.
func table23(o Opts, dir Direction) (*stats.Table, []Result, error) {
	rows := []labelled{
		{"Xen / Intel", DefaultConfig(ModeXen, NICIntel, dir)},
		{"Xen / RiceNIC", DefaultConfig(ModeXen, NICRice, dir)},
		{"CDNA / RiceNIC", DefaultConfig(ModeCDNA, NICRice, dir)},
	}
	results, err := runLabelled(o, rows)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: append([]string{"System", "Mb/s"}, profileHeader...)}
	for i, row := range rows {
		t.AddRow(append([]string{row.label, fmt.Sprintf("%.0f", results[i].Mbps)}, profileCells(results[i])...)...)
	}
	return t, results, nil
}

// Table2 reproduces Table 2 (single-guest transmit).
func Table2(o Opts) (*stats.Table, []Result, error) { return table23(o, Tx) }

// Table3 reproduces Table 3 (single-guest receive).
func Table3(o Opts) (*stats.Table, []Result, error) { return table23(o, Rx) }

// Table4 reproduces Table 4: CDNA transmit and receive with DMA memory
// protection enabled and disabled.
func Table4(o Opts) (*stats.Table, []Result, error) {
	var rows []labelled
	for _, spec := range []struct {
		label string
		dir   Direction
		prot  core.Mode
	}{
		{"CDNA (Transmit) / Enabled", Tx, core.ModeHypercall},
		{"CDNA (Transmit) / Disabled", Tx, core.ModeOff},
		{"CDNA (Receive) / Enabled", Rx, core.ModeHypercall},
		{"CDNA (Receive) / Disabled", Rx, core.ModeOff},
	} {
		cfg := DefaultConfig(ModeCDNA, NICRice, spec.dir)
		cfg.Protection = spec.prot
		rows = append(rows, labelled{spec.label, cfg})
	}
	results, err := runLabelled(o, rows)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: append([]string{"System / Protection", "Mb/s"}, profileHeader...)}
	for i, row := range rows {
		t.AddRow(append([]string{row.label, fmt.Sprintf("%.0f", results[i].Mbps)}, profileCells(results[i])...)...)
	}
	return t, results, nil
}

// FigureGuests is the x-axis of Figures 3 and 4.
var FigureGuests = []int{1, 2, 4, 8, 12, 16, 20, 24}

// FigurePoint is one (guests, system) sample of Figure 3 or 4.
type FigurePoint struct {
	Guests int
	Xen    Result
	CDNA   Result
}

// figure runs Figure 3 (transmit) or Figure 4 (receive): aggregate
// throughput and CDNA idle time versus the number of guests. The Xen
// and CDNA samples of every point go into one batch, so a parallel
// Runner overlaps the whole curve.
func figure(o Opts, dir Direction, guests []int) (*stats.Table, []FigurePoint, error) {
	var cfgs []Config
	for _, g := range guests {
		xcfg := DefaultConfig(ModeXen, NICIntel, dir)
		xcfg.Guests = g
		xcfg.ConnsPerGuestPerNIC = connsFor(g)
		ccfg := DefaultConfig(ModeCDNA, NICRice, dir)
		ccfg.Guests = g
		ccfg.ConnsPerGuestPerNIC = connsFor(g)
		cfgs = append(cfgs, xcfg, ccfg)
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Guests", "Xen Mb/s", "Xen idle", "CDNA Mb/s", "CDNA idle"}}
	var pts []FigurePoint
	for i, g := range guests {
		xres, cres := results[2*i], results[2*i+1]
		pts = append(pts, FigurePoint{Guests: g, Xen: xres, CDNA: cres})
		t.AddRow(fmt.Sprintf("%d", g),
			fmt.Sprintf("%.0f", xres.Mbps), fmtPct(xres.Profile.Idle),
			fmt.Sprintf("%.0f", cres.Mbps), fmtPct(cres.Profile.Idle))
	}
	return t, pts, nil
}

// Figure3 reproduces Figure 3 (transmit scaling).
func Figure3(o Opts, guests []int) (*stats.Table, []FigurePoint, error) {
	return figure(o, Tx, guests)
}

// Figure4 reproduces Figure 4 (receive scaling).
func Figure4(o Opts, guests []int) (*stats.Table, []FigurePoint, error) {
	return figure(o, Rx, guests)
}

// AblationBatching sweeps the maximum descriptors per CDNA enqueue
// hypercall (§3.3's batching): smaller batches pay the hypercall base
// cost more often, growing hypervisor time.
func AblationBatching(o Opts, batches []int) (*stats.Table, []Result, error) {
	cfgs := make([]Config, len(batches))
	for i, b := range batches {
		cfgs[i] = DefaultConfig(ModeCDNA, NICRice, Tx)
		cfgs[i].MaxEnqueueBatch = b
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"MaxBatch", "Mb/s", "Hyp", "Idle"}}
	for i, b := range batches {
		label := fmt.Sprintf("%d", b)
		if b <= 0 {
			label = "unlimited"
		}
		res := results[i]
		t.AddRow(label, fmt.Sprintf("%.0f", res.Mbps), fmtPct(res.Profile.Hyp), fmtPct(res.Profile.Idle))
	}
	return t, results, nil
}

// AblationInterrupts compares CDNA's DMA'd interrupt bit vectors against
// raising a separate physical interrupt per context (§3.2 argues the
// latter creates a much higher interrupt load).
func AblationInterrupts(o Opts, guests int) (*stats.Table, []Result, error) {
	deliveries := []bool{false, true}
	cfgs := make([]Config, len(deliveries))
	for i, direct := range deliveries {
		cfgs[i] = DefaultConfig(ModeCDNA, NICRice, Tx)
		cfgs[i].Guests = guests
		cfgs[i].ConnsPerGuestPerNIC = connsFor(guests)
		cfgs[i].DirectPerContextIRQ = direct
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Delivery", "Mb/s", "Hyp", "Idle", "PhysIRQ/s"}}
	for i, direct := range deliveries {
		label := "bit vector"
		if direct {
			label = "per-context IRQ"
		}
		res := results[i]
		t.AddRow(label, fmt.Sprintf("%.0f", res.Mbps), fmtPct(res.Profile.Hyp),
			fmtPct(res.Profile.Idle), fmt.Sprintf("%.0f", res.PhysIRQPerSec))
	}
	return t, results, nil
}

// AblationCoalescing sweeps the CDNA NIC's transmit interrupt
// coalescing threshold (§5.1 notes the NIC coalescing options were
// tuned): tighter coalescing raises the interrupt rate and burns idle
// time in per-interrupt fixed costs; looser coalescing adds latency but
// returns CPU.
func AblationCoalescing(o Opts, thresholds []int) (*stats.Table, []Result, error) {
	cfgs := make([]Config, len(thresholds))
	for i, th := range thresholds {
		cfgs[i] = DefaultConfig(ModeCDNA, NICRice, Tx)
		cfgs[i].TxCoalescePkts = th
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"TxCoalescePkts", "Mb/s", "Idle", "GstIntr/s"}}
	for i, th := range thresholds {
		res := results[i]
		t.AddRow(fmt.Sprintf("%d", th), fmt.Sprintf("%.0f", res.Mbps),
			fmtPct(res.Profile.Idle), fmt.Sprintf("%.0f", res.GuestIntrPerSec))
	}
	return t, results, nil
}

// ExtensionDuplex runs full-duplex traffic — beyond the paper's
// unidirectional evaluation — comparing Xen and CDNA when every guest
// both transmits and receives at once.
func ExtensionDuplex(o Opts) (*stats.Table, []Result, error) {
	rows := []labelled{
		{"Xen / Intel", DefaultConfig(ModeXen, NICIntel, Both)},
		{"CDNA / RiceNIC", DefaultConfig(ModeCDNA, NICRice, Both)},
	}
	results, err := runLabelled(o, rows)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"System", "Mb/s (agg)", "Idle", "p50 lat (us)", "p90 lat (us)"}}
	for i, row := range rows {
		res := results[i]
		t.AddRow(row.label, fmt.Sprintf("%.0f", res.Mbps), fmtPct(res.Profile.Idle),
			fmt.Sprintf("%.0f", res.LatencyP50us), fmt.Sprintf("%.0f", res.LatencyP90us))
	}
	return t, results, nil
}

// ExtensionMoreNICs tests the paper's §5.4 conjecture: "it is likely
// that with more CDNA NICs, the throughput curve would have a similar
// shape to that of software virtualization, but with a much higher
// peak." Four CDNA NICs give guests ~3.7 Gb/s of line rate; once the
// CPU saturates the curve must bend over exactly as the conjecture
// predicts.
func ExtensionMoreNICs(o Opts, guests []int) (*stats.Table, []Result, error) {
	cfgs := make([]Config, len(guests))
	for i, g := range guests {
		cfgs[i] = DefaultConfig(ModeCDNA, NICRice, Tx)
		cfgs[i].NICs = 4
		cfgs[i].Guests = g
		cfgs[i].ConnsPerGuestPerNIC = connsFor(g)
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Guests", "CDNA 4-NIC Mb/s", "Idle"}}
	for i, g := range guests {
		t.AddRow(fmt.Sprintf("%d", g), fmt.Sprintf("%.0f", results[i].Mbps), fmtPct(results[i].Profile.Idle))
	}
	return t, results, nil
}

// topologyConfigs builds the Xen-vs-CDNA transmit grid for one
// cross-host pattern over a list of rack sizes.
func topologyConfigs(hosts []int, pat Pattern) []Config {
	var cfgs []Config
	for _, h := range hosts {
		for _, mode := range []Mode{ModeXen, ModeCDNA} {
			nic := NICIntel
			if mode == ModeCDNA {
				nic = NICRice
			}
			cfg := DefaultConfig(mode, nic, Tx)
			cfg.Hosts = h
			cfg.Pattern = pat
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// TopologyIncast sweeps the rack size under N→1 incast on the switched
// fabric: every host's guests converge on host 0, so the switch's
// root-port egress queues are the bottleneck and the two architectures
// differ in how much of the fan-in their receive path can absorb before
// the queue tail-drops. Columns report aggregate goodput, the fabric's
// drop count and deepest egress queue, and transport retransmissions.
func TopologyIncast(o Opts, hosts []int) (*stats.Table, []Result, error) {
	cfgs := topologyConfigs(hosts, PatternIncast)
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Hosts", "System", "Mb/s", "Fairness", "SwitchDrops", "MaxQ", "Retrans"}}
	for i, cfg := range cfgs {
		res := results[i]
		t.AddRow(fmt.Sprintf("%d", cfg.Hosts), fmt.Sprintf("%v/%v", cfg.Mode, cfg.NIC),
			fmt.Sprintf("%.0f", res.Mbps), fmt.Sprintf("%.3f", res.Fairness),
			fmt.Sprintf("%d", res.FabricDrops), fmt.Sprintf("%d", res.FabricMaxDepth),
			fmt.Sprintf("%d", res.Retransmits))
	}
	return t, results, nil
}

// TopologyAllToAll runs the uniform shuffle at fixed rack sizes: every
// guest's connections spread round-robin over all remote hosts, the
// traffic matrix of a rack-scale distributed job.
func TopologyAllToAll(o Opts, hosts []int) (*stats.Table, []Result, error) {
	cfgs := topologyConfigs(hosts, PatternAllToAll)
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Hosts", "System", "Mb/s", "Fairness", "SwitchDrops", "MaxQ", "p90 lat (us)"}}
	for i, cfg := range cfgs {
		res := results[i]
		t.AddRow(fmt.Sprintf("%d", cfg.Hosts), fmt.Sprintf("%v/%v", cfg.Mode, cfg.NIC),
			fmt.Sprintf("%.0f", res.Mbps), fmt.Sprintf("%.3f", res.Fairness),
			fmt.Sprintf("%d", res.FabricDrops), fmt.Sprintf("%d", res.FabricMaxDepth),
			fmt.Sprintf("%.0f", res.LatencyP90us))
	}
	return t, results, nil
}

// ScenarioFaults runs the fault/churn scenarios on a switched rack
// under incast: a fault-free baseline, then each fault kind, Xen vs
// CDNA. The fault fires a quarter of the way into the measurement
// window and heals a quarter later (blackouts an eighth), targeting
// host 0's first access link/port — the incast root, so recovery is on
// the critical path. Columns report goodput plus the recovery gauges:
// retransmissions (RTO recovery), switch drops (frames lost to the
// dead link/port), FDB station moves (re-learning churn after a port
// failure), and tail latency.
func ScenarioFaults(o Opts, hosts int) (*stats.Table, []Result, error) {
	faults := []FaultSpec{
		{},
		{Kind: FaultLinkFlap, After: o.Duration / 4, Outage: o.Duration / 4},
		{Kind: FaultPortFail, After: o.Duration / 4, Outage: o.Duration / 4},
		{Kind: FaultBlackout, After: o.Duration / 4, Outage: o.Duration / 8},
	}
	var cfgs []Config
	for _, f := range faults {
		for _, mode := range []Mode{ModeXen, ModeCDNA} {
			nic := NICIntel
			if mode == ModeCDNA {
				nic = NICRice
			}
			cfg := DefaultConfig(mode, nic, Tx)
			cfg.Hosts = hosts
			cfg.Pattern = PatternIncast
			cfg.Fault = f
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Fault", "System", "Mb/s", "LinkDrops", "SwitchDrops", "Flooded", "Retrans", "p90 lat (us)"}}
	for i, cfg := range cfgs {
		res := results[i]
		t.AddRow(cfg.Fault.Kind.String(), fmt.Sprintf("%v/%v", cfg.Mode, cfg.NIC),
			fmt.Sprintf("%.0f", res.Mbps), fmt.Sprintf("%d", res.LinkDrops),
			fmt.Sprintf("%d", res.FabricDrops), fmt.Sprintf("%d", res.FabricFlooded),
			fmt.Sprintf("%d", res.Retransmits), fmt.Sprintf("%.0f", res.LatencyP90us))
	}
	return t, results, nil
}

// fabricSpecOf is the standard multi-tier shape the fabric scenarios
// use: two hosts per leaf/edge, two spines (or two aggregations and two
// cores per pod), under the given oversubscription ratio.
func fabricSpecOf(kind topo.FabricKind, oversub float64) topo.FabricSpec {
	if kind == topo.KindToR {
		return topo.FabricSpec{}
	}
	return topo.FabricSpec{Kind: kind, HostsPerLeaf: 2, Spines: 2, Oversub: oversub}
}

// FabricIncast is the cross-rack incast collapse scenario: N→1 fan-in
// where the spokes sit in *different racks* than the root, so the
// convergence point moves from a single ToR's egress port onto the
// multi-tier fabric's downlink toward the root's leaf. Rows compare the
// single ToR against leaf-spine and fat-tree fabrics, Xen vs CDNA.
func FabricIncast(o Opts, hosts int) (*stats.Table, []Result, error) {
	kinds := []topo.FabricKind{topo.KindToR, topo.KindLeafSpine, topo.KindFatTree}
	var cfgs []Config
	for _, kind := range kinds {
		for _, mode := range []Mode{ModeXen, ModeCDNA} {
			nic := NICIntel
			if mode == ModeCDNA {
				nic = NICRice
			}
			cfg := DefaultConfig(mode, nic, Tx)
			cfg.Hosts = hosts
			cfg.Pattern = PatternIncast
			cfg.Fabric = fabricSpecOf(kind, 1)
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Fabric", "System", "Mb/s", "SwitchDrops", "MaxQ", "Flooded", "Retrans"}}
	for i, cfg := range cfgs {
		res := results[i]
		t.AddRow(cfg.Fabric.Kind.String(), fmt.Sprintf("%v/%v", cfg.Mode, cfg.NIC),
			fmt.Sprintf("%.0f", res.Mbps), fmt.Sprintf("%d", res.FabricDrops),
			fmt.Sprintf("%d", res.FabricMaxDepth), fmt.Sprintf("%d", res.FabricFlooded),
			fmt.Sprintf("%d", res.Retransmits))
	}
	return t, results, nil
}

// FabricOversub is the core-link saturation scenario: disjoint host
// pairs on a leaf-spine fabric with one host per leaf, so *every* flow
// crosses the spine tier, while the oversubscription ratio starves the
// trunks. At 1:1 the spine tier is transparent; as the ratio grows,
// flows queue and tail-drop at the leaf uplinks — goodput degrades and
// the deepest queue moves from the access ports onto the trunks. (An
// all-to-all pattern would muddy the signal: throttled trunks also
// relieve fan-in pressure at host egress ports, so total drops are not
// monotone in the ratio there.)
func FabricOversub(o Opts, oversubs []float64) (*stats.Table, []Result, error) {
	cfgs := make([]Config, len(oversubs))
	for i, ov := range oversubs {
		cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
		cfg.Hosts = 4
		cfg.Pattern = PatternPairs
		cfg.Fabric = topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 1, Spines: 2, Oversub: ov}
		cfgs[i] = cfg
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Oversub", "Mb/s", "SwitchDrops", "MaxQ", "Retrans", "p90 lat (us)"}}
	for i, ov := range oversubs {
		res := results[i]
		t.AddRow(fmt.Sprintf("%g:1", ov), fmt.Sprintf("%.0f", res.Mbps),
			fmt.Sprintf("%d", res.FabricDrops), fmt.Sprintf("%d", res.FabricMaxDepth),
			fmt.Sprintf("%d", res.Retransmits), fmt.Sprintf("%.0f", res.LatencyP90us))
	}
	return t, results, nil
}

// ScenarioOpenLoop compares Xen and CDNA under open-loop load: Poisson
// flow arrivals (web-search flow sizes) from a modeled client
// population converging incast-style across a leaf-spine fabric.
// Because arrivals do not slow down when the receive path saturates,
// the overloaded architecture shows response-time collapse — arrivals
// outrun completions and the p99 flow latency grows with the backlog —
// which the closed-loop scenarios structurally cannot exhibit.
func ScenarioOpenLoop(o Opts, rates []float64) (*stats.Table, []Result, error) {
	var cfgs []Config
	for _, rate := range rates {
		for _, mode := range []Mode{ModeXen, ModeCDNA} {
			nic := NICIntel
			if mode == ModeCDNA {
				nic = NICRice
			}
			cfg := DefaultConfig(mode, nic, Tx)
			cfg.Hosts = 4
			cfg.Pattern = PatternIncast
			cfg.Fabric = fabricSpecOf(topo.KindLeafSpine, 1)
			cfg.Workload = workload.Spec{
				Kind:     workload.Poisson,
				FlowRate: rate,
				SizeDist: workload.SizeWebSearch,
			}
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Rate/ep", "System", "Arrivals/s", "Flows/s", "p50 lat (us)", "p99 lat (us)", "SwitchDrops"}}
	for i, cfg := range cfgs {
		res := results[i]
		t.AddRow(fmt.Sprintf("%g", cfg.Workload.FlowRate), fmt.Sprintf("%v/%v", cfg.Mode, cfg.NIC),
			fmt.Sprintf("%.0f", res.ArrivalsPerSec), fmt.Sprintf("%.0f", res.FlowsPerSec),
			fmt.Sprintf("%.0f", res.MsgLatP50us), fmt.Sprintf("%.0f", res.MsgLatP99us),
			fmt.Sprintf("%d", res.FabricDrops))
	}
	return t, results, nil
}

// AblationIOMMU reproduces §5.3's discussion: protection by hypercall,
// by a context-aware IOMMU (guest enqueues directly), and disabled.
func AblationIOMMU(o Opts) (*stats.Table, []Result, error) {
	modes := []core.Mode{core.ModeHypercall, core.ModeIOMMU, core.ModeOff}
	cfgs := make([]Config, len(modes))
	for i, mode := range modes {
		cfgs[i] = DefaultConfig(ModeCDNA, NICRice, Tx)
		cfgs[i].Protection = mode
	}
	results, err := o.runBatch(cfgs)
	if err != nil {
		return nil, nil, err
	}
	t := &stats.Table{Header: []string{"Protection", "Mb/s", "Hyp", "Idle"}}
	for i, mode := range modes {
		res := results[i]
		t.AddRow(mode.String(), fmt.Sprintf("%.0f", res.Mbps), fmtPct(res.Profile.Hyp), fmtPct(res.Profile.Idle))
	}
	return t, results, nil
}
