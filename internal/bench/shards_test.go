package bench

import (
	"fmt"
	"testing"

	"cdna/internal/sim"
	"cdna/internal/workload"
)

// The shard determinism contract: partitioning a multi-host machine
// over N engine shards is purely a wall-clock optimization — every
// result a sharded run produces must be byte-identical to the
// single-engine run of the same configuration. These tests pin that
// contract across patterns, workloads, architectures, directions and
// fault scenarios.

// runJSON runs cfg and returns the result as canonical JSON.
func runJSON(t *testing.T, cfg Config) string {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return resultJSON(t, res)
}

// shardDiff runs cfg at one shard and at each of the given counts and
// fails on any divergence.
func shardDiff(t *testing.T, cfg Config, shards ...int) {
	t.Helper()
	cfg.Shards = 1
	ref := runJSON(t, cfg)
	for _, s := range shards {
		cfg.Shards = s
		if got := runJSON(t, cfg); got != ref {
			t.Fatalf("shards=%d diverges from shards=1:\n--- 1 ---\n%s\n--- %d ---\n%s", s, ref, s, got)
		}
	}
}

func TestClampShards(t *testing.T) {
	for _, tc := range []struct{ shards, hosts, want int }{
		{0, 4, 1}, {-3, 4, 1}, {1, 4, 1}, {3, 4, 3}, {4, 4, 4}, {9, 4, 4}, {2, 2, 2},
	} {
		if got := clampShards(tc.shards, tc.hosts); got != tc.want {
			t.Errorf("clampShards(%d, %d) = %d, want %d", tc.shards, tc.hosts, got, tc.want)
		}
	}
}

// TestShardDifferentialRandom draws pseudo-random multi-host
// configurations — architecture, rack size, pattern, workload kind,
// direction, optional fault — and checks each against the full shard
// ladder up to one shard per host.
func TestShardDifferentialRandom(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 4
	}
	combos := []struct {
		mode Mode
		nic  NICKind
	}{
		{ModeCDNA, NICRice},
		{ModeXen, NICRice},
		{ModeXen, NICIntel},
		{ModeNative, NICIntel},
	}
	hostChoices := []int{2, 3, 4}
	patterns := []Pattern{PatternPairs, PatternIncast, PatternAllToAll}
	kinds := []workload.Kind{workload.Bulk, workload.RequestResponse, workload.Churn, workload.Burst}
	dirs := []Direction{Tx, Rx, Both}
	faults := []FaultKind{FaultNone, FaultNone, FaultLinkFlap, FaultPortFail, FaultBlackout}

	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(uint64(seed)*0x9e3779b9 + 11)
			combo := combos[rng.Intn(len(combos))]
			cfg := DefaultConfig(combo.mode, combo.nic, dirs[rng.Intn(len(dirs))])
			cfg.Warmup = 10 * sim.Millisecond
			cfg.Duration = 30 * sim.Millisecond
			cfg.Hosts = hostChoices[rng.Intn(len(hostChoices))]
			cfg.Pattern = patterns[rng.Intn(len(patterns))]
			cfg.Guests = 1 + rng.Intn(2)
			cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
			cfg.Workload.Kind = kinds[rng.Intn(len(kinds))]
			if f := faults[rng.Intn(len(faults))]; f != FaultNone {
				if f != FaultPortFail || cfg.Hosts > 1 {
					cfg.Fault = FaultSpec{Kind: f, After: cfg.Duration / 4, Outage: cfg.Duration / 4}
				}
			}
			ladder := make([]int, 0, cfg.Hosts-1)
			for s := 2; s <= cfg.Hosts; s++ {
				ladder = append(ladder, s)
			}
			t.Logf("%s shards=%v", cfg.Name(), ladder)
			shardDiff(t, cfg, ladder...)
		})
	}
}

// TestShardDifferentialFaults pins every fault scenario explicitly at
// the maximum shard count: fault events mutate links and fabric ports
// on other shards, so their solo-round serialization must replay the
// single-engine order exactly — injection, the outage, and the healing.
func TestShardDifferentialFaults(t *testing.T) {
	for _, kind := range []FaultKind{FaultLinkFlap, FaultPortFail, FaultBlackout} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
			cfg.Hosts = 4
			cfg.Pattern = PatternIncast
			cfg.Guests = 2
			cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
			cfg.Warmup = 10 * sim.Millisecond
			cfg.Duration = 40 * sim.Millisecond
			cfg.Fault = FaultSpec{Kind: kind, After: 10 * sim.Millisecond, Outage: 10 * sim.Millisecond}
			shardDiff(t, cfg, 2, 4)
		})
	}
}

// TestShardSnapshotRoundTrip is the checkpoint contract on a sharded
// machine: a snapshot taken mid-window (seam queues, keyed event
// sequences and all) must restore into a byte-identical completion —
// in a machine with the same shard count, and reject one with a
// different count.
func TestShardSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Hosts = 4
	cfg.Pattern = PatternIncast
	cfg.Guests = 2
	cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 30 * sim.Millisecond
	cfg.Shards = 4
	cfg.Fault = FaultSpec{Kind: FaultLinkFlap, After: 8 * sim.Millisecond, Outage: 8 * sim.Millisecond}

	// Mid-window, between injection and healing.
	snapAt := cfg.Warmup + 12*sim.Millisecond
	cold, img := runWithSnapshot(t, cfg, snapAt)
	resumed := resumeFromSnapshot(t, cfg, snapAt, img)
	a, b := resultJSON(t, cold), resultJSON(t, resumed)
	if a != b {
		t.Fatalf("restored sharded run diverged:\n--- cold ---\n%s\n--- restored ---\n%s", a, b)
	}

	// The sharded image must also equal the single-engine result.
	single := cfg
	single.Shards = 1
	if got := runJSON(t, single); got != a {
		t.Fatalf("sharded run diverged from single-engine run:\n--- 1 ---\n%s\n--- 4 ---\n%s", got, a)
	}

	// A machine with a different shard layout must reject the image.
	other := cfg
	other.Shards = 2
	om, err := Prepare(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := om.Restore(img); err == nil {
		t.Fatal("restore into a machine with a different shard count succeeded")
	}
}

// TestShardTablesByteIdentical renders a multi-host table with and
// without sharding: the formatted output (the artifact cmd/cdnatables
// emits) must match byte for byte.
func TestShardTablesByteIdentical(t *testing.T) {
	render := func(shards int) string {
		o := Opts{Warmup: 10 * sim.Millisecond, Duration: 30 * sim.Millisecond, Shards: shards}
		tbl, _, err := TopologyIncast(o, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	ref := render(1)
	if got := render(4); got != ref {
		t.Fatalf("sharded table diverges:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s", ref, got)
	}
}
