package bench

// Wiring invariants of the machine builder: the topology the experiments
// assume is actually what gets assembled.

import (
	"testing"

	"cdna/internal/core"
	"cdna/internal/sim"
)

func TestBuildCDNATopology(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Guests = 8
	cfg.NICs = 2
	cfg.ConnsPerGuestPerNIC = 2
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.RiceNICs) != 2 || len(m.IntelNICs) != 0 {
		t.Fatalf("NICs: rice=%d intel=%d", len(m.RiceNICs), len(m.IntelNICs))
	}
	if len(m.CtxMgrs) != 2 {
		t.Fatalf("context managers = %d", len(m.CtxMgrs))
	}
	// One context per guest per NIC.
	for i, cm := range m.CtxMgrs {
		if cm.Assigned() != 8 {
			t.Fatalf("NIC %d assigned contexts = %d, want 8", i, cm.Assigned())
		}
	}
	if len(m.Drivers) != 16 {
		t.Fatalf("drivers = %d, want 16", len(m.Drivers))
	}
	// dom0 + 8 guests.
	if len(m.Hyp.Domains()) != 9 {
		t.Fatalf("domains = %d", len(m.Hyp.Domains()))
	}
	// Connections: guests * NICs * conns.
	if len(m.Conns.Conns) != 8*2*2 {
		t.Fatalf("conns = %d", len(m.Conns.Conns))
	}
	// Every driver has a distinct MAC.
	macs := map[string]bool{}
	for _, d := range m.Drivers {
		s := d.MAC().String()
		if macs[s] {
			t.Fatalf("duplicate MAC %s", s)
		}
		macs[s] = true
	}
}

func TestBuildCDNAContextLimit(t *testing.T) {
	// 33 guests on one NIC exceeds the 32 hardware contexts.
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Guests = core.NumContexts + 1
	cfg.NICs = 1
	cfg.ConnsPerGuestPerNIC = 1
	if _, err := Build(cfg); err == nil {
		t.Fatal("building more guests than hardware contexts must fail")
	}
	// Exactly 32 works.
	cfg.Guests = core.NumContexts
	if _, err := Build(cfg); err != nil {
		t.Fatalf("32 guests should fit 32 contexts: %v", err)
	}
}

func TestBuildXenTopology(t *testing.T) {
	cfg := DefaultConfig(ModeXen, NICIntel, Rx)
	cfg.Guests = 4
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.IntelNICs) != 2 || len(m.RiceNICs) != 0 {
		t.Fatalf("NICs: intel=%d rice=%d", len(m.IntelNICs), len(m.RiceNICs))
	}
	if len(m.Hyp.Domains()) != 5 {
		t.Fatalf("domains = %d, want dom0+4", len(m.Hyp.Domains()))
	}
}

func TestBuildXenRiceUsesOneTrustedContext(t *testing.T) {
	cfg := DefaultConfig(ModeXen, NICRice, Tx)
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, cm := range m.CtxMgrs {
		if cm.Assigned() != 1 {
			t.Fatalf("NIC %d: %d contexts, want 1 (dom0 only, §5.2)", i, cm.Assigned())
		}
	}
	// The trusted dom0 path skips validation entirely.
	if m.Hyp.Prot.Mode != core.ModeOff {
		t.Fatalf("dom0 protection mode = %v, want off (trusted, §2.2)", m.Hyp.Prot.Mode)
	}
}

func TestBuildNativeHasNoHypervisor(t *testing.T) {
	cfg := DefaultConfig(ModeNative, NICIntel, Tx)
	cfg.NICs = 3
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Hyp != nil {
		t.Fatal("native machine has a hypervisor")
	}
	if len(m.IntelNICs) != 3 {
		t.Fatalf("NICs = %d", len(m.IntelNICs))
	}
}

func TestBuildUnknownModeFails(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Mode = Mode(99)
	if _, err := Build(cfg); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestDuplexWiring(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Both)
	cfg.Guests = 2
	cfg.ConnsPerGuestPerNIC = 3
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both directions double the connection count.
	if len(m.Conns.Conns) != 2*2*3*2 {
		t.Fatalf("duplex conns = %d, want 24", len(m.Conns.Conns))
	}
}

func TestModeAndNICStrings(t *testing.T) {
	if ModeNative.String() != "Native" || ModeXen.String() != "Xen" || ModeCDNA.String() != "CDNA" {
		t.Fatal("mode strings")
	}
	if NICIntel.String() != "Intel" || NICRice.String() != "RiceNIC" {
		t.Fatal("nic strings")
	}
	if Both.String() != "duplex" || Direction(9).String() == "" {
		t.Fatal("direction strings")
	}
}

func TestRunTracedAttachesTracer(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Warmup = 20 * sim.Millisecond
	cfg.Duration = 30 * sim.Millisecond
	m, res, err := RunTraced(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tracer == nil || m.Tracer.Count() == 0 {
		t.Fatal("tracer not recording")
	}
	if len(m.Tracer.Last(10)) != 10 {
		t.Fatal("trace tail unavailable")
	}
	if res.Mbps <= 0 {
		t.Fatal("traced run produced no result")
	}
}
