package bench

import (
	"strings"
	"testing"

	"cdna/internal/sim"
	"cdna/internal/topo"
	"cdna/internal/workload"
)

// The multi-tier fabric determinism contract: a leaf-spine or fat-tree
// configuration is byte-identical at any shard count (trunks live on
// one engine and are never seams; ECMP hashes only frame addresses),
// and its rendered tables replay exactly. The CI suite re-runs these
// under -tags simheap and -tags simwheel, extending the pins across
// all three event-queue implementations.

// TestFabricShardDifferential runs leaf-spine and fat-tree racks —
// closed- and open-loop workloads, with and without oversubscription —
// across the shard ladder.
func TestFabricShardDifferential(t *testing.T) {
	cases := []struct {
		name string
		spec topo.FabricSpec
		pat  Pattern
		work workload.Spec
	}{
		{
			name: "leafspine-incast-bulk",
			spec: topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2},
			pat:  PatternIncast,
		},
		{
			name: "leafspine-all2all-oversub",
			spec: topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 3, Oversub: 4},
			pat:  PatternAllToAll,
		},
		{
			name: "fattree-all2all-bulk",
			spec: topo.FabricSpec{Kind: topo.KindFatTree, HostsPerLeaf: 1, Spines: 2},
			pat:  PatternAllToAll,
		},
		{
			name: "leafspine-pairs-poisson",
			spec: topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2},
			pat:  PatternPairs,
			work: workload.Spec{Kind: workload.Poisson, FlowRate: 3000, SizeDist: workload.SizeWebSearch},
		},
		{
			name: "fattree-incast-pareto",
			spec: topo.FabricSpec{Kind: topo.KindFatTree, HostsPerLeaf: 2, Spines: 2},
			pat:  PatternIncast,
			work: workload.Spec{Kind: workload.Pareto, FlowRate: 2000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
			cfg.Hosts = 4
			cfg.Pattern = tc.pat
			cfg.Fabric = tc.spec
			cfg.Workload = tc.work
			cfg.Warmup = 10 * sim.Millisecond
			cfg.Duration = 30 * sim.Millisecond
			shardDiff(t, cfg, 2, 4)
		})
	}
}

// TestFabricTraceShardDifferential pins the trace-driven generator's
// shard invariance: events are assigned against the machine-global
// roster, so the same flow lands on the same endpoint at any shard
// count.
func TestFabricTraceShardDifferential(t *testing.T) {
	var tr workload.FlowTrace
	for i := 0; i < 60; i++ {
		tr.Events = append(tr.Events, workload.TraceEvent{
			At:   sim.Time(i) * 400 * sim.Microsecond,
			Src:  1 + i%3, // spokes 1..3
			Dst:  0,       // incast root
			Segs: 1 + i%7,
		})
	}
	workload.RegisterTrace("benchshard", &tr)
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Hosts = 4
	cfg.Pattern = PatternIncast
	cfg.Fabric = topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	cfg.Workload = workload.Spec{Kind: workload.Trace, TracePath: workload.MemPrefix + "benchshard"}
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 40 * sim.Millisecond
	shardDiff(t, cfg, 2, 4)
}

// TestFabricPortFailShardDifferential pins the headline bugfix's
// semantics across shards: a failed fabric port drops ingress frames
// identically at any shard count, through injection and healing.
func TestFabricPortFailShardDifferential(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Hosts = 4
	cfg.Pattern = PatternIncast
	cfg.Fabric = topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 40 * sim.Millisecond
	cfg.Fault = FaultSpec{Kind: FaultPortFail, After: 10 * sim.Millisecond, Outage: 10 * sim.Millisecond}
	shardDiff(t, cfg, 2, 4)
}

// TestFabricGoldenDeterminism pins byte-identical rendered output for
// the three fabric scenario tables, and that each scenario actually
// exhibits its phenomenon.
func TestFabricGoldenDeterminism(t *testing.T) {
	o := topoOpts()
	render := func() string {
		it, ires, err := FabricIncast(o, 4)
		if err != nil {
			t.Fatal(err)
		}
		ot, ores, err := FabricOversub(o, []float64{1, 4})
		if err != nil {
			t.Fatal(err)
		}
		lt, lres, err := ScenarioOpenLoop(o, []float64{10, 4000})
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range ires {
			if res.Mbps <= 0 {
				t.Fatalf("fabric incast row %s moved no traffic", res.Config.Name())
			}
		}
		// Oversubscription must bite: with every pair crossing the spine
		// tier, starved trunks tail-drop and goodput degrades. (The test
		// window is shorter than the RTO, so retransmissions are not a
		// usable signal here.)
		if ores[1].FabricDrops <= ores[0].FabricDrops {
			t.Fatalf("4:1 oversub fabric drops %d not above 1:1's %d",
				ores[1].FabricDrops, ores[0].FabricDrops)
		}
		if ores[1].Mbps >= ores[0].Mbps {
			t.Fatalf("4:1 oversub goodput %.0f not below 1:1's %.0f",
				ores[1].Mbps, ores[0].Mbps)
		}
		// Open-loop overload must collapse response time. The p99 is
		// service-time dominated (the web-search tail is megabytes), so
		// the backlog-sensitive statistic is the *median*: at light load
		// it is a small flow's service time, under overload every flow
		// first waits out the queue.
		light, heavy := lres[1], lres[3] // CDNA rows
		if heavy.MsgLatP50us < 4*light.MsgLatP50us {
			t.Fatalf("open-loop overload p50 %.0fus not ≫ light load's %.0fus",
				heavy.MsgLatP50us, light.MsgLatP50us)
		}
		if heavy.ArrivalsPerSec <= heavy.FlowsPerSec {
			t.Fatalf("overloaded open loop shows no backlog (%.0f arrivals/s vs %.0f flows/s)",
				heavy.ArrivalsPerSec, heavy.FlowsPerSec)
		}
		return it.String() + "\n" + ot.String() + "\n" + lt.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("reruns differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "leafspine") || !strings.Contains(first, "fattree") {
		t.Fatalf("rendered fabric tables look wrong:\n%s", first)
	}
}

// TestFabricTablesShardByteIdentical renders the fabric scenario tables
// with and without sharding: the formatted artifacts must match byte
// for byte.
func TestFabricTablesShardByteIdentical(t *testing.T) {
	render := func(shards int) string {
		o := topoOpts()
		o.Shards = shards
		it, _, err := FabricIncast(o, 4)
		if err != nil {
			t.Fatal(err)
		}
		lt, _, err := ScenarioOpenLoop(o, []float64{400})
		if err != nil {
			t.Fatal(err)
		}
		return it.String() + "\n" + lt.String()
	}
	ref := render(1)
	if got := render(4); got != ref {
		t.Fatalf("sharded fabric tables diverge:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s", ref, got)
	}
}

// TestFabricConfigValidation covers the bench-layer gate: multi-tier
// fabrics require a multi-host machine, and malformed specs are
// rejected before building anything.
func TestFabricConfigValidation(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Fabric = topo.FabricSpec{Kind: topo.KindLeafSpine}
	if err := cfg.Validate(); err == nil {
		t.Fatal("single-host leaf-spine config accepted")
	}
	cfg.Hosts = 4
	cfg.Pattern = PatternIncast
	if err := cfg.Validate(); err != nil {
		t.Fatalf("multi-host leaf-spine config rejected: %v", err)
	}
	cfg.Fabric.Spines = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative spine count accepted")
	}
	cfg.Fabric.Spines = 0
	cfg.Fabric.Oversub = -2
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative oversubscription accepted")
	}
}

// TestFabricNamesDistinct checks that fabric variants of the same rack
// produce distinct config names (the campaign grid's identity).
func TestFabricNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range []topo.FabricSpec{
		{},
		{Kind: topo.KindLeafSpine},
		{Kind: topo.KindLeafSpine, Spines: 4},
		{Kind: topo.KindLeafSpine, Oversub: 4},
		{Kind: topo.KindFatTree},
	} {
		cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
		cfg.Hosts = 4
		cfg.Pattern = PatternIncast
		cfg.Fabric = spec
		name := cfg.Name()
		if seen[name] {
			t.Fatalf("duplicate config name %q for spec %+v", name, spec)
		}
		seen[name] = true
	}
}

// TestFabricSnapshotRoundTripBench pins checkpoint/restore through a
// multi-tier fabric mid-window: the restored run must complete
// byte-identically to the cold one, including trunk queues and every
// member switch's FDB.
func TestFabricSnapshotRoundTripBench(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Hosts = 4
	cfg.Pattern = PatternIncast
	cfg.Fabric = topo.FabricSpec{Kind: topo.KindLeafSpine, HostsPerLeaf: 2, Spines: 2}
	cfg.Workload = workload.Spec{Kind: workload.Poisson, FlowRate: 2000, SizeDist: workload.SizeWebSearch}
	cfg.Warmup = 10 * sim.Millisecond
	cfg.Duration = 30 * sim.Millisecond
	cfg.Shards = 2

	snapAt := cfg.Warmup + 11*sim.Millisecond
	cold, img := runWithSnapshot(t, cfg, snapAt)
	resumed := resumeFromSnapshot(t, cfg, snapAt, img)
	a, b := resultJSON(t, cold), resultJSON(t, resumed)
	if a != b {
		t.Fatalf("restored fabric run diverged:\n--- cold ---\n%s\n--- restored ---\n%s", a, b)
	}

	// A different fabric shape must reject the image (switch roster
	// mismatch surfaces as a registry/state error, not silence).
	other := cfg
	other.Fabric.Spines = 3
	om, err := Prepare(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := om.Restore(img); err == nil {
		t.Fatal("restore into a different fabric shape succeeded")
	}
}
