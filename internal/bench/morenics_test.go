package bench

import "testing"

// TestExtensionMoreNICsShape verifies the paper's §5.4 conjecture in
// our model: with four CDNA NICs the single-guest peak far exceeds the
// two-NIC configuration, and the curve bends over (declines or
// plateaus below peak) once many guests saturate the CPU — "a similar
// shape to that of software virtualization, but with a much higher
// peak".
func TestExtensionMoreNICsShape(t *testing.T) {
	_, results, err := ExtensionMoreNICs(Quick(), []int{1, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	one, eight, many := results[0], results[1], results[2]
	if one.Mbps < 2500 {
		t.Errorf("4-NIC single-guest peak = %.0f Mb/s, want well above the 2-NIC 1883", one.Mbps)
	}
	if one.Profile.Idle > 0.25 {
		t.Errorf("4-NIC single guest idle = %.1f%%; four links should nearly consume the CPU", 100*one.Profile.Idle)
	}
	// The conjectured bend-over: many guests cannot exceed the few-guest
	// throughput once the CPU is the bottleneck.
	if many.Mbps > one.Mbps*1.05 {
		t.Errorf("throughput grew with 24 guests (%.0f vs %.0f)?", many.Mbps, one.Mbps)
	}
	if eight.Profile.Idle > 0.02 {
		t.Errorf("8-guest idle = %.1f%%, expected saturation", 100*eight.Profile.Idle)
	}
}
