package bench

import (
	"fmt"

	"cdna/internal/core"
	"cdna/internal/sim"
	"cdna/internal/stats"
)

// Config describes one experiment.
type Config struct {
	Mode       Mode
	NIC        NICKind
	Guests     int
	NICs       int
	Dir        Direction
	Protection core.Mode // CDNA only

	ConnsPerGuestPerNIC int
	Window              int

	// MaxEnqueueBatch caps descriptors per CDNA enqueue (ablation A2;
	// 0 = unlimited).
	MaxEnqueueBatch int
	// DirectPerContextIRQ switches the CDNA NIC to one physical
	// interrupt per context (ablation A1).
	DirectPerContextIRQ bool
	// TxCoalescePkts overrides the CDNA NIC's transmit interrupt
	// coalescing threshold (ablation A5; 0 = calibrated default).
	TxCoalescePkts int

	Warmup   sim.Time
	Duration sim.Time

	Cal Calibration
}

// Name returns a compact identifier for logs and tables.
func (c Config) Name() string {
	return fmt.Sprintf("%v/%v/%dg/%dnic/%v", c.Mode, c.NIC, c.Guests, c.NICs, c.Dir)
}

// DefaultConfig returns the standard 2-NIC single-guest setup of
// Tables 2–4, in the given mode and direction.
func DefaultConfig(mode Mode, nic NICKind, dir Direction) Config {
	cfg := Config{
		Mode:       mode,
		NIC:        nic,
		Guests:     1,
		NICs:       2,
		Dir:        dir,
		Protection: core.ModeHypercall,
		Window:     48,
		Warmup:     300 * sim.Millisecond,
		Duration:   sim.Second,
		Cal:        Default(),
	}
	cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
	return cfg
}

// connsFor balances a fixed total connection count per NIC over the
// guests, as the paper's benchmark tool does (§5.1).
func connsFor(guests int) int {
	const totalPerNIC = 12
	c := totalPerNIC / guests
	if c < 1 {
		c = 1
	}
	return c
}

// Result is one experiment's measurements, matching the columns of
// Tables 2–4.
type Result struct {
	Config Config

	Mbps    float64
	Profile stats.Profile

	DriverIntrPerSec float64 // interrupts delivered to the driver domain
	GuestIntrPerSec  float64 // interrupts delivered to guests (aggregate)

	PktPerSec     float64
	PhysIRQPerSec float64 // physical interrupts fielded by the hypervisor
	LatencyP50us  float64 // median end-to-end segment latency
	LatencyP90us  float64
	Drops         uint64 // NIC-level receive drops
	Retransmits   uint64
	Fairness      float64
	Faults        uint64 // CDNA protection faults (should be 0 under load)
	Events        uint64 // simulator events executed (diagnostics)
}

// String formats the result as a row like the paper's tables.
func (r Result) String() string {
	return fmt.Sprintf("%-28s %7.0f Mb/s | %s | drv %5.0f/s gst %6.0f/s",
		r.Config.Name(), r.Mbps, r.Profile, r.DriverIntrPerSec, r.GuestIntrPerSec)
}

// Run builds the machine, runs warmup plus the measurement window, and
// collects the result.
func Run(cfg Config) (Result, error) {
	_, res, err := runMachine(cfg, 0)
	return res, err
}

// RunTraced is Run with the simulator's flight recorder attached: the
// returned machine's Tracer holds the last `traceN` fired events.
func RunTraced(cfg Config, traceN int) (*Machine, Result, error) {
	return runMachine(cfg, traceN)
}

func runMachine(cfg Config, traceN int) (*Machine, Result, error) {
	if cfg.ConnsPerGuestPerNIC <= 0 {
		cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
	}
	m, err := Build(cfg)
	if err != nil {
		return nil, Result{}, err
	}
	if traceN > 0 {
		m.Tracer = m.Eng.Attach(traceN)
	}
	// Stagger connection starts over the first part of warmup so the
	// initial windows do not arrive as one synchronized burst.
	stagger := cfg.Warmup / 3
	if stagger > 50*sim.Millisecond {
		stagger = 50 * sim.Millisecond
	}
	for i, c := range m.Conns.Conns {
		c := c
		// Offset past driver initialization (initial receive-buffer
		// posting), then spread the starts.
		at := 2*sim.Millisecond + sim.Time(i)*stagger/sim.Time(len(m.Conns.Conns))
		m.Eng.At(at, "conn.start", c.Start)
	}
	m.Eng.Run(cfg.Warmup)

	// Open the measurement window.
	m.CPU.StartWindow()
	m.Conns.StartWindow()
	if m.Hyp != nil {
		m.Hyp.StartWindow()
	}
	for _, n := range m.IntelNICs {
		n.E.StartWindow()
		n.Coal.Fires.StartWindow()
	}
	for _, n := range m.RiceNICs {
		n.E.StartWindow()
		n.Coal.Fires.StartWindow()
	}

	m.Eng.Run(cfg.Warmup + cfg.Duration)
	m.CPU.EndWindow()

	res := Result{
		Config:      cfg,
		Mbps:        m.Conns.DeliveredMbps(cfg.Duration),
		Profile:     m.CPU.Profile(),
		Retransmits: m.Conns.Retransmits(),
		Fairness:    m.Conns.FairnessIndex(),
		Events:      m.Eng.Fired(),
	}
	res.PktPerSec = float64(m.Conns.DeliveredBytes()) / 1448 / cfg.Duration.Seconds()
	res.LatencyP50us = m.Conns.LatencyQuantile(0.5)
	res.LatencyP90us = m.Conns.LatencyQuantile(0.9)
	if m.Hyp != nil {
		res.PhysIRQPerSec = m.Hyp.PhysIRQs.Rate(cfg.Duration)
	}

	for _, n := range m.IntelNICs {
		res.Drops += n.E.RxDrops.Window()
	}
	for _, n := range m.RiceNICs {
		res.Drops += n.E.RxDrops.Window()
		res.Faults += n.E.Faults.Window()
	}

	switch cfg.Mode {
	case ModeNative:
		// Physical interrupts go straight to the host OS; report them in
		// the guest column.
		var fires uint64
		for _, n := range m.IntelNICs {
			fires += n.Coal.Fires.Window()
		}
		res.GuestIntrPerSec = float64(fires) / cfg.Duration.Seconds()
	default:
		if cfg.Mode == ModeXen {
			// All physical NIC interrupts route to the driver domain.
			res.DriverIntrPerSec = m.Hyp.PhysIRQs.Rate(cfg.Duration)
		} else {
			res.DriverIntrPerSec = m.dom0.Virqs.Rate(cfg.Duration)
		}
		var g float64
		for _, d := range m.guestDoms {
			g += d.Virqs.Rate(cfg.Duration)
		}
		res.GuestIntrPerSec = g
	}
	return m, res, nil
}
