package bench

import (
	"fmt"

	"cdna/internal/core"
	"cdna/internal/sim"
	"cdna/internal/stats"
	"cdna/internal/topo"
	"cdna/internal/workload"
)

// Config describes one experiment. The JSON form (used by
// internal/campaign's records and cmd/cdnasweep's grid specs) carries
// everything except the calibration, which is always reconstructed from
// Default() so that result files stay small and stable.
type Config struct {
	Mode       Mode      `json:"mode"`
	NIC        NICKind   `json:"nic"`
	Guests     int       `json:"guests"`
	NICs       int       `json:"nics"`
	Dir        Direction `json:"dir"`
	Protection core.Mode `json:"protection"` // CDNA only

	// Hosts is the number of machines on the fabric. 0 or 1 is the
	// classic topology (one host plus the CPU-less peer); >= 2 builds
	// that many full hosts — each with its own CPU, guests and NICs —
	// on a simulated top-of-rack switch, with traffic wired by Pattern.
	Hosts int `json:"hosts,omitempty"`
	// Pattern selects the cross-host scenario (pairs | incast |
	// all2all); ignored unless Hosts > 1.
	Pattern Pattern `json:"pattern,omitempty"`
	// Fabric selects the switch topology connecting the hosts. The zero
	// value is the classic single top-of-rack switch, so legacy configs
	// and records are unchanged; leaf-spine and fat-tree presets compose
	// multiple switches with ECMP-hashed trunks (internal/topo).
	// Requires Hosts > 1 for any non-ToR kind.
	Fabric topo.FabricSpec `json:"fabric,omitzero"`
	// Shards partitions a multi-host machine into per-host engine
	// shards advancing in barrier-synchronized rounds (shards.go). It
	// is purely a wall-clock knob: results are byte-identical at any
	// value, so it is excluded from the JSON schema and the config
	// name. Clamped to [1, Hosts]; ignored for single-host machines.
	Shards int `json:"-"`

	ConnsPerGuestPerNIC int `json:"conns_per_guest_per_nic"`
	Window              int `json:"window"`

	// Workload selects the traffic shape each connection slot runs.
	// The zero value is the paper's bulk benchmark, so legacy configs
	// and records are unchanged.
	Workload workload.Spec `json:"workload"`

	// MaxEnqueueBatch caps descriptors per CDNA enqueue (ablation A2;
	// 0 = unlimited).
	MaxEnqueueBatch int `json:"max_enqueue_batch,omitempty"`
	// DirectPerContextIRQ switches the CDNA NIC to one physical
	// interrupt per context (ablation A1).
	DirectPerContextIRQ bool `json:"direct_per_context_irq,omitempty"`
	// TxCoalescePkts overrides the CDNA NIC's transmit interrupt
	// coalescing threshold (ablation A5; 0 = calibrated default).
	TxCoalescePkts int `json:"tx_coalesce_pkts,omitempty"`

	// Fault schedules a fault/churn scenario inside the measurement
	// window (fault.go). The zero value injects nothing, so legacy
	// configs and records are unchanged.
	Fault FaultSpec `json:"fault,omitzero"`

	Warmup   sim.Time `json:"warmup_ns"`
	Duration sim.Time `json:"duration_ns"`

	Cal Calibration `json:"-"`
}

// Name returns a compact identifier for logs and tables. Non-default
// variants (protection, the ablation knobs) append suffixes so that
// every point of a campaign grid has a distinct name.
func (c Config) Name() string {
	name := fmt.Sprintf("%v/%v/%dg/%dnic/%v", c.Mode, c.NIC, c.Guests, c.NICs, c.Dir)
	if c.Hosts > 1 {
		name += fmt.Sprintf("/hosts=%d/%v", c.Hosts, c.Pattern) + c.Fabric.Suffix()
	}
	if c.Mode == ModeCDNA && c.Protection != core.ModeHypercall {
		name += "/prot=" + c.Protection.String()
	}
	if c.MaxEnqueueBatch > 0 {
		name += fmt.Sprintf("/batch=%d", c.MaxEnqueueBatch)
	}
	if c.DirectPerContextIRQ {
		name += "/directirq"
	}
	if c.TxCoalescePkts > 0 {
		name += fmt.Sprintf("/coal=%d", c.TxCoalescePkts)
	}
	name += c.Workload.Suffix()
	name += c.Fault.Suffix()
	return name
}

// DefaultConfig returns the standard 2-NIC single-guest setup of
// Tables 2–4, in the given mode and direction.
func DefaultConfig(mode Mode, nic NICKind, dir Direction) Config {
	cfg := Config{
		Mode:       mode,
		NIC:        nic,
		Guests:     1,
		NICs:       2,
		Dir:        dir,
		Protection: core.ModeHypercall,
		Window:     48,
		Warmup:     300 * sim.Millisecond,
		Duration:   sim.Second,
		Cal:        Default(),
	}
	cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
	return cfg
}

// BalancedConns returns the default connections per guest per NIC for
// a guest count: a fixed total per NIC balanced over the guests, as the
// paper's benchmark tool does (§5.1). Campaign grids use it to record
// the effective connection count explicitly in each configuration.
func BalancedConns(guests int) int { return connsFor(guests) }

// connsFor balances a fixed total connection count per NIC over the
// guests, as the paper's benchmark tool does (§5.1).
func connsFor(guests int) int {
	const totalPerNIC = 12
	c := totalPerNIC / guests
	if c < 1 {
		c = 1
	}
	return c
}

// Result is one experiment's measurements, matching the columns of
// Tables 2–4. The JSON field names are the machine-readable schema
// documented in EXPERIMENTS.md and emitted by cmd/cdnasweep.
type Result struct {
	Config Config `json:"config"`

	Mbps    float64       `json:"mbps"`
	Profile stats.Profile `json:"profile"`

	DriverIntrPerSec float64 `json:"driver_intr_per_sec"` // interrupts delivered to the driver domain
	GuestIntrPerSec  float64 `json:"guest_intr_per_sec"`  // interrupts delivered to guests (aggregate)

	PktPerSec     float64 `json:"pkt_per_sec"`
	PhysIRQPerSec float64 `json:"phys_irq_per_sec"` // physical interrupts fielded by the hypervisor
	LatencyP50us  float64 `json:"latency_p50_us"`   // median end-to-end segment latency
	LatencyP90us  float64 `json:"latency_p90_us"`
	Drops         uint64  `json:"drops"` // NIC-level receive drops
	Retransmits   uint64  `json:"retransmits"`
	Fairness      float64 `json:"fairness"`
	Faults        uint64  `json:"faults"` // CDNA protection faults (should be 0 under load)
	Events        uint64  `json:"events"` // simulator events executed (diagnostics)

	// Fabric columns (multi-host only; zero for the classic topology),
	// all scoped to the measurement window: FabricDrops is egress tail
	// drops at the switch; FabricMaxDepth the deepest egress queue any
	// port reached. FabricFlooded and FabricMoves gauge forwarding-
	// database churn: a port failure unlearns every station behind the
	// port, so traffic toward them floods until they re-learn; Moves
	// counts stations re-learned on a *different* port (zero on a
	// single-switch star, where re-learning lands on the same port).
	FabricDrops    uint64 `json:"fabric_drops,omitempty"`
	FabricMaxDepth int    `json:"fabric_max_depth,omitempty"`
	FabricFlooded  uint64 `json:"fabric_flooded,omitempty"`
	FabricMoves    uint64 `json:"fabric_fdb_moves,omitempty"`

	// LinkDrops counts frames discarded at down access links — nonzero
	// only under fault scenarios, where it measures how much traffic
	// the outage destroyed.
	LinkDrops uint64 `json:"link_drops,omitempty"`

	// Workload columns (zero for bulk). MsgLat* is message-completion
	// latency: RPC issue→response for request/response, flow
	// open→final-ack for churn.
	RPCPerSec   float64 `json:"rpc_per_sec,omitempty"`   // completed RPC exchanges per second
	FlowsPerSec float64 `json:"flows_per_sec,omitempty"` // completed short-lived flows per second
	MsgLatP50us float64 `json:"msg_lat_p50_us,omitempty"`
	MsgLatP99us float64 `json:"msg_lat_p99_us,omitempty"`

	// Open-loop columns (zero for closed-loop workloads). ArrivalsPerSec
	// is the offered flow rate; compared with FlowsPerSec it exposes the
	// backlog an overloaded fabric accrues — the response-time-collapse
	// signature a closed-loop generator cannot show.
	ArrivalsPerSec float64 `json:"arrivals_per_sec,omitempty"`
	// TraceSkipped counts trace events that matched no endpoint pair
	// (trace kind only): a nonzero value means the trace's src/dst
	// hosts don't line up with the configured pattern's connections —
	// the row is measuring less traffic than the trace offered.
	TraceSkipped int `json:"trace_skipped,omitempty"`
	// FabricStrays counts frames the multi-tier valley-free rule
	// released (destination learned upward from an upward ingress —
	// transient, during FDB churn). Zero on single-switch fabrics.
	FabricStrays uint64 `json:"fabric_strays,omitempty"`
}

// String formats the result as a row like the paper's tables.
func (r Result) String() string {
	return fmt.Sprintf("%-28s %7.0f Mb/s | %s | drv %5.0f/s gst %6.0f/s",
		r.Config.Name(), r.Mbps, r.Profile, r.DriverIntrPerSec, r.GuestIntrPerSec)
}

// Validate rejects configurations the simulator cannot run
// meaningfully: they would divide by zero while balancing connections
// or produce NaN/Inf rates that poison result encoding. Run calls it,
// so a campaign records a clean error for such grid points instead of
// a panic.
func (c Config) Validate() error {
	if c.Guests < 1 {
		return fmt.Errorf("bench: config needs at least one guest (got %d)", c.Guests)
	}
	if c.NICs < 1 {
		return fmt.Errorf("bench: config needs at least one NIC (got %d)", c.NICs)
	}
	if c.Window < 1 {
		return fmt.Errorf("bench: config needs a positive transport window (got %d)", c.Window)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("bench: config needs a positive measurement duration (got %v)", c.Duration)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("bench: config needs a non-negative warmup (got %v)", c.Warmup)
	}
	if c.Hosts < 0 || c.Hosts > maxHosts {
		return fmt.Errorf("bench: config needs 0..%d hosts (got %d)", maxHosts, c.Hosts)
	}
	if c.Hosts > 1 {
		switch c.Pattern {
		case PatternPairs, PatternIncast, PatternAllToAll:
		default:
			return fmt.Errorf("bench: unknown traffic pattern %v", c.Pattern)
		}
		if c.Guests > 255 || c.NICs > 255 {
			return fmt.Errorf("bench: multi-host configs need guests and NICs <= 255 (got %d/%d)", c.Guests, c.NICs)
		}
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	if c.Fabric.Kind != topo.KindToR && c.Hosts <= 1 {
		return fmt.Errorf("bench: %v fabric needs a multi-host configuration (hosts > 1)", c.Fabric.Kind)
	}
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if err := c.Fault.validate(c); err != nil {
		return err
	}
	return nil
}

// Run builds the machine, runs warmup plus the measurement window, and
// collects the result.
func Run(cfg Config) (Result, error) {
	_, res, err := runMachine(cfg, 0)
	return res, err
}

// RunTraced is Run with the simulator's flight recorder attached: the
// returned machine's Tracer holds the last `traceN` fired events.
func RunTraced(cfg Config, traceN int) (*Machine, Result, error) {
	return runMachine(cfg, traceN)
}

// runMachine is the canonical experiment lifecycle. Its phases are
// exported separately so checkpoint flows can recompose them: a
// warm-start fork replaces Launch-plus-warmup with a Restore, and a
// round-trip test snapshots between any two phases — every path runs
// the same code in the same order, which is what makes restored runs
// byte-identical to cold ones.
func runMachine(cfg Config, traceN int) (*Machine, Result, error) {
	m, err := Prepare(cfg)
	if err != nil {
		return nil, Result{}, err
	}
	if traceN > 0 {
		m.Tracer = m.Eng.Attach(traceN)
	}
	m.Launch()
	m.RunTo(m.cfg.Warmup)
	m.OpenWindow()
	m.RunTo(m.cfg.Warmup + m.cfg.Duration)
	return m, m.Collect(), nil
}

// Prepare validates and normalizes a configuration and builds its
// machine (normalization fills the balanced connection count, so the
// recorded Result.Config is explicit).
func Prepare(cfg Config) (*Machine, error) {
	cfg.Fault = cfg.Fault.withDefaults(cfg.Duration)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ConnsPerGuestPerNIC <= 0 {
		cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
	}
	return Build(cfg)
}

// Config returns the machine's normalized configuration.
func (m *Machine) Config() Config { return m.cfg }

// Launch starts the workload. The workload layer owns traffic start
// (staggered over the first part of warmup so initial windows do not
// arrive as one synchronized burst; for bulk this is the historical
// schedule).
func (m *Machine) Launch() { m.Work.Launch(m.cfg.Warmup) }

// RunTo advances the simulation to absolute time t: directly on the
// single engine, or in barrier-synchronized rounds across the engine
// shards (shards.go).
func (m *Machine) RunTo(t sim.Time) {
	if len(m.engines) > 1 {
		m.runShards(t)
		return
	}
	m.Eng.Run(t)
}

// OpenWindow opens the measurement window: per-host components are
// reset in host order (single-host configurations take exactly the
// historical path: one CPU, one hypervisor), then the configured fault
// scenario is armed. Arming here — not at build or launch — keeps the
// pre-window event sequence identical between a fault variant and its
// fault-free base, so a warm-start fork restores cleanly into either.
func (m *Machine) OpenWindow() {
	for _, h := range m.Hosts {
		h.CPU.StartWindow()
	}
	m.Conns.StartWindow()
	m.Work.StartWindow()
	for _, h := range m.Hosts {
		if h.Hyp != nil {
			h.Hyp.StartWindow()
		}
	}
	for _, n := range m.IntelNICs {
		n.E.StartWindow()
		n.Coal.Fires.StartWindow()
	}
	for _, n := range m.RiceNICs {
		n.E.StartWindow()
		n.Coal.Fires.StartWindow()
	}
	if m.Fabric != nil {
		m.Fabric.StartWindow()
	}
	for _, h := range m.Hosts {
		for _, l := range h.Links {
			l.StartWindow()
		}
	}
	m.faults.arm(m.cfg.Fault)
}

// Collect closes the measurement window and gathers the result row.
func (m *Machine) Collect() Result {
	cfg := m.cfg
	for _, h := range m.Hosts {
		h.CPU.EndWindow()
	}

	res := Result{
		Config:      cfg,
		Mbps:        m.Conns.DeliveredMbps(cfg.Duration),
		Profile:     m.profile(),
		Retransmits: m.Conns.Retransmits(),
		Fairness:    m.Conns.FairnessIndex(),
		Events:      m.TotalFired(),
	}
	res.PktPerSec = float64(m.Conns.DeliveredBytes()) / 1448 / cfg.Duration.Seconds()
	res.LatencyP50us = m.Conns.LatencyQuantile(0.5)
	res.LatencyP90us = m.Conns.LatencyQuantile(0.9)
	res.RPCPerSec = m.Work.RequestsRate(cfg.Duration)
	res.FlowsPerSec = m.Work.FlowsRate(cfg.Duration)
	res.ArrivalsPerSec = m.Work.ArrivalsRate(cfg.Duration)
	res.TraceSkipped = m.Work.TraceSkipped()
	res.MsgLatP50us = m.Work.LatencyQuantile(0.5)
	res.MsgLatP99us = m.Work.LatencyQuantile(0.99)
	for _, h := range m.Hosts {
		if h.Hyp != nil {
			res.PhysIRQPerSec += h.Hyp.PhysIRQs.Rate(cfg.Duration)
		}
	}

	for _, n := range m.IntelNICs {
		res.Drops += n.E.RxDrops.Window()
	}
	for _, n := range m.RiceNICs {
		res.Drops += n.E.RxDrops.Window()
		res.Faults += n.E.Faults.Window()
	}
	for _, h := range m.Hosts {
		for _, l := range h.Links {
			res.LinkDrops += l.Dropped.Window()
		}
	}
	if m.Fabric != nil {
		res.FabricDrops = m.Fabric.DropsWindow()
		res.FabricFlooded = m.Fabric.FloodedWindow()
		res.FabricMoves = m.Fabric.MovesWindow()
		res.FabricStrays = m.Fabric.StraysWindow()
		res.FabricMaxDepth = m.Fabric.MaxDepth()
	}

	switch cfg.Mode {
	case ModeNative:
		// Physical interrupts go straight to the host OS; report them in
		// the guest column.
		var fires uint64
		for _, n := range m.IntelNICs {
			fires += n.Coal.Fires.Window()
		}
		res.GuestIntrPerSec = float64(fires) / cfg.Duration.Seconds()
	default:
		var drv, g float64
		for _, h := range m.Hosts {
			if cfg.Mode == ModeXen {
				// All physical NIC interrupts route to the driver domain.
				drv += h.Hyp.PhysIRQs.Rate(cfg.Duration)
			} else {
				drv += h.dom0.Virqs.Rate(cfg.Duration)
			}
			for _, d := range h.guestDoms {
				g += d.Virqs.Rate(cfg.Duration)
			}
		}
		res.DriverIntrPerSec = drv
		res.GuestIntrPerSec = g
	}
	return res
}

// profile returns the execution profile of the machine: the single
// host's (the historical column), or the equal-weight mean over all
// hosts of a cluster (each host is one CPU).
func (m *Machine) profile() stats.Profile {
	if len(m.Hosts) == 1 {
		return m.Hosts[0].CPU.Profile()
	}
	var p stats.Profile
	for _, h := range m.Hosts {
		hp := h.CPU.Profile()
		p.Hyp += hp.Hyp
		p.DriverOS += hp.DriverOS
		p.DriverUser += hp.DriverUser
		p.GuestOS += hp.GuestOS
		p.GuestUser += hp.GuestUser
		p.Idle += hp.Idle
	}
	n := float64(len(m.Hosts))
	p.Hyp /= n
	p.DriverOS /= n
	p.DriverUser /= n
	p.GuestOS /= n
	p.GuestUser /= n
	p.Idle /= n
	return p
}
