package bench

import (
	"encoding/json"
	"fmt"
	"testing"

	"cdna/internal/sim"
	"cdna/internal/workload"
)

// resultJSON marshals a result for byte comparison.
func resultJSON(t *testing.T, res Result) string {
	t.Helper()
	buf, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// runWithSnapshot runs cfg cold, snapshotting the machine at snapAt,
// and returns the final result plus the image. The phase transitions
// are exactly runMachine's; the snapshot slots in wherever snapAt
// falls.
func runWithSnapshot(t *testing.T, cfg Config, snapAt sim.Time) (Result, []byte) {
	t.Helper()
	m, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = m.Config()
	m.Launch()
	var img []byte
	snap := func() {
		if img, err = m.Snapshot(); err != nil {
			t.Fatalf("snapshot at %v: %v", snapAt, err)
		}
	}
	if snapAt < cfg.Warmup {
		m.RunTo(snapAt)
		snap()
		m.RunTo(cfg.Warmup)
		m.OpenWindow()
	} else {
		m.RunTo(cfg.Warmup)
		m.OpenWindow()
		m.RunTo(snapAt)
		snap()
	}
	m.RunTo(cfg.Warmup + cfg.Duration)
	return m.Collect(), img
}

// resumeFromSnapshot restores the image into a freshly built machine
// and runs the remaining phases.
func resumeFromSnapshot(t *testing.T, cfg Config, snapAt sim.Time, img []byte) Result {
	t.Helper()
	m, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = m.Config()
	if err := m.Restore(img); err != nil {
		t.Fatalf("restore at %v: %v", snapAt, err)
	}
	if snapAt < cfg.Warmup {
		m.RunTo(cfg.Warmup)
		m.OpenWindow()
	}
	m.RunTo(cfg.Warmup + cfg.Duration)
	return m.Collect()
}

// TestSnapshotRoundTripRandom is the round-trip byte-identity property
// test: for a set of seeds, a pseudo-randomly drawn configuration
// (architecture, rack size, traffic pattern, workload shape) runs cold
// with a snapshot taken at a random tick — before, at, or inside the
// measurement window — and then a second machine restores the image
// and runs the remainder. Both must produce byte-identical result
// JSON: the snapshot captured everything, and restore put back exactly
// what was captured.
func TestSnapshotRoundTripRandom(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	combos := []struct {
		mode Mode
		nic  NICKind
	}{
		{ModeCDNA, NICRice},
		{ModeXen, NICRice},
		{ModeXen, NICIntel},
		{ModeNative, NICIntel},
	}
	hostChoices := []int{1, 3, 4}
	patterns := []Pattern{PatternPairs, PatternIncast, PatternAllToAll}
	kinds := []workload.Kind{workload.Bulk, workload.RequestResponse, workload.Churn}
	dirs := []Direction{Tx, Rx, Both}

	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(uint64(seed)*0x9e3779b9 + 7)
			combo := combos[rng.Intn(len(combos))]
			cfg := DefaultConfig(combo.mode, combo.nic, dirs[rng.Intn(len(dirs))])
			cfg.Warmup = 20 * sim.Millisecond
			cfg.Duration = 40 * sim.Millisecond
			cfg.Guests = 1 + rng.Intn(3)
			cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
			cfg.Workload.Kind = kinds[rng.Intn(len(kinds))]
			if hosts := hostChoices[rng.Intn(len(hostChoices))]; hosts > 1 {
				cfg.Hosts = hosts
				cfg.Pattern = patterns[rng.Intn(len(patterns))]
				cfg.Guests = 2 // clusters multiply hosts; keep the run tight
				cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
			}
			// Random tick anywhere in the run, including exactly at window
			// open (the restored run must then not re-open it).
			total := cfg.Warmup + cfg.Duration
			snapAt := sim.Time(rng.Uint64() % uint64(total))
			if rng.Intn(8) == 0 {
				snapAt = cfg.Warmup
			}
			t.Logf("%s snapshot at %v", cfg.Name(), snapAt)

			cold, img := runWithSnapshot(t, cfg, snapAt)
			resumed := resumeFromSnapshot(t, cfg, snapAt, img)
			a, b := resultJSON(t, cold), resultJSON(t, resumed)
			if a != b {
				t.Fatalf("restored run diverged from cold run:\n--- cold ---\n%s\n--- restored ---\n%s", a, b)
			}
		})
	}
}

// TestSnapshotRoundTripFault pins the round trip across a fault
// scenario's whole lifecycle: snapshots taken while a link-flap is
// armed, active, and healed must all restore into byte-identical
// completions (the injector's phase is part of the image).
func TestSnapshotRoundTripFault(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Hosts = 3
	cfg.Pattern = PatternIncast
	cfg.Guests = 2
	cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
	cfg.Warmup = 20 * sim.Millisecond
	cfg.Duration = 40 * sim.Millisecond
	cfg.Fault = FaultSpec{Kind: FaultLinkFlap, After: 10 * sim.Millisecond, Outage: 10 * sim.Millisecond}

	for _, tc := range []struct {
		name   string
		snapAt sim.Time
	}{
		{"armed", cfg.Warmup + 5*sim.Millisecond},
		{"active", cfg.Warmup + 15*sim.Millisecond},
		{"healed", cfg.Warmup + 25*sim.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cold, img := runWithSnapshot(t, cfg, tc.snapAt)
			resumed := resumeFromSnapshot(t, cfg, tc.snapAt, img)
			a, b := resultJSON(t, cold), resultJSON(t, resumed)
			if a != b {
				t.Fatalf("restored run diverged from cold run:\n--- cold ---\n%s\n--- restored ---\n%s", a, b)
			}
			if cold.LinkDrops == 0 {
				t.Fatal("link flap dropped no frames; the fault did not bite")
			}
		})
	}
}

// TestWarmStartForkByteIdentical pins the warm-start contract: forking
// a grid of fault variants off one shared warmup snapshot produces
// outcomes byte-identical to cold runs, while simulating the warmup
// only once per group.
func TestWarmStartForkByteIdentical(t *testing.T) {
	base := DefaultConfig(ModeCDNA, NICRice, Tx)
	base.Hosts = 3
	base.Pattern = PatternIncast
	base.Guests = 2
	base.ConnsPerGuestPerNIC = connsFor(base.Guests)
	base.Warmup = 20 * sim.Millisecond
	base.Duration = 40 * sim.Millisecond

	grid := make([]Config, 0, 4)
	for _, f := range []FaultSpec{
		{},
		{Kind: FaultLinkFlap, After: 10 * sim.Millisecond, Outage: 10 * sim.Millisecond},
		{Kind: FaultPortFail, After: 10 * sim.Millisecond, Outage: 10 * sim.Millisecond},
		{Kind: FaultBlackout, After: 10 * sim.Millisecond, Outage: 5 * sim.Millisecond},
	} {
		cfg := base
		cfg.Fault = f
		grid = append(grid, cfg)
	}

	forked, stats, err := RunWarmForked(grid)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Groups != 1 {
		t.Fatalf("grid shares one warm base, got %d groups", stats.Groups)
	}
	if stats.EventsSaved == 0 {
		t.Fatal("warm-start fork saved no warmup events")
	}
	for i, cfg := range grid {
		if forked[i].Err != nil {
			t.Fatalf("%s: %v", cfg.Name(), forked[i].Err)
		}
		cold, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b := resultJSON(t, cold), resultJSON(t, forked[i].Result)
		if a != b {
			t.Fatalf("%s: warm fork diverged from cold run:\n--- cold ---\n%s\n--- forked ---\n%s", cfg.Name(), a, b)
		}
	}
}

// TestSnapshotRejectsMismatch pins the identity checks: an image must
// not restore into a machine built from a structurally different
// configuration, and corrupt bytes must not decode.
func TestSnapshotRejectsMismatch(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Warmup = 5 * sim.Millisecond
	cfg.Duration = 10 * sim.Millisecond
	m, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Launch()
	m.RunTo(2 * sim.Millisecond)
	img, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Guests = 2
	other.ConnsPerGuestPerNIC = connsFor(other.Guests)
	om, err := Prepare(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := om.Restore(img); err == nil {
		t.Fatal("restore into a different configuration succeeded")
	}

	m2, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(img[:len(img)-4]); err == nil {
		t.Fatal("restore of a truncated image succeeded")
	}
	if err := m2.Restore([]byte("not a snapshot")); err == nil {
		t.Fatal("restore of garbage succeeded")
	}
	// The intact image still restores (the guards above did not corrupt
	// the fresh machine's ability to accept it).
	if err := m2.Restore(img); err != nil {
		t.Fatal(err)
	}
}
