package bench

import "fmt"

// Outcome is the terminal state of one experiment in a batch: its
// configuration and either a result or the error that stopped it.
type Outcome struct {
	Config Config `json:"config"`
	Result Result `json:"result"`
	Err    error  `json:"-"`
}

// Runner executes a batch of experiment configurations and returns one
// Outcome per configuration, in input order. The package's own RunAll
// executes them sequentially; internal/campaign provides a parallel
// worker-pool implementation. Every table and figure in this package
// funnels its experiments through a Runner, so a single injection point
// parallelizes the whole evaluation.
type Runner func(cfgs []Config) []Outcome

// RunCaptured runs one experiment, converting any panic into an error
// so that a malformed configuration cannot abort a sweep.
func RunCaptured(cfg Config) (out Outcome) {
	out.Config = cfg
	defer func() {
		if r := recover(); r != nil {
			out.Err = fmt.Errorf("bench: experiment %s panicked: %v", cfg.Name(), r)
		}
	}()
	out.Result, out.Err = Run(cfg)
	return out
}

// RunAll is the sequential Runner: experiments execute one at a time in
// order, and per-experiment failures are captured rather than aborting
// the batch.
func RunAll(cfgs []Config) []Outcome {
	outs := make([]Outcome, len(cfgs))
	for i, cfg := range cfgs {
		outs[i] = RunCaptured(cfg)
	}
	return outs
}
