package bench

import (
	"fmt"

	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/guest"
	"cdna/internal/mem"
	"cdna/internal/sim"
	"cdna/internal/topo"
	"cdna/internal/transport"
	"cdna/internal/workload"
)

// Pattern selects the cross-host traffic scenario of a multi-host
// configuration (Config.Hosts > 1). Patterns only choose which remote
// guest each connection slot targets; the traffic shape on each slot is
// still the configured workload (bulk, rr, churn, burst).
type Pattern int

// Traffic patterns.
const (
	// PatternPairs wires disjoint host pairs: host 2k's guests talk to
	// host 2k+1's guests (an odd trailing host idles). The fabric
	// carries balanced disjoint flows — the baseline that should match
	// single-host throughput per pair.
	PatternPairs Pattern = iota
	// PatternIncast converges every other host onto host 0 (N→1
	// fan-in): the switch's egress queue toward the root is the
	// bottleneck and tail-drops under overload. Direction Tx sends
	// spokes→root (classic incast); Rx reverses it into a fan-out.
	PatternIncast
	// PatternAllToAll gives every guest connections spread round-robin
	// over all remote hosts, the uniform shuffle traffic of a
	// rack-scale job.
	PatternAllToAll
)

func (p Pattern) String() string {
	switch p {
	case PatternPairs:
		return "pairs"
	case PatternIncast:
		return "incast"
	case PatternAllToAll:
		return "all2all"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// maxHosts bounds Config.Hosts: host indices share MakeMAC's index word
// with the guest/NIC index (hostIdx<<8 | i), so both halves must fit a
// byte.
const maxHosts = 256

// clusterMACIndex folds a host index into a MakeMAC index; host 0 maps
// to the identity, so a 1-host cluster and the classic single-host
// build address devices identically.
func clusterMACIndex(host int) func(int) int {
	return func(i int) int { return host<<8 | i }
}

// slot is one wiring attachment point of the cluster roster: a guest
// stack's device on one host NIC, with its fabric address.
type slot struct {
	addr transport.Addr
	st   *guest.Stack
	dev  guest.NetDevice
}

// buildCluster assembles cfg.Hosts full machines and connects them
// through a top-of-rack switch (internal/topo), then wires the
// configured cross-host traffic pattern. Every host is built by the
// same per-mode builder the single-host path uses; only the fabric
// behind newLink differs.
//
// The cluster is partitioned over clampShards(cfg.Shards, cfg.Hosts)
// engine shards: contiguous host blocks map to shards, the switch runs
// on the last shard, and the access links become cross-shard seams
// (shards.go). Every fabric pipe uses keyed delivery sequencing even at
// one shard, so same-instant delivery order is a pure function of
// traffic and results are byte-identical at any shard count.
func buildCluster(cfg Config) (*Machine, error) {
	cal := cfg.Cal
	nshards := clampShards(cfg.Shards, cfg.Hosts)
	engines := make([]*sim.Engine, nshards)
	for s := range engines {
		engines[s] = sim.NewWithResolution(cal.EventResolution())
	}
	fabEng := engines[nshards-1]
	m := &Machine{Eng: engines[0], engines: engines}
	m.arenas = make([]*ether.Arena, nshards)
	m.segPools = make([]*transport.SegPool, nshards)
	for s := range m.arenas {
		m.arenas[s] = ether.NewArena()
		m.segPools[s] = transport.NewSegPool()
	}
	m.shardOf = make([]int, cfg.Hosts)
	for hi := range m.shardOf {
		m.shardOf[hi] = hi * nshards / cfg.Hosts
	}
	spec := cfg.Workload.Resolved(cfg.Dir == Tx || cfg.Dir == Both, cfg.Dir == Rx || cfg.Dir == Both)
	var err error
	m.Work, err = workload.NewFleet(engines, spec)
	if err != nil {
		return nil, err
	}
	// Access links claim keyed-pipe IDs [0, 2*Hosts*NICs); the fabric's
	// trunks start above them, so IDs are disjoint at any shard count.
	m.Fabric, err = topo.NewFabric(fabEng, topo.DefaultParams(), cfg.Fabric,
		cfg.Hosts, cfg.NICs, 2*cfg.Hosts*cfg.NICs)
	if err != nil {
		return nil, err
	}

	guests := cfg.Guests
	if cfg.Mode == ModeNative {
		guests = 1
	}
	m.Conns.Grow(cfg.Hosts * guests * cfg.NICs * cfg.ConnsPerGuestPerNIC * 2)

	pipeID := 0
	for hi := 0; hi < cfg.Hosts; hi++ {
		shard := m.shardOf[hi]
		hostEng := engines[shard]
		h := &Host{Index: hi, CPU: cpu.New(hostEng, cal.CPU), Mem: mem.New()}
		prefix := fmt.Sprintf("h%d.", hi)
		env := hostEnv{
			eng: hostEng,
			h:   h,
			newLink: func() (*ether.Pipe, *ether.Pipe) {
				p := m.Fabric.Params()
				l := ether.NewDuplexOn(hostEng, fabEng, p.LinkGbps, p.PropDelay)
				l.AtoB.EnableKeyed(pipeID)
				l.BtoA.EnableKeyed(pipeID + 1)
				pipeID += 2
				m.recordSeam(l.AtoB, shard, nshards-1)
				m.recordSeam(l.BtoA, nshards-1, shard)
				m.Fabric.AddPort(l.AtoB, l.BtoA)
				h.Links = append(h.Links, l.AtoB, l.BtoA)
				return l.AtoB, l.BtoA
			},
			wire:     nil, // pattern wiring runs after every host exists
			name:     func(s string) string { return prefix + s },
			macIndex: clusterMACIndex(hi),
		}
		if err := buildHost(cfg, env); err != nil {
			return nil, err
		}
		for _, st := range h.Stacks {
			st.Arena = m.arenas[shard]
		}
		m.Hosts = append(m.Hosts, h)
		m.adoptHost(h)
	}
	m.CPU, m.Mem = m.Hosts[0].CPU, m.Hosts[0].Mem

	if err := m.wirePattern(cfg); err != nil {
		return nil, err
	}
	m.cfg = cfg
	m.faults = newFaultInjector(m)
	return m, nil
}

// slotAt returns host h's wiring slot for (guest g, NIC i).
func (m *Machine) slotAt(h, g, i int) slot {
	host := m.Hosts[h]
	return slot{
		addr: transport.Addr{Host: h, Guest: g, Port: i},
		st:   host.Stacks[g],
		dev:  host.devs[g][i],
	}
}

// wirePattern creates the cross-host benchmark connections for the
// configured traffic pattern. Iteration order is deterministic (host,
// NIC, guest, connection — the same nesting the single-host builders
// use), which fixes connection IDs and the workload's launch stagger.
func (m *Machine) wirePattern(cfg Config) error {
	n := len(m.Hosts)
	guests := len(m.Hosts[0].Stacks)
	for hi := 0; hi < n; hi++ {
		for i := 0; i < cfg.NICs; i++ {
			for g := 0; g < guests; g++ {
				src := m.slotAt(hi, g, i)
				for c := 0; c < cfg.ConnsPerGuestPerNIC; c++ {
					var dst slot
					switch cfg.Pattern {
					case PatternPairs:
						// Disjoint pairs; an odd trailing host idles.
						other := hi ^ 1
						if other >= n {
							continue
						}
						if hi&1 == 1 {
							continue // the even host of each pair owns the wiring
						}
						dst = m.slotAt(other, g, i)
					case PatternIncast:
						if hi == 0 {
							continue // host 0 is the root; spokes own the wiring
						}
						dst = m.slotAt(0, g%guests, i)
					case PatternAllToAll:
						dst = m.slotAt((hi+1+c%(n-1))%n, g, i)
					default:
						return fmt.Errorf("bench: unknown pattern %v", cfg.Pattern)
					}
					if err := m.wireCross(cfg, src, dst); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// wireCross creates one benchmark connection slot between two guests
// across the fabric, mirroring wireConns' direction and workload
// semantics with the CPU-less peer replaced by a real remote host:
// acks (and RPC responses) consume remote CPU and fabric capacity.
func (m *Machine) wireCross(cfg Config, src, dst slot) error {
	// wire creates a data connection a→b; frames ride each side's own
	// NIC onto the fabric, addressed by the remote device's MAC. The
	// connection lives on the sender's shard — its pump and RTO timer
	// run there — and knows the receiver's shard for delivery-side
	// clock reads.
	wire := func(a, b slot) *transport.Conn {
		conn := transport.NewConn(m.hostEngine(a.addr.Host), len(m.Conns.Conns), transport.DefaultSegSize, cfg.Window)
		conn.RTO = 200 * sim.Millisecond
		conn.SetPools(m.segPools[m.shardOf[a.addr.Host]], m.segPools[m.shardOf[b.addr.Host]])
		conn.Local, conn.Remote = a.addr, b.addr
		conn.AttachSender(a.st.Sender(a.dev, b.dev.MAC()))
		conn.AttachReceiver(b.st.Sender(b.dev, a.dev.MAC()))
		conn.SetReceiverEngine(m.hostEngine(b.addr.Host))
		m.Conns.Add(conn)
		return conn
	}
	if m.Work.NeedsReverse() {
		// RPC: the wiring guest is the client, the remote guest serves.
		// The endpoint lives on the client's shard, where its issue and
		// completion callbacks fire.
		ep := workload.Endpoint{
			Fwd: wire(src, dst), Rev: wire(dst, src),
			Local: src.addr, Remote: dst.addr,
			OnFlowSetup: src.st.ChargeFlowSetup, OnFlowTeardown: src.st.ChargeFlowTeardown,
		}
		return m.Work.AddOn(m.hostEngine(src.addr.Host), ep)
	}
	dirs := []Direction{cfg.Dir}
	if cfg.Dir == Both {
		dirs = []Direction{Tx, Rx}
	}
	for _, dir := range dirs {
		a, b := src, dst
		if dir == Rx {
			a, b = dst, src
		}
		// Endpoint identity stays with the wiring guest (Local/Remote),
		// but the endpoint lives on the shard that runs its callbacks —
		// the forward sender's host — and its flow hooks charge that
		// same stack: flow setup/teardown is driven by, and billed to,
		// the side that opens the flow.
		ep := workload.Endpoint{
			Fwd:         wire(a, b),
			Local:       src.addr,
			Remote:      dst.addr,
			OnFlowSetup: a.st.ChargeFlowSetup, OnFlowTeardown: a.st.ChargeFlowTeardown,
		}
		if err := m.Work.AddOn(m.hostEngine(a.addr.Host), ep); err != nil {
			return err
		}
	}
	return nil
}
