package bench

import (
	"strings"
	"testing"

	"cdna/internal/sim"
	"cdna/internal/transport"
)

// topoOpts returns short measurement windows for the multi-host tests
// (clusters simulate several machines per experiment, so windows stay
// tight even outside -short).
func topoOpts() Opts {
	return Opts{Warmup: 20 * sim.Millisecond, Duration: 60 * sim.Millisecond}
}

// TestTopologyGoldenDeterminism pins byte-identical incast and
// all-to-all table output across runs — the multi-host extension of
// TestTable1GoldenDeterminism. The CI suite re-runs it under -tags
// simheap, so the pin also holds across the two event-queue
// implementations.
func TestTopologyGoldenDeterminism(t *testing.T) {
	render := func() string {
		o := topoOpts()
		ti, _, err := TopologyIncast(o, []int{2, 3})
		if err != nil {
			t.Fatal(err)
		}
		ta, _, err := TopologyAllToAll(o, []int{3})
		if err != nil {
			t.Fatal(err)
		}
		return ti.String() + "\n" + ta.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("reruns differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if len(first) == 0 || !strings.Contains(first, "Hosts") {
		t.Fatalf("rendered topology tables look empty:\n%s", first)
	}
}

// TestClusterBuildShape checks the multi-host assembly: every host gets
// its own CPU, NICs and guests; the fabric has one port per (host, NIC)
// link; and the aggregate views concatenate in host order.
func TestClusterBuildShape(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	cfg.Hosts = 3
	cfg.Pattern = PatternIncast
	cfg.Guests = 2
	cfg.ConnsPerGuestPerNIC = 2
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hosts) != 3 {
		t.Fatalf("hosts = %d", len(m.Hosts))
	}
	if m.Fabric == nil || m.Fabric.NumPorts() != 3*cfg.NICs {
		t.Fatalf("fabric ports = %d, want %d", m.Fabric.NumPorts(), 3*cfg.NICs)
	}
	if len(m.RiceNICs) != 3*cfg.NICs {
		t.Fatalf("aggregate RiceNICs = %d, want %d", len(m.RiceNICs), 3*cfg.NICs)
	}
	for hi, h := range m.Hosts {
		if h.Index != hi || h.CPU == nil || h.Hyp == nil {
			t.Fatalf("host %d malformed", hi)
		}
		if len(h.RiceNICs) != cfg.NICs || len(h.Stacks) != cfg.Guests {
			t.Fatalf("host %d: nics=%d stacks=%d", hi, len(h.RiceNICs), len(h.Stacks))
		}
	}
	// Incast wiring: every endpoint's remote is a guest on host 0, and
	// only spokes own endpoints.
	eps := m.Work.Endpoints()
	if len(eps) == 0 {
		t.Fatal("no workload endpoints wired")
	}
	want := 2 /* spoke hosts */ * cfg.NICs * cfg.Guests * cfg.ConnsPerGuestPerNIC
	if len(eps) != want {
		t.Fatalf("endpoints = %d, want %d", len(eps), want)
	}
	for _, ep := range eps {
		if ep.Remote.Host != 0 {
			t.Fatalf("incast endpoint targets host %d, want 0", ep.Remote.Host)
		}
		if ep.Local.Host == 0 {
			t.Fatal("incast root must not originate endpoints")
		}
	}
	// Device MACs must be unique fabric-wide (host identity folded into
	// the MakeMAC index).
	seen := map[string]bool{}
	for _, h := range m.Hosts {
		for _, devs := range h.devs {
			for _, d := range devs {
				mac := d.MAC().String()
				if seen[mac] {
					t.Fatalf("duplicate device MAC %s across hosts", mac)
				}
				seen[mac] = true
			}
		}
	}
}

// TestClusterPatternsDeliver runs each pattern end to end briefly and
// checks traffic actually crosses the fabric (and the conservation
// ledger closes: frames the switch accepted were delivered or counted
// dropped — nothing vanished in the fabric).
func TestClusterPatternsDeliver(t *testing.T) {
	for _, pat := range []Pattern{PatternPairs, PatternIncast, PatternAllToAll} {
		pat := pat
		t.Run(pat.String(), func(t *testing.T) {
			cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
			cfg.Hosts = 3
			cfg.Pattern = pat
			cfg.NICs = 1
			cfg.ConnsPerGuestPerNIC = 4
			cfg.Warmup, cfg.Duration = topoOpts().Warmup, topoOpts().Duration
			m, res, err := runMachine(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Mbps <= 0 {
				t.Fatalf("no goodput for %v", pat)
			}
			var enq, drop uint64
			for i := 0; i < m.Fabric.NumPorts(); i++ {
				p := m.Fabric.Port(i)
				enq += p.Enqueued.Total()
				drop += p.Dropped.Total()
			}
			// Exact conservation: each forwarding decision (one per known
			// unicast, ports-1 per flood) either entered an egress queue
			// or was counted as a drop, synchronously — frames still
			// waiting out the forwarding latency appear on neither side.
			// (Single-switch formula: the default fabric is one ToR.)
			sw := m.Fabric.SwitchAt(0)
			decisions := sw.Forwarded().Total() +
				sw.Flooded().Total()*uint64(sw.NumPorts()-1)
			if enq+drop != decisions {
				t.Fatalf("fabric ledger: enq %d + drop %d != decisions %d", enq, drop, decisions)
			}
		})
	}
}

// TestSingleHostAddrsThreaded checks the identity threading on the
// classic topology: guest-side endpoints are host 0 and the far end is
// the off-fabric peer.
func TestSingleHostAddrsThreaded(t *testing.T) {
	cfg := DefaultConfig(ModeXen, NICIntel, Tx)
	cfg.Guests = 2
	cfg.ConnsPerGuestPerNIC = 1
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Conns.Conns) == 0 {
		t.Fatal("no conns")
	}
	for _, c := range m.Conns.Conns {
		if c.Local.Host != 0 || c.Remote.Host != transport.PeerHost {
			t.Fatalf("conn %d addrs %v -> %v, want h0 -> peer", c.ID, c.Local, c.Remote)
		}
	}
}
