// Package bench assembles the three machine topologies the paper
// evaluates — native Linux, Xen with software I/O virtualization, and
// Xen with CDNA — runs the multi-connection benchmark over them, and
// regenerates every table and figure of the evaluation (§5).
package bench

import (
	"cdna/internal/backend"
	"cdna/internal/bus"
	"cdna/internal/cpu"
	"cdna/internal/guest"
	"cdna/internal/intelnic"
	"cdna/internal/ricenic"
	"cdna/internal/sim"
	"cdna/internal/xen"
)

// Calibration carries every cost constant of the model. Per-packet
// constants are derived from the paper's own single-guest tables: at a
// measured rate of R packets/s, a component consuming fraction f of the
// CPU costs f/R seconds per packet. Wire packets carry 1448-byte
// payloads in 1538-byte line slots, so the operating points are:
//
//	Xen/Intel   tx 1602 Mb/s = 138.3k pkt/s   rx 1112 Mb/s =  96.0k pkt/s
//	Xen/RiceNIC tx 1674 Mb/s = 144.5k pkt/s   rx 1075 Mb/s =  92.8k pkt/s
//	CDNA        tx 1867 Mb/s = 161.2k pkt/s   rx 1874 Mb/s = 161.8k pkt/s
//	Native      tx 5126 Mb/s = 442.6k pkt/s   rx 3629 Mb/s = 313.3k pkt/s
//
// Fixed per-event costs (per interrupt, per hypercall batch, per ring
// visit, per domain switch) are chosen so the scaling behaviour of
// Figures 3–4 and the protection deltas of Table 4 emerge from
// mechanism. EXPERIMENTS.md records how close the reproduction lands.
type Calibration struct {
	CPU cpu.Params
	Hyp xen.Params
	Bus bus.Params

	// StackTSO is the paravirtualized guest stack when the NIC offloads
	// segmentation (Intel rows); StackNoTSO is the RiceNIC stack (no TSO
	// support, §5.1); StackNative is unmodified Linux on bare hardware
	// (Table 1's baseline).
	StackTSO    guest.StackCosts
	StackNoTSO  guest.StackCosts
	StackNative guest.StackCosts

	// NativeDrv drives the Intel NIC (native host or driver domain).
	NativeDrv guest.DriverCosts
	// CDNADrv drives one RiceNIC context (guest under CDNA, or the
	// driver domain in the Xen/RiceNIC configuration).
	CDNADrv guest.DriverCosts
	// DirectPerDesc is the guest cost of writing a descriptor itself
	// when protection is off or an IOMMU is present (Table 4).
	DirectPerDesc sim.Time

	Front backend.FrontCosts
	Back  backend.BackCosts

	Intel intelnic.Params
	Rice  ricenic.Params

	// Background driver-domain activity (housekeeping daemons): the
	// residual 0.2–0.8% driver-domain time in all configurations.
	BackgroundPeriod sim.Time
	BackgroundKernel sim.Time
	BackgroundUser   sim.Time
}

// Default returns the calibrated model. The derivations:
//
//   - CDNA guest OS at 37.8% of 161.2k pkt/s ⇒ ~2.35 us/pkt across
//     stack (≈1.15), CDNA driver (≈0.55), amortized per-interrupt fixed
//     work, and the ack receive path at half the data rate.
//   - Xen/Intel guest OS at 40.7% of 138.3k ⇒ ~2.94 us/pkt: TSO stack
//     (≈0.75) + netfront (≈1.40) + ack path; driver domain at 36.5% ⇒
//     ~2.64 us/pkt across netback, bridge and the native driver.
//   - Hypervisor: flips ≈0.6 us each on the PV path; CDNA validation
//     ≈0.30 us/descriptor (≈0.18 descriptor + ≈0.12 page) so that
//     disabling protection recovers ≈8% of the CPU, matching Table 4's
//     hyp 10.2%→1.9% and idle +9.6%.
//   - Interrupt coalescing: Intel ≈125 us (≈7.4–11k intr/s at the
//     paper's rates), RiceNIC ≈140 us across two NICs (≈13.7k guest
//     intr/s under CDNA).
func Default() Calibration {
	us := func(f float64) sim.Time { return sim.Time(f * 1000) }
	c := Calibration{
		CPU: cpu.Params{
			SwitchCost:      us(0.7),
			Slice:           300 * sim.Microsecond,
			CacheRefillUnit: us(3.5),
			CacheRefillCap:  us(28),
		},
		Hyp: xen.Params{
			ISRCost:       us(0.9),
			BitvecBase:    us(0.3),
			BitvecPerCtx:  us(0.2),
			VirqSend:      us(0.45),
			VirqDeliver:   us(0.35),
			HypercallBase: us(0.55),
			CDNAPerDesc:   us(0.18),
			CDNAPerPage:   us(0.12),
			FlipCost:      us(0.85),
			TickPeriod:    10 * sim.Millisecond,
			TickCost:      us(2),
			TickISR:       us(0.5),
		},
		Bus: bus.Params{BytesPerSec: 420e6, PerTransfer: 600},

		// Flow lifecycle: ~15us to establish a connection (socket +
		// handshake processing) and ~8us to tear one down, the usual
		// order for a Linux accept/close path. Only churn-style
		// workloads exercise these.
		StackTSO: guest.StackCosts{
			TxData: us(0.75), RxData: us(1.50),
			TxAck: us(0.40), RxAck: us(0.35),
			UserPerData: us(0.045), UserBatch: 16,
			FlowSetup: us(15), FlowTeardown: us(8),
		},
		StackNoTSO: guest.StackCosts{
			TxData: us(1.15), RxData: us(1.55),
			TxAck: us(0.40), RxAck: us(0.35),
			UserPerData: us(0.045), UserBatch: 16,
			FlowSetup: us(15), FlowTeardown: us(8),
		},

		StackNative: guest.StackCosts{
			TxData: us(1.05), RxData: us(1.70),
			TxAck: us(0.40), RxAck: us(0.35),
			UserPerData: us(0.045), UserBatch: 16,
			FlowSetup: us(15), FlowTeardown: us(8),
		},

		NativeDrv: guest.DriverCosts{
			TxPerPkt: us(0.60), RxPerPkt: us(1.00),
			BatchFixed: us(0.60), IrqFixed: us(1.5), PIO: us(0.45),
		},
		CDNADrv: guest.DriverCosts{
			TxPerPkt: us(0.55), RxPerPkt: us(0.85),
			BatchFixed: us(0.50), IrqFixed: us(1.2), PIO: us(0.45),
		},
		DirectPerDesc: us(0.08),

		Front: backend.FrontCosts{
			TxPerPkt: us(1.35), RxPerPkt: us(1.20),
			NotifyFixed: us(0.30), IrqFixed: us(1.5),
		},
		Back: backend.BackCosts{
			VisitFixed: us(2.2),
			TxPerPkt:   us(0.55), RxPerPkt: us(1.75),
			BridgePerPkt: us(0.35),
			FlipPerPkt:   us(0.95),
			FlipRxPerPkt: us(2.2),
			NotifyFixed:  us(0.30),
			Budget:       16,
		},

		Intel: intelnic.DefaultParams(),
		Rice:  ricenic.DefaultParams(),

		BackgroundPeriod: sim.Millisecond,
		BackgroundKernel: us(2),
		BackgroundUser:   us(3),
	}
	c.Intel.CoalesceDelay = 250 * sim.Microsecond
	c.Intel.CoalescePkts = 64
	c.Rice.CoalesceDelay = 500 * sim.Microsecond
	c.Rice.RxCoalesceDelay = 1500 * sim.Microsecond
	c.Rice.CoalescePkts = 12
	c.Rice.RxCoalescePkts = 64
	return c
}

// EventResolution returns the finest recurring event-time quantum in
// the calibration: the smallest nonzero per-packet / per-descriptor /
// per-transfer cost. Build hands it to sim.NewWithResolution so the
// engine's timing-wheel granularity is auto-sized to the model's time
// scale — long-range timers (RTOs, coalescer delays, ticks) then sit
// fewer radix levels away, with zero effect on simulated results (the
// wheel fires bucketed events in exact (time, sequence) order at any
// granularity).
func (c Calibration) EventResolution() sim.Time {
	res := sim.Time(0)
	consider := func(t sim.Time) {
		if t > 0 && (res == 0 || t < res) {
			res = t
		}
	}
	consider(c.StackTSO.UserPerData)
	consider(c.StackNoTSO.UserPerData)
	consider(c.StackNative.UserPerData)
	consider(c.DirectPerDesc)
	consider(c.Hyp.CDNAPerDesc)
	consider(c.Hyp.CDNAPerPage)
	consider(c.Bus.PerTransfer)
	consider(c.CPU.SwitchCost)
	if res == 0 {
		res = 1
	}
	return res
}
