package bench

// Shard runtime: a multi-host machine can be partitioned into per-host
// engine shards that advance in barrier-synchronized rounds. The only
// coupling between shards is the fabric links, whose serialization and
// propagation delays give every cross-shard influence a strictly
// positive latency — the lookahead that conservative parallel
// simulation rests on. Each round the coordinator computes, per shard,
// a horizon no incoming seam can beat, runs every shard up to its
// horizon (concurrently on a multicore host), then flushes the seam
// outboxes at the barrier. Horizons guarantee every flushed arrival is
// still in its destination's future, and keyed delivery sequencing
// (ether/cross.go) guarantees same-instant arrivals execute in the same
// order a single engine would — so results are byte-identical at any
// shard count.

import (
	"math"
	"runtime"
	"sync"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// seam is one cross-shard pipe direction: frames sent on engine shard
// src are delivered on shard dst.
type seam struct {
	pipe     *ether.Pipe
	src, dst int
}

// timeInf is an unreachable instant (an empty queue's "next event").
const timeInf = sim.Time(math.MaxInt64)

// clampShards resolves a configured shard count against the host
// count: at least one shard, at most one per host.
func clampShards(shards, hosts int) int {
	if shards < 1 {
		return 1
	}
	if shards > hosts {
		return hosts
	}
	return shards
}

// Shards returns the machine's engine shard count (1 for classic
// single-engine machines).
func (m *Machine) Shards() int { return len(m.engines) }

// TotalFired returns events executed across every engine shard.
func (m *Machine) TotalFired() uint64 {
	var n uint64
	for _, e := range m.engines {
		n += e.Fired()
	}
	return n
}

// hostEngine returns the engine shard that simulates host hi.
func (m *Machine) hostEngine(hi int) *sim.Engine {
	if m.shardOf == nil {
		return m.Eng
	}
	return m.engines[m.shardOf[hi]]
}

// recordSeam registers a pipe direction with the coordinator if it
// actually crosses shards (a host co-located with the fabric shard
// keeps plain same-engine pipes).
func (m *Machine) recordSeam(p *ether.Pipe, src, dst int) {
	if p.Cross() {
		m.seams = append(m.seams, seam{pipe: p, src: src, dst: dst})
	}
}

// runShards advances every shard to absolute time t in barrier-
// synchronized rounds.
func (m *Machine) runShards(t sim.Time) {
	avail := make([]sim.Time, len(m.engines))
	horizon := make([]sim.Time, len(m.engines))
	for {
		// Barrier: flush every seam outbox onto its destination engine.
		// The previous round's horizons guarantee the arrivals are in
		// the destinations' future.
		for _, s := range m.seams {
			s.pipe.FlushCross()
		}
		done := true
		for _, e := range m.engines {
			if e.Now() < t {
				done = false
				break
			}
		}
		if done {
			return
		}
		solo := m.nextSolo()
		if solo < t && m.allAt(solo) {
			m.runSolo(solo)
			continue
		}
		// Availability fixpoint: avail[r] is a lower bound on when
		// shard r could next execute anything — its own queue head, or
		// an arrival over an incoming seam, which in turn depends on
		// the sending shard's availability. Seam latencies are strictly
		// positive, so relaxation terminates.
		for r, e := range m.engines {
			if at, ok := e.NextAt(); ok {
				avail[r] = at
			} else {
				avail[r] = timeInf
			}
		}
		for changed := true; changed; {
			changed = false
			for _, s := range m.seams {
				if avail[s.src] >= t {
					continue // the source does nothing inside this run
				}
				if ea := s.pipe.EarliestArrival(avail[s.src]); ea < avail[s.dst] {
					avail[s.dst] = ea
					changed = true
				}
			}
		}
		// Horizons: a shard may execute events strictly before the
		// earliest instant any incoming seam could still deliver. The
		// shard with the globally minimal availability always clears
		// its own queue head, so every round makes progress.
		for d := range horizon {
			horizon[d] = t
		}
		for _, s := range m.seams {
			if avail[s.src] >= t {
				continue
			}
			if ea := s.pipe.EarliestArrival(avail[s.src]); ea < horizon[s.dst] {
				horizon[s.dst] = ea
			}
		}
		// A pending fault instant is a global synchronization point: no
		// shard may cross it until all are parked exactly on it.
		if solo < t {
			for d := range horizon {
				if horizon[d] > solo {
					horizon[d] = solo
				}
			}
		}
		m.runRound(horizon)
	}
}

// runRound advances every shard whose horizon is ahead of its clock.
// The horizons make the shards independent for the round, so on a
// multicore host they run concurrently; the result is identical either
// way.
func (m *Machine) runRound(horizon []sim.Time) {
	if runtime.GOMAXPROCS(0) == 1 {
		for d, e := range m.engines {
			if horizon[d] > e.Now() {
				e.Run(horizon[d])
			}
		}
		return
	}
	var wg sync.WaitGroup
	for d, e := range m.engines {
		if horizon[d] <= e.Now() {
			continue
		}
		wg.Add(1)
		go func(e *sim.Engine, h sim.Time) {
			defer wg.Done()
			e.Run(h)
		}(e, horizon[d])
	}
	wg.Wait()
}

// runSolo carries the machine across a fault instant. The fault event
// mutates state on arbitrary shards (access links, fabric ports), so
// it must execute with every other shard parked. Its key orders it
// after every ordinary event at its instant — on one engine and on N
// shards alike — so the other shards first execute their own events at
// the instant (times are integral: running to solo+1 executes exactly
// the events at solo), then the injector's shard crosses it alone.
func (m *Machine) runSolo(solo sim.Time) {
	horizon := make([]sim.Time, len(m.engines))
	for d := range horizon {
		horizon[d] = solo + 1
	}
	horizon[0] = solo // park the injector's shard
	m.runRound(horizon)
	m.engines[0].Run(solo + 1)
	m.popSolo(solo)
}

// nextSolo returns the earliest pending solo instant (timeInf if
// none).
func (m *Machine) nextSolo() sim.Time {
	if len(m.solos) == 0 {
		return timeInf
	}
	return m.solos[0]
}

// popSolo retires a crossed solo instant.
func (m *Machine) popSolo(t sim.Time) {
	if len(m.solos) > 0 && m.solos[0] == t {
		m.solos = m.solos[1:]
	}
}

// allAt reports whether every shard clock sits exactly at t.
func (m *Machine) allAt(t sim.Time) bool {
	for _, e := range m.engines {
		if e.Now() != t {
			return false
		}
	}
	return true
}
