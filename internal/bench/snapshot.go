package bench

import (
	"fmt"

	"cdna/internal/backend"
	"cdna/internal/bus"
	"cdna/internal/core"
	"cdna/internal/cpu"
	"cdna/internal/ether"
	"cdna/internal/guest"
	"cdna/internal/intelnic"
	"cdna/internal/mem"
	"cdna/internal/ricenic"
	"cdna/internal/sim"
	"cdna/internal/snap"
	"cdna/internal/topo"
	"cdna/internal/transport"
	"cdna/internal/workload"
	"cdna/internal/xen"
)

// segCodec is the machine's ether.PayloadCodec: every frame payload in
// this simulator is a *transport.Segment, and a segment's portable
// identity is its connection's index in the machine's group (Conn.ID ==
// group index by construction — see wireConns/wireCross).
type segCodec struct {
	conns *transport.Group
}

// EncodePayload serializes a frame payload for a checkpoint.
func (c segCodec) EncodePayload(p any) ([]byte, error) {
	seg, ok := p.(*transport.Segment)
	if !ok {
		return nil, fmt.Errorf("bench: frame payload is %T, want segment", p)
	}
	id := seg.Conn.ID
	if id < 0 || id >= len(c.conns.Conns) || c.conns.Conns[id] != seg.Conn {
		return nil, fmt.Errorf("bench: segment's connection %d is not in the machine's group", id)
	}
	return transport.EncodeSegment(seg, id), nil
}

// DecodePayload materializes a frame payload from its checkpoint bytes.
func (c segCodec) DecodePayload(b []byte) (any, error) {
	idx, seg, err := transport.DecodeSegment(b)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(c.conns.Conns) {
		return nil, fmt.Errorf("bench: segment image references connection %d of %d", idx, len(c.conns.Conns))
	}
	seg.Conn = c.conns.Conns[idx]
	return seg, nil
}

// hypState is a host's virtualization-layer image: the hypervisor
// proper plus the CDNA protection engine it owns.
type hypState struct {
	Xen  xen.State
	Prot core.ProtectionState
}

// hostState is one host's checkpoint image. Every slice mirrors the
// Host roster of the same name; identity is creation order, which
// deterministic construction reproduces.
type hostState struct {
	CPU        cpu.CPUState
	Mem        mem.State
	Hyp        *hypState // nil in native mode
	Buses      []bus.State
	Links      []ether.PipeState
	Intel      []intelnic.State
	Rice       []ricenic.State
	CtxMgrs    []core.ContextManagerState
	Drivers    []guest.CDNADriverState
	NativeDrvs []guest.NativeDriverState
	Netbacks   []backend.State
	Stacks     []guest.StackState
}

// machineState is the whole testbed's checkpoint image: every engine
// shard's queue (in shard-index order; classic machines have one),
// every host, the fabric (multi-host only), every benchmark
// connection, the workload fleet (one generator per shard), and the
// fault injector's phase. The injector's spec is deliberately absent —
// it is re-derived from the restoring configuration, which is what
// lets a fault variant restore its fault-free base's warmup snapshot.
type machineState struct {
	Engines    []sim.EngineState
	Hosts      []hostState
	Fabric     *topo.FabricState // nil for single-host
	Conns      []transport.ConnState
	Work       []workload.GeneratorState
	FaultPhase int
}

// state captures one host.
func (h *Host) state(codec ether.PayloadCodec) (hostState, error) {
	cs, err := h.CPU.State()
	if err != nil {
		return hostState{}, err
	}
	hs := hostState{
		CPU:        cs,
		Mem:        h.Mem.State(),
		Buses:      make([]bus.State, len(h.Buses)),
		Links:      make([]ether.PipeState, len(h.Links)),
		Intel:      make([]intelnic.State, len(h.IntelNICs)),
		Rice:       make([]ricenic.State, len(h.RiceNICs)),
		CtxMgrs:    make([]core.ContextManagerState, len(h.CtxMgrs)),
		Drivers:    make([]guest.CDNADriverState, len(h.Drivers)),
		NativeDrvs: make([]guest.NativeDriverState, len(h.NativeDrvs)),
		Netbacks:   make([]backend.State, len(h.Netbacks)),
		Stacks:     make([]guest.StackState, len(h.Stacks)),
	}
	if h.Hyp != nil {
		xs, err := h.Hyp.State()
		if err != nil {
			return hostState{}, err
		}
		hs.Hyp = &hypState{Xen: xs, Prot: h.Hyp.Prot.State()}
	}
	for i, b := range h.Buses {
		hs.Buses[i] = b.State()
	}
	for i, l := range h.Links {
		if hs.Links[i], err = l.State(codec); err != nil {
			return hostState{}, err
		}
	}
	for i, n := range h.IntelNICs {
		if hs.Intel[i], err = n.State(codec); err != nil {
			return hostState{}, err
		}
	}
	for i, n := range h.RiceNICs {
		if hs.Rice[i], err = n.State(codec); err != nil {
			return hostState{}, err
		}
	}
	for i, cm := range h.CtxMgrs {
		hs.CtxMgrs[i] = cm.State()
	}
	for i, d := range h.Drivers {
		if hs.Drivers[i], err = d.State(codec); err != nil {
			return hostState{}, err
		}
	}
	for i, d := range h.NativeDrvs {
		if hs.NativeDrvs[i], err = d.State(codec); err != nil {
			return hostState{}, err
		}
	}
	for i, nb := range h.Netbacks {
		if hs.Netbacks[i], err = nb.State(codec); err != nil {
			return hostState{}, err
		}
	}
	for i, st := range h.Stacks {
		if hs.Stacks[i], err = st.State(codec); err != nil {
			return hostState{}, err
		}
	}
	return hs, nil
}

// setState restores one host.
func (h *Host) setState(hs hostState, codec ether.PayloadCodec) error {
	if len(hs.Buses) != len(h.Buses) || len(hs.Links) != len(h.Links) ||
		len(hs.Intel) != len(h.IntelNICs) || len(hs.Rice) != len(h.RiceNICs) ||
		len(hs.CtxMgrs) != len(h.CtxMgrs) || len(hs.Drivers) != len(h.Drivers) ||
		len(hs.NativeDrvs) != len(h.NativeDrvs) || len(hs.Netbacks) != len(h.Netbacks) ||
		len(hs.Stacks) != len(h.Stacks) {
		return fmt.Errorf("bench: host %d component roster mismatch", h.Index)
	}
	if (hs.Hyp == nil) != (h.Hyp == nil) {
		return fmt.Errorf("bench: host %d hypervisor presence mismatch", h.Index)
	}
	if err := h.CPU.SetState(hs.CPU); err != nil {
		return err
	}
	h.Mem.SetState(hs.Mem)
	if h.Hyp != nil {
		if err := h.Hyp.SetState(hs.Hyp.Xen); err != nil {
			return err
		}
		if err := h.Hyp.Prot.SetState(hs.Hyp.Prot); err != nil {
			return err
		}
	}
	for i, b := range h.Buses {
		b.SetState(hs.Buses[i])
	}
	for i, l := range h.Links {
		if err := l.SetState(hs.Links[i], codec); err != nil {
			return err
		}
	}
	for i, n := range h.IntelNICs {
		if err := n.SetState(hs.Intel[i], codec); err != nil {
			return err
		}
	}
	for i, n := range h.RiceNICs {
		if err := n.SetState(hs.Rice[i], codec); err != nil {
			return err
		}
	}
	for i, cm := range h.CtxMgrs {
		if err := cm.SetState(hs.CtxMgrs[i]); err != nil {
			return err
		}
	}
	for i, d := range h.Drivers {
		if err := d.SetState(hs.Drivers[i], codec); err != nil {
			return err
		}
	}
	for i, d := range h.NativeDrvs {
		if err := d.SetState(hs.NativeDrvs[i], codec); err != nil {
			return err
		}
	}
	for i, nb := range h.Netbacks {
		if err := nb.SetState(hs.Netbacks[i], codec); err != nil {
			return err
		}
	}
	for i, st := range h.Stacks {
		if err := st.SetState(hs.Stacks[i], codec); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot checkpoints the whole machine into a versioned image. The
// machine must be quiescent (between Run calls); a snapshot taken
// mid-Run would miss the event being fired.
func (m *Machine) Snapshot() ([]byte, error) {
	codec := segCodec{conns: &m.Conns}
	st := machineState{
		Engines:    make([]sim.EngineState, len(m.engines)),
		Hosts:      make([]hostState, len(m.Hosts)),
		Conns:      make([]transport.ConnState, len(m.Conns.Conns)),
		Work:       m.Work.State(),
		FaultPhase: m.faults.phase,
	}
	// The header's registry counts are machine totals, so they are
	// independent of how hosts are partitioned over shards.
	var binds, timers int
	for i, e := range m.engines {
		es, err := e.Snapshot()
		if err != nil {
			return nil, err
		}
		st.Engines[i] = es
		binds += es.Binds
		timers += es.Timers
	}
	var err error
	for i, h := range m.Hosts {
		if st.Hosts[i], err = h.state(codec); err != nil {
			return nil, err
		}
	}
	if m.Fabric != nil {
		fs, err := m.Fabric.State(codec)
		if err != nil {
			return nil, err
		}
		st.Fabric = &fs
	}
	for i, c := range m.Conns.Conns {
		st.Conns[i] = c.State()
	}
	return snap.Encode(snap.Header{
		Config: m.cfg.Name(),
		Binds:  binds,
		Timers: timers,
	}, st)
}

// Restore loads a snapshot image into a freshly built (not yet
// launched) machine. The image must come from this machine's own
// configuration or from its warm-start base — the same configuration
// with the fault scenario zeroed (see RunWarmForked): a fault variant
// builds an identical machine because the injector exists either way
// and only arms at window open.
func (m *Machine) Restore(b []byte) error {
	var st machineState
	h, err := snap.Decode(b, &st)
	if err != nil {
		return err
	}
	var binds, timers int
	for _, e := range m.engines {
		binds += e.Binds()
		timers += e.Timers()
	}
	if err := h.Compatible(binds, timers, m.cfg.Name(), warmBase(m.cfg).Name()); err != nil {
		return err
	}
	if len(st.Engines) != len(m.engines) {
		return fmt.Errorf("bench: snapshot has %d engine shards, machine has %d", len(st.Engines), len(m.engines))
	}
	codec := segCodec{conns: &m.Conns}
	if len(st.Hosts) != len(m.Hosts) {
		return fmt.Errorf("bench: snapshot has %d hosts, machine has %d", len(st.Hosts), len(m.Hosts))
	}
	if (st.Fabric == nil) != (m.Fabric == nil) {
		return fmt.Errorf("bench: snapshot/machine fabric presence mismatch")
	}
	if len(st.Conns) != len(m.Conns.Conns) {
		return fmt.Errorf("bench: snapshot has %d connections, machine has %d", len(st.Conns), len(m.Conns.Conns))
	}
	for i, hh := range m.Hosts {
		if err := hh.setState(st.Hosts[i], codec); err != nil {
			return err
		}
	}
	if m.Fabric != nil {
		if err := m.Fabric.SetState(*st.Fabric, codec); err != nil {
			return err
		}
	}
	for i, c := range m.Conns.Conns {
		c.SetState(st.Conns[i])
	}
	if err := m.Work.SetState(st.Work); err != nil {
		return err
	}
	// Re-derive the injector's spec from this machine's configuration
	// (the image deliberately omits it); the phase is the image's. A
	// warm base image carries phase 0, so a fault variant restoring it
	// arms its own spec at window open. The shard coordinator's solo
	// schedule is a pure function of spec and phase (the injector arms
	// at the window-open instant), so it is recomputed, not stored.
	m.faults.spec = m.cfg.Fault
	m.faults.phase = st.FaultPhase
	m.solos = m.faults.soloTimes(m.cfg.Warmup)
	// The engines go last: restoring their queues re-arms every timer
	// the layer restores above rely on, and their registry checks are
	// the final word on whether this machine really is the snapshot's
	// twin.
	for i, e := range m.engines {
		if err := e.Restore(st.Engines[i]); err != nil {
			return err
		}
	}
	return nil
}

// warmBase returns the warm-start base of a configuration: the same
// machine with no fault scenario. A config and its warmBase build
// byte-identical machines through the warmup (faults only arm at
// window open), so every fault variant of a grid point can fork one
// shared warmup snapshot instead of re-simulating the warmup.
func warmBase(cfg Config) Config {
	cfg.Fault = FaultSpec{}
	return cfg
}
