package bench

// Shape tests: the acceptance criteria of the reproduction. Absolute
// numbers need not match the paper's testbed, but the orderings, rough
// factors, and crossovers must. Tolerances here are the contract
// EXPERIMENTS.md reports against.

import (
	"math"
	"testing"

	"cdna/internal/core"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	cfg = Quick().apply(cfg)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	if rel := math.Abs(got-want) / want; rel > relTol {
		t.Errorf("%s = %.1f, want %.1f (±%.0f%%); off by %.0f%%", name, got, want, 100*relTol, 100*rel)
	}
}

// TestTable2TransmitShape checks the single-guest transmit row against
// the paper: Xen/Intel 1602, CDNA 1867 Mb/s, CDNA idle 50.8%, hyp 10.2%.
func TestTable2TransmitShape(t *testing.T) {
	xen := run(t, DefaultConfig(ModeXen, NICIntel, Tx))
	cdna := run(t, DefaultConfig(ModeCDNA, NICRice, Tx))

	within(t, "Xen tx Mb/s", xen.Mbps, 1602, 0.10)
	within(t, "CDNA tx Mb/s", cdna.Mbps, 1867, 0.05)
	if cdna.Mbps <= xen.Mbps {
		t.Error("CDNA must beat Xen on transmit")
	}
	within(t, "CDNA tx idle %", 100*cdna.Profile.Idle, 50.8, 0.15)
	within(t, "CDNA tx hyp %", 100*cdna.Profile.Hyp, 10.2, 0.25)
	within(t, "Xen tx driver %", 100*(xen.Profile.DriverOS+xen.Profile.DriverUser), 36.5, 0.20)
	// CDNA eliminates the driver domain from the data path entirely.
	if cdna.Profile.DriverOS+cdna.Profile.DriverUser > 0.02 {
		t.Errorf("CDNA driver-domain time = %.1f%%, want ~0.5%%",
			100*(cdna.Profile.DriverOS+cdna.Profile.DriverUser))
	}
	// Interrupts: zero to the driver domain under CDNA; guest rate near
	// the paper's 13,659/s.
	if cdna.DriverIntrPerSec > 100 {
		t.Errorf("CDNA driver interrupts = %.0f/s, want ~0", cdna.DriverIntrPerSec)
	}
	within(t, "CDNA guest intr/s", cdna.GuestIntrPerSec, 13659, 0.20)
	within(t, "Xen driver intr/s", xen.DriverIntrPerSec, 7438, 0.20)
	within(t, "Xen guest intr/s", xen.GuestIntrPerSec, 7853, 0.25)
}

// TestTable3ReceiveShape checks the single-guest receive row: Xen 1112,
// CDNA 1874 Mb/s, CDNA idle 40.9%, guest OS 48.0%.
func TestTable3ReceiveShape(t *testing.T) {
	xen := run(t, DefaultConfig(ModeXen, NICIntel, Rx))
	cdna := run(t, DefaultConfig(ModeCDNA, NICRice, Rx))

	within(t, "Xen rx Mb/s", xen.Mbps, 1112, 0.10)
	within(t, "CDNA rx Mb/s", cdna.Mbps, 1874, 0.05)
	within(t, "CDNA rx idle %", 100*cdna.Profile.Idle, 40.9, 0.15)
	within(t, "CDNA rx guest OS %", 100*cdna.Profile.GuestOS, 48.0, 0.15)
	// Receive costs more than transmit: Xen rx < Xen tx.
	xenTx := run(t, DefaultConfig(ModeXen, NICIntel, Tx))
	if xen.Mbps >= xenTx.Mbps {
		t.Error("Xen receive must be slower than Xen transmit")
	}
}

// TestXenRiceNICRowsShape: using the RiceNIC under software
// virtualization performs like the Intel NIC — the paper's evidence that
// CDNA's benefit is architectural, not better hardware (§5.2).
func TestXenRiceNICRowsShape(t *testing.T) {
	intel := run(t, DefaultConfig(ModeXen, NICIntel, Tx))
	rice := run(t, DefaultConfig(ModeXen, NICRice, Tx))
	ratio := rice.Mbps / intel.Mbps
	if ratio < 0.80 || ratio > 1.20 {
		t.Errorf("Xen/RiceNIC vs Xen/Intel tx ratio = %.2f, want ~1 (paper: 1674/1602 = 1.04)", ratio)
	}
	intelRx := run(t, DefaultConfig(ModeXen, NICIntel, Rx))
	riceRx := run(t, DefaultConfig(ModeXen, NICRice, Rx))
	rxRatio := riceRx.Mbps / intelRx.Mbps
	if rxRatio < 0.80 || rxRatio > 1.20 {
		t.Errorf("Xen/RiceNIC vs Xen/Intel rx ratio = %.2f, want ~1 (paper: 1075/1112 = 0.97)", rxRatio)
	}
}

// TestTable1Shape: native Linux dramatically outperforms a Xen guest
// (the paper's ~30% motivation datum).
func TestTable1Shape(t *testing.T) {
	native := DefaultConfig(ModeNative, NICIntel, Tx)
	native.NICs = 6
	native.ConnsPerGuestPerNIC = 6
	ntx := run(t, native)
	within(t, "native tx Mb/s", ntx.Mbps, 5126, 0.10)

	nativeRx := native
	nativeRx.Dir = Rx
	nrx := run(t, nativeRx)
	within(t, "native rx Mb/s", nrx.Mbps, 3629, 0.10)

	xtx := run(t, DefaultConfig(ModeXen, NICIntel, Tx))
	frac := xtx.Mbps / ntx.Mbps
	if frac < 0.2 || frac > 0.45 {
		t.Errorf("Xen guest achieves %.0f%% of native transmit, paper says ~31%%", 100*frac)
	}
}

// TestTable4ProtectionShape: disabling DMA protection drops hypervisor
// time to ~1.9% and returns ~9% idle, with throughput unchanged.
func TestTable4ProtectionShape(t *testing.T) {
	for _, dir := range []Direction{Tx, Rx} {
		on := run(t, DefaultConfig(ModeCDNA, NICRice, dir))
		offCfg := DefaultConfig(ModeCDNA, NICRice, dir)
		offCfg.Protection = core.ModeOff
		off := run(t, offCfg)

		if math.Abs(on.Mbps-off.Mbps)/on.Mbps > 0.02 {
			t.Errorf("%v: throughput changed with protection off: %.0f vs %.0f", dir, on.Mbps, off.Mbps)
		}
		within(t, dir.String()+" prot-off hyp %", 100*off.Profile.Hyp, 1.9, 0.60)
		idleGain := 100 * (off.Profile.Idle - on.Profile.Idle)
		if idleGain < 4 || idleGain > 14 {
			t.Errorf("%v: idle gain from disabling protection = %.1f points, paper: ~9", dir, idleGain)
		}
		if off.Profile.Hyp >= on.Profile.Hyp {
			t.Errorf("%v: protection off must reduce hypervisor time", dir)
		}
	}
}

// TestFigure3Shape: the transmit scaling curve — CDNA bandwidth flat
// with idle draining to zero by 8 guests; Xen declining.
func TestFigure3Shape(t *testing.T) {
	_, pts, err := Figure3(Quick(), []int{1, 2, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	p1, p2, p8, p24 := pts[0], pts[1], pts[2], pts[3]

	// CDNA bandwidth stays within 3% of the single-guest value.
	for _, p := range pts[1:] {
		if math.Abs(p.CDNA.Mbps-p1.CDNA.Mbps)/p1.CDNA.Mbps > 0.03 {
			t.Errorf("CDNA bandwidth not flat: %d guests -> %.0f vs %.0f", p.Guests, p.CDNA.Mbps, p1.CDNA.Mbps)
		}
	}
	// CDNA idle drains monotonically to ~0 by 8 guests (paper: 50.8 ->
	// 25.4 -> 0).
	if !(p1.CDNA.Profile.Idle > p2.CDNA.Profile.Idle && p2.CDNA.Profile.Idle > p8.CDNA.Profile.Idle) {
		t.Errorf("CDNA idle not draining: %.2f, %.2f, %.2f",
			p1.CDNA.Profile.Idle, p2.CDNA.Profile.Idle, p8.CDNA.Profile.Idle)
	}
	if p8.CDNA.Profile.Idle > 0.05 {
		t.Errorf("CDNA idle at 8 guests = %.1f%%, paper: 0%%", 100*p8.CDNA.Profile.Idle)
	}
	// Xen declines substantially and monotonically.
	if !(p1.Xen.Mbps > p2.Xen.Mbps && p2.Xen.Mbps > p8.Xen.Mbps && p8.Xen.Mbps > p24.Xen.Mbps) {
		t.Errorf("Xen throughput not declining: %.0f, %.0f, %.0f, %.0f",
			p1.Xen.Mbps, p2.Xen.Mbps, p8.Xen.Mbps, p24.Xen.Mbps)
	}
	// At 24 guests CDNA wins by a large factor (paper: 2.1x; accept >1.5x).
	ratio := p24.CDNA.Mbps / p24.Xen.Mbps
	if ratio < 1.5 {
		t.Errorf("CDNA/Xen at 24 guests = %.2fx, paper: 2.1x", ratio)
	}
}

// TestFigure4Shape: the receive scaling curve (paper: Xen 1112 -> 558,
// CDNA flat, 3.3x at 24 guests; accept >2x).
func TestFigure4Shape(t *testing.T) {
	_, pts, err := Figure4(Quick(), []int{1, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	p1, p8, p24 := pts[0], pts[1], pts[2]
	for _, p := range pts[1:] {
		if math.Abs(p.CDNA.Mbps-p1.CDNA.Mbps)/p1.CDNA.Mbps > 0.03 {
			t.Errorf("CDNA rx bandwidth not flat: %d guests -> %.0f", p.Guests, p.CDNA.Mbps)
		}
	}
	if !(p1.Xen.Mbps > p8.Xen.Mbps && p8.Xen.Mbps > p24.Xen.Mbps) {
		t.Errorf("Xen rx not declining: %.0f, %.0f, %.0f", p1.Xen.Mbps, p8.Xen.Mbps, p24.Xen.Mbps)
	}
	ratio := p24.CDNA.Mbps / p24.Xen.Mbps
	if ratio < 2.0 {
		t.Errorf("CDNA/Xen rx at 24 guests = %.2fx, paper: 3.3x", ratio)
	}
}

// TestBenchmarkFairness: the benchmark tool balances bandwidth across
// connections (§5.1).
func TestBenchmarkFairness(t *testing.T) {
	res := run(t, DefaultConfig(ModeCDNA, NICRice, Tx))
	if res.Fairness < 0.95 {
		t.Errorf("fairness = %.3f, want >= 0.95", res.Fairness)
	}
}

// TestCleanRun: the standard configurations run without NIC drops,
// protection faults, or retransmissions.
func TestCleanRun(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(ModeCDNA, NICRice, Tx),
		DefaultConfig(ModeCDNA, NICRice, Rx),
		DefaultConfig(ModeXen, NICIntel, Tx),
		DefaultConfig(ModeXen, NICIntel, Rx),
	} {
		res := run(t, cfg)
		if res.Faults != 0 {
			t.Errorf("%s: %d protection faults", cfg.Name(), res.Faults)
		}
		if res.Retransmits > 0 {
			t.Errorf("%s: %d retransmits", cfg.Name(), res.Retransmits)
		}
		if res.Drops > 100 {
			t.Errorf("%s: %d NIC drops", cfg.Name(), res.Drops)
		}
	}
}

// TestDeterminism: identical configurations give bit-identical results.
func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Mbps != b.Mbps || a.Events != b.Events || a.GuestIntrPerSec != b.GuestIntrPerSec {
		t.Errorf("nondeterministic: %.3f/%.3f Mb/s, %d/%d events", a.Mbps, b.Mbps, a.Events, b.Events)
	}
}

// TestAblationBatchingShape: smaller enqueue batches cost more
// hypervisor time (§3.3's motivation for batched hypercalls).
func TestAblationBatchingShape(t *testing.T) {
	_, results, err := AblationBatching(Quick(), []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	one, unlimited := results[0], results[1]
	if one.Profile.Hyp <= unlimited.Profile.Hyp {
		t.Errorf("batch=1 hyp %.1f%% should exceed unlimited %.1f%%",
			100*one.Profile.Hyp, 100*unlimited.Profile.Hyp)
	}
}

// TestAblationInterruptShape: per-context interrupts create a higher
// physical interrupt load than bit vectors (§3.2).
func TestAblationInterruptShape(t *testing.T) {
	_, results, err := AblationInterrupts(Quick(), 8)
	if err != nil {
		t.Fatal(err)
	}
	bitvec, direct := results[0], results[1]
	if direct.PhysIRQPerSec <= bitvec.PhysIRQPerSec*1.5 {
		t.Errorf("per-context IRQs %.0f/s should far exceed bit-vector %.0f/s",
			direct.PhysIRQPerSec, bitvec.PhysIRQPerSec)
	}
}

// TestAblationIOMMUShape: IOMMU mode matches protection-off hypervisor
// cost (the §5.3 upper-bound equivalence).
func TestAblationIOMMUShape(t *testing.T) {
	_, results, err := AblationIOMMU(Quick())
	if err != nil {
		t.Fatal(err)
	}
	hyperc, iommu, off := results[0], results[1], results[2]
	if iommu.Profile.Hyp >= hyperc.Profile.Hyp {
		t.Error("IOMMU mode must reduce hypervisor time vs hypercall protection")
	}
	if math.Abs(iommu.Profile.Hyp-off.Profile.Hyp) > 0.02 {
		t.Errorf("IOMMU hyp %.1f%% should approximate protection-off %.1f%%",
			100*iommu.Profile.Hyp, 100*off.Profile.Hyp)
	}
}

// TestNativeModeHasNoHypervisor: the native baseline charges nothing to
// hypervisor or driver domain.
func TestNativeModeHasNoHypervisor(t *testing.T) {
	cfg := DefaultConfig(ModeNative, NICIntel, Tx)
	res := run(t, cfg)
	if res.Profile.Hyp != 0 || res.Profile.DriverOS != 0 {
		t.Errorf("native profile leaked hyp/driver time: %+v", res.Profile)
	}
	if res.Mbps < 1800 {
		t.Errorf("native 2-NIC tx = %.0f Mb/s, should saturate ~1880", res.Mbps)
	}
}

// TestConfigName formats stable identifiers.
func TestConfigName(t *testing.T) {
	cfg := DefaultConfig(ModeCDNA, NICRice, Tx)
	if cfg.Name() != "CDNA/RiceNIC/1g/2nic/transmit" {
		t.Errorf("Name = %q", cfg.Name())
	}
}

// TestConnsForBalance: the per-guest connection count balances a fixed
// total.
func TestConnsForBalance(t *testing.T) {
	if connsFor(1) != 12 || connsFor(2) != 6 || connsFor(12) != 1 || connsFor(24) != 1 {
		t.Errorf("connsFor: %d %d %d %d", connsFor(1), connsFor(2), connsFor(12), connsFor(24))
	}
}
