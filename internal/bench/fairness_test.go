package bench

// Multi-guest fairness: §3.1 says the NIC "services all of the hardware
// contexts fairly and interleaves the network traffic for each guest";
// the benchmark tool balances bandwidth across connections (§5.1).

import (
	"testing"
)

// perGuestBytes aggregates windowed delivery per guest (connections are
// wired guest-major: guest g owns conns [g*perGuest, (g+1)*perGuest)).
func perGuestBytes(m *Machine, cfg Config) []uint64 {
	perGuest := cfg.ConnsPerGuestPerNIC * cfg.NICs
	out := make([]uint64, cfg.Guests)
	for i, c := range m.Conns.Conns {
		// wireConns order: for each NIC, for each guest, for each conn —
		// CDNA builds guests inside the NIC loop, so reconstruct by
		// index: conn index = nic*(guests*conns) + guest*conns + c.
		conns := cfg.ConnsPerGuestPerNIC
		g := (i / conns) % cfg.Guests
		out[g] += c.Delivered.Window()
		_ = perGuest
	}
	return out
}

func TestCDNAInterGuestFairness(t *testing.T) {
	cfg := Quick().apply(DefaultConfig(ModeCDNA, NICRice, Tx))
	cfg.Guests = 4
	cfg.ConnsPerGuestPerNIC = connsFor(4)
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Conns.Conns {
		c.Start()
	}
	m.Eng.Run(cfg.Warmup)
	m.Conns.StartWindow()
	m.Eng.Run(cfg.Warmup + cfg.Duration)

	bytes := perGuestBytes(m, cfg)
	var min, max uint64 = ^uint64(0), 0
	for _, b := range bytes {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min == 0 {
		t.Fatalf("a guest was starved: %v", bytes)
	}
	if ratio := float64(max) / float64(min); ratio > 1.25 {
		t.Fatalf("inter-guest imbalance %.2f (bytes %v); the NIC must interleave contexts fairly", ratio, bytes)
	}
}

func TestXenInterGuestFairness(t *testing.T) {
	cfg := Quick().apply(DefaultConfig(ModeXen, NICIntel, Tx))
	cfg.Guests = 4
	cfg.ConnsPerGuestPerNIC = connsFor(4)
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Conns.Conns {
		c.Start()
	}
	m.Eng.Run(cfg.Warmup)
	m.Conns.StartWindow()
	m.Eng.Run(cfg.Warmup + cfg.Duration)

	bytes := perGuestBytes(m, cfg)
	var min, max uint64 = ^uint64(0), 0
	for _, b := range bytes {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if min == 0 {
		t.Fatalf("a guest was starved: %v", bytes)
	}
	if ratio := float64(max) / float64(min); ratio > 1.4 {
		t.Fatalf("inter-guest imbalance %.2f (bytes %v)", ratio, bytes)
	}
}

func TestAblationCoalescingShape(t *testing.T) {
	_, results, err := AblationCoalescing(Quick(), []int{2, 48})
	if err != nil {
		t.Fatal(err)
	}
	tight, loose := results[0], results[1]
	if tight.GuestIntrPerSec <= loose.GuestIntrPerSec {
		t.Errorf("threshold 2 intr %.0f/s should exceed threshold 48's %.0f/s",
			tight.GuestIntrPerSec, loose.GuestIntrPerSec)
	}
	if tight.Profile.Idle >= loose.Profile.Idle {
		t.Errorf("tight coalescing idle %.1f%% should be below loose %.1f%%",
			100*tight.Profile.Idle, 100*loose.Profile.Idle)
	}
}
