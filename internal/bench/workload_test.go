package bench

import (
	"strings"
	"testing"

	"cdna/internal/sim"
	"cdna/internal/workload"
)

func quickCfg(mode Mode, nic NICKind, kind workload.Kind) Config {
	cfg := DefaultConfig(mode, nic, Tx)
	cfg.Workload = workload.Spec{Kind: kind}
	cfg.Warmup = 20 * sim.Millisecond
	cfg.Duration = 60 * sim.Millisecond
	return cfg
}

// TestBulkResultHasNoWorkloadColumns: the default workload reports
// zeroes in the workload columns, keeping legacy result records stable.
func TestBulkResultHasNoWorkloadColumns(t *testing.T) {
	res, err := Run(quickCfg(ModeCDNA, NICRice, workload.Bulk))
	if err != nil {
		t.Fatal(err)
	}
	if res.RPCPerSec != 0 || res.FlowsPerSec != 0 || res.MsgLatP50us != 0 || res.MsgLatP99us != 0 {
		t.Fatalf("bulk run reported workload metrics: %+v", res)
	}
	if res.Mbps <= 0 {
		t.Fatal("bulk run moved no traffic")
	}
}

// TestChurnChargesTheGuest: connection churn must cost guest CPU beyond
// what the same byte stream costs as one long-lived bulk flow — the
// per-flow setup/teardown charges and slow-start restarts at work.
func TestChurnChargesTheGuest(t *testing.T) {
	bulk, err := Run(quickCfg(ModeCDNA, NICRice, workload.Bulk))
	if err != nil {
		t.Fatal(err)
	}
	churn, err := Run(quickCfg(ModeCDNA, NICRice, workload.Churn))
	if err != nil {
		t.Fatal(err)
	}
	if churn.FlowsPerSec <= 0 {
		t.Fatal("churn completed no flows")
	}
	if churn.Profile.GuestOS <= bulk.Profile.GuestOS {
		t.Fatalf("churn guest OS time %.3f not above bulk %.3f: flow lifecycle is free",
			churn.Profile.GuestOS, bulk.Profile.GuestOS)
	}
}

// TestRequestResponseAcrossModes: the RPC workload runs on every
// machine architecture and reports latency quantiles.
func TestRequestResponseAcrossModes(t *testing.T) {
	for _, tc := range []struct {
		mode Mode
		nic  NICKind
	}{{ModeNative, NICIntel}, {ModeXen, NICIntel}, {ModeCDNA, NICRice}} {
		res, err := Run(quickCfg(tc.mode, tc.nic, workload.RequestResponse))
		if err != nil {
			t.Fatalf("%v: %v", tc.mode, err)
		}
		if res.RPCPerSec <= 0 {
			t.Fatalf("%v: no RPCs completed", tc.mode)
		}
		if res.MsgLatP50us <= 0 || res.MsgLatP99us < res.MsgLatP50us {
			t.Fatalf("%v: implausible latency quantiles p50=%v p99=%v",
				tc.mode, res.MsgLatP50us, res.MsgLatP99us)
		}
	}
}

// TestWorkloadNameSuffix: the workload contributes to Config.Name, and
// the default keeps legacy names byte-identical.
func TestWorkloadNameSuffix(t *testing.T) {
	base := DefaultConfig(ModeCDNA, NICRice, Tx)
	if strings.Contains(base.Name(), "bulk") {
		t.Fatalf("default name %q mentions the workload; legacy names must not change", base.Name())
	}
	rr := base
	rr.Workload = workload.Spec{Kind: workload.RequestResponse}
	if !strings.HasSuffix(rr.Name(), "/rr") {
		t.Fatalf("RPC name %q missing workload suffix", rr.Name())
	}
	knobbed := rr
	knobbed.Workload.Think = 2 * sim.Millisecond
	if knobbed.Name() == rr.Name() {
		t.Fatal("distinct workload knobs produced identical names")
	}
}

// TestValidateRejectsBadWorkload: malformed specs are caught before the
// machine is built, so campaigns record clean per-point errors.
func TestValidateRejectsBadWorkload(t *testing.T) {
	cfg := quickCfg(ModeCDNA, NICRice, workload.Kind(99))
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid workload kind accepted")
	}
	cfg = quickCfg(ModeCDNA, NICRice, workload.Churn)
	cfg.Workload.FlowSegs = -3
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative flow size accepted")
	}
}
