package bench

import "testing"

// TestExtensionDuplexShape: under full-duplex load CDNA still dominates
// and carries far higher aggregate bandwidth at lower latency.
func TestExtensionDuplexShape(t *testing.T) {
	_, results, err := ExtensionDuplex(Quick())
	if err != nil {
		t.Fatal(err)
	}
	xen, cdna := results[0], results[1]
	if cdna.Mbps <= xen.Mbps {
		t.Errorf("duplex: CDNA %.0f Mb/s should beat Xen %.0f", cdna.Mbps, xen.Mbps)
	}
	if cdna.Mbps < 2500 {
		t.Errorf("duplex CDNA aggregate = %.0f Mb/s; two full-duplex gigabit links should carry well over 2.5 Gb/s", cdna.Mbps)
	}
	if cdna.LatencyP50us <= 0 || xen.LatencyP50us <= 0 {
		t.Error("latency quantiles missing")
	}
	if cdna.LatencyP50us >= xen.LatencyP50us {
		t.Errorf("CDNA p50 latency %.0fus should be below Xen's %.0fus", cdna.LatencyP50us, xen.LatencyP50us)
	}
}

func TestLatencyMetricsPopulated(t *testing.T) {
	res := run(t, DefaultConfig(ModeCDNA, NICRice, Tx))
	if res.LatencyP50us <= 0 || res.LatencyP90us < res.LatencyP50us {
		t.Fatalf("latency: p50=%.0f p90=%.0f", res.LatencyP50us, res.LatencyP90us)
	}
}
