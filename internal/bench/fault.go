package bench

import (
	"fmt"
	"strconv"
	"strings"

	"cdna/internal/ether"
	"cdna/internal/sim"
)

// FaultKind selects a fault/churn scenario injected into a running
// machine. Faults act on the physical substrate (links, switch ports),
// never on protocol state — recovery is whatever the modeled stack does
// on its own (FDB re-learning, retransmission timeouts, window
// collapse), which is exactly what the scenarios measure.
type FaultKind int

// Fault scenarios.
const (
	// FaultNone injects nothing. The injector still exists so that a
	// faulted configuration and its fault-free base build identical
	// engine registries — the property warm-start forking relies on.
	FaultNone FaultKind = iota
	// FaultLinkFlap takes one access link (both directions) down for the
	// outage, then restores it. Frames sent meanwhile are dropped at the
	// pipe; senders recover by RTO.
	FaultLinkFlap
	// FaultPortFail fails one switch port: its egress queue is discarded
	// as drops and the bridge unlearns every station behind it, then the
	// port is restored. Traffic re-converges by flooding until the FDB
	// re-learns (the Moves counter records the churn). Multi-host only.
	FaultPortFail
	// FaultBlackout takes every access link down for the outage — a
	// whole-fabric brownout whose restoration triggers a synchronized
	// RTO storm.
	FaultBlackout
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultLinkFlap:
		return "linkflap"
	case FaultPortFail:
		return "portfail"
	case FaultBlackout:
		return "blackout"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// ParseFaultKind parses a fault scenario name:
// none | linkflap | portfail | blackout.
func ParseFaultKind(s string) (FaultKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none":
		return FaultNone, nil
	case "linkflap", "flap":
		return FaultLinkFlap, nil
	case "portfail", "port":
		return FaultPortFail, nil
	case "blackout":
		return FaultBlackout, nil
	}
	return 0, fmt.Errorf("bench: unknown fault %q (want none | linkflap | portfail | blackout)", s)
}

// MarshalText encodes the kind as its canonical token.
func (k FaultKind) MarshalText() ([]byte, error) {
	switch k {
	case FaultNone, FaultLinkFlap, FaultPortFail, FaultBlackout:
		return []byte(k.String()), nil
	}
	return []byte(strconv.Itoa(int(k))), nil
}

// UnmarshalText decodes a kind token (or its decimal fallback form; see
// Mode.UnmarshalText).
func (k *FaultKind) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*k = FaultKind(n)
		return nil
	}
	v, err := ParseFaultKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// FaultSpec schedules one fault scenario relative to the measurement
// window: the fault fires After the window opens and heals Outage
// later. Relative timing keeps the spec independent of the warmup
// length — and therefore identical between a cold run and a warm-start
// fork, which arm the injector at the same instant either way.
type FaultSpec struct {
	Kind FaultKind `json:"kind"`
	// After is the injection offset from window open.
	After sim.Time `json:"after_ns"`
	// Outage is how long the fault lasts before healing.
	Outage sim.Time `json:"outage_ns"`
	// Target picks the victim: a machine link index for FaultLinkFlap
	// (host-order access links) or a fabric port for FaultPortFail.
	// Ignored by FaultBlackout.
	Target int `json:"target,omitempty"`
}

// Suffix returns the config-name tag for the spec ("" when no fault).
func (f FaultSpec) Suffix() string {
	if f.Kind == FaultNone {
		return ""
	}
	s := fmt.Sprintf("/fault=%v@%dms+%dms", f.Kind,
		f.After/sim.Millisecond, f.Outage/sim.Millisecond)
	if f.Target != 0 {
		s += fmt.Sprintf(":%d", f.Target)
	}
	return s
}

// withDefaults pins the default schedule on an unscheduled fault: a
// zero Outage selects injection a quarter into the measurement window
// with a quarter-window outage, so the fault both bites and heals
// inside any window length. CLI flags and campaign axes name only the
// kind and rely on this.
func (f FaultSpec) withDefaults(duration sim.Time) FaultSpec {
	if f.Kind != FaultNone && f.Outage == 0 {
		f.After, f.Outage = duration/4, duration/4
	}
	return f
}

// validate checks the spec against a configuration's topology.
func (f FaultSpec) validate(cfg Config) error {
	if f.Kind == FaultNone {
		return nil
	}
	if f.After < 0 || f.Outage <= 0 {
		return fmt.Errorf("bench: fault needs a non-negative offset and a positive outage (got %v+%v)", f.After, f.Outage)
	}
	if f.After+f.Outage >= cfg.Duration {
		return fmt.Errorf("bench: fault %v+%v does not heal inside the %v measurement window", f.After, f.Outage, cfg.Duration)
	}
	hosts := cfg.Hosts
	if hosts < 1 {
		hosts = 1
	}
	switch f.Kind {
	case FaultLinkFlap, FaultBlackout:
		if f.Target < 0 || f.Target >= hosts*cfg.NICs {
			return fmt.Errorf("bench: fault link %d out of range (machine has %d)", f.Target, hosts*cfg.NICs)
		}
	case FaultPortFail:
		if cfg.Hosts <= 1 {
			return fmt.Errorf("bench: %v needs a switched fabric (hosts > 1)", f.Kind)
		}
		if f.Target < 0 || f.Target >= cfg.Hosts*cfg.NICs {
			return fmt.Errorf("bench: fault port %d out of range (fabric has %d)", f.Target, cfg.Hosts*cfg.NICs)
		}
	default:
		return fmt.Errorf("bench: unknown fault kind %v", f.Kind)
	}
	return nil
}

// faultInjector drives one FaultSpec with a single persistent timer:
// first firing injects, second heals. It is constructed for every
// machine — fault or not — so the timer registry is identical across a
// configuration's fault variants; arm is a no-op for FaultNone.
type faultInjector struct {
	m     *Machine
	spec  FaultSpec
	tm    *sim.Timer
	phase int // 0 idle, 1 armed, 2 active (healing pending), 3 done
}

func newFaultInjector(m *Machine) *faultInjector {
	fi := &faultInjector{m: m}
	fi.tm = m.Eng.NewTimer("fault", fi.fire)
	return fi
}

// faultKeyBand tags the fault timer's keyed sequence: above every
// fabric pipe's key band (pipe identities stay far below bit 61), so a
// fault at instant t executes after every ordinary event at t.
const faultKeyBand = uint64(1) << 61

// arm schedules the injection After from now (the window-open instant).
func (fi *faultInjector) arm(spec FaultSpec) {
	fi.spec = spec
	if spec.Kind == FaultNone {
		return
	}
	fi.phase = 1
	fi.armAfter(spec.After)
	fi.m.solos = fi.soloTimes(fi.m.Eng.Now())
}

// armAfter arms the fault timer d from now. Multi-host machines use a
// keyed sequence so the fault orders after every ordinary event at its
// instant — the order the shard coordinator's solo round reproduces,
// which is what lets a fault mutate other shards' state (links, fabric
// ports) while they are parked.
func (fi *faultInjector) armAfter(d sim.Time) {
	if fi.m.cfg.Hosts > 1 {
		fi.tm.ArmKeyed(fi.m.Eng.Now()+d, sim.SeqBand|faultKeyBand|uint64(fi.phase))
		return
	}
	fi.tm.ArmAfter(d)
}

// soloTimes returns the absolute instants at which the injector still
// fires, given its phase. OpenWindow arms at the window-open instant,
// so the schedule is static — which also lets Restore recompute it
// from the snapshot's phase alone.
func (fi *faultInjector) soloTimes(windowOpen sim.Time) []sim.Time {
	if fi.spec.Kind == FaultNone {
		return nil
	}
	inject := windowOpen + fi.spec.After
	heal := inject + fi.spec.Outage
	switch fi.phase {
	case 1:
		return []sim.Time{inject, heal}
	case 2:
		return []sim.Time{heal}
	}
	return nil
}

func (fi *faultInjector) fire() {
	switch fi.phase {
	case 1:
		fi.inject()
		fi.phase = 2
		fi.armAfter(fi.spec.Outage)
	case 2:
		fi.heal()
		fi.phase = 3
	}
}

// linkPair returns both directions of machine link i (host-order).
func (m *Machine) linkPair(i int) (*ether.Pipe, *ether.Pipe) {
	var links []*ether.Pipe
	for _, h := range m.Hosts {
		links = append(links, h.Links...)
	}
	return links[2*i], links[2*i+1]
}

// numLinks returns the machine's access-link count.
func (m *Machine) numLinks() int {
	n := 0
	for _, h := range m.Hosts {
		n += len(h.Links)
	}
	return n / 2
}

func (fi *faultInjector) setLink(i int, down bool) {
	a, b := fi.m.linkPair(i)
	a.SetDown(down)
	b.SetDown(down)
}

func (fi *faultInjector) inject() {
	switch fi.spec.Kind {
	case FaultLinkFlap:
		fi.setLink(fi.spec.Target, true)
	case FaultBlackout:
		for i := 0; i < fi.m.numLinks(); i++ {
			fi.setLink(i, true)
		}
	case FaultPortFail:
		fi.m.Fabric.FailPort(fi.spec.Target)
	}
}

func (fi *faultInjector) heal() {
	switch fi.spec.Kind {
	case FaultLinkFlap:
		fi.setLink(fi.spec.Target, false)
	case FaultBlackout:
		for i := 0; i < fi.m.numLinks(); i++ {
			fi.setLink(i, false)
		}
	case FaultPortFail:
		fi.m.Fabric.RestorePort(fi.spec.Target)
	}
}
