package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// This file gives the experiment enums a stable text form so that
// configurations round-trip through JSON (internal/campaign), CSV, and
// command-line flags (cmd/cdnasim, cmd/cdnasweep) with one parser.
// The canonical tokens are the short lowercase spellings used on the
// command line; parsing also accepts the String() forms. Out-of-range
// values (e.g. from a failed experiment's record) encode as their
// decimal value so that every record stays serializable, while unknown
// word tokens are still rejected.

// ParseMode parses an I/O architecture name: native | xen | cdna.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "native":
		return ModeNative, nil
	case "xen":
		return ModeXen, nil
	case "cdna":
		return ModeCDNA, nil
	}
	return 0, fmt.Errorf("bench: unknown mode %q (want native | xen | cdna)", s)
}

// MarshalText encodes the mode as its canonical token.
func (m Mode) MarshalText() ([]byte, error) {
	switch m {
	case ModeNative:
		return []byte("native"), nil
	case ModeXen:
		return []byte("xen"), nil
	case ModeCDNA:
		return []byte("cdna"), nil
	}
	return []byte(strconv.Itoa(int(m))), nil
}

// UnmarshalText decodes a mode token, accepting the decimal form
// MarshalText falls back to for out-of-range values so that failed
// experiments' records stay round-trippable.
func (m *Mode) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*m = Mode(n)
		return nil
	}
	v, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParsePattern parses a cross-host traffic pattern name:
// pairs | incast | all2all.
func ParsePattern(s string) (Pattern, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "pairs", "pairwise":
		return PatternPairs, nil
	case "incast":
		return PatternIncast, nil
	case "all2all", "all-to-all", "alltoall":
		return PatternAllToAll, nil
	}
	return 0, fmt.Errorf("bench: unknown pattern %q (want pairs | incast | all2all)", s)
}

// MarshalText encodes the pattern as its canonical token.
func (p Pattern) MarshalText() ([]byte, error) {
	switch p {
	case PatternPairs, PatternIncast, PatternAllToAll:
		return []byte(p.String()), nil
	}
	return []byte(strconv.Itoa(int(p))), nil
}

// UnmarshalText decodes a pattern token (or its decimal fallback form;
// see Mode.UnmarshalText).
func (p *Pattern) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*p = Pattern(n)
		return nil
	}
	v, err := ParsePattern(string(b))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// ParseNICKind parses a NIC model name: intel | ricenic.
func ParseNICKind(s string) (NICKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "intel":
		return NICIntel, nil
	case "ricenic", "rice":
		return NICRice, nil
	}
	return 0, fmt.Errorf("bench: unknown NIC %q (want intel | ricenic)", s)
}

// MarshalText encodes the NIC kind as its canonical token.
func (k NICKind) MarshalText() ([]byte, error) {
	switch k {
	case NICIntel:
		return []byte("intel"), nil
	case NICRice:
		return []byte("ricenic"), nil
	}
	return []byte(strconv.Itoa(int(k))), nil
}

// UnmarshalText decodes a NIC kind token (or its decimal fallback
// form; see Mode.UnmarshalText).
func (k *NICKind) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*k = NICKind(n)
		return nil
	}
	v, err := ParseNICKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// ParseDirection parses a traffic direction: tx | rx | both.
func ParseDirection(s string) (Direction, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "tx", "transmit":
		return Tx, nil
	case "rx", "receive":
		return Rx, nil
	case "both", "duplex":
		return Both, nil
	}
	return 0, fmt.Errorf("bench: unknown direction %q (want tx | rx | both)", s)
}

// MarshalText encodes the direction as its canonical token.
func (d Direction) MarshalText() ([]byte, error) {
	switch d {
	case Tx:
		return []byte("tx"), nil
	case Rx:
		return []byte("rx"), nil
	case Both:
		return []byte("both"), nil
	}
	return []byte(strconv.Itoa(int(d))), nil
}

// UnmarshalText decodes a direction token (or its decimal fallback
// form; see Mode.UnmarshalText).
func (d *Direction) UnmarshalText(b []byte) error {
	if n, err := strconv.Atoi(string(b)); err == nil {
		*d = Direction(n)
		return nil
	}
	v, err := ParseDirection(string(b))
	if err != nil {
		return err
	}
	*d = v
	return nil
}
