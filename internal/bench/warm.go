package bench

// Warm-start forking: a campaign grid that sweeps fault scenarios over
// one underlying machine re-simulates the same warmup for every point.
// The warmup is deterministic and fault-independent (faults arm at
// window open), so it can be simulated once, snapshotted, and forked —
// each variant restores the image and runs only its measurement
// window. The results are byte-identical to cold runs; only the
// redundant warmup events are saved.

// WarmStats reports what a forked run saved versus cold execution.
type WarmStats struct {
	// Groups is the number of distinct warm-start bases (machines whose
	// warmup was simulated once).
	Groups int `json:"groups"`
	// Runs is the total number of configurations executed.
	Runs int `json:"runs"`
	// WarmupEvents is the total events simulated across all shared
	// warmups (each counted once).
	WarmupEvents uint64 `json:"warmup_events"`
	// EventsSaved is the warmup events NOT re-simulated: each group's
	// warmup event count times its fork count beyond the first.
	EventsSaved uint64 `json:"events_saved"`
	// SnapshotBytes is the total size of the warmup images.
	SnapshotBytes int `json:"snapshot_bytes"`
}

// RunWarmForked runs every configuration, sharing one simulated warmup
// among all configurations with the same warm-start base (the config
// with its fault zeroed — Config is the group key, so grids that also
// differ in timing or calibration never share). Outcomes are returned
// in input order, each identical to what Run would produce; per-config
// errors are recorded in the outcome, not returned.
func RunWarmForked(cfgs []Config) ([]Outcome, WarmStats, error) {
	outs := make([]Outcome, len(cfgs))
	groups := make(map[Config][]int)
	var order []Config
	var stats WarmStats
	stats.Runs = len(cfgs)
	for i, cfg := range cfgs {
		// The outcome keeps the caller's config verbatim (like Run);
		// normalization here is only for validation and grouping —
		// Prepare re-applies it inside runForked.
		outs[i].Config = cfg
		cfg.Fault = cfg.Fault.withDefaults(cfg.Duration)
		if err := cfg.Validate(); err != nil {
			outs[i].Err = err
			continue
		}
		if cfg.ConnsPerGuestPerNIC <= 0 {
			cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
		}
		base := warmBase(cfg)
		if _, ok := groups[base]; !ok {
			order = append(order, base)
		}
		groups[base] = append(groups[base], i)
	}

	for _, base := range order {
		idxs := groups[base]
		img, warmupEvents, err := warmupImage(base)
		if err != nil {
			for _, i := range idxs {
				outs[i].Err = err
			}
			continue
		}
		stats.Groups++
		stats.WarmupEvents += warmupEvents
		stats.EventsSaved += warmupEvents * uint64(len(idxs)-1)
		stats.SnapshotBytes += len(img)
		for _, i := range idxs {
			outs[i] = runForked(outs[i].Config, img)
		}
	}
	return outs, stats, nil
}

// warmupImage simulates a base configuration's warmup and snapshots it.
func warmupImage(base Config) ([]byte, uint64, error) {
	m, err := Prepare(base)
	if err != nil {
		return nil, 0, err
	}
	m.Launch()
	m.RunTo(base.Warmup)
	img, err := m.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	return img, m.TotalFired(), nil
}

// runForked runs one configuration's measurement window from a warmup
// image, producing the same outcome as a cold Run.
func runForked(cfg Config, img []byte) Outcome {
	out := Outcome{Config: cfg}
	m, err := Prepare(cfg)
	if err != nil {
		out.Err = err
		return out
	}
	if err := m.Restore(img); err != nil {
		out.Err = err
		return out
	}
	m.OpenWindow()
	m.RunTo(m.cfg.Warmup + m.cfg.Duration)
	out.Result = m.Collect()
	return out
}
