package bench

// Experiment identity for the campaign result cache (internal/store).
// The determinism contract makes a result a pure function of two
// things: the normalized configuration and the model build that ran
// it. Normalize pins the first; Fingerprint proxies the second with
// the same engine registry fingerprint the snapshot layer uses, so a
// model change that adds or removes any bound callback or timer
// invalidates every cached result, exactly as it invalidates every
// snapshot.

// Normalize returns the fault-complete, connection-balanced form of a
// configuration — the canonical identity under which results are
// cached and compared. It applies exactly the normalization Prepare
// applies before building a machine (default fault schedule, balanced
// connection count, default calibration), so two configurations that
// run identically normalize identically. Invalid configurations are
// rejected, mirroring Run.
func Normalize(cfg Config) (Config, error) {
	cfg.Fault = cfg.Fault.withDefaults(cfg.Duration)
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	if cfg.ConnsPerGuestPerNIC <= 0 {
		cfg.ConnsPerGuestPerNIC = connsFor(cfg.Guests)
	}
	if cfg.Cal == (Calibration{}) {
		cfg.Cal = Default()
	}
	return cfg, nil
}

// Fingerprint returns the machine's engine registry fingerprint: the
// total bound-callback and timer counts across all shards — the same
// totals snapshot headers carry (internal/snap), and therefore the
// same cheap proxy for "this model build".
func (m *Machine) Fingerprint() (binds, timers int) {
	for _, e := range m.engines {
		binds += e.Binds()
		timers += e.Timers()
	}
	return binds, timers
}

// Fingerprint builds the configuration's machine (without running it)
// and returns its engine registry fingerprint. The build cost is a few
// hundred microseconds — negligible against the seconds a cache hit
// saves, and it guarantees the fingerprint reflects this exact
// configuration's registries, not a global approximation.
func Fingerprint(cfg Config) (binds, timers int, err error) {
	m, err := Prepare(cfg)
	if err != nil {
		return 0, 0, err
	}
	binds, timers = m.Fingerprint()
	return binds, timers, nil
}
